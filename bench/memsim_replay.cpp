// Memory-hierarchy replay throughput across three implementations of
// the same simulation, over every pattern class of the paper's Table II
// taxonomy plus a representative mixture:
//
//  - baseline: a verbatim replica of the pre-batching implementation
//    (array-of-struct ways, early-exit scan, hardware divide per set
//    lookup) driven one reference at a time — the scalar baseline the
//    speedup is quoted against;
//  - scalar:   TraceGenerator::next + the new compact Cache, still one
//    reference and one full level walk at a time (Hierarchy's oracle
//    path, isolates the cache-layout share of the win);
//  - batched:  the production path — TraceGenerator::fill blocks and
//    Cache::access_many level filtering.
//
// All three must produce EXACTLY the same per-level statistics (the
// rewrite is a pure reordering). Exits non-zero on any mismatch or if
// the aggregate batched-vs-baseline speedup falls below 1x.
//
//   ./build/memsim_replay [--refs N] [--scale-shift S]
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "arch/machines.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "memsim/hierarchy.hpp"
#include "memsim/trace_gen.hpp"

namespace {

using namespace fpr;
using namespace fpr::memsim;

struct Workload {
  std::string name;
  AccessPatternSpec spec;
};

/// Replica of the seed Cache::access (pre-compaction): one Way struct
/// per line, valid/tag/lru triple-branch scan with early exit, modulo
/// set indexing via hardware divide. Semantically identical by design —
/// the bench asserts it.
class BaselineCache {
 public:
  explicit BaselineCache(const CacheConfig& cfg) : cfg_(cfg) {
    num_sets_ = cfg_.num_sets();
    line_shift_ = static_cast<std::uint32_t>(std::countr_zero(cfg_.line_bytes));
    ways_.resize(cfg_.num_lines());
  }

  bool access(std::uint64_t addr, bool write) {
    const std::uint64_t line = addr >> line_shift_;
    const std::uint64_t set = line % num_sets_;
    const std::uint64_t tag = line / num_sets_;
    Way* base = &ways_[set * cfg_.associativity];
    ++stamp_;
    Way* victim = base;
    for (std::uint32_t w = 0; w < cfg_.associativity; ++w) {
      Way& way = base[w];
      if (way.valid && way.tag == tag) {
        way.lru = stamp_;
        way.dirty = way.dirty || write;
        ++stats_.hits;
        return true;
      }
      if (!way.valid) {
        victim = &way;
      } else if (victim->valid && way.lru < victim->lru) {
        victim = &way;
      }
    }
    ++stats_.misses;
    if (victim->valid && victim->dirty) ++stats_.writebacks;
    victim->valid = true;
    victim->tag = tag;
    victim->lru = stamp_;
    victim->dirty = write;
    return false;
  }

  void reset_stats() { stats_ = CacheStats{}; }
  [[nodiscard]] const CacheStats& stats() const { return stats_; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;
    bool valid = false;
    bool dirty = false;
  };
  CacheConfig cfg_;
  std::uint64_t num_sets_ = 0;
  std::uint32_t line_shift_ = 0;
  std::uint64_t stamp_ = 0;
  std::vector<Way> ways_;
  CacheStats stats_;
};

/// The seed replay loop over BaselineCache levels, mirroring the
/// geometry Hierarchy builds for `cpu`.
HierarchyResult baseline_replay(const fpr::arch::CpuSpec& cpu,
                                unsigned scale_shift, TraceGenerator& gen,
                                std::uint64_t refs, std::uint64_t warmup) {
  // Recover the per-level configs through a real Hierarchy replay of 0
  // refs (names + geometry), then rebuild baseline caches from them.
  Hierarchy h(cpu, scale_shift);
  std::vector<BaselineCache> levels;
  for (std::size_t i = 0; i < h.num_levels(); ++i) {
    levels.emplace_back(h.level_config(i));
  }
  auto run = [&](std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) {
      const MemRef ref = gen.next();
      for (auto& level : levels) {
        if (level.access(ref.addr, ref.write)) break;
      }
    }
  };
  run(warmup);
  for (auto& l : levels) l.reset_stats();
  run(refs);
  HierarchyResult r;
  r.refs = refs;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    r.levels.push_back({h.level_name(i), levels[i].stats()});
  }
  return r;
}

std::vector<Workload> workloads() {
  std::vector<Workload> w;
  w.push_back({"stream", AccessPatternSpec::single(StreamPattern{
                             .bytes_per_array = 512ull << 20,
                             .arrays = 3,
                             .writes_per_iter = 1})});
  w.push_back({"strided", AccessPatternSpec::single(StridedPattern{
                              .footprint_bytes = 256ull << 20,
                              .stride_bytes = 256})});
  w.push_back({"stencil", AccessPatternSpec::single(StencilPattern{
                              .nx = 512, .ny = 512, .nz = 256,
                              .elem_bytes = 8, .radius = 1,
                              .full_box = false})});
  w.push_back({"gather", AccessPatternSpec::single(GatherPattern{
                             .table_bytes = 1ull << 30,
                             .elem_bytes = 8,
                             .sequential_fraction = 0.1})});
  w.push_back({"chase", AccessPatternSpec::single(ChasePattern{
                            .footprint_bytes = 64ull << 20,
                            .node_bytes = 64})});
  w.push_back({"blocked", AccessPatternSpec::single(BlockedPattern{
                              .matrix_bytes = 1ull << 30,
                              .tile_bytes = 8ull << 20,
                              .tile_reuse = 16.0})});
  AccessPatternSpec mix;
  mix.components.push_back({StreamPattern{.bytes_per_array = 128ull << 20,
                                          .arrays = 3,
                                          .writes_per_iter = 1},
                            2.0});
  mix.components.push_back({GatherPattern{.table_bytes = 512ull << 20,
                                          .elem_bytes = 8,
                                          .sequential_fraction = 0.1},
                            1.0});
  mix.components.push_back({ChasePattern{.footprint_bytes = 32ull << 20,
                                         .node_bytes = 64},
                            0.5});
  w.push_back({"mixture", mix});
  return w;
}

bool identical(const HierarchyResult& a, const HierarchyResult& b) {
  if (a.refs != b.refs || a.levels.size() != b.levels.size()) return false;
  for (std::size_t i = 0; i < a.levels.size(); ++i) {
    const auto& la = a.levels[i];
    const auto& lb = b.levels[i];
    if (la.name != lb.name || la.stats.hits != lb.stats.hits ||
        la.stats.misses != lb.stats.misses ||
        la.stats.writebacks != lb.stats.writebacks) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t refs = 2'000'000;
  unsigned scale_shift = 8;
  // --no-perf-gate: keep the three-way stats-identity check but skip the
  // "batched must beat the seed baseline" exit condition. Sanitizer CI
  // runs use this — instrumentation skews relative timings, and at the
  // tiny sizes those jobs use the speedup is noise, not signal.
  bool perf_gate = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "option " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--refs") {
      refs = std::stoull(value());
    } else if (arg == "--scale-shift") {
      scale_shift = static_cast<unsigned>(std::stoul(value()));
    } else if (arg == "--no-perf-gate") {
      perf_gate = false;
    } else {
      std::cerr << "unknown option " << arg << "\n";
      return 2;
    }
  }
  if (refs == 0 || scale_shift > 30) {
    std::cerr << "want --refs > 0 and --scale-shift <= 30\n";
    return 2;
  }

  bench::header("Memory-hierarchy replay throughput (scalar vs batched)",
                "the Sec. III-A PCM-profiling stage");
  const auto cpu = arch::knl();
  std::cout << "machine: " << cpu.short_name << ", refs=" << refs
            << " (+equal warmup), scale-shift=" << scale_shift << "\n\n";

  TextTable table({"Pattern", "Baseline[Mref/s]", "Scalar[Mref/s]",
                   "Batched[Mref/s]", "Speedup", "Identical"});
  double baseline_total = 0.0, scalar_total = 0.0, batched_total = 0.0;
  bool all_identical = true;
  for (const auto& w : workloads()) {
    const AccessPatternSpec scaled = scale_spec(w.spec, scale_shift);

    TraceGenerator g0(scaled, 0xfeed1234);
    WallTimer t0;
    const auto r0 = baseline_replay(cpu, scale_shift, g0, refs, refs);
    const double baseline_s = t0.seconds();

    Hierarchy hs(cpu, scale_shift);
    TraceGenerator gs(scaled, 0xfeed1234);
    WallTimer ts;
    const auto rs = hs.replay_scalar(gs, refs, refs);
    const double scalar_s = ts.seconds();

    Hierarchy hb(cpu, scale_shift);
    TraceGenerator gb(scaled, 0xfeed1234);
    WallTimer tb;
    const auto rb = hb.replay(gb, refs, refs);
    const double batched_s = tb.seconds();

    const bool same = identical(r0, rb) && identical(rs, rb);
    all_identical = all_identical && same;
    baseline_total += baseline_s;
    scalar_total += scalar_s;
    batched_total += batched_s;
    const double mref = static_cast<double>(2 * refs) / 1e6;  // warmup counts
    table.row()
        .cell(w.name)
        .num(baseline_s > 0 ? mref / baseline_s : 0.0, 2)
        .num(scalar_s > 0 ? mref / scalar_s : 0.0, 2)
        .num(batched_s > 0 ? mref / batched_s : 0.0, 2)
        .num(batched_s > 0 ? baseline_s / batched_s : 0.0, 2)
        .cell(same ? "yes" : "NO")
        .done();
  }
  table.print(std::cout);

  const double speedup =
      batched_total > 0 ? baseline_total / batched_total : 0.0;
  std::printf(
      "\naggregate: baseline %.3f s, scalar %.3f s, batched %.3f s, "
      "speedup %.2fx (batched vs baseline)\n",
      baseline_total, scalar_total, batched_total, speedup);

  if (!all_identical) {
    std::cerr << "[bench] REPLAY MISMATCH: all three paths must produce "
                 "identical per-level statistics\n";
    return 1;
  }
  if (perf_gate && speedup < 1.0) {
    std::cerr << "[bench] batched path slower than the seed baseline\n";
    return 1;
  }
  return 0;
}
