// Memory-hierarchy replay throughput across the implementations of the
// same simulation, over every pattern class of the paper's Table II
// taxonomy plus a representative mixture:
//
//  - baseline: a verbatim replica of the pre-batching implementation
//    (array-of-struct ways, early-exit scan, hardware divide per set
//    lookup) driven one reference at a time — the scalar baseline the
//    speedup is quoted against;
//  - scalar:   TraceGenerator::next + the new compact Cache, still one
//    reference and one full level walk at a time (Hierarchy's oracle
//    path, isolates the cache-layout share of the win);
//  - batched:  TraceGenerator::fill blocks and Cache::access_many level
//    filtering, with the tag probe pinned to the scalar loop;
//  - +SIMD:    the production path — batched with the runtime-dispatch
//    AVX2 tag probe (falls back to the scalar probe off x86/AVX2);
//  - file:     the same replay fed from an fpr-trace v1 file
//    (FileTraceSource: chunked varint decode instead of generation),
//    measuring the external-trace ingestion path `fpr trace` uses.
//
// Two companion tables break the production path down further: a
// per-stage roofline (refs/second through the generator and each cache
// level separately) and a shard ladder (replay_sharded across 1/2/4/8
// pool workers; expect ~linear scaling on hosts with that many cores —
// the >=3x aggregate target assumes an 8-core host).
//
// Every path — including the staged breakdown and every shard rung —
// must produce EXACTLY the same per-level statistics (vectorization and
// sharding are pure reorderings). Exits non-zero on any mismatch or if
// the aggregate production-vs-baseline speedup falls below 1x.
//
//   ./build/memsim_replay [--refs N] [--scale-shift S] [--no-perf-gate]
#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <cstdio>

#include "arch/machines.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "io/trace_format.hpp"
#include "io/trace_replay.hpp"
#include "memsim/cache.hpp"
#include "memsim/hierarchy.hpp"
#include "memsim/trace_gen.hpp"
#include "memsim/trace_source.hpp"

namespace {

using namespace fpr;
using namespace fpr::memsim;

struct Workload {
  std::string name;
  AccessPatternSpec spec;
};

/// Replica of the seed Cache::access (pre-compaction): one Way struct
/// per line, valid/tag/lru triple-branch scan with early exit, modulo
/// set indexing via hardware divide. Semantically identical by design —
/// the bench asserts it.
class BaselineCache {
 public:
  explicit BaselineCache(const CacheConfig& cfg) : cfg_(cfg) {
    num_sets_ = cfg_.num_sets();
    line_shift_ = static_cast<std::uint32_t>(std::countr_zero(cfg_.line_bytes));
    ways_.resize(cfg_.num_lines());
  }

  bool access(std::uint64_t addr, bool write) {
    const std::uint64_t line = addr >> line_shift_;
    const std::uint64_t set = line % num_sets_;
    const std::uint64_t tag = line / num_sets_;
    Way* base = &ways_[set * cfg_.associativity];
    ++stamp_;
    Way* victim = base;
    for (std::uint32_t w = 0; w < cfg_.associativity; ++w) {
      Way& way = base[w];
      if (way.valid && way.tag == tag) {
        way.lru = stamp_;
        way.dirty = way.dirty || write;
        ++stats_.hits;
        return true;
      }
      if (!way.valid) {
        victim = &way;
      } else if (victim->valid && way.lru < victim->lru) {
        victim = &way;
      }
    }
    ++stats_.misses;
    if (victim->valid && victim->dirty) ++stats_.writebacks;
    victim->valid = true;
    victim->tag = tag;
    victim->lru = stamp_;
    victim->dirty = write;
    return false;
  }

  void reset_stats() { stats_ = CacheStats{}; }
  [[nodiscard]] const CacheStats& stats() const { return stats_; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;
    bool valid = false;
    bool dirty = false;
  };
  CacheConfig cfg_;
  std::uint64_t num_sets_ = 0;
  std::uint32_t line_shift_ = 0;
  std::uint64_t stamp_ = 0;
  std::vector<Way> ways_;
  CacheStats stats_;
};

/// The seed replay loop over BaselineCache levels, mirroring the
/// geometry Hierarchy builds for `cpu`.
HierarchyResult baseline_replay(const fpr::arch::CpuSpec& cpu,
                                unsigned scale_shift, TraceGenerator& gen,
                                std::uint64_t refs, std::uint64_t warmup) {
  // Recover the per-level configs through a real Hierarchy replay of 0
  // refs (names + geometry), then rebuild baseline caches from them.
  Hierarchy h(cpu, scale_shift);
  std::vector<BaselineCache> levels;
  for (std::size_t i = 0; i < h.num_levels(); ++i) {
    levels.emplace_back(h.level_config(i));
  }
  auto run = [&](std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) {
      const MemRef ref = gen.next();
      for (auto& level : levels) {
        if (level.access(ref.addr, ref.write)) break;
      }
    }
  };
  run(warmup);
  for (auto& l : levels) l.reset_stats();
  run(refs);
  HierarchyResult r;
  r.refs = refs;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    r.levels.push_back({h.level_name(i), levels[i].stats()});
  }
  return r;
}

/// Wall seconds and input-reference counts per pipeline stage: the
/// generator plus each cache level (a level's inputs are the previous
/// level's misses, so counts shrink down the hierarchy).
struct StageTiming {
  double gen_s = 0.0;
  std::uint64_t gen_refs = 0;
  std::vector<double> level_s;
  std::vector<std::uint64_t> level_refs;
};

/// The production block loop of Hierarchy::replay, re-driven from
/// outside with a timer around each stage. Timers stay out of
/// src/memsim (determinism lint), so the bench walks the levels itself
/// through Hierarchy::level_cache; the per-cache access sequences — and
/// therefore the stats — are identical to replay().
HierarchyResult staged_replay(Hierarchy& h, TraceGenerator& gen,
                              std::uint64_t refs, std::uint64_t warmup,
                              StageTiming& st) {
  const std::size_t num_levels = h.num_levels();
  st.gen_s = 0.0;
  st.gen_refs = 0;
  st.level_s.assign(num_levels, 0.0);
  st.level_refs.assign(num_levels, 0);
  std::vector<MemRef> block(1024);
  auto run = [&](std::uint64_t count) {
    while (count > 0) {
      const std::size_t n = static_cast<std::size_t>(
          std::min<std::uint64_t>(count, block.size()));
      WallTimer tg;
      gen.fill(block.data(), n);
      st.gen_s += tg.seconds();
      st.gen_refs += n;
      std::size_t live = n;
      for (std::size_t i = 0; i < num_levels && live > 0; ++i) {
        WallTimer tl;
        const std::size_t next = h.level_cache(i).access_many(block.data(),
                                                              live);
        st.level_s[i] += tl.seconds();
        st.level_refs[i] += live;
        live = next;
      }
      count -= n;
    }
  };
  for (std::size_t i = 0; i < num_levels; ++i) h.level_cache(i).clear();
  run(warmup);
  for (std::size_t i = 0; i < num_levels; ++i) h.level_cache(i).reset_stats();
  run(refs);
  HierarchyResult r;
  r.refs = refs;
  for (std::size_t i = 0; i < num_levels; ++i) {
    r.levels.push_back({h.level_name(i), h.level_cache(i).stats()});
  }
  return r;
}

std::vector<Workload> workloads() {
  std::vector<Workload> w;
  w.push_back({"stream", AccessPatternSpec::single(StreamPattern{
                             .bytes_per_array = 512ull << 20,
                             .arrays = 3,
                             .writes_per_iter = 1})});
  w.push_back({"strided", AccessPatternSpec::single(StridedPattern{
                              .footprint_bytes = 256ull << 20,
                              .stride_bytes = 256})});
  w.push_back({"stencil", AccessPatternSpec::single(StencilPattern{
                              .nx = 512, .ny = 512, .nz = 256,
                              .elem_bytes = 8, .radius = 1,
                              .full_box = false})});
  w.push_back({"gather", AccessPatternSpec::single(GatherPattern{
                             .table_bytes = 1ull << 30,
                             .elem_bytes = 8,
                             .sequential_fraction = 0.1})});
  w.push_back({"chase", AccessPatternSpec::single(ChasePattern{
                            .footprint_bytes = 64ull << 20,
                            .node_bytes = 64})});
  w.push_back({"blocked", AccessPatternSpec::single(BlockedPattern{
                              .matrix_bytes = 1ull << 30,
                              .tile_bytes = 8ull << 20,
                              .tile_reuse = 16.0})});
  AccessPatternSpec mix;
  mix.components.push_back({StreamPattern{.bytes_per_array = 128ull << 20,
                                          .arrays = 3,
                                          .writes_per_iter = 1},
                            2.0});
  mix.components.push_back({GatherPattern{.table_bytes = 512ull << 20,
                                          .elem_bytes = 8,
                                          .sequential_fraction = 0.1},
                            1.0});
  mix.components.push_back({ChasePattern{.footprint_bytes = 32ull << 20,
                                         .node_bytes = 64},
                            0.5});
  w.push_back({"mixture", mix});
  return w;
}

bool identical(const HierarchyResult& a, const HierarchyResult& b) {
  if (a.refs != b.refs || a.levels.size() != b.levels.size()) return false;
  for (std::size_t i = 0; i < a.levels.size(); ++i) {
    const auto& la = a.levels[i];
    const auto& lb = b.levels[i];
    if (la.name != lb.name || la.stats.hits != lb.stats.hits ||
        la.stats.misses != lb.stats.misses ||
        la.stats.writebacks != lb.stats.writebacks) {
      return false;
    }
  }
  return true;
}

/// Option values for --refs/--scale-shift: reject '-'-prefixed input
/// (std::stoull would silently wrap a negative to a huge count).
std::uint64_t parse_count(const std::string& arg, const std::string& t) {
  if (t.empty() || t[0] == '-') {
    std::cerr << arg << " wants a non-negative integer, got '" << t << "'\n";
    std::exit(2);
  }
  return std::stoull(t);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t refs = 2'000'000;
  unsigned scale_shift = 8;
  // --no-perf-gate: keep the stats-identity checks but skip the
  // "production must beat the seed baseline" exit condition. Sanitizer
  // CI runs use this — instrumentation skews relative timings, and at
  // the tiny sizes those jobs use the speedup is noise, not signal.
  bool perf_gate = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "option " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--refs") {
      refs = parse_count(arg, value());
    } else if (arg == "--scale-shift") {
      scale_shift = static_cast<unsigned>(parse_count(arg, value()));
    } else if (arg == "--no-perf-gate") {
      perf_gate = false;
    } else {
      std::cerr << "unknown option " << arg << "\n";
      return 2;
    }
  }
  if (refs == 0 || scale_shift > 30) {
    std::cerr << "want --refs > 0 and --scale-shift <= 30\n";
    return 2;
  }

  bench::header("Memory-hierarchy replay throughput (scalar/batched/SIMD)",
                "the Sec. III-A PCM-profiling stage");
  const auto cpu = arch::knl();
  std::cout << "machine: " << cpu.short_name << ", refs=" << refs
            << " (+equal warmup), scale-shift=" << scale_shift
            << ", avx2=" << (Cache::simd_supported() ? "yes" : "no")
            << "\n\n";

  // Level names for the per-stage table header (fixed machine).
  std::vector<std::string> level_names;
  {
    Hierarchy probe(cpu, scale_shift);
    for (std::size_t i = 0; i < probe.num_levels(); ++i) {
      level_names.push_back(probe.level_name(i));
    }
  }

  TextTable table({"Pattern", "Baseline[Mref/s]", "Scalar[Mref/s]",
                   "Batched[Mref/s]", "+SIMD[Mref/s]", "File[Mref/s]",
                   "Speedup", "Identical"});
  std::vector<std::string> stage_cols = {"Pattern", "Gen[Mref/s]"};
  for (const auto& n : level_names) stage_cols.push_back(n + "[Mref/s]");
  TextTable stage_table(stage_cols);

  double baseline_total = 0.0, scalar_total = 0.0, batched_total = 0.0,
         simd_total = 0.0;
  bool all_identical = true;
  std::vector<AccessPatternSpec> scaled_specs;
  std::vector<std::string> names;
  std::vector<HierarchyResult> reference_results;
  for (const auto& w : workloads()) {
    const AccessPatternSpec scaled = scale_spec(w.spec, scale_shift);

    TraceGenerator g0(scaled, 0xfeed1234);
    WallTimer t0;
    const auto r0 = baseline_replay(cpu, scale_shift, g0, refs, refs);
    const double baseline_s = t0.seconds();

    Hierarchy hs(cpu, scale_shift);
    TraceGenerator gs(scaled, 0xfeed1234);
    WallTimer ts;
    const auto rs = hs.replay_scalar(gs, refs, refs);
    const double scalar_s = ts.seconds();

    Hierarchy hb(cpu, scale_shift);
    hb.set_probe_mode(Cache::ProbeMode::kScalar);
    TraceGenerator gb(scaled, 0xfeed1234);
    WallTimer tb;
    const auto rb = hb.replay(gb, refs, refs);
    const double batched_s = tb.seconds();

    // Production path: batched with the runtime-dispatched probe (AVX2
    // when the CPU has it, the scalar loop otherwise).
    Hierarchy hv(cpu, scale_shift);
    TraceGenerator gv(scaled, 0xfeed1234);
    WallTimer tv;
    const auto rv = hv.replay(gv, refs, refs);
    const double simd_s = tv.seconds();

    // Per-stage roofline over the production configuration.
    Hierarchy hstage(cpu, scale_shift);
    TraceGenerator gstage(scaled, 0xfeed1234);
    StageTiming st;
    const auto rstage = staged_replay(hstage, gstage, refs, refs, st);

    // File-backed replay: record the identical reference stream to an
    // fpr-trace file, then time FileTraceSource (decode + replay; the
    // recording itself stays outside the timer).
    const char* trace_path = "memsim_replay_bench.fpt";
    {
      io::TraceWriter writer(trace_path);
      TraceGenerator gw(scaled, 0xfeed1234);
      std::vector<MemRef> block(4096);
      for (std::uint64_t done = 0; done < 2 * refs;) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(block.size(), 2 * refs - done));
        gw.fill(block.data(), n);
        writer.append(block.data(), n);
        done += n;
      }
      writer.finish();
    }
    Hierarchy hf(cpu, scale_shift);
    WallTimer tf;
    HierarchyResult rf;
    {
      io::FileTraceSource fsrc(trace_path);
      rf = hf.replay(fsrc, refs, refs);
    }
    const double file_s = tf.seconds();
    std::remove(trace_path);

    const bool same = identical(r0, rb) && identical(rs, rb) &&
                      identical(rv, rb) && identical(rstage, rb) &&
                      identical(rf, rb);
    all_identical = all_identical && same;
    baseline_total += baseline_s;
    scalar_total += scalar_s;
    batched_total += batched_s;
    simd_total += simd_s;
    scaled_specs.push_back(scaled);
    names.push_back(w.name);
    reference_results.push_back(rb);
    const double mref = static_cast<double>(2 * refs) / 1e6;  // warmup counts
    table.row()
        .cell(w.name)
        .num(baseline_s > 0 ? mref / baseline_s : 0.0, 2)
        .num(scalar_s > 0 ? mref / scalar_s : 0.0, 2)
        .num(batched_s > 0 ? mref / batched_s : 0.0, 2)
        .num(simd_s > 0 ? mref / simd_s : 0.0, 2)
        .num(file_s > 0 ? mref / file_s : 0.0, 2)
        .num(simd_s > 0 ? baseline_s / simd_s : 0.0, 2)
        .cell(same ? "yes" : "NO")
        .done();

    auto row = stage_table.row();
    row.cell(w.name);
    row.num(st.gen_s > 0
                ? static_cast<double>(st.gen_refs) / 1e6 / st.gen_s
                : 0.0,
            2);
    for (std::size_t i = 0; i < st.level_s.size(); ++i) {
      row.num(st.level_s[i] > 0 ? static_cast<double>(st.level_refs[i]) /
                                      1e6 / st.level_s[i]
                                : 0.0,
              2);
    }
    row.done();
  }
  table.print(std::cout);
  std::cout << "\nper-stage roofline (production path; each level's refs "
               "are the previous level's misses):\n";
  stage_table.print(std::cout);

  // Shard ladder: replay_sharded across J pool workers (plus the
  // generator role). Sharding never changes the statistics — each rung
  // is identity-checked against the batched reference — so the only
  // question is wall time. Scaling tracks the physical core count; the
  // >=3x aggregate target assumes an 8-core host.
  std::cout << "\nshard ladder (replay_sharded; hardware threads: "
            << std::thread::hardware_concurrency() << "):\n";
  TextTable shard_table(
      {"Jobs", "Aggregate[Mref/s]", "vs batched", "Identical"});
  double best_shard_mrefs = 0.0;
  const unsigned rungs[] = {1, 2, 4, 8};
  const double total_mref =
      static_cast<double>(2 * refs) * static_cast<double>(names.size()) / 1e6;
  const double batched_mrefs =
      batched_total > 0 ? total_mref / batched_total : 0.0;
  for (const unsigned jobs : rungs) {
    ThreadPool pool(jobs + 1);  // J walkers + the generator role
    double rung_total = 0.0;
    bool rung_identical = true;
    for (std::size_t wi = 0; wi < scaled_specs.size(); ++wi) {
      Hierarchy h(cpu, scale_shift);
      TraceGenerator g(scaled_specs[wi], 0xfeed1234);
      WallTimer t;
      const auto r = h.replay_sharded(g, refs, refs, pool, jobs);
      rung_total += t.seconds();
      rung_identical = rung_identical && identical(r, reference_results[wi]);
    }
    all_identical = all_identical && rung_identical;
    const double rung_mrefs = rung_total > 0 ? total_mref / rung_total : 0.0;
    best_shard_mrefs = std::max(best_shard_mrefs, rung_mrefs);
    shard_table.row()
        .cell(std::to_string(jobs))
        .num(rung_mrefs, 2)
        .num(batched_mrefs > 0 ? rung_mrefs / batched_mrefs : 0.0, 2)
        .cell(rung_identical ? "yes" : "NO")
        .done();
  }
  shard_table.print(std::cout);

  const double speedup = simd_total > 0 ? baseline_total / simd_total : 0.0;
  std::printf(
      "\naggregate: baseline %.3f s, scalar %.3f s, batched %.3f s, "
      "simd %.3f s, speedup %.2fx (production vs baseline)\n",
      baseline_total, scalar_total, batched_total, simd_total, speedup);
  std::printf(
      "best shard rung: %.2f Mref/s (%.2fx over batched; informational — "
      "expect >=3x aggregate over the batched path on an 8-core host)\n",
      best_shard_mrefs,
      batched_mrefs > 0 ? best_shard_mrefs / batched_mrefs : 0.0);

  if (!all_identical) {
    std::cerr << "[bench] REPLAY MISMATCH: every path (baseline, scalar, "
                 "batched, SIMD, staged, file, and each shard rung) must "
                 "produce identical per-level statistics\n";
    return 1;
  }
  if (perf_gate && speedup < 1.0) {
    std::cerr << "[bench] production path slower than the seed baseline\n";
    return 1;
  }
  return 0;
}
