// Extension ablation: the paper ends by asking researchers to "challenge
// the floating-point to silicon distribution" — this bench sweeps a
// hypothetical KNL whose FP64 silicon varies from 1/4 to 2x the real
// chip (holding cores, frequency, caches, and bandwidth fixed) and
// reports the suite-wide time impact. The crossover ("how little FP64
// can we get away with?") is the design question for AA64FX-class parts.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "arch/machines.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "model/exec_model.hpp"
#include "model/memprofile.hpp"

int main() {
  using namespace fpr;
  bench::header("Ablation sweep - FP64 silicon from 1/4x to 2x KNL",
                "conclusion / future-work question");

  study::StudyConfig cfg;
  cfg.scale = 0.3;
  cfg.freq_sweep = false;
  cfg.trace_refs = 150'000;
  const auto results = study::run_study(cfg);

  // Sweep: scale the FP64 pipe count via the vector width knob (the
  // model only consumes flops/cycle, so halving vector_bits halves the
  // FP64 peak without touching anything else).
  struct Variant {
    const char* label;
    double fp64_factor;
  };
  const Variant variants[] = {
      {"1/4x", 0.25}, {"1/2x (KNM-like)", 0.5}, {"1x (KNL)", 1.0},
      {"2x", 2.0}};

  TextTable t({"App", "t @1/4x", "t @1/2x", "t @1x", "t @2x",
               "slowdown 1x->1/4x"});
  double worst = 0.0;
  std::string worst_app = "-";
  double geo_quarter = 0.0;
  int counted = 0;
  for (const auto& k : results.kernels) {
    std::vector<double> times;
    for (const auto& v : variants) {
      arch::CpuSpec cpu = arch::knl();
      cpu.fp64_fpu.units =
          std::max(1, static_cast<int>(cpu.fp64_fpu.units * v.fp64_factor));
      // Sub-unit factors shrink the effective width instead.
      if (v.fp64_factor < 1.0 && cpu.fp64_fpu.units == 1) {
        cpu.fp64_fpu.vector_bits = static_cast<int>(
            512 * std::max(0.5, 2.0 * v.fp64_factor));
      }
      // Fewer pipes are easier to keep fed — the KNM lesson. A single
      // FP64 pipe gets KNM's front-end efficiency instead of KNL's
      // dual-pipe starvation factor.
      if (cpu.fp64_fpu.units <= 1) cpu.fpu_issue_eff = 0.92;
      const auto mem = model::profile_memory(cpu, k.meas, cfg.trace_refs);
      times.push_back(model::evaluate_at_turbo(cpu, k.meas, mem).seconds);
    }
    const double slowdown = times[0] / times[2];
    if (slowdown > worst) {
      worst = slowdown;
      worst_app = k.info.abbrev;
    }
    geo_quarter += std::log(slowdown);
    ++counted;
    t.row()
        .cell(k.info.abbrev)
        .num(times[0], 3)
        .num(times[1], 3)
        .num(times[2], 3)
        .num(times[3], 3)
        .num(slowdown, 3)
        .done();
  }
  t.print(std::cout);
  std::cout << "\nGeometric-mean slowdown with 1/4 the FP64 silicon: "
            << fmt_double(std::exp(geo_quarter / counted), 3)
            << "x; worst case: " << worst_app << " at "
            << fmt_double(worst, 2) << "x.\n"
            << "Reading: the memory/latency/IO-bound majority sits at "
               "~1.0 across the whole sweep; only the\nFP64-compute "
               "minority (HPL, MDYL, NTCh, dense kernels) pays, and "
               "doubling the silicon (2x column)\nbuys almost nothing - "
               "the paper's 'embarrassment of riches'.\n";
  return 0;
}
