// Fig. 2: relative Gflop/s of KNL/KNM over BDW (top plot) and absolute
// achieved Gflop/s as a percentage of theoretical peak (bottom plot).
#include <iostream>

#include "bench_util.hpp"
#include "study/figures.hpp"
#include "study/paper_data.hpp"

int main() {
  const auto results = fpr::bench::run_full_study(/*freq_sweep=*/false);
  fpr::bench::header("Fig. 2 (top) - relative Gflop/s vs BDW", "Fig. 2");
  fpr::study::fig2_relative_flops(results).print(std::cout);
  fpr::bench::header("Fig. 2 (bottom) - % of theoretical peak", "Fig. 2");
  fpr::study::fig2_pct_of_peak(results).print(std::cout);

  std::cout << "\nPaper-vs-measured relative Gflop/s (KNL over BDW), "
               "derived from Table IV:\n";
  for (const auto& k : results.kernels) {
    const auto* row = fpr::study::paper_row(k.info.abbrev);
    if (row == nullptr) continue;
    const double paper_fp_knl =
        (row->gop_fp64_knl + row->gop_fp32_knl) / row->t2sol_knl;
    const double paper_fp_bdw =
        (row->gop_fp64_bdw + row->gop_fp32_bdw) / row->t2sol_bdw;
    if (paper_fp_bdw <= 0.1) continue;
    const double bdw = k.on("BDW").perf.gflops;
    if (bdw <= 0.0) continue;
    fpr::bench::compare_line(k.info.abbrev + " KNLrel",
                             paper_fp_knl / paper_fp_bdw,
                             k.on("KNL").perf.gflops / bdw);
  }
  return 0;
}
