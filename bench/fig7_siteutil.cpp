// Fig. 7: annual HPC site utilization by scientific domain, plus the
// Sec. V-B projection: site-wide achievable fraction of peak flop/s when
// weighting representative proxies by node-hour shares.
#include <iostream>

#include "bench_util.hpp"
#include "study/domain_util.hpp"
#include "study/figures.hpp"

int main() {
  const auto results = fpr::bench::run_full_study(/*freq_sweep=*/false);
  fpr::bench::header("Fig. 7 - site utilization by domain + projection",
                     "Fig. 7 / Sec. V-B");
  fpr::study::fig7_site_utilization(results).print(std::cout);

  std::cout << "\nPaper reference points (Sec. V-B): ANL ~14% and K computer "
               "~11% of peak when projected over annual node-hours.\n";
  for (const auto& site : fpr::study::site_utilization()) {
    if (site.site.rfind("ANL", 0) == 0 ||
        site.site.rfind("R-CCS", 0) == 0) {
      const double knl =
          fpr::study::project_site_pct_peak(site, results, "KNL");
      const double bdw =
          fpr::study::project_site_pct_peak(site, results, "BDW");
      std::cout << "  " << site.site << ": projected " << knl
                << "% (KNL) / " << bdw << "% (BDW) of peak\n";
    }
  }
  return 0;
}
