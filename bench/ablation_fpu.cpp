// Ablation: the hypothetical-processor experiment the paper motivates —
// what if KNL had KNM's FPU (and vice versa)? This isolates the FPU
// silicon redistribution from every other difference (cores, frequency,
// LLC) that separates the real chips.
#include <iostream>

#include "arch/machines.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "model/exec_model.hpp"
#include "model/memprofile.hpp"

int main() {
  using namespace fpr;
  bench::header("Ablation - FPU silicon swap (KNL core, varying FPU)",
                "Sec. V / conclusion");

  study::StudyConfig cfg;
  cfg.scale = 0.3;
  cfg.freq_sweep = false;
  cfg.trace_refs = 150'000;
  const auto results = study::run_study(cfg);

  const auto knl = arch::knl();
  const auto knl_knm_fpu = arch::with_fpu_of(arch::knl(), arch::knm());
  const auto knm_knl_fpu = arch::with_fpu_of(arch::knm(), arch::knl());

  TextTable t({"App", "KNL t[s]", "KNL+KNMfpu t[s]", "slowdown",
               "KNM t[s]", "KNM+KNLfpu t[s]", "speedup"});
  for (const auto& k : results.kernels) {
    const auto mem_knl = model::profile_memory(knl, k.meas, cfg.trace_refs);
    const auto mem_knm =
        model::profile_memory(arch::knm(), k.meas, cfg.trace_refs);
    const auto base_knl = model::evaluate_at_turbo(knl, k.meas, mem_knl);
    const auto swap_knl =
        model::evaluate_at_turbo(knl_knm_fpu, k.meas, mem_knl);
    const auto base_knm =
        model::evaluate_at_turbo(arch::knm(), k.meas, mem_knm);
    const auto swap_knm =
        model::evaluate_at_turbo(knm_knl_fpu, k.meas, mem_knm);
    t.row()
        .cell(k.info.abbrev)
        .num(base_knl.seconds, 3)
        .num(swap_knl.seconds, 3)
        .num(swap_knl.seconds / base_knl.seconds, 3)
        .num(base_knm.seconds, 3)
        .num(swap_knm.seconds, 3)
        .num(base_knm.seconds / swap_knm.seconds, 3)
        .done();
  }
  t.print(std::cout);
  std::cout
      << "\nReading: 'slowdown' ~1.0 everywhere except HPL-class kernels "
         "means the paper's\nconclusion holds — halving FP64 silicon "
         "costs almost nothing for real HPC workloads.\n";
  return 0;
}
