// Fig. 6: speedup obtained through increased CPU frequency, relative to
// the lowest throttle state, for KNL (top), KNM (middle), BDW (bottom).
#include <iostream>

#include "bench_util.hpp"
#include "study/figures.hpp"

int main() {
  const auto results = fpr::bench::run_full_study(/*freq_sweep=*/true);
  for (const char* machine : {"KNL", "KNM", "BDW"}) {
    fpr::bench::header(std::string("Fig. 6 - frequency scaling on ") +
                           machine,
                       "Fig. 6");
    fpr::study::fig6_freqscale(results, machine).print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected shape (paper Sec. IV-E): HPL/compute-bound apps "
               "track the frequency ratio;\nstream/bandwidth apps are flat; "
               "MACSio scales with frequency (kernel-bound I/O);\nHPCG is "
               "flat on the Phis (latency-bound).\n";
  return 0;
}
