// Table IV: application configuration and measured metrics for all three
// machines, with paper-vs-measured t2sol comparisons.
#include <iostream>

#include "bench_util.hpp"
#include "study/figures.hpp"
#include "study/paper_data.hpp"

int main() {
  const auto results = fpr::bench::run_full_study(/*freq_sweep=*/false);
  for (const char* machine : {"KNL", "KNM", "BDW"}) {
    fpr::bench::header(std::string("Table IV - measured metrics on ") +
                           machine,
                       "Table IV");
    fpr::study::table4_metrics(results, machine).print(std::cout);
    std::cout << "\nPaper-vs-measured kernel time-to-solution [s]:\n";
    for (const auto& k : results.kernels) {
      const auto* row = fpr::study::paper_row(k.info.abbrev);
      if (row == nullptr) continue;
      const double paper = std::string(machine) == "KNL"   ? row->t2sol_knl
                           : std::string(machine) == "KNM" ? row->t2sol_knm
                                                           : row->t2sol_bdw;
      fpr::bench::compare_line(k.info.abbrev, paper,
                               k.on(machine).perf.seconds);
    }
    std::cout << "\n";
  }
  return 0;
}
