// Pareto search throughput bench: quantifies the tentpole claim that
// the incremental VariantEvaluator makes design-space search cheap.
//
// Naive baseline: score each candidate the way the pre-evaluator
// ExploreEngine did — a fresh engine per variant, so every candidate
// re-pays the full instrumented measurement pass. Incremental path: one
// ParetoEngine run, which measures once and prices every candidate from
// the cached profiles. The bench reports candidates/sec for both, the
// dedup and profile-memo hit rates, and the speedup; it exits nonzero
// if the frontier JSON is not byte-identical across the --jobs ladder
// (always), or if the speedup falls under 10x (unless --no-perf-gate,
// for sanitizer builds where wall-clock ratios are meaningless).
//
//   ./build/pareto_search [--kernels A,B,...] [--scale S]
//                         [--trace-refs N] [--rounds R] [--jobs 1,2,8]
//                         [--naive-sample N] [--no-perf-gate]
//                         [--json FILE]
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "arch/variant.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "io/json.hpp"
#include "io/pareto_json.hpp"
#include "study/explore.hpp"
#include "study/pareto.hpp"

int main(int argc, char** argv) {
  using namespace fpr;
  using bench::parse_ladder;
  using bench::split_csv;

  study::ParetoConfig cfg;
  cfg.base = "KNL";
  cfg.scale = 0.2;
  cfg.threads = 1;
  cfg.trace_refs = 200'000;
  cfg.rounds = 3;
  cfg.kernels = {"AMG", "HPL", "XSBn", "BABL2", "MxIO", "NGSA"};
  std::vector<unsigned> jobs_ladder = {1, 2, 8};
  std::size_t naive_sample = 6;
  bool perf_gate = true;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "option " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--kernels") {
      cfg.kernels = split_csv(value());
    } else if (arg == "--scale") {
      cfg.scale = std::stod(value());
    } else if (arg == "--trace-refs") {
      cfg.trace_refs = std::stoull(value());
    } else if (arg == "--rounds") {
      cfg.rounds = static_cast<unsigned>(std::stoul(value()));
    } else if (arg == "--jobs") {
      jobs_ladder = parse_ladder(value());
    } else if (arg == "--naive-sample") {
      naive_sample = std::stoull(value());
    } else if (arg == "--no-perf-gate") {
      perf_gate = false;
    } else if (arg == "--json") {
      json_path = value();
    } else {
      std::cerr << "unknown option " << arg << "\n";
      return 2;
    }
  }
  if (jobs_ladder.empty() || jobs_ladder.front() != 1) {
    jobs_ladder.insert(jobs_ladder.begin(), 1);
  }

  bench::header("Pareto search throughput (incremental evaluator)",
                "the Sec. VII design-space trade, searched under budget");
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "host: " << hw << " hardware thread(s); "
            << cfg.kernels.size() << " kernel(s), base " << cfg.base
            << ", trace_refs=" << cfg.trace_refs << ", rounds=" << cfg.rounds
            << "\n\n";

  // Naive baseline: one ExploreEngine (hence one full measurement pass)
  // per candidate, the pre-incremental cost model.
  arch::CpuSpec base;
  for (auto& cpu : arch::all_machines()) {
    if (cpu.short_name == cfg.base) base = std::move(cpu);
  }
  std::vector<std::string> sample = arch::builtin_variant_specs(base);
  if (sample.size() > naive_sample) sample.resize(naive_sample);
  std::cerr << "[bench] naive baseline: " << sample.size()
            << " x ExploreEngine (re-measures every time)...\n";
  WallTimer naive_timer;
  for (const auto& spec : sample) {
    study::ExploreConfig ncfg;
    ncfg.base = cfg.base;
    ncfg.variants = {spec};
    ncfg.kernels = cfg.kernels;
    ncfg.scale = cfg.scale;
    ncfg.threads = cfg.threads;
    ncfg.trace_refs = cfg.trace_refs;
    ncfg.seed = cfg.seed;
    ncfg.jobs = 1;
    study::ExploreEngine engine(ncfg);
    (void)engine.run();
  }
  const double naive_seconds = naive_timer.seconds();
  const double naive_cps =
      naive_seconds > 0 ? static_cast<double>(sample.size()) / naive_seconds
                        : 0.0;

  // Incremental path: the full Pareto search at each jobs count. Every
  // run includes its own one-time measurement phase, so candidates/sec
  // is the honest end-to-end figure, not an evaluate()-only best case.
  TextTable table(
      {"Jobs", "Wall[s]", "Cand/s", "Evald", "Dedup%", "Memo%", "Identical"});
  std::string base_json;
  bool identical = true;
  double cps_j1 = 0.0;
  double best_cps = 0.0;
  study::ParetoStats stats_j1;
  for (const unsigned jobs : jobs_ladder) {
    auto run_cfg = cfg;
    run_cfg.jobs = jobs;
    WallTimer timer;
    study::ParetoEngine engine(run_cfg);
    const auto results = engine.run();
    const double seconds = timer.seconds();
    const std::string json = io::dump(io::to_json(results));
    const auto& st = engine.stats();
    const double cps =
        seconds > 0 ? static_cast<double>(st.evaluated) / seconds : 0.0;
    if (jobs == 1 && base_json.empty()) {
      base_json = json;
      cps_j1 = cps;
      stats_j1 = st;
    }
    best_cps = std::max(best_cps, cps);
    const double memo_total = static_cast<double>(st.evaluator.memo_hits +
                                                  st.evaluator.memo_misses);
    table.row()
        .integer(jobs)
        .num(seconds, 3)
        .num(cps, 1)
        .integer(static_cast<long long>(st.evaluated))
        .num(st.generated > 0 ? 100.0 * static_cast<double>(st.deduped) /
                                    static_cast<double>(st.generated)
                              : 0.0,
             1)
        .num(memo_total > 0 ? 100.0 *
                                  static_cast<double>(st.evaluator.memo_hits) /
                                  memo_total
                            : 0.0,
             1)
        .cell(json == base_json ? "yes" : "NO")
        .done();
    if (json != base_json) {
      identical = false;
      std::cerr << "[bench] DETERMINISM VIOLATION at jobs=" << jobs << "\n";
    }
  }
  table.print(std::cout);

  const double speedup = naive_cps > 0 ? cps_j1 / naive_cps : 0.0;
  const double memo_total = static_cast<double>(
      stats_j1.evaluator.memo_hits + stats_j1.evaluator.memo_misses);
  std::cout << "\nnaive (ExploreEngine-per-variant): " << sample.size()
            << " candidate(s) in " << naive_seconds << " s = " << naive_cps
            << " cand/s\nincremental (jobs=1):              "
            << stats_j1.evaluated << " candidate(s) at " << cps_j1
            << " cand/s\nspeedup: " << speedup << "x (gate: >= 10x"
            << (perf_gate ? "" : ", DISABLED") << ")\n";

  if (!json_path.empty()) {
    io::Json doc =
        io::Json::object()
            .set("format", std::string("fpr-bench-pareto"))
            .set("version", std::int64_t{1})
            .set("naive_candidates_per_sec", naive_cps)
            .set("candidates_per_sec_jobs1", cps_j1)
            .set("candidates_per_sec_best", best_cps)
            .set("speedup_vs_naive", speedup)
            .set("generated", static_cast<std::int64_t>(stats_j1.generated))
            .set("evaluated", static_cast<std::int64_t>(stats_j1.evaluated))
            .set("dedup_rate",
                 stats_j1.generated > 0
                     ? static_cast<double>(stats_j1.deduped) /
                           static_cast<double>(stats_j1.generated)
                     : 0.0)
            .set("memo_hit_rate",
                 memo_total > 0 ? static_cast<double>(
                                      stats_j1.evaluator.memo_hits) /
                                      memo_total
                                : 0.0)
            .set("frontier_identical_across_jobs", identical);
    std::ofstream out(json_path);
    out << io::dump(doc) << "\n";
    if (!out) {
      std::cerr << "[bench] failed to write " << json_path << "\n";
      return 1;
    }
    std::cerr << "[bench] wrote " << json_path << "\n";
  }

  if (!identical) return 1;
  if (perf_gate && speedup < 10.0) {
    std::cerr << "[bench] PERF GATE FAILED: " << speedup << "x < 10x\n";
    return 1;
  }
  return 0;
}
