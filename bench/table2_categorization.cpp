// Table II: application categorization (domain, compute pattern,
// original language).
#include <iostream>

#include "bench_util.hpp"
#include "study/figures.hpp"

int main() {
  fpr::bench::header("Table II - application categorization", "Table II");
  fpr::study::table2_categorization().print(std::cout);
  return 0;
}
