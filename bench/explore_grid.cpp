// ExploreEngine throughput bench: runs the same deterministic what-if
// sweep (full proxy subset x the built-in KNL variant grid) over a
// two-dimensional (kernel-jobs x machine-jobs) ladder, reports the
// wall-clock speedup over the serial (1, 1) baseline, and verifies that
// EVERY point produced byte-identical JSON — the explore grid inherits
// the StudyEngine guarantee that both fan-out axes are pure reorderings.
// It also prints the SimCache hit rate: variants that leave the cache
// geometry untouched must ride the base machine's hierarchy replays, so
// the sweep's simulation cost stays near the baseline study's.
//
//   ./build/explore_grid [--kernels A,B,...] [--scale S] [--trace-refs N]
//                        [--jobs 1,2,4,8] [--kernel-jobs 1,2,4]
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "io/explore_json.hpp"
#include "study/explore.hpp"

int main(int argc, char** argv) {
  using namespace fpr;
  using bench::parse_ladder;
  using bench::split_csv;

  study::ExploreConfig cfg;
  cfg.base = "KNL";  // built-in grid: 8 variants incl. both MCDRAM knobs
  cfg.scale = 0.2;
  cfg.threads = 1;
  cfg.trace_refs = 400'000;
  cfg.kernels = {"AMG",  "HPL",  "XSBn", "BABL2", "MxIO",
                 "NGSA", "NekB", "CoMD", "SW4L",  "MiFE"};
  std::vector<unsigned> jobs_ladder = {1, 2, 4, 8};
  std::vector<unsigned> kernel_jobs_ladder = {1, 2, 4};

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "option " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--kernels") {
      cfg.kernels = split_csv(value());
    } else if (arg == "--scale") {
      cfg.scale = std::stod(value());
    } else if (arg == "--trace-refs") {
      cfg.trace_refs = std::stoull(value());
    } else if (arg == "--jobs") {
      jobs_ladder = parse_ladder(value());
    } else if (arg == "--kernel-jobs") {
      kernel_jobs_ladder = parse_ladder(value());
    } else {
      std::cerr << "unknown option " << arg << "\n";
      return 2;
    }
  }
  for (auto* ladder : {&jobs_ladder, &kernel_jobs_ladder}) {
    if (ladder->empty() || ladder->front() != 1) {
      ladder->insert(ladder->begin(), 1);
    }
  }

  bench::header("ExploreEngine what-if grid throughput",
                "the Sec. VII design-space sweep, parallelized");
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "host: " << hw << " hardware thread(s); " << cfg.kernels.size()
            << " kernel(s) x (base + built-in " << cfg.base
            << " grid), trace_refs=" << cfg.trace_refs << "\n\n";

  TextTable table({"KernelJobs", "Jobs", "Wall[s]", "Speedup", "SimHit%",
                   "Identical"});
  double base_seconds = 0.0;
  std::string base_json;
  for (const unsigned kernel_jobs : kernel_jobs_ladder) {
    for (const unsigned jobs : jobs_ladder) {
      auto run_cfg = cfg;
      run_cfg.jobs = jobs;
      run_cfg.kernel_jobs = kernel_jobs;
      WallTimer timer;
      study::ExploreEngine engine(run_cfg);
      const auto results = engine.run();
      const double seconds = timer.seconds();
      const std::string json = io::dump(io::to_json(results));
      if (kernel_jobs == 1 && jobs == 1) {
        base_seconds = seconds;
        base_json = json;
      }
      const auto& st = engine.stats();
      const double total =
          static_cast<double>(st.sim_hits + st.sim_misses);
      table.row()
          .integer(kernel_jobs)
          .integer(jobs)
          .num(seconds, 3)
          .num(base_seconds > 0 ? base_seconds / seconds : 1.0, 2)
          .num(total > 0 ? 100.0 * static_cast<double>(st.sim_hits) / total
                         : 0.0,
               1)
          .cell(json == base_json ? "yes" : "NO")
          .done();
      if (json != base_json) {
        std::cerr << "[bench] DETERMINISM VIOLATION at kernel_jobs="
                  << kernel_jobs << " jobs=" << jobs << "\n";
        return 1;
      }
    }
  }
  table.print(std::cout);

  if (hw < 4) {
    std::cout << "\n(host has < 4 hardware threads; speedups need a >= "
                 "4-core machine)\n";
  }
  return 0;
}
