// Fig. 4: memory/system throughput per proxy app; BabelStream rows give
// the cache-mode ceilings, the dotted flat-mode Triad lines come from
// Table I.
#include <iostream>

#include "arch/machines.hpp"
#include "bench_util.hpp"
#include "study/figures.hpp"

int main() {
  const auto results = fpr::bench::run_full_study(/*freq_sweep=*/false);
  fpr::bench::header("Fig. 4 - memory throughput [GB/s]", "Fig. 4");
  fpr::study::fig4_membw(results).print(std::cout);

  std::cout << "\nFlat-mode Triad ceilings (dotted lines in the paper):\n";
  for (const auto& cpu : fpr::arch::all_machines()) {
    std::cout << "  " << cpu.short_name << ": DRAM "
              << cpu.dram_bw_gbs << " GB/s"
              << (cpu.has_mcdram()
                      ? ", MCDRAM " + fpr::fmt_double(cpu.mcdram_bw_gbs, 0) +
                            " GB/s"
                      : "")
              << "\n";
  }
  const auto* b2 = results.find("BABL2");
  const auto* b14 = results.find("BABL14");
  if (b2 != nullptr && b14 != nullptr) {
    std::cout << "\nCache-mode capture check (paper: 86% KNL / 75% KNM when "
                 "vectors fit; near-DRAM when not):\n";
    fpr::bench::compare_line("BABL2 KNL GB/s", 439.0 * 0.86,
                             b2->on("KNL").perf.mem_throughput_gbs);
    fpr::bench::compare_line("BABL2 KNM GB/s", 430.0 * 0.75,
                             b2->on("KNM").perf.mem_throughput_gbs);
    fpr::bench::compare_line("BABL14 KNL GB/s", 75.0,
                             b14->on("KNL").perf.mem_throughput_gbs);
  }
  return 0;
}
