// StudyEngine throughput bench: runs the same deterministic study at a
// ladder of --jobs counts and reports the wall-clock speedup of the
// parallel per-machine stages over the serial jobs=1 baseline, verifying
// along the way that every jobs count produced byte-identical JSON (the
// engine's core guarantee). On a >= 4-core host the ladder demonstrates
// the >= 2x speedup this PR's acceptance criteria call for; on smaller
// hosts it degenerates gracefully and says so.
//
//   ./build/study_parallel [--kernels A,B,...] [--scale S]
//                          [--trace-refs N] [--jobs 1,2,4,8]
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "io/study_json.hpp"
#include "study/study_engine.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fpr;

  study::StudyConfig cfg;
  cfg.scale = 0.2;
  cfg.threads = 1;  // keep kernel runs cheap; the machine stages dominate
  cfg.trace_refs = 400'000;
  cfg.canonical_timing = true;
  cfg.kernels = {"AMG",  "HPL",  "XSBn", "BABL2", "MxIO",
                 "NGSA", "NekB", "CoMD", "SW4L",  "MiFE"};
  std::vector<unsigned> jobs_ladder = {1, 2, 4, 8};

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "option " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--kernels") {
      cfg.kernels = split_csv(value());
    } else if (arg == "--scale") {
      cfg.scale = std::stod(value());
    } else if (arg == "--trace-refs") {
      cfg.trace_refs = std::stoull(value());
    } else if (arg == "--jobs") {
      jobs_ladder.clear();
      for (const auto& j : split_csv(value())) {
        jobs_ladder.push_back(static_cast<unsigned>(std::stoul(j)));
      }
    } else {
      std::cerr << "unknown option " << arg << "\n";
      return 2;
    }
  }
  if (jobs_ladder.empty() || jobs_ladder.front() != 1) {
    jobs_ladder.insert(jobs_ladder.begin(), 1);
  }

  bench::header("StudyEngine parallel throughput",
                "the Sec. III-A pipeline, parallelized");
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "host: " << hw << " hardware thread(s); "
            << cfg.kernels.size() << " kernel(s), trace_refs="
            << cfg.trace_refs << "\n\n";

  TextTable table({"Jobs", "Wall[s]", "Speedup", "Identical"});
  double base_seconds = 0.0;
  std::string base_json;
  for (const unsigned jobs : jobs_ladder) {
    auto run_cfg = cfg;
    run_cfg.jobs = jobs;
    WallTimer timer;
    study::StudyEngine engine(run_cfg);
    const auto results = engine.run();
    const double seconds = timer.seconds();
    const std::string json = io::dump(io::to_json(results));
    if (jobs == 1) {
      base_seconds = seconds;
      base_json = json;
    }
    table.row()
        .integer(jobs)
        .num(seconds, 3)
        .num(base_seconds > 0 ? base_seconds / seconds : 1.0, 2)
        .cell(json == base_json ? "yes" : "NO")
        .done();
    if (json != base_json) {
      std::cerr << "[bench] DETERMINISM VIOLATION at jobs=" << jobs << "\n";
      return 1;
    }
  }
  table.print(std::cout);

  if (hw < 4) {
    std::cout << "\n(host has < 4 hardware threads; the >= 2x ladder "
                 "needs a >= 4-core machine)\n";
  }
  return 0;
}
