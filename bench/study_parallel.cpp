// StudyEngine throughput bench: runs the same deterministic study over a
// two-dimensional (kernel-jobs x machine-jobs) ladder and reports the
// wall-clock speedup over the serial (1, 1) baseline, verifying along
// the way that EVERY point produced byte-identical JSON (the engine's
// core guarantee: both fan-out axes are pure reorderings of the serial
// pipeline). Kernel runs execute in per-run ExecutionContexts, so the
// kernel-jobs axis is where the de-globalized counters/pool pay off; the
// machine-jobs axis parallelizes the memsim/model/freq-sweep stages as
// before. On a >= 4-core host the ladder demonstrates a >= 2x speedup;
// on smaller hosts it degenerates gracefully and says so.
//
//   ./build/study_parallel [--kernels A,B,...] [--scale S]
//                          [--trace-refs N] [--jobs 1,2,4,8]
//                          [--kernel-jobs 1,2,4,8]
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "io/study_json.hpp"
#include "study/study_engine.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::vector<unsigned> parse_ladder(const std::string& s) {
  std::vector<unsigned> out;
  for (const auto& j : split_csv(s)) {
    // Same guards as the fpr CLI: stoul wraps negatives instead of
    // throwing, and absurd counts would try to spawn that many threads.
    unsigned long v = 0;
    bool ok = j.find('-') == std::string::npos;
    if (ok) {
      try {
        v = std::stoul(j);
      } catch (const std::exception&) {
        ok = false;
      }
    }
    if (!ok || v == 0 || v > 4096) {
      std::cerr << "invalid ladder value '" << j
                << "' (want integers in 1..4096)\n";
      std::exit(2);
    }
    out.push_back(static_cast<unsigned>(v));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fpr;

  study::StudyConfig cfg;
  cfg.scale = 0.2;
  cfg.threads = 1;  // keep each kernel run cheap and host-independent
  cfg.trace_refs = 400'000;
  cfg.canonical_timing = true;
  cfg.kernels = {"AMG",  "HPL",  "XSBn", "BABL2", "MxIO",
                 "NGSA", "NekB", "CoMD", "SW4L",  "MiFE"};
  std::vector<unsigned> jobs_ladder = {1, 2, 4, 8};
  std::vector<unsigned> kernel_jobs_ladder = {1, 2, 4, 8};

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "option " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--kernels") {
      cfg.kernels = split_csv(value());
    } else if (arg == "--scale") {
      cfg.scale = std::stod(value());
    } else if (arg == "--trace-refs") {
      cfg.trace_refs = std::stoull(value());
    } else if (arg == "--jobs") {
      jobs_ladder = parse_ladder(value());
    } else if (arg == "--kernel-jobs") {
      kernel_jobs_ladder = parse_ladder(value());
    } else {
      std::cerr << "unknown option " << arg << "\n";
      return 2;
    }
  }
  // The (1, 1) baseline anchors both the speedup column and the
  // byte-identity check, so each axis must start at 1.
  for (auto* ladder : {&jobs_ladder, &kernel_jobs_ladder}) {
    if (ladder->empty() || ladder->front() != 1) {
      ladder->insert(ladder->begin(), 1);
    }
  }

  bench::header("StudyEngine parallel throughput",
                "the Sec. III-A pipeline, parallelized on both axes");
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "host: " << hw << " hardware thread(s); "
            << cfg.kernels.size() << " kernel(s), trace_refs="
            << cfg.trace_refs << "\n\n";

  TextTable table({"KernelJobs", "Jobs", "Wall[s]", "Speedup", "Identical"});
  double base_seconds = 0.0;
  std::string base_json;
  for (const unsigned kernel_jobs : kernel_jobs_ladder) {
    for (const unsigned jobs : jobs_ladder) {
      auto run_cfg = cfg;
      run_cfg.jobs = jobs;
      run_cfg.kernel_jobs = kernel_jobs;
      WallTimer timer;
      study::StudyEngine engine(run_cfg);
      const auto results = engine.run();
      const double seconds = timer.seconds();
      const std::string json = io::dump(io::to_json(results));
      if (kernel_jobs == 1 && jobs == 1) {
        base_seconds = seconds;
        base_json = json;
      }
      table.row()
          .integer(kernel_jobs)
          .integer(jobs)
          .num(seconds, 3)
          .num(base_seconds > 0 ? base_seconds / seconds : 1.0, 2)
          .cell(json == base_json ? "yes" : "NO")
          .done();
      if (json != base_json) {
        std::cerr << "[bench] DETERMINISM VIOLATION at kernel_jobs="
                  << kernel_jobs << " jobs=" << jobs << "\n";
        return 1;
      }
    }
  }
  table.print(std::cout);

  if (hw < 4) {
    std::cout << "\n(host has < 4 hardware threads; the >= 2x ladder "
                 "needs a >= 4-core machine)\n";
  }
  return 0;
}
