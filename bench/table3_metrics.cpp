// Table III: metrics and the method/tool used to collect them — paper
// tooling vs this reproduction's substitutes.
#include <iostream>

#include "bench_util.hpp"
#include "study/figures.hpp"

int main() {
  fpr::bench::header("Table III - metrics and measurement tools",
                     "Table III");
  fpr::study::table3_metrics().print(std::cout);
  return 0;
}
