// Table I: detailed compute-node hardware information, plus a live
// demonstration of the Triad measurement path on the host machine.
#include <iostream>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "kernels/babelstream.hpp"
#include "study/figures.hpp"

int main() {
  fpr::bench::header("Table I - compute node hardware", "Table I");
  fpr::study::table1_hardware().print(std::cout);

  // The paper measures the Triad rows with BabelStream; demonstrate the
  // same measurement on the host (not one of the paper's machines).
  fpr::kernels::BabelStream babl(2.0);
  const double host = babl.host_triad_gbs(1u << 22);
  std::cout << "\nHost Triad bandwidth (for reference, not a paper machine): "
            << fpr::fmt_double(host, 1) << " GB/s\n";
  return 0;
}
