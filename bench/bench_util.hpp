// Shared plumbing for the figure/table reproduction binaries: run the
// full study once (all 24 kernels, all 3 machines, frequency sweep) and
// provide paper-vs-measured printing helpers.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "study/paper_data.hpp"
#include "study/study.hpp"

namespace fpr::bench {

inline std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Parse a "1,2,4,8" job-count ladder with the fpr CLI's guards: stoul
/// wraps negatives instead of throwing, and absurd counts would try to
/// spawn that many threads. Exits 2 on invalid input.
inline std::vector<unsigned> parse_ladder(const std::string& s) {
  std::vector<unsigned> out;
  for (const auto& j : split_csv(s)) {
    unsigned long v = 0;
    bool ok = j.find('-') == std::string::npos;
    if (ok) {
      try {
        v = std::stoul(j);
      } catch (const std::exception&) {
        ok = false;
      }
    }
    if (!ok || v == 0 || v > 4096) {
      std::cerr << "invalid ladder value '" << j
                << "' (want integers in 1..4096)\n";
      std::exit(2);
    }
    out.push_back(static_cast<unsigned>(v));
  }
  return out;
}

inline study::StudyResults run_full_study(bool freq_sweep = true) {
  study::StudyConfig cfg;
  cfg.scale = 0.3;
  cfg.trace_refs = 150'000;
  cfg.freq_sweep = freq_sweep;
  std::cerr << "[bench] running instrumented kernels + machine models...\n";
  return study::run_study(cfg);
}

inline void header(const std::string& title, const std::string& paper_ref) {
  std::cout << "==============================================================\n"
            << title << "\n"
            << "(reproduces " << paper_ref
            << " of Domke et al., IPDPS 2019)\n"
            << "==============================================================\n";
}

/// Print a paper-vs-measured ratio line for quick eyeballing.
inline void compare_line(const std::string& label, double paper,
                         double measured) {
  std::printf("  %-28s paper=%10.3f  measured=%10.3f  ratio=%6.2f\n",
              label.c_str(), paper, measured,
              paper > 0 ? measured / paper : 0.0);
}

}  // namespace fpr::bench
