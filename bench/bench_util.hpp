// Shared plumbing for the figure/table reproduction binaries: run the
// full study once (all 24 kernels, all 3 machines, frequency sweep) and
// provide paper-vs-measured printing helpers.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "study/paper_data.hpp"
#include "study/study.hpp"

namespace fpr::bench {

inline study::StudyResults run_full_study(bool freq_sweep = true) {
  study::StudyConfig cfg;
  cfg.scale = 0.3;
  cfg.trace_refs = 150'000;
  cfg.freq_sweep = freq_sweep;
  std::cerr << "[bench] running instrumented kernels + machine models...\n";
  return study::run_study(cfg);
}

inline void header(const std::string& title, const std::string& paper_ref) {
  std::cout << "==============================================================\n"
            << title << "\n"
            << "(reproduces " << paper_ref
            << " of Domke et al., IPDPS 2019)\n"
            << "==============================================================\n";
}

/// Print a paper-vs-measured ratio line for quick eyeballing.
inline void compare_line(const std::string& label, double paper,
                         double measured) {
  std::printf("  %-28s paper=%10.3f  measured=%10.3f  ratio=%6.2f\n",
              label.c_str(), paper, measured,
              paper > 0 ? measured / paper : 0.0);
}

}  // namespace fpr::bench
