// Fig. 1: ratio of integer vs FP32 vs FP64 operations per proxy app, per
// machine, with a paper-vs-measured comparison of the BDW shares.
#include <iostream>

#include "bench_util.hpp"
#include "study/figures.hpp"
#include "study/paper_data.hpp"

int main() {
  const auto results = fpr::bench::run_full_study(/*freq_sweep=*/false);
  fpr::bench::header("Fig. 1 - operation mix (INT / FP32 / FP64)", "Fig. 1");
  fpr::study::fig1_opmix(results).print(std::cout);

  std::cout << "\nPaper-vs-measured FP64 share on BDW "
               "(from Table IV op counts):\n";
  for (const auto& k : results.kernels) {
    const auto* row = fpr::study::paper_row(k.info.abbrev);
    if (row == nullptr) continue;
    const double paper_total =
        row->gop_fp64_bdw + row->gop_fp32_bdw + row->gop_int_bdw;
    if (paper_total <= 0) continue;
    const double paper_share = row->gop_fp64_bdw / paper_total * 100.0;
    const double ours = k.meas.ops_on(false).fp64_share() * 100.0;
    fpr::bench::compare_line(k.info.abbrev + " FP64 %", paper_share, ours);
  }
  return 0;
}
