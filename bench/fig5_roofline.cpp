// Fig. 5: roofline plot data for the Broadwell-EP reference system.
#include <iostream>

#include "arch/machines.hpp"
#include "bench_util.hpp"
#include "model/roofline.hpp"
#include "study/figures.hpp"

int main() {
  const auto results = fpr::bench::run_full_study(/*freq_sweep=*/false);
  fpr::bench::header("Fig. 5 - BDW roofline coordinates", "Fig. 5");
  const auto bdw = fpr::arch::bdw();
  std::cout << "Roofs: FP64 peak " << bdw.peak_gflops(fpr::arch::Precision::fp64)
            << " Gflop/s; Triad BW " << bdw.dram_bw_gbs
            << " GB/s; ridge at "
            << fpr::fmt_double(fpr::model::ridge_point(bdw, true), 2)
            << " flop/byte\n\n";
  fpr::study::fig5_roofline(results).print(std::cout);
  std::cout << "\nExpected qualitative picture (paper Sec. IV-D): nearly all "
               "proxies sit on the memory side of the ridge;\nHPL is the "
               "compute-side exception; Laghos under-performs its ceiling "
               "(the paper's noted outlier).\n";
  return 0;
}
