// google-benchmark microbenchmarks of every instrumented proxy kernel at
// reduced scale: wall time of the assayed solver region on the host.
// These are host-performance benchmarks of our re-implementations (the
// paper-machine numbers come from the model binaries).
#include <benchmark/benchmark.h>

#include "kernels/kernel.hpp"

namespace {

void run_kernel(benchmark::State& state, const std::string& abbrev,
                double scale) {
  const auto kernel = fpr::kernels::make(abbrev);
  fpr::kernels::RunConfig cfg;
  cfg.scale = scale;
  std::uint64_t fp = 0, ints = 0;
  for (auto _ : state) {
    const auto m = kernel->run(cfg);
    fp = m.ops.fp_total();
    ints = m.ops.int_ops;
    benchmark::DoNotOptimize(m.checksum);
    state.SetIterationTime(m.host_seconds);
  }
  state.counters["paper_fp_gop"] =
      static_cast<double>(fp) / 1e9;
  state.counters["paper_int_gop"] =
      static_cast<double>(ints) / 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  for (const auto& abbrev : fpr::kernels::all_abbrevs()) {
    benchmark::RegisterBenchmark(
        ("proxy/" + abbrev).c_str(),
        [abbrev](benchmark::State& s) { run_kernel(s, abbrev, 0.2); })
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond)
        ->Iterations(2);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
