// Fig. 3: runtime speedup of KNL/KNM over the dual-socket BDW node.
#include <iostream>

#include "bench_util.hpp"
#include "study/figures.hpp"
#include "study/paper_data.hpp"

int main() {
  const auto results = fpr::bench::run_full_study(/*freq_sweep=*/false);
  fpr::bench::header("Fig. 3 - time-to-solution speedup vs BDW", "Fig. 3");
  fpr::study::fig3_speedup(results).print(std::cout);

  std::cout << "\nPaper-vs-measured speedup (KNL over BDW, Table IV):\n";
  fpr::study::PaperDerived derived;
  for (const auto& k : results.kernels) {
    const auto* row = fpr::study::paper_row(k.info.abbrev);
    if (row == nullptr) continue;
    fpr::bench::compare_line(
        k.info.abbrev, derived.speedup_knl_vs_bdw(*row),
        k.on("BDW").perf.seconds / k.on("KNL").perf.seconds);
  }
  std::cout << "\nPaper-vs-measured speedup (KNM over KNL, Table IV):\n";
  for (const auto& k : results.kernels) {
    const auto* row = fpr::study::paper_row(k.info.abbrev);
    if (row == nullptr) continue;
    fpr::bench::compare_line(
        k.info.abbrev, derived.knm_vs_knl(*row),
        k.on("KNL").perf.seconds / k.on("KNM").perf.seconds);
  }
  return 0;
}
