// Precision-migration study: "what performance impact can HPC users
// expect when migrating their code to future processors with a different
// distribution in floating-point precision support?" (the paper's intro
// question). Runs a chosen kernel, then compares KNL vs KNM and the two
// hypothetical FPU-swapped machines.
//
//   $ ./precision_migration [kernel-abbrev]   (default: CNDL)
#include <iostream>
#include <string>

#include "arch/machines.hpp"
#include "common/table.hpp"
#include "kernels/kernel.hpp"
#include "model/exec_model.hpp"
#include "model/memprofile.hpp"

int main(int argc, char** argv) {
  using namespace fpr;
  const std::string abbrev = argc > 1 ? argv[1] : "CNDL";

  auto kernel = kernels::make(abbrev);
  std::cout << "Characterizing " << kernel->info().name << "...\n";
  kernels::RunConfig cfg;
  cfg.scale = 0.35;
  const auto meas = kernel->run(cfg);
  std::cout << "  FP64 share " << fmt_double(meas.ops.fp64_share() * 100, 1)
            << "%, FP32 share " << fmt_double(meas.ops.fp32_share() * 100, 1)
            << "%, INT share " << fmt_double(meas.ops.int_share() * 100, 1)
            << "%\n\n";

  // Candidate machines: the real twins plus FPU swaps.
  std::vector<arch::CpuSpec> candidates = {
      arch::knl(), arch::knm(), arch::with_fpu_of(arch::knl(), arch::knm()),
      arch::with_fpu_of(arch::knm(), arch::knl())};

  TextTable t({"Machine", "FP64 peak", "FP32 peak", "t2sol [s]",
               "Gflop/s", "bound"});
  double t_knl = 0.0, t_knm = 0.0;
  for (const auto& cpu : candidates) {
    const auto mem = model::profile_memory(cpu, meas);
    const auto ev = model::evaluate_at_turbo(cpu, meas, mem);
    if (cpu.short_name == "KNL") t_knl = ev.seconds;
    if (cpu.short_name == "KNM") t_knm = ev.seconds;
    t.row()
        .cell(cpu.short_name)
        .num(cpu.peak_gflops(arch::Precision::fp64), 0)
        .num(cpu.peak_gflops(arch::Precision::fp32), 0)
        .num(ev.seconds, 3)
        .num(ev.gflops, 1)
        .cell(std::string(model::to_string(ev.bound)))
        .done();
  }
  t.print(std::cout);

  const double delta = (t_knm / t_knl - 1.0) * 100.0;
  std::cout << "\nMigrating " << abbrev
            << " from the FP64-rich KNL to the FP64-poor KNM changes "
               "time-to-solution by "
            << fmt_double(delta, 1) << "%.\n"
            << (std::abs(delta) < 15.0
                    ? "Verdict: the double-precision silicon was an "
                      "embarrassment of riches for this workload.\n"
                    : "Verdict: this workload actually exercises the FPU "
                      "distribution - check the precision mix above.\n");
  return 0;
}
