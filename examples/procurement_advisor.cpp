// Procurement advisor: the paper's Sec. V-B/V-C scenario. Given a
// site's domain mix (node-hour shares), project the achievable fraction
// of peak on each candidate machine and report whether paying for FP64
// silicon is worth it — the NASA Pleiades-style decision (Sec. V-C).
// The second half asks the Sec. VII what-if question directly: the
// built-in KNL variant grid (fewer FP64 pipes, more bandwidth, more
// MCDRAM, more cores, tighter TDP) is evaluated on the same run, so the
// advice names the silicon shift that would serve this mix best.
//
//   $ ./procurement_advisor [geo chm phy qcd mat eng mcs bio]
//     (shares; default: a weather-center-like mix)
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "arch/variant.hpp"
#include "common/table.hpp"
#include "study/domain_util.hpp"
#include "study/figures.hpp"
#include "study/study.hpp"

int main(int argc, char** argv) {
  using namespace fpr;

  study::SiteUtilization site;
  site.site = "your-site";
  if (argc >= 9) {
    site.geo = std::atof(argv[1]);
    site.chm = std::atof(argv[2]);
    site.phy = std::atof(argv[3]);
    site.qcd = std::atof(argv[4]);
    site.mat = std::atof(argv[5]);
    site.eng = std::atof(argv[6]);
    site.mcs = std::atof(argv[7]);
    site.bio = std::atof(argv[8]);
  } else {
    // Weather-forecasting-heavy center (the paper's JMA example:
    // memory-bound stencils dominate).
    site.geo = 0.7;
    site.phy = 0.2;
    site.eng = 0.1;
    std::cout << "(no shares given; using a weather-center-like mix: "
                 "70% geo, 20% phy, 10% eng)\n\n";
  }

  std::cout << "Running the proxy suite to characterize the domains...\n";
  study::StudyConfig cfg;
  cfg.scale = 0.25;
  cfg.freq_sweep = false;
  cfg.trace_refs = 120'000;
  // One study over the Table I machines PLUS the built-in KNL what-if
  // grid: every kernel still runs instrumented exactly once.
  cfg.machines = arch::all_machines();
  const auto base = arch::knl();
  std::vector<arch::MachineVariant> variants;
  for (const auto& spec : arch::builtin_variant_specs(base)) {
    variants.push_back(arch::derive_variant(base, spec));
    cfg.machines.push_back(variants.back().cpu);
  }
  const auto results = study::run_study(cfg);

  TextTable t({"Machine", "Projected % of peak", "FP64 peak [Gflop/s]",
               "Effective Gflop/s"});
  for (const auto& cpu : arch::all_machines()) {
    const double pct =
        study::project_site_pct_peak(site, results, cpu.short_name);
    const double peak = cpu.peak_gflops(arch::Precision::fp64);
    t.row()
        .cell(cpu.short_name)
        .num(pct, 1)
        .num(peak, 0)
        .num(peak * pct / 100.0, 0)
        .done();
  }
  t.print(std::cout);

  const double knl =
      study::project_site_pct_peak(site, results, "KNL");
  const double knm =
      study::project_site_pct_peak(site, results, "KNM");
  std::cout << "\nAdvice: your mix reaches " << fmt_double(knl, 1)
            << "% of KNL's peak vs " << fmt_double(knm, 1)
            << "% of KNM's.\n"
            << "If these are within a few percent, the paper's conclusion "
               "applies to you:\ndo not pay a premium for FP64-heavy "
               "silicon — invest in memory bandwidth instead\n(Sec. V-C, "
               "the NASA Pleiades example).\n";

  // The Sec. VII what-if: which re-spin of the KNL would serve this mix
  // best? Effective Gflop/s is peak x projected utilization, so a
  // variant that sheds FP64 peak can still win on utilization alone.
  std::cout << "\nWhat-if grid (derived KNL variants on the same run):\n";
  TextTable w({"Variant", "Projected % of peak", "FP64 peak [Gflop/s]",
               "Effective Gflop/s"});
  std::string best_name = "KNL";
  double best_eff = knl * base.peak_gflops(arch::Precision::fp64) / 100.0;
  for (const auto& v : variants) {
    const double pct =
        study::project_site_pct_peak(site, results, v.cpu.short_name);
    const double peak = v.cpu.peak_gflops(arch::Precision::fp64);
    const double eff = peak * pct / 100.0;
    w.row()
        .cell(v.cpu.short_name)
        .num(pct, 1)
        .num(peak, 0)
        .num(eff, 0)
        .done();
    if (eff > best_eff) {
      best_eff = eff;
      best_name = v.cpu.short_name;
    }
  }
  w.print(std::cout);
  std::cout << "\nBest effective throughput for this mix: " << best_name
            << " (" << fmt_double(best_eff, 0) << " Gflop/s).\n";
  return 0;
}
