// Quickstart: run one instrumented proxy kernel, inspect its operation
// mix, and ask the machine model how it would perform on the paper's
// three machines.
//
//   $ ./quickstart [kernel-abbrev]   (default: AMG)
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "common/units.hpp"
#include "kernels/kernel.hpp"
#include "model/exec_model.hpp"
#include "model/memprofile.hpp"
#include "arch/machines.hpp"

int main(int argc, char** argv) {
  using namespace fpr;
  const std::string abbrev = argc > 1 ? argv[1] : "AMG";

  // 1. Run the kernel with instrumentation (the SDE step).
  auto kernel = kernels::make(abbrev);
  std::cout << "Running " << kernel->info().name << " ("
            << kernel->info().paper_input << ")...\n";
  kernels::RunConfig cfg;
  cfg.scale = 0.4;
  const auto meas = kernel->run(cfg);

  std::cout << "  verified:      " << (meas.verified ? "yes" : "no") << "\n"
            << "  host time:     " << fmt_double(meas.host_seconds, 4)
            << " s (assay region only)\n"
            << "  op mix:        FP64 "
            << fmt_double(meas.ops.fp64_share() * 100, 1) << "% | FP32 "
            << fmt_double(meas.ops.fp32_share() * 100, 1) << "% | INT "
            << fmt_double(meas.ops.int_share() * 100, 1) << "%\n"
            << "  paper-scale:   " << format_count(double(meas.ops.fp_total()))
            << "flop, working set " << format_bytes(meas.working_set_bytes)
            << "\n\n";

  // 2. Ask the machine model about the paper's three machines.
  std::cout << "Machine model projection (paper-scale input):\n";
  for (const auto& cpu : arch::all_machines()) {
    const auto mem = model::profile_memory(cpu, meas);
    const auto ev = model::evaluate_at_turbo(cpu, meas, mem);
    std::cout << "  " << cpu.short_name << ": t2sol "
              << fmt_double(ev.seconds, 3) << " s, "
              << fmt_double(ev.gflops, 1) << " Gflop/s ("
              << fmt_double(ev.pct_of_peak, 1) << "% of peak), "
              << fmt_double(ev.mem_throughput_gbs, 1) << " GB/s, "
              << model::to_string(ev.bound) << "-bound\n";
  }
  std::cout << "\nTry: ./quickstart HPL   (the compute-bound outlier)\n"
            << "     ./quickstart XSBn  (gather/latency-bound)\n";
  return 0;
}
