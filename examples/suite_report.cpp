// Suite report: a command-line driver over the whole library — run any
// subset of the proxy suite at any scale, print any figure, export CSV.
// This is the "open-source compilation of our evaluation methodology"
// the paper promises (contribution 3), as a single tool.
//
//   ./suite_report                         # full study, human-readable
//   ./suite_report --kernels AMG,HPL       # subset
//   ./suite_report --scale 0.5 --csv       # bigger inputs, CSV output
//   ./suite_report --figure fig3           # one artifact only
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "study/figures.hpp"
#include "study/study.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

void print(const fpr::TextTable& t, bool csv) {
  if (csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }
  std::cout << "\n";
}

int usage() {
  std::cerr <<
      "usage: suite_report [--kernels A,B,...] [--scale S] [--csv]\n"
      "                    [--figure fig1|fig2|fig3|fig4|fig5|fig6|fig7|"
      "table4|all]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fpr;
  study::StudyConfig cfg;
  cfg.scale = 0.3;
  bool csv = false;
  std::string figure = "all";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::exit(usage());
      }
      return argv[++i];
    };
    if (arg == "--kernels") {
      cfg.kernels = split_csv(next());
    } else if (arg == "--scale") {
      cfg.scale = std::atof(next());
      if (cfg.scale <= 0.0) return usage();
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--figure") {
      figure = next();
    } else {
      return usage();
    }
  }

  std::cerr << "[suite_report] running "
            << (cfg.kernels.empty() ? std::string("all 24")
                                    : std::to_string(cfg.kernels.size()))
            << " kernels at scale " << cfg.scale << "...\n";
  const auto results = study::run_study(cfg);

  auto want = [&](const char* name) {
    return figure == "all" || figure == name;
  };
  if (want("fig1")) print(study::fig1_opmix(results), csv);
  if (want("fig2")) {
    print(study::fig2_relative_flops(results), csv);
    print(study::fig2_pct_of_peak(results), csv);
  }
  if (want("fig3")) print(study::fig3_speedup(results), csv);
  if (want("fig4")) print(study::fig4_membw(results), csv);
  if (want("fig5")) print(study::fig5_roofline(results), csv);
  if (want("fig6")) {
    for (const char* m : {"KNL", "KNM", "BDW"}) {
      print(study::fig6_freqscale(results, m), csv);
    }
  }
  if (want("fig7")) print(study::fig7_site_utilization(results), csv);
  if (want("table4")) {
    for (const char* m : {"KNL", "KNM", "BDW"}) {
      print(study::table4_metrics(results, m), csv);
    }
  }
  return 0;
}
