// Frequency explorer: the paper's Sec. IV-E boundedness diagnostic as an
// interactive tool. Runs a kernel, sweeps the core frequency on each
// machine (uncore fixed), and classifies the kernel as compute-, memory-,
// latency- or I/O-bound from the scaling curve.
//
//   $ ./frequency_explorer [kernel-abbrev]   (default: MxIO)
#include <cmath>
#include <iostream>
#include <string>

#include "arch/machines.hpp"
#include "common/table.hpp"
#include "kernels/kernel.hpp"
#include "model/exec_model.hpp"
#include "model/memprofile.hpp"

int main(int argc, char** argv) {
  using namespace fpr;
  const std::string abbrev = argc > 1 ? argv[1] : "MxIO";

  auto kernel = kernels::make(abbrev);
  std::cout << "Frequency-throttling study for " << kernel->info().name
            << " (cf. paper Fig. 6)\n\n";
  kernels::RunConfig cfg;
  cfg.scale = 0.35;
  const auto meas = kernel->run(cfg);

  for (const auto& cpu : arch::all_machines()) {
    const auto mem = model::profile_memory(cpu, meas);
    std::cout << cpu.name << ":\n";
    TextTable t({"Frequency", "t2sol [s]", "speedup vs lowest"});
    double slowest = 0.0;
    double first_t = 0.0, last_t = 0.0, first_f = 0.0, last_f = 0.0;
    for (const auto& fs : cpu.frequency_sweep()) {
      const auto ev = model::evaluate(cpu, fs.ghz, meas, mem);
      if (slowest == 0.0) {
        slowest = ev.seconds;
        first_t = ev.seconds;
        first_f = fs.ghz;
      }
      last_t = ev.seconds;
      last_f = fs.ghz;
      t.row()
          .cell(fmt_double(fs.ghz, 1) + " GHz" + (fs.turbo ? " +TB" : ""))
          .num(ev.seconds, 3)
          .num(slowest / ev.seconds, 3)
          .done();
    }
    t.print(std::cout);
    // Scaling exponent: 1.0 => perfectly frequency-bound, 0 => flat.
    const double gain = first_t / last_t;
    const double fratio = last_f / first_f;
    const double exponent = std::log(gain) / std::log(fratio);
    std::cout << "  frequency-scaling exponent: " << fmt_double(exponent, 2)
              << "  (" << (exponent > 0.7
                               ? "compute/CPU-bound"
                               : exponent > 0.3 ? "mixed"
                                                : "memory/latency-bound")
              << ")\n\n";
  }
  std::cout << "Paper observations to compare against: HPL ~1.0 on BDW but "
               "limited on KNL; AMG/MiFE become\ncompute-bound on the Phis "
               "(MCDRAM removes the memory wall); HPCG stays flat on the "
               "Phis;\nMACSio scales because Linux-kernel I/O work is "
               "frequency-bound (Sec. IV-E).\n";
  return 0;
}
