// fpr-lint executable: lint the given files/directories and print one
// line per finding. Exit codes: 0 clean, 1 findings, 2 usage/IO error.
//
//   fpr-lint src/                      # the CTest gate invocation
//   fpr-lint --rules=naked-new src/kernels/hpl.cpp
//   fpr-lint --list-rules
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint_core.hpp"

namespace {

int usage(std::ostream& err) {
  err << "usage: fpr-lint [--rules=a,b,...] [--list-rules] <file|dir>...\n"
         "Checks fpr project invariants (see docs/INVARIANTS.md).\n"
         "Suppress a single finding with a comment on or above the line:\n"
         "  // fpr-lint: allow(rule-name)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::vector<std::string> rules;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    }
    if (arg == "--list-rules") {
      for (const auto& name : fpr::lint::rule_names()) {
        std::cout << name << ": " << fpr::lint::rule_description(name)
                  << "\n";
      }
      return 0;
    }
    if (arg.rfind("--rules=", 0) == 0) {
      std::stringstream ss(arg.substr(8));
      std::string rule;
      while (std::getline(ss, rule, ',')) {
        if (!rule.empty()) rules.push_back(rule);
      }
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "fpr-lint: unknown option '" << arg << "'\n";
      return usage(std::cerr);
    }
    paths.push_back(arg);
  }
  if (paths.empty()) return usage(std::cerr);

  std::vector<fpr::lint::Finding> findings;
  try {
    for (const auto& path : paths) {
      auto f = fpr::lint::lint_tree(path, rules);
      findings.insert(findings.end(), f.begin(), f.end());
    }
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  for (const auto& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  if (!findings.empty()) {
    std::cerr << "fpr-lint: " << findings.size() << " finding(s)\n";
    return 1;
  }
  return 0;
}
