// fpr-lint executable: lint the given files/directories and print one
// line per finding. Exit codes: kExitOk (0) clean, kExitFindings (1)
// findings, kExitUsage (2) usage/IO error.
//
//   fpr-lint src/                      # the CTest gate invocation
//   fpr-lint --format json src/        # machine-readable findings
//   fpr-lint --graph dot src/          # include-graph DOT export
//   fpr-lint --rules=naked-new src/kernels/hpl.cpp
//   fpr-lint --list-rules
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint_core.hpp"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitFindings = 1;
constexpr int kExitUsage = 2;

int usage(std::ostream& err) {
  err << "usage: fpr-lint [--rules=a,b,...] [--format text|json]\n"
         "                [--graph dot] [--list-rules] <file|dir>...\n"
         "Checks fpr project invariants (see docs/INVARIANTS.md).\n"
         "All paths are linted together as one project, so the\n"
         "project-wide passes (include-cycle, cross-TU odr-header-def,\n"
         "stale-suppression) see every file at once.\n"
         "Suppress a single finding with a comment on or above the line:\n"
         "  // fpr-lint: allow(rule-name)\n";
  return kExitUsage;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// Field order is part of the output contract (file, line, rule,
// message) — CI archives these files and diffs them across runs.
void print_json(const std::vector<fpr::lint::Finding>& findings,
                std::ostream& out) {
  out << "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const auto& f = findings[i];
    out << (i == 0 ? "\n" : ",\n")
        << "  {\"file\": \"" << json_escape(f.file) << "\", "
        << "\"line\": " << f.line << ", "
        << "\"rule\": \"" << json_escape(f.rule) << "\", "
        << "\"message\": \"" << json_escape(f.message) << "\"}";
  }
  out << (findings.empty() ? "]\n" : "\n]\n");
}

std::vector<fpr::lint::SourceFile> read_sources(
    const std::vector<std::string>& paths) {
  std::vector<fpr::lint::SourceFile> sources;
  for (const auto& root : paths) {
    for (const auto& path : fpr::lint::collect_tree(root)) {
      std::ifstream in(path, std::ios::binary);
      if (!in) throw std::runtime_error("fpr-lint: cannot read " + path);
      std::ostringstream ss;
      ss << in.rdbuf();
      sources.push_back({path, ss.str()});
    }
  }
  return sources;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::vector<std::string> rules;
  std::string format = "text";
  std::string graph;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return kExitOk;
    }
    if (arg == "--list-rules") {
      for (const auto& name : fpr::lint::rule_names()) {
        std::cout << name << ": " << fpr::lint::rule_description(name)
                  << "\n";
      }
      return kExitOk;
    }
    if (arg.rfind("--rules=", 0) == 0) {
      std::stringstream ss(arg.substr(8));
      std::string rule;
      while (std::getline(ss, rule, ',')) {
        if (!rule.empty()) rules.push_back(rule);
      }
      continue;
    }
    if (arg == "--format") {
      if (i + 1 >= argc) return usage(std::cerr);
      format = argv[++i];
      if (format != "text" && format != "json") {
        std::cerr << "fpr-lint: unknown format '" << format << "'\n";
        return usage(std::cerr);
      }
      continue;
    }
    if (arg == "--graph") {
      if (i + 1 >= argc) return usage(std::cerr);
      graph = argv[++i];
      if (graph != "dot") {
        std::cerr << "fpr-lint: unknown graph format '" << graph << "'\n";
        return usage(std::cerr);
      }
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "fpr-lint: unknown option '" << arg << "'\n";
      return usage(std::cerr);
    }
    paths.push_back(arg);
  }
  if (paths.empty()) return usage(std::cerr);

  try {
    const auto sources = read_sources(paths);
    if (!graph.empty()) {
      std::cout << fpr::lint::include_graph_dot(
          fpr::lint::build_include_graph(sources));
      return kExitOk;
    }
    const auto findings = fpr::lint::lint_sources(sources, rules);
    if (format == "json") {
      print_json(findings, std::cout);
    } else {
      for (const auto& f : findings) {
        std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message << "\n";
      }
    }
    if (!findings.empty()) {
      std::cerr << "fpr-lint: " << findings.size() << " finding(s)\n";
      return kExitFindings;
    }
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return kExitUsage;
  }
  return kExitOk;
}
