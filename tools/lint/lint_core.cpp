#include "lint_core.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace fpr::lint {
namespace {

// ---------------------------------------------------------------------------
// Rule catalogue
// ---------------------------------------------------------------------------

struct RuleInfo {
  const char* name;
  const char* desc;
};

constexpr RuleInfo kRules[] = {
    {"global-thread-pool",
     "ThreadPool::global() outside the compatibility shim; run on an "
     "ExecutionContext-owned pool so kernel runs stay isolated"},
    {"nondeterministic-call",
     "wall-clock/system-entropy call in a determinism-sensitive path "
     "(src/{memsim,model,study,arch,io}); take seeds and timestamps as "
     "parameters (common/rng.hpp) so results replay bit-identically"},
    {"counters-without-context",
     "legacy process-wide counter registry access outside src/counters; "
     "count through an ExecutionContext sink (counters::add_* inside a "
     "bound region) so tallies stay run-scoped"},
    {"non-const-global",
     "mutable namespace-scope state in src/; scope it to a run "
     "(ExecutionContext) or make it const/constexpr"},
    {"naked-new",
     "naked allocation in a kernel/memsim/io hot path; use "
     "AlignedBuffer/std::vector so buffers are sized once and reused"},
    {"pragma-once",
     "header under src/ lacks #pragma once; every header must be "
     "self-contained and safely includable"},
};

bool known_rule(const std::string& name) {
  for (const auto& r : kRules) {
    if (name == r.name) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Source preparation: blank comments, string/char literals, and
// preprocessor directives so rule patterns only ever match code; collect
// `fpr-lint: allow(rule[,rule])` suppression comments along the way.
// ---------------------------------------------------------------------------

struct Prepared {
  std::string code;                 // same length/line structure as input
  std::vector<std::size_t> lines;   // offset of each line start
  std::multimap<int, std::string> allows;  // line -> allowed rule ("*" = any)
  bool has_pragma_once = false;
};

int line_of(const Prepared& p, std::size_t offset) {
  auto it = std::upper_bound(p.lines.begin(), p.lines.end(), offset);
  return static_cast<int>(it - p.lines.begin());
}

bool allowed(const Prepared& p, int line, const std::string& rule) {
  for (auto [it, end] = p.allows.equal_range(line); it != end; ++it) {
    if (it->second == "*" || it->second == rule) return true;
  }
  return false;
}

// Parse "fpr-lint: allow(a, b)" out of a comment; the suppression covers
// the comment's own line and the line directly below it (so it can sit
// on its own line above the flagged statement).
void record_allows(Prepared& p, std::string_view comment, int line) {
  static const std::regex kAllow(R"(fpr-lint:\s*allow\(([^)]*)\))");
  std::match_results<std::string_view::const_iterator> m;
  if (!std::regex_search(comment.begin(), comment.end(), m, kAllow)) return;
  std::string list = m[1].str();
  std::stringstream ss(list);
  std::string rule;
  while (std::getline(ss, rule, ',')) {
    const auto b = rule.find_first_not_of(" \t");
    const auto e = rule.find_last_not_of(" \t");
    if (b == std::string::npos) continue;
    rule = rule.substr(b, e - b + 1);
    p.allows.emplace(line, rule);
    p.allows.emplace(line + 1, rule);
  }
}

Prepared prepare(std::string_view text) {
  Prepared p;
  p.code.assign(text.size(), ' ');
  p.lines.push_back(0);
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') p.lines.push_back(i + 1);
  }

  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State st = State::kCode;
  std::size_t token_start = 0;   // start of current comment/literal
  std::string raw_delim;         // raw string closing delimiter ")xyz\""
  bool line_has_code = false;    // non-ws code seen on this line yet
  bool in_directive = false;     // inside a # logical line
  std::size_t directive_start = 0;

  auto flush_comment = [&](std::size_t end) {
    record_allows(p, text.substr(token_start, end - token_start),
                  line_of(p, token_start));
  };
  auto end_directive = [&](std::size_t end) {
    std::string_view dir = text.substr(directive_start, end - directive_start);
    if (dir.find("pragma") != std::string_view::npos &&
        dir.find("once") != std::string_view::npos) {
      p.has_pragma_once = true;
    }
    in_directive = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char n = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (st) {
      case State::kCode: {
        if (in_directive) {
          if (c == '\n' && (i == 0 || text[i - 1] != '\\')) {
            end_directive(i);
            line_has_code = false;
          } else if (c == '/' && n == '/') {
            end_directive(i);
            st = State::kLine;
            token_start = i;
          } else if (c == '/' && n == '*') {
            st = State::kBlock;
            token_start = i;
            ++i;
          }
          break;  // directive bytes stay blank in p.code
        }
        if (c == '#' && !line_has_code) {
          in_directive = true;
          directive_start = i;
          break;
        }
        if (c == '/' && n == '/') {
          st = State::kLine;
          token_start = i;
        } else if (c == '/' && n == '*') {
          st = State::kBlock;
          token_start = i;
          ++i;
        } else if (c == 'R' && n == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   text[i - 1])) &&
                               text[i - 1] != '_'))) {
          std::size_t open = text.find('(', i + 2);
          if (open != std::string_view::npos) {
            raw_delim = ")";
            raw_delim.append(text.substr(i + 2, open - (i + 2)));
            raw_delim.push_back('"');
            st = State::kRaw;
            p.code[i] = 'R';  // keep something word-like so \b works
            i = open;         // skip past the opening delimiter
          } else {
            p.code[i] = c;
          }
        } else if (c == '"') {
          st = State::kString;
          p.code[i] = '"';
        } else if (c == '\'') {
          st = State::kChar;
          p.code[i] = '\'';
        } else {
          p.code[i] = c;
          if (!std::isspace(static_cast<unsigned char>(c))) {
            line_has_code = true;
          }
        }
        if (c == '\n') line_has_code = false;
        break;
      }
      case State::kLine:
        if (c == '\n') {
          flush_comment(i);
          st = State::kCode;
          line_has_code = false;
        }
        break;
      case State::kBlock:
        if (c == '*' && n == '/') {
          flush_comment(i + 2);
          st = State::kCode;
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          p.code[i] = '"';
          st = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          p.code[i] = '\'';
          st = State::kCode;
        }
        break;
      case State::kRaw:
        if (c == ')' &&
            text.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          st = State::kCode;
        }
        break;
    }
    if (c == '\n') p.code[i] = '\n';  // keep line structure when blanked
  }
  if (st == State::kLine) flush_comment(text.size());
  if (in_directive) end_directive(text.size());
  return p;
}

// ---------------------------------------------------------------------------
// Path scoping
// ---------------------------------------------------------------------------

// Repo-relative tail of `path`: the substring starting at its last
// "src/" path component, or the normalized path itself when none.
std::string repo_rel(const std::string& path) {
  std::string norm = path;
  std::replace(norm.begin(), norm.end(), '\\', '/');
  if (norm.rfind("./", 0) == 0) norm.erase(0, 2);
  if (norm.rfind("src/", 0) == 0) return norm;
  const auto at = norm.rfind("/src/");
  if (at != std::string::npos) return norm.substr(at + 1);
  return norm;
}

bool starts_with(const std::string& s, std::string_view prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// ---------------------------------------------------------------------------
// Pattern rules
// ---------------------------------------------------------------------------

void scan_pattern(const Prepared& p, const std::regex& re,
                  const std::string& file, const char* rule,
                  const char* message, std::vector<Finding>& out) {
  auto begin = std::sregex_iterator(p.code.begin(), p.code.end(), re);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const int line = line_of(p, static_cast<std::size_t>(it->position()));
    if (allowed(p, line, rule)) continue;
    out.push_back({file, line, rule, message});
  }
}

// ---------------------------------------------------------------------------
// non-const-global: a small brace-tracking scanner over the blanked
// source. Flags variable definitions/declarations at namespace scope
// (including anonymous namespaces) that are not const/constexpr/
// constinit. thread_local is exempt by design: per-thread slots are the
// documented routing mechanism for context-scoped counting, not shared
// mutable state.
// ---------------------------------------------------------------------------

bool contains_word(const std::string& s, std::string_view word) {
  std::size_t at = 0;
  while ((at = s.find(word.data(), at, word.size())) != std::string::npos) {
    const bool left_ok =
        at == 0 || (!std::isalnum(static_cast<unsigned char>(s[at - 1])) &&
                    s[at - 1] != '_');
    const std::size_t after = at + word.size();
    const bool right_ok =
        after >= s.size() ||
        (!std::isalnum(static_cast<unsigned char>(s[after])) &&
         s[after] != '_');
    if (left_ok && right_ok) return true;
    at = after;
  }
  return false;
}

// Does `stmt` (a namespace-scope statement with initializer stripped)
// look like a mutable variable declaration?
bool is_mutable_decl(const std::string& stmt) {
  static constexpr std::string_view kSkipWords[] = {
      "const",    "constexpr",     "constinit", "using",  "typedef",
      "friend",   "template",      "operator",  "static_assert",
      "namespace", "class",        "struct",    "union",  "enum",
      "thread_local", "concept",   "requires",  "asm",    "goto",
  };
  for (const auto w : kSkipWords) {
    if (contains_word(stmt, w)) return false;
  }
  if (stmt.find('(') != std::string::npos) return false;  // function-ish
  // Strip any initializer: the declarator part is what must look like
  // "type name" / "type name[N]".
  std::string decl = stmt.substr(0, stmt.find('='));
  static const std::regex kDecl(
      R"(^\s*(?:static\s+|inline\s+|extern\s+)*[A-Za-z_][A-Za-z0-9_:<>,\s\*&]*[\s\*&]+[A-Za-z_][A-Za-z0-9_]*\s*(?:\[[^\]]*\]\s*)*$)");
  return std::regex_match(decl, kDecl);
}

void scan_globals(const Prepared& p, const std::string& file,
                  std::vector<Finding>& out) {
  constexpr const char* kRule = "non-const-global";
  constexpr const char* kMsg =
      "mutable namespace-scope variable; make it const/constexpr or move "
      "it into run-scoped state (ExecutionContext)";

  struct Scope {
    bool is_namespace = false;
    std::string preamble;  // statement text that opened a non-ns brace
  };
  std::vector<Scope> scopes;
  int other_depth = 0;   // braces opened by anything but `namespace`
  std::string stmt;
  std::size_t stmt_start = std::string::npos;

  auto analyze = [&]() {
    if (stmt_start != std::string::npos && is_mutable_decl(stmt)) {
      const int line = line_of(p, stmt_start);
      if (!allowed(p, line, kRule)) out.push_back({file, line, kRule, kMsg});
    }
    stmt.clear();
    stmt_start = std::string::npos;
  };

  for (std::size_t i = 0; i < p.code.size(); ++i) {
    const char c = p.code[i];
    if (other_depth > 0) {
      if (c == '{') {
        scopes.push_back({false, {}});
        ++other_depth;
      } else if (c == '}') {
        const Scope closed = scopes.back();
        scopes.pop_back();
        --other_depth;
        if (other_depth == 0) {
          // Back at namespace scope: a function body ends the statement,
          // an initializer / class body continues it up to the `;`.
          if (closed.preamble.find('(') != std::string::npos) {
            stmt.clear();
            stmt_start = std::string::npos;
          } else {
            stmt = closed.preamble;
          }
        }
      }
      continue;
    }
    switch (c) {
      case '{': {
        if (contains_word(stmt, "namespace")) {
          scopes.push_back({true, {}});
          stmt.clear();
          stmt_start = std::string::npos;
        } else {
          scopes.push_back({false, stmt});
          ++other_depth;
        }
        break;
      }
      case '}': {
        if (!scopes.empty()) scopes.pop_back();
        stmt.clear();
        stmt_start = std::string::npos;
        break;
      }
      case ';':
        analyze();
        break;
      default:
        if (!std::isspace(static_cast<unsigned char>(c))) {
          if (stmt_start == std::string::npos) stmt_start = i;
          stmt.push_back(c);
        } else if (!stmt.empty() && stmt.back() != ' ') {
          stmt.push_back(' ');
        }
        break;
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

std::vector<std::string> rule_names() {
  std::vector<std::string> names;
  for (const auto& r : kRules) names.emplace_back(r.name);
  return names;
}

std::string rule_description(const std::string& rule) {
  for (const auto& r : kRules) {
    if (rule == r.name) return r.desc;
  }
  throw std::invalid_argument("fpr-lint: unknown rule '" + rule + "'");
}

std::vector<Finding> lint_source(const std::string& path,
                                 std::string_view text,
                                 const std::vector<std::string>& enabled) {
  for (const auto& r : enabled) {
    if (!known_rule(r)) {
      throw std::invalid_argument("fpr-lint: unknown rule '" + r + "'");
    }
  }
  auto on = [&](const char* rule) {
    return enabled.empty() ||
           std::find(enabled.begin(), enabled.end(), rule) != enabled.end();
  };

  const std::string rel = repo_rel(path);
  const Prepared p = prepare(text);
  std::vector<Finding> out;

  if (on("global-thread-pool") && starts_with(rel, "src/") &&
      rel != "src/common/thread_pool.hpp" &&
      rel != "src/common/thread_pool.cpp") {
    static const std::regex re(R"(ThreadPool\s*::\s*global\b)");
    scan_pattern(p, re, path, "global-thread-pool",
                 rule_description("global-thread-pool").c_str(), out);
  }

  if (on("nondeterministic-call") &&
      (starts_with(rel, "src/memsim/") || starts_with(rel, "src/model/") ||
       starts_with(rel, "src/study/") || starts_with(rel, "src/arch/") ||
       starts_with(rel, "src/io/"))) {
    static const std::regex re(
        R"(\b(?:rand|srand|clock|time|gettimeofday)\s*\()"
        R"(|\brandom_device\b)"
        R"(|\b(?:steady_clock|system_clock|high_resolution_clock)\b)"
        R"(|\bWallTimer\b)");
    scan_pattern(p, re, path, "nondeterministic-call",
                 rule_description("nondeterministic-call").c_str(), out);
  }

  if (on("counters-without-context") && starts_with(rel, "src/") &&
      !starts_with(rel, "src/counters/")) {
    static const std::regex re(
        R"(\b(?:global_snapshot|reset_all|local_tally)\s*\()");
    scan_pattern(p, re, path, "counters-without-context",
                 rule_description("counters-without-context").c_str(), out);
  }

  if (on("naked-new") && (starts_with(rel, "src/kernels/") ||
                          starts_with(rel, "src/memsim/") ||
                          starts_with(rel, "src/io/"))) {
    static const std::regex re(
        R"(\bnew\b|\b(?:malloc|calloc|realloc|strdup|aligned_alloc)\s*\()");
    scan_pattern(p, re, path, "naked-new",
                 rule_description("naked-new").c_str(), out);
  }

  if (on("non-const-global") && starts_with(rel, "src/")) {
    scan_globals(p, path, out);
  }

  if (on("pragma-once") && starts_with(rel, "src/") &&
      ends_with(rel, ".hpp")) {
    if (!p.has_pragma_once && !allowed(p, 1, "pragma-once")) {
      out.push_back({path, 1, "pragma-once",
                     rule_description("pragma-once")});
    }
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return out;
}

std::vector<Finding> lint_file(const std::string& path,
                               const std::vector<std::string>& enabled) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("fpr-lint: cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return lint_source(path, ss.str(), enabled);
}

std::vector<Finding> lint_tree(const std::string& root,
                               const std::vector<std::string>& enabled) {
  namespace fs = std::filesystem;
  const fs::path r(root);
  if (fs::is_regular_file(r)) return lint_file(root, enabled);
  if (!fs::is_directory(r)) {
    throw std::runtime_error("fpr-lint: no such file or directory: " + root);
  }
  std::vector<std::string> files;
  for (const auto& entry : fs::recursive_directory_iterator(r)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension().string();
    if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc") {
      files.push_back(entry.path().generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<Finding> out;
  for (const auto& f : files) {
    auto fs_out = lint_file(f, enabled);
    out.insert(out.end(), std::make_move_iterator(fs_out.begin()),
               std::make_move_iterator(fs_out.end()));
  }
  return out;
}

}  // namespace fpr::lint
