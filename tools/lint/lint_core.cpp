#include "lint_core.hpp"

#include <algorithm>
#include <cctype>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace fpr::lint {
namespace {

// ---------------------------------------------------------------------------
// Rule catalogue
// ---------------------------------------------------------------------------

struct RuleInfo {
  const char* name;
  const char* desc;
};

constexpr RuleInfo kRules[] = {
    {"global-thread-pool",
     "ThreadPool::global() outside the compatibility shim; run on an "
     "ExecutionContext-owned pool so kernel runs stay isolated"},
    {"nondeterministic-call",
     "wall-clock/system-entropy call in a determinism-sensitive path "
     "(src/{memsim,model,study,arch,io}); take seeds and timestamps as "
     "parameters (common/rng.hpp) so results replay bit-identically"},
    {"counters-without-context",
     "legacy process-wide counter registry access outside src/counters; "
     "count through an ExecutionContext sink (counters::add_* inside a "
     "bound region) so tallies stay run-scoped"},
    {"non-const-global",
     "mutable namespace-scope state in src/; scope it to a run "
     "(ExecutionContext) or make it const/constexpr"},
    {"naked-new",
     "naked allocation in a kernel/memsim/io hot path; use "
     "AlignedBuffer/std::vector so buffers are sized once and reused"},
    {"pragma-once",
     "header under src/ lacks #pragma once; every header must be "
     "self-contained and safely includable"},
    {"layer-violation",
     "include edge that climbs the architecture DAG (common -> counters "
     "-> arch -> memsim -> kernels -> model -> study -> io -> cli); a "
     "lower layer must not include a higher one"},
    {"include-cycle",
     "cyclic #include chain among project headers; break it with a "
     "forward declaration or an interface split"},
    {"odr-header-def",
     "non-inline, non-template definition visible to multiple "
     "translation units (header definition or cross-TU duplicate); mark "
     "it inline or move it into one .cpp"},
    {"shared-mutable-capture",
     "non-const, non-atomic local captured by reference and written "
     "inside a parallel-region lambda; workers race on it — use a "
     "per-worker slot (index by the worker id) or an atomic"},
    {"bare-exit-code",
     "integer-literal exit code in a command handler (src/cli, tools/); "
     "return a named kExit* constant so exit-code meaning stays "
     "greppable and consistent across commands"},
    {"stale-suppression",
     "fpr-lint: allow(...) comment that suppresses no finding on its "
     "line or the line below; delete it so suppressions cannot outlive "
     "the code they excused"},
};

bool known_rule(const std::string& name) {
  for (const auto& r : kRules) {
    if (name == r.name) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Architecture layers
// ---------------------------------------------------------------------------

// The architecture DAG, bottom-up. The paper-facing statement keeps
// kernels and memsim on one conceptual level; the gate orders memsim
// below kernels because kernels describe their footprints with memsim
// access-pattern specs (memsim never calls back into kernels). See
// docs/ARCHITECTURE.md.
constexpr const char* kLayerDirs[] = {
    "common", "counters", "arch", "memsim", "kernels",
    "model",  "study",    "io",   "cli",
};

std::string first_component(const std::string& rel) {
  const auto slash = rel.find('/');
  return slash == std::string::npos ? rel : rel.substr(0, slash);
}

// ---------------------------------------------------------------------------
// Source preparation: blank comments, string/char literals, and
// preprocessor directives so rule patterns only ever match code;
// collect `fpr-lint: allow(rule[,rule])` suppression comments and
// quoted #include targets along the way.
// ---------------------------------------------------------------------------

struct AllowEntry {
  int line = 0;       // the comment's own line; covers line and line+1
  std::string rule;   // rule name, or "*" for any
  bool used = false;  // did the suppression silence a finding?
};

struct IncludeDirective {
  int line = 0;
  std::string target;  // the quoted path, verbatim
};

struct Prepared {
  std::string code;                // same length/line structure as input
  std::vector<std::size_t> lines;  // offset of each line start
  std::vector<AllowEntry> allows;
  std::vector<IncludeDirective> includes;
  std::vector<int> directive_lines;  // start line of each # directive
  bool has_pragma_once = false;
};

int line_of(const Prepared& p, std::size_t offset) {
  auto it = std::upper_bound(p.lines.begin(), p.lines.end(), offset);
  return static_cast<int>(it - p.lines.begin());
}

// Consult (and consume) a suppression: a match marks the entry used so
// the stale-suppression pass can tell live excuses from dead ones.
bool allowed(Prepared& p, int line, const std::string& rule) {
  for (auto& a : p.allows) {
    if ((a.line == line || a.line + 1 == line) &&
        (a.rule == "*" || a.rule == rule)) {
      a.used = true;
      return true;
    }
  }
  return false;
}

// Parse "fpr-lint: allow(a, b)" out of a comment; the suppression covers
// the comment's own line and the line directly below it (so it can sit
// on its own line above the flagged statement).
void record_allows(Prepared& p, std::string_view comment, int line) {
  static const std::regex kAllow(R"(fpr-lint:\s*allow\(([^)]*)\))");
  std::match_results<std::string_view::const_iterator> m;
  if (!std::regex_search(comment.begin(), comment.end(), m, kAllow)) return;
  std::string list = m[1].str();
  std::stringstream ss(list);
  std::string rule;
  while (std::getline(ss, rule, ',')) {
    const auto b = rule.find_first_not_of(" \t");
    const auto e = rule.find_last_not_of(" \t");
    if (b == std::string::npos) continue;
    rule = rule.substr(b, e - b + 1);
    p.allows.push_back({line, rule, false});
  }
}

Prepared prepare(std::string_view text) {
  Prepared p;
  p.code.assign(text.size(), ' ');
  p.lines.push_back(0);
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') p.lines.push_back(i + 1);
  }

  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State st = State::kCode;
  std::size_t token_start = 0;   // start of current comment/literal
  std::string raw_delim;         // raw string closing delimiter ")xyz\""
  bool line_has_code = false;    // non-ws code seen on this line yet
  bool in_directive = false;     // inside a # logical line
  std::size_t directive_start = 0;

  auto flush_comment = [&](std::size_t end) {
    record_allows(p, text.substr(token_start, end - token_start),
                  line_of(p, token_start));
  };
  auto end_directive = [&](std::size_t end) {
    std::string_view dir = text.substr(directive_start, end - directive_start);
    p.directive_lines.push_back(line_of(p, directive_start));
    if (dir.find("pragma") != std::string_view::npos &&
        dir.find("once") != std::string_view::npos) {
      p.has_pragma_once = true;
    }
    static const std::regex kInclude(R"re(#\s*include\s*"([^"]+)")re");
    std::match_results<std::string_view::const_iterator> m;
    if (std::regex_search(dir.begin(), dir.end(), m, kInclude)) {
      p.includes.push_back({line_of(p, directive_start), m[1].str()});
    }
    in_directive = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char n = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (st) {
      case State::kCode: {
        if (in_directive) {
          if (c == '\n' && (i == 0 || text[i - 1] != '\\')) {
            end_directive(i);
            line_has_code = false;
          } else if (c == '/' && n == '/') {
            end_directive(i);
            st = State::kLine;
            token_start = i;
          } else if (c == '/' && n == '*') {
            st = State::kBlock;
            token_start = i;
            ++i;
          }
          break;  // directive bytes stay blank in p.code
        }
        if (c == '#' && !line_has_code) {
          in_directive = true;
          directive_start = i;
          break;
        }
        if (c == '/' && n == '/') {
          st = State::kLine;
          token_start = i;
        } else if (c == '/' && n == '*') {
          st = State::kBlock;
          token_start = i;
          ++i;
        } else if (c == 'R' && n == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   text[i - 1])) &&
                               text[i - 1] != '_'))) {
          std::size_t open = text.find('(', i + 2);
          if (open != std::string_view::npos) {
            raw_delim = ")";
            raw_delim.append(text.substr(i + 2, open - (i + 2)));
            raw_delim.push_back('"');
            st = State::kRaw;
            p.code[i] = 'R';  // keep something word-like so \b works
            i = open;         // skip past the opening delimiter
          } else {
            p.code[i] = c;
          }
        } else if (c == '"') {
          st = State::kString;
          p.code[i] = '"';
        } else if (c == '\'') {
          st = State::kChar;
          p.code[i] = '\'';
        } else {
          p.code[i] = c;
          if (!std::isspace(static_cast<unsigned char>(c))) {
            line_has_code = true;
          }
        }
        if (c == '\n') line_has_code = false;
        break;
      }
      case State::kLine:
        if (c == '\n') {
          flush_comment(i);
          st = State::kCode;
          line_has_code = false;
        }
        break;
      case State::kBlock:
        if (c == '*' && n == '/') {
          flush_comment(i + 2);
          st = State::kCode;
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          p.code[i] = '"';
          st = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          p.code[i] = '\'';
          st = State::kCode;
        }
        break;
      case State::kRaw:
        if (c == ')' &&
            text.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          st = State::kCode;
        }
        break;
    }
    if (c == '\n') p.code[i] = '\n';  // keep line structure when blanked
  }
  if (st == State::kLine) flush_comment(text.size());
  if (in_directive) end_directive(text.size());

  // A suppression must sit on or directly above code. Drop entries
  // where both covered lines are comment/blank-only: those are syntax
  // examples in documentation, not live suppressions (and they could
  // never silence anything anyway).
  auto line_has_any_code = [&p](int line) {
    if (line < 1 || static_cast<std::size_t>(line) > p.lines.size()) {
      return false;
    }
    // Preprocessor directives are blanked in p.code but are still
    // suppressible statements (#include for layer-violation).
    if (std::find(p.directive_lines.begin(), p.directive_lines.end(),
                  line) != p.directive_lines.end()) {
      return true;
    }
    const std::size_t b = p.lines[static_cast<std::size_t>(line - 1)];
    const std::size_t e = static_cast<std::size_t>(line) < p.lines.size()
                              ? p.lines[static_cast<std::size_t>(line)]
                              : p.code.size();
    for (std::size_t k = b; k < e; ++k) {
      if (!std::isspace(static_cast<unsigned char>(p.code[k]))) return true;
    }
    return false;
  };
  p.allows.erase(std::remove_if(p.allows.begin(), p.allows.end(),
                                [&](const AllowEntry& a) {
                                  return !line_has_any_code(a.line) &&
                                         !line_has_any_code(a.line + 1);
                                }),
                 p.allows.end());
  return p;
}

// ---------------------------------------------------------------------------
// Path scoping
// ---------------------------------------------------------------------------

// Repo-relative tail of `path`: the substring starting at its last
// "src/" (or "tools/", "bench/", "tests/") path component, or the
// normalized path itself when none.
std::string repo_rel(const std::string& path) {
  std::string norm = path;
  std::replace(norm.begin(), norm.end(), '\\', '/');
  if (norm.rfind("./", 0) == 0) norm.erase(0, 2);
  for (const char* root : {"src/", "tools/", "bench/", "tests/"}) {
    if (norm.rfind(root, 0) == 0) return norm;
    const auto at = norm.rfind("/" + std::string(root));
    if (at != std::string::npos) return norm.substr(at + 1);
  }
  return norm;
}

bool starts_with(const std::string& s, std::string_view prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_header(const std::string& rel) {
  return ends_with(rel, ".hpp") || ends_with(rel, ".h");
}

bool is_translation_unit(const std::string& rel) {
  return ends_with(rel, ".cpp") || ends_with(rel, ".cc");
}

// ---------------------------------------------------------------------------
// Pattern rules
// ---------------------------------------------------------------------------

void scan_pattern(Prepared& p, const std::regex& re, const std::string& file,
                  const char* rule, const char* message,
                  std::vector<Finding>& out) {
  auto begin = std::sregex_iterator(p.code.begin(), p.code.end(), re);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const int line = line_of(p, static_cast<std::size_t>(it->position()));
    if (allowed(p, line, rule)) continue;
    out.push_back({file, line, rule, message});
  }
}

bool contains_word(const std::string& s, std::string_view word) {
  std::size_t at = 0;
  while ((at = s.find(word.data(), at, word.size())) != std::string::npos) {
    const bool left_ok =
        at == 0 || (!std::isalnum(static_cast<unsigned char>(s[at - 1])) &&
                    s[at - 1] != '_');
    const std::size_t after = at + word.size();
    const bool right_ok =
        after >= s.size() ||
        (!std::isalnum(static_cast<unsigned char>(s[after])) &&
         s[after] != '_');
    if (left_ok && right_ok) return true;
    at = after;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Namespace-scope declaration scanner: a small brace-tracking pass over
// the blanked source. It yields two things: non-const-global findings
// (variable definitions at namespace scope that are not const/
// constexpr/constinit; thread_local exempt by design) and a record of
// every namespace-scope *function definition*, which feeds the
// odr-header-def passes (header definitions per file, duplicate
// definitions across TUs at project level).
// ---------------------------------------------------------------------------

// Does `stmt` (a namespace-scope statement with initializer stripped)
// look like a mutable variable declaration?
bool is_mutable_decl(const std::string& stmt) {
  static constexpr std::string_view kSkipWords[] = {
      "const",    "constexpr",     "constinit", "using",  "typedef",
      "friend",   "template",      "operator",  "static_assert",
      "namespace", "class",        "struct",    "union",  "enum",
      "thread_local", "concept",   "requires",  "asm",    "goto",
  };
  for (const auto w : kSkipWords) {
    if (contains_word(stmt, w)) return false;
  }
  if (stmt.find('(') != std::string::npos) return false;  // function-ish
  // Strip any initializer: the declarator part is what must look like
  // "type name" / "type name[N]".
  std::string decl = stmt.substr(0, stmt.find('='));
  static const std::regex kDecl(
      R"(^\s*(?:static\s+|inline\s+|extern\s+)*[A-Za-z_][A-Za-z0-9_:<>,\s\*&]*[\s\*&]+[A-Za-z_][A-Za-z0-9_]*\s*(?:\[[^\]]*\]\s*)*$)");
  return std::regex_match(decl, kDecl);
}

// Map an operator's symbol characters to letters so downstream '('/'='
// scans and identifier regexes never trip over them: operator== ->
// operatorEE, operator() -> operatorcC. Distinct operators stay
// distinct (the duplicate-definition index keys on the result).
std::string sanitize_operators(const std::string& stmt) {
  static const std::map<char, char> kMap = {
      {'=', 'E'}, {'<', 'L'}, {'>', 'G'}, {'!', 'N'}, {'+', 'P'},
      {'-', 'M'}, {'*', 'S'}, {'/', 'D'}, {'%', 'R'}, {'&', 'A'},
      {'|', 'O'}, {'^', 'X'}, {'~', 'T'}, {'(', 'c'}, {')', 'C'},
      {'[', 'b'}, {']', 'B'}, {',', 'm'},
  };
  std::string out = stmt;
  std::size_t at = 0;
  while ((at = out.find("operator", at)) != std::string::npos) {
    const bool word_start =
        at == 0 || (!std::isalnum(static_cast<unsigned char>(out[at - 1])) &&
                    out[at - 1] != '_');
    std::size_t i = at + 8;
    while (i < out.size() && std::isspace(static_cast<unsigned char>(out[i])))
      ++i;
    if (!word_start || i >= out.size() || kMap.count(out[i]) == 0) {
      at += 8;
      continue;
    }
    while (i < out.size() && kMap.count(out[i]) != 0) {
      out[i] = kMap.at(out[i]);
      ++i;
    }
    at = i;
  }
  return out;
}

// A recorded namespace-scope function definition.
struct FnDef {
  int line = 0;
  std::string stmt;      // collapsed preamble text (sanitized operators)
  std::string ns;        // enclosing namespace path, "" at global scope
  bool internal = false; // static or inside an anonymous namespace
  bool exempt = false;   // inline/constexpr/template/extern/friend/...
  std::string name;      // (possibly qualified) function name
  std::string params;    // parameter list, whitespace-stripped
};

// Is the collapsed statement a function definition preamble (rather
// than a class body, enum, array/brace initializer, or lambda init)?
bool fn_like(const std::string& stmt) {
  const auto par = stmt.find('(');
  if (par == std::string::npos) return false;
  const auto eq = stmt.find('=');
  if (eq != std::string::npos && eq < par) return false;  // init / lambda
  for (const auto w : {"class", "struct", "union", "enum", "namespace",
                       "using", "typedef", "requires", "concept"}) {
    if (contains_word(stmt, w)) return false;
  }
  return true;
}

bool fn_exempt(const std::string& stmt) {
  for (const auto w : {"inline", "constexpr", "consteval", "template",
                       "static", "extern", "friend"}) {
    if (contains_word(stmt, w)) return true;
  }
  return false;
}

// Extract the (possibly ::-qualified) name directly before the first
// '(' plus the whitespace-stripped parameter list. Empty name when the
// preamble does not look indexable (attributes, function pointers...).
void fn_name_params(const std::string& stmt, std::string& name,
                    std::string& params) {
  name.clear();
  params.clear();
  static const std::regex kAttr(
      R"(__attribute__\s*\(\(.*?\)\)|alignas\s*\([^)]*\))");
  const std::string s = std::regex_replace(stmt, kAttr, " ");
  const auto par = s.find('(');
  if (par == std::string::npos) return;
  static const std::regex kName(
      R"(((?:[A-Za-z_][A-Za-z0-9_]*\s*::\s*)*~?\s*[A-Za-z_][A-Za-z0-9_]*)\s*$)");
  std::smatch m;
  const std::string head = s.substr(0, par);
  if (!std::regex_search(head, m, kName)) return;
  name = m[1].str();
  name.erase(std::remove_if(name.begin(), name.end(),
                            [](unsigned char c) { return std::isspace(c); }),
             name.end());
  // Balanced scan for the parameter list.
  int depth = 0;
  std::size_t i = par;
  for (; i < s.size(); ++i) {
    if (s[i] == '(') ++depth;
    if (s[i] == ')' && --depth == 0) break;
  }
  if (i >= s.size()) {
    name.clear();
    return;
  }
  params = s.substr(par, i - par + 1);
  params.erase(
      std::remove_if(params.begin(), params.end(),
                     [](unsigned char c) { return std::isspace(c); }),
      params.end());
}

void scan_namespace_scope(Prepared& p, const std::string& file, bool in_src,
                          std::vector<FnDef>& fn_defs,
                          std::vector<Finding>& out) {
  constexpr const char* kRule = "non-const-global";
  constexpr const char* kMsg =
      "mutable namespace-scope variable; make it const/constexpr or move "
      "it into run-scoped state (ExecutionContext)";

  struct Scope {
    bool is_namespace = false;
    std::string preamble;  // statement text that opened a non-ns brace
    std::size_t preamble_start = std::string::npos;
    int ns_components = 0;  // namespace path components this scope added
    bool ns_anonymous = false;
    bool in_parens = false;  // brace opened inside an unclosed '(' — a
                             // default-argument/init brace, not a body
  };
  std::vector<Scope> scopes;
  std::vector<std::string> ns_path;
  int anon_depth = 0;
  int other_depth = 0;   // braces opened by anything but `namespace`
  int paren_depth = 0;   // unclosed '(' in the current statement
  std::string stmt;
  std::size_t stmt_start = std::string::npos;

  auto recompute_parens = [&]() {
    paren_depth = 0;
    for (const char ch : stmt) {
      if (ch == '(') ++paren_depth;
      if (ch == ')') --paren_depth;
    }
  };

  auto analyze = [&]() {
    if (stmt_start != std::string::npos && in_src && is_mutable_decl(stmt)) {
      const int line = line_of(p, stmt_start);
      if (!allowed(p, line, kRule)) out.push_back({file, line, kRule, kMsg});
    }
    stmt.clear();
    stmt_start = std::string::npos;
  };

  auto record_fn = [&](const std::string& preamble, std::size_t start) {
    const std::string s = sanitize_operators(preamble);
    if (!fn_like(s)) return;
    FnDef def;
    def.line = line_of(p, start);
    def.stmt = s;
    std::string joined;
    for (const auto& c : ns_path) {
      if (!joined.empty()) joined += "::";
      joined += c;
    }
    def.ns = joined;
    def.internal = anon_depth > 0 || contains_word(s, "static");
    def.exempt = fn_exempt(s);
    fn_name_params(s, def.name, def.params);
    fn_defs.push_back(std::move(def));
  };

  for (std::size_t i = 0; i < p.code.size(); ++i) {
    const char c = p.code[i];
    if (other_depth > 0) {
      if (c == '{') {
        scopes.push_back({});
        ++other_depth;
      } else if (c == '}') {
        const Scope closed = scopes.back();
        scopes.pop_back();
        --other_depth;
        if (other_depth == 0) {
          // Back at namespace scope: a function body ends the statement;
          // an initializer, class body, or default-argument brace
          // continues it up to the `;`.
          if (closed.in_parens) {
            stmt = closed.preamble;
            stmt_start = closed.preamble_start;
            recompute_parens();
          } else if (closed.preamble.find('(') != std::string::npos) {
            record_fn(closed.preamble, closed.preamble_start);
            stmt.clear();
            stmt_start = std::string::npos;
            paren_depth = 0;
          } else {
            stmt = closed.preamble;
            stmt_start = closed.preamble_start;
            recompute_parens();
          }
        }
      }
      continue;
    }
    switch (c) {
      case '{': {
        if (contains_word(stmt, "namespace")) {
          Scope s;
          s.is_namespace = true;
          static const std::regex kNsName(
              R"(namespace\s+([A-Za-z_][A-Za-z0-9_]*(?:\s*::\s*[A-Za-z_][A-Za-z0-9_]*)*)\s*$)");
          std::smatch m;
          if (std::regex_search(stmt, m, kNsName)) {
            std::string names = m[1].str();
            names.erase(std::remove_if(
                            names.begin(), names.end(),
                            [](unsigned char ch) { return std::isspace(ch); }),
                        names.end());
            std::size_t at = 0;
            while (at != std::string::npos) {
              const auto sep = names.find("::", at);
              ns_path.push_back(names.substr(
                  at, sep == std::string::npos ? sep : sep - at));
              ++s.ns_components;
              at = sep == std::string::npos ? sep : sep + 2;
            }
          } else {
            s.ns_anonymous = true;
            ++anon_depth;
          }
          scopes.push_back(std::move(s));
          stmt.clear();
          stmt_start = std::string::npos;
          paren_depth = 0;
        } else {
          scopes.push_back({false, stmt, stmt_start, 0, false,
                            paren_depth > 0});
          ++other_depth;
        }
        break;
      }
      case '}': {
        if (!scopes.empty()) {
          const Scope& closed = scopes.back();
          if (closed.is_namespace) {
            for (int k = 0; k < closed.ns_components; ++k) ns_path.pop_back();
            if (closed.ns_anonymous) --anon_depth;
          }
          scopes.pop_back();
        }
        stmt.clear();
        stmt_start = std::string::npos;
        paren_depth = 0;
        break;
      }
      case ';':
        analyze();
        paren_depth = 0;
        break;
      default:
        if (c == '(') ++paren_depth;
        if (c == ')') --paren_depth;
        if (!std::isspace(static_cast<unsigned char>(c))) {
          if (stmt_start == std::string::npos) stmt_start = i;
          stmt.push_back(c);
        } else if (!stmt.empty() && stmt.back() != ' ') {
          stmt.push_back(' ');
        }
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// odr-header-def (per-file half): a function definition at namespace
// scope in a header, without inline/constexpr/template/static, is
// compiled into every includer's TU — a straight ODR violation at link
// time (or worse, a silent one under -fvisibility tricks).
// ---------------------------------------------------------------------------

void scan_header_defs(Prepared& p, const std::string& file,
                      const std::vector<FnDef>& fn_defs,
                      std::vector<Finding>& out) {
  for (const auto& def : fn_defs) {
    if (def.exempt || def.internal) continue;
    if (allowed(p, def.line, "odr-header-def")) continue;
    const std::string what = def.name.empty() ? "function" : "'" + def.name + "'";
    out.push_back(
        {file, def.line, "odr-header-def",
         "function " + what +
             " is defined in a header without inline/template: every "
             "includer's translation unit emits a definition (ODR); mark "
             "it inline or move the body to a .cpp"});
  }
}

// ---------------------------------------------------------------------------
// layer-violation: every quoted project include is checked against the
// architecture DAG. Purely per-file (the rank map is total), so the
// gate fires even when a single file is linted in isolation.
// ---------------------------------------------------------------------------

std::string dag_string() {
  std::string s;
  for (const auto& l : layer_names()) {
    if (!s.empty()) s += " -> ";
    s += l;
  }
  return s;
}

void scan_layering(Prepared& p, const std::string& rel,
                   const std::string& file, std::vector<Finding>& out) {
  const int from = layer_rank(rel);
  if (from < 0) return;  // tools/, bench/, tests/ are sinks
  for (const auto& inc : p.includes) {
    std::string target = inc.target;
    if (starts_with(target, "src/")) target = target.substr(4);
    const int to = layer_rank(target);
    if (to < 0 || to <= from) continue;
    if (allowed(p, inc.line, "layer-violation")) continue;
    out.push_back(
        {file, inc.line, "layer-violation",
         "edge " + rel + " -> " + inc.target + " climbs the architecture "
         "DAG: " + layer_names()[static_cast<std::size_t>(from)] + " (layer " +
             std::to_string(from) + ") must not include " +
             layer_names()[static_cast<std::size_t>(to)] + " (layer " +
             std::to_string(to) + "); allowed direction is " + dag_string()});
  }
}

// ---------------------------------------------------------------------------
// shared-mutable-capture: by-reference capture of a non-const,
// non-atomic scalar local in a lambda handed to a parallel region
// entry point (parallel_for/parallel_for_n/for_each/submit), where the
// lambda body also *writes* the local. This is the exact bug class the
// sharded replay and the Pareto scoring fan-out had to design around:
// concurrent += into a captured accumulator is a data race that stays
// invisible until results drift under load.
// ---------------------------------------------------------------------------

// Scalar-typed local declarations (ints, floats, bool, size_t family).
// Aggregates (vectors, buffers) are deliberately not flagged: disjoint
// per-range writes into a shared buffer are the documented pattern.
const std::regex& scalar_decl_re() {
  static const std::regex re(
      R"((?:^|[;{}(,])\s*((?:static\s+|const\s+|volatile\s+)*))"
      R"(((?:std::)?(?:size_t|ptrdiff_t|u?int(?:8|16|32|64)_t|u?intptr_t)\b)"
      R"(|unsigned(?:\s+long)?(?:\s+long)?(?:\s+int)?\b)"
      R"(|signed(?:\s+long)?(?:\s+long)?(?:\s+int)?\b)"
      R"(|long(?:\s+long)?(?:\s+int)?\b|long\s+double\b)"
      R"(|int\b|short\b|char\b|float\b|double\b|bool\b))"
      R"(\s+([A-Za-z_][A-Za-z0-9_]*)\s*(?:=(?!=)|\{|;|,|\)))");
  return re;
}

struct ScalarLocal {
  std::string name;
  std::size_t begin = 0;                    // declaration offset
  std::size_t end = std::string::npos;      // enclosing scope close
  bool is_const = false;
  int depth = 0;
};

std::vector<ScalarLocal> collect_scalar_locals(const std::string& code) {
  std::vector<ScalarLocal> locals;
  for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                      scalar_decl_re());
       it != std::sregex_iterator(); ++it) {
    ScalarLocal l;
    l.name = (*it)[3].str();
    l.begin = static_cast<std::size_t>(it->position(3));
    l.is_const = (*it)[1].str().find("const") != std::string::npos;
    locals.push_back(std::move(l));
  }
  // Assign scope extents with a brace walk: a local dies where the
  // innermost brace scope open at its declaration closes. Declarations
  // outside any brace (namespace scope, function parameters before the
  // body opens) keep end = npos — in this tree mutable namespace-scope
  // scalars cannot exist (non-const-global), so treating them as
  // visible-to-EOF safely covers function parameters.
  std::vector<std::size_t> open;   // offsets of currently open '{'
  std::vector<std::size_t> owner(locals.size(), std::string::npos);
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i] == '{') {
      open.push_back(i);
    } else if (code[i] == '}') {
      if (open.empty()) continue;
      const std::size_t from = open.back();
      open.pop_back();
      for (std::size_t k = 0; k < locals.size(); ++k) {
        if (locals[k].end == std::string::npos && locals[k].begin > from &&
            locals[k].begin < i) {
          locals[k].end = i;
        }
      }
    }
  }
  return locals;
}

// Does `body` write `name` (assignment, compound assignment, inc/dec)?
// Member access (.name, ->name, ::name) never counts: that is a write
// through an object, not through the captured local.
bool writes_name(const std::string& body, const std::string& name) {
  std::size_t at = 0;
  while ((at = body.find(name, at)) != std::string::npos) {
    const std::size_t after = at + name.size();
    const bool left_ok =
        at == 0 || (!std::isalnum(static_cast<unsigned char>(body[at - 1])) &&
                    body[at - 1] != '_');
    const bool right_ok =
        after >= body.size() ||
        (!std::isalnum(static_cast<unsigned char>(body[after])) &&
         body[after] != '_');
    if (!left_ok || !right_ok) {
      at = after;
      continue;
    }
    // Reject member/qualified access on the left.
    std::size_t prev = at;
    while (prev > 0 &&
           std::isspace(static_cast<unsigned char>(body[prev - 1])))
      --prev;
    if (prev > 0 &&
        (body[prev - 1] == '.' || body[prev - 1] == ':' ||
         (prev > 1 && body[prev - 2] == '-' && body[prev - 1] == '>'))) {
      at = after;
      continue;
    }
    // ++name / --name
    if (prev > 1 && ((body[prev - 1] == '+' && body[prev - 2] == '+') ||
                     (body[prev - 1] == '-' && body[prev - 2] == '-'))) {
      return true;
    }
    // name ++ / name -- / name = / name op=
    std::size_t next = after;
    while (next < body.size() &&
           std::isspace(static_cast<unsigned char>(body[next])))
      ++next;
    if (next < body.size()) {
      const char c0 = body[next];
      const char c1 = next + 1 < body.size() ? body[next + 1] : '\0';
      const char c2 = next + 2 < body.size() ? body[next + 2] : '\0';
      if ((c0 == '+' && c1 == '+') || (c0 == '-' && c1 == '-')) return true;
      if (c0 == '=' && c1 != '=') return true;
      if (c1 == '=' && c2 != '=' &&
          (c0 == '+' || c0 == '-' || c0 == '*' || c0 == '/' || c0 == '%' ||
           c0 == '&' || c0 == '|' || c0 == '^')) {
        return true;
      }
      if ((c0 == '<' && c1 == '<' && c2 == '=') ||
          (c0 == '>' && c1 == '>' && c2 == '=')) {
        return true;
      }
    }
    at = after;
  }
  return false;
}

// Does `text` declare `name` itself (shadowing / lambda parameter)?
bool declares_name(const std::string& text, const std::string& name) {
  for (auto it = std::sregex_iterator(text.begin(), text.end(),
                                      scalar_decl_re());
       it != std::sregex_iterator(); ++it) {
    if ((*it)[3].str() == name) return true;
  }
  return false;
}

void scan_shared_captures(Prepared& p, const std::string& file,
                          std::vector<Finding>& out) {
  constexpr const char* kRule = "shared-mutable-capture";
  const std::string& code = p.code;
  static const std::regex kEntry(
      R"(\b(?:parallel_for_n|parallel_for|for_each|submit)\s*\()");
  std::vector<ScalarLocal> locals;  // collected lazily on first hit
  bool locals_ready = false;

  for (auto it = std::sregex_iterator(code.begin(), code.end(), kEntry);
       it != std::sregex_iterator(); ++it) {
    const auto call_open =
        static_cast<std::size_t>(it->position()) + it->length() - 1;
    // Bound the call's argument list.
    int depth = 0;
    std::size_t call_close = code.size();
    for (std::size_t i = call_open; i < code.size(); ++i) {
      if (code[i] == '(') ++depth;
      if (code[i] == ')' && --depth == 0) {
        call_close = i;
        break;
      }
    }
    // Find lambda intros among the arguments: '[' whose previous
    // non-space char is '(' or ',' (array subscripts follow a value).
    for (std::size_t i = call_open + 1; i < call_close; ++i) {
      if (code[i] != '[') continue;
      std::size_t prev = i;
      while (prev > 0 &&
             std::isspace(static_cast<unsigned char>(code[prev - 1])))
        --prev;
      if (prev == 0 || (code[prev - 1] != '(' && code[prev - 1] != ','))
        continue;
      // Capture list up to the matching ']'.
      int bdepth = 0;
      std::size_t cap_end = std::string::npos;
      for (std::size_t k = i; k < call_close; ++k) {
        if (code[k] == '[') ++bdepth;
        if (code[k] == ']' && --bdepth == 0) {
          cap_end = k;
          break;
        }
      }
      if (cap_end == std::string::npos) continue;
      const std::string captures = code.substr(i + 1, cap_end - i - 1);
      // Parameter list (optional) and body.
      std::size_t cursor = cap_end + 1;
      while (cursor < code.size() &&
             std::isspace(static_cast<unsigned char>(code[cursor])))
        ++cursor;
      std::string param_text;
      if (cursor < code.size() && code[cursor] == '(') {
        int pdepth = 0;
        const std::size_t popen = cursor;
        for (; cursor < code.size(); ++cursor) {
          if (code[cursor] == '(') ++pdepth;
          if (code[cursor] == ')' && --pdepth == 0) break;
        }
        param_text = code.substr(popen, cursor - popen + 1);
        ++cursor;
      }
      const std::size_t bopen = code.find('{', cursor);
      if (bopen == std::string::npos) continue;
      int cdepth = 0;
      std::size_t bclose = code.size();
      for (std::size_t k = bopen; k < code.size(); ++k) {
        if (code[k] == '{') ++cdepth;
        if (code[k] == '}' && --cdepth == 0) {
          bclose = k;
          break;
        }
      }
      const std::string body = code.substr(bopen, bclose - bopen + 1);

      // Candidate captured names.
      bool default_ref = false;
      std::vector<std::string> explicit_refs;
      {
        std::stringstream ss(captures);
        std::string tok;
        while (std::getline(ss, tok, ',')) {
          const auto b = tok.find_first_not_of(" \t\n");
          if (b == std::string::npos) continue;
          const auto e = tok.find_last_not_of(" \t\n");
          tok = tok.substr(b, e - b + 1);
          if (tok == "&") {
            default_ref = true;
          } else if (tok.size() > 1 && tok[0] == '&' &&
                     tok.find('=') == std::string::npos) {
            std::string nm = tok.substr(1);
            const auto nb = nm.find_first_not_of(" \t\n");
            if (nb != std::string::npos) explicit_refs.push_back(
                nm.substr(nb));
          }
        }
      }
      if (!default_ref && explicit_refs.empty()) continue;
      if (!locals_ready) {
        locals = collect_scalar_locals(code);
        locals_ready = true;
      }

      std::set<std::string> flagged;
      auto consider = [&](const ScalarLocal& l) {
        if (l.is_const) return;
        if (l.begin >= i) return;                       // declared after
        if (l.end != std::string::npos && l.end < i) return;  // dead scope
        if (flagged.count(l.name) != 0) return;
        if (declares_name(param_text, l.name)) return;  // shadowed param
        if (declares_name(body, l.name)) return;        // shadowed local
        if (!writes_name(body, l.name)) return;
        flagged.insert(l.name);
      };
      for (const auto& l : locals) {
        const bool named =
            std::find(explicit_refs.begin(), explicit_refs.end(), l.name) !=
            explicit_refs.end();
        if (named || default_ref) consider(l);
      }
      const int line = line_of(p, i);
      for (const auto& name : flagged) {
        if (allowed(p, line, kRule)) continue;
        out.push_back(
            {file, line, kRule,
             "local '" + name + "' is captured by reference and written "
             "inside a lambda handed to a parallel region; workers race "
             "on it — give each worker its own slot (index by the worker "
             "id) or make it atomic"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// bare-exit-code: command handlers in src/cli and tools/ must return
// named kExit* constants. Flags `return <int-literal>;` and
// `return cond ? <lit> : <lit>;` — expressions that merely contain a
// literal (substr(b, e + 1), arithmetic) are fine.
// ---------------------------------------------------------------------------

void scan_bare_exit(Prepared& p, const std::string& file,
                    std::vector<Finding>& out) {
  constexpr const char* kRule = "bare-exit-code";
  static const std::regex re(
      R"(\breturn\s+(?:\(\s*)?-?\d+[uUlL]*\s*(?:\)\s*)?;)"
      R"(|\breturn\b[^;{}?]*\?\s*-?\d+\s*:\s*-?\d+\s*;)");
  scan_pattern(p, re, file, kRule,
               "integer-literal exit code in a command handler; return a "
               "named kExit* constant (kExitOk/kExitUsage/kExitBadInput/...) "
               "so exit-code meaning stays greppable",
               out);
}

// ---------------------------------------------------------------------------
// Per-file analysis
// ---------------------------------------------------------------------------

struct Analysis {
  std::string path;  // as given to the linter
  std::string rel;   // repo-relative tail
  Prepared prep;
  std::vector<FnDef> fn_defs;
};

void file_passes(Analysis& a, std::vector<Finding>& out) {
  Prepared& p = a.prep;
  const std::string& rel = a.rel;
  const std::string& path = a.path;

  if (starts_with(rel, "src/") && rel != "src/common/thread_pool.hpp" &&
      rel != "src/common/thread_pool.cpp") {
    static const std::regex re(R"(ThreadPool\s*::\s*global\b)");
    scan_pattern(p, re, path, "global-thread-pool",
                 rule_description("global-thread-pool").c_str(), out);
  }

  if (starts_with(rel, "src/memsim/") || starts_with(rel, "src/model/") ||
      starts_with(rel, "src/study/") || starts_with(rel, "src/arch/") ||
      starts_with(rel, "src/io/")) {
    static const std::regex re(
        R"(\b(?:rand|srand|clock|time|gettimeofday)\s*\()"
        R"(|\brandom_device\b)"
        R"(|\b(?:steady_clock|system_clock|high_resolution_clock)\b)"
        R"(|\bWallTimer\b)");
    scan_pattern(p, re, path, "nondeterministic-call",
                 rule_description("nondeterministic-call").c_str(), out);
  }

  if (starts_with(rel, "src/") && !starts_with(rel, "src/counters/")) {
    static const std::regex re(
        R"(\b(?:global_snapshot|reset_all|local_tally)\s*\()");
    scan_pattern(p, re, path, "counters-without-context",
                 rule_description("counters-without-context").c_str(), out);
  }

  if (starts_with(rel, "src/kernels/") || starts_with(rel, "src/memsim/") ||
      starts_with(rel, "src/io/")) {
    static const std::regex re(
        R"(\bnew\b|\b(?:malloc|calloc|realloc|strdup|aligned_alloc)\s*\()");
    scan_pattern(p, re, path, "naked-new",
                 rule_description("naked-new").c_str(), out);
  }

  // The declaration scanner feeds non-const-global (src/ only) and the
  // ODR passes (function definitions, any scanned file).
  scan_namespace_scope(p, path, starts_with(rel, "src/"), a.fn_defs, out);

  if ((starts_with(rel, "src/") || starts_with(rel, "tools/")) &&
      is_header(rel)) {
    scan_header_defs(p, path, a.fn_defs, out);
  }

  if (starts_with(rel, "src/") && ends_with(rel, ".hpp")) {
    if (!p.has_pragma_once && !allowed(p, 1, "pragma-once")) {
      out.push_back({path, 1, "pragma-once",
                     rule_description("pragma-once")});
    }
  }

  scan_layering(p, rel, path, out);

  if (starts_with(rel, "src/")) {
    scan_shared_captures(p, path, out);
  }

  // Command handlers only: src/cli plus the tools' entry points.
  // Library code under tools/ may legitimately return -1 sentinels.
  if (starts_with(rel, "src/cli/") ||
      (starts_with(rel, "tools/") && ends_with(rel, "/main.cpp"))) {
    scan_bare_exit(p, path, out);
  }
}

// ---------------------------------------------------------------------------
// Project passes
// ---------------------------------------------------------------------------

// Resolve an include target against the scanned node set. Project
// includes are written relative to the source root ("common/rng.hpp");
// a same-directory fallback covers tools-local includes.
int resolve_include(const std::map<std::string, int>& node_of,
                    const std::string& includer_rel,
                    const std::string& target) {
  std::string t = target;
  if (starts_with(t, "./")) t = t.substr(2);
  for (const std::string& cand :
       {starts_with(t, "src/") ? t : "src/" + t, t,
        includer_rel.substr(0, includer_rel.rfind('/') + 1) + t}) {
    const auto it = node_of.find(cand);
    if (it != node_of.end()) return it->second;
  }
  return -1;
}

IncludeGraph graph_of(const std::vector<Analysis>& as) {
  IncludeGraph g;
  for (const auto& a : as) g.nodes.push_back(a.rel);
  std::sort(g.nodes.begin(), g.nodes.end());
  g.nodes.erase(std::unique(g.nodes.begin(), g.nodes.end()), g.nodes.end());
  std::map<std::string, int> node_of;
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    node_of[g.nodes[i]] = static_cast<int>(i);
  }
  for (const auto& a : as) {
    const int from = node_of.at(a.rel);
    for (const auto& inc : a.prep.includes) {
      const int to = resolve_include(node_of, a.rel, inc.target);
      if (to >= 0 && to != from) g.edges.push_back({from, to, inc.line});
    }
  }
  std::sort(g.edges.begin(), g.edges.end(),
            [](const IncludeGraph::Edge& x, const IncludeGraph::Edge& y) {
              return std::tie(x.from, x.to, x.line) <
                     std::tie(y.from, y.to, y.line);
            });
  return g;
}

// include-cycle: one finding per edge that participates in a cycle,
// carrying the shortest cycle through that edge.
void project_cycles(std::vector<Analysis>& as, std::vector<Finding>& out) {
  const IncludeGraph g = graph_of(as);
  const std::size_t n = g.nodes.size();
  std::vector<std::vector<int>> adj(n);
  for (const auto& e : g.edges) adj[static_cast<std::size_t>(e.from)]
      .push_back(e.to);

  std::map<std::string, Analysis*> by_rel;
  for (auto& a : as) by_rel[a.rel] = &a;

  for (const auto& e : g.edges) {
    // BFS from e.to back to e.from = shortest cycle through this edge.
    std::vector<int> parent(n, -2);
    std::deque<int> q{e.to};
    parent[static_cast<std::size_t>(e.to)] = -1;
    bool found = e.to == e.from;
    while (!q.empty() && !found) {
      const int u = q.front();
      q.pop_front();
      for (const int v : adj[static_cast<std::size_t>(u)]) {
        if (parent[static_cast<std::size_t>(v)] != -2) continue;
        parent[static_cast<std::size_t>(v)] = u;
        if (v == e.from) {
          found = true;
          break;
        }
        q.push_back(v);
      }
    }
    if (!found) continue;
    std::vector<int> path;  // e.from -> ... -> e.to reversed from parents
    for (int v = e.from; v != -1; v = parent[static_cast<std::size_t>(v)]) {
      path.push_back(v);
      if (v == e.to) break;
    }
    std::reverse(path.begin(), path.end());  // e.to ... e.from
    std::string cycle = g.nodes[static_cast<std::size_t>(e.from)] + " -> " +
                        g.nodes[static_cast<std::size_t>(e.to)];
    for (std::size_t k = 1; k < path.size(); ++k) {
      cycle += " -> " + g.nodes[static_cast<std::size_t>(path[k])];
    }
    Analysis* a = by_rel.at(g.nodes[static_cast<std::size_t>(e.from)]);
    if (allowed(a->prep, e.line, "include-cycle")) continue;
    out.push_back({a->path, e.line, "include-cycle",
                   "include cycle: " + cycle +
                       "; break it with a forward declaration or an "
                       "interface split"});
  }
}

// odr-header-def (cross-TU half): the same external-linkage,
// identical-signature function defined in two .cpp files is an ODR
// violation the linker may or may not catch (and inline namespaces or
// static initialization order make it worse when it doesn't).
void project_duplicate_defs(std::vector<Analysis>& as,
                            std::vector<Finding>& out) {
  struct Site {
    Analysis* a;
    const FnDef* def;
  };
  std::map<std::string, std::vector<Site>> index;
  for (auto& a : as) {
    if (!starts_with(a.rel, "src/") || !is_translation_unit(a.rel)) continue;
    for (const auto& def : a.fn_defs) {
      if (def.internal || def.name.empty() || def.name == "main") continue;
      if (contains_word(def.stmt, "template")) continue;
      index[def.ns + "::" + def.name + def.params].push_back({&a, &def});
    }
  }
  for (auto& [key, sites] : index) {
    std::set<std::string> files;
    for (const auto& s : sites) files.insert(s.a->rel);
    if (files.size() < 2) continue;
    std::string where;
    for (const auto& s : sites) {
      if (!where.empty()) where += ", ";
      where += s.a->rel + ":" + std::to_string(s.def->line);
    }
    for (const auto& s : sites) {
      if (allowed(s.a->prep, s.def->line, "odr-header-def")) continue;
      out.push_back(
          {s.a->path, s.def->line, "odr-header-def",
           "'" + s.def->name + s.def->params + "' is defined in " +
               std::to_string(files.size()) + " translation units (" +
               where + "); one-definition rule — keep one definition and "
               "declare it in a header, or give the copies internal "
               "linkage"});
    }
  }
}

// stale-suppression: every allow() entry that silenced nothing is
// itself a finding. Two phases so an allow(stale-suppression) escape
// (for the rare deliberate placeholder) is consumed before its own
// staleness is judged.
void project_stale(std::vector<Analysis>& as, std::vector<Finding>& out) {
  constexpr const char* kRule = "stale-suppression";
  auto emit = [&](Analysis& a, const AllowEntry& entry) {
    if (allowed(a.prep, entry.line, kRule)) return;
    const std::string note =
        known_rule(entry.rule) || entry.rule == "*"
            ? ""
            : " (unknown rule '" + entry.rule + "')";
    out.push_back({a.path, entry.line, kRule,
                   "suppression 'fpr-lint: allow(" + entry.rule +
                       ")' matches no finding on this or the next line" +
                       note + "; delete it so it cannot outlive the code "
                       "it excused"});
  };
  for (auto& a : as) {
    // Snapshot: allowed() above may mark stale-suppression entries used.
    const std::vector<AllowEntry> snapshot = a.prep.allows;
    for (const auto& entry : snapshot) {
      if (!entry.used && entry.rule != kRule) emit(a, entry);
    }
    for (const auto& entry : a.prep.allows) {
      if (!entry.used && entry.rule == kRule) emit(a, entry);
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

std::vector<std::string> rule_names() {
  std::vector<std::string> names;
  for (const auto& r : kRules) names.emplace_back(r.name);
  return names;
}

std::string rule_description(const std::string& rule) {
  for (const auto& r : kRules) {
    if (rule == r.name) return r.desc;
  }
  throw std::invalid_argument("fpr-lint: unknown rule '" + rule + "'");
}

int layer_rank(const std::string& rel_or_dir) {
  std::string rel = rel_or_dir;
  if (starts_with(rel, "src/")) rel = rel.substr(4);
  const std::string dir = first_component(rel);
  int rank = 0;
  for (const char* l : kLayerDirs) {
    if (dir == l) return rank;
    ++rank;
  }
  return -1;
}

const std::vector<std::string>& layer_names() {
  static const std::vector<std::string> names(std::begin(kLayerDirs),
                                              std::end(kLayerDirs));
  return names;
}

std::vector<Finding> lint_sources(const std::vector<SourceFile>& files,
                                  const std::vector<std::string>& enabled) {
  for (const auto& r : enabled) {
    if (!known_rule(r)) {
      throw std::invalid_argument("fpr-lint: unknown rule '" + r + "'");
    }
  }

  std::vector<Analysis> as;
  as.reserve(files.size());
  std::vector<Finding> findings;
  for (const auto& f : files) {
    Analysis a;
    a.path = f.path;
    a.rel = repo_rel(f.path);
    a.prep = prepare(f.text);
    file_passes(a, findings);
    as.push_back(std::move(a));
  }
  project_cycles(as, findings);
  project_duplicate_defs(as, findings);
  project_stale(as, findings);

  if (!enabled.empty()) {
    findings.erase(
        std::remove_if(findings.begin(), findings.end(),
                       [&](const Finding& f) {
                         return std::find(enabled.begin(), enabled.end(),
                                          f.rule) == enabled.end();
                       }),
        findings.end());
  }
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return std::tie(a.file, a.line, a.rule) <
                            std::tie(b.file, b.line, b.rule);
                   });
  return findings;
}

std::vector<Finding> lint_source(const std::string& path,
                                 std::string_view text,
                                 const std::vector<std::string>& enabled) {
  return lint_sources({{path, std::string(text)}}, enabled);
}

std::vector<Finding> lint_file(const std::string& path,
                               const std::vector<std::string>& enabled) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("fpr-lint: cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return lint_source(path, ss.str(), enabled);
}

std::vector<std::string> collect_tree(const std::string& root) {
  namespace fs = std::filesystem;
  const fs::path r(root);
  if (fs::is_regular_file(r)) return {root};
  if (!fs::is_directory(r)) {
    throw std::runtime_error("fpr-lint: no such file or directory: " + root);
  }
  std::vector<std::string> files;
  for (const auto& entry : fs::recursive_directory_iterator(r)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension().string();
    if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc") {
      files.push_back(entry.path().generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<Finding> lint_tree(const std::string& root,
                               const std::vector<std::string>& enabled) {
  std::vector<SourceFile> sources;
  for (const auto& path : collect_tree(root)) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("fpr-lint: cannot read " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    sources.push_back({path, ss.str()});
  }
  return lint_sources(sources, enabled);
}

IncludeGraph build_include_graph(const std::vector<SourceFile>& files) {
  std::vector<Analysis> as;
  as.reserve(files.size());
  for (const auto& f : files) {
    Analysis a;
    a.path = f.path;
    a.rel = repo_rel(f.path);
    a.prep = prepare(f.text);
    as.push_back(std::move(a));
  }
  return graph_of(as);
}

std::string include_graph_dot(const IncludeGraph& graph) {
  // Condense to one node per source directory ("src/common/x.hpp" ->
  // "common"); count the file-level edges each directory pair carries.
  auto dir_of = [](const std::string& rel) {
    std::string r = rel;
    if (starts_with(r, "src/")) r = r.substr(4);
    return first_component(r);
  };
  std::map<std::string, int> file_count;
  for (const auto& n : graph.nodes) ++file_count[dir_of(n)];
  std::map<std::pair<std::string, std::string>, int> edge_count;
  for (const auto& e : graph.edges) {
    const std::string from = dir_of(graph.nodes[static_cast<std::size_t>(
        e.from)]);
    const std::string to =
        dir_of(graph.nodes[static_cast<std::size_t>(e.to)]);
    if (from != to) ++edge_count[{from, to}];
  }

  auto sort_key = [](const std::string& dir) {
    const int rank = layer_rank(dir);
    // Layered dirs first (by rank), sinks after (alphabetical).
    return std::make_pair(rank < 0 ? 1 : 0, rank < 0 ? dir : std::string(
        1, static_cast<char>('0' + rank)));
  };
  std::vector<std::string> dirs;
  for (const auto& [d, _] : file_count) dirs.push_back(d);
  std::sort(dirs.begin(), dirs.end(),
            [&](const std::string& x, const std::string& y) {
              return sort_key(x) < sort_key(y);
            });

  std::ostringstream dot;
  dot << "digraph fpr_include_graph {\n"
      << "  // Edges point from includer to included directory; labels\n"
      << "  // count file-level include edges. Layer ranks follow the\n"
      << "  // architecture DAG (see docs/ARCHITECTURE.md).\n"
      << "  rankdir=\"BT\";\n"
      << "  node [shape=box];\n";
  for (const auto& d : dirs) {
    const int rank = layer_rank(d);
    dot << "  \"" << d << "\" [label=\"" << d << "\\n";
    if (rank >= 0) {
      dot << "layer " << rank;
    } else {
      dot << "sink";
    }
    dot << " · " << file_count[d] << " files\"];\n";
  }
  for (const auto& d : dirs) {
    for (const auto& [pair, count] : edge_count) {
      if (pair.first != d) continue;
      dot << "  \"" << pair.first << "\" -> \"" << pair.second
          << "\" [label=\"" << count << "\"];\n";
    }
  }
  dot << "}\n";
  return dot.str();
}

}  // namespace fpr::lint
