// fpr-lint: the project's invariant checker. PRs 3-5 established the
// properties the evaluation rests on — byte-identical results for any
// (--kernel-jobs, --jobs), pure-geometry SimCache keys, context-scoped
// counters — and this tool enforces them mechanically instead of by
// code review. Each invariant is a named rule; findings carry the rule
// name so a violation can be suppressed at a single site with
//   // fpr-lint: allow(rule-name)
// on the offending line or the line directly above it. The rule
// catalogue and the rationale for each invariant live in
// docs/INVARIANTS.md.
//
// v2 grew the per-file token scanner into a project semantic model:
// beside the original pattern rules, the linter now parses the
// project's #include directives into a dependency graph and gates the
// architecture DAG (layer-violation, include-cycle, `--graph dot`
// export — see docs/ARCHITECTURE.md), indexes namespace-scope
// declarations for ODR/header hygiene (odr-header-def, per-header and
// across translation units), tracks lambda captures flowing into
// parallel regions (shared-mutable-capture), names exit codes
// (bare-exit-code), and reports suppressions that no longer suppress
// anything (stale-suppression).
//
// The checker is still token-level, not a full C++ parse: sources are
// lexed just far enough to blank comments, string/char literals, and
// preprocessor directives (includes and pragmas are recorded on the
// way), then scanned with per-rule patterns, a brace-tracking
// declaration scanner, and a lambda-capture scanner. That is
// deliberate — it keeps the tool dependency-free and fast enough to
// run as a CTest gate on every build — and the escape hatch for the
// rare heuristic miss is the suppression comment above (which
// stale-suppression keeps from outliving its excuse).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace fpr::lint {

/// One rule violation at a specific source location.
struct Finding {
  std::string file;     ///< path as given to the linter
  int line = 0;         ///< 1-based line number
  std::string rule;     ///< rule name (see rule_names())
  std::string message;  ///< human-readable explanation
};

/// An in-memory source handed to the project-level entry point.
struct SourceFile {
  std::string path;  ///< decides rule scoping (repo-relative tail)
  std::string text;
};

/// Names of every implemented rule, in stable (documentation) order.
[[nodiscard]] std::vector<std::string> rule_names();

/// One-line description of a rule; throws std::invalid_argument for an
/// unknown name.
[[nodiscard]] std::string rule_description(const std::string& rule);

/// Lint a set of sources as one project: every per-file pass plus the
/// project-wide passes (include-cycle over the include graph, the
/// cross-TU duplicate-definition side of odr-header-def, and
/// stale-suppression accounting). `enabled` restricts *reporting* to a
/// subset of rule names (empty = all rules); every rule is still
/// evaluated internally so suppression liveness is judged against the
/// full catalogue. Findings come back sorted by (file, line, rule).
[[nodiscard]] std::vector<Finding> lint_sources(
    const std::vector<SourceFile>& files,
    const std::vector<std::string>& enabled = {});

/// Lint a single in-memory source. `path` decides which rules apply
/// (rules are scoped by directory, e.g. nondeterministic-call only
/// fires under src/{memsim,model,study,arch,io}); it is matched on its
/// repo-relative tail, so absolute paths work as long as they contain
/// a "src/" (or "tools/", "bench/") component. Equivalent to
/// lint_sources with one file: project passes that need more than one
/// file simply find nothing.
[[nodiscard]] std::vector<Finding> lint_source(
    const std::string& path, std::string_view text,
    const std::vector<std::string>& enabled = {});

/// Lint a file on disk (reads it, then defers to lint_source). Throws
/// std::runtime_error if the file cannot be read.
[[nodiscard]] std::vector<Finding> lint_file(
    const std::string& path, const std::vector<std::string>& enabled = {});

/// Recursively collect the .hpp/.cpp/.h/.cc files under `root` (sorted,
/// for deterministic output). Throws std::runtime_error if `root` is
/// neither a file nor a directory.
[[nodiscard]] std::vector<std::string> collect_tree(const std::string& root);

/// collect_tree + read + lint_sources over one root: the project-level
/// passes see every file under `root` together.
[[nodiscard]] std::vector<Finding> lint_tree(
    const std::string& root, const std::vector<std::string>& enabled = {});

// ---------------------------------------------------------------------------
// Include graph (the layering gate's data model, exported for docs)
// ---------------------------------------------------------------------------

/// The project header-dependency graph: nodes are repo-relative paths
/// ("src/common/rng.hpp"), edges point from includer to included file.
/// Only quoted project includes that resolve to a scanned file become
/// edges; system includes are ignored.
struct IncludeGraph {
  struct Edge {
    int from = 0;  ///< index into nodes (the includer)
    int to = 0;    ///< index into nodes (the included file)
    int line = 0;  ///< line of the #include directive
  };
  std::vector<std::string> nodes;  ///< sorted repo-relative paths
  std::vector<Edge> edges;         ///< sorted by (from, to)
};

[[nodiscard]] IncludeGraph build_include_graph(
    const std::vector<SourceFile>& files);

/// Directory-condensed DOT export of the include graph (one node per
/// source directory, edge labels carry file-level include counts),
/// laid out bottom-up along the architecture DAG. Deterministic: this
/// is what docs/ARCHITECTURE.md commits and CI diffs against a fresh
/// `fpr-lint --graph dot src/` run.
[[nodiscard]] std::string include_graph_dot(const IncludeGraph& graph);

/// Architecture layer rank of a repo-relative path or of a bare
/// directory name: common=0, counters=1, arch=2, memsim=3, kernels=4,
/// model=5, study=6, io=7, cli=8. Returns -1 for unlayered paths
/// (tools/, bench/, tests/ are sinks and may include anything).
[[nodiscard]] int layer_rank(const std::string& rel_or_dir);

/// The layer directory names in rank order (see layer_rank).
[[nodiscard]] const std::vector<std::string>& layer_names();

}  // namespace fpr::lint
