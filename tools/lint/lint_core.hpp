// fpr-lint: the project's invariant checker. PRs 3-5 established the
// properties the evaluation rests on — byte-identical results for any
// (--kernel-jobs, --jobs), pure-geometry SimCache keys, context-scoped
// counters — and this tool enforces them mechanically instead of by
// code review. Each invariant is a named rule; findings carry the rule
// name so a violation can be suppressed at a single site with
//   // fpr-lint: allow(rule-name)
// on the offending line or the line directly above it. The rule
// catalogue and the rationale for each invariant live in
// docs/INVARIANTS.md.
//
// The checker is token-level, not a full C++ parse: sources are lexed
// just far enough to blank comments, string/char literals, and
// preprocessor directives, then scanned with per-rule patterns and a
// small brace-tracking declaration scanner (for the non-const-global
// rule). That is deliberate — it keeps the tool dependency-free and
// fast enough to run as a CTest gate on every build — and the escape
// hatch for the rare heuristic miss is the suppression comment above.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace fpr::lint {

/// One rule violation at a specific source location.
struct Finding {
  std::string file;     ///< path as given to the linter
  int line = 0;         ///< 1-based line number
  std::string rule;     ///< rule name (see rule_names())
  std::string message;  ///< human-readable explanation
};

/// Names of every implemented rule, in stable (documentation) order.
[[nodiscard]] std::vector<std::string> rule_names();

/// One-line description of a rule; throws std::invalid_argument for an
/// unknown name.
[[nodiscard]] std::string rule_description(const std::string& rule);

/// Lint a single in-memory source. `path` decides which rules apply
/// (rules are scoped by directory, e.g. nondeterministic-call only
/// fires under src/{memsim,model,study,arch}); it is matched on its
/// repo-relative tail, so absolute paths work as long as they contain
/// a "src/" component. `enabled` restricts checking to a subset of
/// rule names (empty = all rules).
[[nodiscard]] std::vector<Finding> lint_source(
    const std::string& path, std::string_view text,
    const std::vector<std::string>& enabled = {});

/// Lint a file on disk (reads it, then defers to lint_source). Throws
/// std::runtime_error if the file cannot be read.
[[nodiscard]] std::vector<Finding> lint_file(
    const std::string& path, const std::vector<std::string>& enabled = {});

/// Recursively collect the .hpp/.cpp files under `root` (sorted, for
/// deterministic output) and lint each. Throws std::runtime_error if
/// `root` is neither a file nor a directory.
[[nodiscard]] std::vector<Finding> lint_tree(
    const std::string& root, const std::vector<std::string>& enabled = {});

}  // namespace fpr::lint
