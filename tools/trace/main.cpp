// fpr-trace: record, convert, and inspect fpr-trace v1 binary address
// traces (docs/FORMATS.md). The companion of `fpr trace`, which replays
// these files through the hierarchy simulation.
//
//   fpr-trace record --kernel BABL --machine KNL --out babl-knl.fpt
//   fpr-trace convert accesses.txt accesses.fpt
//   fpr-trace dump accesses.fpt --limit 16
//   fpr-trace info accesses.fpt
//
// `record` captures exactly the reference stream `fpr memsim` would
// simulate for (kernel, machine): the kernel's measured access-pattern
// spec, sliced per core and capacity-scaled, fed through the synthetic
// generator at the fixed profiling seed — with an equal-length warmup
// prefix, so `fpr trace F --warmup REFS` reproduces the memsim row
// bit-for-bit.
//
// Exit codes: 0 ok, 2 usage error, 3 unreadable/malformed input.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/machines.hpp"
#include "io/trace_format.hpp"
#include "kernels/kernel.hpp"
#include "memsim/hierarchy.hpp"
#include "memsim/trace_gen.hpp"
#include "model/memprofile.hpp"

namespace {

// Exit codes match the fpr CLI's (src/cli/cli.hpp kExit*): 0 ok,
// 1 runtime error, 2 usage error, 3 unreadable or malformed input.
constexpr int kExitOk = 0;
constexpr int kExitFailure = 1;
constexpr int kExitUsage = 2;
constexpr int kExitBadInput = 3;

int usage(std::ostream& err) {
  err << "usage: fpr-trace <command> [options]\n"
         "\n"
         "commands:\n"
         "  record --kernel A --out FILE [options]\n"
         "      record the synthetic reference stream `fpr memsim`\n"
         "      simulates for one kernel on one machine:\n"
         "        --machine M      Table I short name (default KNL)\n"
         "        --refs N         measured references (default 400000)\n"
         "        --warmup N       warmup prefix records (default: refs)\n"
         "        --scale S        kernel input scale (default 0.3)\n"
         "        --scale-shift K  capacity scale-down 2^K (default 8)\n"
         "        --seed N         kernel input seed (default 42)\n"
         "        --threads T      kernel worker threads (default 0 = all)\n"
         "        --chunk N        records per chunk (default 4096)\n"
         "  convert IN.txt OUT.fpt\n"
         "      convert a text trace ('R <addr>' / 'W <addr>' lines,\n"
         "      decimal or 0x-hex, #-comments) to the binary format\n"
         "  dump FILE [--limit N]\n"
         "      print a trace as that same text form (--limit caps rows)\n"
         "  info FILE\n"
         "      print the header summary (records, digest, footprint)\n"
         "\n"
         "exit codes: 0 ok; 2 usage error; 3 unreadable or malformed "
         "input\n";
  return kExitUsage;
}

std::uint64_t parse_u64(const std::string& arg, const std::string& text) {
  if (text.find('-') != std::string::npos) {
    throw std::invalid_argument("invalid value '" + text + "' for " + arg);
  }
  try {
    return std::stoull(text);
  } catch (const std::exception&) {
    throw std::invalid_argument("invalid value '" + text + "' for " + arg);
  }
}

struct Args {
  std::string command;
  std::vector<std::string> positional;
  std::string kernel;
  std::string machine = "KNL";
  std::string out;
  std::uint64_t refs = fpr::model::kDefaultTraceRefs;
  std::uint64_t warmup = 0;
  bool warmup_explicit = false;
  std::uint64_t limit = 0;
  std::uint64_t chunk = fpr::io::kTraceChunkRecords;
  double scale = 0.3;
  unsigned scale_shift = fpr::model::kDefaultScaleShift;
  std::uint64_t seed = 42;
  unsigned threads = 0;
};

int cmd_record(const Args& a) {
  using namespace fpr;
  if (a.kernel.empty()) {
    std::cerr << "fpr-trace record: --kernel is required\n";
    return usage(std::cerr);
  }
  if (a.out.empty()) {
    std::cerr << "fpr-trace record: --out is required\n";
    return usage(std::cerr);
  }
  const auto all = arch::all_machines();
  const arch::CpuSpec* cpu = nullptr;
  for (const auto& m : all) {
    if (m.short_name == a.machine) cpu = &m;
  }
  if (cpu == nullptr) {
    std::cerr << "fpr-trace record: unknown machine '" << a.machine
              << "' (expected a Table I short name)\n";
    return usage(std::cerr);
  }

  std::unique_ptr<kernels::ProxyKernel> kernel;
  try {
    kernel = kernels::make(a.kernel);
  } catch (const std::invalid_argument& e) {
    std::cerr << "fpr-trace record: " << e.what() << "\n";
    return usage(std::cerr);
  }

  kernels::RunConfig rc;
  rc.scale = a.scale;
  rc.threads = a.threads;
  rc.seed = a.seed;
  const auto meas = kernel->run(rc);

  // Exactly memsim::simulate_pattern's generator inputs: per-core slice
  // of the measured spec, then the same capacity scale-down the
  // replaying hierarchy applies, at the fixed profiling seed.
  const auto sliced = model::per_core_slice(meas.access, cpu->cores);
  const auto scaled = memsim::scale_spec(sliced, a.scale_shift);
  memsim::TraceGenerator gen(scaled, model::kProfileSeed);

  const std::uint64_t warmup = a.warmup_explicit ? a.warmup : a.refs;
  const std::uint64_t total = warmup + a.refs;
  io::TraceWriter writer(a.out, static_cast<std::uint32_t>(a.chunk));
  std::vector<memsim::MemRef> block(4096);
  for (std::uint64_t done = 0; done < total;) {
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(block.size(), total - done));
    gen.fill(block.data(), n);
    writer.append(block.data(), n);
    done += n;
  }
  writer.finish();
  std::cerr << "[fpr-trace] wrote '" << a.out << "': " << total
            << " record(s) (" << warmup << " warmup + " << a.refs
            << " measured), kernel " << a.kernel << " on "
            << cpu->short_name << ", scale-shift " << a.scale_shift << "\n"
            << "[fpr-trace] replay with: fpr trace " << a.out
            << " --machine " << cpu->short_name << " --warmup " << warmup
            << " --scale-shift " << a.scale_shift << "\n";
  return kExitOk;
}

int cmd_convert(const Args& a) {
  using namespace fpr;
  const std::string& in = a.positional[0];
  const std::string& out = a.positional[1];
  std::ifstream text(in);
  if (!text) {
    std::cerr << "fpr-trace convert: cannot read '" << in
              << "': missing or unreadable\n";
    return kExitBadInput;
  }
  io::TraceWriter writer(out, static_cast<std::uint32_t>(a.chunk));
  const std::uint64_t n = io::convert_text_trace(text, writer);
  writer.finish();
  std::cerr << "[fpr-trace] wrote '" << out << "': " << n
            << " record(s), digest " << std::hex << writer.digest()
            << std::dec << "\n";
  return kExitOk;
}

int cmd_dump(const Args& a) {
  fpr::io::TraceReader reader(a.positional[0]);
  const std::uint64_t n = fpr::io::dump_trace_text(reader, std::cout,
                                                   a.limit);
  if (a.limit > 0 && n == a.limit &&
      reader.info().records > a.limit) {
    std::cerr << "[fpr-trace] ... " << (reader.info().records - a.limit)
              << " more record(s)\n";
  }
  return kExitOk;
}

int cmd_info(const Args& a) {
  const auto info = fpr::io::read_trace_info(a.positional[0]);
  char digest[20];
  std::snprintf(digest, sizeof(digest), "%016llx",
                static_cast<unsigned long long>(info.digest));
  std::cout << "file:           " << a.positional[0] << "\n"
            << "records:        " << info.records << "\n"
            << "digest:         " << digest << "\n"
            << "chunk_records:  " << info.chunk_records << "\n"
            << "addr_range:     [0x" << std::hex << info.min_addr << ", 0x"
            << info.max_addr << std::dec << "]\n"
            << "touched_lines:  " << info.touched_lines << "\n"
            << "working_set:    " << info.working_set_bytes() << " bytes\n";
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (argc < 2) return usage(std::cerr);
  a.command = argv[1];
  if (a.command == "--help" || a.command == "-h" || a.command == "help") {
    usage(std::cout);
    return kExitOk;
  }
  try {
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc) {
          throw std::invalid_argument("option " + arg + " needs a value");
        }
        return argv[++i];
      };
      if (arg == "--kernel") {
        a.kernel = value();
      } else if (arg == "--machine") {
        a.machine = value();
      } else if (arg == "--out") {
        a.out = value();
      } else if (arg == "--refs") {
        a.refs = parse_u64(arg, value());
        if (a.refs == 0) {
          throw std::invalid_argument("--refs must be > 0");
        }
      } else if (arg == "--warmup") {
        a.warmup = parse_u64(arg, value());
        a.warmup_explicit = true;
      } else if (arg == "--limit") {
        a.limit = parse_u64(arg, value());
      } else if (arg == "--chunk") {
        a.chunk = parse_u64(arg, value());
        if (a.chunk == 0 || a.chunk > (1u << 20)) {
          throw std::invalid_argument("--chunk must be in [1, 2^20]");
        }
      } else if (arg == "--scale") {
        a.scale = std::stod(value());
        if (a.scale <= 0.0) {
          throw std::invalid_argument("--scale must be > 0");
        }
      } else if (arg == "--scale-shift") {
        a.scale_shift = static_cast<unsigned>(parse_u64(arg, value()));
        if (a.scale_shift > 30) {
          throw std::invalid_argument("--scale-shift must be <= 30");
        }
      } else if (arg == "--seed") {
        a.seed = parse_u64(arg, value());
      } else if (arg == "--threads") {
        a.threads = static_cast<unsigned>(parse_u64(arg, value()));
        if (a.threads > 4096) {
          throw std::invalid_argument("--threads must be <= 4096");
        }
      } else if (arg.rfind("--", 0) == 0) {
        throw std::invalid_argument("unknown option '" + arg + "'");
      } else {
        a.positional.push_back(arg);
      }
    }

    if (a.command == "record") {
      if (!a.positional.empty()) {
        throw std::invalid_argument("record takes no positional arguments");
      }
      return cmd_record(a);
    }
    if (a.command == "convert") {
      if (a.positional.size() != 2) {
        throw std::invalid_argument(
            "convert needs exactly IN.txt and OUT.fpt");
      }
      return cmd_convert(a);
    }
    if (a.command == "dump" || a.command == "info") {
      if (a.positional.size() != 1) {
        throw std::invalid_argument(a.command + " needs exactly one file");
      }
      return a.command == "dump" ? cmd_dump(a) : cmd_info(a);
    }
    std::cerr << "fpr-trace: unknown command '" << a.command << "'\n";
    return usage(std::cerr);
  } catch (const std::invalid_argument& e) {
    std::cerr << "fpr-trace: " << e.what() << "\n";
    return usage(std::cerr);
  } catch (const fpr::io::TraceFormatError& e) {
    std::cerr << "fpr-trace: " << e.what() << "\n";
    return kExitBadInput;
  } catch (const std::exception& e) {
    std::cerr << "fpr-trace: error: " << e.what() << "\n";
    return kExitFailure;
  }
}
