// Tests for the src/io serialization layer: JSON parse/dump semantics,
// the serialize -> parse -> serialize fixed-point property, NaN/inf
// encoding, malformed-input errors, lossless study-results round-trips,
// and the golden-snapshot regression gate over the full reproduced
// evaluation at the deterministic test scale.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "io/explore_json.hpp"
#include "io/json.hpp"
#include "io/study_json.hpp"
#include "study/explore.hpp"
#include "study/study_engine.hpp"

namespace fpr::io {
namespace {

// ---------------------------------------------------------------------------
// Parser / writer basics

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_EQ(parse("42").as_u64(), 42u);
  EXPECT_EQ(parse("-7").as_number(), -7.0);
  EXPECT_DOUBLE_EQ(parse("2.5e3").as_number(), 2500.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
  EXPECT_EQ(parse("  \t\n 1 \r\n").as_u64(), 1u);
}

TEST(Json, ParsesContainers) {
  const Json v = parse(R"({"a": [1, 2.5, "x"], "b": {"c": true}})");
  EXPECT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_EQ(v.at("a").as_array()[0].as_u64(), 1u);
  EXPECT_EQ(v.at("a").as_array()[2].as_string(), "x");
  EXPECT_EQ(v.at("b").at("c").as_bool(), true);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW((void)v.at("missing"), JsonError);
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\/d\n\t")").as_string(), "a\"b\\c/d\n\t");
  EXPECT_EQ(parse(R"("\u0041\u00e9")").as_string(), "A\xc3\xa9");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(parse(R"("\ud83d\ude00")").as_string(), "\xf0\x9f\x98\x80");
  // Writer escapes control characters and round-trips them.
  const Json v{std::string("line1\nline2\x01")};
  EXPECT_EQ(parse(dump(v)).as_string(), v.as_string());
}

TEST(Json, U64RoundTripsExactly) {
  const std::uint64_t big = 18446744073709551615ull;  // 2^64 - 1
  EXPECT_EQ(parse(dump(Json(big))).as_u64(), big);
  // Beyond double precision: 2^53 + 1 must survive exactly.
  const std::uint64_t odd = (1ull << 53) + 1;
  EXPECT_EQ(parse(dump(Json(odd))).as_u64(), odd);
  // Large negatives take the int64 path.
  EXPECT_EQ(parse("-9223372036854775808").as_number(),
            -9223372036854775808.0);
}

TEST(Json, DoublesRoundTripExactly) {
  for (const double d : {0.1, 1.0 / 3.0, 6.02214076e23, 5e-324,
                         std::numeric_limits<double>::max(), -0.0, 1e308}) {
    const Json v{d};
    const double back = parse(dump(v)).as_number();
    EXPECT_EQ(std::signbit(back), std::signbit(d));
    EXPECT_EQ(back, d) << dump(v);
  }
}

TEST(Json, NanAndInfEncodeAsStrings) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(dump(Json(nan)), "\"NaN\"");
  EXPECT_EQ(dump(Json(inf)), "\"Infinity\"");
  EXPECT_EQ(dump(Json(-inf)), "\"-Infinity\"");
  EXPECT_TRUE(std::isnan(parse("\"NaN\"").as_number()));
  EXPECT_EQ(parse("\"Infinity\"").as_number(), inf);
  EXPECT_EQ(parse("\"-Infinity\"").as_number(), -inf);
  // A plain string is still a string, not silently numeric.
  EXPECT_THROW((void)parse("\"nan\"").as_number(), JsonError);
}

TEST(Json, MalformedInputsThrowWithPosition) {
  const std::vector<std::string> bad = {
      "",        "{",        "[1,]",        "{\"a\":}", "tru",
      "1.2.3",   "\"\\x\"",  "{\"a\" 1}",   "1 2",      "[1 2]",
      "{\"a\": 1,}", "\"unterminated", "nul",      "+1",
      "\"bad \x01 ctl\"", "\"\\ud800\"",  // unpaired surrogate
  };
  for (const auto& text : bad) {
    EXPECT_THROW((void)parse(text), JsonError) << "input: " << text;
  }
  // Deep nesting is bounded, not a stack overflow.
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_THROW((void)parse(deep), JsonError);
  // Error messages carry line:column.
  try {
    (void)parse("{\n  \"a\": oops\n}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("2:8"), std::string::npos)
        << e.what();
  }
}

TEST(Json, AccessTypeErrors) {
  EXPECT_THROW((void)parse("1").as_string(), JsonError);
  EXPECT_THROW((void)parse("\"x\"").as_bool(), JsonError);
  EXPECT_THROW((void)parse("[1]").as_object(), JsonError);
  EXPECT_THROW((void)parse("-1").as_u64(), JsonError);
  EXPECT_THROW((void)parse("1.5").as_u64(), JsonError);
}

TEST(Json, ObjectsPreserveInsertionOrderAndSetReplaces) {
  Json obj = Json::object();
  obj.set("z", 1).set("a", 2).set("z", 3);
  EXPECT_EQ(dump(obj), "{\n  \"z\": 3,\n  \"a\": 2\n}");
}

// ---------------------------------------------------------------------------
// The fixed-point property: for ANY value v, dump(parse(dump(v))) is
// byte-identical to dump(v). Checked over randomized value trees whose
// doubles come from raw bit patterns (subnormals, huge exponents, NaN).

Json random_value(Xoshiro256& rng, int depth) {
  const std::uint64_t pick = rng.below(depth >= 4 ? 6 : 8);
  switch (pick) {
    case 0: return Json(nullptr);
    case 1: return Json(rng.below(2) == 0);
    case 2: return Json(rng.next());  // u64
    case 3: return Json(static_cast<std::int64_t>(rng.next()));
    case 4: {
      double d;
      const std::uint64_t bits = rng.next();
      static_assert(sizeof(d) == sizeof(bits));
      std::memcpy(&d, &bits, sizeof(d));
      return Json(d);
    }
    case 5: {
      std::string s;
      const auto len = rng.below(12);
      for (std::uint64_t i = 0; i < len; ++i) {
        s += static_cast<char>(rng.below(0x60) + 0x20);  // printable ASCII
      }
      if (rng.below(4) == 0) s += "\n\t\"\\";
      return Json(std::move(s));
    }
    case 6: {
      Json arr = Json::array();
      const auto len = rng.below(5);
      for (std::uint64_t i = 0; i < len; ++i) {
        arr.push(random_value(rng, depth + 1));
      }
      return arr;
    }
    default: {
      Json obj = Json::object();
      const auto len = rng.below(5);
      for (std::uint64_t i = 0; i < len; ++i) {
        obj.set("k" + std::to_string(i), random_value(rng, depth + 1));
      }
      return obj;
    }
  }
}

TEST(Json, SerializeParseSerializeIsAFixedPoint) {
  Xoshiro256 rng(0xc0ffee);
  for (int iter = 0; iter < 200; ++iter) {
    const Json v = random_value(rng, 0);
    const std::string s1 = dump(v);
    const std::string s2 = dump(parse(s1));
    ASSERT_EQ(s1, s2) << "iteration " << iter;
  }
}

// ---------------------------------------------------------------------------
// Study-results serialization

study::StudyResults tiny_results() {
  auto cfg = study::golden_config();
  cfg.kernels = {"BABL2"};
  cfg.trace_refs = 20'000;
  cfg.scale = 0.15;
  static const study::StudyResults r = study::StudyEngine(cfg).run();
  return r;
}

TEST(StudyJson, RoundTripIsLossless) {
  const auto r = tiny_results();
  const Json doc = to_json(r);
  const auto back = study_from_json(doc);
  EXPECT_EQ(dump(to_json(back)), dump(doc));
  // Spot-check rehydration quality beyond the string comparison.
  ASSERT_EQ(back.kernels.size(), r.kernels.size());
  const auto& k0 = back.kernels[0];
  EXPECT_EQ(k0.info.abbrev, "BABL2");
  EXPECT_EQ(k0.meas.ops.fp64, r.kernels[0].meas.ops.fp64);
  ASSERT_EQ(k0.machines.size(), 3u);
  EXPECT_EQ(k0.machines[0].cpu.short_name, "KNL");
  EXPECT_EQ(k0.machines[0].cpu.cores, 64);  // full CpuSpec rehydrated
  EXPECT_EQ(k0.machines[0].freq_sweep.size(),
            r.kernels[0].machines[0].freq_sweep.size());
  EXPECT_EQ(k0.on("BDW").perf.bound, r.kernels[0].on("BDW").perf.bound);
}

TEST(StudyJson, RoundTripSurvivesTextForm) {
  const Json doc = to_json(tiny_results());
  const std::string text = dump(doc);
  EXPECT_EQ(dump(to_json(study_from_json(parse(text)))), text);
}

TEST(StudyJson, RejectsForeignAndFutureDocuments) {
  EXPECT_THROW((void)study_from_json(parse(R"({"format": "nope",
      "version": 1, "kernels": []})")),
               JsonError);
  EXPECT_THROW((void)study_from_json(parse(R"({"format": "fpr-study-results",
      "version": 999, "kernels": []})")),
               JsonError);
  EXPECT_THROW((void)study_from_json(parse(R"({"kernels": []})")), JsonError);
  // Unknown machine names cannot rehydrate a CpuSpec.
  Json doc = to_json(tiny_results());
  auto mut_key = [](Json& obj, std::string_view key) -> Json& {
    for (auto& [k, v] : obj.as_object()) {
      if (k == key) return v;
    }
    throw JsonError("test: missing key " + std::string(key));
  };
  Json& machines = mut_key(mut_key(doc, "kernels").as_array()[0], "machines");
  machines.as_array()[0].set("machine", "XXX");
  EXPECT_THROW((void)study_from_json(doc), JsonError);
}

// ---------------------------------------------------------------------------
// Golden snapshot: the committed tests/golden/study_snapshot.json is the
// reproduced evaluation at the deterministic test scale (golden_config).
// Integers (op counts, working sets) must match exactly; floating-point
// metrics compare with a relative tolerance of 1e-9 — wide enough for
// libm/codegen differences between toolchains, six orders of magnitude
// tighter than any real model regression.
//
// Regenerate after an intentional model/kernel change with:
//   ./build/fpr study --golden --out tests/golden/study_snapshot.json

constexpr double kGoldenRelTol = 1e-9;

/// True for the writer's string spellings of non-finite doubles, which
/// is how they come back from a snapshot file (as_number() accepts
/// them, but is_number() is false).
bool is_nonfinite_string(const Json& v) {
  if (!v.is_string()) return false;
  const std::string& s = v.as_string();
  return s == "NaN" || s == "Infinity" || s == "-Infinity";
}

void compare_json(const Json& got, const Json& want, const std::string& path,
                  std::vector<std::string>& mismatches) {
  auto note = [&](const std::string& what) {
    if (mismatches.size() < 20) mismatches.push_back(path + ": " + what);
  };
  if (want.is_object()) {
    if (!got.is_object()) return note("expected object");
    const auto& wo = want.as_object();
    const auto& go = got.as_object();
    if (wo.size() != go.size()) return note("object size differs");
    for (const auto& [k, wv] : wo) {
      const Json* gv = got.find(k);
      if (gv == nullptr) return note("missing key " + k);
      compare_json(*gv, wv, path + "." + k, mismatches);
    }
    return;
  }
  if (want.is_array()) {
    if (!got.is_array()) return note("expected array");
    const auto& wa = want.as_array();
    const auto& ga = got.as_array();
    if (wa.size() != ga.size()) return note("array size differs");
    for (std::size_t i = 0; i < wa.size(); ++i) {
      compare_json(ga[i], wa[i], path + "[" + std::to_string(i) + "]",
                   mismatches);
    }
    return;
  }
  if (want.is_double() || got.is_double() || is_nonfinite_string(want) ||
      is_nonfinite_string(got)) {
    if ((!got.is_number() && !is_nonfinite_string(got)) ||
        (!want.is_number() && !is_nonfinite_string(want))) {
      return note("expected number");
    }
    const double g = got.as_number();
    const double w = want.as_number();
    // NaN/inf never slip through a NaN comparison: only NaN-vs-NaN and
    // equal infinities count as matching.
    if (std::isnan(g) || std::isnan(w)) {
      if (!(std::isnan(g) && std::isnan(w))) {
        note("got " + dump(got) + ", want " + dump(want));
      }
      return;
    }
    if (std::isinf(g) || std::isinf(w)) {
      if (g != w) note("got " + dump(got) + ", want " + dump(want));
      return;
    }
    const double denom = std::max(std::abs(g), std::abs(w));
    if (denom != 0.0 && std::abs(g - w) / denom > kGoldenRelTol) {
      note("got " + dump(got) + ", want " + dump(want));
    }
    return;
  }
  if (dump(got) != dump(want)) {
    note("got " + dump(got) + ", want " + dump(want));
  }
}

TEST(GoldenSnapshot, ComparatorHandlesNonFiniteSpellings) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<std::string> mm;
  // A snapshot's "NaN"/"Infinity" strings match the in-memory doubles.
  compare_json(Json(nan), parse("\"NaN\""), "$", mm);
  compare_json(Json(inf), parse("\"Infinity\""), "$", mm);
  compare_json(parse("\"NaN\""), Json(nan), "$", mm);
  EXPECT_TRUE(mm.empty()) << mm.front();
  // ...but non-finite drift is a mismatch, never a silent pass.
  compare_json(Json(1.0), parse("\"NaN\""), "$", mm);
  EXPECT_EQ(mm.size(), 1u);
  compare_json(parse("\"Infinity\""), parse("\"-Infinity\""), "$", mm);
  EXPECT_EQ(mm.size(), 2u);
  compare_json(Json(nan), Json(1.0), "$", mm);
  EXPECT_EQ(mm.size(), 3u);
}

TEST(GoldenSnapshot, StudyMatchesCommittedSnapshot) {
  const Json want = load_file(FPR_GOLDEN_SNAPSHOT);
  const Json got = to_json(study::StudyEngine(study::golden_config()).run());
  std::vector<std::string> mismatches;
  compare_json(got, want, "$", mismatches);
  for (const auto& m : mismatches) ADD_FAILURE() << m;
  EXPECT_TRUE(mismatches.empty())
      << "golden snapshot drifted; if intentional, regenerate with "
         "`fpr study --golden --out tests/golden/study_snapshot.json`";
}

TEST(GoldenExplore, MatchesCommittedSnapshot) {
  const Json want = load_file(FPR_EXPLORE_GOLDEN);
  const Json got =
      to_json(study::ExploreEngine(study::golden_explore_config()).run());
  std::vector<std::string> mismatches;
  compare_json(got, want, "$", mismatches);
  for (const auto& m : mismatches) ADD_FAILURE() << m;
  EXPECT_TRUE(mismatches.empty())
      << "explore snapshot drifted; if intentional, regenerate with "
         "`fpr explore --golden --out tests/golden/explore_snapshot.json`";
}

}  // namespace
}  // namespace fpr::io
