// fpr-trace format and TraceSource replay tests: writer/reader
// round-trips, malformed-input rejection, and the record->replay
// property suite — a recorded synthetic trace replayed through
// io::FileTraceSource must reproduce the synthetic replay's statistics
// exactly, on every Table I machine, serial or sharded.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "arch/machines.hpp"
#include "common/thread_pool.hpp"
#include "io/trace_format.hpp"
#include "io/trace_replay.hpp"
#include "memsim/hierarchy.hpp"
#include "memsim/sim_cache.hpp"
#include "memsim/trace_gen.hpp"
#include "memsim/trace_source.hpp"

namespace fpr::memsim {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

void write_refs(const std::string& path, const std::vector<MemRef>& refs,
                std::uint32_t chunk_records = io::kTraceChunkRecords) {
  io::TraceWriter w(path, chunk_records);
  w.append(refs.data(), refs.size());
  w.finish();
}

std::vector<MemRef> read_all(const std::string& path) {
  io::FileTraceSource src(path);
  std::vector<MemRef> out;
  MemRef block[97];  // deliberately unaligned with any chunk size
  while (true) {
    const std::size_t n = src.fill(block, 97);
    if (n == 0) break;
    out.insert(out.end(), block, block + n);
  }
  return out;
}

bool identical(const HierarchyResult& a, const HierarchyResult& b) {
  if (a.refs != b.refs || a.levels.size() != b.levels.size()) return false;
  for (std::size_t i = 0; i < a.levels.size(); ++i) {
    if (a.levels[i].name != b.levels[i].name ||
        a.levels[i].stats.hits != b.levels[i].stats.hits ||
        a.levels[i].stats.misses != b.levels[i].stats.misses ||
        a.levels[i].stats.writebacks != b.levels[i].stats.writebacks) {
      return false;
    }
  }
  return true;
}

/// Record `total` references of the scaled spec to `path`, exactly as
/// `fpr-trace record` does.
void record_spec(const std::string& path, const AccessPatternSpec& scaled,
                 std::uint64_t seed, std::uint64_t total) {
  TraceGenerator gen(scaled, seed);
  io::TraceWriter w(path);
  std::vector<MemRef> block(1024);
  for (std::uint64_t done = 0; done < total;) {
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(block.size(), total - done));
    gen.fill(block.data(), n);
    w.append(block.data(), n);
    done += n;
  }
  w.finish();
}

/// Small-footprint specs covering every pattern class plus a mixture.
std::vector<std::pair<std::string, AccessPatternSpec>> pattern_suite() {
  std::vector<std::pair<std::string, AccessPatternSpec>> out;
  out.emplace_back("stream",
                   AccessPatternSpec::single(StreamPattern{
                       .bytes_per_array = 8ull << 20, .arrays = 3,
                       .writes_per_iter = 1}));
  out.emplace_back("strided", AccessPatternSpec::single(StridedPattern{
                                  .footprint_bytes = 8ull << 20,
                                  .stride_bytes = 256}));
  out.emplace_back("stencil", AccessPatternSpec::single(StencilPattern{
                                  .nx = 96, .ny = 96, .nz = 48,
                                  .elem_bytes = 8, .radius = 1,
                                  .full_box = false}));
  out.emplace_back("gather", AccessPatternSpec::single(GatherPattern{
                                 .table_bytes = 16ull << 20, .elem_bytes = 8,
                                 .sequential_fraction = 0.1}));
  out.emplace_back("chase", AccessPatternSpec::single(ChasePattern{
                                .footprint_bytes = 4ull << 20,
                                .node_bytes = 64}));
  out.emplace_back("blocked", AccessPatternSpec::single(BlockedPattern{
                                  .matrix_bytes = 16ull << 20,
                                  .tile_bytes = 1ull << 19,
                                  .tile_reuse = 8.0}));
  AccessPatternSpec mix;
  mix.components.push_back({StreamPattern{.bytes_per_array = 4ull << 20,
                                          .arrays = 3, .writes_per_iter = 1},
                            2.0});
  mix.components.push_back({GatherPattern{.table_bytes = 8ull << 20,
                                          .elem_bytes = 8,
                                          .sequential_fraction = 0.1},
                            1.0});
  out.emplace_back("mixture", mix);
  return out;
}

TEST(TraceFormat, RoundTripExactAcrossMagnitudes) {
  std::vector<MemRef> refs;
  std::uint64_t addrs[] = {0,        1,          63,         64,
                           4096,     1ull << 20, 1ull << 40, (1ull << 62),
                           (1ull << 63) - 64};
  for (int rep = 0; rep < 3; ++rep) {
    for (const auto a : addrs) {
      refs.push_back({a + static_cast<std::uint64_t>(rep) * 8, rep % 2 == 1});
    }
  }
  // Descending deltas too (negative deltas exercise zigzag).
  for (int i = 0; i < 11; ++i) {
    refs.push_back({(1ull << 30) - static_cast<std::uint64_t>(i) * 4096,
                    i % 3 == 0});
  }
  const std::string path = tmp_path("roundtrip.fpt");
  write_refs(path, refs, /*chunk_records=*/7);  // forces partial last chunk
  const auto back = read_all(path);
  ASSERT_EQ(back.size(), refs.size());
  for (std::size_t i = 0; i < refs.size(); ++i) {
    EXPECT_EQ(back[i].addr, refs[i].addr) << "record " << i;
    EXPECT_EQ(back[i].write, refs[i].write) << "record " << i;
  }
  std::remove(path.c_str());
}

TEST(TraceFormat, EmptyAndSingleRecordTraces) {
  const std::string path = tmp_path("tiny.fpt");
  write_refs(path, {});
  EXPECT_EQ(io::read_trace_info(path).records, 0u);
  EXPECT_TRUE(read_all(path).empty());

  write_refs(path, {{0xabcd40, true}});
  const auto info = io::read_trace_info(path);
  EXPECT_EQ(info.records, 1u);
  EXPECT_EQ(info.min_addr, 0xabcd40u);
  EXPECT_EQ(info.max_addr, 0xabcd40u);
  EXPECT_EQ(info.touched_lines, 1u);
  EXPECT_EQ(info.working_set_bytes(), 64u);
  const auto back = read_all(path);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].addr, 0xabcd40u);
  EXPECT_TRUE(back[0].write);
  std::remove(path.c_str());
}

TEST(TraceFormat, DigestIndependentOfChunking) {
  std::vector<MemRef> refs;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    refs.push_back({0x1000 + i * 72, i % 5 == 0});
  }
  const std::string a = tmp_path("chunk_small.fpt");
  const std::string b = tmp_path("chunk_large.fpt");
  write_refs(a, refs, 13);
  write_refs(b, refs, 4096);
  const auto ia = io::read_trace_info(a);
  const auto ib = io::read_trace_info(b);
  EXPECT_EQ(ia.digest, ib.digest);
  EXPECT_EQ(ia.records, ib.records);
  EXPECT_EQ(ia.touched_lines, ib.touched_lines);
  EXPECT_EQ(ia.chunk_records, 13u);
  EXPECT_EQ(ib.chunk_records, 4096u);
  // Different content must change the digest.
  refs[500].write = !refs[500].write;
  write_refs(a, refs, 13);
  EXPECT_NE(io::read_trace_info(a).digest, ia.digest);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(TraceFormat, HeaderTracksFootprint) {
  const std::string path = tmp_path("footprint.fpt");
  // Three distinct lines: 0x0, 0x40, and 0x10000; min/max span them.
  write_refs(path, {{0x8, false}, {0x44, true}, {0x10000, false},
                    {0x10, false}});
  const auto info = io::read_trace_info(path);
  EXPECT_EQ(info.records, 4u);
  EXPECT_EQ(info.min_addr, 0x8u);
  EXPECT_EQ(info.max_addr, 0x10000u);
  EXPECT_EQ(info.touched_lines, 3u);
  std::remove(path.c_str());
}

TEST(TraceFormat, RejectsMissingWrongMagicAndBadVersion) {
  EXPECT_THROW(io::read_trace_info(tmp_path("nonexistent.fpt")),
               io::TraceFormatError);
  EXPECT_THROW(io::FileTraceSource(tmp_path("nonexistent.fpt")),
               io::TraceFormatError);

  const std::string path = tmp_path("corrupt.fpt");
  {
    std::ofstream f(path, std::ios::binary);
    f << "JUNKJUNKJUNKJUNK this is not a trace and is long enough to parse";
  }
  EXPECT_THROW(io::read_trace_info(path), io::TraceFormatError);

  // Valid file with the version field (offset 8) patched to 99.
  write_refs(path, {{0x40, false}, {0x80, true}});
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(8);
    const char v99[4] = {99, 0, 0, 0};
    f.write(v99, 4);
  }
  EXPECT_THROW(io::read_trace_info(path), io::TraceFormatError);
  std::remove(path.c_str());
}

TEST(TraceFormat, RejectsTruncatedFiles) {
  const std::string path = tmp_path("trunc.fpt");
  std::vector<MemRef> refs;
  for (std::uint64_t i = 0; i < 300; ++i) refs.push_back({i * 64, false});
  write_refs(path, refs, 100);
  std::string bytes;
  {
    std::ifstream f(path, std::ios::binary);
    std::ostringstream ss;
    ss << f.rdbuf();
    bytes = ss.str();
  }
  // Truncation anywhere — inside the header, at a chunk boundary, or
  // mid-payload — must surface as TraceFormatError, never as a silently
  // shorter trace.
  for (const std::size_t keep :
       {std::size_t{10}, io::kTraceHeaderBytes, io::kTraceHeaderBytes + 3,
        bytes.size() / 2, bytes.size() - 1}) {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(keep));
    f.close();
    EXPECT_THROW(
        {
          io::TraceReader r(path);
          MemRef block[128];
          while (r.read(block, 128) > 0) {
          }
        },
        io::TraceFormatError)
        << "keep=" << keep;
  }
  std::remove(path.c_str());
}

TEST(TraceFormat, RejectsRecordCountMismatch) {
  const std::string path = tmp_path("count.fpt");
  std::vector<MemRef> refs;
  for (std::uint64_t i = 0; i < 50; ++i) refs.push_back({i * 64, false});
  write_refs(path, refs);
  {
    // Patch the header's record count (offset 16) to promise one more.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(16);
    const char n51[8] = {51, 0, 0, 0, 0, 0, 0, 0};
    f.write(n51, 8);
  }
  EXPECT_THROW(read_all(path), io::TraceFormatError);
  std::remove(path.c_str());
}

TEST(TraceFormat, WriterRejectsOversizedAddresses) {
  const std::string path = tmp_path("oversize.fpt");
  io::TraceWriter w(path);
  const MemRef bad{1ull << 63, false};
  EXPECT_THROW(w.append(bad), io::TraceFormatError);
  std::remove(path.c_str());
}

TEST(TraceFormat, TextConvertRoundTripAndErrors) {
  std::istringstream text(
      "# comment line\n"
      "R 0x1000\n"
      "\n"
      "W 4096\n"
      "R 0xffffffffff\n");
  const std::string path = tmp_path("text.fpt");
  io::TraceWriter w(path);
  EXPECT_EQ(io::convert_text_trace(text, w), 3u);
  w.finish();
  const auto back = read_all(path);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0].addr, 0x1000u);
  EXPECT_FALSE(back[0].write);
  EXPECT_EQ(back[1].addr, 4096u);
  EXPECT_TRUE(back[1].write);
  EXPECT_EQ(back[2].addr, 0xffffffffffull);

  // Dump emits the canonical text form; converting that back with the
  // same chunking yields a byte-identical binary.
  std::ostringstream dumped;
  {
    io::TraceReader r(path);
    EXPECT_EQ(io::dump_trace_text(r, dumped), 3u);
  }
  std::istringstream again(dumped.str());
  const std::string path2 = tmp_path("text2.fpt");
  io::TraceWriter w2(path2);
  io::convert_text_trace(again, w2);
  w2.finish();
  std::ifstream fa(path, std::ios::binary), fb(path2, std::ios::binary);
  std::ostringstream sa, sb;
  sa << fa.rdbuf();
  sb << fb.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());

  for (const char* bad : {"X 0x1000\n", "R\n", "R -5\n", "R 0x1000 junk\n"}) {
    std::istringstream badin(bad);
    io::TraceWriter wb(tmp_path("bad.fpt"));
    EXPECT_THROW(io::convert_text_trace(badin, wb), io::TraceFormatError)
        << "input: " << bad;
  }
  std::remove(path.c_str());
  std::remove(path2.c_str());
  std::remove(tmp_path("bad.fpt").c_str());
}

// The tentpole property: recording a synthetic pattern and replaying the
// file reproduces the scalar synthetic replay's statistics exactly — for
// every pattern class, on every Table I machine, with refs deliberately
// not a multiple of the chunk size.
TEST(RecordReplay, FileReplayMatchesSyntheticScalarEverywhere) {
  constexpr std::uint64_t kRefs = 30011;  // prime: never chunk-aligned
  constexpr std::uint64_t kWarmup = kRefs;
  constexpr unsigned kShift = 8;
  constexpr std::uint64_t kSeed = 0xfeed1234;
  const auto machines = arch::all_machines();
  for (const auto& [name, spec] : pattern_suite()) {
    const AccessPatternSpec scaled = scale_spec(spec, kShift);
    const std::string path = tmp_path("prop_" + name + ".fpt");
    record_spec(path, scaled, kSeed, kWarmup + kRefs);
    for (const auto& cpu : machines) {
      Hierarchy hs(cpu, kShift);
      TraceGenerator gen(scaled, kSeed);
      const auto want = hs.replay_scalar(gen, kRefs, kWarmup);

      Hierarchy hf(cpu, kShift);
      io::FileTraceSource src(path);
      const auto got = hf.replay(src, kRefs, kWarmup);
      EXPECT_TRUE(identical(want, got))
          << name << " on " << cpu.short_name;
    }
    std::remove(path.c_str());
  }
}

TEST(RecordReplay, ShardedFileReplayIdenticalForAllJobCounts) {
  constexpr std::uint64_t kRefs = 25013;
  constexpr unsigned kShift = 8;
  const auto cpu = arch::knl();
  const AccessPatternSpec scaled = scale_spec(
      pattern_suite()[6].second, kShift);  // mixture: hardest case
  const std::string path = tmp_path("sharded.fpt");
  record_spec(path, scaled, 0xfeed1234, 2 * kRefs);

  Hierarchy hserial(cpu, kShift);
  io::FileTraceSource serial_src(path);
  const auto want = hserial.replay(serial_src, kRefs, kRefs);
  for (const unsigned jobs : {1u, 2u, 8u}) {
    ThreadPool pool(jobs + 1);
    Hierarchy h(cpu, kShift);
    io::FileTraceSource src(path);
    const auto got = h.replay_sharded(src, kRefs, kRefs, pool, jobs);
    EXPECT_TRUE(identical(want, got)) << "jobs=" << jobs;
  }
  std::remove(path.c_str());
}

TEST(RecordReplay, FiniteSourceRunsDryAndReportsMeasuredRefs) {
  const std::string path = tmp_path("short.fpt");
  std::vector<MemRef> refs;
  for (std::uint64_t i = 0; i < 1000; ++i) refs.push_back({i * 64, false});
  write_refs(path, refs);
  const auto cpu = arch::knl();

  Hierarchy h(cpu, 8);
  io::FileTraceSource src(path);
  const auto res = h.replay(src, /*refs=*/5000, /*warmup=*/100);
  EXPECT_EQ(res.refs, 900u);  // 1000 on disk minus 100 warmup

  Hierarchy h2(cpu, 8);
  io::FileTraceSource src2(path);
  const auto drained = h2.replay(src2, 5000, /*warmup=*/1000);
  EXPECT_EQ(drained.refs, 0u);  // warmup consumed the whole file
  std::remove(path.c_str());
}

TEST(TraceCache, TraceKeyDiscriminatesAndNeverAliasesPatternKeys) {
  const auto knl = arch::knl();
  const auto bdw = arch::bdw();
  const std::string base = SimCache::trace_key(knl, 0x1234, 1000, 100, 8);
  EXPECT_EQ(base, SimCache::trace_key(knl, 0x1234, 1000, 100, 8));
  EXPECT_NE(base, SimCache::trace_key(knl, 0x1235, 1000, 100, 8));
  EXPECT_NE(base, SimCache::trace_key(knl, 0x1234, 1001, 100, 8));
  EXPECT_NE(base, SimCache::trace_key(knl, 0x1234, 1000, 101, 8));
  EXPECT_NE(base, SimCache::trace_key(knl, 0x1234, 1000, 100, 9));
  EXPECT_NE(base, SimCache::trace_key(bdw, 0x1234, 1000, 100, 8));
  // A trace key can never collide with any synthetic pattern key.
  const auto spec = AccessPatternSpec::single(
      StreamPattern{.bytes_per_array = 1 << 20, .arrays = 3,
                    .writes_per_iter = 1});
  EXPECT_NE(base, SimCache::key(knl, spec, 1000, 0x1234, 8));
}

TEST(TraceCache, CachedFileReplayIsBitIdenticalAndMemoized) {
  constexpr std::uint64_t kRefs = 10007;
  constexpr unsigned kShift = 8;
  const auto cpu = arch::knm();
  const AccessPatternSpec scaled =
      scale_spec(pattern_suite()[0].second, kShift);
  const std::string path = tmp_path("cached.fpt");
  record_spec(path, scaled, 0xfeed1234, 2 * kRefs);

  const auto plain =
      io::replay_trace_cached(nullptr, cpu, path, kRefs, kRefs, kShift);
  SimCache cache;
  const auto first =
      io::replay_trace_cached(&cache, cpu, path, kRefs, kRefs, kShift);
  const auto second =
      io::replay_trace_cached(&cache, cpu, path, kRefs, kRefs, kShift);
  // Asking for more refs than the file holds resolves to the available
  // count before keying, so the over-ask shares the cache entry.
  const auto overask =
      io::replay_trace_cached(&cache, cpu, path, 1ull << 40, kRefs, kShift);
  EXPECT_TRUE(identical(plain, first));
  EXPECT_TRUE(identical(plain, second));
  EXPECT_TRUE(identical(plain, overask));
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.size(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fpr::memsim
