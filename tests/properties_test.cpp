// Property-based tests (parameterized sweeps): invariants that must hold
// across input ranges, including the counted<T>-oracle validation of the
// explicit operation counting used by the kernels.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "arch/machines.hpp"
#include "counters/counted.hpp"
#include "counters/registry.hpp"
#include "kernels/kernel.hpp"
#include "memsim/cache.hpp"
#include "memsim/hierarchy.hpp"
#include "model/exec_model.hpp"
#include "model/memprofile.hpp"

namespace fpr {
namespace {

using counters::counted;
using counters::global_snapshot;
using counters::OpTally;
using counters::reset_all;

// ---------------------------------------------------------------------
// counted<T> oracle: run small templated kernels with counted types and
// check the oracle count equals the analytic formula the instrumented
// kernels use.

template <typename Real>
Real triad(std::vector<Real>& a, const std::vector<Real>& b,
           const std::vector<Real>& c, Real s) {
  Real sink{};
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = b[i] + s * c[i];  // 2 flops per element
  }
  for (std::size_t i = 0; i < a.size(); ++i) sink += a[i];
  return sink;
}

class TriadOracle : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TriadOracle, CountMatchesAnalyticFormula) {
  const std::size_t n = GetParam();
  std::vector<counted<double>> a(n, 0.0), b(n, 1.0), c(n, 2.0);
  reset_all();
  const OpTally before = global_snapshot();
  triad(a, b, c, counted<double>(0.4));
  const OpTally delta = global_snapshot() - before;
  // Analytic: 2 flops per element (triad) + 1 per element (sum).
  EXPECT_EQ(delta.fp64, 3 * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TriadOracle,
                         ::testing::Values(1, 7, 64, 1000, 4097));

template <typename Real>
Real dot_oracle(const std::vector<Real>& u, const std::vector<Real>& v) {
  Real s{};
  for (std::size_t i = 0; i < u.size(); ++i) s += u[i] * v[i];
  return s;
}

class DotOracle : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DotOracle, TwoFlopsPerElement) {
  const std::size_t n = GetParam();
  std::vector<counted<float>> u(n, 1.5f), v(n, 2.0f);
  reset_all();
  const OpTally before = global_snapshot();
  const auto s = dot_oracle(u, v);
  const OpTally delta = global_snapshot() - before;
  EXPECT_EQ(delta.fp32, 2 * n);
  EXPECT_FLOAT_EQ(s.value(), 3.0f * static_cast<float>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, DotOracle,
                         ::testing::Values(1, 16, 255, 2048));

// Generic matrix-multiply kernel over Real: validates the 2*m*n*k
// convention every dense kernel in this repo uses for GEMM counting.
template <typename Real>
void mini_gemm(const std::vector<Real>& a, const std::vector<Real>& b,
               std::vector<Real>& c, std::size_t m, std::size_t k,
               std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      Real acc{};
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += a[i * k + kk] * b[kk * n + j];
      }
      c[i * n + j] = acc;
    }
  }
}

class GemmOracle
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmOracle, TwoMnkFlops) {
  const auto [m, k, n] = GetParam();
  const auto mm = static_cast<std::size_t>(m);
  const auto kk = static_cast<std::size_t>(k);
  const auto nn = static_cast<std::size_t>(n);
  std::vector<counted<double>> a(mm * kk, 1.0), b(kk * nn, 2.0),
      c(mm * nn);
  reset_all();
  const OpTally before = global_snapshot();
  mini_gemm(a, b, c, mm, kk, nn);
  const OpTally delta = global_snapshot() - before;
  EXPECT_EQ(delta.fp64, 2u * mm * kk * nn);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmOracle,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(4, 8, 2),
                                           std::make_tuple(16, 16, 16),
                                           std::make_tuple(3, 31, 7)));

// ---------------------------------------------------------------------
// Cache properties.

class CacheSizeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CacheSizeSweep, HitRateMonotonicInCapacity) {
  // Fixed working set, growing cache: hit rate must not decrease.
  const std::uint64_t size = GetParam();
  memsim::Cache small({.size_bytes = size, .line_bytes = 64,
                       .associativity = 4});
  memsim::Cache big({.size_bytes = size * 4, .line_bytes = 64,
                     .associativity = 4});
  // Cyclic working set of 2x the small capacity.
  const std::uint64_t ws = size * 2;
  for (int pass = 0; pass < 6; ++pass) {
    for (std::uint64_t a = 0; a < ws; a += 64) {
      small.access(a, false);
      big.access(a, false);
    }
  }
  EXPECT_GE(big.stats().hit_rate(), small.stats().hit_rate());
}

INSTANTIATE_TEST_SUITE_P(Capacities, CacheSizeSweep,
                         ::testing::Values(4096, 16384, 65536));

class AssocSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(AssocSweep, FullAssocHoldsWorkingSetExactly) {
  // Working set == capacity with LRU: after the first pass, all hits.
  const std::uint32_t assoc = GetParam();
  const std::uint64_t lines = 64;
  memsim::Cache c({.size_bytes = lines * 64, .line_bytes = 64,
                   .associativity = assoc});
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t l = 0; l < lines; ++l) c.access(l * 64, false);
  }
  // Misses only in the first pass (the set-conflict-free case).
  EXPECT_EQ(c.stats().misses, lines);
}

INSTANTIATE_TEST_SUITE_P(Ways, AssocSweep, ::testing::Values(1, 2, 4, 8));

// ---------------------------------------------------------------------
// Model properties.

class FreqSweepProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(FreqSweepProperty, TimeMonotoneNonIncreasingInFrequency) {
  // For any workload mix, raising core frequency never hurts.
  const std::string machine = GetParam();
  const arch::CpuSpec cpu = [&] {
    for (const auto& c : arch::all_machines()) {
      if (c.short_name == machine) return c;
    }
    throw std::logic_error("machine");
  }();
  for (double fp_share : {0.0, 0.3, 0.9}) {
    model::WorkloadMeasurement w;
    w.name = "sweep";
    w.ops.fp64 = static_cast<std::uint64_t>(1e12 * fp_share);
    w.ops.int_ops = static_cast<std::uint64_t>(1e12 * (1 - fp_share));
    w.ops.bytes_read = 200'000'000'000ull;
    w.working_set_bytes = 4ull << 30;
    w.access = memsim::AccessPatternSpec::single(memsim::StreamPattern{
        .bytes_per_array = 4ull << 30, .arrays = 3});
    const auto mp = model::profile_memory(cpu, w, 80'000);
    double prev = 1e300;
    for (const auto& fs : cpu.frequency_sweep()) {
      const auto ev = model::evaluate(cpu, fs.ghz, w, mp);
      EXPECT_LE(ev.seconds, prev * 1.0001);
      prev = ev.seconds;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Machines, FreqSweepProperty,
                         ::testing::Values("KNL", "KNM", "BDW"));

TEST(ModelProperty, MoreBytesNeverFaster) {
  const auto cpu = arch::knl();
  model::WorkloadMeasurement w;
  w.name = "bytes";
  w.ops.fp64 = 1'000'000'000ull;
  w.working_set_bytes = 4ull << 30;
  w.access = memsim::AccessPatternSpec::single(memsim::StreamPattern{
      .bytes_per_array = 4ull << 30, .arrays = 3});
  double prev = 0.0;
  for (std::uint64_t bytes = 1'000'000'000ull; bytes <= 64'000'000'000ull;
       bytes *= 4) {
    w.ops.bytes_read = bytes;
    const auto mp = model::profile_memory(cpu, w, 60'000);
    const auto ev = model::evaluate_at_turbo(cpu, w, mp);
    EXPECT_GE(ev.seconds, prev * 0.999);
    prev = ev.seconds;
  }
}

TEST(ModelProperty, EfficiencyBoundsRespected) {
  // Achieved Gflop/s can never exceed the (issue-derated) peak.
  for (const auto& cpu : arch::all_machines()) {
    model::WorkloadMeasurement w;
    w.name = "peak-check";
    w.ops.fp64 = 10'000'000'000'000ull;
    w.ops.bytes_read = 1'000'000ull;  // nearly free memory
    w.working_set_bytes = 1 << 20;
    w.access = memsim::AccessPatternSpec::single(memsim::BlockedPattern{
        .matrix_bytes = 1 << 20, .tile_bytes = 1 << 18, .tile_reuse = 64});
    w.traits.vec_eff = 1.0;
    const auto mp = model::profile_memory(cpu, w, 50'000);
    const auto ev = model::evaluate(cpu, cpu.base_ghz, w, mp);
    EXPECT_LE(ev.gflops,
              cpu.peak_gflops(arch::Precision::fp64, cpu.base_ghz) * 1.001);
  }
}

// ---------------------------------------------------------------------
// Kernel count properties across scales: measured host op counts grow
// superlinearly-consistently with the kernel's complexity model, i.e.
// paper-extrapolated counts stay roughly scale-invariant.

class ScaleInvariance : public ::testing::TestWithParam<const char*> {};

TEST_P(ScaleInvariance, PaperScaledCountsStableAcrossRunScale) {
  const auto k = kernels::make(GetParam());
  const auto small = k->run({.threads = 0, .scale = 0.15});
  const auto large = k->run({.threads = 0, .scale = 0.5});
  const double f_small = static_cast<double>(small.ops.fp_total());
  const double f_large = static_cast<double>(large.ops.fp_total());
  ASSERT_GT(f_small, 0.0);
  // After extrapolation to paper scale both runs estimate the same
  // quantity; discretization allows some slack.
  EXPECT_LT(std::abs(f_large / f_small - 1.0), 0.6);
}

INSTANTIATE_TEST_SUITE_P(Kernels, ScaleInvariance,
                         ::testing::Values("HPL", "NekB", "BABL2", "QCD"));

}  // namespace
}  // namespace fpr
