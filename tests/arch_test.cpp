// Unit tests for the machine descriptions: the CpuSpec math must
// reproduce the paper's Table I numbers exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

#include "arch/machines.hpp"
#include "arch/variant.hpp"

namespace fpr::arch {
namespace {

TEST(FpuConfig, LanesAndFlops) {
  const FpuConfig avx512{.units = 2, .vector_bits = 512, .pump = 1};
  EXPECT_EQ(avx512.lanes(Precision::fp64), 8);
  EXPECT_EQ(avx512.lanes(Precision::fp32), 16);
  EXPECT_EQ(avx512.flops_per_cycle(Precision::fp64), 32);
  EXPECT_EQ(avx512.flops_per_cycle(Precision::fp32), 64);
  const FpuConfig vnni{.units = 2, .vector_bits = 512, .pump = 2};
  EXPECT_EQ(vnni.flops_per_cycle(Precision::fp32), 128);
}

TEST(Machines, Table1PeaksKnl) {
  const CpuSpec c = knl();
  c.validate();
  // Table I: 2662 Gflop/s FP64, 5324 Gflop/s FP32.
  EXPECT_NEAR(c.peak_gflops(Precision::fp64), 2662.4, 1.0);
  EXPECT_NEAR(c.peak_gflops(Precision::fp32), 5324.8, 1.0);
  EXPECT_EQ(c.cores, 64);
  EXPECT_TRUE(c.has_mcdram());
}

TEST(Machines, Table1PeaksKnm) {
  const CpuSpec c = knm();
  c.validate();
  // Table I: 1728 Gflop/s FP64, 13824 Gflop/s FP32.
  EXPECT_NEAR(c.peak_gflops(Precision::fp64), 1728.0, 1.0);
  EXPECT_NEAR(c.peak_gflops(Precision::fp32), 13824.0, 1.0);
}

TEST(Machines, Table1PeaksBdw) {
  const CpuSpec c = bdw();
  c.validate();
  // Table I: 691 Gflop/s FP64 and 1382 FP32 (at the AVX base frequency).
  EXPECT_NEAR(c.peak_gflops(Precision::fp64), 691.2, 1.0);
  EXPECT_NEAR(c.peak_gflops(Precision::fp32), 1382.4, 1.0);
}

TEST(Machines, PaperRatios) {
  // Sec. II-A: "KNM has 2.59x more single-precision compute, while the
  // KNL has 1.54x more double-precision compute."
  const double sp_ratio = knm().peak_gflops(Precision::fp32) /
                          knl().peak_gflops(Precision::fp32);
  const double dp_ratio = knl().peak_gflops(Precision::fp64) /
                          knm().peak_gflops(Precision::fp64);
  EXPECT_NEAR(sp_ratio, 2.59, 0.02);
  EXPECT_NEAR(dp_ratio, 1.54, 0.02);
}

TEST(Machines, PeakScalesWithFrequency) {
  const CpuSpec c = knl();
  const double p13 = c.peak_gflops(Precision::fp64, 1.3);
  const double p10 = c.peak_gflops(Precision::fp64, 1.0);
  EXPECT_NEAR(p13 / p10, 1.3, 1e-9);
}

TEST(Machines, FrequencySweepEndsWithTurbo) {
  for (const auto& c : all_machines()) {
    const auto sweep = c.frequency_sweep();
    ASSERT_GE(sweep.size(), 2u);
    EXPECT_FALSE(sweep.front().turbo);
    EXPECT_TRUE(sweep.back().turbo);
    // Paper's pessimistic +100 MHz turbo point.
    EXPECT_NEAR(sweep.back().ghz, c.freq_states_ghz.back() + 0.1, 1e-9);
    for (std::size_t i = 1; i < sweep.size(); ++i) {
      EXPECT_GT(sweep[i].ghz, sweep[i - 1].ghz);
    }
  }
}

TEST(Machines, FreqStatesMatchPaperFig6) {
  EXPECT_EQ(knl().freq_states_ghz.size(), 4u);   // 1.0 .. 1.3
  EXPECT_EQ(knm().freq_states_ghz.size(), 6u);   // 1.0 .. 1.5
  EXPECT_EQ(bdw().freq_states_ghz.size(), 11u);  // 1.2 .. 2.2
}

TEST(Machines, IntThroughputPositive) {
  for (const auto& c : all_machines()) {
    EXPECT_GT(c.peak_giops(c.base_ghz), 0.0);
  }
}

TEST(Machines, ValidationCatchesBadSpecs) {
  CpuSpec c = knl();
  c.cores = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = knl();
  c.freq_states_ghz = {1.3, 1.0};  // not ascending
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = knl();
  c.mcdram_bw_gbs = 10.0;  // slower than DRAM
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = knl();
  c.fpu_issue_eff = 1.5;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Machines, HypotheticalFpuSwap) {
  const CpuSpec hybrid = with_fpu_of(knl(), knm());
  // KNL's core count/frequency with KNM's FPU: FP64 peak drops to half.
  EXPECT_NEAR(hybrid.peak_gflops(Precision::fp64),
              knl().peak_gflops(Precision::fp64) / 2.0, 1.0);
  EXPECT_NE(hybrid.short_name, knl().short_name);
  EXPECT_EQ(hybrid.cores, knl().cores);
}

TEST(Machines, AllMachinesPaperOrder) {
  const auto m = all_machines();
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m[0].short_name, "KNL");
  EXPECT_EQ(m[1].short_name, "KNM");
  EXPECT_EQ(m[2].short_name, "BDW");
  for (const auto& c : m) c.validate();
}

// ---------------------------------------------------------------------
// Machine-variant derivation (the Sec. VII what-if grid).

TEST(Variant, BuiltinGridValidatesOnEveryBase) {
  for (const auto& base : all_machines()) {
    const auto specs = builtin_variant_specs(base);
    EXPECT_GE(specs.size(), 6u) << base.short_name;
    std::set<std::string> names;
    for (const auto& spec : specs) {
      const auto v = derive_variant(base, spec);  // validates internally
      EXPECT_EQ(v.cpu.short_name, base.short_name + "+" + spec);
      EXPECT_TRUE(names.insert(v.cpu.short_name).second) << spec;
    }
  }
}

TEST(Variant, EmptySpecIsTheBaseItself) {
  const auto v = derive_variant(knl(), "");
  EXPECT_EQ(v.spec, "");
  EXPECT_EQ(v.cpu.short_name, "KNL");
  EXPECT_EQ(v.cpu.cores, knl().cores);
}

TEST(Variant, HalveFp64HalvesPipesThenWidth) {
  // KNL: 2 pipes -> 1 pipe (32 -> 16 flop/cycle).
  const auto once = derive_variant(knl(), "halve-fp64");
  EXPECT_EQ(once.cpu.fp64_fpu.units, 1);
  EXPECT_EQ(once.cpu.fp64_fpu.vector_bits, 512);
  // KNM: already 1 pipe -> width halves (16 -> 8 flop/cycle).
  const auto knm_once = derive_variant(knm(), "halve-fp64");
  EXPECT_EQ(knm_once.cpu.fp64_fpu.units, 1);
  EXPECT_EQ(knm_once.cpu.fp64_fpu.vector_bits, 256);
  // Composition runs all the way down; at scalar it refuses.
  EXPECT_THROW(
      derive_variant(knm(), "halve-fp64+halve-fp64+halve-fp64+halve-fp64"),
      std::invalid_argument);
}

TEST(Variant, DropFp64VecKeepsScalarFma) {
  const auto v = derive_variant(knl(), "drop-fp64-vec");
  EXPECT_EQ(v.cpu.fp64_fpu.flops_per_cycle(Precision::fp64), 2);
  // FP32 silicon untouched; the machine still validates.
  EXPECT_EQ(v.cpu.fp32_fpu.flops_per_cycle(Precision::fp32),
            knl().fp32_fpu.flops_per_cycle(Precision::fp32));
}

TEST(Variant, FactorsScaleBaseValues) {
  const auto v = derive_variant(knl(), "dram-bw=1.5+cores=1.25+tdp=0.85");
  EXPECT_NEAR(v.cpu.dram_bw_gbs, 71.0 * 1.5, 1e-9);
  EXPECT_EQ(v.cpu.cores, 80);  // 64 * 1.25
  EXPECT_NEAR(v.cpu.tdp_w, 230.0 * 0.85, 1e-9);
  const auto w = derive_variant(knl(), "widen-fp32=2+mcdram-cap=2");
  EXPECT_EQ(w.cpu.fp32_fpu.units, 4);
  EXPECT_NEAR(w.cpu.mcdram_gib, 32.0, 1e-9);
  // Defaults when the factor is omitted.
  EXPECT_NEAR(derive_variant(knl(), "mcdram-bw").cpu.mcdram_bw_gbs,
              439.0 * 1.5, 1e-9);
}

TEST(Variant, RejectsMalformedAndInconsistentSpecs) {
  EXPECT_THROW(derive_variant(knl(), "no-such-transform"),
               std::invalid_argument);
  EXPECT_THROW(derive_variant(knl(), "dram-bw=0"), std::invalid_argument);
  EXPECT_THROW(derive_variant(knl(), "dram-bw=abc"), std::invalid_argument);
  EXPECT_THROW(derive_variant(knl(), "dram-bw=1.5junk"),
               std::invalid_argument);
  EXPECT_THROW(derive_variant(knl(), "halve-fp64=2"), std::invalid_argument);
  EXPECT_THROW(derive_variant(knl(), "widen-fp32=1.5"),
               std::invalid_argument);
  EXPECT_THROW(derive_variant(knl(), "dram-bw=1.5++cores=2"),
               std::invalid_argument);
  // MCDRAM transforms need MCDRAM.
  EXPECT_THROW(derive_variant(bdw(), "mcdram-bw=1.5"), std::invalid_argument);
  EXPECT_THROW(derive_variant(bdw(), "mcdram-cap=2"), std::invalid_argument);
  // A composed machine must still validate: DDR faster than MCDRAM is
  // rejected by CpuSpec::validate, not silently accepted.
  EXPECT_THROW(derive_variant(knl(), "dram-bw=10"), std::invalid_argument);
}

TEST(Variant, CanonicalDigestIsSpellingInvariant) {
  // Order-equivalent compositions resolve to the same machine.
  const auto ab = derive_variant(knl(), "cores=2+tdp=0.9");
  const auto ba = derive_variant(knl(), "tdp=0.9+cores=2");
  EXPECT_NE(ab.cpu.short_name, ba.cpu.short_name);  // labels differ...
  EXPECT_EQ(canonical_cpu_digest(ab.cpu), canonical_cpu_digest(ba.cpu));
  // ...as do factor respellings of one number.
  EXPECT_EQ(canonical_cpu_digest(derive_variant(knl(), "dram-bw=1.5").cpu),
            canonical_cpu_digest(derive_variant(knl(), "dram-bw=1.50").cpu));
  // Distinct machines stay distinct, including across bases.
  EXPECT_NE(canonical_cpu_digest(ab.cpu), canonical_cpu_digest(knl()));
  EXPECT_NE(canonical_cpu_digest(knl()), canonical_cpu_digest(knm()));
  EXPECT_NE(canonical_cpu_digest(derive_variant(knl(), "dram-bw=1.5").cpu),
            canonical_cpu_digest(derive_variant(knl(), "dram-bw=1.25").cpu));
}

TEST(Variant, MemoryModelDigestIgnoresComputeOnlyKnobs) {
  // TDP and FPU respins don't touch what the memory model reads...
  EXPECT_EQ(memory_model_digest(knl()),
            memory_model_digest(derive_variant(knl(), "tdp=0.85").cpu));
  EXPECT_EQ(memory_model_digest(knl()),
            memory_model_digest(derive_variant(knl(), "halve-fp64").cpu));
  // ...while bandwidth, capacity, and core-count changes do.
  EXPECT_NE(memory_model_digest(knl()),
            memory_model_digest(derive_variant(knl(), "mcdram-bw=1.5").cpu));
  EXPECT_NE(memory_model_digest(knl()),
            memory_model_digest(derive_variant(knl(), "cores=1.25").cpu));
}

TEST(Variant, ComposeAndCountSpecs) {
  EXPECT_EQ(compose_specs("", ""), "");
  EXPECT_EQ(compose_specs("a", ""), "a");
  EXPECT_EQ(compose_specs("", "b"), "b");
  EXPECT_EQ(compose_specs("a+b", "c"), "a+b+c");
  EXPECT_EQ(spec_transform_count(""), 0u);
  EXPECT_EQ(spec_transform_count("halve-fp64"), 1u);
  EXPECT_EQ(spec_transform_count("a+b+c"), 3u);
}

TEST(Variant, BudgetModelTracksTheSiliconStory) {
  const auto base_budget = variant_budget(knl(), knl());
  EXPECT_DOUBLE_EQ(base_budget.area_ratio, 1.0);
  EXPECT_DOUBLE_EQ(base_budget.tdp_ratio, 1.0);
  EXPECT_TRUE(within_budget(base_budget, BudgetLimits{}));
  // Cutting FP64 silicon frees area at constant TDP.
  const auto cut = variant_budget(derive_variant(knl(), "halve-fp64").cpu,
                                  knl());
  EXPECT_LT(cut.area_ratio, 1.0);
  EXPECT_DOUBLE_EQ(cut.tdp_ratio, 1.0);
  // More cores cost area; a TDP factor moves only the power ratio.
  EXPECT_GT(variant_budget(derive_variant(knl(), "cores=1.25").cpu, knl())
                .area_ratio,
            1.0);
  const auto cooler = variant_budget(derive_variant(knl(), "tdp=0.85").cpu,
                                     knl());
  EXPECT_DOUBLE_EQ(cooler.area_ratio, 1.0);
  EXPECT_NEAR(cooler.tdp_ratio, 0.85, 1e-12);
  // The default box rejects bigger dies and accepts within-slack ties.
  EXPECT_FALSE(within_budget(ResourceBudget{1.01, 1.0}, BudgetLimits{}));
  EXPECT_TRUE(within_budget(ResourceBudget{1.0 + 1e-12, 1.0},
                            BudgetLimits{}));
  EXPECT_GT(die_area_units(knl()), 0.0);
  CpuSpec broken = knl();
  broken.tdp_w = 0.0;
  EXPECT_THROW((void)variant_budget(knl(), broken), std::invalid_argument);
}

TEST(Variant, CatalogueCoversBuiltinGrid) {
  const auto& catalogue = transform_catalogue();
  EXPECT_GE(catalogue.size(), 6u);
  for (const auto& base : all_machines()) {
    for (const auto& spec : builtin_variant_specs(base)) {
      const std::string name = spec.substr(0, spec.find('='));
      const bool known =
          std::any_of(catalogue.begin(), catalogue.end(),
                      [&](const TransformInfo& t) { return t.name == name; });
      EXPECT_TRUE(known) << spec;
    }
  }
}

}  // namespace
}  // namespace fpr::arch
