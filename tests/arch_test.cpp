// Unit tests for the machine descriptions: the CpuSpec math must
// reproduce the paper's Table I numbers exactly.
#include <gtest/gtest.h>

#include <stdexcept>

#include "arch/machines.hpp"

namespace fpr::arch {
namespace {

TEST(FpuConfig, LanesAndFlops) {
  const FpuConfig avx512{.units = 2, .vector_bits = 512, .pump = 1};
  EXPECT_EQ(avx512.lanes(Precision::fp64), 8);
  EXPECT_EQ(avx512.lanes(Precision::fp32), 16);
  EXPECT_EQ(avx512.flops_per_cycle(Precision::fp64), 32);
  EXPECT_EQ(avx512.flops_per_cycle(Precision::fp32), 64);
  const FpuConfig vnni{.units = 2, .vector_bits = 512, .pump = 2};
  EXPECT_EQ(vnni.flops_per_cycle(Precision::fp32), 128);
}

TEST(Machines, Table1PeaksKnl) {
  const CpuSpec c = knl();
  c.validate();
  // Table I: 2662 Gflop/s FP64, 5324 Gflop/s FP32.
  EXPECT_NEAR(c.peak_gflops(Precision::fp64), 2662.4, 1.0);
  EXPECT_NEAR(c.peak_gflops(Precision::fp32), 5324.8, 1.0);
  EXPECT_EQ(c.cores, 64);
  EXPECT_TRUE(c.has_mcdram());
}

TEST(Machines, Table1PeaksKnm) {
  const CpuSpec c = knm();
  c.validate();
  // Table I: 1728 Gflop/s FP64, 13824 Gflop/s FP32.
  EXPECT_NEAR(c.peak_gflops(Precision::fp64), 1728.0, 1.0);
  EXPECT_NEAR(c.peak_gflops(Precision::fp32), 13824.0, 1.0);
}

TEST(Machines, Table1PeaksBdw) {
  const CpuSpec c = bdw();
  c.validate();
  // Table I: 691 Gflop/s FP64 and 1382 FP32 (at the AVX base frequency).
  EXPECT_NEAR(c.peak_gflops(Precision::fp64), 691.2, 1.0);
  EXPECT_NEAR(c.peak_gflops(Precision::fp32), 1382.4, 1.0);
}

TEST(Machines, PaperRatios) {
  // Sec. II-A: "KNM has 2.59x more single-precision compute, while the
  // KNL has 1.54x more double-precision compute."
  const double sp_ratio = knm().peak_gflops(Precision::fp32) /
                          knl().peak_gflops(Precision::fp32);
  const double dp_ratio = knl().peak_gflops(Precision::fp64) /
                          knm().peak_gflops(Precision::fp64);
  EXPECT_NEAR(sp_ratio, 2.59, 0.02);
  EXPECT_NEAR(dp_ratio, 1.54, 0.02);
}

TEST(Machines, PeakScalesWithFrequency) {
  const CpuSpec c = knl();
  const double p13 = c.peak_gflops(Precision::fp64, 1.3);
  const double p10 = c.peak_gflops(Precision::fp64, 1.0);
  EXPECT_NEAR(p13 / p10, 1.3, 1e-9);
}

TEST(Machines, FrequencySweepEndsWithTurbo) {
  for (const auto& c : all_machines()) {
    const auto sweep = c.frequency_sweep();
    ASSERT_GE(sweep.size(), 2u);
    EXPECT_FALSE(sweep.front().turbo);
    EXPECT_TRUE(sweep.back().turbo);
    // Paper's pessimistic +100 MHz turbo point.
    EXPECT_NEAR(sweep.back().ghz, c.freq_states_ghz.back() + 0.1, 1e-9);
    for (std::size_t i = 1; i < sweep.size(); ++i) {
      EXPECT_GT(sweep[i].ghz, sweep[i - 1].ghz);
    }
  }
}

TEST(Machines, FreqStatesMatchPaperFig6) {
  EXPECT_EQ(knl().freq_states_ghz.size(), 4u);   // 1.0 .. 1.3
  EXPECT_EQ(knm().freq_states_ghz.size(), 6u);   // 1.0 .. 1.5
  EXPECT_EQ(bdw().freq_states_ghz.size(), 11u);  // 1.2 .. 2.2
}

TEST(Machines, IntThroughputPositive) {
  for (const auto& c : all_machines()) {
    EXPECT_GT(c.peak_giops(c.base_ghz), 0.0);
  }
}

TEST(Machines, ValidationCatchesBadSpecs) {
  CpuSpec c = knl();
  c.cores = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = knl();
  c.freq_states_ghz = {1.3, 1.0};  // not ascending
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = knl();
  c.mcdram_bw_gbs = 10.0;  // slower than DRAM
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = knl();
  c.fpu_issue_eff = 1.5;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Machines, HypotheticalFpuSwap) {
  const CpuSpec hybrid = with_fpu_of(knl(), knm());
  // KNL's core count/frequency with KNM's FPU: FP64 peak drops to half.
  EXPECT_NEAR(hybrid.peak_gflops(Precision::fp64),
              knl().peak_gflops(Precision::fp64) / 2.0, 1.0);
  EXPECT_NE(hybrid.short_name, knl().short_name);
  EXPECT_EQ(hybrid.cores, knl().cores);
}

TEST(Machines, AllMachinesPaperOrder) {
  const auto m = all_machines();
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m[0].short_name, "KNL");
  EXPECT_EQ(m[1].short_name, "KNM");
  EXPECT_EQ(m[2].short_name, "BDW");
  for (const auto& c : m) c.validate();
}

}  // namespace
}  // namespace fpr::arch
