// Unit tests for the cache/memory simulator.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "arch/machines.hpp"
#include "arch/variant.hpp"
#include "common/magic_div.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "memsim/bandwidth.hpp"
#include "memsim/cache.hpp"
#include "memsim/hierarchy.hpp"
#include "memsim/sim_cache.hpp"
#include "memsim/trace_gen.hpp"

namespace fpr::memsim {
namespace {

TEST(CacheConfig, GeometryMath) {
  CacheConfig cfg{.size_bytes = 32 * 1024, .line_bytes = 64,
                  .associativity = 8};
  cfg.validate();
  EXPECT_EQ(cfg.num_lines(), 512u);
  EXPECT_EQ(cfg.num_sets(), 64u);
}

TEST(CacheConfig, RejectsBadGeometry) {
  CacheConfig cfg{.size_bytes = 1000, .line_bytes = 64, .associativity = 8};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {.size_bytes = 32 * 1024, .line_bytes = 48, .associativity = 8};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  // Non-power-of-two set counts are allowed (modulo indexing).
  cfg = {.size_bytes = 3 * 64 * 8, .line_bytes = 64, .associativity = 8};
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Cache, HitsAfterMiss) {
  Cache c({.size_bytes = 4096, .line_bytes = 64, .associativity = 4});
  EXPECT_FALSE(c.access(0x1000, false));
  EXPECT_TRUE(c.access(0x1000, false));
  EXPECT_TRUE(c.access(0x1010, false));  // same line
  EXPECT_FALSE(c.access(0x2000, false));
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, LruEviction) {
  // 1 set x 2 ways: lines 0 and 1 fit, line 2 evicts the LRU (line 0).
  Cache c({.size_bytes = 128, .line_bytes = 64, .associativity = 2});
  c.access(0 * 64, false);
  c.access(1 * 64 * 1, false);  // same set? with 1 set, every line maps there
  c.access(2 * 64, false);      // evicts line 0
  EXPECT_FALSE(c.access(0 * 64, false));  // line 0 gone
  EXPECT_TRUE(c.access(2 * 64, false));   // line 2 still resident
}

TEST(Cache, LruTouchPreventsEviction) {
  Cache c({.size_bytes = 128, .line_bytes = 64, .associativity = 2});
  c.access(0, false);
  c.access(64, false);
  c.access(0, false);    // touch line 0: line 64 becomes LRU
  c.access(128, false);  // evicts line 64
  EXPECT_TRUE(c.access(0, false));
  EXPECT_FALSE(c.access(64, false));
}

TEST(Cache, WritebackOnDirtyEviction) {
  Cache c({.size_bytes = 128, .line_bytes = 64, .associativity = 2});
  c.access(0, true);     // dirty
  c.access(64, false);
  c.access(128, false);  // evicts dirty line 0
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, ClearResets) {
  Cache c({.size_bytes = 4096, .line_bytes = 64, .associativity = 4});
  c.access(0, true);
  c.clear();
  EXPECT_EQ(c.stats().accesses(), 0u);
  EXPECT_FALSE(c.access(0, false));  // cold again
}

TEST(Cache, StreamingHitRateIsSevenEighths) {
  // Sequential 8B accesses: 1 miss per 64B line = 7/8 hit rate.
  Cache c({.size_bytes = 64 * 1024, .line_bytes = 64, .associativity = 8});
  for (std::uint64_t a = 0; a < 32 * 1024; a += 8) c.access(a, false);
  EXPECT_NEAR(c.stats().hit_rate(), 7.0 / 8.0, 0.01);
}

TEST(TraceGen, StreamPatternIsSequentialPerArray) {
  AccessPatternSpec spec = AccessPatternSpec::single(
      StreamPattern{.bytes_per_array = 1 << 20, .arrays = 1,
                    .writes_per_iter = 0});
  TraceGenerator gen(spec, 1);
  std::uint64_t prev = gen.next().addr;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t a = gen.next().addr;
    EXPECT_EQ(a, prev + 8);
    prev = a;
  }
}

TEST(TraceGen, ChaseVisitsAllNodes) {
  AccessPatternSpec spec = AccessPatternSpec::single(
      ChasePattern{.footprint_bytes = 64 * 64, .node_bytes = 64});
  TraceGenerator gen(spec, 2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 64; ++i) seen.insert(gen.next().addr);
  // Sattolo cycle: all 64 nodes visited exactly once per period.
  EXPECT_EQ(seen.size(), 64u);
}

TEST(TraceGen, MixtureUsesDistinctRanges) {
  AccessPatternSpec spec;
  spec.components.push_back(
      {StreamPattern{.bytes_per_array = 4096, .arrays = 1}, 1.0});
  spec.components.push_back(
      {GatherPattern{.table_bytes = 4096, .elem_bytes = 8}, 1.0});
  TraceGenerator gen(spec, 3);
  std::set<std::uint64_t> bases;
  for (int i = 0; i < 1000; ++i) bases.insert(gen.next().addr >> 40);
  EXPECT_GE(bases.size(), 2u);  // distinct 2^40 component windows
}

TEST(TraceGen, RejectsEmptyAndBadWeights) {
  EXPECT_THROW(TraceGenerator(AccessPatternSpec{}, 1), std::invalid_argument);
  AccessPatternSpec bad;
  bad.components.push_back({StreamPattern{}, -1.0});
  EXPECT_THROW(TraceGenerator(bad, 1), std::invalid_argument);
}

TEST(TraceGen, PatternNames) {
  EXPECT_EQ(pattern_name(StreamPattern{}), "stream");
  EXPECT_EQ(pattern_name(StencilPattern{}), "stencil");
  EXPECT_EQ(pattern_name(GatherPattern{}), "gather");
  EXPECT_EQ(pattern_name(ChasePattern{}), "chase");
  EXPECT_EQ(pattern_name(BlockedPattern{}), "blocked");
  EXPECT_EQ(pattern_name(StridedPattern{}), "strided");
}

TEST(Hierarchy, LevelsForPhiAndBdw) {
  Hierarchy phi(arch::knl(), 6);
  EXPECT_EQ(phi.num_levels(), 3u);
  EXPECT_EQ(phi.level_name(2), "MCDRAM$");
  Hierarchy xeon(arch::bdw(), 6);
  EXPECT_EQ(xeon.num_levels(), 3u);
  EXPECT_EQ(xeon.level_name(2), "LLC");
}

TEST(Hierarchy, SmallWorkingSetHitsHigh) {
  // A stream fitting easily in the (scaled) caches: high combined hit.
  AccessPatternSpec spec = AccessPatternSpec::single(
      StreamPattern{.bytes_per_array = 32 * 1024, .arrays = 1});
  const auto res = simulate_pattern(arch::knl(), spec, 200000, 7, 6);
  EXPECT_GT(res.served_at_or_above("L2"), 0.95);
}

TEST(Hierarchy, HugeGatherMissesMcdram) {
  // Random gather over a table far beyond MCDRAM: most refs go to DRAM.
  AccessPatternSpec spec = AccessPatternSpec::single(
      GatherPattern{.table_bytes = 200ull << 30, .elem_bytes = 8,
                    .sequential_fraction = 0.0});
  const auto res = simulate_pattern(arch::knl(), spec, 150000);
  EXPECT_GT(res.dram_fraction(), 0.5);
}

TEST(Hierarchy, ScaledBytesFloorsAtLine) {
  Hierarchy h(arch::knl(), 6);
  EXPECT_EQ(h.scaled_bytes(1), 64u);
  EXPECT_EQ(h.scaled_bytes(1 << 20), (1u << 20) >> 6);
}

TEST(Bandwidth, BdwIsJustDram) {
  const auto bw = effective_bandwidth(arch::bdw(), 1 << 30, 0.0);
  EXPECT_DOUBLE_EQ(bw.effective_gbs, arch::bdw().dram_bw_gbs);
}

TEST(Bandwidth, FullCaptureGivesCacheModeCeiling) {
  // Paper Sec. IV-C: 86% of flat-mode Triad on KNL when vectors fit.
  const auto bw = effective_bandwidth(arch::knl(), 6ull << 30, 1.0);
  EXPECT_NEAR(bw.effective_gbs, 439.0 * 0.86, 1.0);
  const auto knm = effective_bandwidth(arch::knm(), 6ull << 30, 1.0);
  EXPECT_NEAR(knm.effective_gbs, 430.0 * 0.75, 1.0);
}

TEST(Bandwidth, OversizeWorkingSetDropsTowardDram) {
  // 42 GiB of stream against 16 GiB MCDRAM: the capacity guard clamps
  // the capture to 16/42, and the prefetched misses stream at the flat
  // DDR rate — near-DRAM throughput ("slightly higher than DRAM", paper
  // Fig. 4 BABL14).
  const auto bw = effective_bandwidth(arch::knl(), 42ull << 30, 1.0);
  EXPECT_NEAR(bw.mcdram_fraction, 16.0 / 42.0, 1e-9);
  EXPECT_GE(bw.effective_gbs, arch::knl().dram_bw_gbs);
  EXPECT_LT(bw.effective_gbs, 200.0);
}

TEST(Bandwidth, LowCaptureNonStreamingDropsBelowDram) {
  // The regression behind the old never-below-DRAM floor: a spilled
  // *gather* working set pays the cache-mode miss_overhead and must
  // model below flat DRAM speed (the Fig. 4 cache-mode ladder), which
  // the blanket prefetcher floor used to cancel.
  const CacheModeParams params;
  const auto bw =
      effective_bandwidth(arch::knl(), 32ull << 30, 0.1, /*streaming=*/0.0);
  EXPECT_LT(bw.effective_gbs, arch::knl().dram_bw_gbs);
  // Capture 0 with no prefetchable misses is the worst case:
  // dram_bw / miss_overhead exactly.
  const auto worst =
      effective_bandwidth(arch::knl(), 32ull << 30, 0.0, /*streaming=*/0.0);
  EXPECT_NEAR(worst.effective_gbs,
              arch::knl().dram_bw_gbs / params.miss_overhead, 1e-9);
}

TEST(Bandwidth, StreamingShareInterpolatesMissCost) {
  // At capture 0 the miss cost interpolates linearly (in time-per-byte)
  // between the prefetched flat-DDR rate (s=1) and the full
  // read-for-ownership overhead (s=0).
  const CacheModeParams params;
  const auto half =
      effective_bandwidth(arch::knl(), 32ull << 30, 0.0, /*streaming=*/0.5);
  const double expect =
      arch::knl().dram_bw_gbs / (0.5 + 0.5 * params.miss_overhead);
  EXPECT_NEAR(half.effective_gbs, expect, 1e-9);
  const auto full =
      effective_bandwidth(arch::knl(), 32ull << 30, 0.0, /*streaming=*/1.0);
  EXPECT_NEAR(full.effective_gbs, arch::knl().dram_bw_gbs, 1e-9);
}

TEST(Bandwidth, CaptureLimitsAndClamping) {
  // capture=1 with a fitting set: the cache-mode ceiling (hit efficiency
  // times flat-mode Triad); KNM selects its own, lower hit efficiency.
  const CacheModeParams params;
  const auto knl1 = effective_bandwidth(arch::knl(), 6ull << 30, 1.0);
  EXPECT_NEAR(knl1.effective_gbs, 439.0 * params.hit_efficiency_knl, 1e-9);
  EXPECT_NEAR(knl1.mcdram_fraction, 1.0, 1e-12);
  const auto knm1 = effective_bandwidth(arch::knm(), 6ull << 30, 1.0);
  EXPECT_NEAR(knm1.effective_gbs, 430.0 * params.hit_efficiency_knm, 1e-9);
  // Out-of-range captures clamp instead of extrapolating.
  const auto over = effective_bandwidth(arch::knl(), 6ull << 30, 1.5);
  EXPECT_NEAR(over.effective_gbs, knl1.effective_gbs, 1e-12);
  const auto under = effective_bandwidth(arch::knl(), 6ull << 30, -0.5);
  EXPECT_NEAR(under.mcdram_fraction, 0.0, 1e-12);
  EXPECT_NEAR(under.effective_gbs, arch::knl().dram_bw_gbs, 1e-9);
}

TEST(Bandwidth, DerivedVariantsInheritHitEfficiency) {
  // The hit efficiency rides on the CpuSpec, not on a name match: a
  // derived KNM variant (short name "KNM+...") must keep KNM's 75%
  // cache-mode efficiency instead of silently picking up KNL's 86% —
  // a time-neutral transform like tdp= must leave the bandwidth model
  // bit-identical.
  const auto v = arch::derive_variant(arch::knm(), "tdp=0.85");
  const auto base = effective_bandwidth(arch::knm(), 6ull << 30, 0.7);
  const auto var = effective_bandwidth(v.cpu, 6ull << 30, 0.7);
  EXPECT_DOUBLE_EQ(var.effective_gbs, base.effective_gbs);
  EXPECT_DOUBLE_EQ(var.mcdram_gbs, base.mcdram_gbs);
}

TEST(Bandwidth, NonMcdramMachinePassesThrough) {
  // BDW has no MCDRAM: capture and streaming shares are irrelevant.
  for (const double c : {0.0, 0.5, 1.0}) {
    const auto bw = effective_bandwidth(arch::bdw(), 1ull << 30, c, 0.0);
    EXPECT_DOUBLE_EQ(bw.effective_gbs, arch::bdw().dram_bw_gbs);
    EXPECT_DOUBLE_EQ(bw.mcdram_fraction, 0.0);
    EXPECT_DOUBLE_EQ(bw.mcdram_gbs, 0.0);
  }
}

TEST(Bandwidth, MonotonicInCapture) {
  double prev = 0.0;
  for (double c = 0.0; c <= 1.0; c += 0.1) {
    const auto bw = effective_bandwidth(arch::knl(), 4ull << 30, c);
    EXPECT_GE(bw.effective_gbs, prev - 1e-9);
    prev = bw.effective_gbs;
  }
}

TEST(Bandwidth, MissStreamingFractionOfMixes) {
  AccessPatternSpec stream = AccessPatternSpec::single(
      StreamPattern{.bytes_per_array = 1 << 20, .arrays = 3});
  EXPECT_DOUBLE_EQ(miss_streaming_fraction(stream), 1.0);
  AccessPatternSpec chase = AccessPatternSpec::single(
      ChasePattern{.footprint_bytes = 1 << 20, .node_bytes = 64});
  EXPECT_DOUBLE_EQ(miss_streaming_fraction(chase), 0.0);
  AccessPatternSpec gather = AccessPatternSpec::single(
      GatherPattern{.table_bytes = 1 << 20, .elem_bytes = 8,
                    .sequential_fraction = 0.3});
  EXPECT_DOUBLE_EQ(miss_streaming_fraction(gather), 0.3);
  AccessPatternSpec mix;
  mix.components.push_back(
      {StreamPattern{.bytes_per_array = 1 << 20}, 1.0});
  mix.components.push_back(
      {ChasePattern{.footprint_bytes = 1 << 20, .node_bytes = 64}, 3.0});
  EXPECT_NEAR(miss_streaming_fraction(mix), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(miss_streaming_fraction(AccessPatternSpec{}), 1.0);
}

TEST(Latency, CacheModeMissCostsMore) {
  // 2 GiB working set: fits the 16 GiB MCDRAM, capacity guard inactive.
  const std::uint64_t ws = 2ull << 30;
  const double hit = effective_latency_ns(arch::knl(), ws, 1.0);
  const double miss = effective_latency_ns(arch::knl(), ws, 0.0);
  EXPECT_GT(miss, hit);
  EXPECT_DOUBLE_EQ(effective_latency_ns(arch::bdw(), ws, 0.5),
                   arch::bdw().dram_latency_ns);
}

TEST(Latency, CaptureLimitsAndClamping) {
  const auto knl = arch::knl();
  const std::uint64_t ws = 2ull << 30;  // fits MCDRAM
  const double probe = CacheModeParams{}.miss_latency_probe;
  // capture=1: pure MCDRAM latency. capture=0: tag probe + DDR access.
  EXPECT_DOUBLE_EQ(effective_latency_ns(knl, ws, 1.0),
                   knl.mcdram_latency_ns);
  EXPECT_DOUBLE_EQ(effective_latency_ns(knl, ws, 0.0),
                   knl.mcdram_latency_ns * probe + knl.dram_latency_ns);
  // Out-of-range captures clamp to the limits.
  EXPECT_DOUBLE_EQ(effective_latency_ns(knl, ws, 2.0),
                   effective_latency_ns(knl, ws, 1.0));
  EXPECT_DOUBLE_EQ(effective_latency_ns(knl, ws, -1.0),
                   effective_latency_ns(knl, ws, 0.0));
}

TEST(Latency, OverCapacityWorkingSetRaisesLatency) {
  // Regression (PR 7): effective_latency_ns used to skip the MCDRAM
  // capacity guard effective_bandwidth applies, so a working set that
  // spilled the MCDRAM got clamped bandwidth but full-capture latency.
  const auto knl = arch::knl();
  const std::uint64_t fits = 2ull << 30;
  const std::uint64_t spills = 42ull << 30;  // 42 GiB vs 16 GiB MCDRAM
  const double l_fits = effective_latency_ns(knl, fits, 1.0);
  const double l_spills = effective_latency_ns(knl, spills, 1.0);
  EXPECT_DOUBLE_EQ(l_fits, knl.mcdram_latency_ns);
  EXPECT_GT(l_spills, l_fits);
  // The clamp is exactly effective_bandwidth's: capture <= capacity/ws.
  const double c =
      knl.mcdram_gib * 1024.0 * 1024.0 * 1024.0 / static_cast<double>(spills);
  const double probe = CacheModeParams{}.miss_latency_probe;
  EXPECT_DOUBLE_EQ(l_spills,
                   c * knl.mcdram_latency_ns +
                       (1.0 - c) * (knl.mcdram_latency_ns * probe +
                                    knl.dram_latency_ns));
  // A working set at exactly capacity is not penalized.
  const auto cap = static_cast<std::uint64_t>(knl.mcdram_gib) << 30;
  EXPECT_DOUBLE_EQ(effective_latency_ns(knl, cap, 1.0),
                   knl.mcdram_latency_ns);
  // No MCDRAM: DRAM latency regardless of working set.
  EXPECT_DOUBLE_EQ(effective_latency_ns(arch::bdw(), spills, 1.0),
                   arch::bdw().dram_latency_ns);
}

// ---------------------------------------------------------------------
// Satellite fixes: unknown-level lookups throw, stream wraps stay
// element-aligned, gather footprints stay inside the declared table.

TEST(Hierarchy, UnknownLevelNameThrows) {
  AccessPatternSpec spec = AccessPatternSpec::single(
      StreamPattern{.bytes_per_array = 32 * 1024, .arrays = 1});
  const auto phi = simulate_pattern(arch::knl(), spec, 20000, 7, 6);
  EXPECT_THROW((void)phi.hit_rate("LLC"), std::out_of_range);
  EXPECT_THROW((void)phi.served_at_or_above("L3"), std::out_of_range);
  EXPECT_NO_THROW((void)phi.hit_rate("MCDRAM$"));
  const auto bdw = simulate_pattern(arch::bdw(), spec, 20000, 7, 6);
  EXPECT_THROW((void)bdw.hit_rate("MCDRAM$"), std::out_of_range);
  EXPECT_NO_THROW((void)bdw.served_at_or_above("LLC"));
}

TEST(TraceGen, StreamWrapStaysElementAligned) {
  // 1001-byte arrays: the effective length must round down to 1000 so
  // every offset is a whole 8 B element, even after many wraps.
  AccessPatternSpec spec = AccessPatternSpec::single(
      StreamPattern{.bytes_per_array = 1001, .arrays = 1,
                    .writes_per_iter = 0});
  TraceGenerator gen(spec, 11);
  const std::uint64_t base = gen.next().addr;
  TraceGenerator gen2(spec, 11);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t off = gen2.next().addr - base;
    EXPECT_EQ(off % 8, 0u) << "misaligned after wrap at ref " << i;
    EXPECT_LT(off, 1001u);
  }
}

TEST(TraceGen, GatherStaysInsideDeclaredFootprint) {
  constexpr std::uint64_t kTable = 4096;
  AccessPatternSpec spec = AccessPatternSpec::single(
      GatherPattern{.table_bytes = kTable, .elem_bytes = 8,
                    .sequential_fraction = 0.5});
  TraceGenerator gen(spec, 13);
  std::uint64_t lo = ~std::uint64_t{0}, hi = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t a = gen.next().addr;
    lo = std::min(lo, a);
    hi = std::max(hi, a);
  }
  // Driver stream and random gather together span at most table_bytes —
  // the range capacity scaling accounts for.
  EXPECT_LT(hi - lo, kTable);
}

// ---------------------------------------------------------------------
// Batched generation and replay: bit-identical to the scalar oracle.

std::vector<AccessPatternSpec> all_pattern_specs() {
  std::vector<AccessPatternSpec> specs;
  specs.push_back(AccessPatternSpec::single(StreamPattern{
      .bytes_per_array = 100'000, .arrays = 3, .writes_per_iter = 1}));
  specs.push_back(AccessPatternSpec::single(
      StridedPattern{.footprint_bytes = 77'777, .stride_bytes = 192}));
  specs.push_back(AccessPatternSpec::single(
      StencilPattern{.nx = 17, .ny = 13, .nz = 9, .elem_bytes = 8,
                     .radius = 1, .full_box = true}));
  specs.push_back(AccessPatternSpec::single(
      StencilPattern{.nx = 12, .ny = 20, .nz = 7, .elem_bytes = 4,
                     .radius = 2, .full_box = false}));
  specs.push_back(AccessPatternSpec::single(
      GatherPattern{.table_bytes = 60'000, .elem_bytes = 8,
                    .sequential_fraction = 0.2}));
  specs.push_back(AccessPatternSpec::single(
      ChasePattern{.footprint_bytes = 40'000, .node_bytes = 64}));
  specs.push_back(AccessPatternSpec::single(
      BlockedPattern{.matrix_bytes = 90'000, .tile_bytes = 4'000,
                     .tile_reuse = 7.5}));
  AccessPatternSpec mix;
  mix.components.push_back({StreamPattern{.bytes_per_array = 50'000}, 2.0});
  mix.components.push_back(
      {GatherPattern{.table_bytes = 30'000, .elem_bytes = 8}, 1.0});
  mix.components.push_back(
      {ChasePattern{.footprint_bytes = 20'000, .node_bytes = 64}, 0.5});
  mix.components.push_back(
      {BlockedPattern{.matrix_bytes = 40'000, .tile_bytes = 2'048}, 1.5});
  specs.push_back(mix);
  return specs;
}

class BatchedIdentity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatchedIdentity, FillMatchesScalarNext) {
  const auto spec = all_pattern_specs()[GetParam()];
  constexpr std::size_t kRefs = 30'000;
  TraceGenerator scalar(spec, 99);
  TraceGenerator batched(spec, 99);
  std::vector<MemRef> buf(kRefs);
  batched.fill(buf.data(), kRefs);
  for (std::size_t i = 0; i < kRefs; ++i) {
    const MemRef want = scalar.next();
    ASSERT_EQ(buf[i].addr, want.addr) << "ref " << i;
    ASSERT_EQ(buf[i].write, want.write) << "ref " << i;
  }
}

TEST_P(BatchedIdentity, FillAndNextInterleaveCleanly) {
  const auto spec = all_pattern_specs()[GetParam()];
  TraceGenerator scalar(spec, 7);
  TraceGenerator mixed(spec, 7);
  std::vector<MemRef> buf(1024);
  // Alternate odd-sized fills with scalar next() calls; the generator
  // state must track the pure-scalar stream exactly.
  const std::size_t chunks[] = {1, 7, 501, 3, 64, 997, 2, 130};
  for (const std::size_t c : chunks) {
    mixed.fill(buf.data(), c);
    for (std::size_t i = 0; i < c; ++i) {
      const MemRef want = scalar.next();
      ASSERT_EQ(buf[i].addr, want.addr);
      ASSERT_EQ(buf[i].write, want.write);
    }
    for (int i = 0; i < 5; ++i) {
      const MemRef want = scalar.next();
      const MemRef got = mixed.next();
      ASSERT_EQ(got.addr, want.addr);
      ASSERT_EQ(got.write, want.write);
    }
  }
}

TEST_P(BatchedIdentity, ReplayMatchesScalarReplay) {
  const auto spec = all_pattern_specs()[GetParam()];
  for (const auto& cpu : arch::all_machines()) {
    Hierarchy hb(cpu, 6);
    Hierarchy hs(cpu, 6);
    TraceGenerator gb(spec, 3);
    TraceGenerator gs(spec, 3);
    const auto rb = hb.replay(gb, 40'000, 10'000);
    const auto rs = hs.replay_scalar(gs, 40'000, 10'000);
    ASSERT_EQ(rb.levels.size(), rs.levels.size());
    for (std::size_t i = 0; i < rb.levels.size(); ++i) {
      EXPECT_EQ(rb.levels[i].name, rs.levels[i].name);
      EXPECT_EQ(rb.levels[i].stats.hits, rs.levels[i].stats.hits)
          << cpu.short_name << " level " << rb.levels[i].name;
      EXPECT_EQ(rb.levels[i].stats.misses, rs.levels[i].stats.misses);
      EXPECT_EQ(rb.levels[i].stats.writebacks,
                rs.levels[i].stats.writebacks);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, BatchedIdentity,
                         ::testing::Range<std::size_t>(0, 8));

TEST(BatchedIdentitySuite, CoversEverySpec) {
  // Guard the Range() above against spec-list growth.
  EXPECT_EQ(all_pattern_specs().size(), 8u);
}

TEST(Cache, AccessManyMatchesScalarAccess) {
  // Random traffic through equal caches, including a non-power-of-two
  // set count (the magic-division path) and a wide (stamp-path) cache.
  const CacheConfig configs[] = {
      {.size_bytes = 8192, .line_bytes = 64, .associativity = 8},
      {.size_bytes = 3 * 64 * 8, .line_bytes = 64, .associativity = 8},
      {.size_bytes = 24 * 64 * 24, .line_bytes = 64, .associativity = 24},
      {.size_bytes = 64 * 16, .line_bytes = 64, .associativity = 16},
  };
  for (const auto& cfg : configs) {
    Cache a(cfg);
    Cache b(cfg);
    Xoshiro256 rng(5);
    std::vector<MemRef> refs(2048);
    for (int round = 0; round < 8; ++round) {
      for (auto& r : refs) {
        r.addr = rng.below(1u << 16);
        r.write = rng.uniform() < 0.3;
      }
      std::vector<MemRef> scalar_misses;
      for (const auto& r : refs) {
        if (!a.access(r.addr, r.write)) scalar_misses.push_back(r);
      }
      std::vector<MemRef> batch = refs;
      const std::size_t live = b.access_many(batch.data(), batch.size());
      ASSERT_EQ(live, scalar_misses.size());
      for (std::size_t i = 0; i < live; ++i) {
        ASSERT_EQ(batch[i].addr, scalar_misses[i].addr);
        ASSERT_EQ(batch[i].write, scalar_misses[i].write);
      }
      EXPECT_EQ(a.stats().hits, b.stats().hits);
      EXPECT_EQ(a.stats().misses, b.stats().misses);
      EXPECT_EQ(a.stats().writebacks, b.stats().writebacks);
    }
  }
}

TEST(Cache, SimdProbeMatchesScalarProbe) {
  // The AVX2 tag probe must be bit-identical to the scalar loop: same
  // surviving miss stream, same stats, over every packed-order geometry
  // (all specialized associativities are multiples of four).
  if (!Cache::simd_supported()) {
    GTEST_SKIP() << "AVX2 unavailable on this CPU";
  }
  const CacheConfig configs[] = {
      {.size_bytes = 4096, .line_bytes = 64, .associativity = 4},
      {.size_bytes = 8192, .line_bytes = 64, .associativity = 8},
      {.size_bytes = 3 * 64 * 8, .line_bytes = 64, .associativity = 8},
      {.size_bytes = 5 * 64 * 12, .line_bytes = 64, .associativity = 12},
      {.size_bytes = 64 * 16, .line_bytes = 64, .associativity = 16},
  };
  for (const auto& cfg : configs) {
    Cache scalar_c(cfg);
    scalar_c.set_probe_mode(Cache::ProbeMode::kScalar);
    Cache simd_c(cfg);
    simd_c.set_probe_mode(Cache::ProbeMode::kSimd);
    Xoshiro256 rng(29);
    std::vector<MemRef> refs(2048);
    for (int round = 0; round < 8; ++round) {
      for (auto& r : refs) {
        r.addr = rng.below(1u << 16);
        r.write = rng.uniform() < 0.3;
      }
      std::vector<MemRef> a = refs;
      std::vector<MemRef> b = refs;
      const std::size_t live_a = scalar_c.access_many(a.data(), a.size());
      const std::size_t live_b = simd_c.access_many(b.data(), b.size());
      ASSERT_EQ(live_a, live_b);
      for (std::size_t i = 0; i < live_a; ++i) {
        ASSERT_EQ(a[i].addr, b[i].addr);
        ASSERT_EQ(a[i].write, b[i].write);
      }
      EXPECT_EQ(scalar_c.stats().hits, simd_c.stats().hits);
      EXPECT_EQ(scalar_c.stats().misses, simd_c.stats().misses);
      EXPECT_EQ(scalar_c.stats().writebacks, simd_c.stats().writebacks);
    }
  }
}

TEST(Cache, ProbeModeRespectsCpuSupport) {
  Cache c({.size_bytes = 8192, .line_bytes = 64, .associativity = 8});
  EXPECT_NO_THROW(c.set_probe_mode(Cache::ProbeMode::kScalar));
  EXPECT_NO_THROW(c.set_probe_mode(Cache::ProbeMode::kAuto));
  if (Cache::simd_supported()) {
    EXPECT_NO_THROW(c.set_probe_mode(Cache::ProbeMode::kSimd));
  } else {
    EXPECT_THROW(c.set_probe_mode(Cache::ProbeMode::kSimd),
                 std::runtime_error);
  }
}

TEST(Cache, AccessPartitionMatchesScalarAccess) {
  // Partitioned walks (the sharded-replay primitive) against the scalar
  // oracle: pow2 and non-pow2 set counts, a generic (unspecialized)
  // associativity, the stamp path, and a single-set geometry, each split
  // across 1/2/3 disjoint set ranges with per-range stats and stamps.
  const CacheConfig configs[] = {
      {.size_bytes = 8192, .line_bytes = 64, .associativity = 8},
      {.size_bytes = 3 * 64 * 8, .line_bytes = 64, .associativity = 8},
      {.size_bytes = 5 * 64 * 6, .line_bytes = 64, .associativity = 6},
      {.size_bytes = 24 * 64 * 24, .line_bytes = 64, .associativity = 24},
      {.size_bytes = 64 * 16, .line_bytes = 64, .associativity = 16},
  };
  const Cache::ProbeMode modes[] = {Cache::ProbeMode::kScalar,
                                    Cache::ProbeMode::kAuto};
  for (const auto probe : modes) {
    for (const auto& cfg : configs) {
      const std::uint64_t sets = cfg.size_bytes / cfg.line_bytes /
                                 cfg.associativity;
      for (unsigned parts = 1; parts <= 3; ++parts) {
        Cache a(cfg);
        Cache b(cfg);
        b.set_probe_mode(probe);
        std::vector<CacheStats> part_stats(parts);
        std::vector<std::uint64_t> part_stamps(parts, 0);
        Xoshiro256 rng(11);
        std::vector<MemRef> refs(1536);
        std::vector<std::uint8_t> live(refs.size());
        for (int round = 0; round < 6; ++round) {
          for (auto& r : refs) {
            r.addr = rng.below(1u << 16);
            r.write = rng.uniform() < 0.3;
          }
          std::vector<MemRef> scalar_misses;
          for (const auto& r : refs) {
            if (!a.access(r.addr, r.write)) scalar_misses.push_back(r);
          }
          std::fill(live.begin(), live.end(), std::uint8_t{1});
          for (unsigned w = 0; w < parts; ++w) {
            b.access_partition(refs.data(), refs.size(), live.data(),
                               sets * w / parts, sets * (w + 1) / parts,
                               part_stats[w], part_stamps[w]);
          }
          std::vector<MemRef> survivors;
          for (std::size_t i = 0; i < refs.size(); ++i) {
            if (live[i] != 0) survivors.push_back(refs[i]);
          }
          ASSERT_EQ(survivors.size(), scalar_misses.size());
          for (std::size_t i = 0; i < survivors.size(); ++i) {
            ASSERT_EQ(survivors[i].addr, scalar_misses[i].addr);
            ASSERT_EQ(survivors[i].write, scalar_misses[i].write);
          }
          CacheStats total;
          for (const auto& s : part_stats) {
            total.hits += s.hits;
            total.misses += s.misses;
            total.writebacks += s.writebacks;
          }
          EXPECT_EQ(total.hits, a.stats().hits);
          EXPECT_EQ(total.misses, a.stats().misses);
          EXPECT_EQ(total.writebacks, a.stats().writebacks);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Sharded replay: exact stat identity with the scalar oracle for every
// worker count (disjoint set ownership + order-independent merges).

class ShardedIdentity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShardedIdentity, ShardedReplayMatchesScalarOracle) {
  const auto spec = all_pattern_specs()[GetParam()];
  // KNL exercises the MCDRAM level and pow2 set counts; BDW the
  // non-pow2 LLC set count and its 20-way stamp-LRU partition path.
  const arch::CpuSpec cpus[] = {arch::knl(), arch::bdw()};
  constexpr std::uint64_t kRefs = 30'000;
  constexpr std::uint64_t kWarmup = 10'000;
  for (const auto& cpu : cpus) {
    Hierarchy hs(cpu, 6);
    TraceGenerator gs(spec, 3);
    const auto oracle = hs.replay_scalar(gs, kRefs, kWarmup);
    const unsigned job_counts[] = {1, 2, 8};
    for (const unsigned jobs : job_counts) {
      ThreadPool pool(jobs + 1);  // jobs walkers + the generator role
      Hierarchy h(cpu, 6);
      TraceGenerator g(spec, 3);
      const auto r = h.replay_sharded(g, kRefs, kWarmup, pool, jobs);
      ASSERT_EQ(r.levels.size(), oracle.levels.size());
      for (std::size_t i = 0; i < r.levels.size(); ++i) {
        EXPECT_EQ(r.levels[i].name, oracle.levels[i].name);
        EXPECT_EQ(r.levels[i].stats.hits, oracle.levels[i].stats.hits)
            << cpu.short_name << " jobs=" << jobs << " level "
            << r.levels[i].name;
        EXPECT_EQ(r.levels[i].stats.misses, oracle.levels[i].stats.misses)
            << cpu.short_name << " jobs=" << jobs << " level "
            << r.levels[i].name;
        EXPECT_EQ(r.levels[i].stats.writebacks,
                  oracle.levels[i].stats.writebacks)
            << cpu.short_name << " jobs=" << jobs << " level "
            << r.levels[i].name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, ShardedIdentity,
                         ::testing::Range<std::size_t>(0, 8));

TEST(Hierarchy, ShardedReplayFallsBackSeriallyWithoutWorkers) {
  // A pool with no helper threads cannot overlap the generator with a
  // walker; replay_sharded must fall back to the batched serial path
  // (and still match the oracle).
  ThreadPool pool(1);
  const auto spec = all_pattern_specs()[0];
  Hierarchy hs(arch::knl(), 6);
  TraceGenerator gs(spec, 3);
  const auto oracle = hs.replay_scalar(gs, 20'000, 5'000);
  Hierarchy h(arch::knl(), 6);
  TraceGenerator g(spec, 3);
  const auto r = h.replay_sharded(g, 20'000, 5'000, pool, 4);
  ASSERT_EQ(r.levels.size(), oracle.levels.size());
  for (std::size_t i = 0; i < r.levels.size(); ++i) {
    EXPECT_EQ(r.levels[i].stats.hits, oracle.levels[i].stats.hits);
    EXPECT_EQ(r.levels[i].stats.misses, oracle.levels[i].stats.misses);
    EXPECT_EQ(r.levels[i].stats.writebacks,
              oracle.levels[i].stats.writebacks);
  }
}

TEST_P(BatchedIdentity, SimdReplayMatchesScalarProbeReplay) {
  // Hierarchy-level SIMD/scalar identity across every machine.
  if (!Cache::simd_supported()) {
    GTEST_SKIP() << "AVX2 unavailable on this CPU";
  }
  const auto spec = all_pattern_specs()[GetParam()];
  for (const auto& cpu : arch::all_machines()) {
    Hierarchy hv(cpu, 6);
    hv.set_probe_mode(Cache::ProbeMode::kSimd);
    Hierarchy hs(cpu, 6);
    hs.set_probe_mode(Cache::ProbeMode::kScalar);
    TraceGenerator gv(spec, 3);
    TraceGenerator gs(spec, 3);
    const auto rv = hv.replay(gv, 40'000, 10'000);
    const auto rs = hs.replay(gs, 40'000, 10'000);
    ASSERT_EQ(rv.levels.size(), rs.levels.size());
    for (std::size_t i = 0; i < rv.levels.size(); ++i) {
      EXPECT_EQ(rv.levels[i].stats.hits, rs.levels[i].stats.hits)
          << cpu.short_name << " level " << rv.levels[i].name;
      EXPECT_EQ(rv.levels[i].stats.misses, rs.levels[i].stats.misses);
      EXPECT_EQ(rv.levels[i].stats.writebacks,
                rs.levels[i].stats.writebacks);
    }
  }
}

TEST(MagicDivTest, ExactForAwkwardDivisors) {
  const std::uint64_t divisors[] = {1,  2,   3,    5,    7,   12,
                                    24, 255, 1000, 4095, 12345};
  Xoshiro256 rng(17);
  for (const std::uint64_t d : divisors) {
    const MagicDiv m(d);
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t x = rng.next();
      ASSERT_EQ(m.div(x), x / d) << "x=" << x << " d=" << d;
      ASSERT_EQ(m.mod(x), x % d);
    }
    for (std::uint64_t x = 0; x < 100; ++x) {
      ASSERT_EQ(m.div(x), x / d);
    }
    ASSERT_EQ(m.div(~std::uint64_t{0}), ~std::uint64_t{0} / d);
  }
  EXPECT_THROW(MagicDiv(0), std::invalid_argument);
}

// ---------------------------------------------------------------------
// SimCache: memoization must be invisible except in speed.

TEST(SimCacheTest, CachedResultIsIdenticalAndCounted) {
  SimCache cache;
  const auto spec = AccessPatternSpec::single(
      GatherPattern{.table_bytes = 1u << 20, .elem_bytes = 8});
  const auto fresh = simulate_pattern(arch::knl(), spec, 30'000, 42, 6);
  const auto first =
      simulate_pattern_cached(&cache, arch::knl(), spec, 30'000, 42, 6);
  const auto second =
      simulate_pattern_cached(&cache, arch::knl(), spec, 30'000, 42, 6);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.size(), 1u);
  for (const auto* r : {&first, &second}) {
    ASSERT_EQ(r->levels.size(), fresh.levels.size());
    for (std::size_t i = 0; i < fresh.levels.size(); ++i) {
      EXPECT_EQ(r->levels[i].stats.hits, fresh.levels[i].stats.hits);
      EXPECT_EQ(r->levels[i].stats.misses, fresh.levels[i].stats.misses);
    }
  }
}

TEST(SimCacheTest, KeyDiscriminatesEveryInput) {
  const auto spec = AccessPatternSpec::single(
      GatherPattern{.table_bytes = 1u << 20, .elem_bytes = 8});
  auto spec2 = spec;
  std::get<GatherPattern>(spec2.components[0].pattern).table_bytes += 1;
  auto spec3 = spec;
  spec3.components[0].weight = 2.0;
  const std::string base = SimCache::key(arch::knl(), spec, 1000, 42, 6);
  EXPECT_NE(base, SimCache::key(arch::knm(), spec, 1000, 42, 6));
  EXPECT_NE(base, SimCache::key(arch::knl(), spec2, 1000, 42, 6));
  EXPECT_NE(base, SimCache::key(arch::knl(), spec3, 1000, 42, 6));
  EXPECT_NE(base, SimCache::key(arch::knl(), spec, 1001, 42, 6));
  EXPECT_NE(base, SimCache::key(arch::knl(), spec, 1000, 43, 6));
  EXPECT_NE(base, SimCache::key(arch::knl(), spec, 1000, 42, 7));
  EXPECT_EQ(base, SimCache::key(arch::knl(), spec, 1000, 42, 6));
}

TEST(SimCacheTest, KeyIsPureGeometry) {
  // A replay is a pure function of the cache geometry: machine variants
  // that only respin bandwidth/TDP/FPUs share their base's simulations
  // (the explore grid's memoization), while any geometry edit — cores,
  // capacities — must not alias.
  const auto spec = AccessPatternSpec::single(
      GatherPattern{.table_bytes = 1u << 20, .elem_bytes = 8});
  const std::string base = SimCache::key(arch::knl(), spec, 1000, 42, 6);
  const auto bw = arch::derive_variant(arch::knl(), "dram-bw=1.5+tdp=0.85");
  EXPECT_EQ(base, SimCache::key(bw.cpu, spec, 1000, 42, 6));
  const auto fpu = arch::derive_variant(arch::knl(), "drop-fp64-vec");
  EXPECT_EQ(base, SimCache::key(fpu.cpu, spec, 1000, 42, 6));
  const auto cap = arch::derive_variant(arch::knl(), "mcdram-cap=2");
  EXPECT_NE(base, SimCache::key(cap.cpu, spec, 1000, 42, 6));
  const auto cores = arch::derive_variant(arch::knl(), "cores=1.25");
  EXPECT_NE(base, SimCache::key(cores.cpu, spec, 1000, 42, 6));
}

TEST(SimCacheTest, ConcurrentLookupsAreDeterministic) {
  // Many threads race the same small key set; every thread must see the
  // exact stats a serial simulation produces, and the cache must end up
  // with one entry per distinct key.
  SimCache cache;
  const auto specs = all_pattern_specs();
  std::vector<HierarchyResult> serial;
  serial.reserve(specs.size());
  for (const auto& s : specs) {
    serial.push_back(simulate_pattern(arch::knl(), s, 10'000, 9, 6));
  }
  std::vector<std::thread> threads;
  std::vector<int> bad(8, 0);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 3; ++round) {
        for (std::size_t i = 0; i < specs.size(); ++i) {
          const auto r = simulate_pattern_cached(&cache, arch::knl(),
                                                 specs[i], 10'000, 9, 6);
          for (std::size_t l = 0; l < r.levels.size(); ++l) {
            if (r.levels[l].stats.hits != serial[i].levels[l].stats.hits ||
                r.levels[l].stats.misses !=
                    serial[i].levels[l].stats.misses) {
              bad[static_cast<std::size_t>(t)] = 1;
            }
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const int b : bad) EXPECT_EQ(b, 0);
  EXPECT_EQ(cache.size(), specs.size());
  const auto cs = cache.stats();
  EXPECT_EQ(cs.hits + cs.misses, 8u * 3u * specs.size());
  EXPECT_GE(cs.misses, specs.size());
}

}  // namespace
}  // namespace fpr::memsim
