// Unit tests for the cache/memory simulator.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "arch/machines.hpp"
#include "memsim/bandwidth.hpp"
#include "memsim/cache.hpp"
#include "memsim/hierarchy.hpp"
#include "memsim/trace_gen.hpp"

namespace fpr::memsim {
namespace {

TEST(CacheConfig, GeometryMath) {
  CacheConfig cfg{.size_bytes = 32 * 1024, .line_bytes = 64,
                  .associativity = 8};
  cfg.validate();
  EXPECT_EQ(cfg.num_lines(), 512u);
  EXPECT_EQ(cfg.num_sets(), 64u);
}

TEST(CacheConfig, RejectsBadGeometry) {
  CacheConfig cfg{.size_bytes = 1000, .line_bytes = 64, .associativity = 8};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {.size_bytes = 32 * 1024, .line_bytes = 48, .associativity = 8};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  // Non-power-of-two set counts are allowed (modulo indexing).
  cfg = {.size_bytes = 3 * 64 * 8, .line_bytes = 64, .associativity = 8};
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Cache, HitsAfterMiss) {
  Cache c({.size_bytes = 4096, .line_bytes = 64, .associativity = 4});
  EXPECT_FALSE(c.access(0x1000, false));
  EXPECT_TRUE(c.access(0x1000, false));
  EXPECT_TRUE(c.access(0x1010, false));  // same line
  EXPECT_FALSE(c.access(0x2000, false));
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, LruEviction) {
  // 1 set x 2 ways: lines 0 and 1 fit, line 2 evicts the LRU (line 0).
  Cache c({.size_bytes = 128, .line_bytes = 64, .associativity = 2});
  c.access(0 * 64, false);
  c.access(1 * 64 * 1, false);  // same set? with 1 set, every line maps there
  c.access(2 * 64, false);      // evicts line 0
  EXPECT_FALSE(c.access(0 * 64, false));  // line 0 gone
  EXPECT_TRUE(c.access(2 * 64, false));   // line 2 still resident
}

TEST(Cache, LruTouchPreventsEviction) {
  Cache c({.size_bytes = 128, .line_bytes = 64, .associativity = 2});
  c.access(0, false);
  c.access(64, false);
  c.access(0, false);    // touch line 0: line 64 becomes LRU
  c.access(128, false);  // evicts line 64
  EXPECT_TRUE(c.access(0, false));
  EXPECT_FALSE(c.access(64, false));
}

TEST(Cache, WritebackOnDirtyEviction) {
  Cache c({.size_bytes = 128, .line_bytes = 64, .associativity = 2});
  c.access(0, true);     // dirty
  c.access(64, false);
  c.access(128, false);  // evicts dirty line 0
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, ClearResets) {
  Cache c({.size_bytes = 4096, .line_bytes = 64, .associativity = 4});
  c.access(0, true);
  c.clear();
  EXPECT_EQ(c.stats().accesses(), 0u);
  EXPECT_FALSE(c.access(0, false));  // cold again
}

TEST(Cache, StreamingHitRateIsSevenEighths) {
  // Sequential 8B accesses: 1 miss per 64B line = 7/8 hit rate.
  Cache c({.size_bytes = 64 * 1024, .line_bytes = 64, .associativity = 8});
  for (std::uint64_t a = 0; a < 32 * 1024; a += 8) c.access(a, false);
  EXPECT_NEAR(c.stats().hit_rate(), 7.0 / 8.0, 0.01);
}

TEST(TraceGen, StreamPatternIsSequentialPerArray) {
  AccessPatternSpec spec = AccessPatternSpec::single(
      StreamPattern{.bytes_per_array = 1 << 20, .arrays = 1,
                    .writes_per_iter = 0});
  TraceGenerator gen(spec, 1);
  std::uint64_t prev = gen.next().addr;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t a = gen.next().addr;
    EXPECT_EQ(a, prev + 8);
    prev = a;
  }
}

TEST(TraceGen, ChaseVisitsAllNodes) {
  AccessPatternSpec spec = AccessPatternSpec::single(
      ChasePattern{.footprint_bytes = 64 * 64, .node_bytes = 64});
  TraceGenerator gen(spec, 2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 64; ++i) seen.insert(gen.next().addr);
  // Sattolo cycle: all 64 nodes visited exactly once per period.
  EXPECT_EQ(seen.size(), 64u);
}

TEST(TraceGen, MixtureUsesDistinctRanges) {
  AccessPatternSpec spec;
  spec.components.push_back(
      {StreamPattern{.bytes_per_array = 4096, .arrays = 1}, 1.0});
  spec.components.push_back(
      {GatherPattern{.table_bytes = 4096, .elem_bytes = 8}, 1.0});
  TraceGenerator gen(spec, 3);
  std::set<std::uint64_t> bases;
  for (int i = 0; i < 1000; ++i) bases.insert(gen.next().addr >> 40);
  EXPECT_GE(bases.size(), 2u);  // distinct 2^40 component windows
}

TEST(TraceGen, RejectsEmptyAndBadWeights) {
  EXPECT_THROW(TraceGenerator(AccessPatternSpec{}, 1), std::invalid_argument);
  AccessPatternSpec bad;
  bad.components.push_back({StreamPattern{}, -1.0});
  EXPECT_THROW(TraceGenerator(bad, 1), std::invalid_argument);
}

TEST(TraceGen, PatternNames) {
  EXPECT_EQ(pattern_name(StreamPattern{}), "stream");
  EXPECT_EQ(pattern_name(StencilPattern{}), "stencil");
  EXPECT_EQ(pattern_name(GatherPattern{}), "gather");
  EXPECT_EQ(pattern_name(ChasePattern{}), "chase");
  EXPECT_EQ(pattern_name(BlockedPattern{}), "blocked");
  EXPECT_EQ(pattern_name(StridedPattern{}), "strided");
}

TEST(Hierarchy, LevelsForPhiAndBdw) {
  Hierarchy phi(arch::knl(), 6);
  EXPECT_EQ(phi.num_levels(), 3u);
  EXPECT_EQ(phi.level_name(2), "MCDRAM$");
  Hierarchy xeon(arch::bdw(), 6);
  EXPECT_EQ(xeon.num_levels(), 3u);
  EXPECT_EQ(xeon.level_name(2), "LLC");
}

TEST(Hierarchy, SmallWorkingSetHitsHigh) {
  // A stream fitting easily in the (scaled) caches: high combined hit.
  AccessPatternSpec spec = AccessPatternSpec::single(
      StreamPattern{.bytes_per_array = 32 * 1024, .arrays = 1});
  const auto res = simulate_pattern(arch::knl(), spec, 200000, 7, 6);
  EXPECT_GT(res.served_at_or_above("L2"), 0.95);
}

TEST(Hierarchy, HugeGatherMissesMcdram) {
  // Random gather over a table far beyond MCDRAM: most refs go to DRAM.
  AccessPatternSpec spec = AccessPatternSpec::single(
      GatherPattern{.table_bytes = 200ull << 30, .elem_bytes = 8,
                    .sequential_fraction = 0.0});
  const auto res = simulate_pattern(arch::knl(), spec, 150000);
  EXPECT_GT(res.dram_fraction(), 0.5);
}

TEST(Hierarchy, ScaledBytesFloorsAtLine) {
  Hierarchy h(arch::knl(), 6);
  EXPECT_EQ(h.scaled_bytes(1), 64u);
  EXPECT_EQ(h.scaled_bytes(1 << 20), (1u << 20) >> 6);
}

TEST(Bandwidth, BdwIsJustDram) {
  const auto bw = effective_bandwidth(arch::bdw(), 1 << 30, 0.0);
  EXPECT_DOUBLE_EQ(bw.effective_gbs, arch::bdw().dram_bw_gbs);
}

TEST(Bandwidth, FullCaptureGivesCacheModeCeiling) {
  // Paper Sec. IV-C: 86% of flat-mode Triad on KNL when vectors fit.
  const auto bw = effective_bandwidth(arch::knl(), 6ull << 30, 1.0);
  EXPECT_NEAR(bw.effective_gbs, 439.0 * 0.86, 1.0);
  const auto knm = effective_bandwidth(arch::knm(), 6ull << 30, 1.0);
  EXPECT_NEAR(knm.effective_gbs, 430.0 * 0.75, 1.0);
}

TEST(Bandwidth, OversizeWorkingSetDropsTowardDram) {
  // 42 GiB of stream against 16 GiB MCDRAM: near-DRAM throughput
  // ("slightly higher than DRAM", paper Fig. 4 BABL14).
  const auto bw = effective_bandwidth(arch::knl(), 42ull << 30, 1.0);
  EXPECT_GE(bw.effective_gbs, arch::knl().dram_bw_gbs);
  EXPECT_LT(bw.effective_gbs, 200.0);
}

TEST(Bandwidth, MonotonicInCapture) {
  double prev = 0.0;
  for (double c = 0.0; c <= 1.0; c += 0.1) {
    const auto bw = effective_bandwidth(arch::knl(), 4ull << 30, c);
    EXPECT_GE(bw.effective_gbs, prev - 1e-9);
    prev = bw.effective_gbs;
  }
}

TEST(Latency, CacheModeMissCostsMore) {
  const double hit = effective_latency_ns(arch::knl(), 1.0);
  const double miss = effective_latency_ns(arch::knl(), 0.0);
  EXPECT_GT(miss, hit);
  EXPECT_DOUBLE_EQ(effective_latency_ns(arch::bdw(), 0.5),
                   arch::bdw().dram_latency_ns);
}

}  // namespace
}  // namespace fpr::memsim
