// Tests for the `fpr` suite-runner command core: command dispatch,
// option parsing/validation, and the list/run/study/diff report
// contents. Driven in-process through run_cli so no child processes are
// needed.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "arch/machines.hpp"
#include "cli/cli.hpp"
#include "io/explore_json.hpp"
#include "io/pareto_json.hpp"
#include "io/study_json.hpp"
#include "io/trace_format.hpp"
#include "kernels/kernel.hpp"
#include "memsim/hierarchy.hpp"
#include "memsim/trace_gen.hpp"
#include "model/memprofile.hpp"

namespace fpr::cli {
namespace {

struct CliOutcome {
  int code = 0;
  std::string out;
  std::string err;
};

CliOutcome run(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  CliOutcome r;
  r.code = run_cli(args, out, err);
  r.out = out.str();
  r.err = err.str();
  return r;
}

TEST(Cli, NoCommandIsUsageError) {
  const auto r = run({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("usage: fpr"), std::string::npos);
  EXPECT_TRUE(r.out.empty());
}

TEST(Cli, UnknownCommandIsUsageError) {
  const auto r = run({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command 'frobnicate'"), std::string::npos);
}

TEST(Cli, HelpPrintsUsageOnStdout) {
  const auto r = run({"help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("usage: fpr"), std::string::npos);
  EXPECT_TRUE(r.err.empty());
}

TEST(Cli, ListShowsEveryRegisteredKernel) {
  const auto r = run({"list"});
  EXPECT_EQ(r.code, 0);
  for (const auto& abbrev : kernels::all_abbrevs()) {
    EXPECT_NE(r.out.find(abbrev), std::string::npos) << abbrev;
  }
}

TEST(Cli, ListCsvIsMachineParsable) {
  const auto r = run({"list", "--csv"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("Abbrev,Name,Suite"), std::string::npos);
}

TEST(Cli, TablesRenderStaticPaperTables) {
  const auto r = run({"tables"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("Xeon Phi"), std::string::npos);
}

TEST(Cli, RunEmitsOpMixAndRooflineReport) {
  const auto r = run({"run", "--kernel", "BABL2", "--scale", "0.15",
                      "--repeats", "1"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("Operation mix"), std::string::npos);
  EXPECT_NE(r.out.find("FP64[Gop]"), std::string::npos);
  EXPECT_NE(r.out.find("Machine projection + roofline placement:"),
            std::string::npos);
  // All three paper machines appear in the projection table.
  for (const char* machine : {"KNL", "KNM", "BDW"}) {
    EXPECT_NE(r.out.find(machine), std::string::npos) << machine;
  }
}

TEST(Cli, RunAutoThreadsReportsParallelismSearch) {
  const auto r = run({"run", "--kernel", "BABL2", "--scale", "0.15",
                      "--repeats", "1", "--auto-threads"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("Parallelism search"), std::string::npos);
  // The padded ladder always explores at least {1, 2, 4}, independent
  // of the host's core count (the regression behind parallelism_ladder).
  for (const char* candidate : {"1:", "2:", "4:"}) {
    EXPECT_NE(r.out.find(candidate), std::string::npos) << candidate;
  }
}

TEST(Cli, RunAcceptsCommaSeparatedSubset) {
  const auto r = run({"run", "--kernel", "BABL2,MxIO", "--scale", "0.15",
                      "--repeats", "1"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("BABL2"), std::string::npos);
  EXPECT_NE(r.out.find("MxIO"), std::string::npos);
}

TEST(Cli, RunCsvKeepsStdoutMachineParsable) {
  const auto r = run({"run", "--kernel", "BABL2", "--scale", "0.15",
                      "--repeats", "1", "--csv"});
  EXPECT_EQ(r.code, 0) << r.err;
  // Section headings are diagnostics: stderr only, never in the CSV.
  EXPECT_EQ(r.out.find("Operation mix"), std::string::npos);
  EXPECT_NE(r.err.find("Operation mix"), std::string::npos);
  EXPECT_NE(r.out.find("Kernel,Machine,Bound"), std::string::npos);
}

TEST(Cli, RunRejectsUnknownKernel) {
  const auto r = run({"run", "--kernel", "NOPE"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown kernel 'NOPE'"), std::string::npos);
}

TEST(Cli, RunRejectsBadOptionValues) {
  EXPECT_EQ(run({"run", "--scale", "0"}).code, 2);
  EXPECT_EQ(run({"run", "--scale", "banana"}).code, 2);
  EXPECT_EQ(run({"run", "--repeats", "0"}).code, 2);
  EXPECT_EQ(run({"run", "--kernel"}).code, 2);   // missing value
  EXPECT_EQ(run({"run", "--kernel", ","}).code, 2);  // empty list
  EXPECT_EQ(run({"run", "--threads", "-1"}).code, 2);
  EXPECT_EQ(run({"run", "--threads", "99999999999999999999"}).code, 2);
  EXPECT_EQ(run({"run", "--wat"}).code, 2);
  EXPECT_EQ(run({"run", "stray-positional"}).code, 2);
}

// ---------------------------------------------------------------------------
// fpr study / fpr diff

/// Unique temp path, removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& tag) {
    static int counter = 0;
    path_ = (std::filesystem::temp_directory_path() /
             ("fpr_cli_test_" + std::to_string(::getpid()) + "_" + tag + "_" +
              std::to_string(++counter) + ".json"))
                .string();
  }
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Fast single-kernel study invocation writing JSON to `out`.
CliOutcome run_study_to(const std::string& out,
                        const std::vector<std::string>& extra = {}) {
  std::vector<std::string> args = {"study",        "--kernel",
                                   "BABL2",        "--scale",
                                   "0.15",         "--trace-refs",
                                   "20000",        "--out",
                                   out};
  args.insert(args.end(), extra.begin(), extra.end());
  return run(args);
}

TEST(Cli, StudyWritesParsableResultsFile) {
  TempFile tmp("study");
  const auto r = run_study_to(tmp.path(), {"--jobs", "2"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(std::filesystem::exists(tmp.path()));
  // Summary table on stdout covers every machine.
  EXPECT_NE(r.out.find("Study summary"), std::string::npos);
  for (const char* machine : {"KNL", "KNM", "BDW"}) {
    EXPECT_NE(r.out.find(machine), std::string::npos) << machine;
  }
  // The file is a loadable, schema-valid results document.
  const auto results = io::study_from_json(io::load_file(tmp.path()));
  ASSERT_EQ(results.kernels.size(), 1u);
  EXPECT_EQ(results.kernels[0].info.abbrev, "BABL2");
  // Default canonical timing: byte-stable output, no wall-clock noise.
  EXPECT_EQ(results.kernels[0].meas.host_seconds, 0.0);
}

TEST(Cli, StudyTimingFlagKeepsHostSeconds) {
  TempFile tmp("timing");
  const auto r = run_study_to(tmp.path(), {"--timing"});
  EXPECT_EQ(r.code, 0) << r.err;
  const auto results = io::study_from_json(io::load_file(tmp.path()));
  EXPECT_GT(results.kernels[0].meas.host_seconds, 0.0);
}

TEST(Cli, StudyOutDashEmitsPureJsonOnStdout) {
  const auto r = run_study_to("-");
  EXPECT_EQ(r.code, 0) << r.err;
  ASSERT_FALSE(r.out.empty());
  EXPECT_EQ(r.out.front(), '{');
  EXPECT_EQ(r.out.find("Study summary"), std::string::npos);
  // Whole stdout is one JSON document (plus trailing newline).
  const auto results = io::study_from_json(io::parse(r.out));
  EXPECT_EQ(results.kernels.size(), 1u);
  // Diagnostics still land on stderr.
  EXPECT_NE(r.err.find("[fpr] study"), std::string::npos);
}

TEST(Cli, StudyCsvKeepsStdoutMachineParsable) {
  const auto r = run({"study", "--kernel", "BABL2", "--scale", "0.15",
                      "--trace-refs", "20000", "--csv"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(r.out.find("Study summary"), std::string::npos);
  EXPECT_NE(r.err.find("Study summary"), std::string::npos);
  EXPECT_NE(r.out.find("Kernel,Machine,Bound"), std::string::npos);
}

TEST(Cli, StudyKernelJobsIsByteIdenticalToSerial) {
  const auto serial = run_study_to("-", {"--kernel-jobs", "1"});
  const auto parallel =
      run_study_to("-", {"--kernel-jobs", "4", "--jobs", "2"});
  EXPECT_EQ(serial.code, 0) << serial.err;
  EXPECT_EQ(parallel.code, 0) << parallel.err;
  EXPECT_EQ(serial.out, parallel.out);
  EXPECT_NE(parallel.err.find("kernel-jobs=4"), std::string::npos);
}

// ---------------------------------------------------------------------
// fpr explore

/// Fast two-kernel explore invocation.
CliOutcome run_explore(const std::vector<std::string>& extra = {}) {
  std::vector<std::string> args = {"explore",      "--kernel",
                                   "HPL,BABL2",    "--scale",
                                   "0.15",         "--trace-refs",
                                   "20000"};
  args.insert(args.end(), extra.begin(), extra.end());
  return run(args);
}

TEST(Cli, ExplorePrintsVariantScorecard) {
  const auto r = run_explore({"--variants", "drop-fp64-vec,dram-bw=1.5"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("Variant scorecard vs KNL"), std::string::npos);
  EXPECT_NE(r.out.find("Per-kernel projection"), std::string::npos);
  EXPECT_NE(r.out.find("KNL+drop-fp64-vec"), std::string::npos);
  EXPECT_NE(r.out.find("KNL+dram-bw=1.5"), std::string::npos);
  EXPECT_NE(r.out.find("(base)"), std::string::npos);
}

TEST(Cli, ExploreDefaultGridReportsAtLeastSixVariants) {
  for (const char* base : {"KNL", "KNM", "BDW"}) {
    const auto r = run_explore({"--base", base, "--kernel", "BABL2"});
    EXPECT_EQ(r.code, 0) << r.err;
    // Count variant rows in the scorecard: lines containing "<base>+".
    const std::string needle = std::string(base) + "+";
    std::size_t count = 0, pos = 0;
    while ((pos = r.out.find(needle, pos)) != std::string::npos) {
      ++count;
      pos += needle.size();
    }
    // Each variant appears in the scorecard and once per kernel in the
    // projection table; the scorecard alone carries >= 6.
    EXPECT_GE(count, 12u) << base;  // 6 variants x (scorecard + 1 kernel)
  }
}

TEST(Cli, ExploreWritesParsableResultsFile) {
  TempFile tmp("explore");
  const auto r = run_explore({"--variants", "tdp=0.85", "--out", tmp.path()});
  EXPECT_EQ(r.code, 0) << r.err;
  const auto results = io::explore_from_json(io::load_file(tmp.path()));
  EXPECT_EQ(results.base, "KNL");
  ASSERT_EQ(results.variants.size(), 1u);
  EXPECT_EQ(results.variants[0].name(), "KNL+tdp=0.85");
  ASSERT_EQ(results.baseline.kernels.size(), 2u);
}

TEST(Cli, ExploreOutDashIsByteIdenticalAcrossJobs) {
  const auto serial =
      run_explore({"--variants", "dram-bw=1.5", "--out", "-"});
  const auto parallel =
      run_explore({"--variants", "dram-bw=1.5", "--out", "-", "--jobs", "4",
                   "--kernel-jobs", "2"});
  EXPECT_EQ(serial.code, 0) << serial.err;
  EXPECT_EQ(parallel.code, 0) << parallel.err;
  ASSERT_FALSE(serial.out.empty());
  EXPECT_EQ(serial.out.front(), '{');
  EXPECT_EQ(serial.out, parallel.out);
  (void)io::explore_from_json(io::parse(serial.out));  // schema-valid
}

TEST(Cli, ExploreCsvKeepsStdoutMachineParsable) {
  const auto r = run_explore({"--variants", "tdp=0.85", "--csv"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(r.out.find("Variant scorecard"), std::string::npos);
  EXPECT_NE(r.err.find("Variant scorecard"), std::string::npos);
  EXPECT_NE(r.out.find("Variant,Spec,GeoT2sol"), std::string::npos);
  EXPECT_NE(r.out.find("Kernel,Variant,Bound"), std::string::npos);
}

TEST(Cli, ExploreGoldenUsesSnapshotConfig) {
  const auto r = run({"explore", "--golden"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.err.find("base KNL"), std::string::npos);
  // The built-in KNL grid includes the MCDRAM transforms.
  EXPECT_NE(r.out.find("KNL+mcdram-cap=2"), std::string::npos);
}

TEST(Cli, ExploreRejectsBadOptions) {
  EXPECT_EQ(run({"explore", "--base", "EPYC"}).code, 1);  // engine throws
  EXPECT_EQ(run({"explore", "--variants", "no-such"}).code, 1);
  EXPECT_EQ(run({"explore", "--variants", ","}).code, 2);
  EXPECT_EQ(run({"explore", "--base"}).code, 2);  // missing value
  EXPECT_EQ(run({"explore", "--kernel", "NOPE"}).code, 2);
  EXPECT_EQ(run({"explore", "stray"}).code, 2);
}

TEST(Cli, DiffComparesExploreFilesAndRejectsMixing) {
  TempFile a("explore_a"), b("explore_b"), s("study_s");
  ASSERT_EQ(run_explore({"--variants", "tdp=0.85", "--out", a.path()}).code,
            0);
  ASSERT_EQ(run_study_to(s.path()).code, 0);
  // Identical explore files compare clean.
  const auto same = run({"diff", a.path(), a.path()});
  EXPECT_EQ(same.code, 0) << same.err;
  EXPECT_NE(same.out.find("OK:"), std::string::npos);
  // Perturb one variant metric by 50%: zero tolerance flags it (naming
  // the variant and metric), a generous one accepts it.
  auto results = io::explore_from_json(io::load_file(a.path()));
  results.variants[0].geomean_time_ratio *= 1.5;
  io::save_file(b.path(), io::to_json(results));
  const auto strict = run({"diff", a.path(), b.path()});
  EXPECT_EQ(strict.code, 1);
  EXPECT_NE(strict.out.find("geomean_time_ratio"), std::string::npos);
  EXPECT_NE(strict.out.find("KNL+tdp=0.85"), std::string::npos);
  const auto loose = run({"diff", a.path(), b.path(), "--tolerance", "0.51"});
  EXPECT_EQ(loose.code, 0) << loose.err;
  // Study-vs-explore is a usage error, not a confusing schema failure.
  const auto mixed = run({"diff", a.path(), s.path()});
  EXPECT_EQ(mixed.code, 2);
  EXPECT_NE(mixed.err.find("cannot compare"), std::string::npos);
}

// ---------------------------------------------------------------------
// fpr pareto

/// Fast two-kernel, two-round pareto invocation.
CliOutcome run_pareto(const std::vector<std::string>& extra = {}) {
  std::vector<std::string> args = {
      "pareto", "--kernel", "HPL,BABL2",   "--scale",  "0.15",
      "--trace-refs", "20000", "--rounds", "1", "--explorers", "4"};
  args.insert(args.end(), extra.begin(), extra.end());
  return run(args);
}

TEST(Cli, ParetoPrintsFrontierAndStats) {
  const auto r = run_pareto();
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("Pareto frontier vs KNL"), std::string::npos);
  EXPECT_NE(r.out.find("GeoT2sol"), std::string::npos);
  EXPECT_NE(r.err.find("[fpr] pareto search:"), std::string::npos);
  EXPECT_NE(r.err.find("duplicate(s)"), std::string::npos);
}

TEST(Cli, ParetoOutDashIsByteIdenticalAcrossJobs) {
  const auto serial = run_pareto({"--out", "-"});
  const auto parallel = run_pareto({"--out", "-", "--jobs", "4"});
  EXPECT_EQ(serial.code, 0) << serial.err;
  EXPECT_EQ(parallel.code, 0) << parallel.err;
  ASSERT_FALSE(serial.out.empty());
  EXPECT_EQ(serial.out.front(), '{');
  EXPECT_EQ(serial.out, parallel.out);
  (void)io::pareto_from_json(io::parse(serial.out));  // schema-valid
}

TEST(Cli, ParetoCsvKeepsStdoutMachineParsable) {
  const auto r = run_pareto({"--csv"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(r.out.find("Pareto frontier"), std::string::npos);
  EXPECT_NE(r.err.find("Pareto frontier"), std::string::npos);
  EXPECT_NE(r.out.find("Variant,Spec,GeoT2sol"), std::string::npos);
}

TEST(Cli, ParetoHonorsBudgetAndObjectiveOptions) {
  // A looser area budget admits machines the default box rejects.
  const auto roomy = run_pareto({"--budget-area", "1.2", "--objectives",
                                 "time,energy"});
  EXPECT_EQ(roomy.code, 0) << roomy.err;
  EXPECT_NE(roomy.err.find("area<=1.2"), std::string::npos);
  const auto results = io::pareto_from_json(io::parse(
      run_pareto({"--objectives", "time", "--out", "-"}).out));
  ASSERT_EQ(results.objectives.size(), 1u);
  EXPECT_EQ(results.objectives[0], study::Objective::time);
  for (const auto& p : results.frontier) {
    EXPECT_EQ(p.objectives.size(), 1u) << p.name();
  }
}

TEST(Cli, ParetoRejectsBadOptions) {
  EXPECT_EQ(run({"pareto", "--base", "EPYC"}).code, 1);  // engine throws
  EXPECT_EQ(run_pareto({"--objectives", "throughput"}).code, 2);
  EXPECT_EQ(run_pareto({"--objectives", ","}).code, 2);
  EXPECT_EQ(run_pareto({"--max-depth", "0"}).code, 2);
  EXPECT_EQ(run_pareto({"--budget-area", "0"}).code, 2);
  EXPECT_EQ(run_pareto({"--budget-tdp", "-1"}).code, 2);
  EXPECT_EQ(run_pareto({"--search-seed"}).code, 2);  // missing value
  EXPECT_EQ(run({"pareto", "stray"}).code, 2);
}

TEST(Cli, DiffComparesParetoFilesAndRejectsMixing) {
  TempFile a("pareto_a"), s("study_for_pareto");
  ASSERT_EQ(run_pareto({"--out", a.path()}).code, 0);
  ASSERT_EQ(run_study_to(s.path()).code, 0);
  const auto same = run({"diff", a.path(), a.path()});
  EXPECT_EQ(same.code, 0) << same.err;
  EXPECT_NE(same.out.find("OK:"), std::string::npos);
  const auto mixed = run({"diff", a.path(), s.path()});
  EXPECT_EQ(mixed.code, 2);
  EXPECT_NE(mixed.err.find("cannot compare"), std::string::npos);
}

// ---------------------------------------------------------------------
// fpr memsim

TEST(Cli, MemsimPrintsPerLevelHitRates) {
  const auto r = run({"memsim", "--kernel", "BABL2,XSBn", "--scale", "0.15",
                      "--refs", "20000"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("Simulated per-level hit rates"), std::string::npos);
  EXPECT_NE(r.out.find("L1h%"), std::string::npos);
  // One row per (kernel, machine); both last-level flavours appear.
  EXPECT_NE(r.out.find("MCDRAM$"), std::string::npos);
  EXPECT_NE(r.out.find("LLC"), std::string::npos);
  for (const char* machine : {"KNL", "KNM", "BDW"}) {
    EXPECT_NE(r.out.find(machine), std::string::npos) << machine;
  }
  EXPECT_NE(r.err.find("memsim cache:"), std::string::npos);
}

TEST(Cli, MemsimCsvKeepsStdoutMachineParsable) {
  const auto r = run({"memsim", "--kernel", "BABL2", "--scale", "0.15",
                      "--refs", "20000", "--csv"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("Kernel,Machine,L1h%"), std::string::npos);
  EXPECT_EQ(r.out.find("Simulated per-level"), std::string::npos);
}

TEST(Cli, MemsimHonorsScaleShiftAndRefs) {
  const auto deep = run({"memsim", "--kernel", "BABL2", "--scale", "0.15",
                         "--refs", "15000", "--scale-shift", "6"});
  EXPECT_EQ(deep.code, 0) << deep.err;
  EXPECT_NE(deep.err.find("refs=15000"), std::string::npos);
  EXPECT_NE(deep.err.find("scale-shift=6"), std::string::npos);
  EXPECT_NE(deep.out.find("2^-6"), std::string::npos);
}

TEST(Cli, MemsimRejectsBadOptions) {
  EXPECT_EQ(run({"memsim", "--kernel", "NOPE"}).code, 2);
  EXPECT_EQ(run({"memsim", "--refs", "0"}).code, 2);
  // Negative counts must be rejected, not wrapped by unsigned parsing.
  EXPECT_EQ(run({"memsim", "--refs", "-5"}).code, 2);
  EXPECT_EQ(run({"memsim", "--seed", "-1"}).code, 2);
  EXPECT_EQ(run({"memsim", "--shard-jobs", "-1"}).code, 2);
  EXPECT_EQ(run({"memsim", "--scale-shift", "31"}).code, 2);
  EXPECT_EQ(run({"memsim", "--scale-shift", "-1"}).code, 2);
  EXPECT_EQ(run({"memsim", "stray"}).code, 2);
}

TEST(Cli, MemsimShardJobsIsByteIdenticalToSerial) {
  // Sharding is a wall-time knob only: stdout must match the serial run
  // byte for byte.
  const auto serial =
      run({"memsim", "--kernel", "BABL2", "--scale", "0.15", "--refs",
           "20000"});
  const auto sharded =
      run({"memsim", "--kernel", "BABL2", "--scale", "0.15", "--refs",
           "20000", "--shard-jobs", "2", "--threads", "3"});
  ASSERT_EQ(serial.code, 0) << serial.err;
  ASSERT_EQ(sharded.code, 0) << sharded.err;
  EXPECT_EQ(serial.out, sharded.out);
}

// ---------------------------------------------------------------------
// fpr trace

/// Record the exact reference stream `fpr memsim` simulates for
/// (kernel, machine) to `path`: warmup-refs prefix plus refs measured
/// records, as `fpr-trace record` does.
void record_kernel_trace(const std::string& path, const std::string& kernel,
                         const arch::CpuSpec& cpu, std::uint64_t refs,
                         unsigned scale_shift) {
  kernels::RunConfig rc;
  rc.scale = 0.15;
  const auto meas = kernels::make(kernel)->run(rc);
  const auto sliced = model::per_core_slice(meas.access, cpu.cores);
  const auto scaled = memsim::scale_spec(sliced, scale_shift);
  memsim::TraceGenerator gen(scaled, model::kProfileSeed);
  io::TraceWriter w(path);
  std::vector<memsim::MemRef> block(1024);
  for (std::uint64_t done = 0; done < 2 * refs;) {
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(block.size(), 2 * refs - done));
    gen.fill(block.data(), n);
    w.append(block.data(), n);
    done += n;
  }
  w.finish();
}

/// Strip the first CSV column (Kernel/Trace label) off every row.
std::string drop_first_column(const std::string& csv) {
  std::string out;
  std::istringstream in(csv);
  std::string line;
  while (std::getline(in, line)) {
    const auto comma = line.find(',');
    if (comma == std::string::npos) continue;
    out += line.substr(comma + 1);
    out += '\n';
  }
  return out;
}

TEST(Cli, TraceReplayMatchesMemsimRowBitForBit) {
  TempFile tmp("trace");
  record_kernel_trace(tmp.path(), "BABL2", arch::knl(), 20000, 8);
  const auto trace = run({"trace", tmp.path(), "--machine", "KNL",
                          "--warmup", "20000", "--csv"});
  ASSERT_EQ(trace.code, 0) << trace.err;
  const auto memsim = run({"memsim", "--kernel", "BABL2", "--scale", "0.15",
                           "--refs", "20000", "--csv"});
  ASSERT_EQ(memsim.code, 0) << memsim.err;
  // Same columns after the leading label, so the KNL rows must be
  // byte-identical: the file replay IS the synthetic replay.
  std::string memsim_knl;
  std::istringstream in(drop_first_column(memsim.out));
  for (std::string line; std::getline(in, line);) {
    if (line.rfind("KNL,", 0) == 0) memsim_knl = line + "\n";
  }
  ASSERT_FALSE(memsim_knl.empty());
  const auto trace_rows = drop_first_column(trace.out);
  EXPECT_NE(trace_rows.find(memsim_knl), std::string::npos)
      << "trace: " << trace_rows << "memsim: " << memsim_knl;
}

TEST(Cli, TraceShardJobsIsByteIdenticalToSerial) {
  TempFile tmp("trace_shard");
  record_kernel_trace(tmp.path(), "BABL2", arch::knl(), 15000, 8);
  const auto serial = run({"trace", tmp.path(), "--warmup", "15000"});
  const auto sharded = run({"trace", tmp.path(), "--warmup", "15000",
                            "--shard-jobs", "2", "--threads", "3"});
  ASSERT_EQ(serial.code, 0) << serial.err;
  ASSERT_EQ(sharded.code, 0) << sharded.err;
  EXPECT_EQ(serial.out, sharded.out);
}

TEST(Cli, TraceWritesProfileJson) {
  TempFile tmp("trace_json");
  TempFile out("trace_profile");
  record_kernel_trace(tmp.path(), "BABL2", arch::knl(), 10000, 8);
  const auto r = run({"trace", tmp.path(), "--warmup", "10000", "--out",
                      out.path()});
  ASSERT_EQ(r.code, 0) << r.err;
  const auto doc = io::load_file(out.path());
  EXPECT_EQ(doc.at("format").as_string(), "fpr-trace-profile");
  EXPECT_EQ(doc.at("version").as_u64(), 1u);
  EXPECT_EQ(doc.at("trace").at("refs").as_u64(), 10000u);
  const auto& machines = doc.at("machines").as_array();
  ASSERT_EQ(machines.size(), 3u);  // all Table I machines by default
  EXPECT_EQ(machines[0].at("machine").as_string(), "KNL");
  // The memory profile carries the study_json MemoryProfile schema.
  EXPECT_TRUE(machines[0].at("mem").find("l2_hit") != nullptr ||
              machines[0].at("mem").is_object());
}

TEST(Cli, TraceRejectsBadUsage) {
  TempFile tmp("trace_usage");
  record_kernel_trace(tmp.path(), "BABL2", arch::knl(), 1000, 8);
  EXPECT_EQ(run({"trace"}).code, 2);  // missing file
  EXPECT_EQ(run({"trace", tmp.path(), "extra.fpt"}).code, 2);
  EXPECT_EQ(run({"trace", tmp.path(), "--refs", "0"}).code, 2);
  EXPECT_EQ(run({"trace", tmp.path(), "--refs", "-5"}).code, 2);
  EXPECT_EQ(run({"trace", tmp.path(), "--machine", "VAX"}).code, 2);
  // Warmup swallowing the whole file leaves nothing to measure.
  EXPECT_EQ(run({"trace", tmp.path(), "--warmup", "2000"}).code, 2);
}

TEST(Cli, TraceBadInputExitsThree) {
  const auto missing = run({"trace", "/nonexistent/trace.fpt"});
  EXPECT_EQ(missing.code, 3);
  EXPECT_NE(missing.err.find("missing or unreadable"), std::string::npos);

  TempFile junk("trace_junk");
  {
    std::ofstream f(junk.path(), std::ios::binary);
    f << "definitely not an fpr-trace file, but long enough to read";
  }
  const auto bad = run({"trace", junk.path()});
  EXPECT_EQ(bad.code, 3);
  EXPECT_NE(bad.err.find("bad magic"), std::string::npos);
}

TEST(Cli, StudyRejectsBadOptions) {
  EXPECT_EQ(run({"study", "--kernel", "NOPE"}).code, 2);
  EXPECT_EQ(run({"study", "--jobs", "-1"}).code, 2);
  EXPECT_EQ(run({"study", "--jobs", "9999999"}).code, 2);
  EXPECT_EQ(run({"study", "--kernel-jobs", "-1"}).code, 2);
  EXPECT_EQ(run({"study", "--kernel-jobs", "9999999"}).code, 2);
  EXPECT_EQ(run({"study", "--kernel-jobs"}).code, 2);  // missing value
  EXPECT_EQ(run({"study", "--trace-refs", "0"}).code, 2);
  EXPECT_EQ(run({"study", "--trace-refs", "-5"}).code, 2);
  EXPECT_EQ(run({"study", "--seed", "-1"}).code, 2);
  EXPECT_EQ(run({"study", "--out"}).code, 2);  // missing value
  EXPECT_EQ(run({"study", "stray"}).code, 2);
  // --golden is a fixed preset; flags it would silently ignore are
  // rejected instead.
  EXPECT_EQ(run({"study", "--golden", "--timing"}).code, 2);
  EXPECT_EQ(run({"study", "--golden", "--no-sweep"}).code, 2);
}

TEST(Cli, StudyPropagatesSeedToKernels) {
  // XSBn's synthetic lookup inputs depend on the PRNG seed, so its
  // serialized results must differ between seeds (and stay stable for
  // the same seed).
  TempFile a("seed_a");
  TempFile b("seed_b");
  TempFile c("seed_c");
  auto study = [&](const std::string& out, const char* seed) {
    return run({"study", "--kernel", "XSBn", "--scale", "0.15",
                "--trace-refs", "5000", "--seed", seed, "--out", out});
  };
  ASSERT_EQ(study(a.path(), "42").code, 0);
  ASSERT_EQ(study(b.path(), "7").code, 0);
  ASSERT_EQ(study(c.path(), "42").code, 0);
  std::ifstream fa(a.path()), fb(b.path()), fc(c.path());
  const std::string ja((std::istreambuf_iterator<char>(fa)), {});
  const std::string jb((std::istreambuf_iterator<char>(fb)), {});
  const std::string jc((std::istreambuf_iterator<char>(fc)), {});
  EXPECT_NE(ja, jb);
  EXPECT_EQ(ja, jc);
}

TEST(Cli, DiffMissingInputFileIsDistinctExitCode) {
  TempFile a("diff_a");
  ASSERT_EQ(run_study_to(a.path()).code, 0);
  // Missing file: exit 3 (not 1 = over-tolerance, not 2 = usage) with a
  // clear message naming the file instead of a raw parse error.
  const auto missing = run({"diff", a.path(), "/no/such/results.json"});
  EXPECT_EQ(missing.code, 3) << missing.err;
  EXPECT_NE(missing.err.find("/no/such/results.json"), std::string::npos);
  EXPECT_NE(missing.err.find("cannot read"), std::string::npos);
  // Both orders are covered — the first file is probed too.
  const auto first = run({"diff", "/no/such/results.json", a.path()});
  EXPECT_EQ(first.code, 3) << first.err;
  // A present-but-corrupt file is still a runtime (parse) error, code 1.
  TempFile bad("diff_corrupt");
  {
    std::ofstream out(bad.path());
    out << "{not json";
  }
  const auto corrupt = run({"diff", a.path(), bad.path()});
  EXPECT_EQ(corrupt.code, 1) << corrupt.err;
}

TEST(Cli, DiffIdenticalFilesIsCleanExitZero) {
  TempFile a("diff_a");
  ASSERT_EQ(run_study_to(a.path()).code, 0);
  const auto r = run({"diff", a.path(), a.path()});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("OK:"), std::string::npos);
  EXPECT_NE(r.out.find("0 exceeding"), std::string::npos);
}

TEST(Cli, DiffReportsRelativeDeltasAndHonoursTolerance) {
  TempFile a("diff_a");
  TempFile b("diff_b");
  ASSERT_EQ(run_study_to(a.path()).code, 0);
  // Perturb one metric by 50% in the B file.
  auto doc = io::load_file(a.path());
  auto results = io::study_from_json(doc);
  results.kernels[0].machines[0].perf.seconds *= 1.5;
  io::save_file(b.path(), io::to_json(results));

  const auto r = run({"diff", a.path(), b.path()});
  EXPECT_EQ(r.code, 1) << r.err;
  EXPECT_NE(r.out.find("FAIL:"), std::string::npos);
  EXPECT_NE(r.out.find("t2sol"), std::string::npos);  // offending metric
  EXPECT_NE(r.out.find("KNL"), std::string::npos);    // offending machine

  // A generous tolerance accepts the same pair.
  const auto ok = run({"diff", a.path(), b.path(), "--tolerance", "0.51"});
  EXPECT_EQ(ok.code, 0) << ok.err;
  EXPECT_NE(ok.out.find("OK:"), std::string::npos);

  // CSV mode: rows on stdout, prose on stderr.
  const auto csv = run({"diff", a.path(), b.path(), "--csv"});
  EXPECT_EQ(csv.code, 1);
  EXPECT_NE(csv.out.find("Kernel,Machine,Metric"), std::string::npos);
  EXPECT_EQ(csv.out.find("FAIL:"), std::string::npos);
  EXPECT_NE(csv.err.find("FAIL:"), std::string::npos);
}

TEST(Cli, DiffNeverLetsNaNPassAsEqual) {
  TempFile a("nan_a");
  TempFile b("nan_b");
  ASSERT_EQ(run_study_to(a.path()).code, 0);
  auto results = io::study_from_json(io::load_file(a.path()));
  results.kernels[0].machines[0].perf.seconds =
      std::numeric_limits<double>::quiet_NaN();
  io::save_file(b.path(), io::to_json(results));
  // A NaN regression fails even the widest finite tolerance.
  const auto r = run({"diff", a.path(), b.path(), "--tolerance", "1e9"});
  EXPECT_EQ(r.code, 1) << r.out;
  EXPECT_NE(r.out.find("t2sol"), std::string::npos);
  // NaN vs NaN counts as identical (the file diffs clean vs itself).
  EXPECT_EQ(run({"diff", b.path(), b.path()}).code, 0);
}

TEST(Cli, DiffCoversEverySerializedMetric) {
  TempFile a("cover_a");
  TempFile b("cover_b");
  ASSERT_EQ(run_study_to(a.path()).code, 0);
  // Regressions in the less headline-grabbing metrics must be caught
  // too: a memory-profile detail and a turbo-flag-only sweep change.
  auto results = io::study_from_json(io::load_file(a.path()));
  auto& m0 = results.kernels[0].machines[0];
  m0.mem.mcdram_capture = m0.mem.mcdram_capture * 0.5 + 0.2;
  ASSERT_FALSE(m0.freq_sweep.empty());
  m0.freq_sweep.back().first.turbo = !m0.freq_sweep.back().first.turbo;
  io::save_file(b.path(), io::to_json(results));

  const auto r = run({"diff", a.path(), b.path()});
  EXPECT_EQ(r.code, 1) << r.out;
  EXPECT_NE(r.out.find("mcdram_capture"), std::string::npos);
  EXPECT_NE(r.out.find("+TB"), std::string::npos);  // the turbo mismatch
}

TEST(Cli, DiffFlagsMissingKernelsAsStructural) {
  TempFile a("diff_a");
  TempFile b("diff_b");
  ASSERT_EQ(run_study_to(a.path()).code, 0);
  auto results = io::study_from_json(io::load_file(a.path()));
  results.kernels.clear();
  io::save_file(b.path(), io::to_json(results));
  const auto r = run({"diff", a.path(), b.path()});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.out.find("missing"), std::string::npos);
}

TEST(Cli, DiffUsageAndIoErrors) {
  EXPECT_EQ(run({"diff"}).code, 2);                    // no files
  EXPECT_EQ(run({"diff", "only-one.json"}).code, 2);   // one file
  EXPECT_EQ(run({"diff", "a", "b", "c"}).code, 2);     // three files
  EXPECT_EQ(run({"diff", "a", "b", "--tolerance", "-1"}).code, 2);
  const auto r = run({"diff", "/nonexistent/a.json", "/nonexistent/b.json"});
  EXPECT_EQ(r.code, 3);  // bad input files get their own exit code
  EXPECT_NE(r.err.find("cannot read input file"), std::string::npos);
}

}  // namespace
}  // namespace fpr::cli
