// Tests for the `fpr` suite-runner command core: command dispatch,
// option parsing/validation, and the list/run report contents. Driven
// in-process through run_cli so no child processes are needed.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.hpp"
#include "kernels/kernel.hpp"

namespace fpr::cli {
namespace {

struct CliOutcome {
  int code = 0;
  std::string out;
  std::string err;
};

CliOutcome run(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  CliOutcome r;
  r.code = run_cli(args, out, err);
  r.out = out.str();
  r.err = err.str();
  return r;
}

TEST(Cli, NoCommandIsUsageError) {
  const auto r = run({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("usage: fpr"), std::string::npos);
  EXPECT_TRUE(r.out.empty());
}

TEST(Cli, UnknownCommandIsUsageError) {
  const auto r = run({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command 'frobnicate'"), std::string::npos);
}

TEST(Cli, HelpPrintsUsageOnStdout) {
  const auto r = run({"help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("usage: fpr"), std::string::npos);
  EXPECT_TRUE(r.err.empty());
}

TEST(Cli, ListShowsEveryRegisteredKernel) {
  const auto r = run({"list"});
  EXPECT_EQ(r.code, 0);
  for (const auto& abbrev : kernels::all_abbrevs()) {
    EXPECT_NE(r.out.find(abbrev), std::string::npos) << abbrev;
  }
}

TEST(Cli, ListCsvIsMachineParsable) {
  const auto r = run({"list", "--csv"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("Abbrev,Name,Suite"), std::string::npos);
}

TEST(Cli, TablesRenderStaticPaperTables) {
  const auto r = run({"tables"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("Xeon Phi"), std::string::npos);
}

TEST(Cli, RunEmitsOpMixAndRooflineReport) {
  const auto r = run({"run", "--kernel", "BABL2", "--scale", "0.15",
                      "--repeats", "1"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("Operation mix"), std::string::npos);
  EXPECT_NE(r.out.find("FP64[Gop]"), std::string::npos);
  EXPECT_NE(r.out.find("Machine projection + roofline placement:"),
            std::string::npos);
  // All three paper machines appear in the projection table.
  for (const char* machine : {"KNL", "KNM", "BDW"}) {
    EXPECT_NE(r.out.find(machine), std::string::npos) << machine;
  }
}

TEST(Cli, RunAutoThreadsReportsParallelismSearch) {
  const auto r = run({"run", "--kernel", "BABL2", "--scale", "0.15",
                      "--repeats", "1", "--auto-threads"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("Parallelism search"), std::string::npos);
  // The padded ladder always explores at least {1, 2, 4}, independent
  // of the host's core count (the regression behind parallelism_ladder).
  for (const char* candidate : {"1:", "2:", "4:"}) {
    EXPECT_NE(r.out.find(candidate), std::string::npos) << candidate;
  }
}

TEST(Cli, RunAcceptsCommaSeparatedSubset) {
  const auto r = run({"run", "--kernel", "BABL2,MxIO", "--scale", "0.15",
                      "--repeats", "1"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("BABL2"), std::string::npos);
  EXPECT_NE(r.out.find("MxIO"), std::string::npos);
}

TEST(Cli, RunCsvKeepsStdoutMachineParsable) {
  const auto r = run({"run", "--kernel", "BABL2", "--scale", "0.15",
                      "--repeats", "1", "--csv"});
  EXPECT_EQ(r.code, 0) << r.err;
  // Section headings are diagnostics: stderr only, never in the CSV.
  EXPECT_EQ(r.out.find("Operation mix"), std::string::npos);
  EXPECT_NE(r.err.find("Operation mix"), std::string::npos);
  EXPECT_NE(r.out.find("Kernel,Machine,Bound"), std::string::npos);
}

TEST(Cli, RunRejectsUnknownKernel) {
  const auto r = run({"run", "--kernel", "NOPE"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown kernel 'NOPE'"), std::string::npos);
}

TEST(Cli, RunRejectsBadOptionValues) {
  EXPECT_EQ(run({"run", "--scale", "0"}).code, 2);
  EXPECT_EQ(run({"run", "--scale", "banana"}).code, 2);
  EXPECT_EQ(run({"run", "--repeats", "0"}).code, 2);
  EXPECT_EQ(run({"run", "--kernel"}).code, 2);   // missing value
  EXPECT_EQ(run({"run", "--kernel", ","}).code, 2);  // empty list
  EXPECT_EQ(run({"run", "--threads", "-1"}).code, 2);
  EXPECT_EQ(run({"run", "--threads", "99999999999999999999"}).code, 2);
  EXPECT_EQ(run({"run", "--wat"}).code, 2);
}

}  // namespace
}  // namespace fpr::cli
