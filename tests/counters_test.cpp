// Unit tests for the SDE-substitute: tallies, context sinks, the
// fallback registry, counted<T>, assay regions.
#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>

#include "common/execution_context.hpp"
#include "counters/assay.hpp"
#include "counters/counted.hpp"
#include "counters/registry.hpp"
#include "counters/sink.hpp"

namespace fpr::counters {
namespace {

class CountersTest : public ::testing::Test {
 protected:
  void SetUp() override { reset_all(); }
};

TEST_F(CountersTest, TallyArithmetic) {
  OpTally a{.fp64 = 10, .fp32 = 5, .int_ops = 3};
  OpTally b{.fp64 = 1, .fp32 = 2, .int_ops = 3};
  const OpTally sum = a + b;
  EXPECT_EQ(sum.fp64, 11u);
  EXPECT_EQ(sum.fp32, 7u);
  EXPECT_EQ(sum.int_ops, 6u);
  const OpTally diff = sum - b;
  EXPECT_EQ(diff, a);
}

// The underflow footgun: subtracting a larger tally must trip the debug
// assertion instead of wrapping to ~2^64 counts (a mis-nested assay
// would otherwise silently report absurd totals). Release builds keep
// the wrapping (the statement executes unchecked), which
// EXPECT_DEBUG_DEATH also accepts.
TEST_F(CountersTest, TallyDifferenceUnderflowDeath) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const OpTally small{.fp64 = 1};
  const OpTally big{.fp64 = 2};
  EXPECT_DEBUG_DEATH((void)(small - big), "underflow");
}

TEST_F(CountersTest, Shares) {
  OpTally t{.fp64 = 50, .fp32 = 25, .int_ops = 25};
  EXPECT_DOUBLE_EQ(t.fp64_share(), 0.5);
  EXPECT_DOUBLE_EQ(t.fp32_share(), 0.25);
  EXPECT_DOUBLE_EQ(t.int_share(), 0.25);
  EXPECT_EQ(t.fp_total(), 75u);
  OpTally empty;
  EXPECT_EQ(empty.fp64_share(), 0.0);
}

TEST_F(CountersTest, LocalTallyAccumulates) {
  add_fp64(5);
  add_fp32(3);
  add_int(2);
  add_branch(1);
  add_read_bytes(100);
  add_write_bytes(50);
  const OpTally snap = global_snapshot();
  EXPECT_GE(snap.fp64, 5u);
  EXPECT_GE(snap.fp32, 3u);
  EXPECT_GE(snap.int_ops, 2u);
  EXPECT_GE(snap.branches, 1u);
  EXPECT_GE(snap.bytes_read, 100u);
  EXPECT_GE(snap.bytes_written, 50u);
}

TEST_F(CountersTest, SnapshotSumsAcrossThreads) {
  reset_all();
  const OpTally before = global_snapshot();
  std::thread t1([] { add_fp64(100); });
  std::thread t2([] { add_fp64(200); });
  t1.join();
  t2.join();
  const OpTally after = global_snapshot();
  EXPECT_EQ(after.fp64 - before.fp64, 300u);
}

TEST_F(CountersTest, RetiredThreadCountsPreserved) {
  reset_all();
  std::thread t([] { add_int(77); });
  t.join();  // tally retired on thread exit
  EXPECT_GE(global_snapshot().int_ops, 77u);
}

TEST_F(CountersTest, CountedDoubleCountsFp64) {
  reset_all();
  const OpTally before = global_snapshot();
  counted<double> a = 2.0, b = 3.0;
  const counted<double> c = a * b + a - b / a;
  EXPECT_DOUBLE_EQ(c.value(), 2.0 * 3.0 + 2.0 - 3.0 / 2.0);
  const OpTally d = global_snapshot() - before;
  EXPECT_EQ(d.fp64, 4u);  // *, +, -, /
  EXPECT_EQ(d.fp32, 0u);
}

TEST_F(CountersTest, CountedFloatCountsFp32) {
  reset_all();
  const OpTally before = global_snapshot();
  counted<float> a = 1.5f, b = 2.0f;
  (void)(a + b);
  const OpTally d = global_snapshot() - before;
  EXPECT_EQ(d.fp32, 1u);
  EXPECT_EQ(d.fp64, 0u);
}

TEST_F(CountersTest, CountedIntCountsInt) {
  reset_all();
  const OpTally before = global_snapshot();
  counted<int> a = 6, b = 7;
  (void)(a * b);
  const OpTally d = global_snapshot() - before;
  EXPECT_EQ(d.int_ops, 1u);
}

TEST_F(CountersTest, CountedFmaCountsTwo) {
  reset_all();
  const OpTally before = global_snapshot();
  const auto r = fma(counted<double>(2), counted<double>(3),
                     counted<double>(4));
  EXPECT_DOUBLE_EQ(r.value(), 10.0);
  EXPECT_EQ((global_snapshot() - before).fp64, 2u);
}

TEST_F(CountersTest, CountedComparisonCountsBranch) {
  reset_all();
  const OpTally before = global_snapshot();
  counted<double> a = 1.0, b = 2.0;
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(a > b);
  EXPECT_TRUE(a <= b);
  EXPECT_FALSE(a >= b);
  EXPECT_FALSE(a == b);
  EXPECT_EQ((global_snapshot() - before).branches, 5u);
}

TEST_F(CountersTest, CountedSqrtAbsNegate) {
  reset_all();
  const OpTally before = global_snapshot();
  EXPECT_DOUBLE_EQ(sqrt(counted<double>(9.0)).value(), 3.0);
  EXPECT_DOUBLE_EQ(abs(counted<double>(-2.0)).value(), 2.0);
  EXPECT_DOUBLE_EQ((-counted<double>(5.0)).value(), -5.0);
  EXPECT_EQ((global_snapshot() - before).fp64, 3u);
}

TEST_F(CountersTest, RawExtraction) {
  EXPECT_DOUBLE_EQ(raw(counted<double>(1.5)), 1.5);
  EXPECT_DOUBLE_EQ(raw(1.5), 1.5);
  static_assert(std::is_same_v<scalar_t<counted<float>>, float>);
  static_assert(std::is_same_v<scalar_t<double>, double>);
}

TEST_F(CountersTest, AssayMeasuresDelta) {
  AssayRecorder rec;
  add_fp64(50);  // outside the region: must not count
  rec.start();
  add_fp64(7);
  rec.stop();
  add_fp64(50);  // after: must not count
  EXPECT_EQ(rec.ops().fp64, 7u);
  EXPECT_GT(rec.seconds(), 0.0);
  EXPECT_EQ(rec.intervals(), 1u);
}

TEST_F(CountersTest, AssayAccumulatesIntervals) {
  AssayRecorder rec;
  rec.start();
  add_int(3);
  rec.stop();
  rec.start();
  add_int(4);
  rec.stop();
  EXPECT_EQ(rec.ops().int_ops, 7u);
  EXPECT_EQ(rec.intervals(), 2u);
}

TEST_F(CountersTest, AssayDoubleStartThrows) {
  AssayRecorder rec;
  rec.start();
  EXPECT_THROW(rec.start(), std::logic_error);
  rec.stop();
  EXPECT_THROW(rec.stop(), std::logic_error);
}

TEST_F(CountersTest, ScopedAssayStopsOnException) {
  AssayRecorder rec;
  try {
    ScopedAssay scope(rec);
    add_fp64(11);
    throw std::runtime_error("solver blew up");
  } catch (const std::runtime_error&) {
  }
  EXPECT_FALSE(rec.running());
  EXPECT_EQ(rec.ops().fp64, 11u);
}

TEST_F(CountersTest, AssayCapturesContextWorkerThreads) {
  ExecutionContext ctx(4);
  AssayRecorder rec(&ctx.counters());
  rec.start();
  ctx.parallel_for(64, [](std::size_t lo, std::size_t hi, unsigned) {
    add_fp64(hi - lo);
  });
  rec.stop();
  EXPECT_EQ(rec.ops().fp64, 64u);
}

// Satellite fix: start()/stop() while the context has an in-flight
// parallel region used to be only a comment ("call ... while worker
// threads are quiescent") — now it throws instead of tearing the
// snapshot.
TEST_F(CountersTest, AssayInsideParallelRegionThrows) {
  ExecutionContext ctx(2);
  AssayRecorder rec(&ctx.counters());
  unsigned throws = 0;
  ctx.parallel_for(8, [&](std::size_t lo, std::size_t, unsigned) {
    if (lo != 0) return;  // probe once, from one worker
    try {
      rec.start();
    } catch (const std::logic_error&) {
      ++throws;  // lo==0 chunk runs exactly once; no sync needed
    }
  });
  EXPECT_EQ(throws, 1u);
  EXPECT_FALSE(rec.running());
  // Quiescent again: the same recorder works normally (Scope binds this
  // thread's serial counting to the sink the recorder snapshots).
  ExecutionContext::Scope scope(ctx);
  rec.start();
  add_int(3);
  rec.stop();
  EXPECT_EQ(rec.ops().int_ops, 3u);
}

TEST_F(CountersTest, ScopedCountingRoutesIntoSinkAndRestores) {
  CounterSink sink(2);
  reset_all();
  add_fp64(5);  // outside: fallback registry
  {
    ScopedCounting bind(sink, 1);
    add_fp64(7);  // inside: sink slot 1
  }
  add_fp64(11);  // restored: fallback again
  EXPECT_EQ(sink.slot(1).fp64, 7u);
  EXPECT_EQ(sink.slot(0).fp64, 0u);
  EXPECT_EQ(sink.snapshot().fp64, 7u);
  EXPECT_EQ(global_snapshot().fp64, 16u);
  sink.reset();
  EXPECT_EQ(sink.snapshot(), OpTally{});
}

TEST_F(CountersTest, ConcurrentSinksDoNotCrossContaminate) {
  CounterSink a(1), b(1);
  std::thread ta([&] {
    ScopedCounting bind(a, 0);
    for (int i = 0; i < 10'000; ++i) add_fp64(1);
  });
  std::thread tb([&] {
    ScopedCounting bind(b, 0);
    for (int i = 0; i < 10'000; ++i) add_int(1);
  });
  ta.join();
  tb.join();
  EXPECT_EQ(a.snapshot().fp64, 10'000u);
  EXPECT_EQ(a.snapshot().int_ops, 0u);
  EXPECT_EQ(b.snapshot().int_ops, 10'000u);
  EXPECT_EQ(b.snapshot().fp64, 0u);
}

TEST_F(CountersTest, ResetClearsEverything) {
  add_fp64(5);
  reset_all();
  const OpTally t = global_snapshot();
  EXPECT_EQ(t.fp64, 0u);
  EXPECT_EQ(t.int_ops, 0u);
}

}  // namespace
}  // namespace fpr::counters
