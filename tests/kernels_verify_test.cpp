// Kernel verification depth tests: each kernel's numerical result is
// checked against an independent oracle where one exists, beyond the
// kernel's built-in self-verification.
#include <gtest/gtest.h>

#include <cmath>

#include "counters/registry.hpp"
#include "kernels/kernel.hpp"

namespace fpr::kernels {
namespace {

RunConfig quick(double scale = 0.3) {
  RunConfig cfg;
  cfg.scale = scale;
  return cfg;
}

TEST(Verify, HplResidualGatesThrow) {
  // run() throws on verification failure; a clean run must not throw.
  EXPECT_NO_THROW(make("HPL")->run(quick()));
}

TEST(Verify, BabelStreamClosedForm) {
  const auto m = make("BABL2")->run(quick());
  EXPECT_TRUE(std::isfinite(m.checksum));
  EXPECT_NE(m.checksum, 0.0);
}

TEST(Verify, MiniTriExactCount) {
  // MiniTri verifies the triangle count against the closed form inside
  // run(); additionally its checksum (the count) must be stable across
  // thread configurations.
  const auto a = make("MTri")->run({.threads = 0, .scale = 0.3});
  const auto b = make("MTri")->run({.threads = 2, .scale = 0.3});
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_GT(a.checksum, 0.0);
}

TEST(Verify, FftParsevalAndRoundTrip) {
  EXPECT_NO_THROW(make("FFT")->run(quick()));
}

TEST(Verify, NtchemEnergyNegative) {
  const auto m = make("NTCh")->run(quick());
  EXPECT_LT(m.checksum, 0.0);  // MP2 correlation energy
}

TEST(Verify, ModylasFmmVsDirect) {
  const auto m = make("MDYL")->run(quick());
  EXPECT_LT(m.checksum, 0.35);  // max relative force error vs direct sum
}

TEST(Verify, NgsaAlignsPlantedReads) {
  const auto m = make("NGSA")->run(quick());
  EXPECT_GT(m.checksum, 0.0);  // number of correctly aligned reads
}

TEST(Verify, MvmcDeterminantConsistency) {
  EXPECT_NO_THROW(make("mVMC")->run(quick()));
}

TEST(Verify, SolversReduceResiduals) {
  // CG-family kernels carry residual ratios as checksums; all must have
  // converged substantially.
  for (const char* a : {"HPCG", "QCD"}) {
    const auto m = make(a)->run(quick());
    EXPECT_LT(m.checksum, 0.9) << a;
    EXPECT_GE(m.checksum, 0.0) << a;
  }
}

TEST(Verify, ChecksumDeterministicPerSeed) {
  for (const char* a : {"CoMD", "XSBn", "NICM"}) {
    auto k = make(a);
    const auto m1 = k->run(quick(0.25));
    const auto m2 = k->run(quick(0.25));
    EXPECT_EQ(m1.checksum, m2.checksum) << a;
  }
}

TEST(Verify, DifferentSeedDifferentChecksum) {
  auto k = make("XSBn");
  RunConfig a = quick(0.25);
  RunConfig b = quick(0.25);
  b.seed = 1234;
  EXPECT_NE(k->run(a).checksum, k->run(b).checksum);
}

TEST(Verify, WorkingSetsAtPaperScale) {
  // Spot-check the paper-scale working sets against the documented
  // inputs: HPL N=64512 is a ~33 GB matrix; BABL14 is 42 GiB of vectors;
  // XSBench's large H-M grid is ~5.6 GB.
  const auto hpl = make("HPL")->run(quick(0.2));
  EXPECT_NEAR(static_cast<double>(hpl.working_set_bytes), 64512.0 * 64512.0 * 8,
              1e9);
  const auto babl = make("BABL14")->run(quick(0.2));
  EXPECT_NEAR(static_cast<double>(babl.working_set_bytes),
              3.0 * 14 * 1024.0 * 1024 * 1024, 1e9);
  const auto xs = make("XSBn")->run(quick(0.2));
  EXPECT_NEAR(static_cast<double>(xs.working_set_bytes), 5.6e9, 1e8);
}

TEST(Verify, PaperScaleOpsInPaperBallpark) {
  // The extrapolated FP64 counts should be the same order of magnitude
  // as Table IV. HPL: 184192 Gop(D); tolerance one order.
  const auto hpl = make("HPL")->run(quick(0.25));
  const double gop = static_cast<double>(hpl.ops.fp64) / 1e9;
  EXPECT_GT(gop, 184191.0 * 0.5);
  EXPECT_LT(gop, 184191.0 * 2.0);
}

TEST(Verify, AssayExcludesSetup) {
  // host_seconds measures the assayed kernel only; it must be positive
  // and not absurdly large for the reduced inputs.
  for (const char* a : {"AMG", "MiFE", "SW4L"}) {
    const auto m = make(a)->run(quick(0.2));
    EXPECT_GT(m.host_seconds, 0.0) << a;
    EXPECT_LT(m.host_seconds, 60.0) << a;
  }
}

}  // namespace
}  // namespace fpr::kernels
