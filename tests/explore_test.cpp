// Tests for the what-if machine exploration: the ExploreEngine's
// determinism and scoring, and the explore-results JSON round trip.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "arch/machines.hpp"
#include "arch/variant.hpp"
#include "io/explore_json.hpp"
#include "study/explore.hpp"

namespace fpr::study {
namespace {

/// Small deterministic sweep: two kernels with opposite resource
/// appetites (dense FP64 vs pure stream) over hand-picked variants.
ExploreConfig small_config() {
  ExploreConfig cfg;
  cfg.base = "KNL";
  cfg.variants = {"drop-fp64-vec", "mcdram-bw=1.5", "tdp=0.85"};
  cfg.kernels = {"HPL", "BABL2"};
  cfg.scale = 0.15;
  cfg.threads = 1;
  cfg.trace_refs = 60'000;
  return cfg;
}

const ExploreResults& small_results() {
  static const ExploreResults r = ExploreEngine(small_config()).run();
  return r;
}

TEST(ExploreEngine, BaselineScoresAreUnity) {
  const auto& r = small_results();
  EXPECT_EQ(r.base, "KNL");
  EXPECT_EQ(r.baseline.variant.spec, "");
  EXPECT_EQ(r.baseline.name(), "KNL");
  EXPECT_DOUBLE_EQ(r.baseline.geomean_time_ratio, 1.0);
  EXPECT_DOUBLE_EQ(r.baseline.geomean_energy_ratio, 1.0);
  for (const auto& k : r.baseline.kernels) {
    EXPECT_DOUBLE_EQ(k.time_ratio, 1.0) << k.abbrev;
    EXPECT_DOUBLE_EQ(k.energy_ratio, 1.0) << k.abbrev;
  }
}

TEST(ExploreEngine, VariantsCarryDerivedMachines) {
  const auto& r = small_results();
  ASSERT_EQ(r.variants.size(), 3u);
  EXPECT_EQ(r.variants[0].name(), "KNL+drop-fp64-vec");
  EXPECT_EQ(r.variants[1].name(), "KNL+mcdram-bw=1.5");
  EXPECT_EQ(r.variants[2].name(), "KNL+tdp=0.85");
  for (const auto& v : r.variants) {
    ASSERT_EQ(v.kernels.size(), r.baseline.kernels.size());
    for (std::size_t i = 0; i < v.kernels.size(); ++i) {
      EXPECT_EQ(v.kernels[i].abbrev, r.baseline.kernels[i].abbrev);
    }
  }
  EXPECT_NE(r.find("KNL+tdp=0.85"), nullptr);
  EXPECT_EQ(r.find("KNL"), &r.baseline);
  EXPECT_EQ(r.find("KNL+nope"), nullptr);
}

TEST(ExploreEngine, ScoringTracksTheResourceStory) {
  // The Sec. VII sanity checks: removing vector FP64 must hurt HPL but
  // not the stream; more MCDRAM bandwidth must help the stream; a TDP
  // cut changes energy, never time.
  const auto& r = small_results();
  const auto* no_fp64 = r.find("KNL+drop-fp64-vec");
  const auto* more_bw = r.find("KNL+mcdram-bw=1.5");
  const auto* less_tdp = r.find("KNL+tdp=0.85");
  ASSERT_TRUE(no_fp64 && more_bw && less_tdp);

  auto kernel = [](const VariantScore& v, const std::string& abbrev) {
    for (const auto& k : v.kernels) {
      if (k.abbrev == abbrev) return k;
    }
    throw std::logic_error("no kernel " + abbrev);
  };
  EXPECT_GT(kernel(*no_fp64, "HPL").time_ratio, 1.5);
  EXPECT_NEAR(kernel(*no_fp64, "BABL2").time_ratio, 1.0, 0.05);
  EXPECT_LT(kernel(*more_bw, "BABL2").time_ratio, 0.9);
  EXPECT_GT(no_fp64->geomean_time_ratio, 1.0);
  EXPECT_LT(more_bw->geomean_time_ratio, 1.0);
  EXPECT_DOUBLE_EQ(less_tdp->geomean_time_ratio, 1.0);
  EXPECT_NEAR(less_tdp->geomean_energy_ratio, 0.85, 1e-9);
  // FP64 %-of-peak: the same achieved flops against a far smaller peak.
  EXPECT_GT(no_fp64->mean_fp64_pct_peak, r.baseline.mean_fp64_pct_peak);
}

TEST(ExploreEngine, ByteIdenticalAcrossJobCounts) {
  auto run_dump = [](unsigned jobs, unsigned kernel_jobs) {
    ExploreConfig cfg = small_config();
    cfg.jobs = jobs;
    cfg.kernel_jobs = kernel_jobs;
    return io::dump(io::to_json(ExploreEngine(cfg).run()));
  };
  const std::string serial = run_dump(1, 1);
  EXPECT_EQ(serial, run_dump(4, 1));
  EXPECT_EQ(serial, run_dump(1, 2));
  EXPECT_EQ(serial, run_dump(8, 2));
}

TEST(ExploreEngine, SharesHierarchyReplaysAcrossVariants) {
  // Bandwidth/TDP/FPU variants leave the cache geometry untouched, so
  // the engine-wide SimCache must serve their stages from the base
  // machine's simulations: with 4 grid machines but only one geometry,
  // the sweep simulates no more than the baseline alone would.
  ExploreEngine engine(small_config());
  (void)engine.run();
  const auto& st = engine.stats();
  EXPECT_EQ(st.kernel_runs, 2u);
  EXPECT_EQ(st.machine_evals, 8u);  // 2 kernels x (1 base + 3 variants)
  EXPECT_GT(st.sim_hits, 0u);
  EXPECT_LE(st.sim_misses, 2u);  // one distinct geometry per kernel
}

TEST(ExploreEngine, RejectsBadConfigs) {
  {
    ExploreConfig cfg = small_config();
    cfg.base = "EPYC";
    EXPECT_THROW((void)ExploreEngine(cfg).run(), std::invalid_argument);
  }
  {
    ExploreConfig cfg = small_config();
    cfg.variants = {"dram-bw=1.5", "dram-bw=1.5"};
    EXPECT_THROW((void)ExploreEngine(cfg).run(), std::invalid_argument);
  }
  {
    ExploreConfig cfg = small_config();
    cfg.variants = {"mcdram-bw=0.01"};  // DDR would outrun MCDRAM
    EXPECT_THROW((void)ExploreEngine(cfg).run(), std::invalid_argument);
  }
}

TEST(ExploreEngine, RejectsCanonicallyEquivalentVariants) {
  // Dedup is by resolved machine, not by spelling: order-equivalent
  // compositions and factor respellings are duplicates too, and the
  // error names both colliding spellings.
  {
    ExploreConfig cfg = small_config();
    cfg.variants = {"cores=2+tdp=0.9", "tdp=0.9+cores=2"};
    try {
      (void)ExploreEngine(cfg).run();
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("tdp=0.9+cores=2"), std::string::npos) << what;
      EXPECT_NE(what.find("cores=2+tdp=0.9"), std::string::npos) << what;
    }
  }
  {
    ExploreConfig cfg = small_config();
    cfg.variants = {"dram-bw=1.5", "dram-bw=1.50"};
    EXPECT_THROW((void)ExploreEngine(cfg).run(), std::invalid_argument);
  }
  {
    // A spec that merely re-derives the base machine collides with it.
    ExploreConfig cfg = small_config();
    cfg.variants = {"dram-bw=1.0"};
    EXPECT_THROW((void)ExploreEngine(cfg).run(), std::invalid_argument);
  }
}

TEST(ExploreEngine, DefaultGridIsTheBuiltinOne) {
  ExploreConfig cfg = small_config();
  cfg.variants.clear();
  cfg.kernels = {"BABL2"};
  const auto r = ExploreEngine(cfg).run();
  const auto specs = arch::builtin_variant_specs(arch::knl());
  ASSERT_EQ(r.variants.size(), specs.size());
  EXPECT_GE(r.variants.size(), 6u);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(r.variants[i].variant.spec, specs[i]);
  }
}

TEST(ExploreJson, RoundTripIsLossless) {
  const auto& r = small_results();
  const auto doc = io::to_json(r);
  const std::string text = io::dump(doc);
  const auto back = io::explore_from_json(io::parse(text));
  // Fixed point: re-serializing the parsed results reproduces the text
  // byte for byte (doubles round-trip exactly, CpuSpecs re-derive).
  EXPECT_EQ(io::dump(io::to_json(back)), text);
  // The rehydrated variants are full machines again.
  ASSERT_EQ(back.variants.size(), r.variants.size());
  EXPECT_DOUBLE_EQ(back.variants[1].variant.cpu.mcdram_bw_gbs,
                   arch::knl().mcdram_bw_gbs * 1.5);
}

TEST(ExploreJson, RejectsForeignAndInconsistentDocuments) {
  EXPECT_THROW(io::explore_from_json(io::parse("{\"format\":\"x\"}")),
               io::JsonError);
  auto doc = io::to_json(small_results());
  doc.set("version", io::kExploreVersion + 1);
  EXPECT_THROW(io::explore_from_json(doc), io::JsonError);
}

TEST(ExploreJson, DetectsExploreDocuments) {
  EXPECT_TRUE(io::is_explore_document(io::to_json(small_results())));
  EXPECT_FALSE(io::is_explore_document(io::parse("{\"format\":\"other\"}")));
  EXPECT_FALSE(io::is_explore_document(io::parse("[1,2]")));
}

}  // namespace
}  // namespace fpr::study
