// End-to-end integration: run a representative study and assert the
// paper's headline findings hold in our reproduction (shape, not
// absolute numbers — see EXPERIMENTS.md).
#include <gtest/gtest.h>

#include <algorithm>

#include "study/figures.hpp"
#include "study/paper_data.hpp"
#include "study/study.hpp"

namespace fpr::study {
namespace {

// Representative cross-section of the suite: every compute pattern and
// both precisions, including the reference benchmarks.
StudyConfig integration_config() {
  StudyConfig cfg;
  cfg.scale = 0.2;
  cfg.trace_refs = 120'000;
  cfg.kernels = {"AMG",  "CNDL", "CoMD", "MiFE", "MTri",  "NekB",
                 "SW4L", "XSBn", "NICM", "FFB",  "QCD",   "HPL",
                 "HPCG", "BABL2", "BABL14"};
  return cfg;
}

class IntegrationTest : public ::testing::Test {
 protected:
  static const StudyResults& results() {
    static const StudyResults r = run_study(integration_config());
    return r;
  }
};

TEST_F(IntegrationTest, HeadlineClaim_KnmMatchesKnlDespiteLessFp64) {
  // Conclusion of the paper: "no significant performance difference
  // between these two processors" for the HPC proxies, despite KNL
  // having 1.54x the FP64 peak. Allow 25% either way for all proxies
  // except the FP32 special case (CANDLE gets *faster* on KNM).
  int comparable = 0, total = 0;
  for (const auto& k : results().kernels) {
    if (k.info.suite == kernels::Suite::reference) continue;
    ++total;
    const double ratio =
        k.on("KNM").perf.seconds / k.on("KNL").perf.seconds;
    if (ratio < 1.25) ++comparable;  // KNM not meaningfully slower
  }
  EXPECT_GE(comparable, total - 1)
      << "KNM should be within 25% of KNL for nearly all proxies";
}

TEST_F(IntegrationTest, HplShowsTheFp64Gap) {
  // The only place the FP64 silicon should matter is the dense FP64
  // compute-bound reference... and even there the paper measured near-
  // parity (145.4 vs 146.6 s) because KNL cannot feed both VPUs. Our
  // model must keep them within 25%.
  const auto* hpl = results().find("HPL");
  const double ratio =
      hpl->on("KNM").perf.seconds / hpl->on("KNL").perf.seconds;
  EXPECT_GT(ratio, 0.75);
  EXPECT_LT(ratio, 1.35);
}

TEST_F(IntegrationTest, CandleBenefitsFromVnni) {
  // Sec. IV-B: "CANDLE benefits from VNNI units in mixed precision."
  const auto* cndl = results().find("CNDL");
  EXPECT_LT(cndl->on("KNM").perf.seconds, cndl->on("KNL").perf.seconds);
}

TEST_F(IntegrationTest, FewProxiesAreComputeBound) {
  // Sec. V-A: "only six out of 20 proxy-/mini-apps appear to be
  // compute-bound" — a statement about the BDW reference system (on the
  // Phis the MCDRAM shifts several proxies toward compute-bound, which
  // Fig. 6 shows explicitly). Compute-bound must not be the majority.
  // Our classifier takes the max roofline term; the paper's VTune
  // "memory-bound %" metric draws the line elsewhere, so marginal
  // kernels (NekB, NICM) can land on either side. The robust claims the
  // paper's conclusion rests on — FP efficiency below 10-15% and KNM
  // matching KNL — are asserted in the other tests; here we only
  // require that compute-bound is not an overwhelming majority.
  int compute_bound = 0, total = 0;
  for (const auto& k : results().kernels) {
    if (k.info.suite == kernels::Suite::reference) continue;
    ++total;
    if (k.on("BDW").perf.bound == model::Bound::compute) ++compute_bound;
  }
  EXPECT_LE(compute_bound, 2 * total / 3);
}

TEST_F(IntegrationTest, LowFpEfficiencyAcrossTheBoard) {
  // Sec. IV-B: all proxies except HPL below ~21.5% (BDW), 10.5% (KNL),
  // 15.1% (KNM) FP efficiency. Allow modest headroom on the bounds.
  for (const auto& k : results().kernels) {
    if (k.info.abbrev == "HPL" ||
        k.info.suite == kernels::Suite::reference) {
      continue;
    }
    if (k.meas.ops.fp_total() == 0) continue;
    EXPECT_LT(k.on("KNL").perf.pct_of_peak, 20.0) << k.info.abbrev;
    EXPECT_LT(k.on("BDW").perf.pct_of_peak, 35.0) << k.info.abbrev;
  }
}

TEST_F(IntegrationTest, McdramBoostsBandwidthHungryApps) {
  // Sec. IV-C: AMG-class apps get a throughput boost from MCDRAM vs BDW.
  const auto* amg = results().find("AMG");
  EXPECT_GT(amg->on("KNL").perf.mem_throughput_gbs,
            amg->on("BDW").perf.mem_throughput_gbs);
}

TEST_F(IntegrationTest, Babl14DropsTowardDramBandwidth) {
  // Fig. 4: BABL2 enjoys MCDRAM; BABL14 falls to near-DRAM throughput.
  const auto* b2 = results().find("BABL2");
  const auto* b14 = results().find("BABL14");
  EXPECT_GT(b2->on("KNL").perf.mem_throughput_gbs,
            b14->on("KNL").perf.mem_throughput_gbs * 2.0);
}

TEST_F(IntegrationTest, HpcgLatencyBoundOnPhi) {
  // Sec. IV-C: HPCG cannot use the bandwidth; it is latency-limited.
  const auto* hpcg = results().find("HPCG");
  const auto& knl = hpcg->on("KNL").perf;
  EXPECT_TRUE(knl.bound == model::Bound::latency ||
              knl.t_lat > 0.3 * knl.seconds);
}

TEST_F(IntegrationTest, FrequencyScalingSeparatesClasses) {
  // Fig. 6: HPL scales with frequency; BABL2 hardly moves.
  const auto* hpl = results().find("HPL");
  const auto* babl = results().find("BABL2");
  const auto& hpl_sweep = hpl->on("KNM").freq_sweep;
  const auto& babl_sweep = babl->on("KNM").freq_sweep;
  const double hpl_gain = hpl_sweep.front().second.seconds /
                          hpl_sweep.back().second.seconds;
  const double babl_gain = babl_sweep.front().second.seconds /
                           babl_sweep.back().second.seconds;
  EXPECT_GT(hpl_gain, 1.4);   // ~1.6/1.0 frequency ratio
  EXPECT_LT(babl_gain, 1.15);
}

TEST_F(IntegrationTest, SpeedupShapeMatchesPaperDirection) {
  // For kernels in this subset, our KNL-vs-BDW speedup must agree with
  // the paper's direction (faster/slower) — Table IV ground truth.
  PaperDerived derived;
  int agree = 0, total = 0;
  for (const auto& k : results().kernels) {
    const auto* row = paper_row(k.info.abbrev);
    if (row == nullptr) continue;
    ++total;
    const double paper = derived.speedup_knl_vs_bdw(*row);
    const double ours =
        k.on("BDW").perf.seconds / k.on("KNL").perf.seconds;
    if ((paper > 1.0) == (ours > 1.0) || std::abs(paper - 1.0) < 0.25 ||
        std::abs(ours - 1.0) < 0.25) {
      ++agree;
    }
  }
  EXPECT_GE(agree, total * 7 / 10)
      << "KNL-vs-BDW direction should match the paper for most proxies";
}

TEST_F(IntegrationTest, AllFiguresRenderNonEmpty) {
  const auto& r = results();
  std::ostringstream os;
  for (const auto& t :
       {fig1_opmix(r), fig2_relative_flops(r), fig2_pct_of_peak(r),
        fig3_speedup(r), fig4_membw(r), fig5_roofline(r),
        fig6_freqscale(r, "KNL"), fig6_freqscale(r, "KNM"),
        fig6_freqscale(r, "BDW"), fig7_site_utilization(r),
        table4_metrics(r, "KNL"), table4_metrics(r, "KNM"),
        table4_metrics(r, "BDW")}) {
    EXPECT_GT(t.num_rows(), 0u);
    t.print(os);
    t.print_csv(os);
  }
  EXPECT_GT(os.str().size(), 1000u);
}

}  // namespace
}  // namespace fpr::study
