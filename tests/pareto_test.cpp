// Tests for the incremental design-space machinery: dominance and the
// non-dominated filter, the ParetoEngine's archive/budget/determinism
// invariants, VariantEvaluator-vs-ExploreEngine equality, the
// geomean_ratio guard, and the pareto-results JSON round trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/machines.hpp"
#include "arch/variant.hpp"
#include "io/explore_json.hpp"
#include "io/pareto_json.hpp"
#include "study/explore.hpp"
#include "study/pareto.hpp"
#include "study/variant_eval.hpp"

namespace fpr::study {
namespace {

/// Small deterministic search: two kernels with opposite resource
/// appetites, shallow composition, few explorer walks.
ParetoConfig small_config() {
  ParetoConfig cfg;
  cfg.base = "KNL";
  cfg.kernels = {"HPL", "BABL2"};
  cfg.scale = 0.15;
  cfg.threads = 1;
  cfg.trace_refs = 60'000;
  cfg.rounds = 2;
  cfg.explorers = 8;
  cfg.max_depth = 3;
  return cfg;
}

ParetoResults run_small(unsigned jobs = 1) {
  ParetoConfig cfg = small_config();
  cfg.jobs = jobs;
  return ParetoEngine(cfg).run();
}

TEST(Dominance, SemanticsAreStrict) {
  EXPECT_TRUE(dominates({1.0, 1.0}, {2.0, 1.0}));
  EXPECT_TRUE(dominates({1.0, 0.5}, {2.0, 1.0}));
  EXPECT_FALSE(dominates({1.0, 1.0}, {1.0, 1.0}));  // ties dominate nothing
  EXPECT_FALSE(dominates({2.0, 1.0}, {1.0, 1.0}));
  EXPECT_FALSE(dominates({0.5, 2.0}, {2.0, 0.5}));  // incomparable
}

TEST(Dominance, NonDominatedSetInvariantToVisitOrder) {
  const std::vector<std::vector<double>> pts = {
      {1.0, 4.0}, {2.0, 3.0}, {3.0, 3.5},  // dominated by {2,3}
      {4.0, 1.0}, {2.0, 3.0},              // duplicate of a frontier point
      {5.0, 5.0},                          // dominated by everything
  };
  // The kept *set of points* must be the same for every permutation.
  auto kept_points = [&](const std::vector<std::size_t>& order) {
    std::vector<std::vector<double>> permuted;
    for (const std::size_t i : order) permuted.push_back(pts[i]);
    std::vector<std::vector<double>> kept;
    for (const std::size_t i : non_dominated(permuted)) {
      kept.push_back(permuted[i]);
    }
    std::sort(kept.begin(), kept.end());
    return kept;
  };
  std::vector<std::size_t> order = {0, 1, 2, 3, 4, 5};
  const auto reference = kept_points(order);
  EXPECT_EQ(reference.size(), 4u);  // {1,4}, {2,3} x2, {4,1}
  while (std::next_permutation(order.begin(), order.end())) {
    ASSERT_EQ(kept_points(order), reference);
  }
}

TEST(GeomeanRatio, GuardsAgainstZeroAndNonFinite) {
  EXPECT_DOUBLE_EQ(geomean_ratio({1.0, 1.0, 1.0}), 1.0);
  EXPECT_NEAR(geomean_ratio({2.0, 0.5}), 1.0, 1e-12);
  // std::log(0) == -inf would silently zero the whole geomean; the model
  // must refuse instead.
  EXPECT_THROW((void)geomean_ratio({1.0, 0.0, 2.0}), std::domain_error);
  EXPECT_THROW((void)geomean_ratio({-1.0}), std::domain_error);
  EXPECT_THROW(
      (void)geomean_ratio({std::numeric_limits<double>::quiet_NaN()}),
      std::domain_error);
  EXPECT_THROW((void)geomean_ratio({std::numeric_limits<double>::infinity()}),
               std::domain_error);
  try {
    (void)geomean_ratio({1.0, 0.0});
    FAIL() << "expected std::domain_error";
  } catch (const std::domain_error& e) {
    EXPECT_NE(std::string(e.what()).find("ratio #1"), std::string::npos);
  }
}

TEST(ParetoEngine, ArchiveNeverContainsADominatedPoint) {
  const auto r = run_small();
  ASSERT_GE(r.frontier.size(), 2u);
  for (std::size_t i = 0; i < r.frontier.size(); ++i) {
    for (std::size_t j = 0; j < r.frontier.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(
          dominates(r.frontier[i].objectives, r.frontier[j].objectives))
          << r.frontier[i].name() << " dominates " << r.frontier[j].name();
    }
  }
}

TEST(ParetoEngine, FrontierRespectsTheBudgetBox) {
  const auto r = run_small();
  for (const auto& p : r.frontier) {
    EXPECT_TRUE(arch::within_budget(p.budget, r.budget)) << p.name();
    // Recorded budget must match a fresh computation from the spec.
    const auto v = arch::derive_variant(arch::knl(), p.spec());
    const auto budget = arch::variant_budget(v.cpu, arch::knl());
    EXPECT_DOUBLE_EQ(p.budget.area_ratio, budget.area_ratio) << p.name();
    EXPECT_DOUBLE_EQ(p.budget.tdp_ratio, budget.tdp_ratio) << p.name();
  }
}

TEST(ParetoEngine, ByteIdenticalAcrossJobCountsAndRuns) {
  const std::string serial = io::dump(io::to_json(run_small(1)));
  EXPECT_EQ(serial, io::dump(io::to_json(run_small(1))));  // rerun
  EXPECT_EQ(serial, io::dump(io::to_json(run_small(2))));
  EXPECT_EQ(serial, io::dump(io::to_json(run_small(8))));
}

TEST(ParetoEngine, StatsAccountForTheCandidateStream) {
  ParetoEngine engine(small_config());
  const auto r = engine.run();
  const auto& st = engine.stats();
  EXPECT_EQ(st.generated,
            st.deduped + st.invalid + st.over_budget + st.evaluated);
  EXPECT_GT(st.deduped, 0u);  // composed specs collide canonically
  EXPECT_GT(st.over_budget, 0u);
  EXPECT_GE(st.evaluated, r.frontier.size());
  EXPECT_EQ(st.evaluator.evaluations, st.evaluated);
  EXPECT_EQ(st.measurement.kernel_runs, 2u);  // measured exactly once
  EXPECT_GT(st.evaluator.memo_hits, 0u);
}

TEST(ParetoEngine, RejectsDegenerateConfigs) {
  {
    ParetoConfig cfg = small_config();
    cfg.base = "EPYC";
    EXPECT_THROW((void)ParetoEngine(cfg).run(), std::invalid_argument);
  }
  {
    ParetoConfig cfg = small_config();
    cfg.objectives = {};
    EXPECT_THROW((void)ParetoEngine(cfg).run(), std::invalid_argument);
  }
  {
    ParetoConfig cfg = small_config();
    cfg.objectives = {Objective::time, Objective::time};
    EXPECT_THROW((void)ParetoEngine(cfg).run(), std::invalid_argument);
  }
  {
    ParetoConfig cfg = small_config();
    cfg.max_depth = 0;
    EXPECT_THROW((void)ParetoEngine(cfg).run(), std::invalid_argument);
  }
}

TEST(VariantEvaluator, MatchesTheExploreEngineOnTheGoldenConfig) {
  // The rewired ExploreEngine must price every variant exactly as a
  // stand-alone evaluator does — same measurements, same arithmetic.
  const ExploreConfig gc = golden_explore_config();
  const auto explored = ExploreEngine(gc).run();

  arch::CpuSpec base;
  for (auto& cpu : arch::all_machines()) {
    if (cpu.short_name == gc.base) base = std::move(cpu);
  }
  VariantEvaluator::Config ec;
  ec.kernels = gc.kernels;
  ec.scale = gc.scale;
  ec.threads = gc.threads;
  ec.trace_refs = gc.trace_refs;
  ec.seed = gc.seed;
  const VariantEvaluator evaluator(base, ec);

  auto dump = [](const VariantScore& s) {
    return io::dump(io::to_json(s));
  };
  EXPECT_EQ(dump(evaluator.evaluate({"", base})), dump(explored.baseline));
  for (const auto& v : explored.variants) {
    const auto score = evaluator.evaluate(
        arch::derive_variant(base, v.variant.spec));
    EXPECT_EQ(dump(score), dump(v)) << v.name();
  }
}

TEST(VariantEvaluator, MemoizesProfilesByMemoryModel) {
  arch::CpuSpec base = arch::knl();
  VariantEvaluator::Config ec;
  ec.kernels = {"BABL2"};
  ec.scale = 0.15;
  ec.threads = 1;
  ec.trace_refs = 60'000;
  const VariantEvaluator evaluator(base, ec);
  // TDP respins keep the memory model: both serve from the primed base
  // profiles. A bandwidth change is a new digest, computed exactly once.
  (void)evaluator.evaluate(arch::derive_variant(base, "tdp=0.85"));
  (void)evaluator.evaluate(arch::derive_variant(base, "tdp=0.9"));
  EXPECT_EQ(evaluator.stats().memo_misses, 0u);
  (void)evaluator.evaluate(arch::derive_variant(base, "mcdram-bw=1.5"));
  (void)evaluator.evaluate(arch::derive_variant(base, "mcdram-bw=1.5"));
  const auto st = evaluator.stats();
  EXPECT_EQ(st.memo_misses, 1u);
  EXPECT_EQ(st.memo_hits, 3u);
  EXPECT_EQ(st.evaluations, 4u);
}

TEST(ParetoJson, RoundTripIsLossless) {
  const auto r = run_small();
  const auto doc = io::to_json(r);
  const std::string text = io::dump(doc);
  const auto back = io::pareto_from_json(io::parse(text));
  EXPECT_EQ(io::dump(io::to_json(back)), text);
  ASSERT_EQ(back.frontier.size(), r.frontier.size());
  EXPECT_EQ(back.objectives, r.objectives);
}

TEST(ParetoJson, RejectsForeignAndInconsistentDocuments) {
  EXPECT_THROW(io::pareto_from_json(io::parse("{\"format\":\"x\"}")),
               io::JsonError);
  auto doc = io::to_json(run_small());
  auto stale = doc;
  stale.set("version", io::kParetoVersion + 1);
  EXPECT_THROW(io::pareto_from_json(stale), io::JsonError);
  auto bad_objective = doc;
  io::Json unknown = io::Json::array();
  unknown.push(io::Json("throughput"));
  bad_objective.set("objectives", std::move(unknown));
  EXPECT_THROW(io::pareto_from_json(bad_objective), io::JsonError);
  // Valid names, wrong arity: frontier points carry three values.
  auto short_vector = doc;
  io::Json only_time = io::Json::array();
  only_time.push(io::Json("time"));
  short_vector.set("objectives", std::move(only_time));
  EXPECT_THROW(io::pareto_from_json(short_vector), io::JsonError);
}

TEST(ParetoJson, DetectsParetoDocuments) {
  EXPECT_TRUE(io::is_pareto_document(io::to_json(run_small())));
  EXPECT_FALSE(io::is_pareto_document(io::parse("{\"format\":\"other\"}")));
  EXPECT_FALSE(io::is_pareto_document(io::parse("[1,2]")));
}

}  // namespace
}  // namespace fpr::study
