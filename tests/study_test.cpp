// Tests for the study pipeline, methodology helpers, figure generators,
// paper data, and the Fig. 7 domain analysis.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "study/domain_util.hpp"
#include "study/figures.hpp"
#include "study/methodology.hpp"
#include "study/paper_data.hpp"
#include "study/study.hpp"

namespace fpr::study {
namespace {

// A small kernel subset keeps study tests fast while covering every
// workload class: stencil, dense, irregular, stream, I/O.
StudyConfig small_config() {
  StudyConfig cfg;
  cfg.scale = 0.2;
  cfg.trace_refs = 120'000;
  cfg.kernels = {"AMG", "HPL", "XSBn", "BABL2", "MxIO", "NGSA"};
  return cfg;
}

class StudyTest : public ::testing::Test {
 protected:
  static const StudyResults& results() {
    static const StudyResults r = run_study(small_config());
    return r;
  }
};

TEST_F(StudyTest, RunsRequestedSubsetInOrder) {
  ASSERT_EQ(results().kernels.size(), 6u);
  EXPECT_EQ(results().kernels[0].info.abbrev, "AMG");  // paper order
  EXPECT_NE(results().find("HPL"), nullptr);
  EXPECT_EQ(results().find("QCD"), nullptr);  // not requested
}

TEST_F(StudyTest, EveryKernelHasThreeMachines) {
  for (const auto& k : results().kernels) {
    ASSERT_EQ(k.machines.size(), 3u);
    EXPECT_EQ(k.machines[0].cpu.short_name, "KNL");
    EXPECT_EQ(k.machines[1].cpu.short_name, "KNM");
    EXPECT_EQ(k.machines[2].cpu.short_name, "BDW");
    EXPECT_THROW((void)k.on("XXX"), std::invalid_argument);
  }
}

TEST_F(StudyTest, FrequencySweepPopulated) {
  const auto* hpl = results().find("HPL");
  ASSERT_NE(hpl, nullptr);
  for (const auto& m : hpl->machines) {
    EXPECT_EQ(m.freq_sweep.size(), m.cpu.frequency_sweep().size());
    // Times must be non-increasing with frequency (compute or not).
    for (std::size_t i = 1; i < m.freq_sweep.size(); ++i) {
      EXPECT_LE(m.freq_sweep[i].second.seconds,
                m.freq_sweep[i - 1].second.seconds * 1.0001);
    }
  }
}

TEST_F(StudyTest, HplComputeBoundEverywhere) {
  const auto* hpl = results().find("HPL");
  for (const auto& m : hpl->machines) {
    EXPECT_EQ(m.perf.bound, model::Bound::compute) << m.cpu.short_name;
  }
}

TEST_F(StudyTest, HplFasterOnPhis) {
  const auto* hpl = results().find("HPL");
  EXPECT_LT(hpl->on("KNL").perf.seconds, hpl->on("BDW").perf.seconds);
  EXPECT_LT(hpl->on("KNM").perf.seconds, hpl->on("BDW").perf.seconds);
}

TEST_F(StudyTest, StreamBandwidthBoundAndMcdramHelps) {
  const auto* babl = results().find("BABL2");
  EXPECT_EQ(babl->on("KNL").perf.bound, model::Bound::bandwidth);
  // MCDRAM-resident stream: Phi throughput far above BDW's DRAM.
  EXPECT_GT(babl->on("KNL").perf.mem_throughput_gbs,
            babl->on("BDW").perf.mem_throughput_gbs * 1.5);
}

TEST_F(StudyTest, NgsaSlowerOnPhi) {
  // The paper's standout: NGSA collapses on the narrow Phi cores.
  const auto* ngsa = results().find("NGSA");
  EXPECT_GT(ngsa->on("KNL").perf.seconds,
            ngsa->on("BDW").perf.seconds * 2.0);
}

TEST_F(StudyTest, MacsioIoBoundAndFrequencySensitive) {
  const auto* mxio = results().find("MxIO");
  EXPECT_EQ(mxio->on("KNL").perf.bound, model::Bound::io);
  const auto& sweep = mxio->on("KNL").freq_sweep;
  // Paper Sec. IV-E: MACSio's write speed scales with frequency.
  EXPECT_GT(sweep.front().second.seconds / sweep.back().second.seconds,
            1.15);
}

TEST_F(StudyTest, FiguresHaveExpectedShape) {
  const auto& r = results();
  // BABL2 is a reference-stream row: excluded from the proxy figures.
  EXPECT_EQ(fig1_opmix(r).num_rows(), 5u * 3u);
  // Fig. 2 additionally filters MxIO and NGSA: {AMG, HPL, XSBn} remain.
  EXPECT_EQ(fig2_relative_flops(r).num_rows(), 3u);
  EXPECT_EQ(fig2_pct_of_peak(r).num_rows(), 3u);
  EXPECT_EQ(fig3_speedup(r).num_rows(), 5u);  // BABL excluded
  EXPECT_EQ(fig4_membw(r).num_rows(), 6u);
  EXPECT_EQ(fig5_roofline(r).num_rows(), 3u);
  EXPECT_EQ(fig6_freqscale(r, "KNL").num_rows(), 5u);
  EXPECT_EQ(fig6_freqscale(r, "KNL").num_cols(), 1u + 5u);
  EXPECT_EQ(table4_metrics(r, "KNM").num_rows(), 5u);
  EXPECT_THROW(fig6_freqscale(r, "???"), std::invalid_argument);
}

TEST_F(StudyTest, StaticTablesRender) {
  std::ostringstream os;
  table1_hardware().print(os);
  table2_categorization().print(os);
  table3_metrics().print(os);
  EXPECT_NE(os.str().find("Xeon Phi"), std::string::npos);
  EXPECT_NE(os.str().find("2662"), std::string::npos);  // KNL FP64 peak
  EXPECT_EQ(table2_categorization().num_rows(), 20u);   // 12 ECP + 8 RIKEN
}

TEST_F(StudyTest, Fig7ProjectionInPaperBallpark) {
  const auto& sites = site_utilization();
  EXPECT_EQ(sites.size(), 8u);
  for (const auto& s : sites) EXPECT_NEAR(s.total(), 1.0, 0.05);
  // Full-suite projections are exercised in the bench; here: the
  // projection function stays within (0, 100) and the figure renders.
  const auto table = fig7_site_utilization(results());
  EXPECT_EQ(table.num_rows(), 8u);
}

TEST(PaperData, Table4Transcription) {
  ASSERT_EQ(table4().size(), 22u);
  const auto* hpl = paper_row("HPL");
  ASSERT_NE(hpl, nullptr);
  EXPECT_NEAR(hpl->t2sol_bdw, 271.794, 1e-3);
  EXPECT_NEAR(hpl->gop_fp64_knl, 184191.774, 1e-3);
  EXPECT_EQ(paper_row("NOPE"), nullptr);
  // Sanity: every row has positive times on all machines.
  for (const auto& r : table4()) {
    EXPECT_GT(r.t2sol_knl, 0.0) << r.abbrev;
    EXPECT_GT(r.t2sol_knm, 0.0) << r.abbrev;
    EXPECT_GT(r.t2sol_bdw, 0.0) << r.abbrev;
  }
}

TEST(PaperData, DerivedSpeedups) {
  PaperDerived d;
  const auto* nekb = paper_row("NekB");
  EXPECT_GT(d.speedup_knl_vs_bdw(*nekb), 1.5);  // NekB likes the Phi
  const auto* ngsa = paper_row("NGSA");
  EXPECT_LT(d.speedup_knl_vs_bdw(*ngsa), 0.2);  // NGSA collapses
}

TEST(Methodology, LadderHasThreeCandidatesOnSmallHosts) {
  // Regression: on hosts with hardware_concurrency() <= 2 the raw ladder
  // {1, hw/4, hw/2, hw, 2*hw} collapses to two entries; the padded
  // ladder must still offer >= 3 distinct candidates.
  for (unsigned hw : {0u, 1u, 2u, 3u, 4u, 6u, 8u}) {
    const auto ladder = parallelism_ladder(hw);
    EXPECT_GE(ladder.size(), 3u) << "hw=" << hw;
    EXPECT_TRUE(std::is_sorted(ladder.begin(), ladder.end())) << "hw=" << hw;
    EXPECT_EQ(std::adjacent_find(ladder.begin(), ladder.end()), ladder.end())
        << "hw=" << hw;
    EXPECT_EQ(ladder.front(), 1u) << "hw=" << hw;
    // Over-subscription point is always explored.
    const unsigned over = 2 * std::max(1u, hw);
    EXPECT_NE(std::find(ladder.begin(), ladder.end(), over), ladder.end())
        << "hw=" << hw;
  }
}

TEST(Methodology, LadderCoversWideHosts) {
  const auto ladder = parallelism_ladder(64);
  for (unsigned expected : {1u, 2u, 4u, 16u, 32u, 64u, 128u}) {
    EXPECT_NE(std::find(ladder.begin(), ladder.end(), expected),
              ladder.end())
        << expected;
  }
}

TEST(Methodology, FindsBestParallelism) {
  const auto kernel = kernels::make("NekB");
  const auto choice = find_best_parallelism(*kernel, 0.15, 1);
  EXPECT_GE(choice.threads, 1u);
  EXPECT_GT(choice.best_seconds, 0.0);
  EXPECT_GE(choice.tried.size(), 3u);
  for (const auto& [t, s] : choice.tried) {
    EXPECT_GE(s, choice.best_seconds);
  }
}

TEST(Methodology, PerformanceRunKeepsFastest) {
  const auto kernel = kernels::make("BABL2");
  kernels::RunConfig cfg;
  cfg.scale = 0.15;
  const auto run = performance_run(*kernel, cfg, 3);
  EXPECT_EQ(run.timing.best,
            std::min({run.timing.best, run.timing.median, run.timing.mean}));
  EXPECT_TRUE(run.best_meas.verified);
  EXPECT_GE(run.timing.spread_fast_half, 0.0);
}

TEST(DomainUtil, LabelMapping) {
  EXPECT_EQ(domain_of_label("geo"), kernels::Domain::geoscience);
  EXPECT_EQ(domain_of_label("qcd"), kernels::Domain::lattice_qcd);
  EXPECT_THROW(domain_of_label("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace fpr::study
