// Unit tests for the execution-time model, roofline, and memory profile.
#include <gtest/gtest.h>

#include <algorithm>

#include "arch/machines.hpp"
#include "model/exec_model.hpp"
#include "model/memprofile.hpp"
#include "model/roofline.hpp"

namespace fpr::model {
namespace {

// A synthetic compute-heavy FP64 workload (HPL-like).
WorkloadMeasurement compute_heavy() {
  WorkloadMeasurement w;
  w.name = "synthetic-compute";
  w.ops.fp64 = 2'000'000'000'000ull;  // 2 Tflop
  w.ops.int_ops = 100'000'000'000ull;
  w.ops.bytes_read = 40'000'000'000ull;
  w.ops.bytes_written = 10'000'000'000ull;
  w.working_set_bytes = 8ull << 30;
  w.access = memsim::AccessPatternSpec::single(memsim::BlockedPattern{
      .matrix_bytes = 8ull << 30, .tile_bytes = 1 << 20, .tile_reuse = 32});
  w.traits.vec_eff = 0.8;
  w.traits.int_eff = 0.5;
  return w;
}

// A synthetic streaming workload (BabelStream-like).
WorkloadMeasurement bandwidth_heavy() {
  WorkloadMeasurement w;
  w.name = "synthetic-stream";
  w.ops.fp64 = 5'000'000'000ull;
  w.ops.int_ops = 2'000'000'000ull;
  w.ops.bytes_read = 400'000'000'000ull;
  w.ops.bytes_written = 200'000'000'000ull;
  w.working_set_bytes = 6ull << 30;
  w.access = memsim::AccessPatternSpec::single(memsim::StreamPattern{
      .bytes_per_array = 2ull << 30, .arrays = 3, .writes_per_iter = 1});
  w.traits.vec_eff = 0.85;
  w.traits.int_eff = 0.85;
  return w;
}

TEST(MemProfile, StreamMostlyLeavesL2) {
  const auto w = bandwidth_heavy();
  const auto mp = profile_memory(arch::bdw(), w, 200'000);
  EXPECT_GT(mp.offchip_fraction, 0.05);  // streams don't cache
  EXPECT_GT(mp.offchip_bytes, 0.0);
  EXPECT_GT(mp.effective_bw_gbs, 0.0);
}

TEST(MemProfile, BlockedMostlyStaysOnChip) {
  const auto w = compute_heavy();
  const auto mp = profile_memory(arch::bdw(), w, 200'000);
  const auto ws = profile_memory(arch::bdw(), bandwidth_heavy(), 200'000);
  EXPECT_LT(mp.offchip_fraction, ws.offchip_fraction);
}

TEST(MemProfile, McdramCaptureForFittingSet) {
  const auto w = bandwidth_heavy();  // 6 GiB < 16 GiB MCDRAM
  // Long trace so steady-state passes dominate the cold fill.
  const auto mp = profile_memory(arch::knl(), w, 600'000);
  EXPECT_GT(mp.mcdram_capture, 0.8);
  EXPECT_GT(mp.effective_bw_gbs, arch::knl().dram_bw_gbs);
}

TEST(MemProfile, PerCoreSliceDividesFootprints) {
  auto spec = memsim::AccessPatternSpec::single(memsim::StreamPattern{
      .bytes_per_array = 64ull << 20, .arrays = 3});
  const auto sliced = per_core_slice(spec, 64.0);
  const auto& p = std::get<memsim::StreamPattern>(sliced.components[0].pattern);
  EXPECT_EQ(p.bytes_per_array, (64ull << 20) / 64);
}

TEST(MemProfile, GatherTablesPreserveCapacityRatio) {
  // Shared tables are divided by the core count too: the shared caches
  // hold one copy, so the per-core simulation must preserve the
  // capacity/footprint ratio (see per_core_slice).
  auto spec = memsim::AccessPatternSpec::single(memsim::GatherPattern{
      .table_bytes = 1ull << 30, .elem_bytes = 8});
  const auto sliced = per_core_slice(spec, 64.0);
  const auto& p = std::get<memsim::GatherPattern>(sliced.components[0].pattern);
  EXPECT_EQ(p.table_bytes, (1ull << 30) / 64);
}

TEST(ExecModel, ComputeWorkloadIsComputeBound) {
  const auto w = compute_heavy();
  for (const auto& cpu : arch::all_machines()) {
    const auto mp = profile_memory(cpu, w, 150'000);
    const auto ev = evaluate_at_turbo(cpu, w, mp);
    EXPECT_EQ(ev.bound, Bound::compute) << cpu.short_name;
    EXPECT_GT(ev.gflops, 0.0);
  }
}

TEST(ExecModel, StreamWorkloadIsBandwidthBound) {
  const auto w = bandwidth_heavy();
  for (const auto& cpu : arch::all_machines()) {
    const auto mp = profile_memory(cpu, w, 150'000);
    const auto ev = evaluate_at_turbo(cpu, w, mp);
    EXPECT_EQ(ev.bound, Bound::bandwidth) << cpu.short_name;
  }
}

TEST(ExecModel, ComputeTimeScalesInverselyWithFrequency) {
  const auto w = compute_heavy();
  const auto cpu = arch::knl();
  const auto mp = profile_memory(cpu, w, 150'000);
  const auto lo = evaluate(cpu, 1.0, w, mp);
  const auto hi = evaluate(cpu, 1.3, w, mp);
  EXPECT_NEAR(lo.seconds / hi.seconds, 1.3, 0.05);
}

TEST(ExecModel, StreamTimeInsensitiveToFrequency) {
  const auto w = bandwidth_heavy();
  const auto cpu = arch::knl();
  const auto mp = profile_memory(cpu, w, 150'000);
  const auto lo = evaluate(cpu, 1.0, w, mp);
  const auto hi = evaluate(cpu, 1.3, w, mp);
  EXPECT_LT(lo.seconds / hi.seconds, 1.12);  // far below the 1.3x ratio
}

TEST(ExecModel, HigherPeakMeansFasterComputeBound) {
  const auto w = compute_heavy();
  const auto knl_mp = profile_memory(arch::knl(), w, 150'000);
  const auto knm_mp = profile_memory(arch::knm(), w, 150'000);
  const auto bdw_mp = profile_memory(arch::bdw(), w, 150'000);
  const auto t_knl = evaluate_at_turbo(arch::knl(), w, knl_mp).seconds;
  const auto t_knm = evaluate_at_turbo(arch::knm(), w, knm_mp).seconds;
  const auto t_bdw = evaluate_at_turbo(arch::bdw(), w, bdw_mp).seconds;
  // FP64-heavy compute: both Phis beat BDW.
  EXPECT_LT(t_knl, t_bdw);
  EXPECT_LT(t_knm, t_bdw);
}

TEST(ExecModel, PhiAdjustScalesOps) {
  WorkloadMeasurement w = compute_heavy();
  w.traits.phi_adjust.fp64 = 2.0;
  const auto phi_ops = w.ops_on(true);
  const auto bdw_ops = w.ops_on(false);
  EXPECT_EQ(phi_ops.fp64, 2 * bdw_ops.fp64);
  EXPECT_EQ(phi_ops.int_ops, bdw_ops.int_ops);
}

TEST(ExecModel, IoTermDominatesForIoKernels) {
  WorkloadMeasurement w;
  w.name = "synthetic-io";
  w.ops.int_ops = 1'000'000'000ull;
  w.ops.bytes_read = 100'000'000ull;
  w.ops.bytes_written = 400'000'000ull;
  w.working_set_bytes = 64 << 20;
  w.access = memsim::AccessPatternSpec::single(memsim::StreamPattern{
      .bytes_per_array = 64 << 20, .arrays = 2});
  w.traits.io_write_bytes = 433.8e6;
  w.traits.int_eff = 0.05;
  const auto cpu = arch::knl();
  const auto mp = profile_memory(cpu, w, 100'000);
  const auto ev = evaluate_at_turbo(cpu, w, mp);
  EXPECT_EQ(ev.bound, Bound::io);
  // I/O scales with frequency (paper Sec. IV-E).
  const auto lo = evaluate(cpu, 1.0, w, mp);
  EXPECT_GT(lo.seconds, ev.seconds);
}

TEST(ExecModel, LatencyTermRespondsToDependentRefs) {
  WorkloadMeasurement w = bandwidth_heavy();
  w.traits.latency_dep_fraction = 0.5;
  const auto cpu = arch::knl();
  const auto mp = profile_memory(cpu, w, 150'000);
  EXPECT_GT(mp.dep_refs, 0.0);
  const auto ev = evaluate_at_turbo(cpu, w, mp);
  WorkloadMeasurement w2 = bandwidth_heavy();
  const auto mp2 = profile_memory(cpu, w2, 150'000);
  const auto ev2 = evaluate_at_turbo(cpu, w2, mp2);
  EXPECT_GT(ev.seconds, ev2.seconds);
}

TEST(ExecModel, PowerWithinTdpEnvelope) {
  for (const auto& cpu : arch::all_machines()) {
    const auto w = compute_heavy();
    const auto mp = profile_memory(cpu, w, 100'000);
    const auto ev = evaluate_at_turbo(cpu, w, mp);
    EXPECT_GT(ev.power_w, 0.2 * cpu.tdp_w);
    EXPECT_LE(ev.power_w, cpu.tdp_w * 1.001);
  }
}

TEST(Roofline, AttainableIsMinOfRoofs) {
  const auto cpu = arch::bdw();
  const double ridge = ridge_point(cpu, true);
  EXPECT_NEAR(attainable(cpu, ridge, true),
              cpu.peak_gflops(arch::Precision::fp64), 1e-6);
  EXPECT_LT(attainable(cpu, ridge / 10, true),
            cpu.peak_gflops(arch::Precision::fp64) / 9.0);
  EXPECT_DOUBLE_EQ(attainable(cpu, ridge * 10, true),
                   cpu.peak_gflops(arch::Precision::fp64));
}

TEST(Roofline, MeasuredBelowCeiling) {
  const auto w = bandwidth_heavy();
  const auto cpu = arch::bdw();
  const auto mp = profile_memory(cpu, w, 150'000);
  const auto ev = evaluate_at_turbo(cpu, w, mp);
  const auto pt = roofline_point(cpu, w, mp, ev);
  EXPECT_LE(pt.achieved_gflops, pt.attainable_gflops * 1.05);
  EXPECT_TRUE(pt.memory_side);
}

TEST(Roofline, TallyResolvedConsistentlyWithAchieved) {
  // The regression: roofline_point used the raw BDW-side tally for the
  // AI numerator while ev.gflops divided the machine-resolved
  // (Phi-adjusted) tally by the modeled time — a Phi kernel with a
  // phi_adjust multiplier paired a BDW numerator with a Phi achieved
  // point and could land above its own roof. Both sides must use
  // ops_on(is_phi), and the achieved point must respect the ceiling on
  // every machine.
  WorkloadMeasurement w = compute_heavy();
  w.traits.phi_adjust.fp64 = 2.0;  // Laghos-style op inflation on Phi
  for (const auto& cpu : arch::all_machines()) {
    const auto mp = profile_memory(cpu, w, 150'000);
    const auto ev = evaluate_at_turbo(cpu, w, mp);
    const auto pt = roofline_point(cpu, w, mp, ev);
    const auto ops = w.ops_on(cpu.has_mcdram());
    // AI numerator is the resolved tally (2x fp64 on the Phis).
    EXPECT_NEAR(pt.arithmetic_intensity,
                static_cast<double>(ops.fp_total()) /
                    std::max(1.0, mp.offchip_bytes),
                1e-12)
        << cpu.short_name;
    EXPECT_LE(pt.achieved_gflops, pt.attainable_gflops * 1.0001)
        << cpu.short_name;
  }
}

TEST(Roofline, AchievedRespectsCeilingForStreamsOnPhi) {
  // Bandwidth-bound on KNL: the roof must use the effective (cache-mode
  // MCDRAM) bandwidth, or a captured stream would sit far above a
  // DDR-only roof.
  const auto w = bandwidth_heavy();
  for (const auto& cpu : arch::all_machines()) {
    const auto mp = profile_memory(cpu, w, 150'000);
    const auto ev = evaluate_at_turbo(cpu, w, mp);
    const auto pt = roofline_point(cpu, w, mp, ev);
    EXPECT_LE(pt.achieved_gflops, pt.attainable_gflops * 1.0001)
        << cpu.short_name;
    EXPECT_TRUE(pt.memory_side) << cpu.short_name;
  }
}

TEST(Roofline, AttainableHonorsBandwidthRoofParameter) {
  const auto cpu = arch::knl();
  // Below the ridge the roof scales linearly with the bandwidth.
  EXPECT_NEAR(attainable(cpu, 1.0, true, 2.0 * cpu.dram_bw_gbs),
              2.0 * attainable(cpu, 1.0, true), 1e-9);
  // 0 falls back to the flat DRAM roof.
  EXPECT_DOUBLE_EQ(attainable(cpu, 1.0, true, 0.0),
                   attainable(cpu, 1.0, true));
}

TEST(ExecModel, BoundToString) {
  EXPECT_EQ(to_string(Bound::compute), "compute");
  EXPECT_EQ(to_string(Bound::bandwidth), "bandwidth");
  EXPECT_EQ(to_string(Bound::latency), "latency");
  EXPECT_EQ(to_string(Bound::io), "io");
}

}  // namespace
}  // namespace fpr::model
