// fpr-lint rule fixtures: every invariant rule gets at least one
// known-bad snippet proving it fires, a scoping case proving it stays
// inside its directory scope, and a suppression case proving the
// `// fpr-lint: allow(rule)` escape hatch works. These are the tests
// that keep the linter honest — the CTest gate over the real src/ tree
// (test `fpr_lint_src`) only proves the tree is clean, not that the
// rules still detect anything.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint_core.hpp"

namespace {

using fpr::lint::Finding;
using fpr::lint::lint_source;

std::vector<std::string> rules_of(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const auto& f : findings) rules.push_back(f.rule);
  return rules;
}

bool fired(const std::vector<Finding>& findings, const std::string& rule) {
  const auto rules = rules_of(findings);
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

TEST(LintRules, CatalogueIsStableAndDescribed) {
  const auto names = fpr::lint::rule_names();
  const std::vector<std::string> expected = {
      "global-thread-pool",   "nondeterministic-call",
      "counters-without-context", "non-const-global",
      "naked-new",            "pragma-once"};
  EXPECT_EQ(names, expected);
  for (const auto& n : names) {
    EXPECT_FALSE(fpr::lint::rule_description(n).empty()) << n;
  }
  EXPECT_THROW((void)fpr::lint::rule_description("no-such-rule"),
               std::invalid_argument);
}

TEST(LintRules, UnknownEnabledRuleThrows) {
  EXPECT_THROW((void)lint_source("src/a.cpp", "int x;", {"bogus-rule"}),
               std::invalid_argument);
}

// -- global-thread-pool ----------------------------------------------------

TEST(GlobalThreadPool, FiresOnGlobalPoolUse) {
  const auto f = lint_source("src/study/engine.cpp",
                             "void run() {\n"
                             "  fpr::ThreadPool::global().parallel_for(1, b);\n"
                             "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "global-thread-pool");
  EXPECT_EQ(f[0].line, 2);
}

TEST(GlobalThreadPool, ShimFilesAreExempt) {
  const std::string text = "ThreadPool& ThreadPool::global() { return p; }\n";
  EXPECT_FALSE(fired(lint_source("src/common/thread_pool.cpp", text),
                     "global-thread-pool"));
  EXPECT_TRUE(fired(lint_source("src/common/execution_context.cpp", text),
                    "global-thread-pool"));
}

TEST(GlobalThreadPool, CommentAndStringMentionsDoNotFire) {
  const auto f = lint_source(
      "src/study/engine.cpp",
      "// ThreadPool::global() is forbidden here\n"
      "const char* kDoc = \"ThreadPool::global()\";\n");
  EXPECT_FALSE(fired(f, "global-thread-pool"));
}

// -- nondeterministic-call -------------------------------------------------

TEST(NondeterministicCall, FiresOnEachBannedPattern) {
  const char* bad[] = {
      "int f() { return rand(); }\n",
      "void f() { srand(42); }\n",
      "std::random_device rd;\n",
      "auto t0 = std::chrono::steady_clock::now();\n",
      "auto t1 = std::chrono::system_clock::to_time_t(x);\n",
      "long f() { return time(nullptr); }\n",
      "void f() { WallTimer t; }\n",
  };
  for (const char* text : bad) {
    EXPECT_TRUE(fired(lint_source("src/memsim/gen.cpp", text),
                      "nondeterministic-call"))
        << text;
  }
}

TEST(NondeterministicCall, ScopedToDeterminismSensitiveDirs) {
  const std::string text = "auto t = std::chrono::steady_clock::now();\n";
  // src/io is in scope too: trace/results codecs feed the deterministic
  // pipeline (digests, golden snapshots) and must not read clocks.
  for (const char* dir : {"src/memsim/", "src/model/", "src/study/",
                          "src/arch/", "src/io/"}) {
    EXPECT_TRUE(fired(lint_source(std::string(dir) + "x.cpp", text),
                      "nondeterministic-call"))
        << dir;
  }
  // Kernel self-timing is the measured quantity; common/ holds the timer.
  EXPECT_FALSE(fired(lint_source("src/kernels/hpl.cpp", text),
                     "nondeterministic-call"));
  EXPECT_FALSE(fired(lint_source("src/common/timer.hpp", text),
                     "nondeterministic-call"));
}

TEST(NondeterministicCall, SeededHelpersAndTimeLikeNamesAreFine) {
  const auto f = lint_source(
      "src/study/sweep.cpp",
      "double solve_time(int n);\n"
      "void f() { Xoshiro256 rng(seed); double t = solve_time(3); }\n");
  EXPECT_FALSE(fired(f, "nondeterministic-call"));
}

// -- counters-without-context ----------------------------------------------

TEST(CountersWithoutContext, FiresOnLegacyRegistryAccess) {
  const char* bad[] = {
      "void f() { auto s = counters::global_snapshot(); }\n",
      "void f() { counters::reset_all(); }\n",
      "void f() { counters::local_tally().fp64 += 1; }\n",
  };
  for (const char* text : bad) {
    EXPECT_TRUE(fired(lint_source("src/model/exec.cpp", text),
                      "counters-without-context"))
        << text;
  }
}

TEST(CountersWithoutContext, CountersDirItselfIsExempt) {
  EXPECT_FALSE(fired(
      lint_source("src/counters/registry.cpp",
                  "void reset_all() { } void f() { reset_all(); }\n"),
      "counters-without-context"));
}

TEST(CountersWithoutContext, ContextScopedHelpersAreFine) {
  const auto f = lint_source(
      "src/kernels/hpl.cpp",
      "void f() { counters::add_fp64(8); counters::add_read_bytes(64); }\n");
  EXPECT_FALSE(fired(f, "counters-without-context"));
}

// -- non-const-global ------------------------------------------------------

TEST(NonConstGlobal, FiresOnMutableNamespaceScopeVariable) {
  const auto f = lint_source("src/arch/state.cpp",
                             "namespace fpr {\n"
                             "int run_counter = 0;\n"
                             "}\n");
  ASSERT_TRUE(fired(f, "non-const-global"));
  EXPECT_EQ(f[0].line, 2);
}

TEST(NonConstGlobal, FiresInAnonymousNamespaceAndOnStatics) {
  EXPECT_TRUE(fired(lint_source("src/io/x.cpp",
                                "namespace { std::size_t calls = 0; }\n"),
                    "non-const-global"));
  EXPECT_TRUE(fired(lint_source("src/io/x.cpp", "static bool dirty;\n"),
                    "non-const-global"));
  EXPECT_TRUE(
      fired(lint_source("src/io/x.cpp", "std::vector<int> g_cache{1, 2};\n"),
            "non-const-global"));
}

TEST(NonConstGlobal, ConstexprConstThreadLocalAndLocalsAreFine) {
  const char* good[] = {
      "constexpr int kTableSize = 64;\n",
      "const char* const kName = \"fpr\";\n",
      "inline constexpr double kEps = 1e-9;\n",
      "thread_local int scratch = 0;\n",  // documented exemption
      "void f() { static int memo = compute(); use(memo); }\n",
      "struct S { int mutable_member; };\n",
      "int add(int a, int b);\n",
      "using Row = std::vector<double>;\n",
      "enum class Mode { kFast, kExact };\n",
      "template <class T> struct Box { T value; };\n",
  };
  for (const char* text : good) {
    EXPECT_FALSE(fired(lint_source("src/common/x.hpp", text),
                       "non-const-global"))
        << text;
  }
}

// -- naked-new -------------------------------------------------------------

TEST(NakedNew, FiresOnNewAndMallocInHotPaths) {
  EXPECT_TRUE(fired(lint_source("src/kernels/hpl.cpp",
                                "void f() { double* p = new double[64]; }\n"),
                    "naked-new"));
  EXPECT_TRUE(fired(
      lint_source("src/memsim/cache.cpp",
                  "void f() { void* p = malloc(64); use(p); }\n"),
      "naked-new"));
}

TEST(NakedNew, ScopedToKernelsMemsimAndIo) {
  const std::string text = "void f() { int* p = new int; }\n";
  EXPECT_FALSE(fired(lint_source("src/counters/registry.cpp", text),
                     "naked-new"));
  EXPECT_FALSE(fired(lint_source("src/cli/cli.cpp", text), "naked-new"));
  // src/io is hot-path territory since the trace codec: chunk buffers
  // must be vectors, not raw allocations.
  EXPECT_TRUE(fired(lint_source("src/io/trace_format.cpp", text),
                    "naked-new"));
  EXPECT_TRUE(fired(
      lint_source("src/io/trace_format.cpp",
                  "void f() { void* p = malloc(64); use(p); }\n"),
      "naked-new"));
}

TEST(NakedNew, DeletedFunctionsAndCommentsDoNotFire) {
  const auto f = lint_source(
      "src/kernels/hpl.cpp",
      "// the new batched path replaces malloc(n) buffers\n"
      "struct K { K(const K&) = delete; };\n");
  EXPECT_FALSE(fired(f, "naked-new"));
}

// -- pragma-once -----------------------------------------------------------

TEST(PragmaOnce, FiresOnHeaderWithoutGuard) {
  const auto f = lint_source("src/common/units.hpp", "int f();\n");
  ASSERT_TRUE(fired(f, "pragma-once"));
  EXPECT_EQ(f[0].line, 1);
}

TEST(PragmaOnce, GuardedHeaderAndSourceFilesAreFine) {
  EXPECT_FALSE(fired(
      lint_source("src/common/units.hpp", "#pragma once\nint f();\n"),
      "pragma-once"));
  EXPECT_FALSE(fired(lint_source("src/common/units.cpp", "int f() {}\n"),
                     "pragma-once"));
}

// -- suppression comments --------------------------------------------------

TEST(Suppression, SameLineCommentSilencesOnlyThatRule) {
  const auto f = lint_source(
      "src/arch/state.cpp",
      "int tuned = 0;  // fpr-lint: allow(non-const-global)\n");
  EXPECT_TRUE(f.empty());
}

TEST(Suppression, PreviousLineCommentSilencesNextLine) {
  const auto f = lint_source(
      "src/model/exec.cpp",
      "// fpr-lint: allow(counters-without-context)\n"
      "void f() { counters::reset_all(); }\n");
  EXPECT_TRUE(f.empty());
}

TEST(Suppression, DoesNotLeakPastTheNextLine) {
  const auto f = lint_source(
      "src/model/exec.cpp",
      "// fpr-lint: allow(counters-without-context)\n"
      "void ok() { counters::reset_all(); }\n"
      "void bad() { counters::reset_all(); }\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].line, 3);
}

TEST(Suppression, WrongRuleNameDoesNotSilence) {
  const auto f = lint_source(
      "src/arch/state.cpp",
      "int tuned = 0;  // fpr-lint: allow(naked-new)\n");
  EXPECT_TRUE(fired(f, "non-const-global"));
}

// -- rule filtering --------------------------------------------------------

TEST(RuleFilter, EnabledSubsetRestrictsChecking) {
  const std::string text =
      "int mutable_state = 0;\n"
      "void f() { counters::reset_all(); }\n";
  const auto all = lint_source("src/model/x.cpp", text);
  EXPECT_TRUE(fired(all, "non-const-global"));
  EXPECT_TRUE(fired(all, "counters-without-context"));
  const auto only =
      lint_source("src/model/x.cpp", text, {"counters-without-context"});
  EXPECT_FALSE(fired(only, "non-const-global"));
  EXPECT_TRUE(fired(only, "counters-without-context"));
}

}  // namespace
