// fpr-lint rule fixtures: every invariant rule gets at least one
// known-bad snippet proving it fires, a scoping case proving it stays
// inside its directory scope, and a suppression case proving the
// `// fpr-lint: allow(rule)` escape hatch works. These are the tests
// that keep the linter honest — the CTest gate over the real src/ tree
// (test `fpr_lint_src`) only proves the tree is clean, not that the
// rules still detect anything.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint_core.hpp"

namespace {

using fpr::lint::Finding;
using fpr::lint::lint_source;
using fpr::lint::lint_sources;
using fpr::lint::SourceFile;

std::vector<std::string> rules_of(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const auto& f : findings) rules.push_back(f.rule);
  return rules;
}

bool fired(const std::vector<Finding>& findings, const std::string& rule) {
  const auto rules = rules_of(findings);
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

TEST(LintRules, CatalogueIsStableAndDescribed) {
  const auto names = fpr::lint::rule_names();
  const std::vector<std::string> expected = {
      "global-thread-pool",   "nondeterministic-call",
      "counters-without-context", "non-const-global",
      "naked-new",            "pragma-once",
      "layer-violation",      "include-cycle",
      "odr-header-def",       "shared-mutable-capture",
      "bare-exit-code",       "stale-suppression"};
  EXPECT_EQ(names, expected);
  for (const auto& n : names) {
    EXPECT_FALSE(fpr::lint::rule_description(n).empty()) << n;
  }
  EXPECT_THROW((void)fpr::lint::rule_description("no-such-rule"),
               std::invalid_argument);
}

TEST(LintRules, UnknownEnabledRuleThrows) {
  EXPECT_THROW((void)lint_source("src/a.cpp", "int x;", {"bogus-rule"}),
               std::invalid_argument);
}

// -- global-thread-pool ----------------------------------------------------

TEST(GlobalThreadPool, FiresOnGlobalPoolUse) {
  const auto f = lint_source("src/study/engine.cpp",
                             "void run() {\n"
                             "  fpr::ThreadPool::global().parallel_for(1, b);\n"
                             "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "global-thread-pool");
  EXPECT_EQ(f[0].line, 2);
}

TEST(GlobalThreadPool, ShimFilesAreExempt) {
  const std::string text = "ThreadPool& ThreadPool::global() { return p; }\n";
  EXPECT_FALSE(fired(lint_source("src/common/thread_pool.cpp", text),
                     "global-thread-pool"));
  EXPECT_TRUE(fired(lint_source("src/common/execution_context.cpp", text),
                    "global-thread-pool"));
}

TEST(GlobalThreadPool, CommentAndStringMentionsDoNotFire) {
  const auto f = lint_source(
      "src/study/engine.cpp",
      "// ThreadPool::global() is forbidden here\n"
      "const char* kDoc = \"ThreadPool::global()\";\n");
  EXPECT_FALSE(fired(f, "global-thread-pool"));
}

// -- nondeterministic-call -------------------------------------------------

TEST(NondeterministicCall, FiresOnEachBannedPattern) {
  const char* bad[] = {
      "int f() { return rand(); }\n",
      "void f() { srand(42); }\n",
      "std::random_device rd;\n",
      "auto t0 = std::chrono::steady_clock::now();\n",
      "auto t1 = std::chrono::system_clock::to_time_t(x);\n",
      "long f() { return time(nullptr); }\n",
      "void f() { WallTimer t; }\n",
  };
  for (const char* text : bad) {
    EXPECT_TRUE(fired(lint_source("src/memsim/gen.cpp", text),
                      "nondeterministic-call"))
        << text;
  }
}

TEST(NondeterministicCall, ScopedToDeterminismSensitiveDirs) {
  const std::string text = "auto t = std::chrono::steady_clock::now();\n";
  // src/io is in scope too: trace/results codecs feed the deterministic
  // pipeline (digests, golden snapshots) and must not read clocks.
  for (const char* dir : {"src/memsim/", "src/model/", "src/study/",
                          "src/arch/", "src/io/"}) {
    EXPECT_TRUE(fired(lint_source(std::string(dir) + "x.cpp", text),
                      "nondeterministic-call"))
        << dir;
  }
  // Kernel self-timing is the measured quantity; common/ holds the timer.
  EXPECT_FALSE(fired(lint_source("src/kernels/hpl.cpp", text),
                     "nondeterministic-call"));
  EXPECT_FALSE(fired(lint_source("src/common/timer.hpp", text),
                     "nondeterministic-call"));
}

TEST(NondeterministicCall, SeededHelpersAndTimeLikeNamesAreFine) {
  const auto f = lint_source(
      "src/study/sweep.cpp",
      "double solve_time(int n);\n"
      "void f() { Xoshiro256 rng(seed); double t = solve_time(3); }\n");
  EXPECT_FALSE(fired(f, "nondeterministic-call"));
}

// -- counters-without-context ----------------------------------------------

TEST(CountersWithoutContext, FiresOnLegacyRegistryAccess) {
  const char* bad[] = {
      "void f() { auto s = counters::global_snapshot(); }\n",
      "void f() { counters::reset_all(); }\n",
      "void f() { counters::local_tally().fp64 += 1; }\n",
  };
  for (const char* text : bad) {
    EXPECT_TRUE(fired(lint_source("src/model/exec.cpp", text),
                      "counters-without-context"))
        << text;
  }
}

TEST(CountersWithoutContext, CountersDirItselfIsExempt) {
  EXPECT_FALSE(fired(
      lint_source("src/counters/registry.cpp",
                  "void reset_all() { } void f() { reset_all(); }\n"),
      "counters-without-context"));
}

TEST(CountersWithoutContext, ContextScopedHelpersAreFine) {
  const auto f = lint_source(
      "src/kernels/hpl.cpp",
      "void f() { counters::add_fp64(8); counters::add_read_bytes(64); }\n");
  EXPECT_FALSE(fired(f, "counters-without-context"));
}

// -- non-const-global ------------------------------------------------------

TEST(NonConstGlobal, FiresOnMutableNamespaceScopeVariable) {
  const auto f = lint_source("src/arch/state.cpp",
                             "namespace fpr {\n"
                             "int run_counter = 0;\n"
                             "}\n");
  ASSERT_TRUE(fired(f, "non-const-global"));
  EXPECT_EQ(f[0].line, 2);
}

TEST(NonConstGlobal, FiresInAnonymousNamespaceAndOnStatics) {
  EXPECT_TRUE(fired(lint_source("src/io/x.cpp",
                                "namespace { std::size_t calls = 0; }\n"),
                    "non-const-global"));
  EXPECT_TRUE(fired(lint_source("src/io/x.cpp", "static bool dirty;\n"),
                    "non-const-global"));
  EXPECT_TRUE(
      fired(lint_source("src/io/x.cpp", "std::vector<int> g_cache{1, 2};\n"),
            "non-const-global"));
}

TEST(NonConstGlobal, ConstexprConstThreadLocalAndLocalsAreFine) {
  const char* good[] = {
      "constexpr int kTableSize = 64;\n",
      "const char* const kName = \"fpr\";\n",
      "inline constexpr double kEps = 1e-9;\n",
      "thread_local int scratch = 0;\n",  // documented exemption
      "void f() { static int memo = compute(); use(memo); }\n",
      "struct S { int mutable_member; };\n",
      "int add(int a, int b);\n",
      "using Row = std::vector<double>;\n",
      "enum class Mode { kFast, kExact };\n",
      "template <class T> struct Box { T value; };\n",
  };
  for (const char* text : good) {
    EXPECT_FALSE(fired(lint_source("src/common/x.hpp", text),
                       "non-const-global"))
        << text;
  }
}

// -- naked-new -------------------------------------------------------------

TEST(NakedNew, FiresOnNewAndMallocInHotPaths) {
  EXPECT_TRUE(fired(lint_source("src/kernels/hpl.cpp",
                                "void f() { double* p = new double[64]; }\n"),
                    "naked-new"));
  EXPECT_TRUE(fired(
      lint_source("src/memsim/cache.cpp",
                  "void f() { void* p = malloc(64); use(p); }\n"),
      "naked-new"));
}

TEST(NakedNew, ScopedToKernelsMemsimAndIo) {
  const std::string text = "void f() { int* p = new int; }\n";
  EXPECT_FALSE(fired(lint_source("src/counters/registry.cpp", text),
                     "naked-new"));
  EXPECT_FALSE(fired(lint_source("src/cli/cli.cpp", text), "naked-new"));
  // src/io is hot-path territory since the trace codec: chunk buffers
  // must be vectors, not raw allocations.
  EXPECT_TRUE(fired(lint_source("src/io/trace_format.cpp", text),
                    "naked-new"));
  EXPECT_TRUE(fired(
      lint_source("src/io/trace_format.cpp",
                  "void f() { void* p = malloc(64); use(p); }\n"),
      "naked-new"));
}

TEST(NakedNew, DeletedFunctionsAndCommentsDoNotFire) {
  const auto f = lint_source(
      "src/kernels/hpl.cpp",
      "// the new batched path replaces malloc(n) buffers\n"
      "struct K { K(const K&) = delete; };\n");
  EXPECT_FALSE(fired(f, "naked-new"));
}

// -- pragma-once -----------------------------------------------------------

TEST(PragmaOnce, FiresOnHeaderWithoutGuard) {
  const auto f = lint_source("src/common/units.hpp", "int f();\n");
  ASSERT_TRUE(fired(f, "pragma-once"));
  EXPECT_EQ(f[0].line, 1);
}

TEST(PragmaOnce, GuardedHeaderAndSourceFilesAreFine) {
  EXPECT_FALSE(fired(
      lint_source("src/common/units.hpp", "#pragma once\nint f();\n"),
      "pragma-once"));
  EXPECT_FALSE(fired(lint_source("src/common/units.cpp", "int f() {}\n"),
                     "pragma-once"));
}

// -- suppression comments --------------------------------------------------

TEST(Suppression, SameLineCommentSilencesOnlyThatRule) {
  const auto f = lint_source(
      "src/arch/state.cpp",
      "int tuned = 0;  // fpr-lint: allow(non-const-global)\n");
  EXPECT_TRUE(f.empty());
}

TEST(Suppression, PreviousLineCommentSilencesNextLine) {
  const auto f = lint_source(
      "src/model/exec.cpp",
      "// fpr-lint: allow(counters-without-context)\n"
      "void f() { counters::reset_all(); }\n");
  EXPECT_TRUE(f.empty());
}

TEST(Suppression, DoesNotLeakPastTheNextLine) {
  const auto f = lint_source(
      "src/model/exec.cpp",
      "// fpr-lint: allow(counters-without-context)\n"
      "void ok() { counters::reset_all(); }\n"
      "void bad() { counters::reset_all(); }\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].line, 3);
}

TEST(Suppression, WrongRuleNameDoesNotSilence) {
  const auto f = lint_source(
      "src/arch/state.cpp",
      "int tuned = 0;  // fpr-lint: allow(naked-new)\n");
  EXPECT_TRUE(fired(f, "non-const-global"));
}

// -- rule filtering --------------------------------------------------------

TEST(RuleFilter, EnabledSubsetRestrictsChecking) {
  const std::string text =
      "int mutable_state = 0;\n"
      "void f() { counters::reset_all(); }\n";
  const auto all = lint_source("src/model/x.cpp", text);
  EXPECT_TRUE(fired(all, "non-const-global"));
  EXPECT_TRUE(fired(all, "counters-without-context"));
  const auto only =
      lint_source("src/model/x.cpp", text, {"counters-without-context"});
  EXPECT_FALSE(fired(only, "non-const-global"));
  EXPECT_TRUE(fired(only, "counters-without-context"));
}

// -- layer-violation ---------------------------------------------------------

TEST(LayerViolation, ClassifiesEveryLayerPair) {
  // Every ordered (from, to) pair: upward edges (to above from) violate,
  // downward and same-layer edges do not — adjacent or not.
  const auto& layers = fpr::lint::layer_names();
  ASSERT_EQ(layers.size(), 9u);
  for (std::size_t from = 0; from < layers.size(); ++from) {
    for (std::size_t to = 0; to < layers.size(); ++to) {
      const std::string path = "src/" + layers[from] + "/x.cpp";
      const std::string text =
          "#include \"" + layers[to] + "/y.hpp\"\nvoid f();\n";
      EXPECT_EQ(fired(lint_source(path, text), "layer-violation"), to > from)
          << layers[from] << " -> " << layers[to];
    }
  }
}

TEST(LayerViolation, RanksFollowTheArchitectureDag) {
  EXPECT_EQ(fpr::lint::layer_rank("common"), 0);
  EXPECT_EQ(fpr::lint::layer_rank("src/counters/sink.hpp"), 1);
  EXPECT_EQ(fpr::lint::layer_rank("arch"), 2);
  EXPECT_EQ(fpr::lint::layer_rank("memsim"), 3);
  EXPECT_EQ(fpr::lint::layer_rank("kernels"), 4);
  EXPECT_EQ(fpr::lint::layer_rank("model"), 5);
  EXPECT_EQ(fpr::lint::layer_rank("study"), 6);
  EXPECT_EQ(fpr::lint::layer_rank("io"), 7);
  EXPECT_EQ(fpr::lint::layer_rank("src/cli/cli.cpp"), 8);
  EXPECT_EQ(fpr::lint::layer_rank("tools/lint/main.cpp"), -1);
  EXPECT_EQ(fpr::lint::layer_rank("bench/memsim_replay.cpp"), -1);
}

TEST(LayerViolation, SinksAndSystemIncludesAreExempt) {
  // tools/, bench/, tests/ may include anything.
  EXPECT_FALSE(fired(lint_source("tools/trace/main.cpp",
                                 "#include \"cli/cli.hpp\"\nint g;\n"),
                     "layer-violation"));
  EXPECT_FALSE(fired(lint_source("bench/x.cpp",
                                 "#include \"study/study.hpp\"\nvoid f();\n"),
                     "layer-violation"));
  // Angle-bracket/system includes never form edges.
  EXPECT_FALSE(fired(lint_source("src/common/x.cpp",
                                 "#include <vector>\nvoid f();\n"),
                     "layer-violation"));
}

TEST(LayerViolation, FindingNamesTheEdgeAndBothRanks) {
  const auto f = lint_source("src/memsim/x.cpp",
                             "#include \"io/trace_format.hpp\"\nvoid f();\n");
  ASSERT_TRUE(fired(f, "layer-violation"));
  EXPECT_EQ(f[0].line, 1);
  EXPECT_NE(f[0].message.find("src/memsim/x.cpp -> io/trace_format.hpp"),
            std::string::npos);
  EXPECT_NE(f[0].message.find("memsim (layer 3)"), std::string::npos);
  EXPECT_NE(f[0].message.find("io (layer 7)"), std::string::npos);
}

TEST(LayerViolation, SuppressibleOnTheIncludeLine) {
  const auto f = lint_source(
      "src/memsim/x.cpp",
      "// rationale here. fpr-lint: allow(layer-violation)\n"
      "#include \"io/trace_format.hpp\"\n"
      "void f();\n");
  EXPECT_FALSE(fired(f, "layer-violation"));
  EXPECT_FALSE(fired(f, "stale-suppression"));  // the suppression is live
}

// -- include-cycle -----------------------------------------------------------

std::vector<SourceFile> three_node_cycle() {
  return {
      {"src/common/cycle_a.hpp",
       "#pragma once\n#include \"common/cycle_b.hpp\"\n"},
      {"src/common/cycle_b.hpp",
       "#pragma once\n#include \"common/cycle_c.hpp\"\n"},
      {"src/common/cycle_c.hpp",
       "#pragma once\n#include \"common/cycle_a.hpp\"\n"},
  };
}

TEST(IncludeCycle, DetectsSyntheticThreeNodeCycle) {
  const auto f = lint_sources(three_node_cycle());
  // Every edge participates in the cycle, so each carries a finding.
  int cycle_findings = 0;
  for (const auto& finding : f) {
    if (finding.rule == "include-cycle") ++cycle_findings;
  }
  EXPECT_EQ(cycle_findings, 3);
  ASSERT_TRUE(fired(f, "include-cycle"));
  // The finding on the a->b edge names the shortest violating path.
  bool saw_full_path = false;
  for (const auto& finding : f) {
    if (finding.message.find("src/common/cycle_a.hpp -> "
                             "src/common/cycle_b.hpp -> "
                             "src/common/cycle_c.hpp -> "
                             "src/common/cycle_a.hpp") !=
        std::string::npos) {
      saw_full_path = true;
    }
  }
  EXPECT_TRUE(saw_full_path);
}

TEST(IncludeCycle, AcyclicChainIsClean) {
  const auto f = lint_sources({
      {"src/common/a.hpp", "#pragma once\n"},
      {"src/common/b.hpp", "#pragma once\n#include \"common/a.hpp\"\n"},
      {"src/common/c.hpp", "#pragma once\n#include \"common/b.hpp\"\n"},
  });
  EXPECT_FALSE(fired(f, "include-cycle"));
}

TEST(IncludeCycle, SuppressibleOnTheIncludeLine) {
  auto files = three_node_cycle();
  files[0].text =
      "#pragma once\n"
      "// fpr-lint: allow(include-cycle)\n"
      "#include \"common/cycle_b.hpp\"\n";
  const auto f = lint_sources(files);
  int cycle_findings = 0;
  for (const auto& finding : f) {
    if (finding.rule == "include-cycle") ++cycle_findings;
  }
  EXPECT_EQ(cycle_findings, 2);  // the other two edges still report
  EXPECT_FALSE(fired(f, "stale-suppression"));
}

// -- include graph + DOT export ----------------------------------------------

std::vector<SourceFile> small_project() {
  return {
      {"src/common/a.hpp", "#pragma once\n"},
      {"src/counters/b.hpp", "#pragma once\n#include \"common/a.hpp\"\n"},
      {"src/memsim/c.hpp",
       "#pragma once\n#include \"common/a.hpp\"\n"
       "#include \"counters/b.hpp\"\n"},
  };
}

TEST(IncludeGraph, BuildsSortedNodesAndResolvedEdges) {
  const auto g = fpr::lint::build_include_graph(small_project());
  const std::vector<std::string> want_nodes = {
      "src/common/a.hpp", "src/counters/b.hpp", "src/memsim/c.hpp"};
  EXPECT_EQ(g.nodes, want_nodes);
  ASSERT_EQ(g.edges.size(), 3u);
  // Sorted by (from, to): b->a, c->a, c->b.
  EXPECT_EQ(g.nodes[static_cast<std::size_t>(g.edges[0].from)],
            "src/counters/b.hpp");
  EXPECT_EQ(g.nodes[static_cast<std::size_t>(g.edges[0].to)],
            "src/common/a.hpp");
  EXPECT_EQ(g.nodes[static_cast<std::size_t>(g.edges[2].from)],
            "src/memsim/c.hpp");
  EXPECT_EQ(g.nodes[static_cast<std::size_t>(g.edges[2].to)],
            "src/counters/b.hpp");
  EXPECT_EQ(g.edges[0].line, 2);
}

TEST(IncludeGraph, DotExportIsDeterministicGolden) {
  const auto g = fpr::lint::build_include_graph(small_project());
  const std::string dot = fpr::lint::include_graph_dot(g);
  const std::string expected =
      "digraph fpr_include_graph {\n"
      "  // Edges point from includer to included directory; labels\n"
      "  // count file-level include edges. Layer ranks follow the\n"
      "  // architecture DAG (see docs/ARCHITECTURE.md).\n"
      "  rankdir=\"BT\";\n"
      "  node [shape=box];\n"
      "  \"common\" [label=\"common\\nlayer 0 \xC2\xB7 1 files\"];\n"
      "  \"counters\" [label=\"counters\\nlayer 1 \xC2\xB7 1 files\"];\n"
      "  \"memsim\" [label=\"memsim\\nlayer 3 \xC2\xB7 1 files\"];\n"
      "  \"counters\" -> \"common\" [label=\"1\"];\n"
      "  \"memsim\" -> \"common\" [label=\"1\"];\n"
      "  \"memsim\" -> \"counters\" [label=\"1\"];\n"
      "}\n";
  EXPECT_EQ(dot, expected);
}

// -- odr-header-def ----------------------------------------------------------

TEST(OdrHeaderDef, FiresOnNonInlineHeaderDefinition) {
  const auto f = lint_source(
      "src/model/bad.hpp",
      "#pragma once\nint helper(int x) { return x + 1; }\n");
  ASSERT_TRUE(fired(f, "odr-header-def"));
  EXPECT_EQ(f[0].line, 2);
  EXPECT_NE(f[0].message.find("helper"), std::string::npos);
}

TEST(OdrHeaderDef, InlineTemplateConstexprStaticAndDeclarationsAreFine) {
  const char* good[] = {
      "#pragma once\ninline int f(int x) { return x; }\n",
      "#pragma once\nconstexpr int f(int x) { return x; }\n",
      "#pragma once\ntemplate <class T> T f(T x) { return x; }\n",
      "#pragma once\nstatic int f(int x) { return x; }\n",
      "#pragma once\nint f(int x);\n",
      "#pragma once\nstruct S { int get() const { return v; } int v; };\n",
      "#pragma once\nclass C { public: void set(int x) { v = x; } int v; };\n",
      "#pragma once\nnamespace d { inline double g() { return 1.0; } }\n",
  };
  for (const char* text : good) {
    EXPECT_FALSE(fired(lint_source("src/model/x.hpp", text),
                       "odr-header-def"))
        << text;
  }
}

TEST(OdrHeaderDef, SourceFileDefinitionsAreFine) {
  EXPECT_FALSE(fired(
      lint_source("src/model/x.cpp", "int helper(int x) { return x + 1; }\n"),
      "odr-header-def"));
}

TEST(OdrHeaderDef, FiresOnCrossTuDuplicateDefinition) {
  const std::string def =
      "namespace fpr {\nint shared_helper(int x) { return x * 2; }\n}\n";
  const auto f = lint_sources({{"src/model/a.cpp", def},
                               {"src/study/b.cpp", def}});
  int dup_findings = 0;
  for (const auto& finding : f) {
    if (finding.rule == "odr-header-def") ++dup_findings;
  }
  EXPECT_EQ(dup_findings, 2);  // one per definition site
  ASSERT_TRUE(fired(f, "odr-header-def"));
  EXPECT_NE(f[0].message.find("2 translation units"), std::string::npos);
  EXPECT_NE(f[0].message.find("src/model/a.cpp"), std::string::npos);
  EXPECT_NE(f[0].message.find("src/study/b.cpp"), std::string::npos);
}

TEST(OdrHeaderDef, InternalLinkageAndDistinctSignaturesAreNotDuplicates) {
  // static / anonymous-namespace copies have internal linkage; different
  // parameter lists are overloads, not redefinitions; main() is special.
  EXPECT_FALSE(fired(
      lint_sources(
          {{"src/model/a.cpp", "static int helper(int x) { return x; }\n"},
           {"src/study/b.cpp", "static int helper(int x) { return x; }\n"}}),
      "odr-header-def"));
  EXPECT_FALSE(fired(
      lint_sources(
          {{"src/model/a.cpp",
            "namespace { int helper(int x) { return x; } }\n"},
           {"src/study/b.cpp",
            "namespace { int helper(int x) { return x; } }\n"}}),
      "odr-header-def"));
  EXPECT_FALSE(fired(
      lint_sources(
          {{"src/model/a.cpp",
            "namespace fpr { int h(int x) { return x; } }\n"},
           {"src/study/b.cpp",
            "namespace fpr { int h(double x) { return 0; } }\n"}}),
      "odr-header-def"));
  EXPECT_FALSE(fired(
      lint_sources({{"src/cli/a.cpp", "int main() { return kExitOk; }\n"},
                    {"src/cli/b.cpp", "int main() { return kExitOk; }\n"}}),
      "odr-header-def"));
}

TEST(OdrHeaderDef, SuppressibleAtTheDefinition) {
  const auto f = lint_source(
      "src/model/bad.hpp",
      "#pragma once\n"
      "// fpr-lint: allow(odr-header-def)\n"
      "int helper(int x) { return x + 1; }\n");
  EXPECT_FALSE(fired(f, "odr-header-def"));
  EXPECT_FALSE(fired(f, "stale-suppression"));
}

// -- shared-mutable-capture --------------------------------------------------

TEST(SharedMutableCapture, FiresOnByRefScalarWrittenInParallelRegion) {
  const auto f = lint_source(
      "src/study/x.cpp",
      "void f(ThreadPool& pool, std::size_t n) {\n"
      "  std::size_t acc = 0;\n"
      "  pool.parallel_for_n(4, n,\n"
      "      [&](std::size_t b, std::size_t e, unsigned) {\n"
      "        acc += e - b;\n"
      "      });\n"
      "}\n");
  ASSERT_TRUE(fired(f, "shared-mutable-capture"));
  EXPECT_EQ(f[0].line, 4);  // the lambda introducer
  EXPECT_NE(f[0].message.find("'acc'"), std::string::npos);
}

TEST(SharedMutableCapture, ExplicitByRefCaptureAlsoFires) {
  const auto f = lint_source(
      "src/study/x.cpp",
      "void f(ThreadPool& pool, std::size_t n) {\n"
      "  int hits = 0;\n"
      "  pool.parallel_for(n, [&hits](std::size_t b, std::size_t e) {\n"
      "    if (b < e) hits++;\n"
      "  });\n"
      "}\n");
  EXPECT_TRUE(fired(f, "shared-mutable-capture"));
}

TEST(SharedMutableCapture, SafePatternsDoNotFire) {
  const char* good[] = {
      // read-only use of a by-ref capture
      "void f(ThreadPool& p, std::size_t n) {\n"
      "  std::size_t limit = n / 2;\n"
      "  p.parallel_for_n(4, n, [&](std::size_t b, std::size_t e,\n"
      "                             unsigned) { use(limit); });\n"
      "}\n",
      // const local
      "void f(ThreadPool& p, std::size_t n) {\n"
      "  const std::size_t limit = n / 2;\n"
      "  p.parallel_for_n(4, n, [&](std::size_t b, std::size_t e,\n"
      "                             unsigned) { use(limit); });\n"
      "}\n",
      // by-value capture: each worker owns a copy
      "void f(ThreadPool& p, std::size_t n) {\n"
      "  std::size_t acc = 0;\n"
      "  p.parallel_for(n, [acc](std::size_t b, std::size_t e) {\n"
      "    use(acc + b + e);\n"
      "  });\n"
      "}\n",
      // lambda declares its own copy (shadowing)
      "void f(ThreadPool& p, std::size_t n) {\n"
      "  std::size_t acc = 0;\n"
      "  p.parallel_for(n, [&](std::size_t b, std::size_t e) {\n"
      "    std::size_t acc = b; acc += e; use(acc);\n"
      "  });\n"
      "}\n",
      // writes land in a per-worker slot, not a captured scalar
      "void f(ThreadPool& p, std::vector<double>& out, std::size_t n) {\n"
      "  p.parallel_for_n(4, n, [&](std::size_t b, std::size_t e,\n"
      "                             unsigned w) { out[w] += double(e - b);\n"
      "  });\n"
      "}\n",
      // serial lambda: not handed to a parallel entry point
      "void f(std::size_t n) {\n"
      "  std::size_t acc = 0;\n"
      "  auto add = [&](std::size_t k) { acc += k; };\n"
      "  add(n);\n"
      "}\n",
  };
  for (const char* text : good) {
    EXPECT_FALSE(fired(lint_source("src/study/x.cpp", text),
                       "shared-mutable-capture"))
        << text;
  }
}

TEST(SharedMutableCapture, SuppressibleAtTheLambda) {
  const auto f = lint_source(
      "src/study/x.cpp",
      "void f(ThreadPool& pool, std::size_t n) {\n"
      "  std::size_t acc = 0;\n"
      "  pool.parallel_for_n(4, n,\n"
      "      // single writer, read after join. "
      "fpr-lint: allow(shared-mutable-capture)\n"
      "      [&](std::size_t b, std::size_t e, unsigned) {\n"
      "        acc += e - b;\n"
      "      });\n"
      "}\n");
  EXPECT_FALSE(fired(f, "shared-mutable-capture"));
  EXPECT_FALSE(fired(f, "stale-suppression"));
}

// -- bare-exit-code ----------------------------------------------------------

TEST(BareExitCode, FiresOnLiteralReturnsInCommandHandlers) {
  const char* bad[] = {
      "int cmd_run() { return 1; }\n",
      "int cmd_run() { return 0; }\n",
      "int cmd_run() { return -1; }\n",
      "int usage() { return (2); }\n",
      "int cmd_run(bool ok) { return ok ? 0 : 1; }\n",
  };
  for (const char* text : bad) {
    EXPECT_TRUE(fired(lint_source("src/cli/cli.cpp", text), "bare-exit-code"))
        << text;
    EXPECT_TRUE(fired(lint_source("tools/trace/main.cpp", text),
                      "bare-exit-code"))
        << text;
  }
}

TEST(BareExitCode, ScopedToCommandHandlersOnly) {
  const std::string text = "int f() { return 1; }\n";
  EXPECT_FALSE(fired(lint_source("src/study/x.cpp", text), "bare-exit-code"));
  EXPECT_FALSE(fired(lint_source("src/model/x.cpp", text), "bare-exit-code"));
  // Library code under tools/ keeps its -1 sentinels.
  EXPECT_FALSE(fired(lint_source("tools/lint/lint_core.cpp", text),
                     "bare-exit-code"));
}

TEST(BareExitCode, NamedConstantsAndValueReturnsAreFine) {
  const char* good[] = {
      "int cmd_run() { return kExitOk; }\n",
      "int cmd_run(bool ok) { return ok ? kExitOk : kExitFailure; }\n",
      "std::string rule(std::size_t b, std::size_t e) {\n"
      "  return text.substr(b, e - b + 1);\n"
      "}\n",
      "int count() { return total + 1; }\n",
  };
  for (const char* text : good) {
    EXPECT_FALSE(fired(lint_source("src/cli/cli.cpp", text),
                       "bare-exit-code"))
        << text;
  }
}

TEST(BareExitCode, SuppressibleAtTheReturn) {
  const auto f = lint_source(
      "src/cli/cli.cpp",
      "int cmd() { return 77; }  // fpr-lint: allow(bare-exit-code)\n");
  EXPECT_FALSE(fired(f, "bare-exit-code"));
  EXPECT_FALSE(fired(f, "stale-suppression"));
}

// -- stale-suppression -------------------------------------------------------

TEST(StaleSuppression, LiveSuppressionIsSilent) {
  const auto f = lint_source(
      "src/arch/state.cpp",
      "int tuned = 0;  // fpr-lint: allow(non-const-global)\n");
  EXPECT_TRUE(f.empty());
}

TEST(StaleSuppression, UnusedSuppressionIsReported) {
  const auto f = lint_source(
      "src/arch/state.cpp",
      "void f();  // fpr-lint: allow(naked-new)\n");
  ASSERT_TRUE(fired(f, "stale-suppression"));
  EXPECT_EQ(f[0].line, 1);
  EXPECT_NE(f[0].message.find("allow(naked-new)"), std::string::npos);
}

TEST(StaleSuppression, MisspelledRuleNameIsCalledOut) {
  const auto f = lint_source(
      "src/arch/state.cpp",
      "int tuned = 0;  // fpr-lint: allow(non-const-globl)\n");
  EXPECT_TRUE(fired(f, "non-const-global"));  // the typo silenced nothing
  ASSERT_TRUE(fired(f, "stale-suppression"));
  bool called_out = false;
  for (const auto& finding : f) {
    if (finding.message.find("unknown rule 'non-const-globl'") !=
        std::string::npos) {
      called_out = true;
    }
  }
  EXPECT_TRUE(called_out);
}

TEST(StaleSuppression, DocumentationExamplesAreNotSuppressions) {
  // An allow() spelled inside a comment block with no adjacent code is
  // documentation (this very test file quotes the syntax), not a live
  // suppression — it neither silences nor goes stale.
  const auto f = lint_source(
      "src/common/x.cpp",
      "// Suppress a finding with:\n"
      "//   // fpr-lint: allow(rule-name)\n"
      "// on the offending line.\n"
      "\n"
      "void f();\n");
  EXPECT_TRUE(f.empty());
}

TEST(StaleSuppression, EscapableViaItsOwnRuleName) {
  // allow(x, stale-suppression) marks a deliberate placeholder: the
  // stale report for the unused allow(x) is consumed by the second
  // entry, and a used stale-suppression entry is never itself stale.
  const auto f = lint_source(
      "src/arch/state.cpp",
      "void f();  // fpr-lint: allow(naked-new, stale-suppression)\n");
  EXPECT_TRUE(f.empty());
}

TEST(StaleSuppression, RuleFilterDoesNotFakeStaleness) {
  // With reporting restricted to one rule, suppressions for the other
  // rules are still evaluated against the full catalogue — a live
  // suppression must not be reported stale just because its rule was
  // filtered from the output.
  const auto f = lint_source(
      "src/arch/state.cpp",
      "int tuned = 0;  // fpr-lint: allow(non-const-global)\n",
      {"stale-suppression"});
  EXPECT_TRUE(f.empty());
}

}  // namespace
