// Per-kernel behavioural tests: registry integrity, determinism, op-mix
// sanity, scaling behaviour. (Verification correctness is exercised in
// kernels_verify_test.cpp, which runs every kernel's self-check.)
#include <gtest/gtest.h>

#include <set>

#include "kernels/kernel.hpp"

namespace fpr::kernels {
namespace {

TEST(Registry, HasAllPaperApps) {
  const auto abbrevs = all_abbrevs();
  // 12 ECP + 8 RIKEN + HPL + HPCG + 2 BabelStream configs.
  EXPECT_EQ(abbrevs.size(), 24u);
  const std::set<std::string> s(abbrevs.begin(), abbrevs.end());
  for (const char* a :
       {"AMG", "CNDL", "CoMD", "LAGO", "MxIO", "MAMR", "MiFE", "MTri",
        "NekB", "SW4L", "FFT", "XSBn", "FFB", "FFVC", "MDYL", "mVMC",
        "NGSA", "NICM", "NTCh", "QCD", "HPL", "HPCG", "BABL2", "BABL14"}) {
    EXPECT_TRUE(s.count(a)) << a;
  }
}

TEST(Registry, AbbrevsUnique) {
  const auto abbrevs = all_abbrevs();
  const std::set<std::string> s(abbrevs.begin(), abbrevs.end());
  EXPECT_EQ(s.size(), abbrevs.size());
}

TEST(Registry, MakeByNameAndUnknownThrows) {
  EXPECT_EQ(make("AMG")->info().abbrev, "AMG");
  EXPECT_EQ(make("HPL")->info().abbrev, "HPL");
  EXPECT_THROW(make("NOPE"), std::invalid_argument);
}

TEST(Registry, SuiteSizesMatchPaper) {
  int ecp = 0, riken = 0, ref = 0;
  for (const auto& k : make_all()) {
    switch (k->info().suite) {
      case Suite::ecp: ++ecp; break;
      case Suite::riken: ++riken; break;
      case Suite::reference: ++ref; break;
    }
  }
  EXPECT_EQ(ecp, 12);   // Sec. II-B1
  EXPECT_EQ(riken, 8);  // Sec. II-B2
  EXPECT_EQ(ref, 4);    // HPL, HPCG, BABL2, BABL14
}

TEST(Registry, InfoFieldsPopulated) {
  for (const auto& k : make_all()) {
    const auto& i = k->info();
    EXPECT_FALSE(i.name.empty());
    EXPECT_FALSE(i.abbrev.empty());
    EXPECT_FALSE(i.language.empty());
    EXPECT_FALSE(i.paper_input.empty());
  }
}

class KernelRunTest : public ::testing::TestWithParam<std::string> {};

TEST_P(KernelRunTest, RunsVerifiesAndReports) {
  const auto kernel = make(GetParam());
  RunConfig cfg;
  cfg.scale = 0.25;  // keep tests quick
  const auto m = kernel->run(cfg);
  EXPECT_TRUE(m.verified);
  EXPECT_GT(m.host_seconds, 0.0);
  EXPECT_GT(m.working_set_bytes, 0u);
  EXPECT_FALSE(m.access.components.empty());
  EXPECT_GT(m.ops.classified_total(), 0u);
  EXPECT_GT(m.ops.bytes_read + m.ops.bytes_written, 0u);
  EXPECT_GT(m.traits.vec_eff, 0.0);
  EXPECT_LE(m.traits.vec_eff, 1.0);
}

TEST_P(KernelRunTest, DeterministicOpsAcrossRuns) {
  const auto kernel = make(GetParam());
  RunConfig cfg;
  cfg.scale = 0.2;
  const auto a = kernel->run(cfg);
  const auto b = kernel->run(cfg);
  EXPECT_EQ(a.ops.fp64, b.ops.fp64);
  EXPECT_EQ(a.ops.fp32, b.ops.fp32);
  EXPECT_EQ(a.ops.int_ops, b.ops.int_ops);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelRunTest,
    ::testing::ValuesIn(all_abbrevs()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// Op-mix expectations from the paper's Fig. 1 / Table IV.
TEST(OpMix, Fp64DominantApps) {
  for (const char* a : {"NekB", "SW4L", "HPL", "CoMD"}) {
    const auto m = make(a)->run({.threads = 0, .scale = 0.2});
    EXPECT_GT(m.ops.fp64, m.ops.fp32) << a;
  }
}

TEST(OpMix, Fp32DominantApps) {
  // Fig. 1: CANDLE, FFB, FFVC lean on single precision.
  for (const char* a : {"CNDL", "FFB", "FFVC"}) {
    const auto m = make(a)->run({.threads = 0, .scale = 0.2});
    EXPECT_GT(m.ops.fp32, m.ops.fp64) << a;
  }
}

TEST(OpMix, IntegerOnlyApps) {
  // Fig. 1 / Table IV: MiniTri and NGSA perform (almost) no FP work.
  for (const char* a : {"MTri", "NGSA"}) {
    const auto m = make(a)->run({.threads = 0, .scale = 0.2});
    EXPECT_GT(m.ops.int_share(), 0.95) << a;
  }
}

TEST(OpMix, MajorityIssueManyIntOps) {
  // Paper Sec. IV-A: 16 of 22 apps issue at least 50% integer ops. Check
  // the known int-heavy ones.
  for (const char* a : {"LAGO", "MAMR", "FFVC", "QCD", "MxIO"}) {
    const auto m = make(a)->run({.threads = 0, .scale = 0.2});
    EXPECT_GT(m.ops.int_share(), 0.5) << a;
  }
}

TEST(Scaling, OpsGrowWithScale) {
  // Raw (pre-extrapolation) op counts must grow with the input scale.
  // Host time would also grow but is too noisy under parallel test load.
  for (const char* a : {"HPL", "AMG", "FFT"}) {
    const auto small = make(a)->run({.threads = 0, .scale = 0.1});
    const auto large = make(a)->run({.threads = 0, .scale = 1.0});
    const double raw_small =
        static_cast<double>(small.ops.fp_total()) / small.ops_scale_to_paper;
    const double raw_large =
        static_cast<double>(large.ops.fp_total()) / large.ops_scale_to_paper;
    EXPECT_GT(raw_large, raw_small * 2.0) << a;
  }
}

TEST(Threads, SingleThreadMatchesParallelOps) {
  // Operation counts must be independent of the parallel decomposition.
  for (const char* a : {"NekB", "BABL2", "QCD"}) {
    const auto par = make(a)->run({.threads = 0, .scale = 0.2});
    const auto ser = make(a)->run({.threads = 1, .scale = 0.2});
    EXPECT_EQ(par.ops.fp64, ser.ops.fp64) << a;
    EXPECT_EQ(par.ops.fp32, ser.ops.fp32) << a;
  }
}

TEST(PhiAdjust, LaghosAndHpcgCarryDeviations) {
  // The paper-documented per-arch op deviations must be encoded.
  const auto lago = make("LAGO")->run({.threads = 0, .scale = 0.2});
  EXPECT_NEAR(lago.traits.phi_adjust.fp64, 1.92, 0.2);
  const auto hpcg = make("HPCG")->run({.threads = 0, .scale = 0.2});
  EXPECT_GT(hpcg.traits.phi_adjust.int_ops, 50.0);
}

TEST(Macsio, CarriesIoBytes) {
  const auto m = make("MxIO")->run({.threads = 0, .scale = 0.2});
  EXPECT_NEAR(m.traits.io_write_bytes, 433.8e6, 1e6);
}

}  // namespace
}  // namespace fpr::kernels
