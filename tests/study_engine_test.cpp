// Tests for the parallel StudyEngine: determinism across job counts,
// single-execution of the instrumented kernel-run stage, deterministic
// result ordering, and fail-fast propagation of verification failures.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/execution_context.hpp"
#include "io/study_json.hpp"
#include "study/study_engine.hpp"

namespace fpr::study {
namespace {

// ---------------------------------------------------------------------------
// Injectable fake kernels: cheap, deterministic, and instrumented with a
// shared run counter so tests can assert how often the engine executed
// the kernel-run stage (the "hoisted single instrumented run" guarantee:
// one run per kernel, not one per machine profile).

struct RunLog {
  std::atomic<int> total{0};
  std::vector<std::string> order;  // producer-side, serial by design
  std::mutex mu;
};

class FakeKernel : public kernels::ProxyKernel {
 public:
  FakeKernel(std::string abbrev, RunLog* log, bool fail,
             std::chrono::milliseconds delay = {})
      : log_(log), fail_(fail), delay_(delay) {
    info_.name = "Fake " + abbrev;
    info_.abbrev = std::move(abbrev);
    info_.suite = kernels::Suite::reference;
    info_.domain = kernels::Domain::reference;
    info_.pattern = kernels::ComputePattern::stream;
    info_.language = "C++";
    info_.paper_input = "synthetic";
  }

  [[nodiscard]] const kernels::KernelInfo& info() const override {
    return info_;
  }

  [[nodiscard]] model::WorkloadMeasurement run(
      ExecutionContext&, const kernels::RunConfig&) const override {
    log_->total.fetch_add(1);
    {
      std::lock_guard lock(log_->mu);
      log_->order.push_back(info_.abbrev);
    }
    if (fail_) {
      throw std::runtime_error(info_.abbrev +
                               ": verification failed (injected)");
    }
    if (delay_.count() > 0) std::this_thread::sleep_for(delay_);
    model::WorkloadMeasurement m;
    m.name = info_.abbrev;
    m.ops.fp64 = 1'000'000'000;
    m.ops.int_ops = 250'000'000;
    m.ops.bytes_read = 8'000'000'000;
    m.ops.bytes_written = 4'000'000'000;
    m.working_set_bytes = 1u << 26;
    m.access = memsim::AccessPatternSpec::single(
        memsim::StreamPattern{1u << 26, 3, 1});
    m.verified = true;
    m.checksum = 42.0;
    return m;
  }

 private:
  kernels::KernelInfo info_;
  RunLog* log_;
  bool fail_;
  std::chrono::milliseconds delay_;
};

StudyEngine::KernelFactory fake_factory(
    const std::vector<std::string>& names, RunLog* log,
    const std::string& failing = "",
    std::chrono::milliseconds delay = {}) {
  return [names, log, failing, delay] {
    std::vector<std::unique_ptr<kernels::ProxyKernel>> out;
    for (const auto& n : names) {
      out.push_back(
          std::make_unique<FakeKernel>(n, log, n == failing, delay));
    }
    return out;
  };
}

StudyConfig fake_config(unsigned jobs, unsigned kernel_jobs = 1) {
  StudyConfig cfg;
  cfg.trace_refs = 20'000;
  cfg.jobs = jobs;
  cfg.kernel_jobs = kernel_jobs;
  cfg.canonical_timing = true;
  return cfg;
}

// ---------------------------------------------------------------------------
// Determinism over real kernels: the parallel engine must be a pure
// reordering of the serial pipeline's work, so its StudyResults must be
// bit-identical (compared via the lossless JSON serialization) for any
// jobs count, including the serial jobs=1 baseline.

StudyConfig real_subset_config(unsigned jobs, unsigned kernel_jobs = 1) {
  StudyConfig cfg;
  cfg.scale = 0.15;
  cfg.threads = 1;
  cfg.trace_refs = 60'000;
  cfg.kernels = {"AMG", "BABL2", "MxIO"};
  cfg.jobs = jobs;
  cfg.kernel_jobs = kernel_jobs;
  cfg.canonical_timing = true;
  return cfg;
}

// The tentpole guarantee: the engine is a pure reordering of the serial
// pipeline over BOTH fan-out axes. Every (kernel_jobs, jobs) point of
// the {1,2,8}^2 matrix must serialize byte-identically to the
// (1,1) baseline — concurrent kernel runs in per-run ExecutionContexts
// may not perturb a single op count.
TEST(StudyEngine, KernelJobsTimesMachineJobsMatrixBitIdentical) {
  const std::string base =
      io::dump(io::to_json(StudyEngine(real_subset_config(1, 1)).run()));
  for (const unsigned kernel_jobs : {1u, 2u, 8u}) {
    for (const unsigned jobs : {1u, 2u, 8u}) {
      if (kernel_jobs == 1 && jobs == 1) continue;
      const std::string got = io::dump(io::to_json(
          StudyEngine(real_subset_config(jobs, kernel_jobs)).run()));
      EXPECT_EQ(base, got)
          << "kernel_jobs=" << kernel_jobs << " jobs=" << jobs;
    }
  }
}

TEST(StudyEngine, RunStudyDelegatesToEngine) {
  const auto direct = StudyEngine(real_subset_config(1)).run();
  const auto wrapped = run_study(real_subset_config(2));
  EXPECT_EQ(io::dump(io::to_json(direct)), io::dump(io::to_json(wrapped)));
}

TEST(StudyEngine, DeterministicOrderingAcrossJobs) {
  const std::vector<std::string> names = {"K0", "K1", "K2", "K3", "K4",
                                          "K5", "K6", "K7"};
  for (const unsigned jobs : {1u, 8u}) {
    RunLog jog;
    StudyEngine engine(fake_config(jobs), fake_factory(names, &jog));
    const auto results = engine.run();
    ASSERT_EQ(results.kernels.size(), names.size()) << "jobs=" << jobs;
    for (std::size_t i = 0; i < names.size(); ++i) {
      EXPECT_EQ(results.kernels[i].info.abbrev, names[i]) << "jobs=" << jobs;
      ASSERT_EQ(results.kernels[i].machines.size(), 3u);
      EXPECT_EQ(results.kernels[i].machines[0].cpu.short_name, "KNL");
      EXPECT_EQ(results.kernels[i].machines[1].cpu.short_name, "KNM");
      EXPECT_EQ(results.kernels[i].machines[2].cpu.short_name, "BDW");
    }
  }
}

TEST(StudyEngine, KernelSubsetFilterPreservesFactoryOrder) {
  RunLog log;
  auto cfg = fake_config(4);
  cfg.kernels = {"K3", "K1"};  // request order must NOT matter
  StudyEngine engine(cfg,
                     fake_factory({"K0", "K1", "K2", "K3", "K4"}, &log));
  const auto results = engine.run();
  ASSERT_EQ(results.kernels.size(), 2u);
  EXPECT_EQ(results.kernels[0].info.abbrev, "K1");
  EXPECT_EQ(results.kernels[1].info.abbrev, "K3");
  EXPECT_EQ(log.total.load(), 2);
}

// The satellite fix behind this PR: profiling a kernel's measurement for
// each of the three machines must share ONE instrumented run — the
// engine may never re-execute (or re-seed) the kernel per machine.
TEST(StudyEngine, KernelRunsExactlyOncePerKernel) {
  for (const unsigned kernel_jobs : {1u, 4u}) {
    for (const unsigned jobs : {1u, 4u}) {
      RunLog log;
      StudyEngine engine(fake_config(jobs, kernel_jobs),
                         fake_factory({"K0", "K1", "K2"}, &log));
      const auto results = engine.run();
      ASSERT_EQ(results.kernels.size(), 3u);
      // 1 run per kernel, even with concurrent producers racing the
      // claim cursor.
      EXPECT_EQ(log.total.load(), 3)
          << "kernel_jobs=" << kernel_jobs << " jobs=" << jobs;
      EXPECT_EQ(engine.stats().kernel_runs, 3u);
      // ... while every (kernel, machine) stage still ran.
      EXPECT_EQ(engine.stats().machine_evals, 9u);
      for (const auto& k : results.kernels) {
        EXPECT_TRUE(k.meas.verified);
        EXPECT_EQ(k.machines.size(), 3u);
        for (const auto& m : k.machines) {
          EXPECT_GT(m.perf.seconds, 0.0);
          EXPECT_FALSE(m.freq_sweep.empty());
        }
      }
    }
  }
}

// All FakeKernels publish the same access-pattern spec, so the engine's
// shared SimCache must simulate each machine's hierarchy exactly once
// and serve every other (kernel, machine) stage from memory — across
// any jobs split, with identical results (covered by the byte-identity
// tests above, which run through the same cache).
TEST(StudyEngine, MachineStagesShareMemoizedSimulations) {
  for (const unsigned kernel_jobs : {1u, 4u}) {
    for (const unsigned jobs : {1u, 4u}) {
      RunLog log;
      StudyEngine engine(fake_config(jobs, kernel_jobs),
                         fake_factory({"K0", "K1", "K2"}, &log));
      (void)engine.run();
      EXPECT_EQ(engine.stats().machine_evals, 9u);
      // 3 machines -> 3 distinct simulation keys across 9 stages. Under
      // concurrency two stages may both miss the same key before either
      // inserts (first writer wins, values identical), so only the
      // serial schedule pins the exact split.
      EXPECT_EQ(engine.stats().sim_hits + engine.stats().sim_misses, 9u)
          << "kernel_jobs=" << kernel_jobs << " jobs=" << jobs;
      EXPECT_GE(engine.stats().sim_misses, 3u);
      if (kernel_jobs == 1 && jobs == 1) {
        EXPECT_EQ(engine.stats().sim_misses, 3u);
        EXPECT_EQ(engine.stats().sim_hits, 6u);
      }
    }
  }
}

TEST(StudyEngine, FailFastPropagatesKernelException) {
  for (const unsigned jobs : {1u, 4u}) {
    RunLog log;
    StudyEngine engine(
        fake_config(jobs),
        fake_factory({"OK0", "BOOM", "NEVER0", "NEVER1"}, &log, "BOOM"));
    try {
      (void)engine.run();
      FAIL() << "expected the injected verification failure (jobs=" << jobs
             << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("BOOM: verification failed"),
                std::string::npos)
          << e.what();
    }
    // Fail-fast: the kernels after the failing one never started.
    EXPECT_EQ(log.total.load(), 2) << "jobs=" << jobs;  // OK0 + BOOM
    {
      std::lock_guard lock(log.mu);
      ASSERT_EQ(log.order.size(), 2u);
      EXPECT_EQ(log.order[0], "OK0");
      EXPECT_EQ(log.order[1], "BOOM");
    }
    EXPECT_EQ(engine.stats().kernel_runs, 1u) << "jobs=" << jobs;
  }
}

// With concurrent producers the strict "nothing after the failure"
// ordering is unobservable (another producer may have already claimed
// the next kernel), but the failure must still propagate, the engine
// must not hang, and producers must stop claiming once aborted.
TEST(StudyEngine, FailFastUnderConcurrentKernelProducers) {
  std::vector<std::string> names = {"BOOM"};
  for (int i = 0; i < 16; ++i) {
    std::string name = "K";
    name += std::to_string(i);
    names.push_back(std::move(name));
  }
  RunLog log;
  // BOOM (claimed first) throws immediately; the healthy fakes take
  // 25 ms each, so the abort flag is set microseconds into a >130 ms
  // window — for all 16 healthy kernels to run anyway, BOOM's producer
  // would have to stall for that whole window between claiming and
  // throwing. Wide enough to stay deterministic on loaded CI runners
  // (including under TSan), cheap enough for a unit test: the engine
  // aborts after the ~3 kernels already in flight.
  StudyEngine engine(
      fake_config(4, 4),
      fake_factory(names, &log, "BOOM", std::chrono::milliseconds(25)));
  EXPECT_THROW((void)engine.run(), std::runtime_error);
  // Fail-fast: at most the claims already in flight when BOOM fired.
  EXPECT_LT(log.total.load(), 17);
}

TEST(StudyEngine, CanonicalTimingZeroesHostSeconds) {
  auto cfg = real_subset_config(1);
  cfg.kernels = {"BABL2"};
  cfg.trace_refs = 20'000;

  cfg.canonical_timing = true;
  const auto canonical = StudyEngine(cfg).run();
  ASSERT_EQ(canonical.kernels.size(), 1u);
  EXPECT_EQ(canonical.kernels[0].meas.host_seconds, 0.0);

  cfg.canonical_timing = false;
  const auto timed = StudyEngine(cfg).run();
  EXPECT_GT(timed.kernels[0].meas.host_seconds, 0.0);
}

TEST(StudyEngine, GoldenConfigIsTheDocumentedDeterministicScale) {
  const auto cfg = golden_config();
  EXPECT_EQ(cfg.threads, 1u);  // host-independent op counts
  EXPECT_EQ(cfg.kernel_jobs, 1u);  // pinned, though any value matches
  EXPECT_TRUE(cfg.canonical_timing);
  EXPECT_LT(cfg.scale, 1.0);
  const std::vector<std::string> expected = {"AMG",   "HPL",  "XSBn",
                                             "BABL2", "MxIO", "NGSA"};
  EXPECT_EQ(cfg.kernels, expected);
}

TEST(StudyEngine, EmptySelectionYieldsEmptyResults) {
  RunLog log;
  auto cfg = fake_config(4);
  cfg.kernels = {"NOPE"};  // matches nothing in the injected factory
  StudyEngine engine(cfg, fake_factory({"K0"}, &log));
  const auto results = engine.run();
  EXPECT_TRUE(results.kernels.empty());
  EXPECT_EQ(log.total.load(), 0);
  EXPECT_EQ(engine.stats().machine_evals, 0u);
}

}  // namespace
}  // namespace fpr::study
