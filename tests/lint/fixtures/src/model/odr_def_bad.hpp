// fpr-lint fixture: a header defining a function with external linkage
// and no inline/template/constexpr marker — two includers would each
// emit the symbol and violate the one-definition rule. Never compiled —
// the fpr_lint_fixture_* CTest entry scans it with the built linter and
// expects [odr-header-def].
#pragma once

namespace fpr::model {

double fixture_scale(double x) { return 2.0 * x; }

}  // namespace fpr::model
