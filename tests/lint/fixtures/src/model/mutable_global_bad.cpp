// fpr-lint fixture: a mutable namespace-scope variable — exactly the
// shared state the PR 3 de-globalization removed. Never compiled — the
// fpr_lint_fixture_* CTest entry scans it and expects
// [non-const-global].
namespace fpr::model {

int tuning_iterations = 0;

}  // namespace fpr::model
