// fpr-lint fixture: a suppression comment whose rule no longer fires on
// the covered lines — dead weight that would silently swallow a future
// regression. Lives beside clean_ok.cpp (the live-suppression pair).
// Never compiled — the fpr_lint_fixture_* CTest entry scans it with the
// built linter and expects [stale-suppression].
namespace fpr {

constexpr int kTidyConstant = 7;  // fpr-lint: allow(non-const-global)

inline int tripled(int x) { return 3 * x; }

}  // namespace fpr
