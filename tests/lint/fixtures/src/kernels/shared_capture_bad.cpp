// fpr-lint fixture: a lambda handed to parallel_for_n captures a
// mutable local by reference and writes it from worker threads — the
// classic unsynchronised-accumulator race. Never compiled — the
// fpr_lint_fixture_* CTest entry scans it with the built linter and
// expects [shared-mutable-capture].
#include <cstddef>

#include "common/thread_pool.hpp"

namespace fpr {

double racy_sum(ThreadPool& pool, std::size_t n) {
  double total = 0.0;
  pool.parallel_for_n(4, n, [&](std::size_t b, std::size_t e, unsigned) {
    total += static_cast<double>(e - b);
  });
  return total;
}

}  // namespace fpr
