// fpr-lint fixture: raw allocation in a kernel hot path. Never
// compiled — the fpr_lint_fixture_* CTest entry scans it and expects
// [naked-new].
namespace fpr::kernels {

double* allocate_in_hot_path(unsigned n) {
  return new double[n];
}

}  // namespace fpr::kernels
