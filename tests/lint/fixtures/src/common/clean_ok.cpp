// fpr-lint fixture: a clean source, including one deliberate violation
// covered by a suppression comment. The fpr_lint_fixture_clean CTest
// entry runs the built linter over this file with every rule enabled
// and expects exit 0 — proving the allow() escape works end-to-end.
namespace fpr {

constexpr int kFixtureAnswer = 42;

int suppressed_counter = 0;  // fpr-lint: allow(non-const-global)

inline int doubled(int x) { return 2 * x; }

}  // namespace fpr
