// fpr-lint fixture: a stray ThreadPool::global() call outside the
// compatibility shim. Never compiled — the fpr_lint_fixture_* CTest
// entry scans it with the built linter and expects [global-thread-pool].
#include "common/thread_pool.hpp"

namespace fpr {

void run_on_shared_pool() {
  auto& pool = ThreadPool::global();
  (void)pool;
}

}  // namespace fpr
