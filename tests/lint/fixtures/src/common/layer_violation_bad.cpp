// fpr-lint fixture: the bottom layer reaching up to the study layer —
// an upward edge in the architecture DAG. Never compiled — the
// fpr_lint_fixture_* CTest entry scans it with the built linter and
// expects [layer-violation].
#include "study/study.hpp"

namespace fpr {

void peek_at_study() {
  study::StudyConfig cfg;
  (void)cfg;
}

}  // namespace fpr
