// fpr-lint fixture: a src/ header missing #pragma once (on purpose).
// Never compiled — the fpr_lint_fixture_* CTest entry scans it and
// expects [pragma-once].
namespace fpr::memsim {

inline int fixture_value() { return 42; }

}  // namespace fpr::memsim
