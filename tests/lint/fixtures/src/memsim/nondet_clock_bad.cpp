// fpr-lint fixture: wall-clock and libc randomness inside a scored
// path (src/memsim). Never compiled — the fpr_lint_fixture_* CTest
// entry scans it and expects [nondeterministic-call].
#include <chrono>
#include <cstdlib>

namespace fpr::memsim {

unsigned nondeterministic_seed() {
  const auto now = std::chrono::steady_clock::now();
  (void)now;
  return static_cast<unsigned>(rand());
}

}  // namespace fpr::memsim
