// fpr-lint fixture: a command handler returning raw integer exit codes
// instead of the named kExit* constants from src/cli/cli.hpp. Never
// compiled — the fpr_lint_fixture_* CTest entry scans it with the
// built linter and expects [bare-exit-code].
namespace fpr::cli {

int cmd_fixture(bool ok) {
  if (!ok) {
    return 1;
  }
  return 0;
}

}  // namespace fpr::cli
