// fpr-lint fixture: library code reading the process-wide fallback
// counter registry instead of counting through the bound
// ExecutionContext. Never compiled — the fpr_lint_fixture_* CTest
// entry scans it and expects [counters-without-context].
#include "counters/registry.hpp"

namespace fpr::study {

void peek_at_process_wide_tallies() {
  const auto snap = counters::global_snapshot();
  (void)snap;
}

}  // namespace fpr::study
