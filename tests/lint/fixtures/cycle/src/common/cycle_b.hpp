// fpr-lint fixture (2/3): middle node of the deliberate include cycle
// a -> b -> c -> a. See cycle_a.hpp.
#pragma once
#include "common/cycle_c.hpp"
