// fpr-lint fixture (1/3): first node of a deliberate three-header
// include cycle a -> b -> c -> a. Never compiled — the include-cycle
// CTest entry runs the built linter over the fixtures/cycle tree and
// expects [include-cycle].
#pragma once
#include "common/cycle_b.hpp"
