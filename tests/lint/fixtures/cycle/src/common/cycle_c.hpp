// fpr-lint fixture (3/3): closing node of the deliberate include cycle
// a -> b -> c -> a. See cycle_a.hpp.
#pragma once
#include "common/cycle_a.hpp"
