// ExecutionContext tests: counter isolation between concurrent contexts,
// exception propagation under contention, pool ownership/leasing, and
// the thread-scope binding rules. This is the concurrency gate for the
// de-globalized execution layer (run under ThreadSanitizer in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/execution_context.hpp"
#include "counters/assay.hpp"
#include "counters/registry.hpp"

namespace fpr {
namespace {

TEST(ExecutionContext, CoversFullRangeAndCountsIntoOwnSink) {
  ExecutionContext ctx(4);
  std::atomic<std::size_t> visited{0};
  ctx.parallel_for(1000, [&](std::size_t lo, std::size_t hi, unsigned) {
    visited.fetch_add(hi - lo);
    counters::add_fp64(hi - lo);
  });
  EXPECT_EQ(visited.load(), 1000u);
  EXPECT_EQ(ctx.counters().snapshot().fp64, 1000u);
  // Nothing leaked into the process-wide fallback registry... which
  // other tests may have touched; assert via a second, disjoint context.
  ExecutionContext other(2);
  EXPECT_EQ(other.counters().snapshot(), counters::OpTally{});
}

TEST(ExecutionContext, ForEachVisitsEveryIndexOnce) {
  ExecutionContext ctx(3);
  std::vector<std::atomic<int>> hits(257);
  ctx.for_each(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ExecutionContext, ConcurrencyReflectsPoolSize) {
  ExecutionContext one(1);
  EXPECT_EQ(one.concurrency(), 1u);
  ExecutionContext four(4);
  EXPECT_EQ(four.concurrency(), 4u);
}

TEST(ExecutionContext, LeasedPoolIsSharedNotOwned) {
  auto pool = std::make_shared<ThreadPool>(3u);
  ExecutionContext ctx(pool);
  EXPECT_EQ(&ctx.pool(), pool.get());
  EXPECT_EQ(ctx.concurrency(), 3u);
  ctx.parallel_for(10, [](std::size_t lo, std::size_t hi, unsigned) {
    counters::add_int(hi - lo);
  });
  EXPECT_EQ(ctx.counters().snapshot().int_ops, 10u);
  // The pool outlives the context that leased it.
}

TEST(ExecutionContext, ScopeBindsSerialCountingToSlotZero) {
  ExecutionContext ctx(2);
  {
    ExecutionContext::Scope scope(ctx);
    counters::add_fp32(9);
  }
  EXPECT_EQ(ctx.counters().slot(0).fp32, 9u);
  counters::add_fp32(1);  // after: back to the fallback registry
  EXPECT_EQ(ctx.counters().snapshot().fp32, 9u);
}

TEST(ExecutionContext, ScopesNestAndRestore) {
  ExecutionContext outer(1), inner(1);
  {
    ExecutionContext::Scope a(outer);
    counters::add_int(1);
    {
      ExecutionContext::Scope b(inner);
      counters::add_int(10);
    }
    counters::add_int(100);
  }
  EXPECT_EQ(outer.counters().snapshot().int_ops, 101u);
  EXPECT_EQ(inner.counters().snapshot().int_ops, 10u);
}

// The tentpole isolation property: many contexts running parallel
// regions at the same time, each with its own pool and sink, must each
// observe exactly its own counts — bit-exact, no cross-contamination,
// no lost updates. (Before this refactor, two concurrent runs would
// race the global pool's single job slot and each other's tallies.)
TEST(ExecutionContext, ManyConcurrentContextsStayIsolated) {
  constexpr int kContexts = 8;
  constexpr int kRounds = 20;
  std::vector<std::thread> drivers;
  std::vector<std::uint64_t> got(kContexts, 0);
  for (int c = 0; c < kContexts; ++c) {
    drivers.emplace_back([c, &got] {
      ExecutionContext ctx(2);
      const std::size_t n = 100 + 17 * static_cast<std::size_t>(c);
      for (int r = 0; r < kRounds; ++r) {
        ctx.parallel_for(n, [](std::size_t lo, std::size_t hi, unsigned) {
          counters::add_fp64(hi - lo);
        });
      }
      got[static_cast<std::size_t>(c)] = ctx.counters().snapshot().fp64;
    });
  }
  for (auto& t : drivers) t.join();
  for (int c = 0; c < kContexts; ++c) {
    EXPECT_EQ(got[static_cast<std::size_t>(c)],
              kRounds * (100u + 17u * static_cast<unsigned>(c)))
        << "context " << c;
  }
}

// Concurrent assayed regions: the end-to-end shape of parallel kernel
// runs — every context assays its own parallel work while seven other
// contexts are mid-flight.
TEST(ExecutionContext, ConcurrentAssaysMeasureExactDeltas) {
  constexpr int kContexts = 8;
  std::vector<std::thread> drivers;
  std::vector<std::uint64_t> measured(kContexts, 0);
  for (int c = 0; c < kContexts; ++c) {
    drivers.emplace_back([c, &measured] {
      ExecutionContext ctx(3);
      ExecutionContext::Scope scope(ctx);
      counters::add_fp64(999);  // pre-assay noise in the same sink
      counters::AssayRecorder rec(&ctx.counters());
      rec.start();
      ctx.parallel_for(64, [](std::size_t lo, std::size_t hi, unsigned) {
        counters::add_fp64(hi - lo);
      });
      counters::add_fp64(5);  // serial tail inside the region
      rec.stop();
      measured[static_cast<std::size_t>(c)] = rec.ops().fp64;
    });
  }
  for (auto& t : drivers) t.join();
  for (const auto m : measured) EXPECT_EQ(m, 69u);
}

// Exception propagation under contention: while other contexts hammer
// their pools, a throwing chunk must surface on its own caller — and
// only there — leaving the context reusable.
TEST(ExecutionContext, ExceptionPropagationUnderContention) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> noise;
  for (int c = 0; c < 4; ++c) {
    noise.emplace_back([&stop] {
      ExecutionContext ctx(2);
      while (!stop.load(std::memory_order_relaxed)) {
        ctx.parallel_for(64, [](std::size_t lo, std::size_t hi, unsigned) {
          counters::add_int(hi - lo);
        });
      }
    });
  }

  ExecutionContext ctx(4);
  for (int round = 0; round < 50; ++round) {
    try {
      ctx.parallel_for(100, [&](std::size_t lo, std::size_t, unsigned) {
        if (lo == 0) throw std::runtime_error("chunk failed");
        counters::add_int(1);
      });
      FAIL() << "expected the chunk exception (round " << round << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "chunk failed");
    }
    // The region bookkeeping unwound: assays work again immediately.
    counters::AssayRecorder rec(&ctx.counters());
    rec.start();
    rec.stop();
  }

  stop.store(true);
  for (auto& t : noise) t.join();
}

}  // namespace
}  // namespace fpr
