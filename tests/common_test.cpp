// Unit tests for the common substrate: stats, tables, RNG, buffers,
// thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "common/units.hpp"

namespace fpr {
namespace {

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(Summarize, FastestAndSpread) {
  // 10 timings; fastest = 1.0; fastest half = {1.0 .. 1.04}.
  std::vector<double> t{1.04, 1.01, 1.0, 1.02, 1.03,
                        2.0,  2.1,  2.2, 2.3,  2.4};
  const auto s = summarize(t);
  EXPECT_DOUBLE_EQ(s.best, 1.0);
  EXPECT_NEAR(s.spread_fast_half, 0.04, 1e-12);
  EXPECT_NEAR(s.median, (1.04 + 2.0) / 2, 1e-12);
}

TEST(Summarize, EmptyInput) {
  const auto s = summarize({});
  EXPECT_EQ(s.best, 0.0);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Rng, DeterministicAcrossInstances) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInRange) {
  Xoshiro256 r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, BelowBound) {
  Xoshiro256 r(9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, ThreadSeedsDistinct) {
  std::set<std::uint64_t> seeds;
  for (unsigned t = 0; t < 64; ++t) seeds.insert(thread_seed(42, t));
  EXPECT_EQ(seeds.size(), 64u);
}

TEST(AlignedBuffer, AlignmentAndFill) {
  AlignedBuffer<double> buf(1000, 3.5);
  EXPECT_EQ(buf.size(), 1000u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kVecAlign, 0u);
  for (double v : buf) EXPECT_EQ(v, 3.5);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<int> a(16, 7);
  int* p = a.data();
  AlignedBuffer<int> b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_TRUE(a.empty());
}

TEST(AlignedBuffer, EmptyIsSafe) {
  AlignedBuffer<double> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size_bytes(), 0u);
}

TEST(TextTable, RendersAlignedAscii) {
  TextTable t({"a", "bb"});
  t.add_row({"x", "y"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("| a"), std::string::npos);
  EXPECT_NE(os.str().find("| x"), std::string::npos);
}

TEST(TextTable, RejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, CsvEscapesSpecials) {
  TextTable t({"h"});
  t.add_row({"va\"l,ue"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"va\"\"l,ue\""), std::string::npos);
}

TEST(TextTable, RowBuilderFormats) {
  TextTable t({"s", "d", "i"});
  t.row().cell("x").num(1.23456, 2).integer(42).done();
  EXPECT_EQ(t.rows()[0][1], "1.23");
  EXPECT_EQ(t.rows()[0][2], "42");
}

TEST(Units, Formatting) {
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(2 * GiB), "2.00 GiB");
  EXPECT_EQ(format_count(1.5e9), "1.50 G");
  EXPECT_DOUBLE_EQ(gflops(2e9, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(gbs(1e9, 2.0), 0.5);
  EXPECT_EQ(gflops(1e9, 0.0), 0.0);
}

TEST(ThreadPool, CoversFullRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t lo, std::size_t hi, unsigned) {
    for (std::size_t i = lo; i < hi; ++i) hits[i]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RespectsWorkerLimit) {
  ThreadPool pool(8);
  std::set<unsigned> ids;
  std::mutex mu;
  pool.parallel_for_n(2, 100, [&](std::size_t, std::size_t, unsigned id) {
    std::lock_guard lock(mu);
    ids.insert(id);
  });
  EXPECT_LE(ids.size(), 2u);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t lo, std::size_t, unsigned) {
                          if (lo == 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // Pool stays usable afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t lo, std::size_t hi, unsigned) {
    count += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ZeroIterationsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t, unsigned) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  std::atomic<int> n{0};
  pool.parallel_for(50, [&](std::size_t lo, std::size_t hi, unsigned id) {
    EXPECT_EQ(id, 0u);
    n += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(n.load(), 50);
}

TEST(WallTimer, MeasuresElapsed) {
  WallTimer t;
  volatile double sink = 0;
  // Plain assignment: compound assignment on volatile is deprecated in
  // C++20 (-Wvolatile).
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GT(t.seconds(), 0.0);
  (void)sink;
}

}  // namespace
}  // namespace fpr
