// Minimal monotonic wall-clock timer. All kernel timings in this project
// are wall time over the assay (solver) region, mirroring the paper's use
// of MPI_Wtime() around the kernel only.
#pragma once

#include <chrono>

namespace fpr {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  /// Restart the timer.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace fpr
