// Exact division/modulo by a runtime-constant 64-bit divisor via a
// precomputed multiply-shift reciprocal (the classic "magic number"
// strength reduction). A 64-bit hardware divide costs ~20-40 cycles;
// the reciprocal path is a widening multiply, a shift, and a one-step
// fixup — and, unlike approximate schemes, it is exact for EVERY
// dividend: the fixup bounds the truncated-reciprocal error below one
// quotient unit, so results equal operator/ and operator% bit for bit.
// The memory simulator uses it for cache set indexing (scaled cache
// geometries are rarely power-of-two) and trace-generator slot picks.
#pragma once

#include <bit>
#include <cstdint>
#include <stdexcept>

namespace fpr {

class MagicDiv {
 public:
  MagicDiv() = default;  ///< divisor 1 (identity)

  explicit MagicDiv(std::uint64_t d) : d_(d) {
    if (d == 0) throw std::invalid_argument("MagicDiv: divisor must be > 0");
    if (std::has_single_bit(d)) {
      shift_ = static_cast<unsigned>(std::countr_zero(d));
      pow2_ = true;
      return;
    }
    // mul = floor(2^(64+s) / d) with s = bit_width(d) - 1 < 64. The
    // approximation q0 = (mul * x) >> (64+s) undershoots x/d by less
    // than 2^-s * (x / 2^64) < 1, so at most one +1 fixup is needed.
    shift_ = static_cast<unsigned>(std::bit_width(d)) - 1;
    mul_ = static_cast<std::uint64_t>(
        ((static_cast<unsigned __int128>(1) << 64) << shift_) / d);
    pow2_ = false;
  }

  [[nodiscard]] std::uint64_t divisor() const { return d_; }

  /// x / divisor, exactly.
  [[nodiscard]] std::uint64_t div(std::uint64_t x) const {
    if (pow2_) return x >> shift_;
    std::uint64_t q = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(mul_) * x) >> 64) >> shift_;
    q += static_cast<std::uint64_t>(x - q * d_ >= d_);
    return q;
  }

  /// x % divisor, exactly.
  [[nodiscard]] std::uint64_t mod(std::uint64_t x) const {
    return x - div(x) * d_;
  }

 private:
  std::uint64_t mul_ = 0;
  std::uint64_t d_ = 1;
  unsigned shift_ = 0;
  bool pow2_ = true;
};

}  // namespace fpr
