// Cache-line / vector-register aligned array storage. HPC kernels in this
// repo allocate their fields through AlignedBuffer so that (a) compilers
// can vectorize without peel loops and (b) the memory-traffic model can
// assume naturally aligned streams.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <span>
#include <utility>

namespace fpr {

inline constexpr std::size_t kCacheLine = 64;
inline constexpr std::size_t kVecAlign = 64;  // AVX-512 register width

/// Owning, aligned, fixed-size array of trivially-destructible T.
template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_destructible_v<T>,
                "AlignedBuffer is for POD-like numeric data");

 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t n, T fill = T{}) : size_(n) {
    if (n == 0) return;
    void* p = ::operator new[](n * sizeof(T), std::align_val_t{kVecAlign});
    data_ = static_cast<T*>(p);
    for (std::size_t i = 0; i < n; ++i) data_[i] = fill;
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  ~AlignedBuffer() { release(); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size_bytes() const { return size_ * sizeof(T); }

  T* data() { return data_; }
  const T* data() const { return data_; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  [[nodiscard]] std::span<T> span() { return {data_, size_}; }
  [[nodiscard]] std::span<const T> span() const { return {data_, size_}; }

 private:
  void release() {
    if (data_ != nullptr) {
      ::operator delete[](data_, std::align_val_t{kVecAlign});
      data_ = nullptr;
    }
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace fpr
