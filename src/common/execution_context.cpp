#include "common/execution_context.hpp"

#include <stdexcept>

// Composition-root exception, mirroring the counters/sink.hpp edge in
// the header: the context *owns* the run's SimCache lease, and only
// this .cpp needs the complete type (the header forward-declares it).
// fpr-lint: allow(layer-violation)
#include "memsim/sim_cache.hpp"

namespace fpr {

namespace {

/// Brackets a parallel region in the sink's bookkeeping so assays can
/// detect non-quiescent snapshots; exception-safe by construction.
class RegionGuard {
 public:
  explicit RegionGuard(counters::CounterSink& sink) : sink_(sink) {
    sink_.enter_region();
  }
  ~RegionGuard() { sink_.exit_region(); }
  RegionGuard(const RegionGuard&) = delete;
  RegionGuard& operator=(const RegionGuard&) = delete;

 private:
  counters::CounterSink& sink_;
};

}  // namespace

ExecutionContext::ExecutionContext(unsigned threads)
    : pool_(std::make_shared<ThreadPool>(threads)),
      sink_(pool_->size() + 1),
      sim_cache_(std::make_shared<memsim::SimCache>()) {}

ExecutionContext::ExecutionContext(std::shared_ptr<ThreadPool> pool)
    : pool_(std::move(pool)),
      sink_(pool_->size() + 1),
      sim_cache_(std::make_shared<memsim::SimCache>()) {}

void ExecutionContext::lease_sim_cache(
    std::shared_ptr<memsim::SimCache> cache) {
  if (!cache) {
    throw std::invalid_argument("leased SimCache must not be null");
  }
  sim_cache_ = std::move(cache);
}

void ExecutionContext::parallel_for(std::size_t n, const Body& body) {
  parallel_for_n(concurrency(), n, body);
}

void ExecutionContext::parallel_for_n(unsigned max_workers, std::size_t n,
                                      const Body& body) {
  RegionGuard region(sink_);
  pool_->parallel_for_n(
      max_workers, n,
      [this, &body](std::size_t begin, std::size_t end, unsigned worker) {
        counters::ScopedCounting bind(sink_, worker);
        body(begin, end, worker);
      });
}

}  // namespace fpr
