// Streaming statistics (Welford) and small-sample summaries used by the
// methodology layer: the paper reports the fastest of ten runs and notes
// the fastest 50% vary by 3.9% on average — we reproduce those summaries.
#pragma once

#include <cstddef>
#include <vector>

namespace fpr {

/// Numerically stable streaming mean/variance/min/max accumulator.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Summary of a batch of repeated timings.
struct SampleSummary {
  double best = 0.0;       ///< fastest run (the paper's reported value)
  double median = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double spread_fast_half = 0.0;  ///< relative spread of the fastest 50%
};

/// Summarize a vector of timings (need not be sorted). Empty input yields
/// an all-zero summary.
SampleSummary summarize(std::vector<double> samples);

/// Linear interpolation percentile of a sample set, p in [0,100].
double percentile(std::vector<double> samples, double p);

}  // namespace fpr
