#include "common/thread_pool.hpp"

#include <algorithm>

namespace fpr {

ThreadPool::ThreadPool(unsigned threads) {
  unsigned n = threads != 0 ? threads : std::thread::hardware_concurrency();
  n = std::max(1u, n);
  // Worker 0 is the calling thread; spawn n-1 helpers.
  workers_.reserve(n - 1);
  for (unsigned id = 1; id < n; ++id) {
    workers_.emplace_back([this, id] { worker_loop(id); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::run_chunk(Job& job, unsigned worker_index) {
  const std::size_t n = job.n;
  const unsigned p = job.participants;
  const std::size_t chunk = (n + p - 1) / p;
  const std::size_t begin = std::min(n, worker_index * chunk);
  const std::size_t end = std::min(n, begin + chunk);
  if (begin < end) {
    try {
      (*job.body)(begin, end, worker_index);
    } catch (...) {
      std::lock_guard lock(job.error_mu);
      if (!job.error) job.error = std::current_exception();
    }
  }
}

void ThreadPool::worker_loop(unsigned id) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock lock(mu_);
      cv_start_.wait(lock, [&] { return stop_ || job_epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = job_epoch_;
      job = job_;
    }
    if (job != nullptr && id < job->participants) {
      run_chunk(*job, id);
    }
    if (job != nullptr) {
      if (job->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          static_cast<unsigned>(workers_.size())) {
        // Take the mutex before notifying: the counter is updated outside
        // it, so an unlocked notify could fire between the caller's
        // predicate check and its sleep (lost wakeup -> caller hangs).
        std::lock_guard lock(mu_);
        cv_done_.notify_one();
      }
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, unsigned)>& body) {
  parallel_for_n(size() + 1, n, body);
}

void ThreadPool::parallel_for_n(
    unsigned max_workers, std::size_t n,
    const std::function<void(std::size_t, std::size_t, unsigned)>& body) {
  if (n == 0) return;
  const unsigned participants =
      std::max(1u, std::min<unsigned>(max_workers, size() + 1));
  if (participants == 1 || workers_.empty()) {
    body(0, n, 0);
    return;
  }
  Job job;
  job.n = n;
  job.participants = participants;
  job.body = &body;
  {
    std::lock_guard lock(mu_);
    job_ = &job;
    ++job_epoch_;
  }
  cv_start_.notify_all();
  run_chunk(job, 0);  // caller participates as worker 0
  {
    std::unique_lock lock(mu_);
    cv_done_.wait(lock, [&] {
      return job.done.load(std::memory_order_acquire) ==
             static_cast<unsigned>(workers_.size());
    });
    job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace fpr
