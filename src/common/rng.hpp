// Deterministic, seedable PRNGs (SplitMix64 and xoshiro256**) so every
// kernel run is reproducible across machines and thread counts. The paper
// stresses repeatable inputs (Sec. III-A, "Are the results repeatable
// (randomness/seeds)?"); we fix seeds per kernel and derive per-thread
// streams with SplitMix64 jumps.
#pragma once

#include <cstdint>

namespace fpr {

/// SplitMix64: tiny, high-quality 64-bit generator; also used to seed
/// xoshiro and to derive independent per-thread streams.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast general-purpose generator for bulk synthetic data.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  constexpr result_type operator()() { return next(); }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0.
  constexpr std::uint64_t below(std::uint64_t n) { return next() % n; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

/// Derive a stream seed for worker `tid` from a kernel-level seed.
constexpr std::uint64_t thread_seed(std::uint64_t base, unsigned tid) {
  SplitMix64 sm(base ^ (0xa0761d6478bd642full * (tid + 1)));
  return sm.next();
}

}  // namespace fpr
