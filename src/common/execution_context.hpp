// Run-scoped execution state: a worker pool plus a context-local counter
// sink, bundled so a kernel run owns everything mutable it touches. This
// replaces the two pieces of process-global state the repo used to lean
// on — ThreadPool::global() and the process-wide tally registry — which
// is what lets independent kernel runs execute concurrently without
// racing a shared job slot or cross-contaminating each other's assay
// deltas (the paper's SDE/PCM instrumentation is likewise scoped to one
// workload process per run, Sec. III-A).
//
// A context either owns its pool (the common case: one private pool per
// kernel run) or leases a caller-provided one via shared_ptr. Leases
// must be exclusive in time: a ThreadPool executes one parallel region
// at a time, so two contexts may share a pool only if they never run
// regions concurrently.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

#include "common/thread_pool.hpp"
// ExecutionContext is the composition root: the one place that bundles
// a pool with a counter sink so every higher layer can take "the run's
// context" instead of wiring the two by hand. That makes this edge into
// counters/ deliberate — the alternative (a context type per layer)
// would duplicate the lease/region machinery everywhere.
// fpr-lint: allow(layer-violation)
#include "counters/sink.hpp"

namespace fpr::memsim {
class SimCache;  // memsim/sim_cache.hpp
}

namespace fpr {

class ExecutionContext {
 public:
  using Body = std::function<void(std::size_t, std::size_t, unsigned)>;

  /// Own a fresh pool with `threads` workers (0 = hardware concurrency).
  explicit ExecutionContext(unsigned threads = 0);

  /// Lease an existing pool (see the exclusivity note above).
  explicit ExecutionContext(std::shared_ptr<ThreadPool> pool);

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  /// Workers a region can field, caller included (pool size + 1).
  [[nodiscard]] unsigned concurrency() const { return pool_->size() + 1; }

  [[nodiscard]] ThreadPool& pool() { return *pool_; }

  /// The context's counter sink: where every count made inside this
  /// context's parallel regions (and under a Scope) accumulates.
  [[nodiscard]] counters::CounterSink& counters() { return sink_; }
  [[nodiscard]] const counters::CounterSink& counters() const {
    return sink_;
  }

  /// The context's memoized-simulation store (memsim::SimCache): every
  /// hierarchy replay made on behalf of this run consults it, so
  /// repeated identical simulations are paid once per run. Owned by
  /// default; lease_sim_cache shares one store across contexts (the
  /// StudyEngine leases its engine-wide cache into every producer
  /// context so hits cross kernel-jobs and machine stages). Never null.
  [[nodiscard]] const std::shared_ptr<memsim::SimCache>& sim_cache() const {
    return sim_cache_;
  }

  /// Replace the owned cache with a shared one. SimCache is internally
  /// synchronized, so unlike pool leases this needs no exclusivity.
  void lease_sim_cache(std::shared_ptr<memsim::SimCache> cache);

  /// Run `body(begin, end, worker_id)` over [0, n) split into contiguous
  /// static chunks (deterministic op counts), every participating worker
  /// counting into its own sink slot. Blocks until all chunks complete;
  /// the first exception thrown by any chunk is rethrown on the caller.
  void parallel_for(std::size_t n, const Body& body);

  /// Same, limited to at most `max_workers` participants (mirrors running
  /// a benchmark with a smaller #threads configuration).
  void parallel_for_n(unsigned max_workers, std::size_t n, const Body& body);

  /// Convenience element-wise form: body(i) per index.
  template <typename F>
  void for_each(std::size_t n, F&& body) {
    parallel_for(n, [&body](std::size_t begin, std::size_t end, unsigned) {
      for (std::size_t i = begin; i < end; ++i) body(i);
    });
  }

  /// Thread-scoped binding: while a Scope is alive, the calling thread's
  /// counting (counters::add_* / counted<T>) lands in this context's
  /// sink slot 0 — the orchestrator slot — instead of the process-wide
  /// fallback. Parallel regions bind their workers automatically; a
  /// Scope covers the serial sections in between.
  class Scope {
   public:
    explicit Scope(ExecutionContext& ctx) : bind_(ctx.sink_, 0) {}

   private:
    counters::ScopedCounting bind_;
  };

 private:
  std::shared_ptr<ThreadPool> pool_;
  counters::CounterSink sink_;
  std::shared_ptr<memsim::SimCache> sim_cache_;
};

}  // namespace fpr
