// Unit constants and human-readable formatting for byte / rate / flop
// quantities used throughout the study.
#pragma once

#include <cstdint>
#include <string>

namespace fpr {

inline constexpr std::uint64_t KiB = 1024ull;
inline constexpr std::uint64_t MiB = 1024ull * KiB;
inline constexpr std::uint64_t GiB = 1024ull * MiB;

inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kTera = 1e12;

/// Gflop/s value from a flop count and elapsed seconds.
constexpr double gflops(double flops, double seconds) {
  return seconds > 0.0 ? flops / seconds / kGiga : 0.0;
}

/// GB/s (decimal, as used by stream benchmarks and the paper's Table I).
constexpr double gbs(double bytes, double seconds) {
  return seconds > 0.0 ? bytes / seconds / kGiga : 0.0;
}

/// "1.5 GiB"-style rendering of a byte count (binary prefixes).
std::string format_bytes(std::uint64_t bytes);

/// "12.3 G"-style rendering of a large count (decimal prefixes).
std::string format_count(double count);

}  // namespace fpr
