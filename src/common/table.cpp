#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "common/units.hpp"

namespace fpr {

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string format_bytes(std::uint64_t bytes) {
  const char* suffix = "B";
  double v = static_cast<double>(bytes);
  if (bytes >= GiB) {
    v /= static_cast<double>(GiB);
    suffix = "GiB";
  } else if (bytes >= MiB) {
    v /= static_cast<double>(MiB);
    suffix = "MiB";
  } else if (bytes >= KiB) {
    v /= static_cast<double>(KiB);
    suffix = "KiB";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", v, suffix);
  return buf;
}

std::string format_count(double count) {
  const char* suffix = "";
  double v = count;
  if (count >= kTera) {
    v /= kTera;
    suffix = "T";
  } else if (count >= kGiga) {
    v /= kGiga;
    suffix = "G";
  } else if (count >= kMega) {
    v /= kMega;
    suffix = "M";
  } else if (count >= kKilo) {
    v /= kKilo;
    suffix = "k";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", v, suffix);
  return buf;
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("TextTable needs at least one column");
  }
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable row has wrong number of cells");
  }
  rows_.push_back(std::move(cells));
}

TextTable::RowBuilder& TextTable::RowBuilder::cell(std::string_view text) {
  cells_.emplace_back(text);
  return *this;
}

TextTable::RowBuilder& TextTable::RowBuilder::num(double value,
                                                  int precision) {
  cells_.push_back(fmt_double(value, precision));
  return *this;
}

TextTable::RowBuilder& TextTable::RowBuilder::integer(long long value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

void TextTable::RowBuilder::done() { table_->add_row(std::move(cells_)); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << " |\n";
  };
  auto print_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << (c == 0 ? "+" : "+") << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };
  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void TextTable::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace fpr
