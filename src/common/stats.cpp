#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace fpr {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

SampleSummary summarize(std::vector<double> samples) {
  SampleSummary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.best = samples.front();
  const std::size_t n = samples.size();
  s.median = (n % 2 == 1) ? samples[n / 2]
                          : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  RunningStats rs;
  for (double x : samples) rs.add(x);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  // Relative spread of the fastest half, cf. the paper's 3.9% observation.
  const std::size_t half = std::max<std::size_t>(1, n / 2);
  const double fastest = samples.front();
  const double slowest_of_fast_half = samples[half - 1];
  s.spread_fast_half =
      fastest > 0.0 ? (slowest_of_fast_half - fastest) / fastest : 0.0;
  return s;
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  if (p <= 0.0) return samples.front();
  if (p >= 100.0) return samples.back();
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) return samples.back();
  return samples[lo] * (1.0 - frac) + samples[lo + 1] * frac;
}

}  // namespace fpr
