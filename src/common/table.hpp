// ASCII / CSV table rendering for the figure and table reproduction
// harness. Every bench binary prints its rows through TextTable so the
// output format is uniform and machine-parsable (CSV mode).
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace fpr {

/// Column-oriented text table with automatic width computation.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Append a full row; must have exactly as many cells as headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: start a row builder.
  class RowBuilder {
   public:
    RowBuilder& cell(std::string_view text);
    RowBuilder& num(double value, int precision = 3);
    RowBuilder& integer(long long value);
    /// Commit the row to the table. Must be called exactly once.
    void done();

   private:
    friend class TextTable;
    explicit RowBuilder(TextTable& table) : table_(&table) {}
    TextTable* table_;
    std::vector<std::string> cells_;
  };
  RowBuilder row() { return RowBuilder(*this); }

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const { return headers_.size(); }
  [[nodiscard]] const std::vector<std::string>& headers() const {
    return headers_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

  /// Render as an aligned ASCII table.
  void print(std::ostream& os) const;

  /// Render as CSV (RFC-4180 quoting for cells containing commas/quotes).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision float formatting ("12.35").
std::string fmt_double(double v, int precision = 3);

}  // namespace fpr
