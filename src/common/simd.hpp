// Runtime-dispatched SIMD kernels shared by hot paths that must stay
// bit-identical to their scalar formulations. Dispatch is a cached CPUID
// probe, not a build-time switch: the same binary runs (and the tests
// exercise both implementations) on any x86-64 host, and non-x86 builds
// compile the scalar fallback only.
#pragma once

#include <bit>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif

namespace fpr::simd {

/// True when the running CPU supports the AVX2 kernels below. Cached in
/// a function-local static: the probe is a CPUID leaf, constant for the
/// process lifetime.
inline bool avx2_available() {
#if defined(__x86_64__) || defined(_M_X64)
  static const bool ok = __builtin_cpu_supports("avx2") != 0;
  return ok;
#else
  return false;
#endif
}

#if defined(__x86_64__) || defined(_M_X64)

/// Probe `count` contiguous 64-bit tags for `tag`: one 256-bit compare
/// per four ways, movemask, lowest set lane. Returns the matching way
/// index or `count` when absent. Requires count % 4 == 0 and
/// avx2_available(); a valid tag occurs at most once per set (cache
/// invariant), so "first match" equals the scalar loop's "last match".
__attribute__((target("avx2"))) inline std::uint32_t probe_tags_avx2(
    const std::uint64_t* tags, std::uint32_t count, std::uint64_t tag) {
  const __m256i needle = _mm256_set1_epi64x(static_cast<long long>(tag));
  for (std::uint32_t w = 0; w < count; w += 4) {
    const __m256i lanes =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tags + w));
    const __m256i eq = _mm256_cmpeq_epi64(lanes, needle);
    const auto mask = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(eq)));
    if (mask != 0) {
      return w + static_cast<std::uint32_t>(std::countr_zero(mask));
    }
  }
  return count;
}

#else

/// Non-x86 stand-in so call sites compile unchanged; never selected at
/// runtime because avx2_available() is false on these targets.
inline std::uint32_t probe_tags_avx2(const std::uint64_t* tags,
                                     std::uint32_t count, std::uint64_t tag) {
  for (std::uint32_t w = 0; w < count; ++w) {
    if (tags[w] == tag) return w;
  }
  return count;
}

#endif

}  // namespace fpr::simd
