// Fixed-size worker pool with an OpenMP-style parallel_for. The paper's
// benchmarks are MPI+OpenMP; on a single node the relevant behaviour is
// "p workers split the iteration space" — this pool provides exactly that
// with deterministic static chunking so operation counts are stable.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fpr {

class ThreadPool {
 public:
  /// Create a pool with `threads` workers (0 = hardware concurrency).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Run `body(begin, end, worker_id)` over [0, n) split into contiguous
  /// static chunks, one per participating worker (the calling thread also
  /// participates as worker 0). Blocks until all chunks complete; the
  /// first exception thrown by any chunk is rethrown on the caller.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t,
                                             unsigned)>& body);

  /// Same, limited to at most `max_workers` participants (mirrors running
  /// a benchmark with a smaller #threads configuration).
  void parallel_for_n(unsigned max_workers, std::size_t n,
                      const std::function<void(std::size_t, std::size_t,
                                               unsigned)>& body);

  /// Compatibility shim: a lazily created process-wide pool, sized to
  /// hardware concurrency. Library code must not use it — kernels and
  /// the study engine run on context-owned pools (see
  /// common/execution_context.hpp), which is what allows independent
  /// kernel runs to execute concurrently. Retained only so external
  /// callers written against the pre-context API keep linking.
  static ThreadPool& global();

 private:
  struct Job {
    std::size_t n = 0;
    unsigned participants = 0;
    const std::function<void(std::size_t, std::size_t, unsigned)>* body =
        nullptr;
    std::atomic<unsigned> done{0};
    std::exception_ptr error;
    std::mutex error_mu;
  };

  void worker_loop(unsigned id);
  static void run_chunk(Job& job, unsigned worker_index);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  Job* job_ = nullptr;
  std::uint64_t job_epoch_ = 0;
  bool stop_ = false;
};

}  // namespace fpr
