// Counting entry points for instrumented kernel code, routed through an
// active-context pointer: while a thread executes inside an
// ExecutionContext (bound via counters::ScopedCounting), every count
// lands in that context's CounterSink slot — the primary path, giving
// each kernel run its own isolated tallies. Threads outside any context
// fall back to the legacy process-wide thread-local registry, which
// remains for code (tests, ad-hoc oracles) that counts without a
// context.
#pragma once

#include <cstdint>

#include "counters/op_tally.hpp"

namespace fpr::counters {

class CounterSink;

namespace detail {
// The calling thread's current routing: a context sink slot when bound,
// null when counting into the process-wide fallback. Trivially
// initialized so access compiles to a plain TLS load.
inline thread_local OpTally* active_tally = nullptr;
inline thread_local CounterSink* active_sink = nullptr;
}  // namespace detail

/// The calling thread's fallback tally in the process-wide registry.
OpTally& local_tally();

/// Sum of all per-thread fallback tallies ever registered in this
/// process (including threads that have exited). Context-bound counting
/// never lands here — snapshot the context's sink instead.
OpTally global_snapshot();

/// Reset every live thread's fallback tally and the retired-thread
/// accumulator to zero. Only call while no instrumented code is running.
void reset_all();

/// The sink the calling thread currently counts into (null = fallback).
[[nodiscard]] inline CounterSink* active_sink() {
  return detail::active_sink;
}

/// The tally the calling thread currently accumulates into: its bound
/// context slot, or the process-wide thread-local outside any context.
/// Cheap; hot kernel loops should still hoist the reference out.
inline OpTally& current_tally() {
  OpTally* t = detail::active_tally;
  return t != nullptr ? *t : local_tally();
}

// -- Inline counting helpers (the instrumentation API kernels use) -------

inline void add_fp64(std::uint64_t n) { current_tally().fp64 += n; }
inline void add_fp32(std::uint64_t n) { current_tally().fp32 += n; }
inline void add_int(std::uint64_t n) { current_tally().int_ops += n; }
inline void add_branch(std::uint64_t n) { current_tally().branches += n; }
inline void add_read_bytes(std::uint64_t n) {
  current_tally().bytes_read += n;
}
inline void add_write_bytes(std::uint64_t n) {
  current_tally().bytes_written += n;
}

/// Count a canonical "stream" loop touching n elements of size elem:
/// r reads + w writes per element plus the given FP ops per element.
inline void add_streamed(std::uint64_t n, std::uint64_t elem_bytes,
                         std::uint64_t reads_per, std::uint64_t writes_per) {
  OpTally& t = current_tally();
  t.bytes_read += n * elem_bytes * reads_per;
  t.bytes_written += n * elem_bytes * writes_per;
}

}  // namespace fpr::counters
