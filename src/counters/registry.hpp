// Thread-local tally registry. Each thread that executes instrumented
// kernel code accumulates into its own OpTally (no atomics on the hot
// path); the registry can snapshot the sum across all threads, which is
// how assay regions compute their deltas.
#pragma once

#include <cstdint>

#include "counters/op_tally.hpp"

namespace fpr::counters {

/// The calling thread's tally. Cheap (thread_local); hot kernel loops
/// should hoist the reference out of the loop.
OpTally& local_tally();

/// Sum of all per-thread tallies ever registered in this process
/// (including threads that have exited).
OpTally global_snapshot();

/// Reset every live thread's tally and the retired-thread accumulator to
/// zero. Only call while no instrumented kernel is running.
void reset_all();

// -- Inline counting helpers (the instrumentation API kernels use) -------

inline void add_fp64(std::uint64_t n) { local_tally().fp64 += n; }
inline void add_fp32(std::uint64_t n) { local_tally().fp32 += n; }
inline void add_int(std::uint64_t n) { local_tally().int_ops += n; }
inline void add_branch(std::uint64_t n) { local_tally().branches += n; }
inline void add_read_bytes(std::uint64_t n) { local_tally().bytes_read += n; }
inline void add_write_bytes(std::uint64_t n) {
  local_tally().bytes_written += n;
}

/// Count a canonical "stream" loop touching n elements of size elem:
/// r reads + w writes per element plus the given FP ops per element.
inline void add_streamed(std::uint64_t n, std::uint64_t elem_bytes,
                         std::uint64_t reads_per, std::uint64_t writes_per) {
  OpTally& t = local_tally();
  t.bytes_read += n * elem_bytes * reads_per;
  t.bytes_written += n * elem_bytes * writes_per;
}

}  // namespace fpr::counters
