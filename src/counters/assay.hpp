// Assay regions — our rendering of the paper's PseudoCode 1:
//
//   #define START_ASSAY {measure time; toggle on [PCM | SDE | VTune]}
//   #define STOP_ASSAY  {measure time; toggle off ...}
//
// The paper injects START/STOP around each benchmark's solver loop so
// that *only the kernel* is measured, excluding initialization and
// post-processing. AssayRecorder provides the same: between start() and
// stop() it accumulates wall time and the delta of its counter sink's
// operation tally. Multiple start/stop intervals accumulate (solver
// loops).
//
// A recorder is bound to one CounterSink — normally the ExecutionContext
// the kernel runs in — and snapshots that sink, not any process-global
// sum, so concurrent runs in other contexts never leak into the delta.
// A recorder constructed outside any context falls back to the
// process-wide registry snapshot.
#pragma once

#include <stdexcept>
#include <string>

#include "common/timer.hpp"
#include "counters/op_tally.hpp"
#include "counters/registry.hpp"
#include "counters/sink.hpp"

namespace fpr::counters {

class AssayRecorder {
 public:
  /// Bind to the calling thread's active sink (null outside a context:
  /// snapshots then fall back to the process-wide registry).
  AssayRecorder() : sink_(active_sink()) {}

  /// Bind to an explicit sink (the context the kernel executes in).
  explicit AssayRecorder(const CounterSink* sink) : sink_(sink) {}

  /// Begin a measured interval. Must not already be measuring, and the
  /// sink must be quiescent: starting while the context has an in-flight
  /// parallel region would race the workers' slot updates and tear the
  /// snapshot — a mis-nested assay, rejected loudly.
  void start() {
    if (running_) throw std::logic_error("assay already started");
    require_quiescent("start");
    running_ = true;
    begin_ops_ = snapshot_now();
    timer_.reset();
  }

  /// End the current interval, folding time and ops into the totals.
  void stop() {
    if (!running_) throw std::logic_error("assay not started");
    require_quiescent("stop");
    seconds_ += timer_.seconds();
    ops_ += snapshot_now() - begin_ops_;
    running_ = false;
    ++intervals_;
  }

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] double seconds() const { return seconds_; }
  [[nodiscard]] const OpTally& ops() const { return ops_; }
  [[nodiscard]] unsigned intervals() const { return intervals_; }

  /// Forget everything and return to the initial state (rebinding to the
  /// calling thread's active sink, as the default constructor does).
  void reset() { *this = AssayRecorder{}; }

 private:
  [[nodiscard]] OpTally snapshot_now() const {
    return sink_ != nullptr ? sink_->snapshot() : global_snapshot();
  }

  void require_quiescent(const char* what) const {
    if (sink_ != nullptr && !sink_->quiescent()) {
      throw std::logic_error(
          std::string("assay ") + what +
          "() inside an in-flight parallel region: worker threads are "
          "not quiescent");
    }
  }

  const CounterSink* sink_ = nullptr;
  bool running_ = false;
  double seconds_ = 0.0;
  unsigned intervals_ = 0;
  OpTally begin_ops_;
  OpTally ops_;
  fpr::WallTimer timer_;
};

/// RAII interval: starts on construction, stops on destruction (also on
/// exception, so a throwing solver still yields a consistent recorder).
class ScopedAssay {
 public:
  explicit ScopedAssay(AssayRecorder& rec) : rec_(rec) { rec_.start(); }
  ~ScopedAssay() {
    if (rec_.running()) {
      // Destructors are noexcept: a quiescence violation here (another
      // thread left a region of this context in flight — impossible with
      // the synchronous parallel_for, so exotic misuse) must not escape
      // and terminate. start() remains the loud gate; direct stop()
      // calls still throw.
      try {
        rec_.stop();
      } catch (const std::logic_error&) {  // NOLINT(bugprone-empty-catch)
      }
    }
  }
  ScopedAssay(const ScopedAssay&) = delete;
  ScopedAssay& operator=(const ScopedAssay&) = delete;

 private:
  AssayRecorder& rec_;
};

}  // namespace fpr::counters
