// Assay regions — our rendering of the paper's PseudoCode 1:
//
//   #define START_ASSAY {measure time; toggle on [PCM | SDE | VTune]}
//   #define STOP_ASSAY  {measure time; toggle off ...}
//
// The paper injects START/STOP around each benchmark's solver loop so
// that *only the kernel* is measured, excluding initialization and
// post-processing. AssayRecorder provides the same: between start() and
// stop() it accumulates wall time and the delta of the global operation
// tally. Multiple start/stop intervals accumulate (solver loops).
#pragma once

#include <stdexcept>

#include "common/timer.hpp"
#include "counters/op_tally.hpp"
#include "counters/registry.hpp"

namespace fpr::counters {

class AssayRecorder {
 public:
  /// Begin a measured interval. Must not already be measuring.
  /// Note: the snapshot sums per-thread tallies; call from the thread
  /// orchestrating the kernel while worker threads are quiescent.
  void start() {
    if (running_) throw std::logic_error("assay already started");
    running_ = true;
    begin_ops_ = global_snapshot();
    timer_.reset();
  }

  /// End the current interval, folding time and ops into the totals.
  void stop() {
    if (!running_) throw std::logic_error("assay not started");
    seconds_ += timer_.seconds();
    ops_ += global_snapshot() - begin_ops_;
    running_ = false;
    ++intervals_;
  }

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] double seconds() const { return seconds_; }
  [[nodiscard]] const OpTally& ops() const { return ops_; }
  [[nodiscard]] unsigned intervals() const { return intervals_; }

  /// Forget everything and return to the initial state.
  void reset() { *this = AssayRecorder{}; }

 private:
  bool running_ = false;
  double seconds_ = 0.0;
  unsigned intervals_ = 0;
  OpTally begin_ops_;
  OpTally ops_;
  fpr::WallTimer timer_;
};

/// RAII interval: starts on construction, stops on destruction (also on
/// exception, so a throwing solver still yields a consistent recorder).
class ScopedAssay {
 public:
  explicit ScopedAssay(AssayRecorder& rec) : rec_(rec) { rec_.start(); }
  ~ScopedAssay() {
    if (rec_.running()) rec_.stop();
  }
  ScopedAssay(const ScopedAssay&) = delete;
  ScopedAssay& operator=(const ScopedAssay&) = delete;

 private:
  AssayRecorder& rec_;
};

}  // namespace fpr::counters
