#include "counters/sink.hpp"

#include <algorithm>

namespace fpr::counters {

CounterSink::CounterSink(unsigned slots) : slots_(std::max(1u, slots)) {}

OpTally CounterSink::snapshot() const {
  OpTally sum;
  for (const Slot& s : slots_) sum += s.tally;
  return sum;
}

void CounterSink::reset() {
  for (Slot& s : slots_) s.tally = OpTally{};
}

}  // namespace fpr::counters
