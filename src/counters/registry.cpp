// The legacy process-wide fallback registry: per-thread tallies for code
// that counts outside any ExecutionContext. Context-bound counting goes
// through counters::CounterSink and never touches this state.
#include "counters/registry.hpp"

#include <mutex>
#include <vector>

namespace fpr::counters {
namespace {

// Registry of live per-thread tallies plus the accumulated counts of
// threads that have exited. The registry itself is an intentionally
// leaked singleton so thread destructors may run at any time during
// process teardown without use-after-free.
struct Registry {
  std::mutex mu;
  std::vector<OpTally*> live;
  OpTally retired;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked on purpose
  return *r;
}

struct ThreadSlot {
  OpTally tally;

  ThreadSlot() {
    Registry& r = registry();
    std::lock_guard lock(r.mu);
    r.live.push_back(&tally);
  }

  ~ThreadSlot() {
    Registry& r = registry();
    std::lock_guard lock(r.mu);
    r.retired += tally;
    std::erase(r.live, &tally);
  }
};

}  // namespace

OpTally& local_tally() {
  thread_local ThreadSlot slot;
  return slot.tally;
}

OpTally global_snapshot() {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  OpTally sum = r.retired;
  for (const OpTally* t : r.live) sum += *t;
  return sum;
}

void reset_all() {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  r.retired = OpTally{};
  for (OpTally* t : r.live) *t = OpTally{};
}

}  // namespace fpr::counters
