// Context-scoped counter sink: the run-local replacement for the
// process-wide tally registry. An ExecutionContext owns one CounterSink
// with a padded tally slot per worker it can field; instrumented code
// routed into the sink (via ScopedCounting) accumulates into its own
// slot with no atomics on the hot path, and a snapshot sums the slots in
// fixed order. Two contexts therefore never share mutable counter state:
// concurrent kernel runs cannot cross-contaminate each other's assays.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "counters/op_tally.hpp"
#include "counters/registry.hpp"

namespace fpr::counters {

class CounterSink {
 public:
  /// One slot per worker that may count into this sink (worker 0 is the
  /// orchestrating thread).
  explicit CounterSink(unsigned slots);

  [[nodiscard]] unsigned slots() const {
    return static_cast<unsigned>(slots_.size());
  }
  [[nodiscard]] OpTally& slot(unsigned i) { return slots_[i].tally; }
  [[nodiscard]] const OpTally& slot(unsigned i) const {
    return slots_[i].tally;
  }

  /// Sum of all slots, in fixed slot order. Only meaningful while the
  /// sink is quiescent (no in-flight parallel region) — AssayRecorder
  /// enforces that before snapshotting.
  [[nodiscard]] OpTally snapshot() const;

  /// Zero every slot. Only call while quiescent.
  void reset();

  // -- Parallel-region bookkeeping -----------------------------------
  // ExecutionContext brackets every parallel region with enter/exit so
  // assays can refuse to snapshot while worker threads may still be
  // counting (the mid-run hazard that used to be only a comment).
  void enter_region() { regions_.fetch_add(1, std::memory_order_relaxed); }
  void exit_region() { regions_.fetch_sub(1, std::memory_order_relaxed); }
  [[nodiscard]] bool quiescent() const {
    return regions_.load(std::memory_order_relaxed) == 0;
  }

 private:
  // Padded to a cache line so concurrent workers never false-share.
  struct alignas(64) Slot {
    OpTally tally;
  };
  std::vector<Slot> slots_;
  std::atomic<int> regions_{0};
};

/// RAII: route the calling thread's counting (add_fp64 & co, counted<T>)
/// into `sink` slot `slot` for the current scope, restoring the previous
/// binding — the thread-local fallback tally or an outer sink — on exit.
class ScopedCounting {
 public:
  ScopedCounting(CounterSink& sink, unsigned slot)
      : prev_tally_(detail::active_tally), prev_sink_(detail::active_sink) {
    detail::active_tally = &sink.slot(slot);
    detail::active_sink = &sink;
  }
  ~ScopedCounting() {
    detail::active_tally = prev_tally_;
    detail::active_sink = prev_sink_;
  }
  ScopedCounting(const ScopedCounting&) = delete;
  ScopedCounting& operator=(const ScopedCounting&) = delete;

 private:
  OpTally* prev_tally_;
  CounterSink* prev_sink_;
};

}  // namespace fpr::counters
