// assay.hpp is header-only; this TU exists to give fpr_counters an archive
// member and to anchor the vtable-less classes' ODR home.
#include "counters/assay.hpp"
