// counted<T>: an instrumented arithmetic wrapper. Every arithmetic
// operation on a counted<double>/counted<float>/counted integer bumps the
// calling thread's OpTally — the same observable SDE provides by counting
// executed operations.
//
// Kernels in this repo count via the explicit registry helpers at loop
// granularity (cheap, vectorizable); counted<T> exists as the *oracle*:
// property tests run reduced-size kernels templated on counted<T> and
// assert the two mechanisms agree, which validates the analytic counts.
#pragma once

#include <cmath>
#include <type_traits>

#include "counters/registry.hpp"

namespace fpr::counters {

namespace detail {

template <typename T>
inline void bump_one() {
  if constexpr (std::is_same_v<T, double>) {
    add_fp64(1);
  } else if constexpr (std::is_same_v<T, float>) {
    add_fp32(1);
  } else {
    static_assert(std::is_integral_v<T>, "counted<T> needs arithmetic T");
    add_int(1);
  }
}

template <typename T>
inline void bump_n(std::uint64_t n) {
  if constexpr (std::is_same_v<T, double>) {
    add_fp64(n);
  } else if constexpr (std::is_same_v<T, float>) {
    add_fp32(n);
  } else {
    add_int(n);
  }
}

}  // namespace detail

template <typename T>
class counted {
  static_assert(std::is_arithmetic_v<T>);

 public:
  using value_type = T;

  constexpr counted() = default;
  constexpr counted(T v) : v_(v) {}  // NOLINT: implicit by design

  [[nodiscard]] constexpr T value() const { return v_; }
  explicit constexpr operator T() const { return v_; }

  // Each binary arithmetic op counts one operation of T's class.
  friend counted operator+(counted a, counted b) {
    detail::bump_one<T>();
    return counted(a.v_ + b.v_);
  }
  friend counted operator-(counted a, counted b) {
    detail::bump_one<T>();
    return counted(a.v_ - b.v_);
  }
  friend counted operator*(counted a, counted b) {
    detail::bump_one<T>();
    return counted(a.v_ * b.v_);
  }
  friend counted operator/(counted a, counted b) {
    detail::bump_one<T>();
    return counted(a.v_ / b.v_);
  }

  counted& operator+=(counted o) { return *this = *this + o; }
  counted& operator-=(counted o) { return *this = *this - o; }
  counted& operator*=(counted o) { return *this = *this * o; }
  counted& operator/=(counted o) { return *this = *this / o; }

  counted operator-() const {
    detail::bump_one<T>();
    return counted(-v_);
  }

  // Comparisons count a branch operation (they almost always feed one).
  friend bool operator<(counted a, counted b) {
    add_branch(1);
    return a.v_ < b.v_;
  }
  friend bool operator>(counted a, counted b) {
    add_branch(1);
    return a.v_ > b.v_;
  }
  friend bool operator<=(counted a, counted b) {
    add_branch(1);
    return a.v_ <= b.v_;
  }
  friend bool operator>=(counted a, counted b) {
    add_branch(1);
    return a.v_ >= b.v_;
  }
  friend bool operator==(counted a, counted b) {
    add_branch(1);
    return a.v_ == b.v_;
  }

 private:
  T v_{};
};

/// Fused multiply-add on counted values: counts 2 operations, matching the
/// 2-flop convention the paper's peak numbers assume for FMA hardware.
template <typename T>
counted<T> fma(counted<T> a, counted<T> b, counted<T> c) {
  detail::bump_n<T>(2);
  return counted<T>(std::fma(a.value(), b.value(), c.value()));
}

/// sqrt counts as one FP operation (SDE reports it as one FP instr).
template <typename T>
counted<T> sqrt(counted<T> a) {
  detail::bump_one<T>();
  return counted<T>(std::sqrt(a.value()));
}

template <typename T>
counted<T> abs(counted<T> a) {
  detail::bump_one<T>();
  return counted<T>(std::abs(a.value()));
}

// Transparent value extraction for plain arithmetic types, so kernels can
// be written generically over T in {float, double, counted<float>, ...}.
template <typename T>
constexpr T raw(T v) {
  return v;
}
template <typename T>
constexpr T raw(counted<T> v) {
  return v.value();
}

/// scalar_t<T>: the underlying arithmetic type of T (identity for plain
/// arithmetic types, value_type for counted<>).
template <typename T>
struct scalar {
  using type = T;
};
template <typename T>
struct scalar<counted<T>> {
  using type = T;
};
template <typename T>
using scalar_t = typename scalar<T>::type;

}  // namespace fpr::counters
