// Operation tally: the unit of measurement of our SDE substitute.
// Mirrors what the paper extracts from Intel SDE — counts of executed
// FP64 / FP32 / integer / branch operations — plus load/store byte
// traffic used by the memory model (the paper gets traffic from PCM).
#pragma once

#include <cassert>
#include <cstdint>

namespace fpr::counters {

/// Accumulated operation counts for a region of execution.
/// All counts are *operations* (not instructions): one 8-lane vector FMA
/// counts as 16 FP64 operations, matching how the paper derives flop
/// totals from SDE output.
struct OpTally {
  std::uint64_t fp64 = 0;      ///< double-precision FP operations
  std::uint64_t fp32 = 0;      ///< single-precision FP operations
  std::uint64_t int_ops = 0;   ///< integer ALU operations
  std::uint64_t branches = 0;  ///< branch operations
  std::uint64_t bytes_read = 0;     ///< bytes loaded (architectural)
  std::uint64_t bytes_written = 0;  ///< bytes stored (architectural)

  constexpr OpTally& operator+=(const OpTally& o) {
    fp64 += o.fp64;
    fp32 += o.fp32;
    int_ops += o.int_ops;
    branches += o.branches;
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    return *this;
  }

  friend constexpr OpTally operator+(OpTally a, const OpTally& b) {
    a += b;
    return a;
  }

  /// Difference (for snapshot deltas). Requires *this >= o componentwise:
  /// a smaller minuend means the snapshots were taken out of order (a
  /// mis-nested assay), and wrapping would silently report huge counts —
  /// debug builds fail loudly instead.
  friend constexpr OpTally operator-(OpTally a, const OpTally& b) {
    assert(a.fp64 >= b.fp64 && "OpTally difference underflow (fp64)");
    assert(a.fp32 >= b.fp32 && "OpTally difference underflow (fp32)");
    assert(a.int_ops >= b.int_ops && "OpTally difference underflow (int)");
    assert(a.branches >= b.branches &&
           "OpTally difference underflow (branches)");
    assert(a.bytes_read >= b.bytes_read &&
           "OpTally difference underflow (bytes_read)");
    assert(a.bytes_written >= b.bytes_written &&
           "OpTally difference underflow (bytes_written)");
    a.fp64 -= b.fp64;
    a.fp32 -= b.fp32;
    a.int_ops -= b.int_ops;
    a.branches -= b.branches;
    a.bytes_read -= b.bytes_read;
    a.bytes_written -= b.bytes_written;
    return a;
  }

  friend constexpr bool operator==(const OpTally&, const OpTally&) = default;

  /// Total FP operations (both precisions).
  [[nodiscard]] constexpr std::uint64_t fp_total() const {
    return fp64 + fp32;
  }

  /// Total counted "operations" in the sense of the paper's Fig. 1
  /// (FP64 + FP32 + INT; branches are reported separately as Gbra/s).
  [[nodiscard]] constexpr std::uint64_t classified_total() const {
    return fp64 + fp32 + int_ops;
  }

  /// Fraction helpers for the Fig. 1 stacked bars. Return 0 on empty.
  [[nodiscard]] constexpr double fp64_share() const {
    const auto t = classified_total();
    return t != 0 ? static_cast<double>(fp64) / static_cast<double>(t) : 0.0;
  }
  [[nodiscard]] constexpr double fp32_share() const {
    const auto t = classified_total();
    return t != 0 ? static_cast<double>(fp32) / static_cast<double>(t) : 0.0;
  }
  [[nodiscard]] constexpr double int_share() const {
    const auto t = classified_total();
    return t != 0 ? static_cast<double>(int_ops) / static_cast<double>(t)
                  : 0.0;
  }
};

}  // namespace fpr::counters
