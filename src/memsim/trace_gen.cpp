#include "memsim/trace_gen.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace fpr::memsim {

namespace {

// Distinct base addresses per component so mixtures do not alias.
constexpr std::uint64_t kComponentSpacing = 1ull << 40;

std::uint64_t align_up(std::uint64_t v, std::uint64_t a) {
  return (v + a - 1) / a * a;
}

}  // namespace

struct TraceGenerator::ComponentState {
  Pattern pattern;
  std::uint64_t base = 0;
  Xoshiro256 rng;
  // Cursor state, interpretation depends on the pattern alternative.
  std::uint64_t pos = 0;
  std::uint64_t aux = 0;
  std::vector<std::uint32_t> chase_order;  // for ChasePattern

  ComponentState(Pattern p, std::uint64_t b, std::uint64_t seed)
      : pattern(std::move(p)), base(b), rng(seed) {}

  MemRef generate() {
    return std::visit([this](const auto& pat) { return gen(pat); }, pattern);
  }

  MemRef gen(const StreamPattern& p) {
    const std::uint64_t len = std::max<std::uint64_t>(p.bytes_per_array, 64);
    const int arrays = std::max(1, p.arrays);
    // Round-robin across arrays at the same element offset, 8B elements.
    const std::uint64_t elem = pos / arrays;
    const int array = static_cast<int>(pos % arrays);
    ++pos;
    const std::uint64_t offset = (elem * 8) % len;
    const bool write = array < p.writes_per_iter;
    return {base + static_cast<std::uint64_t>(array) * align_up(len, 4096) +
                offset,
            write};
  }

  MemRef gen(const StridedPattern& p) {
    const std::uint64_t fp = std::max<std::uint64_t>(p.footprint_bytes, 512);
    const std::uint64_t offset = (pos * p.stride_bytes) % fp;
    ++pos;
    return {base + offset, false};
  }

  MemRef gen(const StencilPattern& p) {
    const std::uint64_t nx = std::max<std::uint64_t>(p.nx, 4);
    const std::uint64_t ny = std::max<std::uint64_t>(p.ny, 4);
    const std::uint64_t nz = std::max<std::uint64_t>(p.nz, 4);
    const std::uint64_t cells = nx * ny * nz;
    // pos enumerates (cell, neighbour) pairs in sweep order.
    const int r = std::max(1, p.radius);
    const std::uint64_t pts =
        p.full_box ? static_cast<std::uint64_t>((2 * r + 1)) * (2 * r + 1) *
                         (2 * r + 1)
                   : static_cast<std::uint64_t>(6 * r + 1);
    const std::uint64_t cell = (pos / (pts + 1)) % cells;
    const std::uint64_t k = pos % (pts + 1);
    ++pos;
    const std::uint64_t x = cell % nx;
    const std::uint64_t y = (cell / nx) % ny;
    const std::uint64_t z = cell / (nx * ny);
    if (k == pts) {
      // Write of the destination cell (second grid).
      const std::uint64_t out =
          cells * p.elem_bytes + cell * p.elem_bytes;
      return {base + out, true};
    }
    std::int64_t dx = 0, dy = 0, dz = 0;
    if (p.full_box) {
      const std::uint64_t side = 2 * static_cast<std::uint64_t>(r) + 1;
      dx = static_cast<std::int64_t>(k % side) - r;
      dy = static_cast<std::int64_t>((k / side) % side) - r;
      dz = static_cast<std::int64_t>(k / (side * side)) - r;
    } else {
      // star: center plus +-i along each axis
      if (k > 0) {
        const std::uint64_t axis = (k - 1) / (2 * r);
        const std::int64_t step =
            static_cast<std::int64_t>((k - 1) % (2 * r)) -
            static_cast<std::int64_t>(r) +
            (((k - 1) % (2 * r)) >= static_cast<std::uint64_t>(r) ? 1 : 0);
        if (axis == 0) dx = step;
        if (axis == 1) dy = step;
        if (axis == 2) dz = step;
      }
    }
    auto clampc = [](std::int64_t v, std::uint64_t n) {
      return static_cast<std::uint64_t>(
          std::clamp<std::int64_t>(v, 0, static_cast<std::int64_t>(n) - 1));
    };
    const std::uint64_t idx =
        clampc(static_cast<std::int64_t>(x) + dx, nx) +
        nx * (clampc(static_cast<std::int64_t>(y) + dy, ny) +
              ny * clampc(static_cast<std::int64_t>(z) + dz, nz));
    return {base + idx * p.elem_bytes, false};
  }

  MemRef gen(const GatherPattern& p) {
    const std::uint64_t table =
        std::max<std::uint64_t>(p.table_bytes, 512);
    if (rng.uniform() < p.sequential_fraction) {
      const std::uint64_t offset = (pos * 8) % table;
      ++pos;
      return {base + table + offset, false};  // driver stream, separate range
    }
    const std::uint64_t slot = rng.below(table / p.elem_bytes);
    return {base + slot * p.elem_bytes, false};
  }

  MemRef gen(const ChasePattern& p) {
    const std::uint32_t node = std::max<std::uint32_t>(p.node_bytes, 8);
    const std::uint64_t nodes =
        std::max<std::uint64_t>(p.footprint_bytes / node, 16);
    if (chase_order.empty()) {
      chase_order.resize(nodes);
      std::iota(chase_order.begin(), chase_order.end(), 0u);
      // Sattolo shuffle => one full cycle, the canonical chase ring.
      for (std::uint64_t i = nodes - 1; i > 0; --i) {
        const std::uint64_t j = rng.below(i);
        std::swap(chase_order[i], chase_order[j]);
      }
    }
    pos = chase_order[pos % nodes];
    return {base + static_cast<std::uint64_t>(pos) * node, false};
  }

  MemRef gen(const BlockedPattern& p) {
    // Floor at a few cache lines only: scaled-down tiles must stay small
    // enough to preserve the blocking locality they model.
    const std::uint64_t tile = std::max<std::uint64_t>(p.tile_bytes, 256);
    const std::uint64_t matrix =
        std::max<std::uint64_t>(p.matrix_bytes, tile);
    // For every streamed line of the matrix, make `tile_reuse` hits into
    // the current tile; advance the tile base when the stream wraps a tile.
    const double reuse = std::max(1.0, p.tile_reuse);
    const auto phase = static_cast<std::uint64_t>(reuse) + 1;
    const std::uint64_t step = pos % phase;
    if (step == 0) {
      // Element-granular stream (8 B) so consecutive stream refs share
      // cache lines, as a real GEMM panel stream does.
      const std::uint64_t offset = (aux * 8) % matrix;
      ++aux;
      ++pos;
      return {base + offset, false};  // stream through the matrix
    }
    ++pos;
    const std::uint64_t tile_base = ((aux * 8) / tile) * tile % matrix;
    const std::uint64_t offset = rng.below(tile / 8) * 8;
    return {base + (tile_base + offset) % matrix, step == phase - 1};
  }
};

TraceGenerator::~TraceGenerator() = default;
TraceGenerator::TraceGenerator(TraceGenerator&&) noexcept = default;
TraceGenerator& TraceGenerator::operator=(TraceGenerator&&) noexcept =
    default;

TraceGenerator::TraceGenerator(const AccessPatternSpec& spec,
                               std::uint64_t seed)
    : rng_(seed ^ 0x5851f42d4c957f2dull) {
  if (spec.components.empty()) {
    throw std::invalid_argument("AccessPatternSpec has no components");
  }
  double total = 0.0;
  for (const auto& c : spec.components) {
    if (c.weight <= 0.0) {
      throw std::invalid_argument("pattern component weight must be > 0");
    }
    total += c.weight;
  }
  double run = 0.0;
  std::uint64_t idx = 0;
  SplitMix64 sm(seed);
  for (const auto& c : spec.components) {
    run += c.weight / total;
    cumulative_.push_back(run);
    comps_.push_back(std::make_unique<ComponentState>(
        c.pattern, (idx + 1) * kComponentSpacing, sm.next()));
    ++idx;
  }
  cumulative_.back() = 1.0;  // guard against rounding
}

MemRef TraceGenerator::next() {
  const double u = rng_.uniform();
  const auto it =
      std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  const std::size_t i = static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cumulative_.begin(),
                               static_cast<std::ptrdiff_t>(comps_.size()) - 1));
  return comps_[i]->generate();
}

std::string pattern_name(const Pattern& p) {
  struct Visitor {
    std::string operator()(const StreamPattern&) const { return "stream"; }
    std::string operator()(const StridedPattern&) const { return "strided"; }
    std::string operator()(const StencilPattern&) const { return "stencil"; }
    std::string operator()(const GatherPattern&) const { return "gather"; }
    std::string operator()(const ChasePattern&) const { return "chase"; }
    std::string operator()(const BlockedPattern&) const { return "blocked"; }
  };
  return std::visit(Visitor{}, p);
}

}  // namespace fpr::memsim
