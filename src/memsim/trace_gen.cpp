#include "memsim/trace_gen.hpp"

#include <algorithm>
#include <array>
#include <numeric>
#include <stdexcept>

#include "common/magic_div.hpp"

namespace fpr::memsim {

namespace {

// Distinct base addresses per component so mixtures do not alias.
constexpr std::uint64_t kComponentSpacing = 1ull << 40;

std::uint64_t align_up(std::uint64_t v, std::uint64_t a) {
  return (v + a - 1) / a * a;
}

}  // namespace

struct TraceGenerator::ComponentState {
  Pattern pattern;
  std::uint64_t base = 0;
  Xoshiro256 rng;
  // Cursor state, interpretation depends on the pattern alternative.
  std::uint64_t pos = 0;
  std::uint64_t aux = 0;
  std::vector<std::uint32_t> chase_order;  // for ChasePattern
  // Batch-path accelerators (lazily built; never touch the RNG except
  // build_chase_order, which consumes exactly what the scalar build does).
  std::vector<std::array<std::int64_t, 3>> stencil_offsets;
  MagicDiv slot_div;  // gather/blocked slot modulo, hoisted per block
  // Incremental cursor cache: gen_n's running offsets are pure functions
  // of (pos, aux); deriving them costs divides, so they persist across
  // calls keyed by the position they were left at. Mixtures dispatch
  // short same-component runs, where re-deriving would dominate. A
  // scalar gen() in between moves pos and simply invalidates the cache.
  std::uint64_t cursor_pos = ~std::uint64_t{0};
  std::uint64_t cur[5] = {0, 0, 0, 0, 0};

  [[nodiscard]] bool cursor_valid() const { return cursor_pos == pos; }
  void save_cursor(std::uint64_t a, std::uint64_t b = 0, std::uint64_t c = 0,
                   std::uint64_t d = 0, std::uint64_t e = 0) {
    cursor_pos = pos;
    cur[0] = a;
    cur[1] = b;
    cur[2] = c;
    cur[3] = d;
    cur[4] = e;
  }

  ComponentState(Pattern p, std::uint64_t b, std::uint64_t seed)
      : pattern(std::move(p)), base(b), rng(seed) {}

  /// Lazily build the chase ring (Sattolo shuffle => one full cycle).
  /// Factored out so the scalar and batch paths consume identical RNG.
  void build_chase_order(std::uint64_t nodes) {
    if (!chase_order.empty()) return;
    chase_order.resize(nodes);
    std::iota(chase_order.begin(), chase_order.end(), 0u);
    for (std::uint64_t i = nodes - 1; i > 0; --i) {
      const std::uint64_t j = rng.below(i);
      std::swap(chase_order[i], chase_order[j]);
    }
  }

  /// Precompute the (dx, dy, dz) neighbour offsets for stencil point k
  /// (pure function of radius/box shape; the scalar path re-derives the
  /// same values per reference).
  void build_stencil_offsets(const StencilPattern& p, int r,
                             std::uint64_t pts) {
    if (stencil_offsets.size() == pts) return;
    stencil_offsets.assign(pts, {0, 0, 0});
    for (std::uint64_t k = 0; k < pts; ++k) {
      auto& d = stencil_offsets[k];
      if (p.full_box) {
        const std::uint64_t side = 2 * static_cast<std::uint64_t>(r) + 1;
        d[0] = static_cast<std::int64_t>(k % side) - r;
        d[1] = static_cast<std::int64_t>((k / side) % side) - r;
        d[2] = static_cast<std::int64_t>(k / (side * side)) - r;
      } else if (k > 0) {
        const std::uint64_t axis = (k - 1) / (2 * r);
        const std::int64_t step =
            static_cast<std::int64_t>((k - 1) % (2 * r)) -
            static_cast<std::int64_t>(r) +
            (((k - 1) % (2 * r)) >= static_cast<std::uint64_t>(r) ? 1 : 0);
        if (axis == 0) d[0] = step;
        if (axis == 1) d[1] = step;
        if (axis == 2) d[2] = step;
      }
    }
  }

  MemRef generate() {
    return std::visit([this](const auto& pat) { return gen(pat); }, pattern);
  }

  /// Emit `n` consecutive references with a single variant dispatch.
  /// Each pattern has a specialized block loop that derives the same
  /// reference sequence incrementally (running offsets with one
  /// conditional wrap instead of a div/mod per reference, hoisted
  /// reciprocals for the RNG slot picks, precomputed stencil offset
  /// tables). Bit-identity with n scalar gen() calls is the contract —
  /// the memsim property tests replay both and compare exactly.
  void generate_n(MemRef* out, std::size_t n) {
    std::visit([&](const auto& pat) { gen_n(pat, out, n); }, pattern);
  }

  void gen_n(const StreamPattern& p, MemRef* out, std::size_t n) {
    const std::uint64_t len =
        std::max<std::uint64_t>(p.bytes_per_array, 64) & ~std::uint64_t{7};
    const auto arrays = static_cast<std::uint64_t>(std::max(1, p.arrays));
    const std::uint64_t arr_stride = align_up(len, 4096);
    // Running (array, offset) cursor; the element offset advances by one
    // 8 B element per full array round, wrapping at len (a multiple of 8,
    // so the wrap lands exactly where (elem * 8) % len does).
    std::uint64_t array, off;
    if (cursor_valid()) {
      array = cur[0];
      off = cur[1];
    } else {
      array = pos % arrays;
      off = ((pos / arrays) * 8) % len;
    }
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = {base + array * arr_stride + off,
                static_cast<int>(array) < p.writes_per_iter};
      if (++array == arrays) {
        array = 0;
        off += 8;
        if (off >= len) off -= len;
      }
    }
    pos += n;
    save_cursor(array, off);
  }

  void gen_n(const StridedPattern& p, MemRef* out, std::size_t n) {
    const std::uint64_t fp = std::max<std::uint64_t>(p.footprint_bytes, 512);
    const std::uint64_t step = p.stride_bytes % fp;
    std::uint64_t off =
        cursor_valid() ? cur[0] : (pos * p.stride_bytes) % fp;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = {base + off, false};
      off += step;
      if (off >= fp) off -= fp;
    }
    pos += n;
    save_cursor(off);
  }

  void gen_n(const StencilPattern& p, MemRef* out, std::size_t n) {
    const std::uint64_t nx = std::max<std::uint64_t>(p.nx, 4);
    const std::uint64_t ny = std::max<std::uint64_t>(p.ny, 4);
    const std::uint64_t nz = std::max<std::uint64_t>(p.nz, 4);
    const std::uint64_t cells = nx * ny * nz;
    const int r = std::max(1, p.radius);
    const std::uint64_t pts =
        p.full_box ? static_cast<std::uint64_t>((2 * r + 1)) * (2 * r + 1) *
                         (2 * r + 1)
                   : static_cast<std::uint64_t>(6 * r + 1);
    build_stencil_offsets(p, r, pts);
    // Cursor: (cell, k) with k in [0, pts] — k == pts is the destination
    // write; cell advances by one (wrapping at cells) after the write.
    std::uint64_t cell, k, x, y, z;
    if (cursor_valid()) {
      cell = cur[0];
      k = cur[1];
      x = cur[2];
      y = cur[3];
      z = cur[4];
    } else {
      cell = (pos / (pts + 1)) % cells;
      k = pos % (pts + 1);
      x = cell % nx;
      y = (cell / nx) % ny;
      z = cell / (nx * ny);
    }
    const std::uint64_t out_base = cells * p.elem_bytes;
    auto clampc = [](std::uint64_t v, std::int64_t d, std::uint64_t hi) {
      const auto s = static_cast<std::int64_t>(v) + d;
      return static_cast<std::uint64_t>(
          std::clamp<std::int64_t>(s, 0, static_cast<std::int64_t>(hi) - 1));
    };
    for (std::size_t i = 0; i < n; ++i) {
      if (k == pts) {
        out[i] = {base + out_base + cell * p.elem_bytes, true};
        k = 0;
        ++cell;
        ++x;
        if (x == nx) {
          x = 0;
          ++y;
          if (y == ny) {
            y = 0;
            ++z;
          }
        }
        if (cell == cells) {
          cell = 0;
          x = y = z = 0;
        }
      } else {
        const auto& d = stencil_offsets[k];
        const std::uint64_t idx =
            clampc(x, d[0], nx) +
            nx * (clampc(y, d[1], ny) + ny * clampc(z, d[2], nz));
        out[i] = {base + idx * p.elem_bytes, false};
        ++k;
      }
    }
    pos += n;
    save_cursor(cell, k, x, y, z);
  }

  void gen_n(const GatherPattern& p, MemRef* out, std::size_t n) {
    const std::uint64_t table = std::max<std::uint64_t>(p.table_bytes, 512);
    const std::uint64_t slots = table / p.elem_bytes;
    if (slot_div.divisor() != slots) slot_div = MagicDiv(slots);
    std::uint64_t off = cursor_valid() ? cur[0] : (pos * 8) % table;
    std::uint64_t seq = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.uniform() < p.sequential_fraction) {
        out[i] = {base + off, false};
        off += 8;
        if (off >= table) off -= table;
        ++seq;
      } else {
        const std::uint64_t slot = slot_div.mod(rng.next());
        out[i] = {base + slot * p.elem_bytes, false};
      }
    }
    pos += seq;
    save_cursor(off);
  }

  void gen_n(const ChasePattern& p, MemRef* out, std::size_t n) {
    const std::uint32_t node = std::max<std::uint32_t>(p.node_bytes, 8);
    const std::uint64_t nodes =
        std::max<std::uint64_t>(p.footprint_bytes / node, 16);
    build_chase_order(nodes);
    // After the first hop the cursor is itself a node index, so the
    // per-reference modulo of the scalar path is a no-op; one table
    // load per reference remains, as a real chase would have.
    std::uint64_t cur = pos % nodes;
    for (std::size_t i = 0; i < n; ++i) {
      cur = chase_order[cur];
      out[i] = {base + cur * node, false};
    }
    pos = cur;
  }

  void gen_n(const BlockedPattern& p, MemRef* out, std::size_t n) {
    const std::uint64_t tile = std::max<std::uint64_t>(p.tile_bytes, 256);
    const std::uint64_t matrix =
        std::max<std::uint64_t>(p.matrix_bytes, tile);
    const double reuse = std::max(1.0, p.tile_reuse);
    const auto phase = static_cast<std::uint64_t>(reuse) + 1;
    const std::uint64_t slots = tile / 8;
    if (slot_div.divisor() != slots) slot_div = MagicDiv(slots);
    std::uint64_t step, stream_off, tile_base;
    if (cursor_valid()) {
      step = cur[0];
      stream_off = cur[1];
      tile_base = cur[2];
    } else {
      step = pos % phase;
      stream_off = (aux * 8) % matrix;
      tile_base = ((aux * 8) / tile) * tile % matrix;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (step == 0) {
        out[i] = {base + stream_off, false};
        ++aux;
        stream_off += 8;
        if (stream_off >= matrix) stream_off -= matrix;
        tile_base = ((aux * 8) / tile) * tile % matrix;
      } else {
        std::uint64_t addr = tile_base + slot_div.mod(rng.next()) * 8;
        if (addr >= matrix) addr -= matrix;
        out[i] = {base + addr, step == phase - 1};
      }
      if (++step == phase) step = 0;
    }
    pos += n;
    save_cursor(step, stream_off, tile_base);
  }

  MemRef gen(const StreamPattern& p) {
    // Effective length rounds down to the 8 B element size: otherwise the
    // cyclic offset (elem * 8) % len straddles element boundaries after
    // the first wrap whenever bytes_per_array is not a multiple of 8.
    const std::uint64_t len =
        std::max<std::uint64_t>(p.bytes_per_array, 64) & ~std::uint64_t{7};
    const int arrays = std::max(1, p.arrays);
    // Round-robin across arrays at the same element offset, 8B elements.
    const std::uint64_t elem = pos / arrays;
    const int array = static_cast<int>(pos % arrays);
    ++pos;
    const std::uint64_t offset = (elem * 8) % len;
    const bool write = array < p.writes_per_iter;
    return {base + static_cast<std::uint64_t>(array) * align_up(len, 4096) +
                offset,
            write};
  }

  MemRef gen(const StridedPattern& p) {
    const std::uint64_t fp = std::max<std::uint64_t>(p.footprint_bytes, 512);
    const std::uint64_t offset = (pos * p.stride_bytes) % fp;
    ++pos;
    return {base + offset, false};
  }

  MemRef gen(const StencilPattern& p) {
    const std::uint64_t nx = std::max<std::uint64_t>(p.nx, 4);
    const std::uint64_t ny = std::max<std::uint64_t>(p.ny, 4);
    const std::uint64_t nz = std::max<std::uint64_t>(p.nz, 4);
    const std::uint64_t cells = nx * ny * nz;
    // pos enumerates (cell, neighbour) pairs in sweep order.
    const int r = std::max(1, p.radius);
    const std::uint64_t pts =
        p.full_box ? static_cast<std::uint64_t>((2 * r + 1)) * (2 * r + 1) *
                         (2 * r + 1)
                   : static_cast<std::uint64_t>(6 * r + 1);
    const std::uint64_t cell = (pos / (pts + 1)) % cells;
    const std::uint64_t k = pos % (pts + 1);
    ++pos;
    const std::uint64_t x = cell % nx;
    const std::uint64_t y = (cell / nx) % ny;
    const std::uint64_t z = cell / (nx * ny);
    if (k == pts) {
      // Write of the destination cell (second grid).
      const std::uint64_t out =
          cells * p.elem_bytes + cell * p.elem_bytes;
      return {base + out, true};
    }
    std::int64_t dx = 0, dy = 0, dz = 0;
    if (p.full_box) {
      const std::uint64_t side = 2 * static_cast<std::uint64_t>(r) + 1;
      dx = static_cast<std::int64_t>(k % side) - r;
      dy = static_cast<std::int64_t>((k / side) % side) - r;
      dz = static_cast<std::int64_t>(k / (side * side)) - r;
    } else {
      // star: center plus +-i along each axis
      if (k > 0) {
        const std::uint64_t axis = (k - 1) / (2 * r);
        const std::int64_t step =
            static_cast<std::int64_t>((k - 1) % (2 * r)) -
            static_cast<std::int64_t>(r) +
            (((k - 1) % (2 * r)) >= static_cast<std::uint64_t>(r) ? 1 : 0);
        if (axis == 0) dx = step;
        if (axis == 1) dy = step;
        if (axis == 2) dz = step;
      }
    }
    auto clampc = [](std::int64_t v, std::uint64_t n) {
      return static_cast<std::uint64_t>(
          std::clamp<std::int64_t>(v, 0, static_cast<std::int64_t>(n) - 1));
    };
    const std::uint64_t idx =
        clampc(static_cast<std::int64_t>(x) + dx, nx) +
        nx * (clampc(static_cast<std::int64_t>(y) + dy, ny) +
              ny * clampc(static_cast<std::int64_t>(z) + dz, nz));
    return {base + idx * p.elem_bytes, false};
  }

  MemRef gen(const GatherPattern& p) {
    const std::uint64_t table =
        std::max<std::uint64_t>(p.table_bytes, 512);
    if (rng.uniform() < p.sequential_fraction) {
      // Driver stream cycles inside the declared table range: a separate
      // [table, 2*table) window would double the simulated footprint
      // beyond the table_bytes that capacity scaling accounts for.
      const std::uint64_t offset = (pos * 8) % table;
      ++pos;
      return {base + offset, false};
    }
    const std::uint64_t slot = rng.below(table / p.elem_bytes);
    return {base + slot * p.elem_bytes, false};
  }

  MemRef gen(const ChasePattern& p) {
    const std::uint32_t node = std::max<std::uint32_t>(p.node_bytes, 8);
    const std::uint64_t nodes =
        std::max<std::uint64_t>(p.footprint_bytes / node, 16);
    build_chase_order(nodes);
    pos = chase_order[pos % nodes];
    return {base + static_cast<std::uint64_t>(pos) * node, false};
  }

  MemRef gen(const BlockedPattern& p) {
    // Floor at a few cache lines only: scaled-down tiles must stay small
    // enough to preserve the blocking locality they model.
    const std::uint64_t tile = std::max<std::uint64_t>(p.tile_bytes, 256);
    const std::uint64_t matrix =
        std::max<std::uint64_t>(p.matrix_bytes, tile);
    // For every streamed line of the matrix, make `tile_reuse` hits into
    // the current tile; advance the tile base when the stream wraps a tile.
    const double reuse = std::max(1.0, p.tile_reuse);
    const auto phase = static_cast<std::uint64_t>(reuse) + 1;
    const std::uint64_t step = pos % phase;
    if (step == 0) {
      // Element-granular stream (8 B) so consecutive stream refs share
      // cache lines, as a real GEMM panel stream does.
      const std::uint64_t offset = (aux * 8) % matrix;
      ++aux;
      ++pos;
      return {base + offset, false};  // stream through the matrix
    }
    ++pos;
    const std::uint64_t tile_base = ((aux * 8) / tile) * tile % matrix;
    const std::uint64_t offset = rng.below(tile / 8) * 8;
    return {base + (tile_base + offset) % matrix, step == phase - 1};
  }
};

TraceGenerator::~TraceGenerator() = default;
TraceGenerator::TraceGenerator(TraceGenerator&&) noexcept = default;
TraceGenerator& TraceGenerator::operator=(TraceGenerator&&) noexcept =
    default;

TraceGenerator::TraceGenerator(const AccessPatternSpec& spec,
                               std::uint64_t seed)
    : rng_(seed ^ 0x5851f42d4c957f2dull) {
  if (spec.components.empty()) {
    throw std::invalid_argument("AccessPatternSpec has no components");
  }
  double total = 0.0;
  for (const auto& c : spec.components) {
    if (c.weight <= 0.0) {
      throw std::invalid_argument("pattern component weight must be > 0");
    }
    total += c.weight;
  }
  double run = 0.0;
  std::uint64_t idx = 0;
  SplitMix64 sm(seed);
  for (const auto& c : spec.components) {
    run += c.weight / total;
    cumulative_.push_back(run);
    comps_.push_back(std::make_unique<ComponentState>(
        c.pattern, (idx + 1) * kComponentSpacing, sm.next()));
    ++idx;
  }
  cumulative_.back() = 1.0;  // guard against rounding
}

MemRef TraceGenerator::next() {
  const double u = rng_.uniform();
  const auto it =
      std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  const std::size_t i = static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cumulative_.begin(),
                               static_cast<std::ptrdiff_t>(comps_.size()) - 1));
  return comps_[i]->generate();
}

void TraceGenerator::fill(MemRef* out, std::size_t n) {
  // Block size bounds the selection scratch and keeps it cache-resident.
  constexpr std::size_t kBlock = 4096;

  if (comps_.size() == 1) {
    // Single component: no mixture to sample, but next() still draws one
    // selection uniform per reference, so burn the same draws to keep
    // the generator state identical under any next()/fill() interleave.
    for (std::size_t i = 0; i < n; ++i) rng_.next();
    comps_[0]->generate_n(out, n);
    return;
  }

  select_.resize(std::min(n, kBlock));
  const std::uint32_t last =
      static_cast<std::uint32_t>(comps_.size()) - 1;
  std::size_t done = 0;
  while (done < n) {
    const std::size_t block = std::min(n - done, kBlock);
    // Sample the mixture for the whole block first. A linear CDF scan
    // replaces lower_bound: component counts are tiny and the first
    // index with cumulative_[c] >= u is the same element lower_bound
    // finds (cumulative_.back() == 1.0 > u caps the scan).
    const double* cdf = cumulative_.data();
    for (std::size_t k = 0; k < block; ++k) {
      const double u = rng_.uniform();
      std::uint32_t c = 0;
      while (c < last && cdf[c] < u) ++c;
      select_[k] = c;
    }
    // Emit per-component runs: one variant dispatch per run instead of
    // one per reference.
    std::size_t k = 0;
    while (k < block) {
      const std::uint32_t c = select_[k];
      std::size_t end = k + 1;
      while (end < block && select_[end] == c) ++end;
      comps_[c]->generate_n(out + done + k, end - k);
      k = end;
    }
    done += block;
  }
}

std::string pattern_name(const Pattern& p) {
  struct Visitor {
    std::string operator()(const StreamPattern&) const { return "stream"; }
    std::string operator()(const StridedPattern&) const { return "strided"; }
    std::string operator()(const StencilPattern&) const { return "stencil"; }
    std::string operator()(const GatherPattern&) const { return "gather"; }
    std::string operator()(const ChasePattern&) const { return "chase"; }
    std::string operator()(const BlockedPattern&) const { return "blocked"; }
  };
  return std::visit(Visitor{}, p);
}

}  // namespace fpr::memsim
