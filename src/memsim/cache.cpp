#include "memsim/cache.hpp"

#include <bit>

namespace fpr::memsim {

void CacheConfig::validate() const {
  if (line_bytes == 0 || !std::has_single_bit(line_bytes)) {
    throw std::invalid_argument("cache line size must be a power of two");
  }
  if (size_bytes == 0 || size_bytes % line_bytes != 0) {
    throw std::invalid_argument("cache size must be a multiple of the line");
  }
  if (associativity == 0 || num_lines() % associativity != 0) {
    throw std::invalid_argument("cache lines must split evenly into ways");
  }
  // Any positive set count is allowed (modulo indexing); scaled-down
  // shared-cache shares are rarely power-of-two capacities.
}

Cache::Cache(CacheConfig cfg) : cfg_(cfg) {
  cfg_.validate();
  num_sets_ = cfg_.num_sets();
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(cfg_.line_bytes));
  ways_.resize(cfg_.num_lines());
}

bool Cache::access(std::uint64_t addr, bool write) {
  const std::uint64_t line = addr >> line_shift_;
  const std::uint64_t set = line % num_sets_;
  const std::uint64_t tag = line / num_sets_;
  Way* base = &ways_[set * cfg_.associativity];
  ++stamp_;

  Way* victim = base;
  for (std::uint32_t w = 0; w < cfg_.associativity; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru = stamp_;
      way.dirty = way.dirty || write;
      ++stats_.hits;
      return true;
    }
    if (!way.valid) {
      victim = &way;  // prefer an invalid way
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }

  ++stats_.misses;
  if (victim->valid && victim->dirty) ++stats_.writebacks;
  victim->valid = true;
  victim->tag = tag;
  victim->lru = stamp_;
  victim->dirty = write;
  return false;
}

void Cache::clear() {
  for (auto& w : ways_) w = Way{};
  stats_ = CacheStats{};
  stamp_ = 0;
}

}  // namespace fpr::memsim
