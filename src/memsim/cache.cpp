#include "memsim/cache.hpp"

#include <algorithm>
#include <atomic>
#include <bit>

#include "common/simd.hpp"
#include "memsim/trace_gen.hpp"

namespace fpr::memsim {

namespace {

constexpr std::uint64_t kNibbleLow = 0x1111111111111111ull;

/// Identity recency word for an empty set: way j at rank j (rank 0 =
/// low nibble = LRU end, rank A-1 = MRU end).
std::uint64_t identity_order(std::uint32_t assoc) {
  std::uint64_t w = 0;
  for (std::uint32_t j = 0; j < assoc; ++j) {
    w |= static_cast<std::uint64_t>(j) << (4 * j);
  }
  return w;
}

/// Rank of `way` inside `order` (A nibbles). SWAR zero-nibble search:
/// XOR against the way replicated per nibble, OR-reduce each nibble to
/// its low bit, and the lowest clear nibble marks the match.
template <std::uint32_t A>
inline std::uint32_t find_rank(std::uint64_t order, std::uint32_t way) {
  constexpr std::uint64_t mask =
      A == 16 ? ~std::uint64_t{0} : (std::uint64_t{1} << (4 * A)) - 1;
  std::uint64_t x = (order ^ (way * kNibbleLow)) | ~mask;
  x |= x >> 2;
  x |= x >> 1;
  const std::uint64_t nonzero = x & kNibbleLow;  // 1 per non-matching nibble
  return static_cast<std::uint32_t>(
             std::countr_zero(~nonzero & kNibbleLow)) >>
         2;
}

/// Move the way at `rank` to the MRU end, keeping all other ways in
/// relative order. rank == A-1 (already MRU) must be handled by the
/// caller or is a structural no-op via the early return.
template <std::uint32_t A>
inline std::uint64_t move_to_front(std::uint64_t order, std::uint32_t rank,
                                   std::uint32_t way) {
  if (rank == A - 1) return order;
  const std::uint64_t low =
      order & ((std::uint64_t{1} << (4 * rank)) - 1);
  const std::uint64_t high = (order >> (4 * (rank + 1))) << (4 * rank);
  return low | high | (static_cast<std::uint64_t>(way) << (4 * (A - 1)));
}

/// Runtime-associativity form of find_rank + move_to_front for the
/// scalar paths (the templated block loops keep their compile-time
/// versions): splice `way` to the MRU end of `order`.
std::uint64_t promote_way(std::uint64_t order, std::uint32_t way,
                          std::uint32_t assoc) {
  std::uint32_t rank = 0;
  for (std::uint32_t r = 0; r < assoc; ++r) {
    if (((order >> (4 * r)) & 0xF) == way) rank = r;
  }
  if (rank == assoc - 1) return order;
  const std::uint64_t low = order & ((std::uint64_t{1} << (4 * rank)) - 1);
  const std::uint64_t high = (order >> (4 * (rank + 1))) << (4 * rank);
  return low | high | (static_cast<std::uint64_t>(way) << (4 * (assoc - 1)));
}

/// Miss-path victim choice plus the matching order/valid-count update:
/// the last invalid way while the set is filling (the scan-order rule
/// of the stamp formulation), else the LRU rank.
std::uint32_t select_victim(std::uint64_t& order, std::uint8_t& valid_count,
                            std::uint32_t assoc) {
  if (valid_count < assoc) {
    const std::uint32_t victim = assoc - 1 - valid_count;
    ++valid_count;
    order = promote_way(order, victim, assoc);
    return victim;
  }
  const auto victim = static_cast<std::uint32_t>(order & 0xF);
  order = (order >> 4) |
          (static_cast<std::uint64_t>(victim) << (4 * (assoc - 1)));
  return victim;
}

}  // namespace

void CacheConfig::validate() const {
  if (line_bytes == 0 || !std::has_single_bit(line_bytes)) {
    throw std::invalid_argument("cache line size must be a power of two");
  }
  if (size_bytes == 0 || size_bytes % line_bytes != 0) {
    throw std::invalid_argument("cache size must be a multiple of the line");
  }
  if (associativity == 0 || num_lines() % associativity != 0) {
    throw std::invalid_argument("cache lines must split evenly into ways");
  }
  // Any positive set count is allowed (modulo indexing); scaled-down
  // shared-cache shares are rarely power-of-two capacities.
}

Cache::Cache(CacheConfig cfg) : cfg_(cfg) {
  cfg_.validate();
  num_sets_ = cfg_.num_sets();
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(cfg_.line_bytes));
  if (std::has_single_bit(num_sets_)) {
    set_shift_ = static_cast<std::uint32_t>(std::countr_zero(num_sets_));
  } else {
    set_div_ = MagicDiv(num_sets_);
  }
  order_mode_ = cfg_.associativity <= 16;
  simd_ = simd::avx2_available();
  tags_.assign(cfg_.num_lines(), kInvalidTag);
  flags_.assign(cfg_.num_lines(), 0);
  if (order_mode_) {
    order_.assign(num_sets_, identity_order(cfg_.associativity));
    valid_count_.assign(num_sets_, 0);
  } else {
    stamps_.assign(cfg_.num_lines(), 0);
  }
}

bool Cache::simd_supported() { return simd::avx2_available(); }

void Cache::set_probe_mode(ProbeMode mode) {
  switch (mode) {
    case ProbeMode::kScalar:
      simd_ = false;
      return;
    case ProbeMode::kSimd:
      if (!simd::avx2_available()) {
        throw std::runtime_error("AVX2 tag probes unsupported on this CPU");
      }
      simd_ = true;
      return;
    case ProbeMode::kAuto:
      simd_ = simd::avx2_available();
      return;
  }
}

bool Cache::access(std::uint64_t addr, bool write) {
  std::uint64_t set, tag;
  split(addr, set, tag);
  if (!order_mode_) return access_stamps(set, tag, write);
  if (tag == kInvalidTag) return access_cold(set, tag, write);
  return access_order(set, tag, write);
}

/// Scalar lookup in packed-order mode; one reference, rolled loops.
/// This is also the oracle the specialized block loops are verified
/// against.
bool Cache::access_order(std::uint64_t set, std::uint64_t tag, bool write) {
  const std::uint32_t assoc = cfg_.associativity;
  const std::size_t base = static_cast<std::size_t>(set) * assoc;
  std::uint64_t* const tags = tags_.data() + base;
  std::uint64_t order = order_[set];

  // MRU-first probe: a repeat of the most recent way needs no reorder.
  const auto mru =
      static_cast<std::uint32_t>(order >> (4 * (assoc - 1))) & 0xF;
  if (tags[mru] == tag) {
    if (write) flags_[base + mru] |= kDirty;
    ++stats_.hits;
    return true;
  }

  std::uint32_t hit = assoc;
  for (std::uint32_t w = 0; w < assoc; ++w) {
    if (tags[w] == tag) hit = w;
  }
  if (hit != assoc) {
    order_[set] = promote_way(order, hit, assoc);
    if (write) flags_[base + hit] |= kDirty;
    ++stats_.hits;
    return true;
  }

  const std::uint32_t victim =
      select_victim(order, valid_count_[set], assoc);
  order_[set] = order;

  ++stats_.misses;
  std::uint8_t& vflags = flags_[base + victim];
  if ((vflags & (kValid | kDirty)) == (kValid | kDirty)) ++stats_.writebacks;
  tags[victim] = tag;
  vflags = static_cast<std::uint8_t>(kValid | (write ? kDirty : 0));
  return false;
}

/// Degenerate geometry (byte lines, one set) where a real tag can equal
/// the invalid sentinel: identify hits through the valid flags instead
/// of the sentinel. Cold by construction; correctness only.
bool Cache::access_cold(std::uint64_t set, std::uint64_t tag, bool write) {
  const std::uint32_t assoc = cfg_.associativity;
  const std::size_t base = static_cast<std::size_t>(set) * assoc;
  for (std::uint32_t w = 0; w < assoc; ++w) {
    if ((flags_[base + w] & kValid) != 0 && tags_[base + w] == tag) {
      order_[set] = promote_way(order_[set], w, assoc);
      if (write) flags_[base + w] |= kDirty;
      ++stats_.hits;
      return true;
    }
  }
  // Miss: the shared victim logic never reads tags, so it is safe here.
  std::uint64_t order = order_[set];
  const std::uint32_t victim =
      select_victim(order, valid_count_[set], assoc);
  order_[set] = order;
  ++stats_.misses;
  std::uint8_t& vflags = flags_[base + victim];
  if ((vflags & (kValid | kDirty)) == (kValid | kDirty)) ++stats_.writebacks;
  tags_[base + victim] = tag;
  vflags = static_cast<std::uint8_t>(kValid | (write ? kDirty : 0));
  return false;
}

/// Classic stamp-LRU path for associativity > 16 (no packed order
/// word): the seed formulation on the compact layout.
bool Cache::access_stamps(std::uint64_t set, std::uint64_t tag, bool write) {
  const std::uint32_t assoc = cfg_.associativity;
  const std::size_t base = static_cast<std::size_t>(set) * assoc;
  ++stamp_;
  std::uint32_t victim = 0;
  for (std::uint32_t w = 0; w < assoc; ++w) {
    const std::uint8_t f = flags_[base + w];
    if ((f & kValid) != 0 && tags_[base + w] == tag) {
      stamps_[base + w] = stamp_;
      if (write) flags_[base + w] |= kDirty;
      ++stats_.hits;
      return true;
    }
    if ((f & kValid) == 0) {
      victim = w;
    } else if ((flags_[base + victim] & kValid) != 0 &&
               stamps_[base + w] < stamps_[base + victim]) {
      victim = w;
    }
  }
  ++stats_.misses;
  std::uint8_t& vflags = flags_[base + victim];
  if ((vflags & (kValid | kDirty)) == (kValid | kDirty)) ++stats_.writebacks;
  tags_[base + victim] = tag;
  stamps_[base + victim] = stamp_;
  vflags = static_cast<std::uint8_t>(kValid | (write ? kDirty : 0));
  return false;
}

template <std::uint32_t A>
std::size_t Cache::run_many(MemRef* refs, std::size_t n) {
  static_assert(A % 4 == 0, "AVX2 probe consumes whole 4-way groups");
  const bool use_simd = simd_;
  const std::uint32_t line_shift = line_shift_;
  const std::uint64_t num_sets = num_sets_;
  const std::uint32_t set_shift = set_shift_;
  std::uint64_t hits = 0, misses = 0, writebacks = 0;
  std::uint64_t* const all_tags = tags_.data();
  std::uint8_t* const all_flags = flags_.data();
  std::uint64_t* const all_order = order_.data();
  std::uint8_t* const all_valid = valid_count_.data();

  std::size_t out = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t addr = refs[i].addr;
    const bool write = refs[i].write;
    const std::uint64_t line = addr >> line_shift;
    std::uint64_t set, tag;
    if (set_shift != kNoShift) {
      set = line & (num_sets - 1);
      tag = line >> set_shift;
    } else {
      tag = set_div_.div(line);
      set = line - tag * num_sets;
    }
    if (tag == kInvalidTag) {
      // Degenerate-geometry escape: sync stats, take the checked path.
      stats_.hits += hits;
      stats_.misses += misses;
      stats_.writebacks += writebacks;
      hits = misses = writebacks = 0;
      if (!access_cold(set, tag, write)) refs[out++] = refs[i];
      continue;
    }

    const std::size_t base = static_cast<std::size_t>(set) * A;
    std::uint64_t* const tags = all_tags + base;
    std::uint64_t order = all_order[set];

    const auto mru = static_cast<std::uint32_t>(order >> (4 * (A - 1))) & 0xF;
    if (tags[mru] == tag) {
      if (write) all_flags[base + mru] |= kDirty;
      ++hits;
      continue;
    }

    std::uint32_t hit = A;
    if (use_simd) {
      hit = simd::probe_tags_avx2(tags, A, tag);
    } else {
      for (std::uint32_t w = 0; w < A; ++w) {
        if (tags[w] == tag) hit = w;
      }
    }
    if (hit != A) {
      all_order[set] = move_to_front<A>(order, find_rank<A>(order, hit), hit);
      if (write) all_flags[base + hit] |= kDirty;
      ++hits;
      continue;
    }

    std::uint32_t victim;
    const std::uint8_t v = all_valid[set];
    if (v < A) {
      victim = A - 1 - v;  // last invalid way (prefix invariant)
      all_valid[set] = static_cast<std::uint8_t>(v + 1);
      order = move_to_front<A>(order, find_rank<A>(order, victim), victim);
    } else {
      victim = static_cast<std::uint32_t>(order & 0xF);
      order =
          (order >> 4) | (static_cast<std::uint64_t>(victim) << (4 * (A - 1)));
    }
    all_order[set] = order;

    ++misses;
    std::uint8_t& vflags = all_flags[base + victim];
    if ((vflags & (kValid | kDirty)) == (kValid | kDirty)) ++writebacks;
    tags[victim] = tag;
    vflags = static_cast<std::uint8_t>(kValid | (write ? kDirty : 0));
    refs[out++] = refs[i];
  }

  stats_.hits += hits;
  stats_.misses += misses;
  stats_.writebacks += writebacks;
  return out;
}

template <std::uint32_t A>
std::size_t Cache::run_single_set(MemRef* refs, std::size_t n) {
  static_assert(A % 4 == 0, "AVX2 probe consumes whole 4-way groups");
  const bool use_simd = simd_;
  const std::uint32_t line_shift = line_shift_;
  std::uint64_t hits = 0, misses = 0, writebacks = 0;
  // The entire cache state for one set: locals for the whole run.
  std::uint64_t tags[A];
  std::uint8_t flags[A];
  for (std::uint32_t w = 0; w < A; ++w) {
    tags[w] = tags_[w];
    flags[w] = flags_[w];
  }
  std::uint64_t order = order_[0];
  std::uint32_t valid = valid_count_[0];

  std::size_t out = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const bool write = refs[i].write;
    // One set: tag == line, no split. line_shift > 0 here, so the tag
    // can never reach the invalid sentinel.
    const std::uint64_t tag = refs[i].addr >> line_shift;

    const auto mru = static_cast<std::uint32_t>(order >> (4 * (A - 1))) & 0xF;
    if (tags[mru] == tag) {
      if (write) flags[mru] |= kDirty;
      ++hits;
      continue;
    }

    std::uint32_t hit = A;
    if (use_simd) {
      hit = simd::probe_tags_avx2(tags, A, tag);
    } else {
      for (std::uint32_t w = 0; w < A; ++w) {
        if (tags[w] == tag) hit = w;
      }
    }
    if (hit != A) {
      order = move_to_front<A>(order, find_rank<A>(order, hit), hit);
      if (write) flags[hit] |= kDirty;
      ++hits;
      continue;
    }

    std::uint32_t victim;
    if (valid < A) {
      victim = A - 1 - valid;
      ++valid;
      order = move_to_front<A>(order, find_rank<A>(order, victim), victim);
    } else {
      victim = static_cast<std::uint32_t>(order & 0xF);
      order =
          (order >> 4) | (static_cast<std::uint64_t>(victim) << (4 * (A - 1)));
    }

    ++misses;
    if ((flags[victim] & (kValid | kDirty)) == (kValid | kDirty)) {
      ++writebacks;
    }
    tags[victim] = tag;
    flags[victim] = static_cast<std::uint8_t>(kValid | (write ? kDirty : 0));
    refs[out++] = refs[i];
  }

  for (std::uint32_t w = 0; w < A; ++w) {
    tags_[w] = tags[w];
    flags_[w] = flags[w];
  }
  order_[0] = order;
  valid_count_[0] = static_cast<std::uint8_t>(valid);
  stats_.hits += hits;
  stats_.misses += misses;
  stats_.writebacks += writebacks;
  return out;
}

std::size_t Cache::access_many(MemRef* refs, std::size_t n) {
  if (order_mode_) {
    if (num_sets_ == 1 && line_shift_ > 0) {
      switch (cfg_.associativity) {
        case 4:
          return run_single_set<4>(refs, n);
        case 8:
          return run_single_set<8>(refs, n);
        case 12:
          return run_single_set<12>(refs, n);
        case 16:
          return run_single_set<16>(refs, n);
        default:
          break;
      }
    }
    switch (cfg_.associativity) {
      case 4:
        return run_many<4>(refs, n);
      case 8:
        return run_many<8>(refs, n);
      case 12:
        return run_many<12>(refs, n);
      case 16:
        return run_many<16>(refs, n);
      default:
        break;
    }
  }
  std::size_t out = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!access(refs[i].addr, refs[i].write)) refs[out++] = refs[i];
  }
  return out;
}

/// `live[]` is shared between same-level walkers: a non-owner reads a
/// ref's byte only to skip it (it re-checks the set range and skips
/// either way), while the owning walker may be clearing it on a hit.
/// The value a non-owner sees never changes the outcome, but a plain
/// byte access would still be a data race by the memory model, so all
/// partition-walk accesses go through relaxed atomics — a plain byte
/// load/store on every mainstream target, so the skip-scan stays free.
namespace {
inline std::uint8_t live_load(std::uint8_t* live, std::size_t i) {
  return std::atomic_ref<std::uint8_t>(live[i]).load(
      std::memory_order_relaxed);
}
inline void live_clear(std::uint8_t* live, std::size_t i) {
  std::atomic_ref<std::uint8_t>(live[i]).store(0, std::memory_order_relaxed);
}
}  // namespace

/// Degenerate-geometry escape of the partition walk: access_cold's
/// logic with caller-owned statistics. Returns true on hit.
bool Cache::cold_partition(std::uint64_t set, std::uint64_t tag, bool write,
                           CacheStats& stats) {
  const std::uint32_t assoc = cfg_.associativity;
  const std::size_t base = static_cast<std::size_t>(set) * assoc;
  for (std::uint32_t w = 0; w < assoc; ++w) {
    if ((flags_[base + w] & kValid) != 0 && tags_[base + w] == tag) {
      order_[set] = promote_way(order_[set], w, assoc);
      if (write) flags_[base + w] |= kDirty;
      ++stats.hits;
      return true;
    }
  }
  std::uint64_t order = order_[set];
  const std::uint32_t victim = select_victim(order, valid_count_[set], assoc);
  order_[set] = order;
  ++stats.misses;
  std::uint8_t& vflags = flags_[base + victim];
  if ((vflags & (kValid | kDirty)) == (kValid | kDirty)) ++stats.writebacks;
  tags_[base + victim] = tag;
  vflags = static_cast<std::uint8_t>(kValid | (write ? kDirty : 0));
  return false;
}

template <std::uint32_t A>
void Cache::run_partition(const MemRef* refs, std::size_t n,
                          std::uint8_t* live, std::uint64_t set_begin,
                          std::uint64_t set_end, CacheStats& stats) {
  static_assert(A % 4 == 0, "AVX2 probe consumes whole 4-way groups");
  const bool use_simd = simd_;
  const std::uint32_t line_shift = line_shift_;
  const std::uint64_t num_sets = num_sets_;
  const std::uint32_t set_shift = set_shift_;
  std::uint64_t hits = 0, misses = 0, writebacks = 0;
  std::uint64_t* const all_tags = tags_.data();
  std::uint8_t* const all_flags = flags_.data();
  std::uint64_t* const all_order = order_.data();
  std::uint8_t* const all_valid = valid_count_.data();

  for (std::size_t i = 0; i < n; ++i) {
    if (live_load(live, i) == 0) continue;
    const std::uint64_t addr = refs[i].addr;
    const std::uint64_t line = addr >> line_shift;
    std::uint64_t set, tag;
    if (set_shift != kNoShift) {
      set = line & (num_sets - 1);
      tag = line >> set_shift;
    } else {
      tag = set_div_.div(line);
      set = line - tag * num_sets;
    }
    if (set < set_begin || set >= set_end) continue;
    const bool write = refs[i].write;
    if (tag == kInvalidTag) {
      // Degenerate-geometry escape. No local-counter sync needed: the
      // helper adds into the same caller-owned stats the locals flush
      // into, and the additions commute.
      if (cold_partition(set, tag, write, stats)) live_clear(live, i);
      continue;
    }

    const std::size_t base = static_cast<std::size_t>(set) * A;
    std::uint64_t* const tags = all_tags + base;
    std::uint64_t order = all_order[set];

    const auto mru = static_cast<std::uint32_t>(order >> (4 * (A - 1))) & 0xF;
    if (tags[mru] == tag) {
      if (write) all_flags[base + mru] |= kDirty;
      ++hits;
      live_clear(live, i);
      continue;
    }

    std::uint32_t hit = A;
    if (use_simd) {
      hit = simd::probe_tags_avx2(tags, A, tag);
    } else {
      for (std::uint32_t w = 0; w < A; ++w) {
        if (tags[w] == tag) hit = w;
      }
    }
    if (hit != A) {
      all_order[set] = move_to_front<A>(order, find_rank<A>(order, hit), hit);
      if (write) all_flags[base + hit] |= kDirty;
      ++hits;
      live_clear(live, i);
      continue;
    }

    std::uint32_t victim;
    const std::uint8_t v = all_valid[set];
    if (v < A) {
      victim = A - 1 - v;  // last invalid way (prefix invariant)
      all_valid[set] = static_cast<std::uint8_t>(v + 1);
      order = move_to_front<A>(order, find_rank<A>(order, victim), victim);
    } else {
      victim = static_cast<std::uint32_t>(order & 0xF);
      order =
          (order >> 4) | (static_cast<std::uint64_t>(victim) << (4 * (A - 1)));
    }
    all_order[set] = order;

    ++misses;
    std::uint8_t& vflags = all_flags[base + victim];
    if ((vflags & (kValid | kDirty)) == (kValid | kDirty)) ++writebacks;
    tags[victim] = tag;
    vflags = static_cast<std::uint8_t>(kValid | (write ? kDirty : 0));
  }

  stats.hits += hits;
  stats.misses += misses;
  stats.writebacks += writebacks;
}

/// Rolled-loop partition walk for order-mode associativities without a
/// specialized template instance.
void Cache::partition_order(const MemRef* refs, std::size_t n,
                            std::uint8_t* live, std::uint64_t set_begin,
                            std::uint64_t set_end, CacheStats& stats) {
  const std::uint32_t assoc = cfg_.associativity;
  for (std::size_t i = 0; i < n; ++i) {
    if (live_load(live, i) == 0) continue;
    std::uint64_t set, tag;
    split(refs[i].addr, set, tag);
    if (set < set_begin || set >= set_end) continue;
    const bool write = refs[i].write;
    if (tag == kInvalidTag) {
      if (cold_partition(set, tag, write, stats)) live_clear(live, i);
      continue;
    }
    const std::size_t base = static_cast<std::size_t>(set) * assoc;
    std::uint64_t* const tags = tags_.data() + base;
    std::uint64_t order = order_[set];
    std::uint32_t hit = assoc;
    for (std::uint32_t w = 0; w < assoc; ++w) {
      if (tags[w] == tag) hit = w;
    }
    if (hit != assoc) {
      order_[set] = promote_way(order, hit, assoc);
      if (write) flags_[base + hit] |= kDirty;
      ++stats.hits;
      live_clear(live, i);
      continue;
    }
    const std::uint32_t victim =
        select_victim(order, valid_count_[set], assoc);
    order_[set] = order;
    ++stats.misses;
    std::uint8_t& vflags = flags_[base + victim];
    if ((vflags & (kValid | kDirty)) == (kValid | kDirty)) ++stats.writebacks;
    tags[victim] = tag;
    vflags = static_cast<std::uint8_t>(kValid | (write ? kDirty : 0));
  }
}

/// Stamp-LRU partition walk (associativity > 16). `stamp` is the
/// caller's monotone counter: victim choice only compares stamps within
/// one set, and every set is owned by exactly one walker, so per-worker
/// counters preserve the scalar formulation's relative recency exactly.
void Cache::partition_stamps(const MemRef* refs, std::size_t n,
                             std::uint8_t* live, std::uint64_t set_begin,
                             std::uint64_t set_end, CacheStats& stats,
                             std::uint64_t& stamp) {
  const std::uint32_t assoc = cfg_.associativity;
  for (std::size_t i = 0; i < n; ++i) {
    if (live_load(live, i) == 0) continue;
    std::uint64_t set, tag;
    split(refs[i].addr, set, tag);
    if (set < set_begin || set >= set_end) continue;
    const bool write = refs[i].write;
    const std::size_t base = static_cast<std::size_t>(set) * assoc;
    ++stamp;
    std::uint32_t victim = 0;
    bool hit = false;
    for (std::uint32_t w = 0; w < assoc; ++w) {
      const std::uint8_t f = flags_[base + w];
      if ((f & kValid) != 0 && tags_[base + w] == tag) {
        stamps_[base + w] = stamp;
        if (write) flags_[base + w] |= kDirty;
        ++stats.hits;
        live_clear(live, i);
        hit = true;
        break;
      }
      if ((f & kValid) == 0) {
        victim = w;
      } else if ((flags_[base + victim] & kValid) != 0 &&
                 stamps_[base + w] < stamps_[base + victim]) {
        victim = w;
      }
    }
    if (hit) continue;
    ++stats.misses;
    std::uint8_t& vflags = flags_[base + victim];
    if ((vflags & (kValid | kDirty)) == (kValid | kDirty)) ++stats.writebacks;
    tags_[base + victim] = tag;
    stamps_[base + victim] = stamp;
    vflags = static_cast<std::uint8_t>(kValid | (write ? kDirty : 0));
  }
}

void Cache::access_partition(const MemRef* refs, std::size_t n,
                             std::uint8_t* live, std::uint64_t set_begin,
                             std::uint64_t set_end, CacheStats& stats,
                             std::uint64_t& stamp) {
  if (n == 0 || set_begin >= set_end) return;
  if (!order_mode_) {
    partition_stamps(refs, n, live, set_begin, set_end, stats, stamp);
    return;
  }
  switch (cfg_.associativity) {
    case 4:
      run_partition<4>(refs, n, live, set_begin, set_end, stats);
      return;
    case 8:
      run_partition<8>(refs, n, live, set_begin, set_end, stats);
      return;
    case 12:
      run_partition<12>(refs, n, live, set_begin, set_end, stats);
      return;
    case 16:
      run_partition<16>(refs, n, live, set_begin, set_end, stats);
      return;
    default:
      partition_order(refs, n, live, set_begin, set_end, stats);
      return;
  }
}

void Cache::clear() {
  std::fill(tags_.begin(), tags_.end(), kInvalidTag);
  std::fill(flags_.begin(), flags_.end(), 0);
  if (order_mode_) {
    std::fill(order_.begin(), order_.end(),
              identity_order(cfg_.associativity));
    std::fill(valid_count_.begin(), valid_count_.end(), 0);
  } else {
    std::fill(stamps_.begin(), stamps_.end(), 0);
    stamp_ = 0;
  }
  stats_ = CacheStats{};
}

}  // namespace fpr::memsim
