#include "memsim/sim_cache.hpp"

#include <cstdio>
#include <type_traits>

namespace fpr::memsim {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
  out += ';';
}

void append_f(std::string& out, double v) {
  // Shortest exact round-trip is overkill for a digest; 17 significant
  // digits distinguish any two distinct doubles.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g;", v);
  out += buf;
}

void append_pattern(std::string& out, const Pattern& p) {
  out += pattern_name(p);
  out += '{';
  std::visit(
      [&](const auto& pat) {
        using T = std::decay_t<decltype(pat)>;
        if constexpr (std::is_same_v<T, StreamPattern>) {
          append_u64(out, pat.bytes_per_array);
          append_u64(out, static_cast<std::uint64_t>(pat.arrays));
          append_u64(out, static_cast<std::uint64_t>(pat.writes_per_iter));
        } else if constexpr (std::is_same_v<T, StridedPattern>) {
          append_u64(out, pat.footprint_bytes);
          append_u64(out, pat.stride_bytes);
        } else if constexpr (std::is_same_v<T, StencilPattern>) {
          append_u64(out, pat.nx);
          append_u64(out, pat.ny);
          append_u64(out, pat.nz);
          append_u64(out, pat.elem_bytes);
          append_u64(out, static_cast<std::uint64_t>(pat.radius));
          append_u64(out, pat.full_box ? 1 : 0);
        } else if constexpr (std::is_same_v<T, GatherPattern>) {
          append_u64(out, pat.table_bytes);
          append_u64(out, pat.elem_bytes);
          append_f(out, pat.sequential_fraction);
          append_u64(out, pat.shared_table ? 1 : 0);
        } else if constexpr (std::is_same_v<T, ChasePattern>) {
          append_u64(out, pat.footprint_bytes);
          append_u64(out, pat.node_bytes);
        } else if constexpr (std::is_same_v<T, BlockedPattern>) {
          append_u64(out, pat.matrix_bytes);
          append_u64(out, pat.tile_bytes);
          append_f(out, pat.tile_reuse);
        }
      },
      p);
  out += '}';
}

/// Machine part shared by key() and trace_key(): exactly the fields
/// Hierarchy's geometry derives from, and nothing else. The short name
/// is deliberately absent: a replay is a pure function of the geometry,
/// so derived machine variants (arch::derive_variant) that leave the
/// cache hierarchy untouched — bandwidth, TDP, or FPU respins — share
/// their base machine's simulations, while any geometry edit (cores,
/// capacities, associativities) changes the key and cannot alias old
/// results.
void append_geometry(std::string& k, const arch::CpuSpec& cpu) {
  append_u64(k, static_cast<std::uint64_t>(cpu.cores));
  append_u64(k, static_cast<std::uint64_t>(cpu.l1_kib));
  append_u64(k, static_cast<std::uint64_t>(cpu.l1_assoc));
  append_u64(k, static_cast<std::uint64_t>(cpu.l2_kib_per_core));
  append_u64(k, static_cast<std::uint64_t>(cpu.l2_assoc));
  append_u64(k, static_cast<std::uint64_t>(cpu.llc_assoc));
  append_f(k, cpu.llc_mib);
  append_f(k, cpu.mcdram_gib);
}

}  // namespace

std::string SimCache::key(const arch::CpuSpec& cpu,
                          const AccessPatternSpec& spec, std::uint64_t refs,
                          std::uint64_t seed, unsigned scale_shift) {
  std::string k;
  k.reserve(160);
  append_geometry(k, cpu);
  // Simulation part.
  k += '|';
  append_u64(k, refs);
  append_u64(k, seed);
  append_u64(k, scale_shift);
  k += '|';
  for (const auto& c : spec.components) {
    append_pattern(k, c.pattern);
    append_f(k, c.weight);
  }
  return k;
}

std::string SimCache::trace_key(const arch::CpuSpec& cpu,
                                std::uint64_t digest, std::uint64_t refs,
                                std::uint64_t warmup, unsigned scale_shift) {
  std::string k;
  k.reserve(120);
  append_geometry(k, cpu);
  // Trace part. The leading tag keeps this section disjoint from key()'s
  // (whose post-geometry section starts with a digit), so a file replay
  // can never alias a synthetic one.
  k += "|trace-digest;";
  append_u64(k, digest);
  append_u64(k, refs);
  append_u64(k, warmup);
  append_u64(k, scale_shift);
  return k;
}

std::shared_ptr<const HierarchyResult> SimCache::find(const std::string& key) {
  std::lock_guard lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return it->second;
}

std::shared_ptr<const HierarchyResult> SimCache::insert(
    const std::string& key, HierarchyResult result) {
  auto value = std::make_shared<const HierarchyResult>(std::move(result));
  std::lock_guard lock(mu_);
  return entries_.try_emplace(key, std::move(value)).first->second;
}

SimCache::Stats SimCache::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

std::size_t SimCache::size() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

HierarchyResult simulate_pattern_cached(SimCache* cache,
                                        const arch::CpuSpec& cpu,
                                        const AccessPatternSpec& spec,
                                        std::uint64_t refs, std::uint64_t seed,
                                        unsigned scale_shift,
                                        const ShardPlan& shards) {
  if (cache == nullptr) {
    return simulate_pattern(cpu, spec, refs, seed, scale_shift, shards);
  }
  const std::string k = SimCache::key(cpu, spec, refs, seed, scale_shift);
  if (auto found = cache->find(k)) return *found;
  // Simulate outside the cache lock; a concurrent simulation of the same
  // key computes the identical result, so either insert may win. The
  // shard plan is not in the key: sharding is a pure wall-time choice.
  return *cache->insert(
      k, simulate_pattern(cpu, spec, refs, seed, scale_shift, shards));
}

}  // namespace fpr::memsim
