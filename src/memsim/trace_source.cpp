#include "memsim/trace_source.hpp"

namespace fpr::memsim {

HierarchyResult simulate_trace(const arch::CpuSpec& cpu, TraceSource& src,
                               std::uint64_t refs, std::uint64_t warmup,
                               unsigned scale_shift, const ShardPlan& shards) {
  Hierarchy h(cpu, scale_shift);
  if (shards.pool != nullptr) {
    return h.replay_sharded(src, refs, warmup, *shards.pool, shards.jobs);
  }
  return h.replay(src, refs, warmup);
}

}  // namespace fpr::memsim
