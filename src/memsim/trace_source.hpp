// TraceSource: the reference-stream abstraction the replay pipeline
// consumes. Hierarchy::replay/replay_sharded pull fixed-size blocks from
// a TraceSource; where those blocks come from — the synthetic
// TraceGenerator mixtures or an on-disk fpr-trace file — is the source's
// business. SyntheticTraceSource is a zero-cost wrapper over
// TraceGenerator (same fill(), bit-identical sequences, so every golden
// snapshot is unchanged); FileTraceSource streams the chunked decode of
// a recorded trace, which is how `fpr trace` replays real workloads
// through the same Hierarchy/SimCache/model pipeline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "arch/cpu_spec.hpp"
#include "io/trace_format.hpp"
#include "memsim/hierarchy.hpp"
#include "memsim/sim_cache.hpp"
#include "memsim/trace_gen.hpp"

namespace fpr::memsim {

/// Bounded pull interface over a reference stream. fill() produces up to
/// `n` references; a short (possibly zero) return means the stream is
/// exhausted and every later call returns 0. Synthetic sources are
/// infinite and always produce exactly `n`.
class TraceSource {
 public:
  virtual ~TraceSource() = default;
  virtual std::size_t fill(MemRef* out, std::size_t n) = 0;
};

/// Infinite synthetic source over a TraceGenerator. Owning (constructed
/// from a spec + seed) or borrowing (wrapping a caller's generator whose
/// RNG state advances through this source) — either way fill() is
/// exactly TraceGenerator::fill, so the emitted sequence is bit-identical
/// to driving the generator directly.
class SyntheticTraceSource final : public TraceSource {
 public:
  SyntheticTraceSource(const AccessPatternSpec& spec, std::uint64_t seed)
      : owned_(TraceGenerator(spec, seed)), gen_(&*owned_) {}
  explicit SyntheticTraceSource(TraceGenerator& gen) : gen_(&gen) {}

  std::size_t fill(MemRef* out, std::size_t n) override {
    gen_->fill(out, n);
    return n;
  }

 private:
  std::optional<TraceGenerator> owned_;
  TraceGenerator* gen_;
};

/// Streaming decode of an on-disk fpr-trace file (io::TraceReader).
/// Finite: fill() returns short once the file's records are consumed.
/// Construction and decoding throw io::TraceFormatError on missing,
/// wrong-magic, or truncated files.
class FileTraceSource final : public TraceSource {
 public:
  explicit FileTraceSource(const std::string& path) : reader_(path) {}

  std::size_t fill(MemRef* out, std::size_t n) override {
    return reader_.read(out, n);
  }

  [[nodiscard]] const io::TraceInfo& info() const { return reader_.info(); }

 private:
  io::TraceReader reader_;
};

/// Replay an arbitrary source through a scaled hierarchy for `cpu`:
/// the trace-file counterpart of simulate_pattern. `warmup` references
/// fill the caches uncounted, then up to `refs` are measured (fewer if
/// the source runs dry — the result's `refs` reports the measured
/// count). `scale_shift` shrinks the cache capacities only; recorded
/// addresses replay as-is, so replay a recorded synthetic trace at the
/// shift it was recorded with. `shards` spreads the walk across a
/// caller-owned pool exactly as for synthetic replays; results are
/// identical for every setting.
HierarchyResult simulate_trace(const arch::CpuSpec& cpu, TraceSource& src,
                               std::uint64_t refs, std::uint64_t warmup,
                               unsigned scale_shift = 0,
                               const ShardPlan& shards = {});

/// simulate_trace over a trace file with memoization: the replay keys by
/// (hierarchy geometry, trace content digest, refs, warmup, scale
/// shift) — see SimCache::trace_key — so repeated scorings of one trace
/// across machines/commands decode and simulate once per distinct
/// geometry. Bit-identical with or without a cache; `shards` is a pure
/// wall-time choice and deliberately not part of the key. Throws
/// io::TraceFormatError on unreadable or malformed files.
HierarchyResult replay_trace_cached(SimCache* cache, const arch::CpuSpec& cpu,
                                    const std::string& path,
                                    std::uint64_t refs, std::uint64_t warmup,
                                    unsigned scale_shift = 0,
                                    const ShardPlan& shards = {});

}  // namespace fpr::memsim
