// TraceSource: the reference-stream abstraction the replay pipeline
// consumes. Hierarchy::replay/replay_sharded pull fixed-size blocks from
// a TraceSource; where those blocks come from — the synthetic
// TraceGenerator mixtures or an on-disk fpr-trace file — is the source's
// business. SyntheticTraceSource is a zero-cost wrapper over
// TraceGenerator (same fill(), bit-identical sequences, so every golden
// snapshot is unchanged); the file-backed source lives one layer up in
// io/trace_replay.hpp (io::FileTraceSource), because memsim defines the
// abstraction and must not know about on-disk formats — the layering
// gate (fpr-lint layer-violation) enforces that direction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "arch/cpu_spec.hpp"
#include "memsim/hierarchy.hpp"
#include "memsim/trace_gen.hpp"

namespace fpr::memsim {

/// Bounded pull interface over a reference stream. fill() produces up to
/// `n` references; a short (possibly zero) return means the stream is
/// exhausted and every later call returns 0. Synthetic sources are
/// infinite and always produce exactly `n`.
class TraceSource {
 public:
  virtual ~TraceSource() = default;
  virtual std::size_t fill(MemRef* out, std::size_t n) = 0;
};

/// Infinite synthetic source over a TraceGenerator. Owning (constructed
/// from a spec + seed) or borrowing (wrapping a caller's generator whose
/// RNG state advances through this source) — either way fill() is
/// exactly TraceGenerator::fill, so the emitted sequence is bit-identical
/// to driving the generator directly.
class SyntheticTraceSource final : public TraceSource {
 public:
  SyntheticTraceSource(const AccessPatternSpec& spec, std::uint64_t seed)
      : owned_(TraceGenerator(spec, seed)), gen_(&*owned_) {}
  explicit SyntheticTraceSource(TraceGenerator& gen) : gen_(&gen) {}

  std::size_t fill(MemRef* out, std::size_t n) override {
    gen_->fill(out, n);
    return n;
  }

 private:
  std::optional<TraceGenerator> owned_;
  TraceGenerator* gen_;
};

/// Replay an arbitrary source through a scaled hierarchy for `cpu`:
/// the trace-file counterpart of simulate_pattern. `warmup` references
/// fill the caches uncounted, then up to `refs` are measured (fewer if
/// the source runs dry — the result's `refs` reports the measured
/// count). `scale_shift` shrinks the cache capacities only; recorded
/// addresses replay as-is, so replay a recorded synthetic trace at the
/// shift it was recorded with. `shards` spreads the walk across a
/// caller-owned pool exactly as for synthetic replays; results are
/// identical for every setting.
HierarchyResult simulate_trace(const arch::CpuSpec& cpu, TraceSource& src,
                               std::uint64_t refs, std::uint64_t warmup,
                               unsigned scale_shift = 0,
                               const ShardPlan& shards = {});

}  // namespace fpr::memsim
