#include "memsim/bandwidth.hpp"

#include <algorithm>
#include <type_traits>
#include <variant>

#include "common/units.hpp"

namespace fpr::memsim {

BandwidthBreakdown effective_bandwidth(const arch::CpuSpec& cpu,
                                       std::uint64_t working_set_bytes,
                                       double mcdram_capture,
                                       double miss_streaming_fraction,
                                       const CacheModeParams& params) {
  BandwidthBreakdown out;
  out.dram_gbs = cpu.dram_bw_gbs;
  if (!cpu.has_mcdram()) {
    out.effective_gbs = cpu.dram_bw_gbs;
    return out;
  }

  // The spec carries its calibrated cache-mode hit efficiency (derived
  // variants inherit it from their base); hand-built specs without one
  // fall back to the per-family calibration constants.
  const double hit_eff =
      cpu.mcdram_hit_eff > 0.0 ? cpu.mcdram_hit_eff
      : cpu.short_name == "KNM" ? params.hit_efficiency_knm
                                : params.hit_efficiency_knl;
  out.mcdram_gbs = cpu.mcdram_bw_gbs * hit_eff;

  // Capacity guard: a working set beyond the MCDRAM cannot be captured
  // regardless of what a (scaled) hierarchy simulation suggested.
  const double cap_bytes = cpu.mcdram_gib * static_cast<double>(GiB);
  double capture = std::clamp(mcdram_capture, 0.0, 1.0);
  if (static_cast<double>(working_set_bytes) > cap_bytes) {
    capture = std::min(capture, cap_bytes /
                                    static_cast<double>(working_set_bytes));
  }
  out.mcdram_fraction = capture;

  // Harmonic blend: time per byte = hit share at MCDRAM speed + miss
  // share at DRAM speed. The memory-side prefetcher rescues only the
  // *streaming* share of the misses (served at the flat DDR rate); the
  // unpredictable remainder pays the cache-mode miss_overhead double
  // transfer. A blanket never-below-DRAM floor here used to cancel that
  // penalty for every low-capture working set, contradicting the Fig. 4
  // cache-mode ladder — a spilled gather must model *below* flat DRAM
  // speed, while a spilled pure stream stays slightly above it.
  const double s = std::clamp(miss_streaming_fraction, 0.0, 1.0);
  const double miss = 1.0 - capture;
  const double miss_cost = s + (1.0 - s) * params.miss_overhead;
  const double t_per_byte = capture / out.mcdram_gbs +
                            miss * miss_cost / cpu.dram_bw_gbs;
  out.effective_gbs = 1.0 / t_per_byte;
  return out;
}

double miss_streaming_fraction(const AccessPatternSpec& spec) {
  double weighted = 0.0, total = 0.0;
  for (const auto& c : spec.components) {
    const double s = std::visit(
        [](const auto& pat) -> double {
          using T = std::decay_t<decltype(pat)>;
          if constexpr (std::is_same_v<T, GatherPattern>) {
            // Only the sequential driver stream is predictable; the
            // gathered table lookups are not.
            return pat.sequential_fraction;
          } else if constexpr (std::is_same_v<T, ChasePattern>) {
            return 0.0;  // each address depends on the previous load
          } else {
            // Stream, strided, stencil, and blocked sweeps all advance
            // by fixed strides the prefetcher locks onto.
            return 1.0;
          }
        },
        c.pattern);
    weighted += c.weight * s;
    total += c.weight;
  }
  return total > 0.0 ? weighted / total : 1.0;
}

double effective_latency_ns(const arch::CpuSpec& cpu,
                            std::uint64_t working_set_bytes,
                            double mcdram_capture,
                            const CacheModeParams& params) {
  if (!cpu.has_mcdram()) return cpu.dram_latency_ns;
  // Capacity guard, mirroring effective_bandwidth: capture beyond
  // capacity/working-set is impossible whatever the simulation said.
  const double cap_bytes = cpu.mcdram_gib * static_cast<double>(GiB);
  double c = std::clamp(mcdram_capture, 0.0, 1.0);
  if (static_cast<double>(working_set_bytes) > cap_bytes) {
    c = std::min(c, cap_bytes / static_cast<double>(working_set_bytes));
  }
  // Cache-mode miss pays the MCDRAM tag probe plus the DRAM access.
  return c * cpu.mcdram_latency_ns +
         (1.0 - c) * (cpu.mcdram_latency_ns * params.miss_latency_probe +
                      cpu.dram_latency_ns);
}

}  // namespace fpr::memsim
