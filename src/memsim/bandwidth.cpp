#include "memsim/bandwidth.hpp"

#include <algorithm>

#include "common/units.hpp"

namespace fpr::memsim {

BandwidthBreakdown effective_bandwidth(const arch::CpuSpec& cpu,
                                       std::uint64_t working_set_bytes,
                                       double mcdram_capture,
                                       const CacheModeParams& params) {
  BandwidthBreakdown out;
  out.dram_gbs = cpu.dram_bw_gbs;
  if (!cpu.has_mcdram()) {
    out.effective_gbs = cpu.dram_bw_gbs;
    return out;
  }

  const double hit_eff = cpu.short_name == "KNM"
                             ? params.hit_efficiency_knm
                             : params.hit_efficiency_knl;
  out.mcdram_gbs = cpu.mcdram_bw_gbs * hit_eff;

  // Capacity guard: a working set beyond the MCDRAM cannot be captured
  // regardless of what a (scaled) hierarchy simulation suggested.
  const double cap_bytes = cpu.mcdram_gib * static_cast<double>(GiB);
  double capture = std::clamp(mcdram_capture, 0.0, 1.0);
  if (static_cast<double>(working_set_bytes) > cap_bytes) {
    capture = std::min(capture, cap_bytes /
                                    static_cast<double>(working_set_bytes));
  }
  out.mcdram_fraction = capture;

  // Harmonic blend: time per byte = hit share at MCDRAM speed + miss
  // share at DRAM speed inflated by the cache-mode miss overhead.
  const double miss = 1.0 - capture;
  const double t_per_byte = capture / out.mcdram_gbs +
                            miss * params.miss_overhead / cpu.dram_bw_gbs;
  out.effective_gbs = 1.0 / t_per_byte;
  // Streaming misses still benefit from the memory-side prefetcher: never
  // model below plain DRAM bandwidth.
  out.effective_gbs = std::max(out.effective_gbs, cpu.dram_bw_gbs);
  return out;
}

double effective_latency_ns(const arch::CpuSpec& cpu, double mcdram_capture) {
  if (!cpu.has_mcdram()) return cpu.dram_latency_ns;
  const double c = std::clamp(mcdram_capture, 0.0, 1.0);
  // Cache-mode miss pays the MCDRAM tag probe plus the DRAM access.
  return c * cpu.mcdram_latency_ns +
         (1.0 - c) * (cpu.mcdram_latency_ns * 0.35 + cpu.dram_latency_ns);
}

}  // namespace fpr::memsim
