// Bandwidth model: what sustained bandwidth does a kernel see on a given
// machine? On the Phis the MCDRAM runs in *cache mode* (Table I), so the
// answer depends on how much of the kernel's traffic the MCDRAM captures
// — which is exactly what the paper measures with BabelStream at 2 GiB
// (fits: ~86%/75% of flat-mode bandwidth) and 14 GiB vectors (does not
// fit: slightly above DRAM throughput due to prefetch).
#pragma once

#include <cstdint>

#include "arch/cpu_spec.hpp"
#include "memsim/trace_gen.hpp"

namespace fpr::memsim {

struct BandwidthBreakdown {
  double mcdram_fraction = 0.0;  ///< share of traffic served by MCDRAM
  double effective_gbs = 0.0;    ///< harmonic-mean sustained bandwidth
  double mcdram_gbs = 0.0;       ///< component bandwidths used
  double dram_gbs = 0.0;
};

/// Overheads of running the MCDRAM as a memory-side cache rather than
/// flat-mapped memory: every access pays a tag probe and misses incur a
/// read-for-ownership style double transfer. Calibrated so the model's
/// BabelStream reproduces the paper's 86% (KNL) / 75% (KNM) capture.
struct CacheModeParams {
  double hit_efficiency_knl = 0.86;
  double hit_efficiency_knm = 0.75;
  double miss_overhead = 1.9;  ///< DRAM bytes moved per missed byte
  /// Latency adder of a cache-mode miss: fraction of the MCDRAM access
  /// time spent probing the memory-side tags before the DRAM fill can
  /// even start (a miss pays the probe AND the DRAM trip).
  double miss_latency_probe = 0.35;
};

/// Effective sustained bandwidth for a working set of the given size with
/// the given MCDRAM capture fraction (from the hierarchy simulation; pass
/// 1.0 when the working set fits entirely). `miss_streaming_fraction` is
/// the share of cache-mode misses the memory-side prefetcher can stream
/// at the full DDR rate (see miss_streaming_fraction(spec)); only the
/// remaining, unpredictable misses pay the miss_overhead double
/// transfer. The default of 1.0 — every miss prefetched — reproduces the
/// paper's BabelStream observation that a spilled pure stream still runs
/// slightly *above* flat DRAM speed, while gather/chase mixes drop below
/// it, as the Fig. 4 cache-mode ladder requires.
BandwidthBreakdown effective_bandwidth(const arch::CpuSpec& cpu,
                                       std::uint64_t working_set_bytes,
                                       double mcdram_capture,
                                       double miss_streaming_fraction = 1.0,
                                       const CacheModeParams& params = {});

/// Weighted share of an access mix the memory-side prefetcher can
/// predict: streams, strides, stencils, and blocked sweeps count fully;
/// gathers count their sequential driver share; pointer chases not at
/// all.
double miss_streaming_fraction(const AccessPatternSpec& spec);

/// Average memory latency (ns) seen past the on-chip caches. Applies
/// the same MCDRAM capacity guard as effective_bandwidth: a working set
/// larger than the MCDRAM caps the capture at capacity/working-set no
/// matter what a (scaled) hierarchy simulation suggested, so a spilled
/// working set pays DRAM-dominated latency alongside its clamped
/// bandwidth instead of an optimistic MCDRAM-weighted figure.
double effective_latency_ns(const arch::CpuSpec& cpu,
                            std::uint64_t working_set_bytes,
                            double mcdram_capture,
                            const CacheModeParams& params = {});

}  // namespace fpr::memsim
