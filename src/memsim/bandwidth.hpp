// Bandwidth model: what sustained bandwidth does a kernel see on a given
// machine? On the Phis the MCDRAM runs in *cache mode* (Table I), so the
// answer depends on how much of the kernel's traffic the MCDRAM captures
// — which is exactly what the paper measures with BabelStream at 2 GiB
// (fits: ~86%/75% of flat-mode bandwidth) and 14 GiB vectors (does not
// fit: slightly above DRAM throughput due to prefetch).
#pragma once

#include <cstdint>

#include "arch/cpu_spec.hpp"

namespace fpr::memsim {

struct BandwidthBreakdown {
  double mcdram_fraction = 0.0;  ///< share of traffic served by MCDRAM
  double effective_gbs = 0.0;    ///< harmonic-mean sustained bandwidth
  double mcdram_gbs = 0.0;       ///< component bandwidths used
  double dram_gbs = 0.0;
};

/// Overheads of running the MCDRAM as a memory-side cache rather than
/// flat-mapped memory: every access pays a tag probe and misses incur a
/// read-for-ownership style double transfer. Calibrated so the model's
/// BabelStream reproduces the paper's 86% (KNL) / 75% (KNM) capture.
struct CacheModeParams {
  double hit_efficiency_knl = 0.86;
  double hit_efficiency_knm = 0.75;
  double miss_overhead = 1.9;  ///< DRAM bytes moved per missed byte
};

/// Effective sustained bandwidth for a working set of the given size with
/// the given MCDRAM capture fraction (from the hierarchy simulation; pass
/// 1.0 when the working set fits entirely).
BandwidthBreakdown effective_bandwidth(const arch::CpuSpec& cpu,
                                       std::uint64_t working_set_bytes,
                                       double mcdram_capture,
                                       const CacheModeParams& params = {});

/// Average memory latency (ns) seen past the on-chip caches.
double effective_latency_ns(const arch::CpuSpec& cpu, double mcdram_capture);

}  // namespace fpr::memsim
