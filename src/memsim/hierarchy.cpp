#include "memsim/hierarchy.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "memsim/trace_source.hpp"

namespace fpr::memsim {

namespace {

CacheConfig make_cfg(std::uint64_t size, std::uint32_t assoc) {
  CacheConfig cfg;
  // Round capacity down to a whole number of sets (arbitrary set counts
  // are fine: Cache uses modulo indexing).
  const std::uint64_t lines = std::max<std::uint64_t>(size / 64, assoc);
  const std::uint64_t sets = std::max<std::uint64_t>(lines / assoc, 1);
  cfg.size_bytes = sets * assoc * 64;
  cfg.line_bytes = 64;
  cfg.associativity = assoc;
  return cfg;
}

}  // namespace

namespace {

[[noreturn]] void throw_unknown_level(const std::string& name,
                                      const std::vector<LevelResult>& levels) {
  std::string have;
  for (const auto& l : levels) {
    if (!have.empty()) have += ", ";
    have += l.name;
  }
  throw std::out_of_range("no hierarchy level named '" + name +
                          "' (levels: " + have + ")");
}

}  // namespace

double HierarchyResult::hit_rate(const std::string& name) const {
  for (const auto& l : levels) {
    if (l.name == name) return l.stats.hit_rate();
  }
  throw_unknown_level(name, levels);
}

double HierarchyResult::served_at_or_above(const std::string& name) const {
  std::uint64_t missed = refs;
  bool found = false;
  for (const auto& l : levels) {
    missed = l.stats.misses;
    if (l.name == name) {
      found = true;
      break;
    }
  }
  if (!found) throw_unknown_level(name, levels);
  if (refs == 0) return 0.0;
  return 1.0 - static_cast<double>(missed) / static_cast<double>(refs);
}

double HierarchyResult::dram_fraction(void) const {
  if (refs == 0 || levels.empty()) return 0.0;
  return static_cast<double>(levels.back().stats.misses) /
         static_cast<double>(refs);
}

Hierarchy::Hierarchy(const arch::CpuSpec& cpu, unsigned scale_shift)
    : scale_shift_(scale_shift) {
  // Single-core view: private L1 and L2 slice; shared LLC and (if present)
  // MCDRAM modelled as per-core shares of the aggregate capacity.
  const auto scale = [&](double bytes) {
    const auto b = static_cast<std::uint64_t>(bytes);
    const std::uint64_t s = b >> scale_shift_;
    return std::max<std::uint64_t>(s, 4 * 64);
  };

  levels_.emplace_back(
      make_cfg(scale(cpu.l1_kib * 1024.0), cpu.l1_assoc));
  names_.emplace_back("L1");

  if (cpu.l2_kib_per_core > 0) {
    levels_.emplace_back(
        make_cfg(scale(cpu.l2_kib_per_core * 1024.0), cpu.l2_assoc));
    names_.emplace_back("L2");
  }

  if (cpu.has_mcdram()) {
    // Xeon Phi: the aggregated L2 already is the LLC in Table I terms; the
    // MCDRAM acts as a memory-side cache shared by all cores.
    const double mcdram_share =
        cpu.mcdram_gib * static_cast<double>(GiB) / cpu.cores;
    levels_.emplace_back(make_cfg(scale(mcdram_share), 8));
    names_.emplace_back("MCDRAM$");
  } else {
    const double llc_share =
        cpu.llc_mib * static_cast<double>(MiB) / cpu.cores;
    levels_.emplace_back(make_cfg(scale(llc_share), cpu.llc_assoc));
    names_.emplace_back("LLC");
  }
}

namespace {

/// References per generate/filter round: large enough to amortize the
/// batching overheads, small enough that the block plus one level's way
/// arrays stay cache-resident.
constexpr std::size_t kReplayBlock = 1024;

/// References per sharded round: much larger than kReplayBlock so the
/// two inter-level barriers per block amortize to noise and every
/// walker's set slice sees enough references to stay busy.
constexpr std::size_t kShardBlock = std::size_t{1} << 16;

}  // namespace

HierarchyResult Hierarchy::replay(TraceSource& src, std::uint64_t refs,
                                  std::uint64_t warmup) {
  for (auto& c : levels_) c.clear();
  std::vector<MemRef> block(kReplayBlock);
  // Per level L, the accesses it sees are level L-1's misses in order,
  // so filtering a whole block level by level replays exactly the same
  // per-cache access sequences as the scalar reference walk. A finite
  // source may produce a short block; run() reports how many references
  // it actually replayed.
  auto run = [&](std::uint64_t count) -> std::uint64_t {
    std::uint64_t done = 0;
    while (count > 0) {
      const std::size_t want =
          static_cast<std::size_t>(std::min<std::uint64_t>(count, kReplayBlock));
      const std::size_t n = src.fill(block.data(), want);
      if (n == 0) break;
      std::size_t live = n;
      for (auto& level : levels_) {
        live = level.access_many(block.data(), live);
        if (live == 0) break;
      }
      count -= n;
      done += n;
    }
    return done;
  };
  run(warmup);
  for (auto& c : levels_) c.reset_stats();
  const std::uint64_t measured = run(refs);
  HierarchyResult r;
  r.refs = measured;
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    r.levels.push_back({names_[i], levels_[i].stats()});
  }
  return r;
}

HierarchyResult Hierarchy::replay(TraceGenerator& gen, std::uint64_t refs,
                                  std::uint64_t warmup) {
  SyntheticTraceSource src(gen);
  return replay(static_cast<TraceSource&>(src), refs, warmup);
}

HierarchyResult Hierarchy::replay_scalar(TraceGenerator& gen,
                                         std::uint64_t refs,
                                         std::uint64_t warmup) {
  for (auto& c : levels_) c.clear();
  auto run = [&](std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) {
      const MemRef ref = gen.next();
      for (auto& level : levels_) {
        const bool hit = level.access(ref.addr, ref.write);
        if (hit) break;
      }
    }
  };
  run(warmup);
  for (auto& c : levels_) c.reset_stats();
  run(refs);
  HierarchyResult r;
  r.refs = refs;
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    r.levels.push_back({names_[i], levels_[i].stats()});
  }
  return r;
}

void Hierarchy::set_probe_mode(Cache::ProbeMode mode) {
  for (auto& c : levels_) c.set_probe_mode(mode);
}

HierarchyResult Hierarchy::replay_sharded(TraceSource& src,
                                          std::uint64_t refs,
                                          std::uint64_t warmup,
                                          ThreadPool& pool,
                                          unsigned shard_jobs) {
  // Role 0 (the caller) pulls the next block — generating references or
  // decoding trace chunks — while roles 1..W walk the current one, and
  // the walkers barrier between levels — so every role must be
  // scheduled simultaneously. Clamp walkers to the pool's helper-thread
  // count; with no helpers the serial batched replay is the same
  // computation.
  const unsigned walkers =
      std::min(shard_jobs == 0 ? pool.size() : shard_jobs, pool.size());
  if (walkers == 0) return replay(src, refs, warmup);

  for (auto& c : levels_) c.clear();
  const std::size_t num_levels = levels_.size();

  // Per-(level, walker) statistics and per-walker stamp counters: no
  // two roles share a mutable location, and unsigned sums over the
  // disjoint per-set access subsequences reproduce the serial totals
  // exactly (addition commutes; each set is owned by one walker).
  std::vector<CacheStats> part_stats(num_levels * walkers);
  std::vector<std::uint64_t> part_stamps(walkers, 0);
  std::vector<MemRef> front(kShardBlock), back(kShardBlock);
  std::vector<std::uint8_t> live(kShardBlock), live_next(kShardBlock);
  std::vector<std::atomic<unsigned>> arrived(num_levels);

  auto walk = [&](unsigned w, const MemRef* block, std::size_t n,
                  std::uint8_t* flags) {
    for (std::size_t l = 0; l < num_levels; ++l) {
      const std::uint64_t sets = levels_[l].config().num_sets();
      levels_[l].access_partition(block, n, flags, sets * w / walkers,
                                  sets * (w + 1) / walkers,
                                  part_stats[l * walkers + w],
                                  part_stamps[w]);
      if (l + 1 < num_levels) {
        // Spin barrier: level L+1 may only read live flags level L has
        // finished writing. The acq_rel increment plus the acquire
        // reload of the full count publishes every walker's writes to
        // every reader; the last level needs none (the region join
        // orders it against the swap below).
        arrived[l].fetch_add(1, std::memory_order_acq_rel);
        while (arrived[l].load(std::memory_order_acquire) < walkers) {
          std::this_thread::yield();
        }
      }
    }
  };

  auto run = [&](std::uint64_t count) -> std::uint64_t {
    std::uint64_t done = 0;
    std::size_t n_front =
        static_cast<std::size_t>(std::min<std::uint64_t>(count, kShardBlock));
    if (n_front == 0) return 0;
    n_front = src.fill(front.data(), n_front);
    if (n_front == 0) return 0;
    std::fill_n(live.begin(), n_front, std::uint8_t{1});
    count -= n_front;
    while (n_front > 0) {
      const std::size_t want_back = static_cast<std::size_t>(
          std::min<std::uint64_t>(count, kShardBlock));
      // Written by role 0 inside the region, read after the join (the
      // join's synchronization publishes it); a finite source may hand
      // back fewer references than asked — or none, ending the loop.
      std::size_t n_back = 0;
      for (auto& a : arrived) a.store(0, std::memory_order_relaxed);
      const std::size_t n = n_front;
      // participants == items, so every role runs exactly one chunk —
      // the property that makes the in-region barrier deadlock-free.
      pool.parallel_for_n(
          walkers + 1, walkers + 1,
          // n_back is written by role 0 only (roles partition [rb, re))
          // and read after the join publishes it — single-writer, no
          // concurrent reader, so the race the rule guards against
          // cannot occur. fpr-lint: allow(shared-mutable-capture)
          [&](std::size_t rb, std::size_t re, unsigned) {
            for (std::size_t role = rb; role < re; ++role) {
              if (role == 0) {
                if (want_back > 0) {
                  n_back = src.fill(back.data(), want_back);
                  std::fill_n(live_next.begin(), n_back, std::uint8_t{1});
                }
              } else {
                walk(static_cast<unsigned>(role - 1), front.data(), n,
                     live.data());
              }
            }
          });
      done += n;
      count -= n_back;
      std::swap(front, back);
      std::swap(live, live_next);
      n_front = n_back;
    }
    return done;
  };

  run(warmup);
  // Steady-state measurement: drop the warmup counts but keep contents
  // and the stamp counters (only relative recency matters, exactly as
  // reset_stats() keeps the member counter running in the serial paths).
  std::fill(part_stats.begin(), part_stats.end(), CacheStats{});
  const std::uint64_t measured = run(refs);

  HierarchyResult r;
  r.refs = measured;
  for (std::size_t l = 0; l < num_levels; ++l) {
    CacheStats total;
    for (unsigned w = 0; w < walkers; ++w) {
      const CacheStats& s = part_stats[l * walkers + w];
      total.hits += s.hits;
      total.misses += s.misses;
      total.writebacks += s.writebacks;
    }
    r.levels.push_back({names_[l], total});
  }
  return r;
}

HierarchyResult Hierarchy::replay_sharded(TraceGenerator& gen,
                                          std::uint64_t refs,
                                          std::uint64_t warmup,
                                          ThreadPool& pool,
                                          unsigned shard_jobs) {
  SyntheticTraceSource src(gen);
  return replay_sharded(static_cast<TraceSource&>(src), refs, warmup, pool,
                        shard_jobs);
}

AccessPatternSpec scale_spec(const AccessPatternSpec& spec, unsigned shift) {
  auto scale = [&](std::uint64_t v) {
    const std::uint64_t s = v >> shift;
    // Small floor: a footprint that fits the (scaled) caches must keep
    // fitting after the scale-down or small-working-set kernels get
    // artificial misses.
    return std::max<std::uint64_t>(s, 512);
  };
  // Tiles model per-core cache blocking: floor at a few lines only, so a
  // small real tile still fits the scaled L1/L2 (reuse must survive the
  // scale-down or GEMM-class kernels lose their blocking).
  auto scale_tile = [&](std::uint64_t v) {
    const std::uint64_t s = v >> shift;
    return std::max<std::uint64_t>(s, 256);
  };
  AccessPatternSpec out;
  for (const auto& c : spec.components) {
    Pattern p = c.pattern;
    std::visit(
        [&](auto& pat) {
          using T = std::decay_t<decltype(pat)>;
          if constexpr (std::is_same_v<T, StreamPattern>) {
            pat.bytes_per_array = scale(pat.bytes_per_array);
          } else if constexpr (std::is_same_v<T, StridedPattern>) {
            pat.footprint_bytes = scale(pat.footprint_bytes);
          } else if constexpr (std::is_same_v<T, StencilPattern>) {
            // Shrink the grid isotropically: each dim by 2^(shift/3),
            // remainder applied to z.
            const unsigned per_dim = shift / 3;
            const unsigned rem = shift - 2 * per_dim;
            pat.nx = std::max<std::uint64_t>(pat.nx >> per_dim, 4);
            pat.ny = std::max<std::uint64_t>(pat.ny >> per_dim, 4);
            pat.nz = std::max<std::uint64_t>(pat.nz >> rem, 4);
          } else if constexpr (std::is_same_v<T, GatherPattern>) {
            pat.table_bytes = scale(pat.table_bytes);
          } else if constexpr (std::is_same_v<T, ChasePattern>) {
            pat.footprint_bytes = scale(pat.footprint_bytes);
          } else if constexpr (std::is_same_v<T, BlockedPattern>) {
            pat.matrix_bytes = scale(pat.matrix_bytes);
            pat.tile_bytes = scale_tile(pat.tile_bytes);
          }
        },
        p);
    out.components.push_back({std::move(p), c.weight});
  }
  return out;
}

HierarchyResult simulate_pattern(const arch::CpuSpec& cpu,
                                 const AccessPatternSpec& spec,
                                 std::uint64_t refs, std::uint64_t seed,
                                 unsigned scale_shift,
                                 const ShardPlan& shards) {
  Hierarchy h(cpu, scale_shift);
  const AccessPatternSpec scaled = scale_spec(spec, scale_shift);
  // Warm the caches with an equal-length prefix so measured rates are
  // steady-state (cyclic generators otherwise bias toward cold misses).
  SyntheticTraceSource src(scaled, seed);
  if (shards.pool != nullptr) {
    return h.replay_sharded(src, refs, refs, *shards.pool, shards.jobs);
  }
  return h.replay(src, refs, refs);
}

}  // namespace fpr::memsim
