// Synthetic address-trace generators. Each proxy kernel publishes an
// AccessPatternSpec describing how its kernel touches memory; the
// hierarchy simulator replays a bounded trace drawn from these generators
// to estimate per-level hit rates (the observable PCM reports).
//
// Patterns cover the compute-pattern taxonomy of the paper's Table II:
// stream (BabelStream), strided, 3-D stencil (AMG/SW4/NICAM/QCD/...),
// gather (XSBench cross-section lookups, irregular FE), pointer-chase
// (graph/latency-bound codes), and blocked-GEMM reuse (HPL, NTChem,
// CANDLE, mVMC).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/rng.hpp"

namespace fpr::memsim {

struct MemRef {
  std::uint64_t addr = 0;
  bool write = false;
};

/// Sequential sweep over `arrays` equal-size arrays (classic stream).
struct StreamPattern {
  std::uint64_t bytes_per_array = 0;
  int arrays = 3;          ///< triad: a = b + s*c
  int writes_per_iter = 1; ///< how many of the arrays are written
};

/// Fixed-stride walk (column access, struct-of-array hopping).
struct StridedPattern {
  std::uint64_t footprint_bytes = 0;
  std::uint32_t stride_bytes = 256;
};

/// Sweep of a 3-D grid with a symmetric neighbour stencil.
struct StencilPattern {
  std::uint64_t nx = 0, ny = 0, nz = 0;
  std::uint32_t elem_bytes = 8;
  int radius = 1;        ///< 1 => 7/27-point class
  bool full_box = true;  ///< true: 27-point box, false: 7-point star
};

/// Random gather from a lookup table plus a small sequential driver
/// stream (Monte-Carlo lookups, irregular FE indirection).
struct GatherPattern {
  std::uint64_t table_bytes = 0;
  std::uint32_t elem_bytes = 8;
  double sequential_fraction = 0.1;  ///< share of refs that stream
  /// True when every rank gathers from one global table (XSBench's
  /// unionized grid, NGSA's genome index); false when the gather target
  /// is rank-local data (particle/cell gathers) and therefore shrinks
  /// under domain decomposition.
  bool shared_table = true;
};

/// Dependent pointer chase through a shuffled ring (latency probes,
/// graph traversal, linked structures).
struct ChasePattern {
  std::uint64_t footprint_bytes = 0;
  std::uint32_t node_bytes = 64;
};

/// Cache-blocked dense kernel: repeated passes over a tile working set
/// with occasional streaming through the full matrix (GEMM-like reuse).
struct BlockedPattern {
  std::uint64_t matrix_bytes = 0;
  std::uint64_t tile_bytes = 0;
  double tile_reuse = 16.0;  ///< tile touches per streamed line
};

using Pattern = std::variant<StreamPattern, StridedPattern, StencilPattern,
                             GatherPattern, ChasePattern, BlockedPattern>;

/// A weighted mixture of patterns; weights are relative byte volumes.
struct AccessPatternSpec {
  struct Component {
    Pattern pattern;
    double weight = 1.0;
  };
  std::vector<Component> components;

  static AccessPatternSpec single(Pattern p) {
    return AccessPatternSpec{{{std::move(p), 1.0}}};
  }
};

/// Bounded trace replay interface: produces up to `n` references.
class TraceGenerator {
 public:
  explicit TraceGenerator(const AccessPatternSpec& spec, std::uint64_t seed);
  ~TraceGenerator();  // out-of-line: ComponentState is an incomplete type
  TraceGenerator(TraceGenerator&&) noexcept;
  TraceGenerator& operator=(TraceGenerator&&) noexcept;

  /// Next reference in the (infinite, cyclic) trace.
  MemRef next();

  /// Emit the next `n` references of the same trace into `out`. Mixture
  /// sampling happens for a whole block at once and the per-pattern
  /// variant dispatch is hoisted to one visit per same-component run, so
  /// this is the throughput path — but the emitted sequence (and every
  /// RNG state) is bit-identical to calling next() n times, which the
  /// property tests assert for all pattern classes.
  void fill(MemRef* out, std::size_t n);

 private:
  struct ComponentState;
  std::vector<std::unique_ptr<ComponentState>> comps_;
  std::vector<double> cumulative_;  ///< CDF over components
  std::vector<std::uint32_t> select_;  ///< per-block component choices
  Xoshiro256 rng_;
};

/// Human-readable tag for a pattern (diagnostics, tests).
std::string pattern_name(const Pattern& p);

}  // namespace fpr::memsim
