// Set-associative, write-back/write-allocate cache with true-LRU
// replacement. One instance models one level of one core's view of the
// hierarchy; Hierarchy stacks them (memsim/hierarchy.hpp).
//
// The replay loop is the study pipeline's hot path, so the lookup is
// engineered for throughput while staying bit-identical to the
// straightforward scalar formulation (the tests and bench replay both
// and compare statistics exactly):
//
//  - ways live in compact per-set arrays (tags/flags), with invalid
//    ways holding a sentinel tag so the hit scan is a pure compare;
//  - set indexing is shift/mask for power-of-two set counts and an
//    exact multiply-shift reciprocal (common/magic_div.hpp) otherwise —
//    never a hardware divide per reference;
//  - recency is a packed order word per set (4-bit way ids, MRU in the
//    top nibble) for associativity <= 16: the LRU victim is the bottom
//    nibble (O(1) instead of a stamp scan per miss) and a repeat access
//    to the most recent way is recognized with a single compare. Wider
//    caches fall back to classic LRU stamps;
//  - access_many() filters whole reference blocks (the miss stream the
//    next level consumes) in specialized loops — compile-time
//    associativity, and a register-resident fast path for the
//    single-set geometry the scaled-down L1/L2 collapse to;
//  - the way scan inside the block loops is probed four tags per AVX2
//    compare where the CPU supports it (common/simd.hpp), with the
//    scalar loop kept as the runtime fallback and the testing oracle;
//  - access_partition() restricts a block walk to a contiguous set
//    range with caller-owned statistics, which is what lets a sharded
//    replay split one cache across workers without sharing any mutable
//    state (memsim/hierarchy.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/magic_div.hpp"

namespace fpr::memsim {

struct MemRef;  // memsim/trace_gen.hpp

struct CacheConfig {
  std::uint64_t size_bytes = 0;
  std::uint32_t line_bytes = 64;
  std::uint32_t associativity = 8;

  [[nodiscard]] std::uint64_t num_lines() const {
    return size_bytes / line_bytes;
  }
  [[nodiscard]] std::uint64_t num_sets() const {
    return num_lines() / associativity;
  }
  void validate() const;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;  ///< dirty lines evicted

  [[nodiscard]] std::uint64_t accesses() const { return hits + misses; }
  [[nodiscard]] double hit_rate() const {
    const auto a = accesses();
    return a != 0 ? static_cast<double>(hits) / static_cast<double>(a) : 0.0;
  }
};

class Cache {
 public:
  /// Tag-probe implementation for the block access paths. kAuto (the
  /// construction default) selects AVX2 when the CPU supports it;
  /// kScalar forces the reference loop (the oracle the SIMD probe is
  /// verified against); kSimd demands AVX2 and throws when unavailable.
  /// Either choice produces bit-identical results — a valid tag occurs
  /// at most once per set, so first-match and last-match agree.
  enum class ProbeMode { kAuto, kScalar, kSimd };

  explicit Cache(CacheConfig cfg);

  /// True when the running CPU supports the AVX2 probe kernel.
  [[nodiscard]] static bool simd_supported();

  void set_probe_mode(ProbeMode mode);

  /// Access one address. Returns true on hit. On miss the line is
  /// allocated (write-allocate) and the LRU victim evicted.
  bool access(std::uint64_t addr, bool write);

  /// Access refs[0..n): misses are compacted to the front of `refs` in
  /// order (they are the reference stream the next-lower level sees)
  /// and their count returned. State and stats evolve exactly as n
  /// scalar access() calls would.
  std::size_t access_many(MemRef* refs, std::size_t n);

  /// Set-partitioned block access for sharded replay. Processes, in
  /// order, every refs[i] with live[i] != 0 whose set index falls in
  /// [set_begin, set_end); hits clear live[i] (what survives is the
  /// miss stream the next level consumes), misses allocate exactly as
  /// access() would. Statistics accumulate into `stats` and stamp-LRU
  /// timestamps draw from `stamp` (both caller-owned; the members
  /// behind stats()/reset_stats() are not touched), so concurrent
  /// calls over disjoint set ranges share the cache without sharing
  /// any mutable state. A cache replayed this way must take ALL its
  /// accesses through it with the same stamp counters — mixing in
  /// access()/access_many() would interleave the member stamp counter
  /// with the external ones and corrupt LRU ages.
  void access_partition(const MemRef* refs, std::size_t n,
                        std::uint8_t* live, std::uint64_t set_begin,
                        std::uint64_t set_end, CacheStats& stats,
                        std::uint64_t& stamp);

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] const CacheConfig& config() const { return cfg_; }

  /// Drop all contents and statistics.
  void clear();

  /// Zero the statistics but keep the cached contents (used to exclude
  /// the cold-fill phase from measurements).
  void reset_stats() { stats_ = CacheStats{}; }

 private:
  static constexpr std::uint8_t kValid = 1;
  static constexpr std::uint8_t kDirty = 2;
  /// Tag stored in invalid ways. Real tags collide with it only in the
  /// degenerate byte-line single-set geometry (tag == full address);
  /// access paths detect that case and take a flag-checked cold route.
  static constexpr std::uint64_t kInvalidTag = ~std::uint64_t{0};
  static constexpr std::uint32_t kNoShift = ~0u;

  /// Split an address into (set, tag).
  void split(std::uint64_t addr, std::uint64_t& set,
             std::uint64_t& tag) const {
    const std::uint64_t line = addr >> line_shift_;
    if (set_shift_ != kNoShift) {
      set = line & (num_sets_ - 1);
      tag = line >> set_shift_;
    } else {
      tag = set_div_.div(line);
      set = line - tag * num_sets_;
    }
  }

  bool access_order(std::uint64_t set, std::uint64_t tag, bool write);
  bool access_cold(std::uint64_t set, std::uint64_t tag, bool write);
  bool access_stamps(std::uint64_t set, std::uint64_t tag, bool write);

  template <std::uint32_t A>
  std::size_t run_many(MemRef* refs, std::size_t n);
  template <std::uint32_t A>
  std::size_t run_single_set(MemRef* refs, std::size_t n);

  // Partition variants of the scalar paths: external stats/stamp, live
  // flags instead of compaction, set-range filter.
  bool cold_partition(std::uint64_t set, std::uint64_t tag, bool write,
                      CacheStats& stats);
  template <std::uint32_t A>
  void run_partition(const MemRef* refs, std::size_t n, std::uint8_t* live,
                     std::uint64_t set_begin, std::uint64_t set_end,
                     CacheStats& stats);
  void partition_order(const MemRef* refs, std::size_t n, std::uint8_t* live,
                       std::uint64_t set_begin, std::uint64_t set_end,
                       CacheStats& stats);
  void partition_stamps(const MemRef* refs, std::size_t n, std::uint8_t* live,
                        std::uint64_t set_begin, std::uint64_t set_end,
                        CacheStats& stats, std::uint64_t& stamp);

  CacheConfig cfg_;
  std::uint64_t num_sets_ = 0;
  std::uint32_t line_shift_ = 0;
  std::uint32_t set_shift_ = kNoShift;  ///< valid when num_sets is pow2
  MagicDiv set_div_;                    ///< used when num_sets is not pow2
  bool order_mode_ = false;  ///< packed-order LRU (associativity <= 16)
  bool simd_ = false;        ///< AVX2 tag probes in the block loops
  // Way state as parallel per-set arrays (index = set * assoc + way).
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint8_t> flags_;  ///< kValid | kDirty
  // order_mode_: per-set recency word + valid-way count. Invalid ways
  // always form a prefix [0, assoc - valid_count) because insertion
  // fills the highest-indexed invalid way first (the scan-order rule
  // the stamp formulation implements), making "last invalid way" O(1).
  std::vector<std::uint64_t> order_;
  std::vector<std::uint8_t> valid_count_;
  // !order_mode_ (associativity > 16): classic access-stamp LRU.
  std::vector<std::uint64_t> stamps_;
  std::uint64_t stamp_ = 0;
  CacheStats stats_;
};

}  // namespace fpr::memsim
