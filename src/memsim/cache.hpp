// Set-associative, write-back/write-allocate cache with true-LRU
// replacement. One instance models one level of one core's view of the
// hierarchy; Hierarchy stacks them (memsim/hierarchy.hpp).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace fpr::memsim {

struct CacheConfig {
  std::uint64_t size_bytes = 0;
  std::uint32_t line_bytes = 64;
  std::uint32_t associativity = 8;

  [[nodiscard]] std::uint64_t num_lines() const {
    return size_bytes / line_bytes;
  }
  [[nodiscard]] std::uint64_t num_sets() const {
    return num_lines() / associativity;
  }
  void validate() const;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;  ///< dirty lines evicted

  [[nodiscard]] std::uint64_t accesses() const { return hits + misses; }
  [[nodiscard]] double hit_rate() const {
    const auto a = accesses();
    return a != 0 ? static_cast<double>(hits) / static_cast<double>(a) : 0.0;
  }
};

class Cache {
 public:
  explicit Cache(CacheConfig cfg);

  /// Access one address. Returns true on hit. On miss the line is
  /// allocated (write-allocate) and the LRU victim evicted.
  bool access(std::uint64_t addr, bool write);

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] const CacheConfig& config() const { return cfg_; }

  /// Drop all contents and statistics.
  void clear();

  /// Zero the statistics but keep the cached contents (used to exclude
  /// the cold-fill phase from measurements).
  void reset_stats() { stats_ = CacheStats{}; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  ///< access stamp; smallest = LRU victim
    bool valid = false;
    bool dirty = false;
  };

  CacheConfig cfg_;
  std::uint64_t num_sets_ = 0;
  std::uint32_t line_shift_ = 0;
  std::uint64_t stamp_ = 0;
  std::vector<Way> ways_;  ///< sets * associativity, row-major by set
  CacheStats stats_;
};

}  // namespace fpr::memsim
