// Multi-level hierarchy simulation: a single core's view of L1 -> L2 ->
// (LLC | MCDRAM-as-cache) -> DRAM, built from a CpuSpec. Because a full
// 16 GiB MCDRAM cache cannot be simulated line-by-line in reasonable
// memory, the hierarchy is *scaled*: capacities and working sets shrink
// by the same power-of-two factor, which preserves hit rates for the
// self-similar access patterns we replay (stream, stencil, gather, chase,
// blocked reuse are all scale-free in the capacity/footprint ratio).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/cpu_spec.hpp"
#include "memsim/cache.hpp"
#include "memsim/trace_gen.hpp"

namespace fpr::memsim {

struct LevelResult {
  std::string name;   ///< "L1", "L2", "LLC", "MCDRAM$"
  CacheStats stats;
};

/// Result of replaying a trace through the hierarchy.
struct HierarchyResult {
  std::vector<LevelResult> levels;
  std::uint64_t refs = 0;

  /// Hit rate of the level with the given name. Throws std::out_of_range
  /// for a name this hierarchy has no level of (e.g. asking a Phi result
  /// for "LLC"): a mix-up must never silently read as a 0% hit rate.
  [[nodiscard]] double hit_rate(const std::string& name) const;

  /// Fraction of references served at or above the named level, i.e.
  /// without going past it toward memory. Throws std::out_of_range for
  /// an unknown level name (it would otherwise silently report the
  /// bottom level's value).
  [[nodiscard]] double served_at_or_above(const std::string& name) const;

  /// Fraction of all references that went all the way to DRAM.
  [[nodiscard]] double dram_fraction() const;
};

class Hierarchy {
 public:
  /// Build a scaled single-core hierarchy for `cpu`. `scale_shift` halves
  /// all capacities that many times (default 2^6 = 64x reduction; pass 0
  /// for exact geometry in unit tests).
  explicit Hierarchy(const arch::CpuSpec& cpu, unsigned scale_shift = 6);

  /// Replay `refs` references from the generator. Working-set footprints
  /// in the generator's patterns must be pre-scaled by scaled_bytes().
  /// The first `warmup` references fill the caches without being
  /// counted, so the result reflects steady-state hit rates.
  ///
  /// The replay is batched: references are generated in blocks
  /// (TraceGenerator::fill) and each level filters a whole block to the
  /// miss stream the next level consumes (Cache::access_many), hoisting
  /// generator dispatch and the level loop out of the per-reference
  /// path. Results are bit-identical to replay_scalar().
  HierarchyResult replay(TraceGenerator& gen, std::uint64_t refs,
                         std::uint64_t warmup = 0);

  /// Reference implementation: one gen.next() and one full level walk
  /// per reference. Kept as the oracle the batched path is verified
  /// against (tests) and the baseline bench/memsim_replay times.
  HierarchyResult replay_scalar(TraceGenerator& gen, std::uint64_t refs,
                                std::uint64_t warmup = 0);

  /// Scale a full-size footprint to the simulated geometry.
  [[nodiscard]] std::uint64_t scaled_bytes(std::uint64_t full) const {
    const std::uint64_t s = full >> scale_shift_;
    return s > 0 ? s : 64;
  }

  [[nodiscard]] unsigned scale_shift() const { return scale_shift_; }
  [[nodiscard]] std::size_t num_levels() const { return levels_.size(); }
  [[nodiscard]] const std::string& level_name(std::size_t i) const {
    return names_[i];
  }
  [[nodiscard]] const CacheConfig& level_config(std::size_t i) const {
    return levels_[i].config();
  }

 private:
  std::vector<Cache> levels_;
  std::vector<std::string> names_;
  unsigned scale_shift_ = 0;
};

/// Convenience: replay a pattern spec with full-size footprints through a
/// scaled hierarchy for `cpu`, auto-scaling every pattern footprint.
HierarchyResult simulate_pattern(const arch::CpuSpec& cpu,
                                 const AccessPatternSpec& spec,
                                 std::uint64_t refs = 1u << 20,
                                 std::uint64_t seed = 0x0fbeef,
                                 unsigned scale_shift = 6);

/// Scale all footprint fields of a pattern spec by 2^-shift (helper used
/// by simulate_pattern; exposed for tests).
AccessPatternSpec scale_spec(const AccessPatternSpec& spec, unsigned shift);

}  // namespace fpr::memsim
