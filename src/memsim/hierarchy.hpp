// Multi-level hierarchy simulation: a single core's view of L1 -> L2 ->
// (LLC | MCDRAM-as-cache) -> DRAM, built from a CpuSpec. Because a full
// 16 GiB MCDRAM cache cannot be simulated line-by-line in reasonable
// memory, the hierarchy is *scaled*: capacities and working sets shrink
// by the same power-of-two factor, which preserves hit rates for the
// self-similar access patterns we replay (stream, stencil, gather, chase,
// blocked reuse are all scale-free in the capacity/footprint ratio).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/cpu_spec.hpp"
#include "memsim/cache.hpp"
#include "memsim/trace_gen.hpp"

namespace fpr {
class ThreadPool;  // common/thread_pool.hpp
}  // namespace fpr

namespace fpr::memsim {

class TraceSource;  // memsim/trace_source.hpp

/// Optional sharding of a single replay across a caller-owned worker
/// pool. Default-constructed (null pool) means serial replay. Sharding
/// never changes results — per-level statistics are exactly equal for
/// every worker count (property-tested against replay_scalar) — it only
/// changes wall time, which is why SimCache keys ignore it.
struct ShardPlan {
  ThreadPool* pool = nullptr;  ///< null = serial replay
  unsigned jobs = 0;  ///< walkers; 0 = one per pool worker, clamped to pool
};

struct LevelResult {
  std::string name;   ///< "L1", "L2", "LLC", "MCDRAM$"
  CacheStats stats;
};

/// Result of replaying a trace through the hierarchy.
struct HierarchyResult {
  std::vector<LevelResult> levels;
  std::uint64_t refs = 0;

  /// Hit rate of the level with the given name. Throws std::out_of_range
  /// for a name this hierarchy has no level of (e.g. asking a Phi result
  /// for "LLC"): a mix-up must never silently read as a 0% hit rate.
  [[nodiscard]] double hit_rate(const std::string& name) const;

  /// Fraction of references served at or above the named level, i.e.
  /// without going past it toward memory. Throws std::out_of_range for
  /// an unknown level name (it would otherwise silently report the
  /// bottom level's value).
  [[nodiscard]] double served_at_or_above(const std::string& name) const;

  /// Fraction of all references that went all the way to DRAM.
  [[nodiscard]] double dram_fraction() const;
};

class Hierarchy {
 public:
  /// Build a scaled single-core hierarchy for `cpu`. `scale_shift` halves
  /// all capacities that many times (default 2^6 = 64x reduction; pass 0
  /// for exact geometry in unit tests).
  explicit Hierarchy(const arch::CpuSpec& cpu, unsigned scale_shift = 6);

  /// Replay up to `refs` references from a source. Working-set
  /// footprints behind the source must be pre-scaled by scaled_bytes().
  /// The first `warmup` references fill the caches without being
  /// counted, so the result reflects steady-state hit rates. A finite
  /// source (FileTraceSource) may run dry early; the result's `refs`
  /// reports the count actually measured.
  ///
  /// The replay is batched: references are pulled in blocks
  /// (TraceSource::fill) and each level filters a whole block to the
  /// miss stream the next level consumes (Cache::access_many), hoisting
  /// source dispatch and the level loop out of the per-reference path.
  /// Results are bit-identical to replay_scalar().
  HierarchyResult replay(TraceSource& src, std::uint64_t refs,
                         std::uint64_t warmup = 0);

  /// Synthetic convenience: wraps `gen` in a borrowing
  /// SyntheticTraceSource — same computation, same RNG state advance,
  /// bit-identical to the source overload.
  HierarchyResult replay(TraceGenerator& gen, std::uint64_t refs,
                         std::uint64_t warmup = 0);

  /// Reference implementation: one gen.next() and one full level walk
  /// per reference. Kept as the oracle the batched path is verified
  /// against (tests) and the baseline bench/memsim_replay times.
  HierarchyResult replay_scalar(TraceGenerator& gen, std::uint64_t refs,
                                std::uint64_t warmup = 0);

  /// Sharded replay: blocks are pulled serially (a trace is a strict
  /// sequence — for files, role 0 decodes the next chunk range while the
  /// walkers walk) and walked by up to `shard_jobs` workers, each owning
  /// a contiguous disjoint slice of every level's sets, with a barrier
  /// between levels so level L+1 reads the completed miss stream of
  /// level L. The next block is pulled concurrently with the level
  /// walks. Per-(level, worker) statistics are summed at the end —
  /// unsigned sums over disjoint per-set access subsequences, so the
  /// result is exactly equal to replay()/replay_scalar() for ANY worker
  /// count. Walkers are clamped to the pool's helper-thread count (an
  /// in-region barrier needs every role scheduled); a pool with no
  /// helpers degrades to the serial replay().
  HierarchyResult replay_sharded(TraceSource& src, std::uint64_t refs,
                                 std::uint64_t warmup, ThreadPool& pool,
                                 unsigned shard_jobs = 0);

  /// Synthetic convenience (borrowing SyntheticTraceSource wrapper).
  HierarchyResult replay_sharded(TraceGenerator& gen, std::uint64_t refs,
                                 std::uint64_t warmup, ThreadPool& pool,
                                 unsigned shard_jobs = 0);

  /// Apply a tag-probe implementation choice to every level (bench and
  /// test hook; construction default is Cache's kAuto dispatch).
  void set_probe_mode(Cache::ProbeMode mode);

  /// Scale a full-size footprint to the simulated geometry.
  [[nodiscard]] std::uint64_t scaled_bytes(std::uint64_t full) const {
    const std::uint64_t s = full >> scale_shift_;
    return s > 0 ? s : 64;
  }

  [[nodiscard]] unsigned scale_shift() const { return scale_shift_; }
  [[nodiscard]] std::size_t num_levels() const { return levels_.size(); }
  [[nodiscard]] const std::string& level_name(std::size_t i) const {
    return names_[i];
  }
  [[nodiscard]] const CacheConfig& level_config(std::size_t i) const {
    return levels_[i].config();
  }
  /// Direct level access for drivers that stage the replay themselves
  /// (bench/memsim_replay's per-stage roofline keeps its timers outside
  /// src/memsim, where wall clocks are barred by the determinism lint).
  [[nodiscard]] Cache& level_cache(std::size_t i) { return levels_[i]; }

 private:
  std::vector<Cache> levels_;
  std::vector<std::string> names_;
  unsigned scale_shift_ = 0;
};

/// Convenience: replay a pattern spec with full-size footprints through a
/// scaled hierarchy for `cpu`, auto-scaling every pattern footprint.
/// `shards` optionally spreads the replay across a caller-owned pool;
/// results are identical either way.
HierarchyResult simulate_pattern(const arch::CpuSpec& cpu,
                                 const AccessPatternSpec& spec,
                                 std::uint64_t refs = 1u << 20,
                                 std::uint64_t seed = 0x0fbeef,
                                 unsigned scale_shift = 6,
                                 const ShardPlan& shards = {});

/// Scale all footprint fields of a pattern spec by 2^-shift (helper used
/// by simulate_pattern; exposed for tests).
AccessPatternSpec scale_spec(const AccessPatternSpec& spec, unsigned shift);

}  // namespace fpr::memsim
