// Memoization for hierarchy simulations. A replay is a pure function of
// (machine geometry, pattern spec, trace length, seed, scale shift), and
// the study pipeline re-runs identical replays across repeats, job
// ladders, and CLI invocations that share a process. SimCache keys each
// replay by a canonical textual digest of those inputs and returns the
// stored HierarchyResult on repeat — byte-identical by construction,
// because the cached value IS the value a fresh simulation produces.
//
// Thread safety: lookups and inserts take an internal mutex; the
// simulation itself runs outside the lock. When two threads race to
// simulate the same key, the first insert wins and both observe the same
// result object (the values are identical anyway — the simulation is
// deterministic), so sharing one SimCache across StudyEngine's machine
// stages and --kernel-jobs producers cannot perturb results.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "arch/cpu_spec.hpp"
#include "memsim/hierarchy.hpp"

namespace fpr::memsim {

class SimCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;    ///< lookups served from the cache
    std::uint64_t misses = 0;  ///< lookups that had to simulate
  };

  /// Canonical digest of one simulation's full input tuple. Two keys are
  /// equal iff the simulations are replays of each other.
  static std::string key(const arch::CpuSpec& cpu,
                         const AccessPatternSpec& spec, std::uint64_t refs,
                         std::uint64_t seed, unsigned scale_shift);

  /// Digest of a file-backed replay: the same geometry prefix as key(),
  /// then the trace's content digest (io::TraceInfo::digest — a pure
  /// function of the record stream, independent of chunking or file
  /// path) plus the measured/warmup lengths and the capacity scale.
  /// Disjoint from every pattern key by construction (the section after
  /// the geometry starts with a "trace-digest" tag no pattern spelling
  /// produces), so file and synthetic replays share one SimCache safely.
  static std::string trace_key(const arch::CpuSpec& cpu, std::uint64_t digest,
                               std::uint64_t refs, std::uint64_t warmup,
                               unsigned scale_shift);

  /// Cached lookup, counting a hit; nullptr (and a counted miss) when
  /// absent.
  [[nodiscard]] std::shared_ptr<const HierarchyResult> find(
      const std::string& key);

  /// Store a freshly simulated result. First writer wins: when an entry
  /// already exists (two threads simulated the same key concurrently)
  /// the stored one is returned and the new value dropped.
  std::shared_ptr<const HierarchyResult> insert(const std::string& key,
                                                HierarchyResult result);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const HierarchyResult>>
      entries_;
  Stats stats_;
};

/// simulate_pattern with memoization: consults `cache` (when non-null)
/// before simulating and stores what it simulates. Bit-identical to the
/// uncached call either way. `shards` only parallelizes the simulation
/// that backs a miss — sharded results are exactly equal to serial ones
/// (see ShardPlan), so it is deliberately NOT part of the key: cached
/// and fresh lookups interchange freely across shard settings.
HierarchyResult simulate_pattern_cached(SimCache* cache,
                                        const arch::CpuSpec& cpu,
                                        const AccessPatternSpec& spec,
                                        std::uint64_t refs, std::uint64_t seed,
                                        unsigned scale_shift,
                                        const ShardPlan& shards = {});

}  // namespace fpr::memsim
