// Memory profiling glue: run a kernel's access pattern through the scaled
// cache-hierarchy simulation for a machine and derive the quantities the
// execution model and Table IV need (hit rates, off-chip traffic split,
// effective bandwidth and latency).
#pragma once

#include "arch/cpu_spec.hpp"
#include "memsim/bandwidth.hpp"
#include "memsim/hierarchy.hpp"
#include "model/workload.hpp"

namespace fpr::model {

struct MemoryProfile {
  double l2_hit = 0.0;         ///< Table IV "L2h" (L1 misses that hit L2)
  double llc_hit = 0.0;        ///< Table IV "LLh" (L3 on BDW, MCDRAM$ on Phi)
  double offchip_fraction = 0.0;  ///< refs going past private caches
  double offchip_bytes = 0.0;  ///< traffic past L2 (MCDRAM+DRAM on Phi)
  double dram_bytes = 0.0;     ///< traffic reaching DDR
  double mcdram_capture = 0.0; ///< share of off-chip refs served by MCDRAM
  double effective_bw_gbs = 0.0;
  double latency_ns = 0.0;
  double dep_refs = 0.0;       ///< serialized (dependent) off-chip refs
};

/// Divide all footprints of a total-scale pattern spec by `divisor`
/// (per-core slice under domain decomposition; stencils split along z).
memsim::AccessPatternSpec per_core_slice(const memsim::AccessPatternSpec& spec,
                                         double divisor);

/// Profile `w` on `cpu`. `refs` bounds the simulated trace length; the
/// default shift of 8 (256x capacity reduction) keeps footprint/refs
/// ratios small enough that steady-state hit rates dominate cold misses.
MemoryProfile profile_memory(const arch::CpuSpec& cpu,
                             const WorkloadMeasurement& w,
                             std::uint64_t refs = 400'000,
                             unsigned scale_shift = 8);

}  // namespace fpr::model
