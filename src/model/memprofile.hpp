// Memory profiling glue: run a kernel's access pattern through the scaled
// cache-hierarchy simulation for a machine and derive the quantities the
// execution model and Table IV need (hit rates, off-chip traffic split,
// effective bandwidth and latency).
#pragma once

#include "arch/cpu_spec.hpp"
#include "memsim/bandwidth.hpp"
#include "memsim/hierarchy.hpp"
#include "memsim/sim_cache.hpp"
#include "kernels/workload.hpp"

namespace fpr::model {

/// Default capacity scale-down (2^8 = 256x) for the hierarchy
/// simulation: keeps footprint/refs ratios small enough that
/// steady-state hit rates dominate cold misses.
inline constexpr unsigned kDefaultScaleShift = 8;

/// Seed of the profiling replay (fixed: profiles must be repeatable and
/// memoizable across stages and processes).
inline constexpr std::uint64_t kProfileSeed = 0xfeed1234;

/// Default trace length per hierarchy replay: long enough for
/// steady-state hit rates at the default scale shift, short enough to
/// keep a full study's simulation budget in check.
inline constexpr std::uint64_t kDefaultTraceRefs = 400'000;

struct MemoryProfile {
  double l2_hit = 0.0;         ///< Table IV "L2h" (L1 misses that hit L2)
  double llc_hit = 0.0;        ///< Table IV "LLh" (L3 on BDW, MCDRAM$ on Phi)
  double offchip_fraction = 0.0;  ///< refs going past private caches
  double offchip_bytes = 0.0;  ///< traffic past L2 (MCDRAM+DRAM on Phi)
  double dram_bytes = 0.0;     ///< traffic reaching DDR
  double mcdram_capture = 0.0; ///< share of off-chip refs served by MCDRAM
  double effective_bw_gbs = 0.0;
  double latency_ns = 0.0;
  double dep_refs = 0.0;       ///< serialized (dependent) off-chip refs
};

/// Divide all footprints of a total-scale pattern spec by `divisor`
/// (per-core slice under domain decomposition; stencils split along z).
memsim::AccessPatternSpec per_core_slice(const memsim::AccessPatternSpec& spec,
                                         double divisor);

/// Profile `w` on `cpu`. `refs` bounds the simulated trace length (see
/// kDefaultScaleShift for the capacity reduction). When `cache` is
/// non-null the hierarchy replay — the dominant cost — is memoized
/// through it, keyed by the full simulation input tuple; results are
/// bit-identical with or without a cache. `shards` optionally spreads
/// the replay across a caller-owned pool (see memsim::ShardPlan);
/// results are identical for every setting.
MemoryProfile profile_memory(const arch::CpuSpec& cpu,
                             const WorkloadMeasurement& w,
                             std::uint64_t refs = kDefaultTraceRefs,
                             unsigned scale_shift = kDefaultScaleShift,
                             memsim::SimCache* cache = nullptr,
                             const memsim::ShardPlan& shards = {});

/// Profile a replayed external trace (`fpr trace --out`): the same
/// derived quantities as profile_memory, but the traffic terms come
/// straight from the replay — each trace reference models an 8-byte
/// access and a miss moves a 64-byte line — and the working set is the
/// trace's touched-line footprint (io::TraceInfo::working_set_bytes).
/// An external trace carries no instruction mix, so the
/// dependent-reference serialization term is 0 and `streaming_fraction`
/// (the share of off-chip misses prefetchers can stream at the full DDR
/// rate) defaults to fully streamable.
MemoryProfile profile_trace(const arch::CpuSpec& cpu,
                            const memsim::HierarchyResult& res,
                            std::uint64_t working_set_bytes,
                            double streaming_fraction = 1.0);

}  // namespace fpr::model
