#include "model/memprofile.hpp"

#include <algorithm>
#include <cmath>

namespace fpr::model {

memsim::AccessPatternSpec per_core_slice(const memsim::AccessPatternSpec& spec,
                                         double divisor) {
  using namespace memsim;
  auto div = [&](std::uint64_t v) {
    const double d = static_cast<double>(v) / std::max(1.0, divisor);
    // Small floor (see scale_spec): per-core slices that genuinely fit
    // the private caches must be allowed to.
    return std::max<std::uint64_t>(static_cast<std::uint64_t>(d), 512);
  };
  AccessPatternSpec out;
  for (const auto& c : spec.components) {
    Pattern p = c.pattern;
    std::visit(
        [&](auto& pat) {
          using T = std::decay_t<decltype(pat)>;
          if constexpr (std::is_same_v<T, StreamPattern>) {
            pat.bytes_per_array = div(pat.bytes_per_array);
          } else if constexpr (std::is_same_v<T, StridedPattern>) {
            pat.footprint_bytes = div(pat.footprint_bytes);
          } else if constexpr (std::is_same_v<T, StencilPattern>) {
            // Domain decomposition: each core works a z-slab.
            pat.nz = std::max<std::uint64_t>(
                static_cast<std::uint64_t>(
                    static_cast<double>(pat.nz) / std::max(1.0, divisor)),
                4);
          } else if constexpr (std::is_same_v<T, GatherPattern>) {
            // Rank-local tables shrink under decomposition. Shared
            // tables (XSBench grid, NGSA index) are divided too: the
            // shared caches hold ONE copy, so preserving the
            // capacity/footprint *ratio* in the per-core simulation
            // requires dividing both sides by the core count.
            pat.table_bytes = div(pat.table_bytes);
          } else if constexpr (std::is_same_v<T, ChasePattern>) {
            pat.footprint_bytes = div(pat.footprint_bytes);
          } else if constexpr (std::is_same_v<T, BlockedPattern>) {
            pat.matrix_bytes = div(pat.matrix_bytes);
            pat.tile_bytes = std::min(pat.tile_bytes, pat.matrix_bytes);
          }
        },
        p);
    out.components.push_back({std::move(p), c.weight});
  }
  return out;
}

MemoryProfile profile_memory(const arch::CpuSpec& cpu,
                             const WorkloadMeasurement& w,
                             std::uint64_t refs, unsigned scale_shift,
                             memsim::SimCache* cache,
                             const memsim::ShardPlan& shards) {
  MemoryProfile mp;

  // Per-core slice of the footprint, then the shared scale-down that the
  // hierarchy also applies to its capacities.
  const auto sliced = per_core_slice(w.access, cpu.cores);
  const auto res = memsim::simulate_pattern_cached(
      cache, cpu, sliced, refs, kProfileSeed, scale_shift, shards);

  mp.l2_hit = res.hit_rate("L2");
  mp.llc_hit = cpu.has_mcdram() ? res.hit_rate("MCDRAM$")
                                : res.hit_rate("LLC");

  // "Off-chip" traffic is what the bandwidth term pays for: on the Phis
  // everything past the (aggregated) L2 goes to the memory side
  // (MCDRAM cache or DDR); on BDW the L3 is still on-chip, so only
  // LLC misses reach DRAM.
  const double past_l2 = 1.0 - res.served_at_or_above("L2");
  const double past_last = res.dram_fraction();
  mp.offchip_fraction = cpu.has_mcdram() ? past_l2 : past_last;

  // Architectural bytes -> off-chip traffic. Trace references model
  // 8-byte accesses; a miss moves a 64-byte line, so traffic past a
  // level with miss fraction f is arch_bytes * f * (64/8).
  const double arch_bytes = static_cast<double>(w.ops.bytes_read) +
                            static_cast<double>(w.ops.bytes_written);
  mp.offchip_bytes = arch_bytes * mp.offchip_fraction * 8.0;
  mp.dram_bytes = arch_bytes * past_last * 8.0;

  if (cpu.has_mcdram()) {
    mp.mcdram_capture = past_l2 > 0.0
                            ? std::clamp(1.0 - past_last / past_l2, 0.0, 1.0)
                            : 1.0;
  } else {
    mp.mcdram_capture = 0.0;
  }

  const auto bw = memsim::effective_bandwidth(
      cpu, w.working_set_bytes, mp.mcdram_capture,
      memsim::miss_streaming_fraction(w.access));
  mp.effective_bw_gbs = bw.effective_gbs;
  mp.latency_ns = memsim::effective_latency_ns(cpu, w.working_set_bytes,
                                               mp.mcdram_capture);

  // Dependent (serialized) off-chip references.
  const double offchip_refs = arch_bytes / 8.0 * past_l2;
  mp.dep_refs = offchip_refs * w.traits.latency_dep_fraction;
  return mp;
}

MemoryProfile profile_trace(const arch::CpuSpec& cpu,
                            const memsim::HierarchyResult& res,
                            std::uint64_t working_set_bytes,
                            double streaming_fraction) {
  MemoryProfile mp;
  mp.l2_hit = res.hit_rate("L2");
  mp.llc_hit = cpu.has_mcdram() ? res.hit_rate("MCDRAM$")
                                : res.hit_rate("LLC");

  // Same off-chip split as profile_memory (see there), but the byte
  // terms are exact: the replay counted every reference, each modelling
  // an 8-byte access whose miss moves a 64-byte line.
  const double past_l2 = 1.0 - res.served_at_or_above("L2");
  const double past_last = res.dram_fraction();
  mp.offchip_fraction = cpu.has_mcdram() ? past_l2 : past_last;

  const double trace_bytes = static_cast<double>(res.refs) * 8.0;
  mp.offchip_bytes = trace_bytes * mp.offchip_fraction * 8.0;
  mp.dram_bytes = trace_bytes * past_last * 8.0;

  if (cpu.has_mcdram()) {
    mp.mcdram_capture = past_l2 > 0.0
                            ? std::clamp(1.0 - past_last / past_l2, 0.0, 1.0)
                            : 1.0;
  } else {
    mp.mcdram_capture = 0.0;
  }

  const auto bw = memsim::effective_bandwidth(
      cpu, working_set_bytes, mp.mcdram_capture, streaming_fraction);
  mp.effective_bw_gbs = bw.effective_gbs;
  mp.latency_ns = memsim::effective_latency_ns(cpu, working_set_bytes,
                                               mp.mcdram_capture);

  // No instruction mix: the dependent-reference share is unknowable
  // from an address trace alone.
  mp.dep_refs = 0.0;
  return mp;
}

}  // namespace fpr::model
