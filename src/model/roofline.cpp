#include "model/roofline.hpp"

#include <algorithm>

namespace fpr::model {

double attainable(const arch::CpuSpec& cpu, double ai, bool fp64_dominant) {
  const double peak = cpu.peak_gflops(fp64_dominant ? arch::Precision::fp64
                                                    : arch::Precision::fp32);
  return std::min(peak, ai * cpu.dram_bw_gbs);
}

double ridge_point(const arch::CpuSpec& cpu, bool fp64_dominant) {
  const double peak = cpu.peak_gflops(fp64_dominant ? arch::Precision::fp64
                                                    : arch::Precision::fp32);
  return peak / cpu.dram_bw_gbs;
}

RooflinePoint roofline_point(const arch::CpuSpec& cpu,
                             const WorkloadMeasurement& w,
                             const MemoryProfile& mem, const EvalResult& ev) {
  RooflinePoint p;
  p.name = w.name;
  const bool fp64_dominant = w.ops.fp64 >= w.ops.fp32;
  const double flops = static_cast<double>(w.ops.fp_total());
  // The paper computes AI against DRAM traffic on the BDW reference.
  const double bytes = std::max(1.0, mem.offchip_bytes);
  p.arithmetic_intensity = flops / bytes;
  p.achieved_gflops = ev.gflops;
  p.attainable_gflops = attainable(cpu, p.arithmetic_intensity, fp64_dominant);
  p.memory_side = p.arithmetic_intensity < ridge_point(cpu, fp64_dominant);
  return p;
}

}  // namespace fpr::model
