#include "model/roofline.hpp"

#include <algorithm>

namespace fpr::model {

double attainable(const arch::CpuSpec& cpu, double ai, bool fp64_dominant,
                  double bw_gbs) {
  const double peak = cpu.peak_gflops(fp64_dominant ? arch::Precision::fp64
                                                    : arch::Precision::fp32);
  const double bw = bw_gbs > 0.0 ? bw_gbs : cpu.dram_bw_gbs;
  return std::min(peak, ai * bw);
}

double ridge_point(const arch::CpuSpec& cpu, bool fp64_dominant) {
  const double peak = cpu.peak_gflops(fp64_dominant ? arch::Precision::fp64
                                                    : arch::Precision::fp32);
  return peak / cpu.dram_bw_gbs;
}

RooflinePoint roofline_point(const arch::CpuSpec& cpu,
                             const WorkloadMeasurement& w,
                             const MemoryProfile& mem, const EvalResult& ev) {
  RooflinePoint p;
  p.name = w.name;
  // Resolve the tally for THIS machine: ev.gflops divides the resolved
  // (Phi-adjusted) flop count by the modeled time, so the AI numerator
  // must be the same count — pairing the raw BDW-side tally with a
  // Phi-side achieved point put Phi kernels above their own roof.
  const counters::OpTally ops = w.ops_on(cpu.has_mcdram());
  const bool fp64_dominant = ops.fp64 >= ops.fp32;
  const double flops = static_cast<double>(ops.fp_total());
  // AI against off-chip traffic (the paper's DRAM-side definition on the
  // BDW reference; memory-side traffic on the Phis).
  const double bytes = std::max(1.0, mem.offchip_bytes);
  p.arithmetic_intensity = flops / bytes;
  p.achieved_gflops = ev.gflops;
  p.attainable_gflops = attainable(cpu, p.arithmetic_intensity, fp64_dominant,
                                   mem.effective_bw_gbs);
  // Memory-side iff the bandwidth roof binds at this AI.
  const double peak = cpu.peak_gflops(fp64_dominant ? arch::Precision::fp64
                                                    : arch::Precision::fp32);
  p.memory_side = p.attainable_gflops < peak;
  return p;
}

}  // namespace fpr::model
