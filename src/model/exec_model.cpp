#include "model/exec_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/units.hpp"

namespace fpr::model {

std::string_view to_string(Bound b) {
  switch (b) {
    case Bound::compute: return "compute";
    case Bound::bandwidth: return "bandwidth";
    case Bound::latency: return "latency";
    case Bound::io: return "io";
  }
  return "?";
}

EvalResult evaluate(const arch::CpuSpec& cpu, double ghz,
                    const WorkloadMeasurement& w, const MemoryProfile& mem,
                    const ModelParams& params) {
  EvalResult r;
  const bool is_phi = cpu.has_mcdram();
  const counters::OpTally ops = w.ops_on(is_phi);
  const KernelTraits& tr = w.traits;

  // --- Compute term: each op class at its (efficiency-derated) peak.
  const double scalar_pen = is_phi ? tr.phi_scalar_penalty : 1.0;
  const double vec_pen = is_phi ? tr.phi_vec_penalty : 1.0;
  const double peak64 = cpu.peak_gflops(arch::Precision::fp64, ghz) * kGiga *
                        tr.vec_eff * cpu.fpu_issue_eff / vec_pen;
  // Generic SP code cannot dual-pump VNNI units (KNM): divide the pump
  // back out and apply the generic-SP efficiency unless this kernel
  // genuinely uses the VNNI FMA-paired path.
  const double fp32_path_eff =
      tr.uses_vnni ? 1.0
                   : cpu.fp32_generic_eff /
                         static_cast<double>(cpu.fp32_fpu.pump);
  const double peak32 = cpu.peak_gflops(arch::Precision::fp32, ghz) * kGiga *
                        fp32_path_eff * tr.vec_eff * cpu.fpu_issue_eff /
                        vec_pen;
  const double peak_int =
      cpu.peak_giops(ghz) * kGiga * tr.int_eff / scalar_pen;

  r.t_fp64 = static_cast<double>(ops.fp64) / peak64;
  r.t_fp32 = static_cast<double>(ops.fp32) / peak32;
  // Lane-inflated SDE-style integer tallies are divided back to issued
  // work before entering the time budget (see KernelTraits).
  r.t_int = static_cast<double>(ops.int_ops) / tr.int_lane_inflation /
            peak_int;
  const double t_par = r.t_fp64 + r.t_fp32 + r.t_int;
  r.t_compute = t_par * (1.0 + tr.serial_fraction *
                                   static_cast<double>(cpu.cores) * 0.05);

  // --- Bandwidth term (uncore frequency fixed; does not scale with ghz).
  r.t_mem = mem.offchip_bytes / (mem.effective_bw_gbs * kGiga);

  // --- Latency term: dependent off-chip chains, one per hardware
  // thread; SMT is the Phis' main latency-hiding lever (4-way), which is
  // how XSBench ends up *faster* on KNL than BDW despite worse latency.
  const double smt_hiding = std::max(1.0, static_cast<double>(cpu.smt) / 2.0);
  const double lat_pen = is_phi ? tr.phi_latency_penalty : 1.0;
  r.t_lat = mem.dep_refs * mem.latency_ns * 1e-9 * lat_pen /
            (static_cast<double>(cpu.cores) * params.dep_mlp * smt_hiding);

  // --- I/O term: CPU-frequency-bound kernel write path (Sec. IV-E).
  if (tr.io_write_bytes > 0.0) {
    const double io_bw = params.io_gbs_per_ghz * ghz * kGiga / scalar_pen;
    r.t_io = tr.io_write_bytes / io_bw;
  }

  // --- Combine: streaming traffic overlaps compute up to mem_overlap;
  // dependent latency and I/O do not overlap.
  const double hidden = std::min(r.t_compute, r.t_mem * params.mem_overlap);
  r.seconds = r.t_compute + r.t_mem - hidden + r.t_lat + r.t_io;

  // --- Derived metrics.
  const double fp_total = static_cast<double>(ops.fp_total());
  r.gflops = fp_total / r.seconds / kGiga;
  const bool fp64_dominant = ops.fp64 >= ops.fp32;
  const double peak_ref = cpu.peak_gflops(
      fp64_dominant ? arch::Precision::fp64 : arch::Precision::fp32);
  const double dominant_flops = static_cast<double>(
      fp64_dominant ? ops.fp64 : ops.fp32);
  r.pct_of_peak = dominant_flops / r.seconds / kGiga / peak_ref * 100.0;
  r.mem_throughput_gbs = mem.offchip_bytes / r.seconds / kGiga;

  // --- Power: idle floor plus activity-weighted dynamic headroom.
  const double cu = std::clamp(r.t_compute / r.seconds, 0.0, 1.0);
  const double mu = std::clamp(r.t_mem / r.seconds, 0.0, 1.0);
  const double idle = params.idle_power_frac * cpu.tdp_w;
  const double f_scale = ghz / cpu.base_ghz;  // dynamic power tracks f
  r.power_w = idle + (cpu.tdp_w - idle) *
                         std::min(1.0, 0.6 * cu * f_scale + 0.4 * mu);

  // --- Boundedness: the largest standalone term — i.e. which resource,
  // if removed, the kernel would hit next (the roofline question, and
  // what the paper's frequency-scaling experiment observes).
  r.bound = Bound::compute;
  double best = r.t_compute;
  if (r.t_mem > best) {
    best = r.t_mem;
    r.bound = Bound::bandwidth;
  }
  if (r.t_lat > best) {
    best = r.t_lat;
    r.bound = Bound::latency;
  }
  if (r.t_io > best) {
    r.bound = Bound::io;
  }
  return r;
}

EvalResult evaluate_at_turbo(const arch::CpuSpec& cpu,
                             const WorkloadMeasurement& w,
                             const MemoryProfile& mem,
                             const ModelParams& params) {
  // The paper's performance runs use max frequency with turbo enabled and
  // assume a pessimistic all-core turbo of +100 MHz.
  return evaluate(cpu, cpu.base_ghz + 0.1, w, mem, params);
}

}  // namespace fpr::model
