// Roofline analysis (Fig. 5): arithmetic intensity vs. achieved Gflop/s
// against the machine's compute and bandwidth ceilings.
#pragma once

#include <string>
#include <vector>

#include "arch/cpu_spec.hpp"
#include "model/exec_model.hpp"
#include "kernels/workload.hpp"

namespace fpr::model {

struct RooflinePoint {
  std::string name;
  double arithmetic_intensity = 0.0;  ///< flop / off-chip byte
  double achieved_gflops = 0.0;
  double attainable_gflops = 0.0;  ///< min(peak, AI * BW)
  bool memory_side = false;  ///< the bandwidth roof binds at this AI
};

/// The machine's ridge point (flop/byte where the roofs intersect),
/// using the dominant-precision peak of the given workload mix.
double ridge_point(const arch::CpuSpec& cpu, bool fp64_dominant);

/// Place one evaluated kernel on the roofline of `cpu`. The op tally is
/// resolved for the machine (WorkloadMeasurement::ops_on, the same view
/// the evaluation used for `ev`), and the bandwidth roof is the modeled
/// sustained bandwidth of this workload on this machine
/// (MemoryProfile::effective_bw_gbs) — on BDW that equals the flat
/// dram_bw_gbs roof, on the Phis it reflects the MCDRAM cache mode.
RooflinePoint roofline_point(const arch::CpuSpec& cpu,
                             const WorkloadMeasurement& w,
                             const MemoryProfile& mem, const EvalResult& ev);

/// Ceiling value at a given arithmetic intensity. `bw_gbs` is the
/// bandwidth roof; 0 (the default) uses the machine's flat DRAM
/// bandwidth, the classic single-roof chart.
double attainable(const arch::CpuSpec& cpu, double ai, bool fp64_dominant,
                  double bw_gbs = 0.0);

}  // namespace fpr::model
