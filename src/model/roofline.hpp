// Roofline analysis (Fig. 5): arithmetic intensity vs. achieved Gflop/s
// against the machine's compute and bandwidth ceilings.
#pragma once

#include <string>
#include <vector>

#include "arch/cpu_spec.hpp"
#include "model/exec_model.hpp"
#include "model/workload.hpp"

namespace fpr::model {

struct RooflinePoint {
  std::string name;
  double arithmetic_intensity = 0.0;  ///< flop / off-chip byte
  double achieved_gflops = 0.0;
  double attainable_gflops = 0.0;  ///< min(peak, AI * BW)
  bool memory_side = false;        ///< left of the ridge point
};

/// The machine's ridge point (flop/byte where the roofs intersect),
/// using the dominant-precision peak of the given workload mix.
double ridge_point(const arch::CpuSpec& cpu, bool fp64_dominant);

/// Place one evaluated kernel on the roofline of `cpu`.
RooflinePoint roofline_point(const arch::CpuSpec& cpu,
                             const WorkloadMeasurement& w,
                             const MemoryProfile& mem, const EvalResult& ev);

/// Ceiling value at a given arithmetic intensity.
double attainable(const arch::CpuSpec& cpu, double ai, bool fp64_dominant);

}  // namespace fpr::model
