// The execution-time model: combines a machine description, a measured
// workload, and its memory profile into a predicted kernel time and the
// derived metrics the paper reports (Gflop/s, % of peak, memory
// throughput, power, boundedness). Evaluated at any core frequency to
// reproduce the Fig. 6 throttling study (uncore — i.e. bandwidth — stays
// at full speed, as in the paper's methodology).
#pragma once

#include <string>

#include "arch/cpu_spec.hpp"
#include "model/memprofile.hpp"
#include "kernels/workload.hpp"

namespace fpr::model {

enum class Bound { compute, bandwidth, latency, io };

[[nodiscard]] std::string_view to_string(Bound b);

/// Tunable global constants of the model (not per-kernel).
struct ModelParams {
  /// Overlap between compute and streaming memory traffic: the in-flight
  /// fraction of t_mem hidden under compute (hardware prefetchers).
  double mem_overlap = 0.85;
  /// Effective outstanding misses for *dependent* access chains.
  double dep_mlp = 2.0;
  /// CPU-side I/O throughput per GHz (GB/s); the Linux-kernel-bound write
  /// path of Sec. IV-E (MACSio / dd observation).
  double io_gbs_per_ghz = 0.019;
  /// Idle power as a fraction of TDP.
  double idle_power_frac = 0.38;
};

struct EvalResult {
  // Component times (seconds).
  double t_fp64 = 0.0;
  double t_fp32 = 0.0;
  double t_int = 0.0;
  double t_compute = 0.0;  ///< sum of the three above, incl. serial part
  double t_mem = 0.0;
  double t_lat = 0.0;
  double t_io = 0.0;
  double seconds = 0.0;  ///< predicted kernel time-to-solution

  // Derived metrics.
  double gflops = 0.0;             ///< (FP64+FP32) per second
  double pct_of_peak = 0.0;        ///< vs dominant-precision Table I peak
  double mem_throughput_gbs = 0.0; ///< off-chip traffic / time (Fig. 4)
  double power_w = 0.0;
  Bound bound = Bound::bandwidth;
};

/// Predict the kernel time on `cpu` at core frequency `ghz`.
EvalResult evaluate(const arch::CpuSpec& cpu, double ghz,
                    const WorkloadMeasurement& w, const MemoryProfile& mem,
                    const ModelParams& params = {});

/// Evaluate at the machine's performance-run operating point (base
/// frequency + the paper's pessimistic +100 MHz turbo).
EvalResult evaluate_at_turbo(const arch::CpuSpec& cpu,
                             const WorkloadMeasurement& w,
                             const MemoryProfile& mem,
                             const ModelParams& params = {});

}  // namespace fpr::model
