// Dependency-free JSON for the study-results serialization layer.
//
// The value model keeps integers (int64/uint64) apart from doubles so
// operation counts round-trip exactly, and objects preserve insertion
// order so serialization is deterministic: the same StudyResults always
// produce the same bytes, which is what makes `fpr study --out` output
// diffable and the golden snapshot byte-stable across --jobs counts.
//
// JSON has no NaN/Infinity literals; the writer emits them as the
// strings "NaN" / "Infinity" / "-Infinity" and as_number() accepts those
// spellings back, so serialize -> parse -> serialize is a fixed point
// for every representable value.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace fpr::io {

/// Parse/access failure; the message carries 1-based line:column for
/// parse errors and the offending key/type for access errors.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  using Array = std::vector<Json>;
  /// Insertion-ordered key/value list (deterministic dump order).
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}
  Json(bool b) : v_(b) {}
  Json(double d) : v_(d) {}
  Json(std::int64_t i) : v_(i) {}
  Json(std::uint64_t u) : v_(u) {}
  Json(int i) : v_(static_cast<std::int64_t>(i)) {}
  Json(unsigned u) : v_(static_cast<std::uint64_t>(u)) {}
  Json(const char* s) : v_(std::string(s)) {}
  Json(std::string s) : v_(std::move(s)) {}
  Json(Array a) : v_(std::move(a)) {}
  Json(Object o) : v_(std::move(o)) {}

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(v_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(v_);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(v_) ||
           std::holds_alternative<std::int64_t>(v_) ||
           std::holds_alternative<std::uint64_t>(v_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(v_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(v_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(v_);
  }

  /// Stored numeric representation (writer/diff need exactness info).
  [[nodiscard]] bool is_i64() const {
    return std::holds_alternative<std::int64_t>(v_);
  }
  [[nodiscard]] bool is_u64() const {
    return std::holds_alternative<std::uint64_t>(v_);
  }
  [[nodiscard]] bool is_double() const {
    return std::holds_alternative<double>(v_);
  }

  [[nodiscard]] bool as_bool() const;
  /// Numeric value. Also accepts the string spellings "NaN", "Infinity"
  /// and "-Infinity" (how the writer encodes non-finite doubles).
  [[nodiscard]] double as_number() const;
  /// Exact unsigned value; throws on negatives, fractions, or doubles
  /// beyond 2^53 (where exactness is no longer guaranteed).
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Object& as_object();

  /// Object: set `key` (replacing an existing entry in place, else
  /// appending). Returns *this for chaining.
  Json& set(std::string key, Json value);
  /// Object: entry pointer or nullptr.
  [[nodiscard]] const Json* find(std::string_view key) const;
  /// Object: entry reference; throws JsonError naming the missing key.
  [[nodiscard]] const Json& at(std::string_view key) const;
  /// Array: append an element. Returns *this for chaining.
  Json& push(Json value);

  /// Raw alternative access (valid only when the matching is_* holds).
  [[nodiscard]] std::int64_t raw_i64() const {
    return std::get<std::int64_t>(v_);
  }
  [[nodiscard]] std::uint64_t raw_u64() const {
    return std::get<std::uint64_t>(v_);
  }
  [[nodiscard]] double raw_double() const { return std::get<double>(v_); }

 private:
  [[noreturn]] void type_error(const char* wanted) const;
  [[nodiscard]] const char* type_name() const;

  std::variant<std::nullptr_t, bool, std::int64_t, std::uint64_t, double,
               std::string, Array, Object>
      v_;
};

/// Serialize deterministically: two-space indent, insertion-order keys,
/// shortest-round-trip doubles, non-finite doubles as strings.
std::string dump(const Json& v);

/// Parse strict JSON (UTF-8, \uXXXX escapes incl. surrogate pairs, no
/// trailing commas or comments). Throws JsonError with line:column.
Json parse(std::string_view text);

/// Read and parse a file; throws JsonError on I/O or parse failure.
Json load_file(const std::string& path);

/// dump() plus a trailing newline, written atomically-ish (truncate +
/// write). Throws JsonError on I/O failure.
void save_file(const std::string& path, const Json& v);

}  // namespace fpr::io
