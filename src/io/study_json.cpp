#include "io/study_json.hpp"

#include <array>
#include <utility>

#include "arch/machines.hpp"
#include "model/exec_model.hpp"

namespace fpr::io {
namespace {

// Enum round-trips reuse the existing to_string spellings: serialize
// via to_string, parse by scanning the full enumerator list.
template <typename Enum, std::size_t N>
Enum enum_from_string(const std::array<Enum, N>& all, const Json& j,
                      const char* what) {
  const std::string& s = j.as_string();
  for (const Enum e : all) {
    if (to_string(e) == s) return e;
  }
  throw JsonError("unknown " + std::string(what) + " '" + s + "'");
}

constexpr std::array kSuites = {kernels::Suite::ecp, kernels::Suite::riken,
                                kernels::Suite::reference};
constexpr std::array kDomains = {
    kernels::Domain::physics,          kernels::Domain::bioscience,
    kernels::Domain::physics_bioscience,
    kernels::Domain::physics_chemistry, kernels::Domain::material_science,
    kernels::Domain::geoscience,       kernels::Domain::math_cs,
    kernels::Domain::engineering,      kernels::Domain::chemistry,
    kernels::Domain::lattice_qcd,      kernels::Domain::reference};
constexpr std::array kPatterns = {
    kernels::ComputePattern::stencil,  kernels::ComputePattern::dense_matrix,
    kernels::ComputePattern::sparse_matrix, kernels::ComputePattern::n_body,
    kernels::ComputePattern::irregular, kernels::ComputePattern::fft,
    kernels::ComputePattern::stream,   kernels::ComputePattern::io};
constexpr std::array kBounds = {model::Bound::compute, model::Bound::bandwidth,
                                model::Bound::latency, model::Bound::io};

Json pattern_to_json(const memsim::Pattern& p) {
  using namespace memsim;
  Json j = Json::object();
  std::visit(
      [&](const auto& pat) {
        using T = std::decay_t<decltype(pat)>;
        if constexpr (std::is_same_v<T, StreamPattern>) {
          j.set("type", "stream")
              .set("bytes_per_array", pat.bytes_per_array)
              .set("arrays", pat.arrays)
              .set("writes_per_iter", pat.writes_per_iter);
        } else if constexpr (std::is_same_v<T, StridedPattern>) {
          j.set("type", "strided")
              .set("footprint_bytes", pat.footprint_bytes)
              .set("stride_bytes", pat.stride_bytes);
        } else if constexpr (std::is_same_v<T, StencilPattern>) {
          j.set("type", "stencil")
              .set("nx", pat.nx)
              .set("ny", pat.ny)
              .set("nz", pat.nz)
              .set("elem_bytes", pat.elem_bytes)
              .set("radius", pat.radius)
              .set("full_box", pat.full_box);
        } else if constexpr (std::is_same_v<T, GatherPattern>) {
          j.set("type", "gather")
              .set("table_bytes", pat.table_bytes)
              .set("elem_bytes", pat.elem_bytes)
              .set("sequential_fraction", pat.sequential_fraction)
              .set("shared_table", pat.shared_table);
        } else if constexpr (std::is_same_v<T, ChasePattern>) {
          j.set("type", "chase")
              .set("footprint_bytes", pat.footprint_bytes)
              .set("node_bytes", pat.node_bytes);
        } else if constexpr (std::is_same_v<T, BlockedPattern>) {
          j.set("type", "blocked")
              .set("matrix_bytes", pat.matrix_bytes)
              .set("tile_bytes", pat.tile_bytes)
              .set("tile_reuse", pat.tile_reuse);
        }
      },
      p);
  return j;
}

memsim::Pattern pattern_from_json(const Json& j) {
  using namespace memsim;
  const std::string& type = j.at("type").as_string();
  if (type == "stream") {
    StreamPattern p;
    p.bytes_per_array = j.at("bytes_per_array").as_u64();
    p.arrays = static_cast<int>(j.at("arrays").as_number());
    p.writes_per_iter = static_cast<int>(j.at("writes_per_iter").as_number());
    return p;
  }
  if (type == "strided") {
    StridedPattern p;
    p.footprint_bytes = j.at("footprint_bytes").as_u64();
    p.stride_bytes = static_cast<std::uint32_t>(j.at("stride_bytes").as_u64());
    return p;
  }
  if (type == "stencil") {
    StencilPattern p;
    p.nx = j.at("nx").as_u64();
    p.ny = j.at("ny").as_u64();
    p.nz = j.at("nz").as_u64();
    p.elem_bytes = static_cast<std::uint32_t>(j.at("elem_bytes").as_u64());
    p.radius = static_cast<int>(j.at("radius").as_number());
    p.full_box = j.at("full_box").as_bool();
    return p;
  }
  if (type == "gather") {
    GatherPattern p;
    p.table_bytes = j.at("table_bytes").as_u64();
    p.elem_bytes = static_cast<std::uint32_t>(j.at("elem_bytes").as_u64());
    p.sequential_fraction = j.at("sequential_fraction").as_number();
    p.shared_table = j.at("shared_table").as_bool();
    return p;
  }
  if (type == "chase") {
    ChasePattern p;
    p.footprint_bytes = j.at("footprint_bytes").as_u64();
    p.node_bytes = static_cast<std::uint32_t>(j.at("node_bytes").as_u64());
    return p;
  }
  if (type == "blocked") {
    BlockedPattern p;
    p.matrix_bytes = j.at("matrix_bytes").as_u64();
    p.tile_bytes = j.at("tile_bytes").as_u64();
    p.tile_reuse = j.at("tile_reuse").as_number();
    return p;
  }
  throw JsonError("unknown access pattern type '" + type + "'");
}

}  // namespace

Json to_json(const counters::OpTally& t) {
  return Json::object()
      .set("fp64", t.fp64)
      .set("fp32", t.fp32)
      .set("int_ops", t.int_ops)
      .set("branches", t.branches)
      .set("bytes_read", t.bytes_read)
      .set("bytes_written", t.bytes_written);
}

counters::OpTally op_tally_from_json(const Json& j) {
  counters::OpTally t;
  t.fp64 = j.at("fp64").as_u64();
  t.fp32 = j.at("fp32").as_u64();
  t.int_ops = j.at("int_ops").as_u64();
  t.branches = j.at("branches").as_u64();
  t.bytes_read = j.at("bytes_read").as_u64();
  t.bytes_written = j.at("bytes_written").as_u64();
  return t;
}

Json to_json(const memsim::AccessPatternSpec& spec) {
  Json comps = Json::array();
  for (const auto& c : spec.components) {
    comps.push(Json::object()
                   .set("weight", c.weight)
                   .set("pattern", pattern_to_json(c.pattern)));
  }
  return Json::object().set("components", std::move(comps));
}

memsim::AccessPatternSpec access_spec_from_json(const Json& j) {
  memsim::AccessPatternSpec spec;
  for (const auto& c : j.at("components").as_array()) {
    spec.components.push_back(
        {pattern_from_json(c.at("pattern")), c.at("weight").as_number()});
  }
  return spec;
}

Json to_json(const model::KernelTraits& t) {
  return Json::object()
      .set("vec_eff", t.vec_eff)
      .set("int_eff", t.int_eff)
      .set("latency_dep_fraction", t.latency_dep_fraction)
      .set("serial_fraction", t.serial_fraction)
      .set("io_write_bytes", t.io_write_bytes)
      .set("phi_adjust", Json::object()
                             .set("fp64", t.phi_adjust.fp64)
                             .set("fp32", t.phi_adjust.fp32)
                             .set("int_ops", t.phi_adjust.int_ops))
      .set("phi_scalar_penalty", t.phi_scalar_penalty)
      .set("phi_vec_penalty", t.phi_vec_penalty)
      .set("phi_latency_penalty", t.phi_latency_penalty)
      .set("uses_vnni", t.uses_vnni)
      .set("int_lane_inflation", t.int_lane_inflation);
}

model::KernelTraits traits_from_json(const Json& j) {
  model::KernelTraits t;
  t.vec_eff = j.at("vec_eff").as_number();
  t.int_eff = j.at("int_eff").as_number();
  t.latency_dep_fraction = j.at("latency_dep_fraction").as_number();
  t.serial_fraction = j.at("serial_fraction").as_number();
  t.io_write_bytes = j.at("io_write_bytes").as_number();
  const Json& adj = j.at("phi_adjust");
  t.phi_adjust.fp64 = adj.at("fp64").as_number();
  t.phi_adjust.fp32 = adj.at("fp32").as_number();
  t.phi_adjust.int_ops = adj.at("int_ops").as_number();
  t.phi_scalar_penalty = j.at("phi_scalar_penalty").as_number();
  t.phi_vec_penalty = j.at("phi_vec_penalty").as_number();
  t.phi_latency_penalty = j.at("phi_latency_penalty").as_number();
  t.uses_vnni = j.at("uses_vnni").as_bool();
  t.int_lane_inflation = j.at("int_lane_inflation").as_number();
  return t;
}

Json to_json(const model::WorkloadMeasurement& w) {
  return Json::object()
      .set("name", w.name)
      .set("ops", to_json(w.ops))
      .set("host_seconds", w.host_seconds)
      .set("working_set_bytes", w.working_set_bytes)
      .set("access", to_json(w.access))
      .set("traits", to_json(w.traits))
      .set("verified", w.verified)
      .set("checksum", w.checksum)
      .set("ops_scale_to_paper", w.ops_scale_to_paper);
}

model::WorkloadMeasurement measurement_from_json(const Json& j) {
  model::WorkloadMeasurement w;
  w.name = j.at("name").as_string();
  w.ops = op_tally_from_json(j.at("ops"));
  w.host_seconds = j.at("host_seconds").as_number();
  w.working_set_bytes = j.at("working_set_bytes").as_u64();
  w.access = access_spec_from_json(j.at("access"));
  w.traits = traits_from_json(j.at("traits"));
  w.verified = j.at("verified").as_bool();
  w.checksum = j.at("checksum").as_number();
  w.ops_scale_to_paper = j.at("ops_scale_to_paper").as_number();
  return w;
}

Json to_json(const model::MemoryProfile& m) {
  return Json::object()
      .set("l2_hit", m.l2_hit)
      .set("llc_hit", m.llc_hit)
      .set("offchip_fraction", m.offchip_fraction)
      .set("offchip_bytes", m.offchip_bytes)
      .set("dram_bytes", m.dram_bytes)
      .set("mcdram_capture", m.mcdram_capture)
      .set("effective_bw_gbs", m.effective_bw_gbs)
      .set("latency_ns", m.latency_ns)
      .set("dep_refs", m.dep_refs);
}

model::MemoryProfile mem_profile_from_json(const Json& j) {
  model::MemoryProfile m;
  m.l2_hit = j.at("l2_hit").as_number();
  m.llc_hit = j.at("llc_hit").as_number();
  m.offchip_fraction = j.at("offchip_fraction").as_number();
  m.offchip_bytes = j.at("offchip_bytes").as_number();
  m.dram_bytes = j.at("dram_bytes").as_number();
  m.mcdram_capture = j.at("mcdram_capture").as_number();
  m.effective_bw_gbs = j.at("effective_bw_gbs").as_number();
  m.latency_ns = j.at("latency_ns").as_number();
  m.dep_refs = j.at("dep_refs").as_number();
  return m;
}

Json to_json(const model::EvalResult& e) {
  return Json::object()
      .set("t_fp64", e.t_fp64)
      .set("t_fp32", e.t_fp32)
      .set("t_int", e.t_int)
      .set("t_compute", e.t_compute)
      .set("t_mem", e.t_mem)
      .set("t_lat", e.t_lat)
      .set("t_io", e.t_io)
      .set("seconds", e.seconds)
      .set("gflops", e.gflops)
      .set("pct_of_peak", e.pct_of_peak)
      .set("mem_throughput_gbs", e.mem_throughput_gbs)
      .set("power_w", e.power_w)
      .set("bound", std::string(model::to_string(e.bound)));
}

model::EvalResult eval_from_json(const Json& j) {
  model::EvalResult e;
  e.t_fp64 = j.at("t_fp64").as_number();
  e.t_fp32 = j.at("t_fp32").as_number();
  e.t_int = j.at("t_int").as_number();
  e.t_compute = j.at("t_compute").as_number();
  e.t_mem = j.at("t_mem").as_number();
  e.t_lat = j.at("t_lat").as_number();
  e.t_io = j.at("t_io").as_number();
  e.seconds = j.at("seconds").as_number();
  e.gflops = j.at("gflops").as_number();
  e.pct_of_peak = j.at("pct_of_peak").as_number();
  e.mem_throughput_gbs = j.at("mem_throughput_gbs").as_number();
  e.power_w = j.at("power_w").as_number();
  e.bound = enum_from_string(kBounds, j.at("bound"), "bound");
  return e;
}

Json to_json(const kernels::KernelInfo& info) {
  return Json::object()
      .set("name", info.name)
      .set("abbrev", info.abbrev)
      .set("suite", std::string(to_string(info.suite)))
      .set("domain", std::string(to_string(info.domain)))
      .set("pattern", std::string(to_string(info.pattern)))
      .set("language", info.language)
      .set("paper_input", info.paper_input);
}

kernels::KernelInfo kernel_info_from_json(const Json& j) {
  kernels::KernelInfo info;
  info.name = j.at("name").as_string();
  info.abbrev = j.at("abbrev").as_string();
  info.suite = enum_from_string(kSuites, j.at("suite"), "suite");
  info.domain = enum_from_string(kDomains, j.at("domain"), "domain");
  info.pattern = enum_from_string(kPatterns, j.at("pattern"), "pattern");
  info.language = j.at("language").as_string();
  info.paper_input = j.at("paper_input").as_string();
  return info;
}

Json to_json(const study::MachineResult& m) {
  Json sweep = Json::array();
  for (const auto& [fs, ev] : m.freq_sweep) {
    sweep.push(Json::object()
                   .set("ghz", fs.ghz)
                   .set("turbo", fs.turbo)
                   .set("eval", to_json(ev)));
  }
  return Json::object()
      .set("machine", m.cpu.short_name)
      .set("mem", to_json(m.mem))
      .set("perf", to_json(m.perf))
      .set("freq_sweep", std::move(sweep));
}

study::MachineResult machine_result_from_json(const Json& j) {
  study::MachineResult m;
  const std::string& name = j.at("machine").as_string();
  bool found = false;
  for (auto& cpu : arch::all_machines()) {
    if (cpu.short_name == name) {
      m.cpu = std::move(cpu);
      found = true;
      break;
    }
  }
  if (!found) throw JsonError("unknown machine '" + name + "'");
  m.mem = mem_profile_from_json(j.at("mem"));
  m.perf = eval_from_json(j.at("perf"));
  for (const auto& p : j.at("freq_sweep").as_array()) {
    arch::FreqState fs;
    fs.ghz = p.at("ghz").as_number();
    fs.turbo = p.at("turbo").as_bool();
    m.freq_sweep.emplace_back(fs, eval_from_json(p.at("eval")));
  }
  return m;
}

Json to_json(const study::KernelResult& k) {
  Json machines = Json::array();
  for (const auto& m : k.machines) machines.push(to_json(m));
  return Json::object()
      .set("info", to_json(k.info))
      .set("measurement", to_json(k.meas))
      .set("machines", std::move(machines));
}

study::KernelResult kernel_result_from_json(const Json& j) {
  study::KernelResult k;
  k.info = kernel_info_from_json(j.at("info"));
  k.meas = measurement_from_json(j.at("measurement"));
  for (const auto& m : j.at("machines").as_array()) {
    k.machines.push_back(machine_result_from_json(m));
  }
  return k;
}

Json to_json(const study::StudyResults& r) {
  Json kernels = Json::array();
  for (const auto& k : r.kernels) kernels.push(to_json(k));
  return Json::object()
      .set("format", std::string(kStudyFormat))
      .set("version", kStudyVersion)
      .set("kernels", std::move(kernels));
}

study::StudyResults study_from_json(const Json& j) {
  const std::string& format = j.at("format").as_string();
  if (format != kStudyFormat) {
    throw JsonError("not a study results file (format '" + format + "')");
  }
  const auto version = static_cast<std::int64_t>(j.at("version").as_number());
  if (version > kStudyVersion) {
    throw JsonError("results file version " + std::to_string(version) +
                    " is newer than supported version " +
                    std::to_string(kStudyVersion));
  }
  study::StudyResults r;
  for (const auto& k : j.at("kernels").as_array()) {
    r.kernels.push_back(kernel_result_from_json(k));
  }
  return r;
}

}  // namespace fpr::io
