#include "io/trace_replay.hpp"

#include <algorithm>

namespace fpr::io {

memsim::HierarchyResult replay_trace_cached(
    memsim::SimCache* cache, const arch::CpuSpec& cpu,
    const std::string& path, std::uint64_t refs, std::uint64_t warmup,
    unsigned scale_shift, const memsim::ShardPlan& shards) {
  if (cache == nullptr) {
    FileTraceSource src(path);
    return memsim::simulate_trace(cpu, src, refs, warmup, scale_shift,
                                  shards);
  }
  // The digest identifies the record stream (not its chunking), so the
  // key survives re-encodings of the same trace; resolving `refs`
  // against the recorded count keeps "ask for more than the file has"
  // and "ask for exactly what it has" on one cache entry.
  const TraceInfo info = read_trace_info(path);
  const std::uint64_t avail =
      info.records > warmup ? info.records - warmup : 0;
  const std::uint64_t resolved = std::min(refs, avail);
  const std::string k = memsim::SimCache::trace_key(cpu, info.digest,
                                                    resolved, warmup,
                                                    scale_shift);
  if (auto found = cache->find(k)) return *found;
  FileTraceSource src(path);
  return *cache->insert(
      k, memsim::simulate_trace(cpu, src, resolved, warmup, scale_shift,
                                shards));
}

}  // namespace fpr::io
