// fpr-trace v1: the on-disk address-trace format behind `fpr trace`.
//
// A trace file is a 56-byte little-endian header followed by
// self-contained chunks. Each record is one memory reference (address +
// read/write flag), transformed to t = (addr << 1) | write and stored as
// the zigzag-varint of the delta against the previous record's t; the
// first record of every chunk deltas against 0, so a chunk decodes
// without any state from its predecessors and sharded replay can stream
// chunk after chunk through the existing deterministic stat merge. The
// header carries the record count, a content digest (FNV-1a 64 over the
// transformed record stream — independent of chunking), the address
// range, and the number of distinct 64-byte lines touched (the working
// set the bandwidth/latency model needs). See docs/FORMATS.md for the
// byte-level layout and compatibility rules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

#include "memsim/trace_gen.hpp"

namespace fpr::io {

/// Malformed or unreadable trace input: missing file, wrong magic,
/// unsupported version, or a truncated/corrupt chunk. The CLI maps this
/// to exit code 3 (the `fpr diff` unreadable-input convention) — callers
/// never see a raw stream/parse throw.
class TraceFormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr char kTraceMagic[8] = {'F', 'P', 'R', 'T', 'R', 'A', 'C', 'E'};
inline constexpr std::uint32_t kTraceVersion = 1;
/// Default records per chunk: large enough to amortize the 16-byte chunk
/// header to noise, small enough that a decode buffer stays L2-resident.
inline constexpr std::uint32_t kTraceChunkRecords = 4096;
inline constexpr std::size_t kTraceHeaderBytes = 56;

/// The header fields of a trace file (validated magic/version implied).
struct TraceInfo {
  std::uint64_t records = 0;        ///< total record count
  std::uint64_t digest = 0;         ///< FNV-1a 64 over the record stream
  std::uint64_t min_addr = 0;       ///< 0 when the trace is empty
  std::uint64_t max_addr = 0;
  std::uint64_t touched_lines = 0;  ///< distinct 64-byte lines referenced
  std::uint32_t chunk_records = kTraceChunkRecords;

  /// Working set implied by the touched lines (bytes).
  [[nodiscard]] std::uint64_t working_set_bytes() const {
    return touched_lines * 64;
  }
};

/// Streaming writer: append references, then finish() (or destruct) to
/// flush the last chunk and patch the header counts/digest/footprint.
/// Addresses must fit 63 bits (the write flag shares the transformed
/// word); larger ones raise TraceFormatError.
class TraceWriter {
 public:
  explicit TraceWriter(const std::string& path,
                       std::uint32_t chunk_records = kTraceChunkRecords);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void append(const memsim::MemRef& ref);
  void append(const memsim::MemRef* refs, std::size_t n);
  /// Flush pending records and patch the header. Idempotent; the
  /// destructor calls it, but calling explicitly surfaces I/O errors.
  void finish();

  [[nodiscard]] std::uint64_t records() const { return info_.records; }
  [[nodiscard]] std::uint64_t digest() const { return info_.digest; }

 private:
  void flush_chunk();

  std::string path_;
  std::ofstream out_;
  TraceInfo info_;
  std::vector<memsim::MemRef> pending_;
  std::unordered_set<std::uint64_t> lines_;
  bool finished_ = false;
};

/// Read and validate just the header of a trace file.
TraceInfo read_trace_info(const std::string& path);

/// Chunked streaming decoder. read() produces records in file order;
/// a short (or zero) return means the stream is exhausted — after which
/// the decoded total has been checked against the header count, so
/// truncated files surface as TraceFormatError, never as a silently
/// shorter trace.
class TraceReader {
 public:
  explicit TraceReader(const std::string& path);

  [[nodiscard]] const TraceInfo& info() const { return info_; }

  /// Decode up to `n` records into `out`; returns the count produced
  /// (0 = end of trace). Throws TraceFormatError on corrupt chunks.
  std::size_t read(memsim::MemRef* out, std::size_t n);

 private:
  bool next_chunk();

  std::string path_;
  std::ifstream in_;
  TraceInfo info_;
  std::vector<std::uint8_t> chunk_;    ///< current chunk payload
  std::size_t chunk_pos_ = 0;
  std::uint32_t chunk_remaining_ = 0;  ///< records left in current chunk
  std::uint64_t prev_t_ = 0;           ///< delta base within the chunk
  std::uint64_t decoded_ = 0;          ///< records produced so far
  bool eof_checked_ = false;
};

/// Text -> binary conversion: reads lines of the form `R <addr>` /
/// `W <addr>` (addresses decimal or 0x-hex; blank lines and `#` comments
/// skipped) and appends them to `w`. Returns the number of records
/// converted. Throws TraceFormatError naming the 1-based line of the
/// first malformed input. The caller finishes the writer.
std::uint64_t convert_text_trace(std::istream& in, TraceWriter& w);

/// Binary -> text: dump up to `limit` records (0 = all) as the exact
/// line format convert_text_trace() accepts, so dump|convert round-trips
/// byte-identically for same-chunking writers.
std::uint64_t dump_trace_text(TraceReader& r, std::ostream& out,
                              std::uint64_t limit = 0);

}  // namespace fpr::io
