#include "io/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

namespace fpr::io {
namespace {

constexpr int kMaxDepth = 256;  ///< parser recursion bound

std::string quoted(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 passes through verbatim
        }
    }
  }
  out += '"';
  return out;
}

void write_double(std::string& out, double d) {
  if (std::isnan(d)) {
    out += "\"NaN\"";
    return;
  }
  if (std::isinf(d)) {
    out += d > 0 ? "\"Infinity\"" : "\"-Infinity\"";
    return;
  }
  // Shortest representation that round-trips exactly (to_chars default).
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), d);
  out.append(buf, res.ptr);
}

template <typename Int>
void write_int(std::string& out, Int v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

void write_value(std::string& out, const Json& v, int indent);

void write_indent(std::string& out, int indent) {
  out.append(static_cast<std::size_t>(indent) * 2, ' ');
}

void write_array(std::string& out, const Json::Array& a, int indent) {
  if (a.empty()) {
    out += "[]";
    return;
  }
  out += "[\n";
  for (std::size_t i = 0; i < a.size(); ++i) {
    write_indent(out, indent + 1);
    write_value(out, a[i], indent + 1);
    if (i + 1 < a.size()) out += ',';
    out += '\n';
  }
  write_indent(out, indent);
  out += ']';
}

void write_object(std::string& out, const Json::Object& o, int indent) {
  if (o.empty()) {
    out += "{}";
    return;
  }
  out += "{\n";
  for (std::size_t i = 0; i < o.size(); ++i) {
    write_indent(out, indent + 1);
    out += quoted(o[i].first);
    out += ": ";
    write_value(out, o[i].second, indent + 1);
    if (i + 1 < o.size()) out += ',';
    out += '\n';
  }
  write_indent(out, indent);
  out += '}';
}

}  // namespace

const char* Json::type_name() const {
  switch (v_.index()) {
    case 0: return "null";
    case 1: return "bool";
    case 2:
    case 3:
    case 4: return "number";
    case 5: return "string";
    case 6: return "array";
    default: return "object";
  }
}

void Json::type_error(const char* wanted) const {
  throw JsonError(std::string("expected ") + wanted + ", have " +
                  type_name());
}

bool Json::as_bool() const {
  if (const auto* b = std::get_if<bool>(&v_)) return *b;
  type_error("bool");
}

double Json::as_number() const {
  if (const auto* d = std::get_if<double>(&v_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&v_)) {
    return static_cast<double>(*i);
  }
  if (const auto* u = std::get_if<std::uint64_t>(&v_)) {
    return static_cast<double>(*u);
  }
  if (const auto* s = std::get_if<std::string>(&v_)) {
    if (*s == "NaN") return std::numeric_limits<double>::quiet_NaN();
    if (*s == "Infinity") return std::numeric_limits<double>::infinity();
    if (*s == "-Infinity") return -std::numeric_limits<double>::infinity();
  }
  type_error("number");
}

std::uint64_t Json::as_u64() const {
  if (const auto* u = std::get_if<std::uint64_t>(&v_)) return *u;
  if (const auto* i = std::get_if<std::int64_t>(&v_)) {
    if (*i < 0) throw JsonError("expected unsigned, have negative number");
    return static_cast<std::uint64_t>(*i);
  }
  if (const auto* d = std::get_if<double>(&v_)) {
    if (*d < 0 || *d != std::floor(*d) || *d > 9007199254740992.0) {
      throw JsonError("number is not an exact unsigned integer");
    }
    return static_cast<std::uint64_t>(*d);
  }
  type_error("number");
}

const std::string& Json::as_string() const {
  if (const auto* s = std::get_if<std::string>(&v_)) return *s;
  type_error("string");
}

const Json::Array& Json::as_array() const {
  if (const auto* a = std::get_if<Array>(&v_)) return *a;
  type_error("array");
}

Json::Array& Json::as_array() {
  if (auto* a = std::get_if<Array>(&v_)) return *a;
  type_error("array");
}

const Json::Object& Json::as_object() const {
  if (const auto* o = std::get_if<Object>(&v_)) return *o;
  type_error("object");
}

Json::Object& Json::as_object() {
  if (auto* o = std::get_if<Object>(&v_)) return *o;
  type_error("object");
}

Json& Json::set(std::string key, Json value) {
  auto& obj = as_object();
  for (auto& [k, v] : obj) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj.emplace_back(std::move(key), std::move(value));
  return *this;
}

const Json* Json::find(std::string_view key) const {
  for (const auto& [k, v] : as_object()) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  if (const Json* v = find(key)) return *v;
  throw JsonError("missing key \"" + std::string(key) + "\"");
}

Json& Json::push(Json value) {
  as_array().push_back(std::move(value));
  return *this;
}

namespace {

void write_value(std::string& out, const Json& v, int indent) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_i64()) {
    write_int(out, v.raw_i64());
  } else if (v.is_u64()) {
    write_int(out, v.raw_u64());
  } else if (v.is_double()) {
    write_double(out, v.raw_double());
  } else if (v.is_string()) {
    out += quoted(v.as_string());
  } else if (v.is_array()) {
    write_array(out, v.as_array(), indent);
  } else {
    write_object(out, v.as_object(), indent);
  }
}

}  // namespace

std::string dump(const Json& v) {
  std::string out;
  write_value(out, v, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser: recursive descent over a string_view with offset tracking.

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw JsonError("JSON parse error at " + std::to_string(line) + ":" +
                    std::to_string(col) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail("unexpected character");
    }
  }

  Json parse_object(int depth) {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = take();
      if (c == '}') return obj;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  Json parse_array(int depth) {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push(parse_value(depth + 1));
      skip_ws();
      const char c = take();
      if (c == ']') return arr;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        --pos_;
        fail("invalid \\u escape");
      }
    }
    return v;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xd800 && cp <= 0xdbff) {
            // High surrogate: must pair with \uDC00..\uDFFF.
            if (take() != '\\' || take() != 'u') {
              --pos_;
              fail("unpaired surrogate in \\u escape");
            }
            const unsigned lo = parse_hex4();
            if (lo < 0xdc00 || lo > 0xdfff) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
          } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            fail("unpaired low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          --pos_;
          fail("invalid escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    const char* first = tok.data();
    const char* last = tok.data() + tok.size();

    const bool integral =
        tok.find('.') == std::string_view::npos &&
        tok.find('e') == std::string_view::npos &&
        tok.find('E') == std::string_view::npos;
    if (integral) {
      if (tok[0] == '-') {
        std::int64_t i = 0;
        const auto r = std::from_chars(first, last, i);
        // "-0" stays a double so the sign of -0.0 survives round-trips.
        if (r.ec == std::errc() && r.ptr == last && i != 0) return Json(i);
      } else {
        std::uint64_t u = 0;
        const auto r = std::from_chars(first, last, u);
        if (r.ec == std::errc() && r.ptr == last) return Json(u);
      }
      // Out of 64-bit range: fall through to double.
    }
    double d = 0.0;
    const auto r = std::from_chars(first, last, d);
    if (r.ec != std::errc() || r.ptr != last) {
      pos_ = start;
      fail("invalid number '" + std::string(tok) + "'");
    }
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json parse(std::string_view text) { return Parser(text).parse_document(); }

Json load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw JsonError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  if (!in.good() && !in.eof()) throw JsonError("read failure on " + path);
  try {
    return parse(ss.str());
  } catch (const JsonError& e) {
    throw JsonError(path + ": " + e.what());
  }
}

void save_file(const std::string& path, const Json& v) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw JsonError("cannot open " + path + " for writing");
  out << dump(v) << '\n';
  out.flush();
  if (!out.good()) throw JsonError("write failure on " + path);
}

}  // namespace fpr::io
