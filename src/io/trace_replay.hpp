// Trace-file replay: the io-layer glue that feeds recorded fpr-trace
// files into the memsim replay pipeline. FileTraceSource adapts an
// io::TraceReader to the memsim::TraceSource pull interface;
// replay_trace_cached adds SimCache memoization keyed by trace content
// digest. These lived in memsim::trace_source until the layering gate
// (fpr-lint layer-violation) made the dependency direction explicit:
// memsim defines the TraceSource abstraction and must not know about
// file formats; io sits above memsim and may implement sources over
// its readers.
#pragma once

#include <cstdint>
#include <string>

#include "io/trace_format.hpp"
#include "memsim/hierarchy.hpp"
#include "memsim/sim_cache.hpp"
#include "memsim/trace_source.hpp"

namespace fpr::io {

/// Streaming decode of an on-disk fpr-trace file (io::TraceReader).
/// Finite: fill() returns short once the file's records are consumed.
/// Construction and decoding throw io::TraceFormatError on missing,
/// wrong-magic, or truncated files.
class FileTraceSource final : public memsim::TraceSource {
 public:
  explicit FileTraceSource(const std::string& path) : reader_(path) {}

  std::size_t fill(memsim::MemRef* out, std::size_t n) override {
    return reader_.read(out, n);
  }

  [[nodiscard]] const TraceInfo& info() const { return reader_.info(); }

 private:
  TraceReader reader_;
};

/// memsim::simulate_trace over a trace file with memoization: the
/// replay keys by (hierarchy geometry, trace content digest, refs,
/// warmup, scale shift) — see SimCache::trace_key — so repeated
/// scorings of one trace across machines/commands decode and simulate
/// once per distinct geometry. Bit-identical with or without a cache;
/// `shards` is a pure wall-time choice and deliberately not part of
/// the key. Throws io::TraceFormatError on unreadable or malformed
/// files.
memsim::HierarchyResult replay_trace_cached(
    memsim::SimCache* cache, const arch::CpuSpec& cpu,
    const std::string& path, std::uint64_t refs, std::uint64_t warmup,
    unsigned scale_shift = 0, const memsim::ShardPlan& shards = {});

}  // namespace fpr::io
