#include "io/trace_format.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <limits>
#include <ostream>

namespace fpr::io {

namespace {

// FNV-1a 64 over the little-endian bytes of each transformed record
// word: a pure function of the record stream, independent of chunking.
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

constexpr char kChunkMagic[4] = {'F', 'P', 'R', 'C'};
constexpr std::size_t kChunkHeaderBytes = 16;
/// A varint carrying 64 bits never exceeds 10 bytes; any chunk claiming
/// more payload per record is corrupt.
constexpr std::uint64_t kMaxVarintBytes = 10;

void put_le32(std::string& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    b.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_le64(std::string& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    b.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t get_le32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_le64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

/// addr<<1|write packing, delta, zigzag. The transformed word makes the
/// write flag ride the delta stream (a read/write toggle costs one bit)
/// and keeps the whole record in a single varint.
std::uint64_t transform(const memsim::MemRef& ref) {
  return (ref.addr << 1) | (ref.write ? 1u : 0u);
}

std::uint64_t zigzag(std::uint64_t delta) {
  const auto sd = static_cast<std::int64_t>(delta);
  return (static_cast<std::uint64_t>(sd) << 1) ^
         static_cast<std::uint64_t>(sd >> 63);
}

std::uint64_t unzigzag(std::uint64_t zz) {
  return (zz >> 1) ^ (~(zz & 1) + 1);
}

void put_varint(std::string& b, std::uint64_t v) {
  while (v >= 0x80) {
    b.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  b.push_back(static_cast<char>(v));
}

std::string encode_header(const TraceInfo& info) {
  std::string b;
  b.reserve(kTraceHeaderBytes);
  b.append(kTraceMagic, sizeof(kTraceMagic));
  put_le32(b, kTraceVersion);
  put_le32(b, info.chunk_records);
  put_le64(b, info.records);
  put_le64(b, info.digest);
  put_le64(b, info.min_addr);
  put_le64(b, info.max_addr);
  put_le64(b, info.touched_lines);
  return b;
}

[[noreturn]] void bad(const std::string& path, const std::string& what) {
  throw TraceFormatError("trace file '" + path + "': " + what);
}

TraceInfo decode_header(const std::string& path, std::istream& in) {
  unsigned char h[kTraceHeaderBytes];
  in.read(reinterpret_cast<char*>(h), sizeof(h));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(h))) {
    bad(path, "truncated header (" + std::to_string(in.gcount()) +
                  " of " + std::to_string(kTraceHeaderBytes) + " bytes)");
  }
  if (!std::equal(kTraceMagic, kTraceMagic + sizeof(kTraceMagic),
                  reinterpret_cast<const char*>(h))) {
    bad(path, "bad magic (not an fpr-trace file)");
  }
  const std::uint32_t version = get_le32(h + 8);
  if (version != kTraceVersion) {
    bad(path, "unsupported fpr-trace version " + std::to_string(version) +
                  " (this build reads version " +
                  std::to_string(kTraceVersion) + ")");
  }
  TraceInfo info;
  info.chunk_records = get_le32(h + 12);
  info.records = get_le64(h + 16);
  info.digest = get_le64(h + 24);
  info.min_addr = get_le64(h + 32);
  info.max_addr = get_le64(h + 40);
  info.touched_lines = get_le64(h + 48);
  if (info.chunk_records == 0) bad(path, "zero chunk size in header");
  return info;
}

}  // namespace

// ---------------------------------------------------------------------------
// TraceWriter
// ---------------------------------------------------------------------------

TraceWriter::TraceWriter(const std::string& path, std::uint32_t chunk_records)
    : path_(path), out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) {
    throw TraceFormatError("cannot write trace file '" + path +
                           "': unwritable path");
  }
  if (chunk_records == 0) {
    throw TraceFormatError("trace chunk size must be > 0");
  }
  info_.chunk_records = chunk_records;
  info_.digest = kFnvOffset;
  info_.min_addr = std::numeric_limits<std::uint64_t>::max();
  info_.max_addr = 0;
  pending_.reserve(chunk_records);
  // Placeholder header; finish() patches the counts/digest/footprint.
  const std::string h = encode_header(info_);
  out_.write(h.data(), static_cast<std::streamsize>(h.size()));
}

TraceWriter::~TraceWriter() {
  try {
    finish();
  } catch (const TraceFormatError&) {
    // Destructor must not throw; callers that care about I/O failures
    // call finish() explicitly.
  }
}

void TraceWriter::append(const memsim::MemRef& ref) { append(&ref, 1); }

void TraceWriter::append(const memsim::MemRef* refs, std::size_t n) {
  if (finished_) {
    throw TraceFormatError("trace file '" + path_ +
                           "': append after finish()");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if ((refs[i].addr >> 63) != 0) {
      throw TraceFormatError(
          "trace file '" + path_ +
          "': address exceeds 63 bits and cannot be recorded");
    }
    pending_.push_back(refs[i]);
    if (pending_.size() == info_.chunk_records) flush_chunk();
  }
}

void TraceWriter::flush_chunk() {
  if (pending_.empty()) return;
  std::string payload;
  payload.reserve(pending_.size() * 2);
  std::uint64_t prev = 0;  // every chunk deltas from 0: self-contained
  for (const auto& ref : pending_) {
    const std::uint64_t t = transform(ref);
    put_varint(payload, zigzag(t - prev));
    prev = t;
    info_.digest = fnv1a_u64(info_.digest, t);
    info_.min_addr = std::min(info_.min_addr, ref.addr);
    info_.max_addr = std::max(info_.max_addr, ref.addr);
    lines_.insert(ref.addr >> 6);
  }
  std::string header;
  header.reserve(kChunkHeaderBytes);
  header.append(kChunkMagic, sizeof(kChunkMagic));
  put_le32(header, static_cast<std::uint32_t>(pending_.size()));
  put_le64(header, payload.size());
  out_.write(header.data(), static_cast<std::streamsize>(header.size()));
  out_.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  info_.records += pending_.size();
  pending_.clear();
}

void TraceWriter::finish() {
  if (finished_) return;
  flush_chunk();
  if (info_.records == 0) {
    info_.min_addr = 0;
    info_.max_addr = 0;
  }
  info_.touched_lines = lines_.size();
  out_.seekp(0);
  const std::string h = encode_header(info_);
  out_.write(h.data(), static_cast<std::streamsize>(h.size()));
  out_.flush();
  if (!out_) {
    throw TraceFormatError("trace file '" + path_ + "': write failed");
  }
  out_.close();
  finished_ = true;
}

// ---------------------------------------------------------------------------
// TraceReader
// ---------------------------------------------------------------------------

TraceInfo read_trace_info(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw TraceFormatError("cannot read trace file '" + path +
                           "': missing or unreadable");
  }
  return decode_header(path, in);
}

TraceReader::TraceReader(const std::string& path)
    : path_(path), in_(path, std::ios::binary) {
  if (!in_) {
    throw TraceFormatError("cannot read trace file '" + path +
                           "': missing or unreadable");
  }
  info_ = decode_header(path_, in_);
}

bool TraceReader::next_chunk() {
  unsigned char h[kChunkHeaderBytes];
  in_.read(reinterpret_cast<char*>(h), sizeof(h));
  const auto got = in_.gcount();
  if (got == 0) {
    // Clean end of the chunk stream: the header's record count must be
    // accounted for, or the file lost whole chunks.
    if (!eof_checked_ && decoded_ != info_.records) {
      bad(path_, "truncated: header promises " +
                     std::to_string(info_.records) + " record(s), chunks "
                     "contain " + std::to_string(decoded_));
    }
    eof_checked_ = true;
    return false;
  }
  if (got != static_cast<std::streamsize>(sizeof(h))) {
    bad(path_, "truncated chunk header after " + std::to_string(decoded_) +
                   " record(s)");
  }
  if (!std::equal(kChunkMagic, kChunkMagic + sizeof(kChunkMagic),
                  reinterpret_cast<const char*>(h))) {
    bad(path_, "bad chunk magic after " + std::to_string(decoded_) +
                   " record(s)");
  }
  const std::uint32_t count = get_le32(h + 4);
  const std::uint64_t payload_bytes = get_le64(h + 8);
  if (count == 0 || payload_bytes == 0 ||
      payload_bytes > static_cast<std::uint64_t>(count) * kMaxVarintBytes) {
    bad(path_, "corrupt chunk header (" + std::to_string(count) +
                   " record(s), " + std::to_string(payload_bytes) +
                   " payload byte(s))");
  }
  if (decoded_ + count > info_.records) {
    bad(path_, "chunks contain more records than the header's " +
                   std::to_string(info_.records));
  }
  chunk_.resize(static_cast<std::size_t>(payload_bytes));
  in_.read(reinterpret_cast<char*>(chunk_.data()),
           static_cast<std::streamsize>(chunk_.size()));
  if (in_.gcount() != static_cast<std::streamsize>(chunk_.size())) {
    bad(path_, "truncated chunk payload after " + std::to_string(decoded_) +
                   " record(s)");
  }
  chunk_pos_ = 0;
  chunk_remaining_ = count;
  prev_t_ = 0;
  return true;
}

std::size_t TraceReader::read(memsim::MemRef* out, std::size_t n) {
  std::size_t produced = 0;
  while (produced < n) {
    if (chunk_remaining_ == 0) {
      if (!next_chunk()) break;
    }
    std::uint64_t zz = 0;
    unsigned shift = 0;
    while (true) {
      if (chunk_pos_ >= chunk_.size()) {
        bad(path_, "record varint overruns its chunk payload");
      }
      const std::uint8_t byte = chunk_[chunk_pos_++];
      if (shift >= 64 || (shift == 63 && (byte & 0x7e) != 0)) {
        bad(path_, "record varint exceeds 64 bits");
      }
      zz |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    prev_t_ += unzigzag(zz);
    out[produced].addr = prev_t_ >> 1;
    out[produced].write = (prev_t_ & 1) != 0;
    ++produced;
    ++decoded_;
    if (--chunk_remaining_ == 0 && chunk_pos_ != chunk_.size()) {
      bad(path_, "chunk payload longer than its record count");
    }
  }
  return produced;
}

// ---------------------------------------------------------------------------
// Text conversion
// ---------------------------------------------------------------------------

std::uint64_t convert_text_trace(std::istream& in, TraceWriter& w) {
  std::uint64_t converted = 0;
  std::string line;
  std::uint64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::size_t i = 0;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i == line.size() || line[i] == '#' || line[i] == '\r') continue;
    const char op = line[i];
    const bool write = (op == 'W' || op == 'w');
    const bool read = (op == 'R' || op == 'r');
    ++i;
    const bool spaced = i < line.size() && (line[i] == ' ' || line[i] == '\t');
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    bool ok = (write || read) && spaced && i < line.size() && line[i] != '-';
    memsim::MemRef ref;
    ref.write = write;
    if (ok) {
      char* end = nullptr;
      ref.addr = std::strtoull(line.c_str() + i, &end, 0);
      std::size_t j = static_cast<std::size_t>(end - line.c_str());
      ok = j > i;
      while (j < line.size() && (line[j] == ' ' || line[j] == '\t' ||
                                 line[j] == '\r')) {
        ++j;
      }
      ok = ok && j == line.size();
    }
    if (!ok) {
      throw TraceFormatError(
          "text trace line " + std::to_string(lineno) +
          ": expected 'R <addr>' or 'W <addr>', got '" + line + "'");
    }
    w.append(ref);
    ++converted;
  }
  return converted;
}

std::uint64_t dump_trace_text(TraceReader& r, std::ostream& out,
                              std::uint64_t limit) {
  std::vector<memsim::MemRef> block(4096);
  std::uint64_t dumped = 0;
  char buf[40];
  while (limit == 0 || dumped < limit) {
    const std::size_t want =
        limit == 0 ? block.size()
                   : static_cast<std::size_t>(std::min<std::uint64_t>(
                         block.size(), limit - dumped));
    const std::size_t got = r.read(block.data(), want);
    if (got == 0) break;
    for (std::size_t i = 0; i < got; ++i) {
      std::snprintf(buf, sizeof(buf), "%c 0x%llx\n",
                    block[i].write ? 'W' : 'R',
                    static_cast<unsigned long long>(block[i].addr));
      out << buf;
    }
    dumped += got;
  }
  return dumped;
}

}  // namespace fpr::io
