// JSON (de)serialization of the explore engine's results. Variant
// machines are stored as their derivation specs (plus the base machine's
// short name), never as full CpuSpecs: from_json re-derives every
// variant through arch::derive_variant, so a results file stays small
// and cannot drift from the Table I descriptions or the transform
// definitions — a spec that no longer parses, or derives to a different
// short name, is a load-time error rather than silent skew.
#pragma once

#include "io/json.hpp"
#include "study/explore.hpp"

namespace fpr::io {

/// Schema tag + version stamped into every explore document; from_json
/// rejects files with a different format or a newer version.
inline constexpr std::string_view kExploreFormat = "fpr-explore-results";
inline constexpr std::int64_t kExploreVersion = 1;

Json to_json(const study::KernelProjection& p);
Json to_json(const study::VariantScore& v);

/// Top-level document:
/// {"format", "version", "base", "baseline", "variants": [...]}.
Json to_json(const study::ExploreResults& r);

study::KernelProjection kernel_projection_from_json(const Json& j);
study::VariantScore variant_score_from_json(const Json& j,
                                            const arch::CpuSpec& base);

/// Inverse of to_json(ExploreResults). Throws JsonError on schema
/// mismatches, unknown base machines, or variant specs that fail to
/// re-derive to the recorded name.
study::ExploreResults explore_from_json(const Json& j);

/// True when `j` carries the explore format tag (used by `fpr diff` to
/// dispatch between study and explore comparisons).
bool is_explore_document(const Json& j);

}  // namespace fpr::io
