#include "io/pareto_json.hpp"

#include <utility>

#include "arch/machines.hpp"
#include "io/explore_json.hpp"

namespace fpr::io {

Json to_json(const study::ParetoPoint& p) {
  Json objectives = Json::array();
  for (const double o : p.objectives) objectives.push(Json(o));
  return Json::object()
      .set("area_ratio", p.budget.area_ratio)
      .set("tdp_ratio", p.budget.tdp_ratio)
      .set("objectives", std::move(objectives))
      .set("score", to_json(p.score));
}

study::ParetoPoint pareto_point_from_json(const Json& j,
                                          const arch::CpuSpec& base) {
  study::ParetoPoint p;
  p.budget.area_ratio = j.at("area_ratio").as_number();
  p.budget.tdp_ratio = j.at("tdp_ratio").as_number();
  for (const auto& o : j.at("objectives").as_array()) {
    p.objectives.push_back(o.as_number());
  }
  p.score = variant_score_from_json(j.at("score"), base);
  return p;
}

Json to_json(const study::ParetoResults& r) {
  Json objectives = Json::array();
  for (const auto o : r.objectives) {
    objectives.push(Json(std::string(study::to_string(o))));
  }
  Json frontier = Json::array();
  for (const auto& p : r.frontier) frontier.push(to_json(p));
  return Json::object()
      .set("format", std::string(kParetoFormat))
      .set("version", kParetoVersion)
      .set("base", r.base)
      .set("budget", Json::object()
                         .set("max_area_ratio", r.budget.max_area_ratio)
                         .set("max_tdp_ratio", r.budget.max_tdp_ratio))
      .set("objectives", std::move(objectives))
      .set("frontier", std::move(frontier));
}

study::ParetoResults pareto_from_json(const Json& j) {
  const std::string& format = j.at("format").as_string();
  if (format != kParetoFormat) {
    throw JsonError("not a pareto results file (format '" + format + "')");
  }
  const auto version = static_cast<std::int64_t>(j.at("version").as_number());
  if (version > kParetoVersion) {
    throw JsonError("pareto file version " + std::to_string(version) +
                    " is newer than supported version " +
                    std::to_string(kParetoVersion));
  }
  study::ParetoResults r;
  r.base = j.at("base").as_string();
  arch::CpuSpec base;
  bool found = false;
  for (auto& cpu : arch::all_machines()) {
    if (cpu.short_name == r.base) {
      base = std::move(cpu);
      found = true;
      break;
    }
  }
  if (!found) throw JsonError("unknown base machine '" + r.base + "'");
  const Json& budget = j.at("budget");
  r.budget.max_area_ratio = budget.at("max_area_ratio").as_number();
  r.budget.max_tdp_ratio = budget.at("max_tdp_ratio").as_number();
  for (const auto& o : j.at("objectives").as_array()) {
    try {
      r.objectives.push_back(study::objective_from_string(o.as_string()));
    } catch (const std::invalid_argument& e) {
      throw JsonError(e.what());
    }
  }
  for (const auto& p : j.at("frontier").as_array()) {
    auto point = pareto_point_from_json(p, base);
    if (point.objectives.size() != r.objectives.size()) {
      throw JsonError("frontier point '" + point.name() + "' carries " +
                      std::to_string(point.objectives.size()) +
                      " objective values, document declares " +
                      std::to_string(r.objectives.size()));
    }
    r.frontier.push_back(std::move(point));
  }
  return r;
}

bool is_pareto_document(const Json& j) {
  if (!j.is_object()) return false;
  const Json* format = j.find("format");
  return format != nullptr && format->is_string() &&
         format->as_string() == kParetoFormat;
}

}  // namespace fpr::io
