// JSON (de)serialization of the study pipeline's result types. The
// mapping is lossless for everything the pipeline computes: op counts
// round-trip as exact 64-bit integers, doubles as shortest-round-trip
// decimals, enums as their to_string spellings, and the access-pattern
// variant as a type-tagged object. MachineResult stores only the
// machine's short name; from_json rehydrates the full CpuSpec from
// arch::all_machines(), so a results file stays small and cannot drift
// from the Table I machine descriptions.
#pragma once

#include "io/json.hpp"
#include "study/study.hpp"

namespace fpr::io {

/// Schema tag + version stamped into every results document; from_json
/// rejects files with a different format or a newer version.
inline constexpr std::string_view kStudyFormat = "fpr-study-results";
inline constexpr std::int64_t kStudyVersion = 1;

Json to_json(const counters::OpTally& t);
Json to_json(const memsim::AccessPatternSpec& spec);
Json to_json(const model::KernelTraits& t);
Json to_json(const model::WorkloadMeasurement& w);
Json to_json(const model::MemoryProfile& m);
Json to_json(const model::EvalResult& e);
Json to_json(const kernels::KernelInfo& info);
Json to_json(const study::MachineResult& m);
Json to_json(const study::KernelResult& k);

/// Top-level document: {"format", "version", "kernels": [...]}.
Json to_json(const study::StudyResults& r);

counters::OpTally op_tally_from_json(const Json& j);
memsim::AccessPatternSpec access_spec_from_json(const Json& j);
model::KernelTraits traits_from_json(const Json& j);
model::WorkloadMeasurement measurement_from_json(const Json& j);
model::MemoryProfile mem_profile_from_json(const Json& j);
model::EvalResult eval_from_json(const Json& j);
kernels::KernelInfo kernel_info_from_json(const Json& j);
study::MachineResult machine_result_from_json(const Json& j);
study::KernelResult kernel_result_from_json(const Json& j);

/// Inverse of to_json(StudyResults). Throws JsonError on schema
/// mismatches, unknown enum spellings, or unknown machine names.
study::StudyResults study_from_json(const Json& j);

}  // namespace fpr::io
