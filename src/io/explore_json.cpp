#include "io/explore_json.hpp"

#include <utility>

#include "arch/machines.hpp"
#include "io/study_json.hpp"

namespace fpr::io {

Json to_json(const study::KernelProjection& p) {
  return Json::object()
      .set("abbrev", p.abbrev)
      .set("mem", to_json(p.mem))
      .set("perf", to_json(p.perf))
      .set("time_ratio", p.time_ratio)
      .set("energy_ratio", p.energy_ratio)
      .set("fp64_pct_peak", p.fp64_pct_peak);
}

study::KernelProjection kernel_projection_from_json(const Json& j) {
  study::KernelProjection p;
  p.abbrev = j.at("abbrev").as_string();
  p.mem = mem_profile_from_json(j.at("mem"));
  p.perf = eval_from_json(j.at("perf"));
  p.time_ratio = j.at("time_ratio").as_number();
  p.energy_ratio = j.at("energy_ratio").as_number();
  p.fp64_pct_peak = j.at("fp64_pct_peak").as_number();
  return p;
}

Json to_json(const study::VariantScore& v) {
  Json kernels = Json::array();
  for (const auto& k : v.kernels) kernels.push(to_json(k));
  return Json::object()
      .set("spec", v.variant.spec)
      .set("name", v.variant.cpu.short_name)
      .set("geomean_time_ratio", v.geomean_time_ratio)
      .set("geomean_energy_ratio", v.geomean_energy_ratio)
      .set("mean_fp64_pct_peak", v.mean_fp64_pct_peak)
      .set("site_pct_peak", v.site_pct_peak)
      .set("kernels", std::move(kernels));
}

study::VariantScore variant_score_from_json(const Json& j,
                                            const arch::CpuSpec& base) {
  study::VariantScore v;
  v.variant = arch::derive_variant(base, j.at("spec").as_string());
  const std::string& name = j.at("name").as_string();
  if (v.variant.cpu.short_name != name) {
    throw JsonError("variant spec '" + v.variant.spec + "' derives to '" +
                    v.variant.cpu.short_name + "', file says '" + name + "'");
  }
  v.geomean_time_ratio = j.at("geomean_time_ratio").as_number();
  v.geomean_energy_ratio = j.at("geomean_energy_ratio").as_number();
  v.mean_fp64_pct_peak = j.at("mean_fp64_pct_peak").as_number();
  v.site_pct_peak = j.at("site_pct_peak").as_number();
  for (const auto& k : j.at("kernels").as_array()) {
    v.kernels.push_back(kernel_projection_from_json(k));
  }
  return v;
}

Json to_json(const study::ExploreResults& r) {
  Json variants = Json::array();
  for (const auto& v : r.variants) variants.push(to_json(v));
  return Json::object()
      .set("format", std::string(kExploreFormat))
      .set("version", kExploreVersion)
      .set("base", r.base)
      .set("baseline", to_json(r.baseline))
      .set("variants", std::move(variants));
}

study::ExploreResults explore_from_json(const Json& j) {
  const std::string& format = j.at("format").as_string();
  if (format != kExploreFormat) {
    throw JsonError("not an explore results file (format '" + format + "')");
  }
  const auto version = static_cast<std::int64_t>(j.at("version").as_number());
  if (version > kExploreVersion) {
    throw JsonError("explore file version " + std::to_string(version) +
                    " is newer than supported version " +
                    std::to_string(kExploreVersion));
  }
  study::ExploreResults r;
  r.base = j.at("base").as_string();
  arch::CpuSpec base;
  bool found = false;
  for (auto& cpu : arch::all_machines()) {
    if (cpu.short_name == r.base) {
      base = std::move(cpu);
      found = true;
      break;
    }
  }
  if (!found) throw JsonError("unknown base machine '" + r.base + "'");
  r.baseline = variant_score_from_json(j.at("baseline"), base);
  for (const auto& v : j.at("variants").as_array()) {
    r.variants.push_back(variant_score_from_json(v, base));
  }
  return r;
}

bool is_explore_document(const Json& j) {
  if (!j.is_object()) return false;
  const Json* format = j.find("format");
  return format != nullptr && format->is_string() &&
         format->as_string() == kExploreFormat;
}

}  // namespace fpr::io
