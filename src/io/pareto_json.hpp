// JSON (de)serialization of the Pareto search's frontier. As for the
// explore format, frontier machines are stored as their derivation specs
// (re-derived through arch::derive_variant on load, so a frontier file
// cannot drift from the transform definitions), and only jobs-invariant
// quantities are serialized — engine counters stay out of the document
// so a frontier is byte-identical for every --jobs value.
#pragma once

#include "io/json.hpp"
#include "study/pareto.hpp"

namespace fpr::io {

/// Schema tag + version stamped into every pareto document; from_json
/// rejects files with a different format or a newer version.
inline constexpr std::string_view kParetoFormat = "fpr-pareto-results";
inline constexpr std::int64_t kParetoVersion = 1;

Json to_json(const study::ParetoPoint& p);

/// Top-level document: {"format", "version", "base",
/// "budget": {"max_area_ratio", "max_tdp_ratio"},
/// "objectives": ["time", ...], "frontier": [...]}.
Json to_json(const study::ParetoResults& r);

study::ParetoPoint pareto_point_from_json(const Json& j,
                                          const arch::CpuSpec& base);

/// Inverse of to_json(ParetoResults). Throws JsonError on schema
/// mismatches, unknown base machines or objectives, or frontier specs
/// that fail to re-derive to the recorded name.
study::ParetoResults pareto_from_json(const Json& j);

/// True when `j` carries the pareto format tag (used by `fpr diff` to
/// dispatch between study, explore, and pareto comparisons).
bool is_pareto_document(const Json& j);

}  // namespace fpr::io
