// CANDLE (CNDL): deep-learning cancer benchmark P1B1 (Sec. II-B1b) — an
// autoencoder over gene-expression data. Re-implemented as a dense MLP
// autoencoder (synthetic expression matrix) trained with SGD; forward and
// backward passes are the GEMMs that dominate the original's FP32 mix
// (Table IV BDW: 6.9 Tops FP32, essentially no FP64).
#pragma once

#include "kernels/kernel_base.hpp"

namespace fpr::kernels {

class Candle final : public KernelBase {
 public:
  Candle();

  using ProxyKernel::run;
  [[nodiscard]] WorkloadMeasurement run(
      ExecutionContext& ctx, const RunConfig& cfg) const override;
};

}  // namespace fpr::kernels
