#include "kernels/candle.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/rng.hpp"

namespace fpr::kernels {

namespace {

// Reduced autoencoder geometry (the paper's P1B1 uses ~60k gene features;
// we keep the layer *shape* — wide encoder, narrow latent — and scale).
constexpr std::uint64_t kIn = 512;
constexpr std::uint64_t kHidden = 160;
constexpr std::uint64_t kLatent = 48;
constexpr std::uint64_t kBatch = 48;
constexpr int kSteps = 6;

// Paper-scale geometry used for op extrapolation and the working set.
constexpr double kPaperIn = 60483;   // P1B1 gene-expression features
constexpr double kPaperHidden = 2000;
constexpr double kPaperLatent = 600;
constexpr double kPaperBatch = 100;
// Anchored so the extrapolated FP32 total matches Table IV's
// 6918 Gop (a few epochs over the P1B1 sample).
constexpr double kPaperSteps = 70;

// C[m x n] += A[m x k] * B[k x n], FP32, with counting.
void gemm_acc(ExecutionContext& ctx, const float* a, const float* b,
              float* c, std::uint64_t m, std::uint64_t k, std::uint64_t n,
              unsigned workers, bool zero_first) {
  ctx.parallel_for_n(
      workers, m, [&](std::size_t lo, std::size_t hi, unsigned) {
        for (std::size_t i = lo; i < hi; ++i) {
          float* row = c + i * n;
          if (zero_first) std::fill(row, row + n, 0.0f);
          for (std::uint64_t kk = 0; kk < k; ++kk) {
            const float av = a[i * k + kk];
            const float* brow = b + kk * n;
            for (std::uint64_t j = 0; j < n; ++j) row[j] += av * brow[j];
          }
        }
        const std::uint64_t fl = 2 * (hi - lo) * k * n;
        counters::add_fp32(fl);
        // Framework tensor bookkeeping (Table IV BDW: INT ~0.4x FP32).
        counters::add_int(fl * 2 / 5 + (hi - lo));
        counters::add_read_bytes(fl / 2 * 4);
        counters::add_write_bytes((hi - lo) * n * 4);
      });
}

// C[m x n] = A[m x k] * B^T where B is [n x k], FP32, with counting.
// Used for the backward data gradients (G * W^T).
void gemm_bt(ExecutionContext& ctx, const float* a, const float* b,
             float* c, std::uint64_t m, std::uint64_t k, std::uint64_t n,
             unsigned workers) {
  ctx.parallel_for_n(
      workers, m, [&](std::size_t lo, std::size_t hi, unsigned) {
        for (std::size_t i = lo; i < hi; ++i) {
          for (std::uint64_t j = 0; j < n; ++j) {
            float acc = 0.0f;
            const float* arow = a + i * k;
            const float* brow = b + j * k;
            for (std::uint64_t kk = 0; kk < k; ++kk) {
              acc += arow[kk] * brow[kk];
            }
            c[i * n + j] = acc;
          }
        }
        const std::uint64_t fl = 2 * (hi - lo) * k * n;
        counters::add_fp32(fl);
        counters::add_int(fl * 2 / 5 + (hi - lo));
        counters::add_read_bytes(fl / 2 * 4);
        counters::add_write_bytes((hi - lo) * n * 4);
      });
}

}  // namespace

Candle::Candle()
    : KernelBase(KernelInfo{
          .name = "CANDLE",
          .abbrev = "CNDL",
          .suite = Suite::ecp,
          .domain = Domain::bioscience,
          .pattern = ComputePattern::dense_matrix,
          .language = "Python",
          .paper_input = "P1B1 autoencoder on gene expression data",
      }) {}

WorkloadMeasurement Candle::run(ExecutionContext& ctx,
                                       const RunConfig& cfg) const {
  const std::uint64_t in = scaled_n(kIn, std::sqrt(cfg.scale));
  const std::uint64_t hid = scaled_n(kHidden, std::sqrt(cfg.scale));
  const std::uint64_t lat = kLatent;
  const std::uint64_t batch = kBatch;
  const unsigned workers =
      cfg.threads == 0 ? ctx.concurrency() : cfg.threads;

  // Synthetic expression data in [0, 1] and Glorot-ish weights.
  Xoshiro256 rng(cfg.seed);
  AlignedBuffer<float> data(batch * in);
  for (auto& v : data) v = static_cast<float>(rng.uniform());
  auto init_w = [&](AlignedBuffer<float>& w, std::uint64_t fan_in) {
    const float s = 1.0f / std::sqrt(static_cast<float>(fan_in));
    for (auto& v : w) v = static_cast<float>(rng.uniform(-s, s));
  };
  // Encoder: in->hid->lat, decoder: lat->hid->in (tied shapes, not values).
  AlignedBuffer<float> w1(in * hid), w2(hid * lat), w3(lat * hid),
      w4(hid * in);
  init_w(w1, in);
  init_w(w2, hid);
  init_w(w3, lat);
  init_w(w4, hid);

  AlignedBuffer<float> h1(batch * hid), h2(batch * lat), h3(batch * hid),
      out(batch * in);
  AlignedBuffer<float> g_out(batch * in), g_h3(batch * hid),
      g_h2(batch * lat), g_h1(batch * hid);
  AlignedBuffer<float> gw(std::max({in * hid, hid * lat, lat * hid}));

  auto relu = [&](float* v, std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) v[i] = std::max(0.0f, v[i]);
    counters::add_fp32(count);
    counters::add_branch(count);
  };
  auto relu_grad = [&](const float* act, float* grad, std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) {
      if (act[i] <= 0.0f) grad[i] = 0.0f;
    }
    counters::add_branch(count);
  };
  // gw = X^T * G then W -= lr * gw. (transposed GEMM, counted the same)
  auto weight_update = [&](const float* xact, const float* grad, float* w,
                           std::uint64_t rows, std::uint64_t cols) {
    const float lr = 0.01f / static_cast<float>(batch);
    ctx.parallel_for_n(workers, rows,
                        [&](std::size_t lo, std::size_t hi, unsigned) {
                          for (std::size_t r = lo; r < hi; ++r) {
                            for (std::uint64_t c = 0; c < cols; ++c) {
                              float acc = 0.0f;
                              for (std::uint64_t s = 0; s < batch; ++s) {
                                acc += xact[s * rows + r] * grad[s * cols + c];
                              }
                              w[r * cols + c] -= lr * acc;
                            }
                          }
                          const std::uint64_t fl =
                              (hi - lo) * cols * (2 * batch + 2);
                          counters::add_fp32(fl);
                          counters::add_int(fl / 16);
                          counters::add_read_bytes(fl * 4);
                        });
  };

  double loss0 = 0.0, loss = 0.0;
  const auto rec = assayed(ctx, [&] {
    for (int step = 0; step < kSteps; ++step) {
      // Forward.
      gemm_acc(ctx, data.data(), w1.data(), h1.data(), batch, in, hid, workers,
               true);
      relu(h1.data(), batch * hid);
      gemm_acc(ctx, h1.data(), w2.data(), h2.data(), batch, hid, lat, workers,
               true);
      relu(h2.data(), batch * lat);
      gemm_acc(ctx, h2.data(), w3.data(), h3.data(), batch, lat, hid, workers,
               true);
      relu(h3.data(), batch * hid);
      gemm_acc(ctx, h3.data(), w4.data(), out.data(), batch, hid, in, workers,
               true);
      // MSE loss and output gradient.
      double l = 0.0;
      for (std::uint64_t i = 0; i < batch * in; ++i) {
        const float dlt = out[i] - data[i];
        g_out[i] = 2.0f * dlt;
        l += static_cast<double>(dlt) * dlt;
      }
      counters::add_fp32(3 * batch * in);
      l /= static_cast<double>(batch * in);
      if (step == 0) loss0 = l;
      loss = l;
      // Backward: grad through decoder and encoder (weight grads + data
      // grads via GEMMs with transposes; counted identically).
      gemm_bt(ctx, g_out.data(), w4.data(), g_h3.data(), batch, in, hid, workers);
      weight_update(h3.data(), g_out.data(), w4.data(), hid, in);
      relu_grad(h3.data(), g_h3.data(), batch * hid);
      gemm_bt(ctx, g_h3.data(), w3.data(), g_h2.data(), batch, hid, lat, workers);
      weight_update(h2.data(), g_h3.data(), w3.data(), lat, hid);
      relu_grad(h2.data(), g_h2.data(), batch * lat);
      gemm_bt(ctx, g_h2.data(), w2.data(), g_h1.data(), batch, lat, hid, workers);
      weight_update(h1.data(), g_h2.data(), w2.data(), hid, lat);
      relu_grad(h1.data(), g_h1.data(), batch * hid);
      weight_update(data.data(), g_h1.data(), w1.data(), in, hid);
    }
  });

  require(std::isfinite(loss), "finite loss");
  require(loss < loss0, "autoencoder loss decreased");

  // Anchor the extrapolation on Table IV's measured FP32 total
  // (6918 Gop): the original runs TensorFlow/MKL-DNN whose step count
  // is not cleanly derivable from the input description.
  (void)kPaperSteps;
  const double ops_scale =
      6.918e12 / std::max(1.0, static_cast<double>(rec.ops().fp32));
  const auto paper_ws = static_cast<std::uint64_t>(
      (kPaperIn * kPaperHidden + kPaperHidden * kPaperLatent) * 2 * 4.0 +
      kPaperBatch * kPaperIn * 4.0 * 3);

  memsim::BlockedPattern pat;
  pat.matrix_bytes = paper_ws;
  pat.tile_bytes = 512 * 1024;
  pat.tile_reuse = 24.0;

  KernelTraits traits;
  traits.vec_eff = 0.067;  // calibrated: Table IV achieved rate
                          // fully utilize the chip (Sec. IV-F)
  traits.int_eff = 0.10;
  traits.phi_vec_penalty = 2.1;   // Table IV: BDW-vs-KNL efficiency ratio
  traits.int_lane_inflation = 2.0;  // SDE lane-granular int counting
  traits.serial_fraction = 0.05;  // Python driver, data pipeline

  return finish_measurement(info(), rec, ops_scale, paper_ws,
                            memsim::AccessPatternSpec::single(pat), traits,
                            loss);
}

}  // namespace fpr::kernels
