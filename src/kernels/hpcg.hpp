// HPCG: preconditioned conjugate gradients on a 27-point operator with a
// symmetric Gauss-Seidel preconditioner — the paper's memory-subsystem
// reference solver (Sec. II-B3b, global problem 360^3). The dependent
// forward/backward GS sweeps are what make HPCG memory-*latency* bound on
// the Phis (paper Sec. IV-C/IV-E), which the traits encode.
#pragma once

#include "kernels/kernel_base.hpp"

namespace fpr::kernels {

class Hpcg final : public KernelBase {
 public:
  Hpcg();

  using ProxyKernel::run;
  [[nodiscard]] WorkloadMeasurement run(
      ExecutionContext& ctx, const RunConfig& cfg) const override;

  static constexpr std::uint64_t kPaperDim = 360;
  static constexpr int kPaperIters = 50;
};

}  // namespace fpr::kernels
