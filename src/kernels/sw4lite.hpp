// SW4lite (SW4L): seismic-modelling kernel proxy (Sec. II-B1j) — 4th-
// order finite differences for the elastic/acoustic wave equation with a
// single point source in a half-space. Dense radius-2 stencil, almost
// pure FP64 (Table IV: 146 GFP64 vs 0.76 Gop INT).
#pragma once

#include "kernels/kernel_base.hpp"

namespace fpr::kernels {

class Sw4Lite final : public KernelBase {
 public:
  Sw4Lite();

  using ProxyKernel::run;
  [[nodiscard]] WorkloadMeasurement run(
      ExecutionContext& ctx, const RunConfig& cfg) const override;

  static constexpr std::uint64_t kPaperDim = 256;
  static constexpr int kPaperSteps = 400;
};

}  // namespace fpr::kernels
