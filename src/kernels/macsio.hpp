// MACSio (MxIO): multi-purpose, application-centric, scalable I/O proxy
// (Sec. II-B1e). Generates structured mesh dumps and writes them to
// storage; the paper input writes 433.8 MB total. The interesting
// finding (Sec. IV-E) is that the write path is CPU-frequency bound
// (Linux kernel work), which the traits encode via io_write_bytes.
#pragma once

#include "kernels/kernel_base.hpp"

namespace fpr::kernels {

class MacsIo final : public KernelBase {
 public:
  MacsIo();

  using ProxyKernel::run;
  [[nodiscard]] WorkloadMeasurement run(
      ExecutionContext& ctx, const RunConfig& cfg) const override;

  static constexpr double kPaperBytes = 433.8e6;
};

}  // namespace fpr::kernels
