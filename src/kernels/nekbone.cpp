#include "kernels/nekbone.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/aligned_buffer.hpp"

namespace fpr::kernels {

namespace {

constexpr std::uint64_t kRunElems = 64;
constexpr int kRunIters = 30;
constexpr int kP = Nekbone::kOrder;  // nodes per dimension per element

// Apply the 1-D "derivative" operator along each dimension of a p^3
// element block: w = (D ⊗ I ⊗ I + I ⊗ D ⊗ I + I ⊗ I ⊗ D^T-ish) u.
// D here is a symmetric positive tridiagonal-ish dense matrix so the
// global operator is SPD (sufficient for the CG proxy; real Nekbone uses
// the spectral differentiation matrix with geometric factors).
void element_op(const double* d, const double* u, double* w) {
  // dims: u[i + kP*(j + kP*k)]
  for (int k = 0; k < kP; ++k) {
    for (int j = 0; j < kP; ++j) {
      for (int i = 0; i < kP; ++i) {
        double acc = 0.0;
        // contraction along i
        for (int m = 0; m < kP; ++m) {
          acc += d[i * kP + m] * u[m + kP * (j + kP * k)];
        }
        // contraction along j
        for (int m = 0; m < kP; ++m) {
          acc += d[j * kP + m] * u[i + kP * (m + kP * k)];
        }
        // contraction along k
        for (int m = 0; m < kP; ++m) {
          acc += d[k * kP + m] * u[i + kP * (j + kP * m)];
        }
        w[i + kP * (j + kP * k)] = acc;
      }
    }
  }
}

}  // namespace

Nekbone::Nekbone()
    : KernelBase(KernelInfo{
          .name = "Nekbone",
          .abbrev = "NekB",
          .suite = Suite::ecp,
          .domain = Domain::math_cs,
          .pattern = ComputePattern::sparse_matrix,
          .language = "Fortran",
          .paper_input = "CG Poisson, multigrid preconditioner, "
                         "fixed elements/process and order",
      }) {}

WorkloadMeasurement Nekbone::run(ExecutionContext& ctx,
                                        const RunConfig& cfg) const {
  const std::uint64_t ne = scaled_n(kRunElems, cfg.scale);
  const std::uint64_t npts = ne * kP * kP * kP;
  const unsigned workers =
      cfg.threads == 0 ? ctx.concurrency() : cfg.threads;

  // SPD 1-D operator: diag dominant symmetric.
  AlignedBuffer<double> d(kP * kP, 0.0);
  for (int i = 0; i < kP; ++i) {
    for (int j = 0; j < kP; ++j) {
      if (i == j) {
        d[i * kP + j] = 2.0;
      } else if (std::abs(i - j) == 1) {
        d[i * kP + j] = -0.9;
      } else {
        d[i * kP + j] = 0.02 / (1.0 + std::abs(i - j));
      }
    }
  }

  AlignedBuffer<double> x(npts, 0.0), b(npts), r(npts), p(npts), ap(npts);
  AlignedBuffer<double> xref(npts);
  for (std::uint64_t i = 0; i < npts; ++i) {
    xref[i] = std::sin(static_cast<double>(i % 97) * 0.1) + 1.5;
  }

  auto apply_A = [&](const double* in, double* out) {
    ctx.parallel_for_n(
        workers, ne, [&](std::size_t lo, std::size_t hi, unsigned) {
          for (std::size_t e = lo; e < hi; ++e) {
            element_op(d.data(), in + e * kP * kP * kP,
                       out + e * kP * kP * kP);
          }
          const std::uint64_t pts = (hi - lo) * kP * kP * kP;
          counters::add_fp64(pts * (6 * kP + 1));
          counters::add_int(pts * 2);  // dense loops: negligible indexing
          // Three contractions architecturally load 3*kP operands per
          // point - the bandwidth-hungry stream the paper's Fig. 4 shows.
          counters::add_read_bytes(pts * 8 * (3 * kP + 2));
          counters::add_write_bytes(pts * 8);
        });
  };
  auto dot = [&](const double* u, const double* v) {
    double s = 0.0;
    for (std::uint64_t i = 0; i < npts; ++i) s += u[i] * v[i];
    counters::add_fp64(2 * npts);
    counters::add_read_bytes(16 * npts);
    return s;
  };

  const auto rec = assayed(ctx, [&] {
    apply_A(xref.data(), b.data());
    std::copy(b.begin(), b.end(), r.begin());
    std::copy(b.begin(), b.end(), p.begin());
    double rr = dot(r.data(), r.data());
    const double rr0 = rr;
    for (int it = 0; it < kRunIters && rr > 1e-20 * rr0; ++it) {
      apply_A(p.data(), ap.data());
      const double alpha = rr / dot(p.data(), ap.data());
      for (std::uint64_t i = 0; i < npts; ++i) {
        x[i] += alpha * p[i];
        r[i] -= alpha * ap[i];
      }
      counters::add_fp64(4 * npts);
      const double rr_new = dot(r.data(), r.data());
      const double beta = rr_new / rr;
      for (std::uint64_t i = 0; i < npts; ++i) p[i] = r[i] + beta * p[i];
      counters::add_fp64(2 * npts);
      counters::add_read_bytes(48 * npts);
      counters::add_write_bytes(24 * npts);
      rr = rr_new;
    }
  });

  // Per-element operator: x should approach xref elementwise.
  double err = 0.0, norm = 0.0;
  for (std::uint64_t i = 0; i < npts; i += 31) {
    err += (x[i] - xref[i]) * (x[i] - xref[i]);
    norm += xref[i] * xref[i];
  }
  require(err / norm < 1e-2, "CG converges to manufactured field");

  const double ops_scale = static_cast<double>(kPaperElems) /
                           static_cast<double>(ne) *
                           static_cast<double>(kPaperIters) / kRunIters;
  const auto paper_ws = static_cast<std::uint64_t>(
      static_cast<double>(kPaperElems) * kP * kP * kP * 8.0 * 6);

  memsim::AccessPatternSpec access;
  memsim::BlockedPattern bp;  // per-element blocks reused p times
  bp.matrix_bytes = paper_ws;
  bp.tile_bytes = kP * kP * kP * 8 * 3;
  bp.tile_reuse = kP;
  access.components.push_back({bp, 1.0});

  KernelTraits traits;
  traits.vec_eff = 0.160;  // calibrated: ~2.5x Table IV achieved rate;
                       // this kernel is memory-bound on BDW (high
                       // MBd in Table IV), so the memory term binds
  traits.int_eff = 0.50;
  traits.phi_vec_penalty = 1.2;   // Table IV: BDW-vs-KNL efficiency ratio
  traits.int_lane_inflation = 1.0;  // SDE lane-granular int counting
  traits.serial_fraction = 0.01;
  traits.latency_dep_fraction = 0.0;

  return finish_measurement(info(), rec, ops_scale, paper_ws, access, traits,
                            err / norm);
}

}  // namespace fpr::kernels
