// CoMD: classical molecular-dynamics proxy (ExMatEx, Sec. II-B1c).
// Lennard-Jones inter-atomic potential with cell lists and velocity-
// Verlet integration; the paper's input computes the potential for
// 256,000 atoms (strong-scaling example).
#pragma once

#include "kernels/kernel_base.hpp"

namespace fpr::kernels {

class CoMd final : public KernelBase {
 public:
  CoMd();

  using ProxyKernel::run;
  [[nodiscard]] WorkloadMeasurement run(
      ExecutionContext& ctx, const RunConfig& cfg) const override;

  static constexpr std::uint64_t kPaperAtoms = 256000;
  static constexpr int kPaperSteps = 100;
};

}  // namespace fpr::kernels
