// QCD: lattice quantum chromodynamics mini-app (RIKEN, Sec. II-B2h) —
// solves the lattice QCD problem on a 4-D lattice (Class 2: 32^3 x 32).
// Re-implemented as the even-odd Wilson-Dirac operator with SU(3) gauge
// links and a CG solve of D^dag D x = b; the hop-term gather across 8
// lattice directions is the 4-D stencil of Table II.
#pragma once

#include "kernels/kernel_base.hpp"

namespace fpr::kernels {

class Qcd final : public KernelBase {
 public:
  Qcd();

  using ProxyKernel::run;
  [[nodiscard]] WorkloadMeasurement run(
      ExecutionContext& ctx, const RunConfig& cfg) const override;

  static constexpr std::uint64_t kPaperL = 32;  // 32^3 x 32 lattice
  static constexpr int kPaperIters = 200;
};

}  // namespace fpr::kernels
