#include "kernels/macsio.hpp"

#include <cstdio>
#include <cstring>
#include <vector>

#include "common/rng.hpp"

namespace fpr::kernels {

namespace {
constexpr std::uint64_t kRunBytes = 8u << 20;  // 8 MiB at scale 1
constexpr std::uint64_t kChunk = 64u << 10;
}  // namespace

MacsIo::MacsIo()
    : KernelBase(KernelInfo{
          .name = "MACSio",
          .abbrev = "MxIO",
          .suite = Suite::ecp,
          .domain = Domain::reference,  // synthetic I/O proxy (no domain
                                        // row in Table II)
          .pattern = ComputePattern::io,
          .language = "C",
          .paper_input = "433.8 MB written to disk",
      }) {}

WorkloadMeasurement MacsIo::run(ExecutionContext& ctx,
                                       const RunConfig& cfg) const {
  const std::uint64_t total = scaled_n(kRunBytes, cfg.scale);

  // MACSio emits self-describing dumps: generate mesh-like payload
  // (variable fields serialized chunk-wise), write to a temp file, then
  // read back a sample to checksum.
  std::FILE* f = std::tmpfile();
  require(f != nullptr, "tmpfile available");

  std::vector<unsigned char> chunk(kChunk);
  Xoshiro256 rng(cfg.seed);
  std::uint64_t check = 0;

  const auto rec = assayed(ctx, [&] {
    std::uint64_t written = 0;
    std::uint64_t iops = 0, fp = 0;
    while (written < total) {
      const std::uint64_t n = std::min<std::uint64_t>(kChunk, total - written);
      // Serialize a "field": header + quantized doubles (the int-heavy
      // formatting work the original does via Silo/HDF5/JSON backends).
      for (std::uint64_t i = 0; i < n; i += 8) {
        const double v = rng.uniform();          // field value
        const auto q = static_cast<std::uint64_t>(v * 255.0);  // quantize
        fp += 2;
        iops += 6;
        std::memset(&chunk[i], static_cast<int>(q), std::min<std::uint64_t>(8, n - i));
        check += q;
      }
      const std::size_t put = std::fwrite(chunk.data(), 1, n, f);
      require(put == n, "fwrite wrote the full chunk");
      written += n;
      iops += 32;  // syscall bookkeeping
    }
    std::fflush(f);
    counters::add_fp64(fp);
    counters::add_int(iops);
    counters::add_write_bytes(total);
    counters::add_read_bytes(total / 8);
  });

  // Verify the file really contains what we wrote (sample read-back).
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  require(static_cast<std::uint64_t>(size) == total, "file size matches");
  std::fseek(f, 0, SEEK_SET);
  unsigned char probe[16] = {};
  require(std::fread(probe, 1, sizeof probe, f) == sizeof probe,
          "read-back succeeds");
  std::fclose(f);

  const double ops_scale = kPaperBytes / static_cast<double>(total);
  const auto paper_ws = static_cast<std::uint64_t>(kPaperBytes * 0.1);

  memsim::StreamPattern pat;
  pat.bytes_per_array = static_cast<std::uint64_t>(kPaperBytes * 0.1);
  pat.arrays = 2;
  pat.writes_per_iter = 1;

  KernelTraits traits;
  traits.vec_eff = 0.05;  // calibrated: Table IV achieved rate
  traits.int_eff = 0.05;
  traits.phi_vec_penalty = 1.0;   // Table IV: BDW-vs-KNL efficiency ratio
  traits.int_lane_inflation = 2.0;  // SDE lane-granular int counting
  traits.serial_fraction = 0.3;  // file-system serialization
  traits.io_write_bytes = kPaperBytes;  // the actual bottleneck
  traits.phi_scalar_penalty = 2.1;  // kernel-mode work on slow Phi cores

  return finish_measurement(info(), rec, ops_scale, paper_ws,
                            memsim::AccessPatternSpec::single(pat), traits,
                            static_cast<double>(check));
}

}  // namespace fpr::kernels
