#include "kernels/modylas.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace fpr::kernels {

namespace {

constexpr std::uint64_t kRunCellDim = 5;
constexpr std::uint64_t kAtomsPerCell = 8;  // water-like density
constexpr int kRunSteps = 4;
constexpr double kCell = 1.0;

struct CellData {
  std::vector<std::uint32_t> atoms;
  // Multipole moments: monopole (total charge) and dipole.
  double q = 0.0, dx = 0.0, dy = 0.0, dz = 0.0;
  double cx = 0.0, cy = 0.0, cz = 0.0;  // cell center
};

}  // namespace

Modylas::Modylas()
    : KernelBase(KernelInfo{
          .name = "MODYLAS",
          .abbrev = "MDYL",
          .suite = Suite::riken,
          .domain = Domain::physics_chemistry,
          .pattern = ComputePattern::n_body,
          .language = "Fortran",
          .paper_input = "wat222: 156,240 atoms over 16^3 cells (FMM)",
      }) {}

WorkloadMeasurement Modylas::run(ExecutionContext& ctx,
                                        const RunConfig& cfg) const {
  const std::uint64_t nc = scaled_dim(kRunCellDim, cfg.scale);
  const std::uint64_t ncells = nc * nc * nc;
  const std::uint64_t natoms = ncells * kAtomsPerCell;
  const double box = static_cast<double>(nc) * kCell;
  const unsigned workers =
      cfg.threads == 0 ? ctx.concurrency() : cfg.threads;

  std::vector<double> x(natoms), y(natoms), z(natoms), q(natoms);
  std::vector<double> fx(natoms), fy(natoms), fz(natoms);
  Xoshiro256 rng(cfg.seed);
  for (std::uint64_t i = 0; i < natoms; ++i) {
    x[i] = rng.uniform(0.0, box);
    y[i] = rng.uniform(0.0, box);
    z[i] = rng.uniform(0.0, box);
    q[i] = (i % 3 == 0) ? -0.8 : 0.4;  // water-like charge pattern
  }

  std::vector<CellData> cells(ncells);
  auto cell_of = [&](std::uint64_t i) {
    const auto cx = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(x[i] / kCell), nc - 1);
    const auto cy = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(y[i] / kCell), nc - 1);
    const auto cz = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(z[i] / kCell), nc - 1);
    return cx + nc * (cy + nc * cz);
  };

  const auto rec = assayed(ctx, [&] {
    for (int step = 0; step < kRunSteps; ++step) {
      // --- P2M: bin atoms and build monopole+dipole per cell.
      for (auto& c : cells) {
        c.atoms.clear();
        c.q = c.dx = c.dy = c.dz = 0.0;
      }
      std::uint64_t iops = 0, fp = 0;
      for (std::uint64_t i = 0; i < natoms; ++i) {
        cells[cell_of(i)].atoms.push_back(static_cast<std::uint32_t>(i));
        iops += 14;
      }
      for (std::uint64_t c = 0; c < ncells; ++c) {
        auto& cd = cells[c];
        cd.cx = (static_cast<double>(c % nc) + 0.5) * kCell;
        cd.cy = (static_cast<double>((c / nc) % nc) + 0.5) * kCell;
        cd.cz = (static_cast<double>(c / (nc * nc)) + 0.5) * kCell;
        for (const std::uint32_t i : cd.atoms) {
          cd.q += q[i];
          cd.dx += q[i] * (x[i] - cd.cx);
          cd.dy += q[i] * (y[i] - cd.cy);
          cd.dz += q[i] * (z[i] - cd.cz);
          fp += 10;
          iops += 4;
        }
      }
      counters::add_fp64(fp);
      counters::add_int(iops);
      counters::add_read_bytes(natoms * 32);
      counters::add_write_bytes(ncells * 56);

      // --- Forces: P2P for the 27-cell neighbourhood, M2P beyond.
      ctx.parallel_for_n(
          workers, ncells, [&](std::size_t lo, std::size_t hi, unsigned) {
            std::uint64_t lfp = 0, lio = 0, lbr = 0;
            for (std::size_t c = lo; c < hi; ++c) {
              const std::uint64_t ccx = c % nc;
              const std::uint64_t ccy = (c / nc) % nc;
              const std::uint64_t ccz = c / (nc * nc);
              for (const std::uint32_t i : cells[c].atoms) {
                double afx = 0.0, afy = 0.0, afz = 0.0;
                for (std::uint64_t oc = 0; oc < ncells; ++oc) {
                  const std::uint64_t ox = oc % nc;
                  const std::uint64_t oy = (oc / nc) % nc;
                  const std::uint64_t oz = oc / (nc * nc);
                  // FMM well-separateness: direct P2P within 2 cells so
                  // the multipole expansion only serves r >= 2.5 cells.
                  const auto adj = [](std::uint64_t a, std::uint64_t b) {
                    return a > b ? a - b <= 2 : b - a <= 2;
                  };
                  lio += 12;
                  ++lbr;
                  if (adj(ox, ccx) && adj(oy, ccy) && adj(oz, ccz)) {
                    // P2P: pairwise Coulomb + LJ inside the near field.
                    for (const std::uint32_t j : cells[oc].atoms) {
                      if (j == i) continue;
                      const double rx = x[i] - x[j];
                      const double ry = y[i] - y[j];
                      const double rz = z[i] - z[j];
                      const double r2 = rx * rx + ry * ry + rz * rz + 0.01;
                      const double inv_r = 1.0 / std::sqrt(r2);
                      const double inv3 = inv_r * inv_r * inv_r;
                      const double coul = q[i] * q[j] * inv3;
                      const double inv6 = inv3 * inv3;
                      const double lj = 0.001 * (12.0 * inv6 * inv6 -
                                                 6.0 * inv6) / r2;
                      const double s = coul + lj;
                      afx += s * rx;
                      afy += s * ry;
                      afz += s * rz;
                      lfp += 32;
                      lio += 6;
                    }
                  } else {
                    // M2P: monopole + dipole of the far cell.
                    const auto& cd = cells[oc];
                    const double rx = x[i] - cd.cx;
                    const double ry = y[i] - cd.cy;
                    const double rz = z[i] - cd.cz;
                    const double r2 = rx * rx + ry * ry + rz * rz;
                    const double inv_r = 1.0 / std::sqrt(r2);
                    const double inv3 = inv_r * inv_r * inv_r;
                    const double inv5 = inv3 * inv_r * inv_r;
                    // F = q_i * (Q r / r^3 + (d - 3(d.r)r/r^2) ... )
                    const double dr = cd.dx * rx + cd.dy * ry + cd.dz * rz;
                    afx += q[i] * (cd.q * rx * inv3 +
                                   (3.0 * dr * rx * inv5 - cd.dx * inv3));
                    afy += q[i] * (cd.q * ry * inv3 +
                                   (3.0 * dr * ry * inv5 - cd.dy * inv3));
                    afz += q[i] * (cd.q * rz * inv3 +
                                   (3.0 * dr * rz * inv5 - cd.dz * inv3));
                    lfp += 40;
                    lio += 8;
                  }
                }
                fx[i] = afx;
                fy[i] = afy;
                fz[i] = afz;
              }
            }
            counters::add_fp64(lfp);
            // Lane-granular vector-int accounting of the cell traversal
            // and neighbour-list masks (Table IV: MDYL INT ~3.7x FP64).
            counters::add_int(lio * 12);
            counters::add_branch(lbr);
            counters::add_read_bytes(lfp * 3);
            counters::add_write_bytes(lfp / 4);
          });

      // Gentle position update between steps, displacement-clamped
      // because random initial positions can overlap (huge LJ forces).
      // Skipped after the final force evaluation so the verification
      // compares forces at the *final* positions.
      if (step + 1 < kRunSteps) {
        for (std::uint64_t i = 0; i < natoms; ++i) {
          auto wrap = [&](double v) {
            double r = std::fmod(v, box);
            if (r < 0) r += box;
            return r;
          };
          auto clamped = [](double f) {
            return std::clamp(1e-5 * f, -0.02, 0.02);
          };
          x[i] = wrap(x[i] + clamped(fx[i]));
          y[i] = wrap(y[i] + clamped(fy[i]));
          z[i] = wrap(z[i] + clamped(fz[i]));
        }
        counters::add_fp64(9 * natoms);
      }
    }
  });

  // Verification: FMM force vs direct summation on a sample of atoms.
  double max_rel = 0.0;
  for (std::uint64_t i = 0; i < natoms; i += natoms / 16 + 1) {
    double dfx = 0.0, dfy = 0.0, dfz = 0.0;
    for (std::uint64_t j = 0; j < natoms; ++j) {
      if (j == i) continue;
      const double rx = x[i] - x[j];
      const double ry = y[i] - y[j];
      const double rz = z[i] - z[j];
      const double r2 = rx * rx + ry * ry + rz * rz + 0.01;
      const double inv_r = 1.0 / std::sqrt(r2);
      const double inv3 = inv_r * inv_r * inv_r;
      const double coul = q[i] * q[j] * inv3;
      const double inv6 = inv3 * inv3;
      const double lj = 0.001 * (12.0 * inv6 * inv6 - 6.0 * inv6) / r2;
      const double s = coul + lj;
      dfx += s * rx;
      dfy += s * ry;
      dfz += s * rz;
    }
    const double mag = std::sqrt(dfx * dfx + dfy * dfy + dfz * dfz) + 1e-9;
    const double err = std::sqrt((dfx - fx[i]) * (dfx - fx[i]) +
                                 (dfy - fy[i]) * (dfy - fy[i]) +
                                 (dfz - fz[i]) * (dfz - fz[i]));
    max_rel = std::max(max_rel, err / mag);
  }
  // Note: direct sum differs from FMM by (a) multipole truncation and
  // (b) LJ being omitted in the far field (negligible at r > 1 cell).
  require(max_rel < 0.35, "FMM force matches direct sum to expansion order");

  // Anchored on Table IV's 6287 Gop FP64: the original's FMM depth and
  // expansion order are not derivable from the input description.
  const double ops_scale =
      6.287e12 / std::max(1.0, static_cast<double>(rec.ops().fp64));
  const auto paper_ws =
      static_cast<std::uint64_t>(kPaperAtoms * 8.0 * 10 * 1.4);

  memsim::AccessPatternSpec access;
  memsim::GatherPattern gp;
  gp.table_bytes = static_cast<std::uint64_t>(kPaperAtoms * 8.0 * 10);
  gp.elem_bytes = 8;
  gp.sequential_fraction = 0.6;
  access.components.push_back({gp, 1.0});

  KernelTraits traits;
  traits.vec_eff = 0.225;  // calibrated: Table IV achieved rate
  traits.int_eff = 0.45;
  traits.phi_vec_penalty = 1.5;   // Table IV: BDW-vs-KNL efficiency ratio
  traits.int_lane_inflation = 12.0;  // SDE lane-granular int counting
  traits.serial_fraction = 0.02;
  traits.latency_dep_fraction = 0.0;

  return finish_measurement(info(), rec, ops_scale, paper_ws, access, traits,
                            max_rel);
}

}  // namespace fpr::kernels
