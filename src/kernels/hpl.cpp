#include "kernels/hpl.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace fpr::kernels {

namespace {
constexpr std::uint64_t kRunN = 448;  // reduced problem size at scale 1
constexpr std::uint64_t kBlock = 64;  // panel width

// Column-major dense matrix view (LAPACK layout, as HPL uses).
struct Mat {
  double* a;
  std::uint64_t n;
  double& operator()(std::uint64_t i, std::uint64_t j) const {
    return a[j * n + i];
  }
};

}  // namespace

Hpl::Hpl()
    : KernelBase(KernelInfo{
          .name = "High Performance Linpack",
          .abbrev = "HPL",
          .suite = Suite::reference,
          .domain = Domain::reference,
          .pattern = ComputePattern::dense_matrix,
          .language = "C",
          .paper_input = "dense Ax=b, N=64512, Intel-optimized binary",
      }) {}

WorkloadMeasurement Hpl::run(ExecutionContext& ctx,
                                    const RunConfig& cfg) const {
  const std::uint64_t n =
      std::max<std::uint64_t>(2 * kBlock, scaled_dim(kRunN, cfg.scale));
  const unsigned workers =
      cfg.threads == 0 ? ctx.concurrency() : cfg.threads;

  // Random diagonally-dominant-ish system (HPL uses uniform [-0.5, 0.5]).
  AlignedBuffer<double> storage(n * n);
  AlignedBuffer<double> rhs(n), x(n), a_copy(n * n), b_copy(n);
  Mat A{storage.data(), n};
  Xoshiro256 rng(cfg.seed);
  for (std::uint64_t j = 0; j < n; ++j) {
    for (std::uint64_t i = 0; i < n; ++i) A(i, j) = rng.uniform(-0.5, 0.5);
  }
  for (std::uint64_t i = 0; i < n; ++i) rhs[i] = rng.uniform(-0.5, 0.5);
  std::copy(storage.begin(), storage.end(), a_copy.begin());
  std::copy(rhs.begin(), rhs.end(), b_copy.begin());

  std::vector<std::uint64_t> piv(n);

  const auto rec = assayed(ctx, [&] {
    // Blocked right-looking LU with partial pivoting.
    for (std::uint64_t k0 = 0; k0 < n; k0 += kBlock) {
      const std::uint64_t kb = std::min(kBlock, n - k0);
      // --- Unblocked panel factorization (columns k0 .. k0+kb).
      std::uint64_t panel_fp = 0, panel_int = 0;
      for (std::uint64_t k = k0; k < k0 + kb; ++k) {
        // Pivot search in column k.
        std::uint64_t p = k;
        double pmax = std::abs(A(k, k));
        for (std::uint64_t i = k + 1; i < n; ++i) {
          const double v = std::abs(A(i, k));
          if (v > pmax) {
            pmax = v;
            p = i;
          }
        }
        panel_fp += n - k;          // abs compares treated as FP ops
        panel_int += 2 * (n - k);   // index + branch bookkeeping
        counters::add_branch(n - k);
        piv[k] = p;
        if (p != k) {
          for (std::uint64_t j = 0; j < n; ++j) std::swap(A(k, j), A(p, j));
          panel_int += 2 * n;
        }
        // Scale multipliers and update the remaining panel columns.
        const double inv = 1.0 / A(k, k);
        panel_fp += 1;
        for (std::uint64_t i = k + 1; i < n; ++i) A(i, k) *= inv;
        panel_fp += n - (k + 1);
        for (std::uint64_t j = k + 1; j < k0 + kb; ++j) {
          const double akj = A(k, j);
          for (std::uint64_t i = k + 1; i < n; ++i) {
            A(i, j) -= A(i, k) * akj;
          }
          panel_fp += 2 * (n - (k + 1));
          panel_int += n - (k + 1);
        }
      }
      counters::add_fp64(panel_fp);
      counters::add_int(panel_int);
      counters::add_read_bytes(panel_fp * 8);
      counters::add_write_bytes(panel_fp * 4);

      if (k0 + kb >= n) break;
      // --- Triangular solve of the block row: U12 = L11^-1 * A12.
      std::uint64_t tr_fp = 0;
      for (std::uint64_t j = k0 + kb; j < n; ++j) {
        for (std::uint64_t k = k0; k < k0 + kb; ++k) {
          const double akj = A(k, j);
          for (std::uint64_t i = k + 1; i < k0 + kb; ++i) {
            A(i, j) -= A(i, k) * akj;
          }
          tr_fp += 2 * (k0 + kb - (k + 1));
        }
      }
      counters::add_fp64(tr_fp);
      counters::add_read_bytes(tr_fp * 8);
      counters::add_write_bytes(tr_fp * 4);

      // --- Trailing update: A22 -= L21 * U12 (the GEMM; bulk of flops).
      const std::uint64_t jcols = n - (k0 + kb);
      ctx.parallel_for_n(
          workers, jcols,
          [&](std::size_t lo, std::size_t hi, unsigned) {
            std::uint64_t fp = 0, iops = 0;
            for (std::size_t jj = lo; jj < hi; ++jj) {
              const std::uint64_t j = k0 + kb + jj;
              for (std::uint64_t k = k0; k < k0 + kb; ++k) {
                const double akj = A(k, j);
                double* __restrict col_j = &A(k0 + kb, j);
                const double* __restrict col_k = &A(k0 + kb, k);
                const std::uint64_t m = n - (k0 + kb);
                for (std::uint64_t i = 0; i < m; ++i) {
                  col_j[i] -= col_k[i] * akj;
                }
                fp += 2 * m;
                iops += m / 8 + 2;  // vector loop: index per 8-lane iter
              }
            }
            counters::add_fp64(fp);
            counters::add_int(iops);
            counters::add_read_bytes(fp * 8);
            counters::add_write_bytes(fp * 4);
          });
    }

    // Forward/backward substitution to produce x. The factorization
    // swaps full rows eagerly, so the stored L is fully permuted: apply
    // every row interchange to the RHS first (LAPACK's laswp), then
    // solve.
    for (std::uint64_t i = 0; i < n; ++i) x[i] = rhs[i];
    std::uint64_t sub_fp = 0;
    for (std::uint64_t k = 0; k < n; ++k) std::swap(x[k], x[piv[k]]);
    for (std::uint64_t k = 0; k < n; ++k) {
      const double xk = x[k];
      for (std::uint64_t i = k + 1; i < n; ++i) x[i] -= A(i, k) * xk;
      sub_fp += 2 * (n - (k + 1));
    }
    for (std::uint64_t k = n; k-- > 0;) {
      x[k] /= A(k, k);
      const double xk = x[k];
      for (std::uint64_t i = 0; i < k; ++i) x[i] -= A(i, k) * xk;
      sub_fp += 2 * k + 1;
    }
    counters::add_fp64(sub_fp);
    counters::add_read_bytes(sub_fp * 8);
    counters::add_write_bytes(sub_fp * 2);
  });

  // HPL-style verification: scaled residual of the original system.
  double norm_a = 0.0, norm_x = 0.0, resid = 0.0;
  Mat A0{a_copy.data(), n};
  for (std::uint64_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (std::uint64_t j = 0; j < n; ++j) row += std::abs(A0(i, j));
    norm_a = std::max(norm_a, row);
    norm_x = std::max(norm_x, std::abs(x[i]));
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    double ax = 0.0;
    for (std::uint64_t j = 0; j < n; ++j) ax += A0(i, j) * x[j];
    resid = std::max(resid, std::abs(ax - b_copy[i]));
  }
  const double scaled = resid / (norm_a * norm_x * static_cast<double>(n) *
                                 2.220446049250313e-16);
  require(scaled < 16.0, "HPL scaled residual < 16");

  const double nn = static_cast<double>(n);
  const double pn = static_cast<double>(kPaperN);
  const double ops_scale = (pn * pn * pn) / (nn * nn * nn);
  const auto paper_ws = static_cast<std::uint64_t>(pn * pn * 8.0);

  memsim::BlockedPattern pat;
  pat.matrix_bytes = paper_ws;
  // Production HPL blocks for L1/L2 with NB in the hundreds: every line
  // streamed from memory is reused hundreds of times inside the tile.
  pat.tile_bytes = 192 * 1024;
  pat.tile_reuse = 256.0;

  KernelTraits traits;
  traits.vec_eff = 0.92;  // calibrated: Table IV achieved rate
  traits.int_eff = 0.50;
  traits.phi_vec_penalty = 1.35;   // Table IV: BDW-vs-KNL efficiency ratio
  traits.int_lane_inflation = 1.0;  // SDE lane-granular int counting
  traits.serial_fraction = 0.02;  // panel factorization is narrow
  traits.latency_dep_fraction = 0.0;

  return finish_measurement(info(), rec, ops_scale, paper_ws,
                            memsim::AccessPatternSpec::single(pat), traits,
                            x[0]);
}

}  // namespace fpr::kernels
