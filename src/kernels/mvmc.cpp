#include "kernels/mvmc.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/rng.hpp"

namespace fpr::kernels {

namespace {

constexpr std::uint64_t kRunN = 72;
constexpr std::uint64_t kRunSweeps = 40;

// log|det| via LU with partial pivoting (also counts the ops).
double logdet_lu(std::vector<double> a, std::uint64_t n) {
  double ld = 0.0;
  std::uint64_t fp = 0;
  for (std::uint64_t k = 0; k < n; ++k) {
    std::uint64_t p = k;
    for (std::uint64_t i = k + 1; i < n; ++i) {
      if (std::abs(a[i * n + k]) > std::abs(a[p * n + k])) p = i;
    }
    if (p != k) {
      for (std::uint64_t j = 0; j < n; ++j) std::swap(a[k * n + j], a[p * n + j]);
    }
    const double piv = a[k * n + k];
    ld += std::log(std::abs(piv));
    for (std::uint64_t i = k + 1; i < n; ++i) {
      const double m = a[i * n + k] / piv;
      for (std::uint64_t j = k + 1; j < n; ++j) {
        a[i * n + j] -= m * a[k * n + j];
      }
      fp += 2 * (n - k);
    }
  }
  counters::add_fp64(fp + 3 * n);
  return ld;
}

}  // namespace

MVmc::MVmc()
    : KernelBase(KernelInfo{
          .name = "many-variable Variational Monte Carlo",
          .abbrev = "mVMC",
          .suite = Suite::riken,
          .domain = Domain::physics,
          .pattern = ComputePattern::dense_matrix,
          .language = "C",
          .paper_input = "quantum lattice strong-scaling test, downsized",
      }) {}

WorkloadMeasurement MVmc::run(ExecutionContext& ctx,
                                     const RunConfig& cfg) const {
  const std::uint64_t n = scaled_n(kRunN, std::sqrt(cfg.scale));
  const unsigned workers =
      cfg.threads == 0 ? ctx.concurrency() : cfg.threads;

  // Slater-like matrix: orbital amplitudes, diagonally enhanced so it is
  // comfortably non-singular.
  Xoshiro256 rng(cfg.seed);
  std::vector<double> phi(n * n), w(n * n, 0.0);  // w = phi^-1
  for (std::uint64_t i = 0; i < n * n; ++i) phi[i] = rng.uniform(-0.5, 0.5);
  for (std::uint64_t i = 0; i < n; ++i) phi[i * n + i] += 2.0;

  // Build the inverse by Gauss-Jordan (counted; part of setup inside the
  // kernel region, as mVMC recomputes inverses periodically).
  double logdet_running = 0.0;
  std::uint64_t accepted = 0, proposed = 0;

  const auto rec = assayed(ctx, [&] {
    // Invert phi into w.
    {
      std::vector<double> a = phi;
      for (std::uint64_t i = 0; i < n; ++i) w[i * n + i] = 1.0;
      std::uint64_t fp = 0;
      for (std::uint64_t k = 0; k < n; ++k) {
        // Partial pivot.
        std::uint64_t p = k;
        for (std::uint64_t i = k + 1; i < n; ++i) {
          if (std::abs(a[i * n + k]) > std::abs(a[p * n + k])) p = i;
        }
        if (p != k) {
          for (std::uint64_t j = 0; j < n; ++j) {
            std::swap(a[k * n + j], a[p * n + j]);
            std::swap(w[k * n + j], w[p * n + j]);
          }
        }
        const double inv = 1.0 / a[k * n + k];
        for (std::uint64_t j = 0; j < n; ++j) {
          a[k * n + j] *= inv;
          w[k * n + j] *= inv;
        }
        fp += 4 * n + 1;
        for (std::uint64_t i = 0; i < n; ++i) {
          if (i == k) continue;
          const double m = a[i * n + k];
          for (std::uint64_t j = 0; j < n; ++j) {
            a[i * n + j] -= m * a[k * n + j];
            w[i * n + j] -= m * w[k * n + j];
          }
          fp += 4 * n;
        }
      }
      counters::add_fp64(fp);
      counters::add_int(fp / 8);
      counters::add_read_bytes(fp * 8);
      counters::add_write_bytes(fp * 4);
    }
    logdet_running = logdet_lu(phi, n);

    // Metropolis sweeps: replace one row of phi with a proposed orbital
    // configuration; ratio = v . w[:,k]; accept per |ratio|.
    Xoshiro256 mc(cfg.seed ^ 0x77);
    std::vector<double> v(n), wk(n);
    for (std::uint64_t sweep = 0; sweep < kRunSweeps; ++sweep) {
      for (std::uint64_t mv = 0; mv < n; ++mv) {
        const std::uint64_t k = mc.below(n);
        for (std::uint64_t j = 0; j < n; ++j) {
          v[j] = phi[k * n + j] + mc.uniform(-0.25, 0.25);
        }
        // ratio = sum_j v[j] * w[j*n + k]  (column k of the inverse)
        double ratio = 0.0;
        for (std::uint64_t j = 0; j < n; ++j) ratio += v[j] * w[j * n + k];
        counters::add_fp64(2 * n + 2 * n);
        counters::add_int(3 * n);
        counters::add_read_bytes(24 * n);
        ++proposed;
        counters::add_branch(1);
        if (std::abs(ratio) > mc.uniform(0.0, 1.2)) {
          // Accept: Sherman-Morrison row update of the inverse,
          // parallel over columns. W' = W - (W e_k^T u W)/(1+...)
          ++accepted;
          logdet_running += std::log(std::abs(ratio));
          for (std::uint64_t j = 0; j < n; ++j) wk[j] = w[j * n + k];
          // u = v - old row; W'_{jl} = W_jl - wk_j * (v.W_l - delta)/ratio
          std::vector<double> vw(n, 0.0);
          ctx.parallel_for_n(
              workers, n, [&](std::size_t lo, std::size_t hi, unsigned) {
                std::uint64_t fp = 0;
                for (std::size_t l = lo; l < hi; ++l) {
                  double s = 0.0;
                  for (std::uint64_t j = 0; j < n; ++j) {
                    s += v[j] * w[j * n + l];
                  }
                  vw[l] = s;
                  fp += 2 * n;
                }
                counters::add_fp64(fp);
                counters::add_read_bytes(fp * 8);
              });
          ctx.parallel_for_n(
              workers, n, [&](std::size_t lo, std::size_t hi, unsigned) {
                std::uint64_t fp = 0;
                for (std::size_t j = lo; j < hi; ++j) {
                  const double c = wk[j] / ratio;
                  for (std::uint64_t l = 0; l < n; ++l) {
                    w[j * n + l] -= c * (vw[l] - (l == k ? 1.0 : 0.0));
                  }
                  fp += 2 * n + 1;
                }
                counters::add_fp64(fp);
                // Walker bookkeeping + lattice-index arithmetic around
                // the updates (Table IV: mVMC INT ~1.5-2x FP64).
                counters::add_int(fp * 3 / 2);
                counters::add_read_bytes(fp * 8);
                counters::add_write_bytes(fp * 8);
              });
          for (std::uint64_t j = 0; j < n; ++j) phi[k * n + j] = v[j];
        }
      }
    }
  });

  require(accepted > 0 && accepted < proposed, "MC explored configurations");
  // Verification: the incrementally tracked log|det| must match a fresh
  // LU factorization of the final matrix.
  const double logdet_fresh = logdet_lu(phi, n);
  require_close(logdet_running, logdet_fresh,
                1e-6 * std::max(1.0, std::abs(logdet_fresh)) * 100,
                "incremental log-det consistency");

  const double paper_vol = static_cast<double>(kPaperN) * kPaperN * kPaperN *
                           static_cast<double>(kPaperSweeps) / 100.0;
  const double run_vol = static_cast<double>(n) * n * n *
                         static_cast<double>(kRunSweeps) / 100.0;
  const double ops_scale = paper_vol / run_vol;
  const auto paper_ws = static_cast<std::uint64_t>(
      static_cast<double>(kPaperN) * kPaperN * 8.0 * 4 * 32);  // walkers

  memsim::BlockedPattern bp;
  bp.matrix_bytes = paper_ws;
  bp.tile_bytes = kPaperN * 8 * 16;
  bp.tile_reuse = 12.0;

  KernelTraits traits;
  traits.vec_eff = 0.123;  // calibrated: Table IV achieved rate
  traits.int_eff = 0.40;
  traits.phi_vec_penalty = 4.0;   // Table IV: BDW-vs-KNL efficiency ratio
  traits.int_lane_inflation = 2.0;  // SDE lane-granular int counting
  traits.serial_fraction = 0.02;
  traits.latency_dep_fraction = 0.0;

  return finish_measurement(info(), rec, ops_scale, paper_ws,
                            memsim::AccessPatternSpec::single(bp), traits,
                            logdet_running);
}

}  // namespace fpr::kernels
