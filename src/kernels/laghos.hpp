// Laghos (LAGO): LAGrangian High-Order Solver proxy (Sec. II-B1d) —
// compressible gas dynamics with an unstructured high-order finite
// element method; the paper input is a 2-D Sedov blast wave.
// Re-implemented as a staggered-grid 2-D Lagrangian hydro step with
// per-zone quadrature loops and indirect corner-node gather/scatter —
// the irregular, integer-heavy index pattern of MFEM assembly.
#pragma once

#include "kernels/kernel_base.hpp"

namespace fpr::kernels {

class Laghos final : public KernelBase {
 public:
  Laghos();

  using ProxyKernel::run;
  [[nodiscard]] WorkloadMeasurement run(
      ExecutionContext& ctx, const RunConfig& cfg) const override;
};

}  // namespace fpr::kernels
