#include "kernels/xsbench.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/rng.hpp"

namespace fpr::kernels {

namespace {

constexpr std::uint64_t kRunLookups = 60000;
constexpr std::uint64_t kRunGrid = 4096;
constexpr std::uint64_t kRunNuclides = 48;
constexpr int kXsChannels = 5;  // total, elastic, absorption, fission, nu-f
constexpr int kAvgNucsPerMat = 12;

}  // namespace

XsBench::XsBench()
    : KernelBase(KernelInfo{
          .name = "XSBench",
          .abbrev = "XSBn",
          .suite = Suite::ecp,
          .domain = Domain::physics,
          .pattern = ComputePattern::irregular,
          .language = "C",
          .paper_input = "large H-M reactor, 15e6 lookups/particle class",
      }) {}

WorkloadMeasurement XsBench::run(ExecutionContext& ctx,
                                        const RunConfig& cfg) const {
  const std::uint64_t lookups = scaled_n(kRunLookups, cfg.scale);
  const std::uint64_t grid = kRunGrid;
  const std::uint64_t nuc = kRunNuclides;
  const unsigned workers =
      cfg.threads == 0 ? ctx.concurrency() : cfg.threads;

  // Unionized energy grid (sorted) and per-nuclide xs tables.
  AlignedBuffer<double> egrid(grid);
  Xoshiro256 init_rng(cfg.seed);
  {
    double e = 1e-5;
    for (std::uint64_t i = 0; i < grid; ++i) {
      e += init_rng.uniform(1e-4, 2e-4);
      egrid[i] = e;
    }
  }
  const double emin = egrid[0], emax = egrid[grid - 1];
  // xs[nuclide][gridpoint][channel]
  AlignedBuffer<double> xs(nuc * grid * kXsChannels);
  for (auto& v : xs) v = init_rng.uniform(0.1, 10.0);
  // Materials: each material is a set of (nuclide, density) pairs.
  constexpr int kMats = 12;
  std::vector<std::vector<std::pair<std::uint32_t, double>>> mats(kMats);
  for (int m = 0; m < kMats; ++m) {
    const int count = 4 + static_cast<int>(init_rng.below(2 * kAvgNucsPerMat -
                                                          8));
    for (int k = 0; k < count; ++k) {
      mats[m].emplace_back(
          static_cast<std::uint32_t>(init_rng.below(nuc)),
          init_rng.uniform(0.01, 1.0));
    }
  }

  SlotReduce checksum(workers);
  const auto rec = assayed(ctx, [&] {
    ctx.parallel_for_n(
        workers, lookups, [&](std::size_t lo, std::size_t hi, unsigned tid) {
          Xoshiro256 rng(thread_seed(cfg.seed, tid) ^ lo);
          std::uint64_t fp = 0, iops = 0, branches = 0, bytes = 0;
          double local_sum = 0.0;
          for (std::size_t l = lo; l < hi; ++l) {
            const double e = rng.uniform(emin, emax);
            const int m = static_cast<int>(rng.below(kMats));
            iops += 6;
            // Binary search on the union grid (dependent chain).
            std::uint64_t a = 0, b = grid - 1;
            while (b - a > 1) {
              const std::uint64_t mid = (a + b) / 2;
              if (egrid[mid] > e) {
                b = mid;
              } else {
                a = mid;
              }
              iops += 4;
              ++branches;
              bytes += 8;
            }
            const double frac =
                (e - egrid[a]) / (egrid[b] - egrid[a]);
            fp += 3;
            // Macroscopic xs: sum over the material's nuclides of the
            // interpolated micro xs times density, per channel.
            double macro[kXsChannels] = {};
            for (const auto& [nid, dens] : mats[m]) {
              const double* lo_xs =
                  &xs[(nid * grid + a) * kXsChannels];
              const double* hi_xs =
                  &xs[(nid * grid + b) * kXsChannels];
              for (int ch = 0; ch < kXsChannels; ++ch) {
                macro[ch] += dens * (lo_xs[ch] +
                                     frac * (hi_xs[ch] - lo_xs[ch]));
                fp += 4;
              }
              iops += 8;
              bytes += kXsChannels * 16;
            }
            local_sum += macro[0];
            fp += 1;
          }
          counters::add_fp64(fp);
          counters::add_int(iops);
          counters::add_branch(branches);
          counters::add_read_bytes(bytes);
          checksum.add(tid, local_sum);
        });
  });

  const double mean_macro = checksum.sum() / static_cast<double>(lookups);
  // Each macro xs sums ~<count> densities * xs in [0.1, 10]; the mean
  // must land in a statically predictable window.
  require(mean_macro > 0.5 && mean_macro < 200.0, "macro xs in range");
  require(std::isfinite(mean_macro), "finite checksum");

  const double paper_work =
      kPaperLookups *
      (std::log2(static_cast<double>(kPaperGrid)) + kAvgNucsPerMat * 5);
  const double run_work =
      static_cast<double>(lookups) *
      (std::log2(static_cast<double>(grid)) + kAvgNucsPerMat * 5);
  const double ops_scale = paper_work / run_work;
  // Paper-scale tables: XSBench's "large" H-M unionized grid occupies
  // ~5.6 GB (union grid x per-nuclide pointers + xs data).
  const auto paper_ws = static_cast<std::uint64_t>(5.6e9);

  memsim::AccessPatternSpec access;
  memsim::GatherPattern gp;
  gp.table_bytes = 5600u * 1000 * 1000;
  gp.elem_bytes = 8;
  gp.sequential_fraction = 0.05;
  access.components.push_back({gp, 1.0});

  KernelTraits traits;
  traits.vec_eff = 0.050;  // calibrated: ~2.5x Table IV achieved rate;
                       // this kernel is memory-bound on BDW (high
                       // MBd in Table IV), so the memory term binds
  traits.int_eff = 0.12;
  traits.phi_vec_penalty = 1.0;   // Table IV: BDW-vs-KNL efficiency ratio
  traits.int_lane_inflation = 1.0;  // SDE lane-granular int counting
  traits.serial_fraction = 0.0;
  traits.latency_dep_fraction = 0.30;  // binary-search chains
  traits.phi_scalar_penalty = 1.1;

  return finish_measurement(info(), rec, ops_scale, paper_ws, access, traits,
                            mean_macro);
}

}  // namespace fpr::kernels
