// MODYLAS (MDYL): general-purpose molecular dynamics with the fast
// multipole method for long-range forces (RIKEN, Sec. II-B2c). Paper
// input: wat222 — 156,240 atoms over a 16^3 cell domain.
// Re-implemented as charged LJ particles on a cell grid: P2P short-range
// forces between neighbouring cells plus a monopole/dipole multipole
// approximation for far cells (the FMM far-field), verified against
// direct summation.
#pragma once

#include "kernels/kernel_base.hpp"

namespace fpr::kernels {

class Modylas final : public KernelBase {
 public:
  Modylas();

  using ProxyKernel::run;
  [[nodiscard]] WorkloadMeasurement run(
      ExecutionContext& ctx, const RunConfig& cfg) const override;

  static constexpr std::uint64_t kPaperAtoms = 156240;
  static constexpr int kPaperSteps = 100;
};

}  // namespace fpr::kernels
