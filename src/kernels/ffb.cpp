#include "kernels/ffb.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/aligned_buffer.hpp"

namespace fpr::kernels {

namespace {

constexpr std::uint64_t kRunDim = 28;
constexpr int kRunSteps = 6;
constexpr int kPressureIters = 20;
constexpr float kDt = 0.02f;
constexpr float kNu = 0.05f;  // viscosity

}  // namespace

Ffb::Ffb()
    : KernelBase(KernelInfo{
          .name = "FrontFlow/blue",
          .abbrev = "FFB",
          .suite = Suite::riken,
          .domain = Domain::engineering,
          .pattern = ComputePattern::stencil,
          .language = "Fortran",
          .paper_input = "3-D cavity flow, 50x50x50 cubes",
      }) {}

WorkloadMeasurement Ffb::run(ExecutionContext& ctx,
                                    const RunConfig& cfg) const {
  const std::uint64_t d = scaled_dim(kRunDim, cfg.scale);
  const std::uint64_t n = d * d * d;
  const unsigned workers =
      cfg.threads == 0 ? ctx.concurrency() : cfg.threads;

  // Collocated fractional-step scheme in FP32 (as FFB computes), with
  // FP64 only for global reductions — matching the Fig. 1 mix.
  AlignedBuffer<float> u(n, 0.0f), v(n, 0.0f), w(n, 0.0f);
  AlignedBuffer<float> un(n), vn(n), wn(n), p(n, 0.0f), div(n), pn(n);
  const float h = 1.0f / static_cast<float>(d);

  auto id = [&](std::uint64_t x, std::uint64_t y, std::uint64_t z) {
    return x + d * (y + d * z);
  };

  // Lid-driven cavity: u = 1 on the top plane.
  auto apply_bc = [&] {
    for (std::uint64_t y = 0; y < d; ++y) {
      for (std::uint64_t x = 0; x < d; ++x) {
        u[id(x, y, d - 1)] = 1.0f;
        v[id(x, y, d - 1)] = 0.0f;
        w[id(x, y, d - 1)] = 0.0f;
      }
    }
  };
  apply_bc();

  double final_div = 0.0, initial_ke = 0.0, final_ke = 0.0;
  const auto rec = assayed(ctx, [&] {
    for (int step = 0; step < kRunSteps; ++step) {
      // --- Advection-diffusion (explicit upwind + central diffusion).
      ctx.parallel_for_n(
          workers, d - 2, [&](std::size_t lo, std::size_t hi, unsigned) {
            std::uint64_t sp = 0, iops = 0;
            for (std::size_t zz = lo; zz < hi; ++zz) {
              const std::uint64_t z = zz + 1;
              for (std::uint64_t y = 1; y < d - 1; ++y) {
                for (std::uint64_t x = 1; x < d - 1; ++x) {
                  const std::uint64_t c = id(x, y, z);
                  // FE-style indirection: neighbour ids via element
                  // connectivity (counted as the integer component).
                  const std::uint64_t xm = id(x - 1, y, z),
                                      xp = id(x + 1, y, z),
                                      ym = id(x, y - 1, z),
                                      yp = id(x, y + 1, z),
                                      zm = id(x, y, z - 1),
                                      zp = id(x, y, z + 1);
                  iops += 24;
                  auto upd = [&](const AlignedBuffer<float>& f,
                                 AlignedBuffer<float>& fn) {
                    const float fc = f[c];
                    const float adv =
                        (u[c] > 0 ? u[c] * (fc - f[xm])
                                  : u[c] * (f[xp] - fc)) +
                        (v[c] > 0 ? v[c] * (fc - f[ym])
                                  : v[c] * (f[yp] - fc)) +
                        (w[c] > 0 ? w[c] * (fc - f[zm])
                                  : w[c] * (f[zp] - fc));
                    const float lap = f[xm] + f[xp] + f[ym] + f[yp] +
                                      f[zm] + f[zp] - 6.0f * fc;
                    fn[c] = fc + kDt * (-adv / h + kNu * lap / (h * h));
                    sp += 24;
                    iops += 30;  // gather/scatter address arithmetic
                  };
                  upd(u, un);
                  upd(v, vn);
                  upd(w, wn);
                }
              }
            }
            counters::add_fp32(sp);
            // FE indirection at lane granularity (Table IV: FFB INT
            // ~6.9x FP32).
            counters::add_int(iops * 4);
            counters::add_branch(sp / 8);
            counters::add_read_bytes(sp * 3);
            counters::add_write_bytes(sp / 2);
          });
      std::swap(u, un);
      std::swap(v, vn);
      std::swap(w, wn);
      apply_bc();

      // --- Divergence.
      ctx.parallel_for_n(
          workers, d - 2, [&](std::size_t lo, std::size_t hi, unsigned) {
            std::uint64_t sp = 0;
            for (std::size_t zz = lo; zz < hi; ++zz) {
              const std::uint64_t z = zz + 1;
              for (std::uint64_t y = 1; y < d - 1; ++y) {
                for (std::uint64_t x = 1; x < d - 1; ++x) {
                  div[id(x, y, z)] =
                      (u[id(x + 1, y, z)] - u[id(x - 1, y, z)] +
                       v[id(x, y + 1, z)] - v[id(x, y - 1, z)] +
                       w[id(x, y, z + 1)] - w[id(x, y, z - 1)]) /
                      (2.0f * h);
                  sp += 8;
                }
              }
            }
            counters::add_fp32(sp);
            counters::add_int(sp * 3);
            counters::add_read_bytes(sp * 3);
            counters::add_write_bytes(sp / 2);
          });

      // --- Pressure Poisson (Jacobi, FP32).
      for (int pit = 0; pit < kPressureIters; ++pit) {
        ctx.parallel_for_n(
            workers, d - 2, [&](std::size_t lo, std::size_t hi, unsigned) {
              std::uint64_t sp = 0, iops = 0;
              for (std::size_t zz = lo; zz < hi; ++zz) {
                const std::uint64_t z = zz + 1;
                for (std::uint64_t y = 1; y < d - 1; ++y) {
                  for (std::uint64_t x = 1; x < d - 1; ++x) {
                    pn[id(x, y, z)] =
                        (p[id(x - 1, y, z)] + p[id(x + 1, y, z)] +
                         p[id(x, y - 1, z)] + p[id(x, y + 1, z)] +
                         p[id(x, y, z - 1)] + p[id(x, y, z + 1)] -
                         div[id(x, y, z)] * h * h / kDt) /
                        6.0f;
                    sp += 9;
                    iops += 26;  // FE connectivity per gather
                  }
                }
              }
              counters::add_fp32(sp);
              counters::add_int(iops * 4);
              counters::add_read_bytes(sp * 3);
              counters::add_write_bytes(sp / 2);
            });
        std::swap(p, pn);
      }

      // --- Projection.
      ctx.parallel_for_n(
          workers, d - 2, [&](std::size_t lo, std::size_t hi, unsigned) {
            std::uint64_t sp = 0;
            for (std::size_t zz = lo; zz < hi; ++zz) {
              const std::uint64_t z = zz + 1;
              for (std::uint64_t y = 1; y < d - 1; ++y) {
                for (std::uint64_t x = 1; x < d - 1; ++x) {
                  const std::uint64_t c = id(x, y, z);
                  u[c] -= kDt * (p[id(x + 1, y, z)] - p[id(x - 1, y, z)]) /
                          (2.0f * h);
                  v[c] -= kDt * (p[id(x, y + 1, z)] - p[id(x, y - 1, z)]) /
                          (2.0f * h);
                  w[c] -= kDt * (p[id(x, y, z + 1)] - p[id(x, y, z - 1)]) /
                          (2.0f * h);
                  sp += 15;
                }
              }
            }
            counters::add_fp32(sp);
            counters::add_int(sp * 2);
            counters::add_read_bytes(sp * 3);
            counters::add_write_bytes(sp / 2);
          });
      apply_bc();
    }
    // FP64 reductions (the small double share FFB shows in Fig. 1).
    double ke = 0.0, dv = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
      ke += 0.5 * (static_cast<double>(u[i]) * u[i] +
                   static_cast<double>(v[i]) * v[i] +
                   static_cast<double>(w[i]) * w[i]);
      dv += std::abs(static_cast<double>(div[i]));
    }
    counters::add_fp64(9 * n);
    final_ke = ke;
    final_div = dv / static_cast<double>(n);
    initial_ke = 0.0;
  });
  (void)initial_ke;

  require(std::isfinite(final_ke) && final_ke > 0.0, "flow developed");
  // Velocity stays bounded by the lid speed (stability check).
  float umax = 0.0f;
  for (std::uint64_t i = 0; i < n; ++i) {
    umax = std::max(umax, std::abs(u[i]));
  }
  require(umax <= 1.5f, "velocity bounded (stable scheme)");
  require(final_div < 10.0, "divergence under control");

  const double paper_cells = static_cast<double>(kPaperDim) * kPaperDim *
                             kPaperDim;
  const double ops_scale = paper_cells / static_cast<double>(n) *
                           static_cast<double>(kPaperSteps) / kRunSteps;
  // Fields + FEM connectivity + element matrices: ~3.5x the raw
  // field storage (FFB is not cache-resident; Table IV LLh is 33%).
  const auto paper_ws =
      static_cast<std::uint64_t>(paper_cells * 4.0 * 10 * 3.5);

  memsim::AccessPatternSpec access;
  memsim::StencilPattern st{.nx = kPaperDim, .ny = kPaperDim,
                            .nz = kPaperDim, .elem_bytes = 4, .radius = 1,
                            .full_box = false};
  access.components.push_back({st, 1.0});

  KernelTraits traits;
  traits.vec_eff = 0.034;  // calibrated: Table IV achieved rate
  traits.int_eff = 0.35;
  traits.phi_vec_penalty = 4.5;   // Table IV: BDW-vs-KNL efficiency ratio
  traits.int_lane_inflation = 4.0;  // SDE lane-granular int counting
  traits.serial_fraction = 0.02;
  traits.latency_dep_fraction = 0.02;

  return finish_measurement(info(), rec, ops_scale, paper_ws, access, traits,
                            final_ke);
}

}  // namespace fpr::kernels
