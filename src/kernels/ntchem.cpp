#include "kernels/ntchem.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace fpr::kernels {

namespace {

constexpr std::uint64_t kRunBasis = 26;  // AO basis functions at scale 1
constexpr std::uint64_t kOcc = 5;        // occupied orbitals (H2O: 5)

}  // namespace

NtChem::NtChem()
    : KernelBase(KernelInfo{
          .name = "NTChem",
          .abbrev = "NTCh",
          .suite = Suite::riken,
          .domain = Domain::chemistry,
          .pattern = ComputePattern::dense_matrix,
          .language = "Fortran",
          .paper_input = "MP2 solver, H2O test case",
      }) {}

WorkloadMeasurement NtChem::run(ExecutionContext& ctx,
                                       const RunConfig& cfg) const {
  const std::uint64_t nbf = scaled_n(kRunBasis, std::cbrt(cfg.scale));
  const std::uint64_t nocc = kOcc;
  const std::uint64_t nvir = nbf - nocc;
  const unsigned workers =
      cfg.threads == 0 ? ctx.concurrency() : cfg.threads;

  // Synthetic AO integrals with 8-fold-symmetric structure via a
  // low-rank Cholesky-like factorization: (uv|ls) = sum_p B[p,uv] B[p,ls].
  const std::uint64_t rank = 3 * nbf;
  Xoshiro256 rng(cfg.seed);
  std::vector<double> B(rank * nbf * nbf);
  for (std::uint64_t p = 0; p < rank; ++p) {
    // symmetric in (u,v)
    for (std::uint64_t u2 = 0; u2 < nbf; ++u2) {
      for (std::uint64_t v2 = u2; v2 < nbf; ++v2) {
        const double val = rng.uniform(-0.2, 0.2) /
                           (1.0 + std::abs(static_cast<double>(u2) -
                                           static_cast<double>(v2)));
        B[(p * nbf + u2) * nbf + v2] = val;
        B[(p * nbf + v2) * nbf + u2] = val;
      }
    }
  }
  // MO coefficients: random orthogonal-ish (Gram-Schmidt-lite) matrix.
  std::vector<double> C(nbf * nbf);
  for (auto& v : C) v = rng.uniform(-1.0, 1.0);
  for (std::uint64_t i = 0; i < nbf; ++i) {
    // normalize column i against previous columns (cheap orthogonalize)
    for (std::uint64_t j = 0; j < i; ++j) {
      double d = 0.0;
      for (std::uint64_t k = 0; k < nbf; ++k) {
        d += C[k * nbf + i] * C[k * nbf + j];
      }
      for (std::uint64_t k = 0; k < nbf; ++k) {
        C[k * nbf + i] -= d * C[k * nbf + j];
      }
    }
    double norm = 0.0;
    for (std::uint64_t k = 0; k < nbf; ++k) {
      norm += C[k * nbf + i] * C[k * nbf + i];
    }
    norm = 1.0 / std::sqrt(norm);
    for (std::uint64_t k = 0; k < nbf; ++k) C[k * nbf + i] *= norm;
  }
  // Orbital energies: occupied negative, virtuals positive.
  std::vector<double> eps(nbf);
  for (std::uint64_t i = 0; i < nbf; ++i) {
    eps[i] = i < nocc ? -1.5 + 0.2 * static_cast<double>(i)
                      : 0.5 + 0.1 * static_cast<double>(i - nocc);
  }

  // Transformed half-integrals per Cholesky vector: Bmo[p,i,a] =
  // sum_{u,v} C[u,i] B[p,u,v] C[v,a]  (i occ, a vir) — two GEMM stages.
  std::vector<double> Bmo(rank * nocc * nvir);
  double emp2 = 0.0;

  const auto rec = assayed(ctx, [&] {
    ctx.parallel_for_n(
        workers, rank, [&](std::size_t lo, std::size_t hi, unsigned) {
          std::vector<double> half(nocc * nbf);
          std::uint64_t fp = 0, iops = 0;
          for (std::size_t p = lo; p < hi; ++p) {
            const double* Bp = &B[p * nbf * nbf];
            // Stage 1: half[i,v] = sum_u C[u,i] * B[u,v]
            for (std::uint64_t i = 0; i < nocc; ++i) {
              for (std::uint64_t v2 = 0; v2 < nbf; ++v2) {
                double s = 0.0;
                for (std::uint64_t u2 = 0; u2 < nbf; ++u2) {
                  s += C[u2 * nbf + i] * Bp[u2 * nbf + v2];
                }
                half[i * nbf + v2] = s;
                fp += 2 * nbf;
              }
            }
            // Stage 2: Bmo[p,i,a] = sum_v half[i,v] * C[v, nocc+a]
            for (std::uint64_t i = 0; i < nocc; ++i) {
              for (std::uint64_t a2 = 0; a2 < nvir; ++a2) {
                double s = 0.0;
                for (std::uint64_t v2 = 0; v2 < nbf; ++v2) {
                  s += half[i * nbf + v2] * C[v2 * nbf + nocc + a2];
                }
                Bmo[(p * nocc + i) * nvir + a2] = s;
                fp += 2 * nbf;
              }
            }
            iops += nocc * nbf + nocc * nvir;  // loop indexing, lane-level
          }
          counters::add_fp64(fp);
          // Integral-digestion/symmetry index work (Table IV: NTCh INT
          // ~1.4x FP64 on the Phis).
          counters::add_int(iops + fp * 7 / 5);
          counters::add_read_bytes(fp * 8);
          counters::add_write_bytes(fp / 4);
        });

    // MP2 pair energy: E = sum_{ijab} (ia|jb) [2(ia|jb) - (ib|ja)] /
    // (eps_i + eps_j - eps_a - eps_b), with (ia|jb) = sum_p Bmo[p,i,a]
    // Bmo[p,j,b].
    SlotReduce energy(workers);
    ctx.parallel_for_n(
        workers, nocc * nocc,
        [&](std::size_t lo, std::size_t hi, unsigned tid) {
          std::uint64_t fp = 0;
          double local = 0.0;
          for (std::size_t ij = lo; ij < hi; ++ij) {
            const std::uint64_t i = ij / nocc, j = ij % nocc;
            for (std::uint64_t a2 = 0; a2 < nvir; ++a2) {
              for (std::uint64_t b2 = 0; b2 < nvir; ++b2) {
                double iajb = 0.0, ibja = 0.0;
                for (std::uint64_t p = 0; p < rank; ++p) {
                  iajb += Bmo[(p * nocc + i) * nvir + a2] *
                          Bmo[(p * nocc + j) * nvir + b2];
                  ibja += Bmo[(p * nocc + i) * nvir + b2] *
                          Bmo[(p * nocc + j) * nvir + a2];
                }
                const double denom =
                    eps[i] + eps[j] - eps[nocc + a2] - eps[nocc + b2];
                local += iajb * (2.0 * iajb - ibja) / denom;
                fp += 4 * rank + 7;
              }
            }
          }
          counters::add_fp64(fp);
          counters::add_int(fp / 3);
          counters::add_read_bytes(fp * 4);
          energy.add(tid, local);
        });
    emp2 = energy.sum();
  });

  // Verification 1: MP2 correlation energy must be negative (denominators
  // are negative; the 2J-K numerator for i=j,a=b is positive).
  require(emp2 < 0.0, "MP2 correlation energy negative");
  // Verification 2: spot-check the transform against the direct
  // quadruple contraction for a few (p,i,a).
  for (int probe = 0; probe < 3; ++probe) {
    const std::uint64_t p = (probe * 7 + 1) % rank;
    const std::uint64_t i = probe % nocc;
    const std::uint64_t a2 = (probe * 5) % nvir;
    double direct = 0.0;
    for (std::uint64_t u2 = 0; u2 < nbf; ++u2) {
      for (std::uint64_t v2 = 0; v2 < nbf; ++v2) {
        direct += C[u2 * nbf + i] * B[(p * nbf + u2) * nbf + v2] *
                  C[v2 * nbf + nocc + a2];
      }
    }
    require_close(Bmo[(p * nocc + i) * nvir + a2], direct, 1e-9,
                  "transform matches direct contraction");
  }

  const double pn = static_cast<double>(kPaperBasis);
  // Anchored on Table IV's 1315.5 Gop FP64 (BDW): the H2O test's basis
  // and integral screening are not derivable from the input.
  const double ops_scale =
      1.3155e12 / std::max(1.0, static_cast<double>(rec.ops().fp64));
  const auto paper_ws = static_cast<std::uint64_t>(
      3.0 * pn * pn * pn * 8.0 + pn * pn * 8.0 * 6);

  memsim::BlockedPattern bp;
  bp.matrix_bytes = paper_ws;
  bp.tile_bytes = 256u << 10;
  bp.tile_reuse = 64.0;  // GEMM-chain blocking over the basis dimension

  KernelTraits traits;
  traits.vec_eff = 0.22;  // calibrated: Table IV achieved rate
                          // FP64 rate of the RIKEN suite)
  traits.int_eff = 0.50;
  traits.phi_vec_penalty = 4.5;   // Table IV: BDW-vs-KNL efficiency ratio
  traits.int_lane_inflation = 2.0;  // SDE lane-granular int counting
  traits.serial_fraction = 0.02;
  traits.latency_dep_fraction = 0.0;

  return finish_measurement(info(), rec, ops_scale, paper_ws,
                            memsim::AccessPatternSpec::single(bp), traits,
                            emp2);
}

}  // namespace fpr::kernels
