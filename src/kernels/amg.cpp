#include "kernels/amg.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/units.hpp"

namespace fpr::kernels {

namespace {

constexpr std::uint64_t kRunDim = 36;
constexpr int kRunIters = 18;
constexpr int kLevels = 3;

// CSR matrix, hypre-style, holding the 27-point operator scaled by
// 1/h^2 for its level (h doubles per level), i.e. stencil * 4^-level.
struct Csr {
  std::vector<std::uint64_t> row_ptr;
  std::vector<std::uint32_t> col;
  std::vector<double> val;
  std::uint64_t n = 0;
  double diag = 0.0;  // constant interior diagonal (for Jacobi)

  [[nodiscard]] std::uint64_t nnz() const { return val.size(); }
};

Csr build_27pt(std::uint64_t d, double scale) {
  Csr m;
  m.n = d * d * d;
  m.diag = 26.0 * scale;
  m.row_ptr.reserve(m.n + 1);
  m.row_ptr.push_back(0);
  for (std::uint64_t z = 0; z < d; ++z) {
    for (std::uint64_t y = 0; y < d; ++y) {
      for (std::uint64_t x = 0; x < d; ++x) {
        for (int dz = -1; dz <= 1; ++dz) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              const std::int64_t nx = static_cast<std::int64_t>(x) + dx;
              const std::int64_t ny = static_cast<std::int64_t>(y) + dy;
              const std::int64_t nz = static_cast<std::int64_t>(z) + dz;
              if (nx < 0 || ny < 0 || nz < 0 ||
                  nx >= static_cast<std::int64_t>(d) ||
                  ny >= static_cast<std::int64_t>(d) ||
                  nz >= static_cast<std::int64_t>(d)) {
                continue;
              }
              const bool diag = dx == 0 && dy == 0 && dz == 0;
              m.col.push_back(static_cast<std::uint32_t>(
                  nx + static_cast<std::int64_t>(d) *
                           (ny + static_cast<std::int64_t>(d) * nz)));
              m.val.push_back((diag ? 26.0 : -1.0) * scale);
            }
          }
        }
        m.row_ptr.push_back(m.col.size());
      }
    }
  }
  return m;
}

// y = A x, with hypre-like counting: 2 FP per nnz plus the CSR integer
// indexing work (column load, pointer arithmetic, vector mask handling)
// that dominates SDE's integer tally for hypre (Table IV: INT ~3x FP64).
void spmv(ExecutionContext& ctx, const Csr& m, const double* x, double* y,
          unsigned workers) {
  ctx.parallel_for_n(
      workers, m.n, [&](std::size_t lo, std::size_t hi, unsigned) {
        std::uint64_t fp = 0;
        for (std::size_t r = lo; r < hi; ++r) {
          double sum = 0.0;
          for (std::uint64_t k = m.row_ptr[r]; k < m.row_ptr[r + 1]; ++k) {
            sum += m.val[k] * x[m.col[k]];
          }
          y[r] = sum;
          fp += 2 * (m.row_ptr[r + 1] - m.row_ptr[r]);
        }
        const std::uint64_t nnz_range = fp / 2;
        counters::add_fp64(fp);
        counters::add_int(6 * nnz_range + 2 * (hi - lo));
        counters::add_read_bytes(nnz_range * (8 + 4 + 8));  // val+col+x
        counters::add_write_bytes((hi - lo) * 8);
        counters::add_branch(hi - lo);
      });
}

}  // namespace

Amg::Amg()
    : KernelBase(KernelInfo{
          .name = "Algebraic multi-grid",
          .abbrev = "AMG",
          .suite = Suite::ecp,
          .domain = Domain::physics_bioscience,
          .pattern = ComputePattern::stencil,
          .language = "C",
          .paper_input = "problem 1: 27-point stencil, 3-D linear system",
      }) {}

WorkloadMeasurement Amg::run(ExecutionContext& ctx,
                                    const RunConfig& cfg) const {
  const std::uint64_t d0 = scaled_dim(kRunDim, cfg.scale);
  const unsigned workers =
      cfg.threads == 0 ? ctx.concurrency() : cfg.threads;

  // Level hierarchy: full coarsening by 2 per dimension, operator
  // rescaled by 1/h^2 per level.
  std::vector<Csr> levels;
  std::vector<std::uint64_t> dims;
  {
    std::uint64_t d = d0;
    double scale = 1.0;
    for (int l = 0; l < kLevels && d >= 8; ++l) {
      levels.push_back(build_27pt(d, scale));
      dims.push_back(d);
      d /= 2;
      scale *= 0.25;
    }
  }
  const std::uint64_t n = levels[0].n;

  AlignedBuffer<double> b(n, 1.0), x(n, 0.0), r(n);
  std::vector<AlignedBuffer<double>> cb, cx, ct, cr;
  for (const auto& lv : levels) {
    cb.emplace_back(lv.n);
    cx.emplace_back(lv.n);
    ct.emplace_back(lv.n);
    cr.emplace_back(lv.n);
  }

  // Damped Jacobi: x += w D^-1 (b - A x). Two sweeps per call.
  auto smooth = [&](std::size_t lvl, const double* rhs, double* sol,
                    int sweeps) {
    const Csr& m = levels[lvl];
    for (int s = 0; s < sweeps; ++s) {
      spmv(ctx, m, sol, ct[lvl].data(), workers);
      const double wj = 0.85 / m.diag;
      double* tmp = ct[lvl].data();
      ctx.parallel_for_n(workers, m.n,
                          [&](std::size_t lo, std::size_t hi, unsigned) {
                            for (std::size_t i = lo; i < hi; ++i) {
                              sol[i] += wj * (rhs[i] - tmp[i]);
                            }
                            counters::add_fp64(3 * (hi - lo));
                            counters::add_int(hi - lo);
                            counters::add_read_bytes(24 * (hi - lo));
                            counters::add_write_bytes(8 * (hi - lo));
                          });
    }
  };

  // Full-weighting restriction: coarse(X) = (1/8) sum w(dx)w(dy)w(dz)
  // fine(2X+offset), w(0)=1, w(+-1)=1/2.
  auto restrict_fw = [&](std::size_t lvl, const double* fine,
                         double* coarse) {
    const std::uint64_t df = dims[lvl], dc = dims[lvl + 1];
    std::uint64_t fp = 0;
    for (std::uint64_t z = 0; z < dc; ++z) {
      for (std::uint64_t y = 0; y < dc; ++y) {
        for (std::uint64_t xx = 0; xx < dc; ++xx) {
          double acc = 0.0;
          for (int dz = -1; dz <= 1; ++dz) {
            for (int dy = -1; dy <= 1; ++dy) {
              for (int dx = -1; dx <= 1; ++dx) {
                const std::int64_t fx = 2 * static_cast<std::int64_t>(xx) + dx;
                const std::int64_t fy = 2 * static_cast<std::int64_t>(y) + dy;
                const std::int64_t fz = 2 * static_cast<std::int64_t>(z) + dz;
                if (fx < 0 || fy < 0 || fz < 0 ||
                    fx >= static_cast<std::int64_t>(df) ||
                    fy >= static_cast<std::int64_t>(df) ||
                    fz >= static_cast<std::int64_t>(df)) {
                  continue;
                }
                const double w = (dx == 0 ? 1.0 : 0.5) *
                                 (dy == 0 ? 1.0 : 0.5) *
                                 (dz == 0 ? 1.0 : 0.5);
                acc += w * fine[fx + df * (fy + df * fz)];
                fp += 2;
              }
            }
          }
          coarse[xx + dc * (y + dc * z)] = acc / 8.0;
          fp += 1;
        }
      }
    }
    counters::add_fp64(fp);
    counters::add_int(3 * fp);
    counters::add_read_bytes(4 * fp);
    counters::add_write_bytes(fp / 27);
  };

  // Trilinear prolongation, accumulated onto the fine vector.
  auto prolong_add = [&](std::size_t lvl, const double* coarse,
                         double* fine) {
    const std::uint64_t df = dims[lvl], dc = dims[lvl + 1];
    std::uint64_t fp = 0;
    auto cval = [&](std::int64_t cx2, std::int64_t cy, std::int64_t cz) {
      const auto cl = [&](std::int64_t v) {
        return static_cast<std::uint64_t>(
            std::clamp<std::int64_t>(v, 0, static_cast<std::int64_t>(dc) - 1));
      };
      return coarse[cl(cx2) + dc * (cl(cy) + dc * cl(cz))];
    };
    for (std::uint64_t z = 0; z < df; ++z) {
      for (std::uint64_t y = 0; y < df; ++y) {
        for (std::uint64_t xx = 0; xx < df; ++xx) {
          double acc = 0.0;
          const std::int64_t cx2 = static_cast<std::int64_t>(xx / 2);
          const std::int64_t cy = static_cast<std::int64_t>(y / 2);
          const std::int64_t cz = static_cast<std::int64_t>(z / 2);
          const bool ox = (xx & 1u) != 0, oy = (y & 1u) != 0,
                     oz = (z & 1u) != 0;
          for (int ddx = 0; ddx <= (ox ? 1 : 0); ++ddx) {
            for (int ddy = 0; ddy <= (oy ? 1 : 0); ++ddy) {
              for (int ddz = 0; ddz <= (oz ? 1 : 0); ++ddz) {
                const double w = (ox ? 0.5 : 1.0) * (oy ? 0.5 : 1.0) *
                                 (oz ? 0.5 : 1.0);
                acc += w * cval(cx2 + ddx, cy + ddy, cz + ddz);
                fp += 2;
              }
            }
          }
          fine[xx + df * (y + df * z)] += acc;
          fp += 1;
        }
      }
    }
    counters::add_fp64(fp);
    counters::add_int(4 * fp);
    counters::add_read_bytes(4 * fp);
    counters::add_write_bytes(4 * fp);
  };

  // One V(2,2)-cycle on level l for the system A_l x = rhs.
  std::function<void(std::size_t, const double*, double*)> vcycle =
      [&](std::size_t l, const double* rhs, double* sol) {
        smooth(l, rhs, sol, 2);
        if (l + 1 < levels.size()) {
          // coarse-grid correction
          spmv(ctx, levels[l], sol, ct[l].data(), workers);
          AlignedBuffer<double>& res = cr[l];
          for (std::uint64_t i = 0; i < levels[l].n; ++i) {
            res[i] = rhs[i] - ct[l][i];
          }
          counters::add_fp64(levels[l].n);
          restrict_fw(l, res.data(), cb[l + 1].data());
          std::fill(cx[l + 1].begin(), cx[l + 1].end(), 0.0);
          vcycle(l + 1, cb[l + 1].data(), cx[l + 1].data());
          prolong_add(l, cx[l + 1].data(), sol);
        } else {
          smooth(l, rhs, sol, 8);  // coarsest: heavy smoothing
        }
        smooth(l, rhs, sol, 2);
      };

  auto dot = [&](const double* u, const double* v) {
    double s = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) s += u[i] * v[i];
    counters::add_fp64(2 * n);
    counters::add_read_bytes(16 * n);
    return s;
  };

  double res0 = 0.0, res = 0.0;
  const auto rec = assayed(ctx, [&] {
    // hypre-style AMG used as a solver: stationary V-cycle iteration.
    res0 = std::sqrt(dot(b.data(), b.data()));
    for (int it = 0; it < kRunIters; ++it) {
      vcycle(0, b.data(), x.data());
    }
    spmv(ctx, levels[0], x.data(), r.data(), workers);
    for (std::uint64_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
    counters::add_fp64(n);
    res = std::sqrt(dot(r.data(), r.data()));
  });

  require(res < 1e-3 * res0, "AMG V-cycle residual reduced by 1e3");

  const double paper_rows = static_cast<double>(kPaperDim) * kPaperDim *
                            kPaperDim;
  const double ops_scale = paper_rows / static_cast<double>(n) *
                           static_cast<double>(kPaperIters) / kRunIters;
  // CSR(27pt) + MG hierarchy (~1.14x) + ~7 fine vectors.
  const auto paper_ws = static_cast<std::uint64_t>(
      paper_rows * (27.0 * 12.0 * 1.14 + 7 * 8));

  memsim::AccessPatternSpec access;
  memsim::StencilPattern st{.nx = kPaperDim,
                            .ny = kPaperDim,
                            .nz = kPaperDim,
                            .elem_bytes = 8,
                            .radius = 1,
                            .full_box = true};
  access.components.push_back({st, 0.3});
  memsim::StreamPattern ms;  // CSR coefficient streams
  ms.bytes_per_array = static_cast<std::uint64_t>(paper_rows * 27.0 * 12.0);
  ms.arrays = 1;
  ms.writes_per_iter = 0;
  access.components.push_back({ms, 0.7});

  KernelTraits traits;
  traits.vec_eff = 0.040;  // calibrated: ~2.5x Table IV achieved rate;
                       // this kernel is memory-bound on BDW (high
                       // MBd in Table IV), so the memory term binds
  traits.int_eff = 0.35;
  traits.phi_vec_penalty = 2.4;   // Table IV: BDW-vs-KNL efficiency ratio
  traits.int_lane_inflation = 2.0;  // SDE lane-granular int counting
  traits.serial_fraction = 0.03;
  traits.latency_dep_fraction = 0.05;

  return finish_measurement(info(), rec, ops_scale, paper_ws, access, traits,
                            res / res0);
}

}  // namespace fpr::kernels
