// NGSA (Next-Gen Sequencing Analyzer, Sec. II-B2f): genome-analysis
// mini-app detecting mutations in DNA. Re-implemented as the alignment
// core: a suffix-array index over a pseudo-genome (the paper uses
// ngsa-dummy pseudo-genome data), exact-seed lookup by binary search and
// banded Smith-Waterman extension. Pure integer/branch workload — the
// paper's canonical ALU-bound (not FPU-bound) proxy, and dramatically
// slower on Phi's narrow in-order cores (830 s vs 106 s on BDW).
#pragma once

#include "kernels/kernel_base.hpp"

namespace fpr::kernels {

class Ngsa final : public KernelBase {
 public:
  Ngsa();

  using ProxyKernel::run;
  [[nodiscard]] WorkloadMeasurement run(
      ExecutionContext& ctx, const RunConfig& cfg) const override;
};

}  // namespace fpr::kernels
