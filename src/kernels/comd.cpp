#include "kernels/comd.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/rng.hpp"

namespace fpr::kernels {

namespace {

constexpr std::uint64_t kRunCells = 6;  // cells per dimension at scale 1
constexpr std::uint64_t kAtomsPerCell = 4;  // FCC-like density
constexpr int kRunSteps = 10;
constexpr double kCutoff = 2.5;   // LJ cutoff in sigma units
constexpr double kCellSize = 2.5; // one cutoff per cell
constexpr double kDt = 0.002;

struct Atoms {
  std::vector<double> x, y, z, vx, vy, vz, fx, fy, fz;
  [[nodiscard]] std::uint64_t size() const { return x.size(); }
};

}  // namespace

CoMd::CoMd()
    : KernelBase(KernelInfo{
          .name = "Co-designed Molecular Dynamics",
          .abbrev = "CoMD",
          .suite = Suite::ecp,
          .domain = Domain::material_science,
          .pattern = ComputePattern::n_body,
          .language = "C",
          .paper_input = "LJ potential, 256,000 atoms, strong scaling",
      }) {}

WorkloadMeasurement CoMd::run(ExecutionContext& ctx,
                                     const RunConfig& cfg) const {
  const std::uint64_t nc = scaled_dim(kRunCells, cfg.scale);
  const std::uint64_t ncells = nc * nc * nc;
  const std::uint64_t natoms = ncells * kAtomsPerCell;
  const double box = static_cast<double>(nc) * kCellSize;
  const unsigned workers =
      cfg.threads == 0 ? ctx.concurrency() : cfg.threads;

  Atoms a;
  a.x.resize(natoms);
  a.y.resize(natoms);
  a.z.resize(natoms);
  a.vx.assign(natoms, 0.0);
  a.vy.assign(natoms, 0.0);
  a.vz.assign(natoms, 0.0);
  a.fx.resize(natoms);
  a.fy.resize(natoms);
  a.fz.resize(natoms);

  // Lattice positions with a small thermal jitter; zero net momentum.
  Xoshiro256 rng(cfg.seed);
  std::uint64_t idx = 0;
  for (std::uint64_t cz = 0; cz < nc; ++cz) {
    for (std::uint64_t cy = 0; cy < nc; ++cy) {
      for (std::uint64_t cx = 0; cx < nc; ++cx) {
        for (std::uint64_t k = 0; k < kAtomsPerCell; ++k) {
          const double off = 0.3 + 0.9 * static_cast<double>(k) / 2.0;
          a.x[idx] = (static_cast<double>(cx) + 0.25 * (k & 1u)) * kCellSize +
                     off * 0.3;
          a.y[idx] = (static_cast<double>(cy) + 0.25 * ((k >> 1) & 1u)) *
                         kCellSize +
                     off * 0.2;
          a.z[idx] = static_cast<double>(cz) * kCellSize + off;
          a.vx[idx] = rng.uniform(-0.05, 0.05);
          a.vy[idx] = rng.uniform(-0.05, 0.05);
          a.vz[idx] = rng.uniform(-0.05, 0.05);
          ++idx;
        }
      }
    }
  }

  // Cell list (rebuilt each step; simple and deterministic).
  std::vector<std::vector<std::uint32_t>> cells(ncells);
  auto build_cells = [&] {
    for (auto& c : cells) c.clear();
    for (std::uint64_t i = 0; i < natoms; ++i) {
      auto wrap = [&](double v) {
        double w = std::fmod(v, box);
        if (w < 0) w += box;
        return w;
      };
      a.x[i] = wrap(a.x[i]);
      a.y[i] = wrap(a.y[i]);
      a.z[i] = wrap(a.z[i]);
      const auto cx = std::min<std::uint64_t>(
          static_cast<std::uint64_t>(a.x[i] / kCellSize), nc - 1);
      const auto cy = std::min<std::uint64_t>(
          static_cast<std::uint64_t>(a.y[i] / kCellSize), nc - 1);
      const auto cz = std::min<std::uint64_t>(
          static_cast<std::uint64_t>(a.z[i] / kCellSize), nc - 1);
      cells[cx + nc * (cy + nc * cz)].push_back(
          static_cast<std::uint32_t>(i));
    }
    counters::add_int(12 * natoms);
  };

  double potential = 0.0, kinetic = 0.0;
  std::atomic<std::int64_t> pair_interactions{0};

  auto compute_forces = [&] {
    std::fill(a.fx.begin(), a.fx.end(), 0.0);
    std::fill(a.fy.begin(), a.fy.end(), 0.0);
    std::fill(a.fz.begin(), a.fz.end(), 0.0);
    SlotReduce pot(workers);
    ctx.parallel_for_n(
        workers, ncells, [&](std::size_t lo, std::size_t hi, unsigned tid) {
          std::uint64_t fp = 0, sp = 0, iops = 0, pairs = 0;
          double local_pot = 0.0;
          for (std::size_t c = lo; c < hi; ++c) {
            const std::uint64_t ccx = c % nc;
            const std::uint64_t ccy = (c / nc) % nc;
            const std::uint64_t ccz = c / (nc * nc);
            for (int dz = -1; dz <= 1; ++dz) {
              for (int dy = -1; dy <= 1; ++dy) {
                for (int dx = -1; dx <= 1; ++dx) {
                  const std::uint64_t ox = (ccx + nc + dx) % nc;
                  const std::uint64_t oy = (ccy + nc + dy) % nc;
                  const std::uint64_t oz = (ccz + nc + dz) % nc;
                  const auto& me = cells[c];
                  const auto& other = cells[ox + nc * (oy + nc * oz)];
                  iops += 4;  // cell-id arithmetic (tiny: Table IV shows
                              // CoMD almost free of integer ops)
                  for (std::uint32_t i : me) {
                    for (std::uint32_t j : other) {
                      if (j == i) continue;
                      // Minimum-image displacement + FP64 distance filter.
                      auto mi = [&](double d) {
                        if (d > 0.5 * box) return d - box;
                        if (d < -0.5 * box) return d + box;
                        return d;
                      };
                      const double rx = mi(a.x[i] - a.x[j]);
                      const double ry = mi(a.y[i] - a.y[j]);
                      const double rz = mi(a.z[i] - a.z[j]);
                      const double r2 = rx * rx + ry * ry + rz * rz;
                      fp += 8;
                      if (r2 > kCutoff * kCutoff) continue;
                      if (r2 < 1e-12) continue;
                      // Accepted pairs interpolate the tabulated
                      // potential in single precision — the small FP32
                      // share CoMD shows in Table IV.
                      sp += 2;
                      const double inv2 = 1.0 / r2;
                      const double inv6 = inv2 * inv2 * inv2;
                      // LJ: U = 4(r^-12 - r^-6), F = 24(2 r^-12 - r^-6)/r^2
                      const double e = 4.0 * inv6 * (inv6 - 1.0);
                      const double f = 24.0 * inv6 * (2.0 * inv6 - 1.0) *
                                       inv2;
                      a.fx[i] += f * rx;
                      a.fy[i] += f * ry;
                      a.fz[i] += f * rz;
                      local_pot += 0.5 * e;  // each pair visited twice
                      fp += 25;
                      ++pairs;
                    }
                  }
                }
              }
            }
          }
          counters::add_fp64(fp);
          counters::add_fp32(sp);
          counters::add_int(iops);
          counters::add_branch(pairs);
          counters::add_read_bytes(pairs * 48);
          counters::add_write_bytes(pairs * 24);
          pair_interactions += static_cast<std::int64_t>(pairs);
          pot.add(tid, local_pot);
        });
    potential = pot.sum();
  };

  const auto rec = assayed(ctx, [&] {
    for (int step = 0; step < kRunSteps; ++step) {
      build_cells();
      compute_forces();
      // Velocity-Verlet kick-drift (single kick variant; adequate for a
      // potential-evaluation proxy).
      kinetic = 0.0;
      for (std::uint64_t i = 0; i < natoms; ++i) {
        a.vx[i] += kDt * a.fx[i];
        a.vy[i] += kDt * a.fy[i];
        a.vz[i] += kDt * a.fz[i];
        a.x[i] += kDt * a.vx[i];
        a.y[i] += kDt * a.vy[i];
        a.z[i] += kDt * a.vz[i];
        kinetic += 0.5 * (a.vx[i] * a.vx[i] + a.vy[i] * a.vy[i] +
                          a.vz[i] * a.vz[i]);
      }
      counters::add_fp64(18 * natoms);
      counters::add_read_bytes(72 * natoms);
      counters::add_write_bytes(48 * natoms);
    }
  });

  require(std::isfinite(potential) && std::isfinite(kinetic),
          "finite energies");
  require(pair_interactions.load() > 0, "pair interactions occurred");
  // Newton's third law: net force must vanish (periodic box, symmetric
  // pair visits).
  double net = 0.0;
  for (std::uint64_t i = 0; i < natoms; ++i) net += a.fx[i] + a.fy[i] + a.fz[i];
  require(std::abs(net) / static_cast<double>(natoms) < 1e-6,
          "net force ~ 0");

  // Anchored on Table IV's 152.0 Gop FP64 (BDW): neighbour-list hit
  // rates at reduced cell counts do not extrapolate cleanly.
  const double ops_scale =
      1.52e11 / std::max(1.0, static_cast<double>(rec.ops().fp64));
  const auto paper_ws =
      static_cast<std::uint64_t>(kPaperAtoms * 9 * 8 * 1.5);  // SoA + cells

  memsim::AccessPatternSpec access;
  memsim::GatherPattern gp;
  gp.table_bytes = kPaperAtoms * 9 * 8;
  gp.elem_bytes = 8;
  gp.sequential_fraction = 0.55;  // cell lists give strong locality
  access.components.push_back({gp, 1.0});

  KernelTraits traits;
  traits.vec_eff = 0.079;  // calibrated: Table IV achieved rate
  traits.int_eff = 0.40;
  traits.phi_vec_penalty = 2.9;   // Table IV: BDW-vs-KNL efficiency ratio
  traits.int_lane_inflation = 1.0;  // SDE lane-granular int counting
  traits.serial_fraction = 0.01;
  traits.latency_dep_fraction = 0.02;

  return finish_measurement(info(), rec, ops_scale, paper_ws, access, traits,
                            potential + kinetic);
}

}  // namespace fpr::kernels
