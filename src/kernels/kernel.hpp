// The proxy-kernel interface. Each of the paper's 20 proxy/mini-apps and
// 3 reference benchmarks (Sec. II-B) is re-implemented as a ProxyKernel:
// a self-contained, instrumented, self-verifying computational kernel.
//
// A kernel run really executes the computation (on the host, at a reduced
// input scale chosen to finish in well under a second), counts its
// operations through the counters substrate, verifies its own result, and
// reports a WorkloadMeasurement whose op counts are extrapolated to the
// paper's documented input scale via the kernel's analytic complexity
// ratio (`ops_scale_to_paper`). Working sets and access-pattern
// footprints are reported at *paper scale*, because they are what the
// machine model's capacity decisions (does it fit MCDRAM?) depend on.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kernels/workload.hpp"

namespace fpr {
class ExecutionContext;
}

namespace fpr::kernels {

/// Benchmark suite of origin (paper Sec. II-B).
enum class Suite { ecp, riken, reference };

/// Scientific/engineering domain (paper Table II).
enum class Domain {
  physics,
  bioscience,
  physics_bioscience,
  physics_chemistry,
  material_science,
  geoscience,
  math_cs,
  engineering,
  chemistry,
  lattice_qcd,
  reference
};

/// Compute pattern (paper Table II, classifiers of Hashimoto et al.).
enum class ComputePattern {
  stencil,
  dense_matrix,
  sparse_matrix,
  n_body,
  irregular,
  fft,
  stream,
  io
};

[[nodiscard]] std::string_view to_string(Suite s);
[[nodiscard]] std::string_view to_string(Domain d);
[[nodiscard]] std::string_view to_string(ComputePattern p);

/// Static identification of a kernel (one row of Table II).
struct KernelInfo {
  std::string name;     ///< "Algebraic multi-grid"
  std::string abbrev;   ///< "AMG"
  Suite suite = Suite::ecp;
  Domain domain = Domain::physics;
  ComputePattern pattern = ComputePattern::stencil;
  std::string language;    ///< original implementation language (Table II)
  std::string paper_input; ///< the input documented in Sec. II-B
};

/// Execution configuration for a kernel run.
struct RunConfig {
  /// Worker threads to use (0 = all available).
  unsigned threads = 0;
  /// Input scale multiplier relative to the kernel's standard reduced
  /// input; tests use < 1, the microbenches may use > 1. Must be > 0.
  double scale = 1.0;
  /// PRNG seed for synthetic inputs (fixed default => repeatable runs).
  std::uint64_t seed = 42;
};

class ProxyKernel {
 public:
  virtual ~ProxyKernel() = default;

  [[nodiscard]] virtual const KernelInfo& info() const = 0;

  /// Execute the kernel (init -> assayed solver -> verify) inside `ctx`
  /// and report. The run parallelizes on the context's pool and counts
  /// into the context's sink, so concurrent runs in separate contexts
  /// are fully isolated. Throws std::runtime_error if self-verification
  /// fails.
  [[nodiscard]] virtual WorkloadMeasurement run(
      ExecutionContext& ctx, const RunConfig& cfg) const = 0;

  /// Convenience: run inside a fresh private context sized to
  /// cfg.threads. The context (and its worker pool) lives for this one
  /// call — callers running kernels repeatedly should construct one
  /// ExecutionContext and use the overload above, as methodology's
  /// repeat loops do.
  [[nodiscard]] WorkloadMeasurement run(const RunConfig& cfg) const;
};

/// All kernels in the paper's presentation order (AMG .. HPL, HPCG,
/// BabelStream-2GiB, BabelStream-14GiB).
std::vector<std::unique_ptr<ProxyKernel>> make_all();

/// Factory by abbreviation ("AMG", "HPL", ...). Throws on unknown names.
std::unique_ptr<ProxyKernel> make(std::string_view abbrev);

/// Abbreviations in paper order.
std::vector<std::string> all_abbrevs();

}  // namespace fpr::kernels
