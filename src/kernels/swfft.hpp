// SWFFT (FFT): the 3-D FFT compute kernel of the HACC cosmology code
// (Sec. II-B1k) — one performance-critical part of HACC's Poisson
// solver. Paper input: 32 repetitions on a 128^3 grid. Re-implemented
// as an iterative radix-2 complex FFT applied along each dimension
// (pencil order), with bit-reversal index work counted as the integer
// component (Table IV: INT ~3.3x FP64).
#pragma once

#include "kernels/kernel_base.hpp"

namespace fpr::kernels {

class SwFft final : public KernelBase {
 public:
  SwFft();

  using ProxyKernel::run;
  [[nodiscard]] WorkloadMeasurement run(
      ExecutionContext& ctx, const RunConfig& cfg) const override;

  static constexpr std::uint64_t kPaperDim = 128;
  static constexpr int kPaperReps = 32;
};

}  // namespace fpr::kernels
