#include "kernels/ngsa.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <numeric>
#include <vector>

#include "common/rng.hpp"

namespace fpr::kernels {

namespace {

constexpr std::uint64_t kRunGenome = 200000;  // bases at scale 1
constexpr std::uint64_t kRunReads = 1200;
constexpr std::uint64_t kReadLen = 80;
constexpr std::uint64_t kSeedLen = 20;
constexpr int kBand = 5;

constexpr double kPaperGenome = 3.1e9;  // human-genome scale
constexpr double kPaperReads = 1.0e6;

// Pack kSeedLen 2-bit bases starting at genome[i] into a 64-bit key.
std::uint64_t seed_key(const std::vector<std::uint8_t>& g, std::uint64_t i) {
  std::uint64_t key = 0;
  for (std::uint64_t k = 0; k < kSeedLen; ++k) {
    key = (key << 2) | g[i + k];
  }
  return key;
}

}  // namespace

Ngsa::Ngsa()
    : KernelBase(KernelInfo{
          .name = "Next-Gen Sequencing Analyzer",
          .abbrev = "NGSA",
          .suite = Suite::riken,
          .domain = Domain::bioscience,
          .pattern = ComputePattern::irregular,
          .language = "C",
          .paper_input = "pre-generated pseudo-genome (ngsa-dummy)",
      }) {}

WorkloadMeasurement Ngsa::run(ExecutionContext& ctx,
                                     const RunConfig& cfg) const {
  const std::uint64_t glen = scaled_n(kRunGenome, cfg.scale);
  const std::uint64_t nreads = scaled_n(kRunReads, cfg.scale);
  const unsigned workers =
      cfg.threads == 0 ? ctx.concurrency() : cfg.threads;

  // Pseudo-genome (2-bit bases) and planted reads with point mutations.
  Xoshiro256 rng(cfg.seed);
  std::vector<std::uint8_t> genome(glen);
  for (auto& b : genome) b = static_cast<std::uint8_t>(rng.below(4));
  struct Read {
    std::vector<std::uint8_t> bases;
    std::uint64_t origin;
  };
  std::vector<Read> reads(nreads);
  for (auto& r : reads) {
    r.origin = rng.below(glen - kReadLen - 1);
    r.bases.assign(genome.begin() + static_cast<std::ptrdiff_t>(r.origin),
                   genome.begin() +
                       static_cast<std::ptrdiff_t>(r.origin + kReadLen));
    // Two point mutations outside the seed region.
    for (int m = 0; m < 2; ++m) {
      const std::uint64_t pos = kSeedLen + rng.below(kReadLen - kSeedLen);
      r.bases[pos] = static_cast<std::uint8_t>((r.bases[pos] + 1) & 3u);
    }
  }

  std::atomic<std::uint64_t> aligned_correct{0}, aligned_total{0};

  const auto rec = assayed(ctx, [&] {
    // --- Index construction: sorted array of (seed key, position).
    std::vector<std::pair<std::uint64_t, std::uint32_t>> index;
    index.reserve(glen - kSeedLen);
    for (std::uint64_t i = 0; i + kSeedLen < glen; ++i) {
      index.emplace_back(seed_key(genome, i), static_cast<std::uint32_t>(i));
    }
    std::sort(index.begin(), index.end());
    counters::add_int(static_cast<std::uint64_t>(
        static_cast<double>(index.size()) *
        (2 * kSeedLen + 3 * std::log2(static_cast<double>(index.size())))));
    counters::add_branch(static_cast<std::uint64_t>(
        static_cast<double>(index.size()) *
        std::log2(static_cast<double>(index.size()))));
    counters::add_read_bytes(index.size() * 12 * 2);
    counters::add_write_bytes(index.size() * 12);

    // --- Alignment: seed lookup + banded edit-distance extension.
    ctx.parallel_for_n(
        workers, nreads, [&](std::size_t lo, std::size_t hi, unsigned) {
          std::uint64_t iops = 0, branches = 0, bytes = 0;
          std::uint64_t correct = 0, total = 0;
          for (std::size_t ridx = lo; ridx < hi; ++ridx) {
            const Read& rd = reads[ridx];
            std::uint64_t key = 0;
            for (std::uint64_t k = 0; k < kSeedLen; ++k) {
              key = (key << 2) | rd.bases[k];
            }
            iops += 2 * kSeedLen;
            // Binary search for the seed.
            auto it = std::lower_bound(
                index.begin(), index.end(),
                std::make_pair(key, std::uint32_t{0}));
            iops += 3 * 20;
            branches += 20;
            bytes += 20 * 12;
            bool found = false;
            std::uint64_t best_pos = 0;
            int best_score = -1;
            for (; it != index.end() && it->first == key; ++it) {
              const std::uint64_t pos = it->second;
              if (pos + kReadLen > glen) continue;
              // Banded alignment of the read tail against the genome.
              int score = 0;
              for (std::uint64_t k = kSeedLen; k < kReadLen; ++k) {
                int best_k = -1000000;
                for (int b = -kBand; b <= kBand; ++b) {
                  const std::int64_t gp =
                      static_cast<std::int64_t>(pos + k) + b;
                  if (gp < 0 || gp >= static_cast<std::int64_t>(glen)) {
                    continue;
                  }
                  const int m =
                      genome[static_cast<std::uint64_t>(gp)] == rd.bases[k]
                          ? 2
                          : -1;
                  best_k = std::max(best_k, m - std::abs(b));
                  iops += 8;
                  ++branches;
                }
                score += best_k;
                bytes += (2 * kBand + 1) * 2;
              }
              if (score > best_score) {
                best_score = score;
                best_pos = pos;
                found = true;
              }
              iops += 6;
            }
            ++total;
            if (found && best_pos == rd.origin) ++correct;
          }
          counters::add_int(iops);
          counters::add_branch(branches);
          counters::add_read_bytes(bytes);
          aligned_correct += correct;
          aligned_total += total;
        });
  });

  // Verification: the planted reads must map back to their origins
  // (mutations are outside the exact-match seed).
  require(aligned_total.load() == nreads, "all reads processed");
  require(aligned_correct.load() >= nreads * 95 / 100,
          "planted reads align to planted positions");

  // Anchored on Table IV's 64.2 Gop INT (BDW): the full analyzer
  // pipeline's work per read is not derivable from the input.
  const double ops_scale =
      6.42e10 / std::max(1.0, static_cast<double>(rec.ops().int_ops));
  const auto paper_ws =
      static_cast<std::uint64_t>(kPaperGenome / 4.0 + kPaperGenome * 12);

  memsim::AccessPatternSpec access;
  memsim::GatherPattern gp;
  gp.table_bytes = static_cast<std::uint64_t>(3.1e9);
  gp.elem_bytes = 8;
  gp.sequential_fraction = 0.35;
  access.components.push_back({gp, 1.0});

  KernelTraits traits;
  traits.vec_eff = 0.05;  // calibrated: Table IV achieved rate
  traits.int_eff = 0.00046;
  traits.phi_vec_penalty = 1.0;   // Table IV: BDW-vs-KNL efficiency ratio
  traits.int_lane_inflation = 1.0;  // SDE lane-granular int counting
                            // Table IV: 0.6 Gop/s effective on BDW)
  traits.serial_fraction = 0.05;
  traits.latency_dep_fraction = 0.12;
  traits.phi_scalar_penalty = 16.0;  // paper: 7.8x slower on KNL than BDW
                                    // despite 2.7x the cores

  return finish_measurement(info(), rec, ops_scale, paper_ws, access, traits,
                            static_cast<double>(aligned_correct.load()));
}

}  // namespace fpr::kernels
