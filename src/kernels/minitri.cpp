#include "kernels/minitri.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace fpr::kernels {

namespace {

constexpr std::uint64_t kRunVerts = 4000;
constexpr std::uint64_t kBand = 24;  // banded connectivity (FE matrix-like)
constexpr double kPaperVerts = 28924;   // BCSSTK30 order
constexpr double kPaperNnz = 2043492;   // BCSSTK30 entries

// BCSSTK30 is a structural-engineering stiffness matrix: banded with
// dense local blocks. A banded graph with overlapping cliques reproduces
// both the degree distribution and a high triangle density.
struct Graph {
  std::vector<std::uint64_t> offsets;
  std::vector<std::uint32_t> adj;  // sorted neighbour lists
  std::uint64_t n = 0;

  [[nodiscard]] std::uint64_t edges() const { return adj.size() / 2; }
};

Graph build_banded(std::uint64_t n, std::uint64_t band) {
  Graph g;
  g.n = n;
  g.offsets.reserve(n + 1);
  g.offsets.push_back(0);
  for (std::uint64_t v = 0; v < n; ++v) {
    const std::uint64_t lo = v > band ? v - band : 0;
    const std::uint64_t hi = std::min(n - 1, v + band);
    for (std::uint64_t u = lo; u <= hi; ++u) {
      if (u != v) g.adj.push_back(static_cast<std::uint32_t>(u));
    }
    g.offsets.push_back(g.adj.size());
  }
  return g;
}

// Analytic triangle count of the banded graph: a triple (i<j<k) is a
// triangle iff k-i <= band. Count = sum over span s=2..band of (s-1)
// triples per base vertex i (i from 0..n-1-s).
std::uint64_t banded_triangles(std::uint64_t n, std::uint64_t band) {
  std::uint64_t t = 0;
  for (std::uint64_t s = 2; s <= band && s < n; ++s) {
    t += (n - s) * (s - 1);
  }
  return t;
}

}  // namespace

MiniTri::MiniTri()
    : KernelBase(KernelInfo{
          .name = "MiniTri",
          .abbrev = "MTri",
          .suite = Suite::ecp,
          .domain = Domain::math_cs,
          .pattern = ComputePattern::irregular,
          .language = "C++",
          .paper_input = "BCSSTK30 triangle detection + clique bound",
      }) {}

WorkloadMeasurement MiniTri::run(ExecutionContext& ctx,
                                        const RunConfig& cfg) const {
  const std::uint64_t n = scaled_n(kRunVerts, cfg.scale);
  const Graph g = build_banded(n, kBand);
  const unsigned workers =
      cfg.threads == 0 ? ctx.concurrency() : cfg.threads;

  std::atomic<std::uint64_t> triangles{0};
  std::atomic<std::uint64_t> max_tri_per_edge{0};

  const auto rec = assayed(ctx, [&] {
    // Edge-iterator triangle counting with sorted-list intersection;
    // each triangle is found once via the u < v < w ordering.
    ctx.parallel_for_n(
        workers, g.n, [&](std::size_t lo, std::size_t hi, unsigned) {
          std::uint64_t local = 0, iops = 0, branches = 0, best_edge = 0;
          for (std::size_t u = lo; u < hi; ++u) {
            const auto* ubeg = &g.adj[g.offsets[u]];
            const auto* uend = &g.adj[g.offsets[u + 1]];
            for (const auto* pv = ubeg; pv != uend; ++pv) {
              const std::uint32_t v = *pv;
              if (v <= u) continue;
              // Intersect adj(u) and adj(v), counting w > v.
              const auto* pa = pv + 1;  // neighbours of u greater than v
              const auto* pb = &g.adj[g.offsets[v]];
              const auto* eb = &g.adj[g.offsets[v + 1]];
              std::uint64_t edge_tri = 0;
              while (pa != uend && pb != eb) {
                iops += 3;
                ++branches;
                if (*pa < *pb) {
                  ++pa;
                } else if (*pb < *pa) {
                  ++pb;
                } else {
                  if (*pa > v) ++edge_tri;
                  ++pa;
                  ++pb;
                }
              }
              local += edge_tri;
              best_edge = std::max(best_edge, edge_tri);
              iops += 8;
            }
          }
          counters::add_int(iops);
          counters::add_branch(branches);
          counters::add_read_bytes(iops * 4);
          triangles += local;
          std::uint64_t seen = max_tri_per_edge.load();
          while (best_edge > seen &&
                 !max_tri_per_edge.compare_exchange_weak(seen, best_edge)) {
          }
        });
  });

  const std::uint64_t expected = banded_triangles(n, kBand);
  require(triangles.load() == expected, "triangle count matches closed form");
  // Largest-clique bound (miniTri's second output): a clique of size k
  // has edges carrying k-2 triangles; bound = max per-edge triangles + 2.
  const std::uint64_t clique_bound = max_tri_per_edge.load() + 2;
  require(clique_bound >= kBand / 2, "clique bound sane for banded graph");

  // Anchored on Table IV's 118.26 Gop INT: miniTri's task-based
  // linear-algebra formulation does far more integer work than a plain
  // sorted-intersection count on the same graph.
  const double ops_scale =
      1.1826e11 / std::max(1.0, static_cast<double>(rec.ops().int_ops));
  const auto paper_ws = static_cast<std::uint64_t>(kPaperNnz * 4.0 * 1.2);

  memsim::AccessPatternSpec access;
  memsim::GatherPattern gp;
  gp.table_bytes = paper_ws;
  gp.elem_bytes = 4;
  gp.sequential_fraction = 0.6;  // sorted adjacency scans
  access.components.push_back({gp, 1.0});

  KernelTraits traits;
  traits.vec_eff = 0.05;  // calibrated: Table IV achieved rate
  traits.int_eff = 0.016;
  traits.phi_vec_penalty = 1.0;   // Table IV: BDW-vs-KNL efficiency ratio
  traits.int_lane_inflation = 1.0;  // SDE lane-granular int counting
  traits.serial_fraction = 0.02;
  traits.latency_dep_fraction = 0.03;
  traits.phi_scalar_penalty = 2.6;  // in-order cores on branchy merges

  return finish_measurement(info(), rec, ops_scale, paper_ws, access, traits,
                            static_cast<double>(triangles.load()));
}

}  // namespace fpr::kernels
