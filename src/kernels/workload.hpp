// Workload descriptions: what a proxy kernel *did* (measured operation
// counts, traffic, working set) plus its static traits (vectorization
// efficiency, serial fraction, latency sensitivity). These are the inputs
// the execution-time model combines with a CpuSpec.
//
// This lives in kernels/ (it moved from model/ when the layering gate
// landed): a kernel *produces* a WorkloadMeasurement, the model layer
// above *consumes* it, so the type belongs to the producer's layer —
// otherwise every kernel would have to include model/ headers, an
// upward edge the architecture DAG forbids. The fpr::model aliases at
// the bottom keep the established spelling for the consumers.
#pragma once

#include <cstdint>
#include <string>

#include "counters/op_tally.hpp"
#include "memsim/trace_gen.hpp"

namespace fpr::kernels {

/// Per-architecture-family adjustments to the measured operation counts.
/// The paper observes a few proxies execute materially different op
/// totals on Phi vs BDW (Sec. IV-B: Laghos runs ~2x the FP64 ops on
/// KNL/KNM; Sec. IV-A: Intel's HPCG binary for Phi issues far more
/// integer ops). Kernels that exhibit this carry the multiplier here.
struct PhiOpAdjust {
  double fp64 = 1.0;
  double fp32 = 1.0;
  double int_ops = 1.0;
};

/// Static characteristics of a kernel that the model cannot derive from
/// counts alone. One record per kernel; values are calibrated once
/// against the paper's Table IV and documented in model/calibration.
struct KernelTraits {
  /// Fraction of FP peak the kernel's hot loops reach when fully
  /// compute-bound (vectorization + ILP quality).
  double vec_eff = 0.3;
  /// Same for the integer pipes.
  double int_eff = 0.3;
  /// Fraction of off-chip references that are serialized (dependent
  /// loads: pointer chasing, fine-grain gather). Drives the latency term.
  double latency_dep_fraction = 0.0;
  /// Fraction of total kernel CPU work that does not parallelize
  /// (Amdahl). Scales with 1/f like all core work.
  double serial_fraction = 0.01;
  /// Bytes written to storage by the kernel (MACSio). The I/O path is
  /// CPU-frequency bound (the paper's Sec. IV-E observation).
  double io_write_bytes = 0.0;
  /// Phi-specific op-count multipliers (see PhiOpAdjust).
  PhiOpAdjust phi_adjust{};
  /// Penalty multiplier for narrow in-order Phi cores on branchy scalar
  /// code (NGSA et al. run far *slower* on Phi than BDW despite more
  /// cores). Applies to the integer/scalar and I/O terms.
  double phi_scalar_penalty = 1.0;
  /// FP-side efficiency divisor on the Phis: beyond the global
  /// front-end derate (CpuSpec::fpu_issue_eff), many kernels lose
  /// additional ground on the 2-wide Silvermont-based cores (gathers,
  /// short trip counts, unaligned accesses). Calibrated per kernel from
  /// Table IV's achieved-rate ratio between BDW and KNL.
  double phi_vec_penalty = 1.0;
  /// Extra latency multiplier on the Phis for dependent access chains.
  /// Cache-mode misses pay MCDRAM tag probes before DDR, and the in-order
  /// cores cannot speculate past a serial sweep — HPCG's defining problem
  /// on these machines (Sec. IV-C/IV-E).
  double phi_latency_penalty = 1.0;
  /// True only for kernels whose FP32 work flows through MKL-DNN's
  /// VNNI FMA-paired path (CANDLE-class DL workloads). Generic FP32
  /// vector code cannot dual-pump KNM's VNNI units and sees only the
  /// single-issue SP rate.
  bool uses_vnni = false;
  /// SDE counts vector-integer *lanes* (the paper notes granularity "as
  /// low as 1-bit per operand"), inflating the Fig. 1 integer tallies
  /// far beyond issued uops. Kernels that report lane-inflated counts
  /// set the inflation factor here so the time model can divide it back
  /// out (otherwise the int term would exceed hardware issue limits).
  double int_lane_inflation = 1.0;
};

/// The measured facts about one kernel execution (assay region only).
struct WorkloadMeasurement {
  std::string name;                  ///< kernel short name, e.g. "AMG"
  counters::OpTally ops;             ///< measured operation counts
  double host_seconds = 0.0;         ///< wall time of the assay region
  std::uint64_t working_set_bytes = 0;  ///< resident field data (total)
  memsim::AccessPatternSpec access;  ///< total-footprint access pattern
  KernelTraits traits;
  bool verified = false;             ///< kernel self-check passed
  double checksum = 0.0;
  /// Factor by which the measured (run-scale) counts were multiplied to
  /// reach paper scale; divide `ops` by it to recover raw counts.
  double ops_scale_to_paper = 1.0;

  /// Op counts as seen on a machine (applies Phi adjustments).
  [[nodiscard]] counters::OpTally ops_on(bool is_phi) const {
    if (!is_phi) return ops;
    counters::OpTally t = ops;
    t.fp64 = static_cast<std::uint64_t>(
        static_cast<double>(t.fp64) * traits.phi_adjust.fp64);
    t.fp32 = static_cast<std::uint64_t>(
        static_cast<double>(t.fp32) * traits.phi_adjust.fp32);
    t.int_ops = static_cast<std::uint64_t>(
        static_cast<double>(t.int_ops) * traits.phi_adjust.int_ops);
    return t;
  }
};

}  // namespace fpr::kernels

namespace fpr::model {
// The model layer consumes these types under its own name — the
// established spelling throughout exec_model/roofline/memprofile and
// the tests. Aliases, not copies: one definition, owned by kernels.
using kernels::KernelTraits;
using kernels::PhiOpAdjust;
using kernels::WorkloadMeasurement;
}  // namespace fpr::model
