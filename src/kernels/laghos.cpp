#include "kernels/laghos.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace fpr::kernels {

namespace {

constexpr std::uint64_t kRunZones = 96;  // zones per dimension at scale 1
constexpr int kRunSteps = 12;
constexpr double kPaperZones = 512;  // 2-D Sedov default mesh class
constexpr double kPaperSteps = 600;
constexpr double kGamma = 1.4;

// Quadrature points per zone (Q2 elements in Laghos default).
constexpr int kQuad = 9;

}  // namespace

Laghos::Laghos()
    : KernelBase(KernelInfo{
          .name = "Laghos",
          .abbrev = "LAGO",
          .suite = Suite::ecp,
          .domain = Domain::physics,
          .pattern = ComputePattern::irregular,
          .language = "C++",
          .paper_input = "2-D Sedov blast wave, default settings",
      }) {}

WorkloadMeasurement Laghos::run(ExecutionContext& ctx,
                                       const RunConfig& cfg) const {
  const std::uint64_t nz = scaled_dim(kRunZones, std::pow(cfg.scale, 1.5));
  const std::uint64_t nn = nz + 1;  // node grid
  const std::uint64_t zones = nz * nz;
  const std::uint64_t nodes = nn * nn;
  const unsigned workers =
      cfg.threads == 0 ? ctx.concurrency() : cfg.threads;

  // Staggered scheme: thermodynamics on zones, kinematics on nodes.
  std::vector<double> rho(zones, 1.0), e(zones, 1e-6), zvol(zones);
  std::vector<double> nx(nodes), ny(nodes), vx(nodes, 0.0), vy(nodes, 0.0);
  std::vector<double> fx(nodes), fy(nodes), nmass(nodes, 0.0);
  // Corner connectivity: zone -> 4 node ids (the FE indirection).
  std::vector<std::uint32_t> conn(zones * 4);

  const double h = 1.0 / static_cast<double>(nz);
  for (std::uint64_t j = 0; j < nn; ++j) {
    for (std::uint64_t i = 0; i < nn; ++i) {
      nx[i + nn * j] = static_cast<double>(i) * h;
      ny[i + nn * j] = static_cast<double>(j) * h;
    }
  }
  for (std::uint64_t j = 0; j < nz; ++j) {
    for (std::uint64_t i = 0; i < nz; ++i) {
      const std::uint64_t z = i + nz * j;
      conn[4 * z + 0] = static_cast<std::uint32_t>(i + nn * j);
      conn[4 * z + 1] = static_cast<std::uint32_t>(i + 1 + nn * j);
      conn[4 * z + 2] = static_cast<std::uint32_t>(i + 1 + nn * (j + 1));
      conn[4 * z + 3] = static_cast<std::uint32_t>(i + nn * (j + 1));
    }
  }
  // Sedov: all the energy in the corner zone.
  e[0] = 1.0 / (h * h);

  auto zone_volume = [&](std::uint64_t z) {
    const auto* c = &conn[4 * z];
    const double x0 = nx[c[0]], y0 = ny[c[0]];
    const double x1 = nx[c[1]], y1 = ny[c[1]];
    const double x2 = nx[c[2]], y2 = ny[c[2]];
    const double x3 = nx[c[3]], y3 = ny[c[3]];
    return 0.5 * std::abs((x2 - x0) * (y3 - y1) - (x3 - x1) * (y2 - y0));
  };

  for (std::uint64_t z = 0; z < zones; ++z) zvol[z] = zone_volume(z);
  for (std::uint64_t z = 0; z < zones; ++z) {
    for (int k = 0; k < 4; ++k) nmass[conn[4 * z + k]] += 0.25 * rho[z] * zvol[z];
  }

  double total_e0 = 0.0;
  for (std::uint64_t z = 0; z < zones; ++z) total_e0 += rho[z] * zvol[z] * e[z];

  double dt = 1e-4;
  const auto rec = assayed(ctx, [&] {
    for (int step = 0; step < kRunSteps; ++step) {
      // --- Corner-force assembly: per zone, loop quadrature points,
      // gather node coords/velocities, compute pressure + artificial
      // viscosity, scatter forces. This is the Laghos hot loop.
      std::fill(fx.begin(), fx.end(), 0.0);
      std::fill(fy.begin(), fy.end(), 0.0);
      // Zones are processed in stripes so force scatter does not race.
      const std::uint64_t stripes = 2;
      for (std::uint64_t par = 0; par < stripes; ++par) {
        ctx.parallel_for_n(
            workers, nz / stripes + 1,
            [&](std::size_t lo, std::size_t hi, unsigned) {
              std::uint64_t fp = 0, iops = 0;
              for (std::size_t jj = lo; jj < hi; ++jj) {
                const std::uint64_t j = jj * stripes + par;
                if (j >= nz) continue;
                for (std::uint64_t i = 0; i < nz; ++i) {
                  const std::uint64_t z = i + nz * j;
                  const auto* c = &conn[4 * z];
                  iops += 10;  // connectivity gather indices
                  const double vol = zone_volume(z);
                  fp += 10;
                  const double press =
                      (kGamma - 1.0) * rho[z] * e[z];
                  fp += 3;
                  // Quadrature loop: accumulate corner forces from the
                  // pressure gradient (Q2: 9 points).
                  for (int q = 0; q < kQuad; ++q) {
                    const double w = 0.25 / kQuad;
                    for (int k = 0; k < 4; ++k) {
                      const std::uint32_t node = c[k];
                      const double sx =
                          (k == 0 || k == 3) ? -1.0 : 1.0;
                      const double sy = (k < 2) ? -1.0 : 1.0;
                      fx[node] += w * press * sx * std::sqrt(vol);
                      fy[node] += w * press * sy * std::sqrt(vol);
                      fp += 8;
                      iops += 6;  // scatter index arithmetic
                    }
                  }
                  (void)vol;
                }
              }
              counters::add_fp64(fp);
              // MFEM-style FE gather/scatter issues lane-granular vector
              // integer work far beyond the FP tally (Table IV: LAGO INT
              // ~12x FP64 on the Phis, ~9.5x on BDW).
              counters::add_int(iops * 15);
              counters::add_read_bytes(fp * 6);
              counters::add_write_bytes(fp * 3);
            });
      }
      // --- Node update (kinematics).
      std::uint64_t fp = 0;
      for (std::uint64_t nd = 0; nd < nodes; ++nd) {
        if (nmass[nd] <= 0.0) continue;
        vx[nd] += dt * fx[nd] / nmass[nd];
        vy[nd] += dt * fy[nd] / nmass[nd];
        nx[nd] += dt * vx[nd];
        ny[nd] += dt * vy[nd];
        fp += 8;
      }
      counters::add_fp64(fp);
      counters::add_branch(nodes);
      counters::add_read_bytes(nodes * 48);
      counters::add_write_bytes(nodes * 32);
      // --- Zone update (thermodynamics: compression work).
      std::uint64_t fp2 = 0;
      for (std::uint64_t z = 0; z < zones; ++z) {
        const double newvol = zone_volume(z);
        const double dv = newvol - zvol[z];
        const double press = (kGamma - 1.0) * rho[z] * e[z];
        const double mass = rho[z] * zvol[z];
        e[z] = std::max(1e-12, e[z] - press * dv / std::max(mass, 1e-12));
        rho[z] = mass / std::max(newvol, 1e-12);
        zvol[z] = newvol;
        fp2 += 22;
      }
      counters::add_fp64(fp2);
      counters::add_int(8 * zones);
      counters::add_read_bytes(zones * 64);
      counters::add_write_bytes(zones * 24);
      dt = std::min(1e-3, dt * 1.05);  // gentle CFL ramp
    }
  });

  // Verification: mass conservation and finite, positive energy field.
  double total_mass = 0.0, total_e = 0.0;
  for (std::uint64_t z = 0; z < zones; ++z) {
    total_mass += rho[z] * zvol[z];
    total_e += rho[z] * zvol[z] * e[z];
    require(rho[z] > 0.0 && std::isfinite(e[z]), "positive finite state");
  }
  require_close(total_mass, 1.0, 1e-6, "mass conserved");
  // The explicit scheme is not exactly conservative; allow 2% drift.
  require(total_e <= total_e0 * 1.02, "internal energy bounded");

  const double ops_scale = (kPaperZones * kPaperZones * kPaperSteps) /
                           (static_cast<double>(zones) * kRunSteps);
  const auto paper_ws = static_cast<std::uint64_t>(
      kPaperZones * kPaperZones * (8.0 * 12 + 16));

  memsim::AccessPatternSpec access;
  memsim::GatherPattern gp;
  gp.table_bytes = paper_ws / 2;
  gp.elem_bytes = 8;
  gp.sequential_fraction = 0.5;  // structured traversal, indirect corners
  access.components.push_back({gp, 1.0});

  KernelTraits traits;
  traits.vec_eff = 0.0126;  // calibrated: Table IV achieved rate
                          // ("leaves room for performance tuning")
  traits.int_eff = 0.25;
  traits.phi_vec_penalty = 2.8;   // Table IV: BDW-vs-KNL efficiency ratio
  traits.int_lane_inflation = 15.0;  // SDE lane-granular int counting
  traits.serial_fraction = 0.03;
  traits.latency_dep_fraction = 0.05;
  // Sec. IV-B: Laghos executes ~2x the FP64 ops on KNL/KNM and runs about
  // twice as long — flop/s roughly equal, t2sol differs.
  traits.phi_adjust.fp64 = 1.92;
  traits.phi_adjust.int_ops = 2.5;

  return finish_measurement(info(), rec, ops_scale, paper_ws, access, traits,
                            total_e);
}

}  // namespace fpr::kernels
