// mVMC (many-variable Variational Monte Carlo, Sec. II-B2d): quantum
// lattice-model simulation. The computational core is dense linear
// algebra on the Slater matrix: Metropolis moves evaluate determinant
// ratios (a dot product against the maintained inverse) and accepted
// moves apply rank-1 Sherman-Morrison updates (2N^2 flops) — exactly the
// dense FP64 profile of Table IV (1142 GFP64).
#pragma once

#include "kernels/kernel_base.hpp"

namespace fpr::kernels {

class MVmc final : public KernelBase {
 public:
  MVmc();

  using ProxyKernel::run;
  [[nodiscard]] WorkloadMeasurement run(
      ExecutionContext& ctx, const RunConfig& cfg) const override;

  static constexpr std::uint64_t kPaperN = 512;      // electrons
  static constexpr std::uint64_t kPaperSweeps = 4000;
};

}  // namespace fpr::kernels
