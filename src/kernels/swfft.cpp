#include "kernels/swfft.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/rng.hpp"

namespace fpr::kernels {

namespace {

constexpr std::uint64_t kRunDim = 32;  // must be a power of two
constexpr int kRunReps = 2;

using cplx = std::complex<double>;

// In-place radix-2 DIT FFT of length n (power of two). Returns
// (fp_ops, int_ops) counted at lane granularity.
std::pair<std::uint64_t, std::uint64_t> fft1d(cplx* a, std::uint64_t n,
                                              bool inverse) {
  std::uint64_t fp = 0, iops = 0;
  // Bit reversal permutation.
  const unsigned bits = static_cast<unsigned>(std::countr_zero(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t j = 0;
    for (unsigned bctr = 0; bctr < bits; ++bctr) {
      j |= ((i >> bctr) & 1u) << (bits - 1 - bctr);
    }
    iops += 3 * bits + 2;
    if (j > i) std::swap(a[i], a[j]);
  }
  // Butterflies.
  const double sign = inverse ? 1.0 : -1.0;
  for (std::uint64_t len = 2; len <= n; len <<= 1) {
    const double ang = sign * 2.0 * std::numbers::pi /
                       static_cast<double>(len);
    const cplx wl(std::cos(ang), std::sin(ang));
    for (std::uint64_t i = 0; i < n; i += len) {
      cplx w(1.0, 0.0);
      for (std::uint64_t k = 0; k < len / 2; ++k) {
        const cplx u = a[i + k];
        const cplx v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wl;
        fp += 16;    // cmul(6) + 2 cadd(4) + twiddle update(6)
        iops += 12;  // index arithmetic per butterfly (strides, offsets)
      }
    }
  }
  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (std::uint64_t i = 0; i < n; ++i) a[i] *= inv;
    fp += 2 * n;
  }
  return {fp, iops};
}

}  // namespace

SwFft::SwFft()
    : KernelBase(KernelInfo{
          .name = "SWFFT",
          .abbrev = "FFT",
          .suite = Suite::ecp,
          .domain = Domain::physics,
          .pattern = ComputePattern::fft,
          .language = "C/Fortran",
          .paper_input = "32 reps of 3-D FFT on a 128^3 grid",
      }) {}

WorkloadMeasurement SwFft::run(ExecutionContext& ctx,
                                      const RunConfig& cfg) const {
  std::uint64_t d = kRunDim;
  // Snap the scaled dimension to a power of two.
  const std::uint64_t want = scaled_dim(kRunDim, cfg.scale);
  d = std::bit_floor(std::max<std::uint64_t>(want, 8));
  const std::uint64_t n = d * d * d;
  const unsigned workers =
      cfg.threads == 0 ? ctx.concurrency() : cfg.threads;

  AlignedBuffer<cplx> grid(n);
  Xoshiro256 rng(cfg.seed);
  for (auto& v : grid) v = cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
  std::vector<cplx> original(grid.begin(), grid.end());

  // Parseval reference: sum |x|^2.
  double sum2_in = 0.0;
  for (const auto& v : grid) sum2_in += std::norm(v);

  auto pass = [&](int dim, bool inverse) {
    // Apply 1-D FFTs along `dim` for all pencils, in parallel.
    ctx.parallel_for_n(
        workers, d * d, [&](std::size_t lo, std::size_t hi, unsigned) {
          std::vector<cplx> pencil(d);
          std::uint64_t fp = 0, iops = 0;
          for (std::size_t p = lo; p < hi; ++p) {
            const std::uint64_t s = p % d, t = p / d;
            // Gather the pencil.
            for (std::uint64_t i = 0; i < d; ++i) {
              std::uint64_t idx = 0;
              if (dim == 0) idx = i + d * (s + d * t);
              if (dim == 1) idx = s + d * (i + d * t);
              if (dim == 2) idx = s + d * (t + d * i);
              pencil[i] = grid[idx];
            }
            iops += 4 * d;
            const auto [f2, i2] = fft1d(pencil.data(), d, inverse);
            fp += f2;
            iops += i2;
            for (std::uint64_t i = 0; i < d; ++i) {
              std::uint64_t idx = 0;
              if (dim == 0) idx = i + d * (s + d * t);
              if (dim == 1) idx = s + d * (i + d * t);
              if (dim == 2) idx = s + d * (t + d * i);
              grid[idx] = pencil[i];
            }
            iops += 4 * d;
          }
          counters::add_fp64(fp);
          // Bit-reversal and stride arithmetic counted at vector-lane
          // granularity (Table IV: SWFFT INT ~3.3x FP64).
          counters::add_int(iops * 3);
          counters::add_read_bytes((hi - lo) * d * 32);
          counters::add_write_bytes((hi - lo) * d * 16);
        });
  };

  double sum2_freq = 0.0;
  const auto rec = assayed(ctx, [&] {
    for (int rep = 0; rep < kRunReps; ++rep) {
      for (int dim = 0; dim < 3; ++dim) pass(dim, false);
      if (rep == 0) {
        sum2_freq = 0.0;
        for (const auto& v : grid) sum2_freq += std::norm(v);
      }
      for (int dim = 0; dim < 3; ++dim) pass(dim, true);
    }
  });

  // Parseval: sum |X|^2 = N * sum |x|^2, and round-trip recovers input.
  require_close(sum2_freq, sum2_in * static_cast<double>(n), 1e-9,
                "Parseval identity");
  double max_err = 0.0;
  for (std::uint64_t i = 0; i < n; i += 41) {
    max_err = std::max(max_err, std::abs(grid[i] - original[i]));
  }
  require(max_err < 1e-9, "inverse FFT round trip");

  const double paper_vol = static_cast<double>(kPaperDim) * kPaperDim *
                           kPaperDim * 3.0 *
                           std::log2(static_cast<double>(kPaperDim)) *
                           kPaperReps * 2;
  const double run_vol = static_cast<double>(n) * 3.0 *
                         std::log2(static_cast<double>(d)) * kRunReps * 2;
  const double ops_scale = paper_vol / run_vol;
  const auto paper_ws = static_cast<std::uint64_t>(
      static_cast<double>(kPaperDim) * kPaperDim * kPaperDim * 16.0 * 2);

  memsim::AccessPatternSpec access;
  memsim::StridedPattern sp;  // transposed pencil passes
  sp.footprint_bytes = paper_ws;
  sp.stride_bytes = static_cast<std::uint32_t>(kPaperDim * 16);
  access.components.push_back({sp, 0.5});
  memsim::StreamPattern st;
  st.bytes_per_array = paper_ws / 2;
  st.arrays = 2;
  st.writes_per_iter = 1;
  access.components.push_back({st, 0.5});

  KernelTraits traits;
  traits.vec_eff = 0.035;  // calibrated: ~2.5x Table IV achieved rate;
                       // this kernel is memory-bound on BDW (high
                       // MBd in Table IV), so the memory term binds
  traits.int_eff = 0.40;
  traits.phi_vec_penalty = 3.2;   // Table IV: BDW-vs-KNL efficiency ratio
  traits.int_lane_inflation = 3.0;  // SDE lane-granular int counting
  traits.serial_fraction = 0.01;
  traits.latency_dep_fraction = 0.02;

  return finish_measurement(info(), rec, ops_scale, paper_ws, access, traits,
                            sum2_freq);
}

}  // namespace fpr::kernels
