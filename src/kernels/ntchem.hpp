// NTChem (NTCh): quantum-chemistry kernel (Sec. II-B2g) — the MP2
// (second-order Moller-Plesset) solver of the NTChem framework, paper
// test case H2O. The computational core is the AO->MO four-index
// integral transformation: a chain of dense GEMMs, followed by the MP2
// pair-energy sum. Verified by computing a sampled subset of transformed
// integrals directly from the quadruple contraction.
#pragma once

#include "kernels/kernel_base.hpp"

namespace fpr::kernels {

class NtChem final : public KernelBase {
 public:
  NtChem();

  using ProxyKernel::run;
  [[nodiscard]] WorkloadMeasurement run(
      ExecutionContext& ctx, const RunConfig& cfg) const override;

  static constexpr std::uint64_t kPaperBasis = 212;  // H2O aug-cc-pVQZ-ish
};

}  // namespace fpr::kernels
