// XSBench (XSBn): Monte-Carlo neutron-transport cross-section lookup
// proxy (Sec. II-B1l) for a Hoogenboom-Martin reactor. The kernel is
// the unionized-energy-grid lookup: binary search + per-nuclide gather +
// linear interpolation. Latency/gather dominated (paper: 93.7% back-end
// bound on KNL, L2 hit rate only 22%).
#pragma once

#include "kernels/kernel_base.hpp"

namespace fpr::kernels {

class XsBench final : public KernelBase {
 public:
  XsBench();

  using ProxyKernel::run;
  [[nodiscard]] WorkloadMeasurement run(
      ExecutionContext& ctx, const RunConfig& cfg) const override;

  static constexpr double kPaperLookups = 15e6;
  static constexpr std::uint64_t kPaperGrid = 11303;  // union grid points
  static constexpr std::uint64_t kPaperNuclides = 355;
};

}  // namespace fpr::kernels
