// High Performance Linpack (HPL): dense Ax=b via blocked right-looking LU
// with partial pivoting — the paper's compute-intensive reference
// (Sec. II-B3a, problem size 64,512). Our reduced run factorizes a
// smaller matrix with the identical algorithm and extrapolates the
// operation counts with the exact 2/3·n^3 complexity ratio.
#pragma once

#include "kernels/kernel_base.hpp"

namespace fpr::kernels {

class Hpl final : public KernelBase {
 public:
  Hpl();

  using ProxyKernel::run;
  [[nodiscard]] WorkloadMeasurement run(
      ExecutionContext& ctx, const RunConfig& cfg) const override;

  /// The paper's problem size.
  static constexpr std::uint64_t kPaperN = 64512;
};

}  // namespace fpr::kernels
