// NICAM (NICM): nonhydrostatic icosahedral atmospheric model proxy
// (Sec. II-B2e) — FVM dynamical core on icosahedral grids; the paper
// runs Jablonowski's baroclinic wave test (gl05rl00z40, 1 simulated
// day). Re-implemented as a flux-form advection + diffusion + Coriolis
// dynamical-core step over (columns x 40 levels) with an icosahedral-like
// 6-neighbour horizontal connectivity table.
#pragma once

#include "kernels/kernel_base.hpp"

namespace fpr::kernels {

class Nicam final : public KernelBase {
 public:
  Nicam();

  using ProxyKernel::run;
  [[nodiscard]] WorkloadMeasurement run(
      ExecutionContext& ctx, const RunConfig& cfg) const override;

  static constexpr std::uint64_t kPaperColumns = 10242;  // gl05
  static constexpr std::uint64_t kPaperLevels = 40;
  static constexpr int kPaperSteps = 720;  // 1 simulated day
};

}  // namespace fpr::kernels
