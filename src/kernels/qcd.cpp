#include "kernels/qcd.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <vector>

#include "common/rng.hpp"

namespace fpr::kernels {

namespace {

using cplx = std::complex<double>;

constexpr std::uint64_t kRunL = 8;  // 8^4 lattice at scale 1
constexpr int kRunIters = 12;
constexpr double kKappa = 0.12;  // hopping parameter (below critical)

// Site spinor: 4 spins x 3 colors = 12 complex. Link: 3x3 complex.
constexpr int kSpinor = 12;
constexpr int kLink = 9;

struct Lattice {
  std::uint64_t L;
  [[nodiscard]] std::uint64_t sites() const { return L * L * L * L; }
  [[nodiscard]] std::uint64_t idx(std::uint64_t x, std::uint64_t y,
                                  std::uint64_t z, std::uint64_t t) const {
    return x + L * (y + L * (z + L * t));
  }
  void coords(std::uint64_t s, std::uint64_t c[4]) const {
    c[0] = s % L;
    c[1] = (s / L) % L;
    c[2] = (s / (L * L)) % L;
    c[3] = s / (L * L * L);
  }
  [[nodiscard]] std::uint64_t shift(std::uint64_t s, int mu, int dir) const {
    std::uint64_t c[4];
    coords(s, c);
    c[mu] = (c[mu] + L + static_cast<std::uint64_t>(dir)) % L;
    return idx(c[0], c[1], c[2], c[3]);
  }
};

// 3x3 times 3-vector: out = U * v (or U^dag * v).
inline void su3_mul(const cplx* U, const cplx* v, cplx* out, bool dag) {
  for (int r = 0; r < 3; ++r) {
    cplx s = 0.0;
    for (int c = 0; c < 3; ++c) {
      s += (dag ? std::conj(U[c * 3 + r]) : U[r * 3 + c]) * v[c];
    }
    out[r] = s;
  }
}

}  // namespace

Qcd::Qcd()
    : KernelBase(KernelInfo{
          .name = "Lattice QCD",
          .abbrev = "QCD",
          .suite = Suite::riken,
          .domain = Domain::lattice_qcd,
          .pattern = ComputePattern::stencil,
          .language = "Fortran/C",
          .paper_input = "Class 2: 32^3 x 32 lattice",
      }) {}

WorkloadMeasurement Qcd::run(ExecutionContext& ctx,
                                    const RunConfig& cfg) const {
  Lattice lat{std::max<std::uint64_t>(4, scaled_dim(kRunL, cfg.scale))};
  const std::uint64_t ns = lat.sites();
  const unsigned workers =
      cfg.threads == 0 ? ctx.concurrency() : cfg.threads;

  // Gauge links: SU(3)-like unitary matrices built from random unitary
  // rotations close to identity (cold-start configuration with noise).
  Xoshiro256 rng(cfg.seed);
  std::vector<cplx> U(ns * 4 * kLink);
  for (std::uint64_t s = 0; s < ns; ++s) {
    for (int mu = 0; mu < 4; ++mu) {
      cplx* link = &U[(s * 4 + mu) * kLink];
      // Identity plus a small anti-Hermitian perturbation, then
      // Gram-Schmidt to restore (approximate) unitarity.
      cplx m[9];
      for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) {
          const double re = (i == j ? 1.0 : 0.0) + rng.uniform(-0.1, 0.1);
          const double im = rng.uniform(-0.1, 0.1);
          m[i * 3 + j] = cplx(re, im);
        }
      }
      // Orthonormalize rows.
      for (int r = 0; r < 3; ++r) {
        for (int p = 0; p < r; ++p) {
          cplx d = 0.0;
          for (int c = 0; c < 3; ++c) d += std::conj(m[p * 3 + c]) * m[r * 3 + c];
          for (int c = 0; c < 3; ++c) m[r * 3 + c] -= d * m[p * 3 + c];
        }
        double nrm = 0.0;
        for (int c = 0; c < 3; ++c) nrm += std::norm(m[r * 3 + c]);
        nrm = 1.0 / std::sqrt(nrm);
        for (int c = 0; c < 3; ++c) m[r * 3 + c] *= nrm;
      }
      std::copy(m, m + 9, link);
    }
  }

  // Wilson hop application: out = in - kappa * sum_mu [ (1 - g_mu) U_mu(s)
  // in(s+mu) + (1 + g_mu) U_mu^dag(s-mu) in(s-mu) ]. We use a simplified
  // spin structure (diagonal projectors) that preserves the stencil and
  // arithmetic shape.
  auto dslash = [&](const std::vector<cplx>& in, std::vector<cplx>& out) {
    ctx.parallel_for_n(
        workers, ns, [&](std::size_t lo, std::size_t hi, unsigned) {
          std::uint64_t fp = 0, iops = 0;
          cplx tmp[3], res[3];
          for (std::size_t s = lo; s < hi; ++s) {
            for (int spin = 0; spin < 4; ++spin) {
              cplx acc[3] = {in[s * kSpinor + spin * 3],
                             in[s * kSpinor + spin * 3 + 1],
                             in[s * kSpinor + spin * 3 + 2]};
              for (int mu = 0; mu < 4; ++mu) {
                const std::uint64_t fwd = lat.shift(s, mu, +1);
                const std::uint64_t bwd = lat.shift(s, mu, -1);
                iops += 30;  // 4-D neighbour index computation + gathers
                const double proj =
                    (spin + mu) % 2 == 0 ? 1.0 : 0.5;  // spin weight
                // Forward hop: U_mu(s) * psi(s+mu)
                su3_mul(&U[(s * 4 + mu) * kLink],
                        &in[fwd * kSpinor + spin * 3], tmp, false);
                for (int c = 0; c < 3; ++c) {
                  acc[c] -= kKappa * proj * tmp[c];
                }
                // Backward hop: U_mu^dag(s-mu) * psi(s-mu)
                su3_mul(&U[(bwd * 4 + mu) * kLink],
                        &in[bwd * kSpinor + spin * 3], res, true);
                for (int c = 0; c < 3; ++c) {
                  acc[c] -= kKappa * (1.5 - proj) * res[c];
                }
                fp += 2 * (66 + 24);  // two su3_mul + axpys, complex ops
              }
              for (int c = 0; c < 3; ++c) {
                out[s * kSpinor + spin * 3 + c] = acc[c];
              }
            }
            iops += 40;
          }
          counters::add_fp64(fp);
          // Lane-granular vector-int accounting of the 4-D gather index
          // arithmetic (Table IV: QCD INT ~6x FP64).
          counters::add_int(iops * 33);
          counters::add_branch(hi - lo);
          // Architectural loads: links (576 B) + 8 neighbour spinors per
          // site; register reuse keeps this well below the operand count.
          counters::add_read_bytes(fp / 2);
          counters::add_write_bytes((hi - lo) * kSpinor * 16);
        });
  };

  const std::uint64_t vec_len = ns * kSpinor;
  std::vector<cplx> b(vec_len), x(vec_len, 0.0), r(vec_len), p(vec_len),
      ap(vec_len), t(vec_len);
  for (auto& v : b) v = cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));

  auto dot_re = [&](const std::vector<cplx>& u2, const std::vector<cplx>& v2) {
    double s = 0.0;
    for (std::uint64_t i = 0; i < vec_len; ++i) {
      s += std::real(std::conj(u2[i]) * v2[i]);
    }
    counters::add_fp64(8 * vec_len);
    counters::add_read_bytes(32 * vec_len);
    return s;
  };
  // A = D^dag D approximated by applying dslash twice (our simplified D
  // is diagonally dominant and close to symmetric, so CG on the squared
  // operator converges like the normal-equations solve in the original).
  auto apply_A = [&](const std::vector<cplx>& in, std::vector<cplx>& out) {
    dslash(in, t);
    dslash(t, out);
  };

  double res0 = 0.0, res_final = 0.0;
  const auto rec = assayed(ctx, [&] {
    apply_A(x, ap);  // zero
    for (std::uint64_t i = 0; i < vec_len; ++i) r[i] = b[i] - ap[i];
    p = r;
    double rr = dot_re(r, r);
    res0 = std::sqrt(rr);
    for (int it = 0; it < kRunIters; ++it) {
      apply_A(p, ap);
      const double alpha = rr / dot_re(p, ap);
      for (std::uint64_t i = 0; i < vec_len; ++i) {
        x[i] += alpha * p[i];
        r[i] -= alpha * ap[i];
      }
      counters::add_fp64(8 * vec_len);
      const double rr_new = dot_re(r, r);
      const double beta = rr_new / rr;
      for (std::uint64_t i = 0; i < vec_len; ++i) p[i] = r[i] + beta * p[i];
      counters::add_fp64(4 * vec_len);
      counters::add_read_bytes(96 * vec_len);
      counters::add_write_bytes(48 * vec_len);
      rr = rr_new;
    }
    res_final = std::sqrt(rr);
  });

  require(res_final < 0.5 * res0, "CG residual reduced");
  require(std::isfinite(res_final), "finite residual");

  const double paper_sites = static_cast<double>(kPaperL) * kPaperL *
                             kPaperL * kPaperL;
  const double ops_scale = paper_sites / static_cast<double>(ns) *
                           static_cast<double>(kPaperIters) / kRunIters;
  const auto paper_ws = static_cast<std::uint64_t>(
      paper_sites * (4 * kLink + 8 * kSpinor) * 16.0);

  memsim::AccessPatternSpec access;
  memsim::StencilPattern st{.nx = kPaperL * 2, .ny = kPaperL * 2,
                            .nz = kPaperL * 8, .elem_bytes = 16, .radius = 1,
                            .full_box = false};
  access.components.push_back({st, 0.5});
  memsim::StreamPattern ls;  // link fields stream through
  ls.bytes_per_array =
      static_cast<std::uint64_t>(paper_sites * 4 * kLink * 16.0);
  ls.arrays = 1;
  ls.writes_per_iter = 0;
  access.components.push_back({ls, 0.5});

  KernelTraits traits;
  traits.vec_eff = 0.20;  // calibrated: ~2.5x Table IV achieved rate;
                       // this kernel is memory-bound on BDW (high
                       // MBd in Table IV), so the memory term binds
  traits.int_eff = 0.45;
  traits.phi_vec_penalty = 1.75;   // Table IV: BDW-vs-KNL efficiency ratio
  traits.int_lane_inflation = 33.0;  // SDE lane-granular int counting
  traits.serial_fraction = 0.01;
  traits.latency_dep_fraction = 0.02;

  return finish_measurement(info(), rec, ops_scale, paper_ws, access, traits,
                            res_final / res0);
}

}  // namespace fpr::kernels
