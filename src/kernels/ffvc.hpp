// FrontFlow/violet Cartesian (FFVC): finite-volume incompressible flow
// solver (RIKEN, Sec. II-B2b) — same problem class as FFB but FVM on a
// Cartesian grid; paper input is 3-D cavity flow in a 144^3 cuboid.
// FP32-dominant with the heaviest integer load of the suite (Table IV:
// 20.2 Top INT vs 1.58 Top FP32) from per-face flux index/mask work.
#pragma once

#include "kernels/kernel_base.hpp"

namespace fpr::kernels {

class Ffvc final : public KernelBase {
 public:
  Ffvc();

  using ProxyKernel::run;
  [[nodiscard]] WorkloadMeasurement run(
      ExecutionContext& ctx, const RunConfig& cfg) const override;

  static constexpr std::uint64_t kPaperDim = 144;
  static constexpr int kPaperSteps = 300;
};

}  // namespace fpr::kernels
