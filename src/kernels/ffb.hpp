// FrontFlow/blue (FFB): FEM incompressible Navier-Stokes thermo-fluid
// solver (RIKEN Fiber suite, Sec. II-B2a). Paper input: 3-D cavity flow
// in a 50x50x50-cube discretization. FFB computes in single precision —
// it is one of the few FP32-dominant proxies in Fig. 1 — with heavy
// integer indexing from the FE indirection (Table IV: 1786 Gop INT vs
// 259 Gop FP32).
#pragma once

#include "kernels/kernel_base.hpp"

namespace fpr::kernels {

class Ffb final : public KernelBase {
 public:
  Ffb();

  using ProxyKernel::run;
  [[nodiscard]] WorkloadMeasurement run(
      ExecutionContext& ctx, const RunConfig& cfg) const override;

  // 50x50x50 cubes of quadratic elements ~ 101^3 FE nodes.
  static constexpr std::uint64_t kPaperDim = 101;
  static constexpr int kPaperSteps = 900;
};

}  // namespace fpr::kernels
