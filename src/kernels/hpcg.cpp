#include "kernels/hpcg.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/units.hpp"

namespace fpr::kernels {

namespace {

constexpr std::uint64_t kRunDim = 40;  // grid edge at scale 1
constexpr int kRunIters = 25;

// 27-point HPCG operator on an nx*ny*nz grid: diagonal 26, off-diagonal
// -1 toward every in-bounds neighbour. Matrix-free row application.
struct Grid {
  std::uint64_t nx, ny, nz;
  [[nodiscard]] std::uint64_t rows() const { return nx * ny * nz; }
  [[nodiscard]] std::uint64_t idx(std::uint64_t x, std::uint64_t y,
                                  std::uint64_t z) const {
    return x + nx * (y + ny * z);
  }
};

// y = A*x over the row range [r0, r1); returns fp-op count.
std::uint64_t spmv_range(const Grid& g, const double* x, double* y,
                         std::uint64_t r0, std::uint64_t r1) {
  std::uint64_t fp = 0;
  for (std::uint64_t r = r0; r < r1; ++r) {
    const std::uint64_t cx = r % g.nx;
    const std::uint64_t cy = (r / g.nx) % g.ny;
    const std::uint64_t cz = r / (g.nx * g.ny);
    double sum = 26.0 * x[r];
    for (int dz = -1; dz <= 1; ++dz) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0 && dz == 0) continue;
          const std::int64_t nxi = static_cast<std::int64_t>(cx) + dx;
          const std::int64_t nyi = static_cast<std::int64_t>(cy) + dy;
          const std::int64_t nzi = static_cast<std::int64_t>(cz) + dz;
          if (nxi < 0 || nyi < 0 || nzi < 0 ||
              nxi >= static_cast<std::int64_t>(g.nx) ||
              nyi >= static_cast<std::int64_t>(g.ny) ||
              nzi >= static_cast<std::int64_t>(g.nz)) {
            continue;
          }
          sum -= x[g.idx(static_cast<std::uint64_t>(nxi),
                         static_cast<std::uint64_t>(nyi),
                         static_cast<std::uint64_t>(nzi))];
          fp += 1;
        }
      }
    }
    y[r] = sum;
    fp += 2;
  }
  return fp;
}

// One symmetric Gauss-Seidel application z = M^-1 r (z starts at 0).
// Sequential in row order — the dependency chain HPCG is designed around.
std::uint64_t symgs(const Grid& g, const double* r, double* z) {
  const std::uint64_t n = g.rows();
  std::fill(z, z + n, 0.0);
  std::uint64_t fp = 0;
  auto sweep_row = [&](std::uint64_t row) {
    const std::uint64_t cx = row % g.nx;
    const std::uint64_t cy = (row / g.nx) % g.ny;
    const std::uint64_t cz = row / (g.nx * g.ny);
    double sum = r[row];
    for (int dz = -1; dz <= 1; ++dz) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0 && dz == 0) continue;
          const std::int64_t nxi = static_cast<std::int64_t>(cx) + dx;
          const std::int64_t nyi = static_cast<std::int64_t>(cy) + dy;
          const std::int64_t nzi = static_cast<std::int64_t>(cz) + dz;
          if (nxi < 0 || nyi < 0 || nzi < 0 ||
              nxi >= static_cast<std::int64_t>(g.nx) ||
              nyi >= static_cast<std::int64_t>(g.ny) ||
              nzi >= static_cast<std::int64_t>(g.nz)) {
            continue;
          }
          sum += z[g.idx(static_cast<std::uint64_t>(nxi),
                         static_cast<std::uint64_t>(nyi),
                         static_cast<std::uint64_t>(nzi))];
          fp += 1;
        }
      }
    }
    z[row] = sum / 26.0;
    fp += 2;
  };
  for (std::uint64_t row = 0; row < n; ++row) sweep_row(row);    // forward
  for (std::uint64_t row = n; row-- > 0;) sweep_row(row);        // backward
  return fp;
}

}  // namespace

Hpcg::Hpcg()
    : KernelBase(KernelInfo{
          .name = "High Performance Conjugate Gradients",
          .abbrev = "HPCG",
          .suite = Suite::reference,
          .domain = Domain::reference,
          .pattern = ComputePattern::sparse_matrix,
          .language = "C++",
          .paper_input = "360x360x360 global problem, Intel binary",
      }) {}

WorkloadMeasurement Hpcg::run(ExecutionContext& ctx,
                                     const RunConfig& cfg) const {
  const std::uint64_t d = scaled_dim(kRunDim, cfg.scale);
  const Grid g{d, d, d};
  const std::uint64_t n = g.rows();
  const unsigned workers =
      cfg.threads == 0 ? ctx.concurrency() : cfg.threads;

  AlignedBuffer<double> b(n, 1.0), x(n, 0.0), rvec(n), z(n), p(n), ap(n);

  auto dot = [&](const double* u, const double* v) {
    double s = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) s += u[i] * v[i];
    counters::add_fp64(2 * n);
    counters::add_read_bytes(16 * n);
    return s;
  };
  auto par_spmv = [&](const double* in, double* out) {
    ctx.parallel_for_n(workers, n,
                        [&](std::size_t lo, std::size_t hi, unsigned) {
                          const std::uint64_t fp = spmv_range(g, in, out, lo, hi);
                          counters::add_fp64(fp);
                          counters::add_int(8 * (hi - lo));
                          counters::add_read_bytes(27 * 8 * (hi - lo));
                          counters::add_write_bytes(8 * (hi - lo));
                        });
  };

  double res0 = 0.0, res = 0.0;
  const auto rec = assayed(ctx, [&] {
    // r = b - A*x0 = b.
    std::copy(b.begin(), b.end(), rvec.begin());
    res0 = std::sqrt(dot(rvec.data(), rvec.data()));
    double rtz_old = 0.0;
    for (int it = 0; it < kRunIters; ++it) {
      // Preconditioner (sequential dependent sweeps, as in HPCG).
      const std::uint64_t fp = symgs(g, rvec.data(), z.data());
      counters::add_fp64(fp);
      counters::add_int(16 * n);
      counters::add_read_bytes(2 * 27 * 8 * n);
      counters::add_write_bytes(2 * 8 * n);

      const double rtz = dot(rvec.data(), z.data());
      if (it == 0) {
        std::copy(z.begin(), z.end(), p.begin());
      } else {
        const double beta = rtz / rtz_old;
        for (std::uint64_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
        counters::add_fp64(2 * n);
        counters::add_read_bytes(16 * n);
        counters::add_write_bytes(8 * n);
      }
      rtz_old = rtz;
      par_spmv(p.data(), ap.data());
      const double alpha = rtz / dot(p.data(), ap.data());
      for (std::uint64_t i = 0; i < n; ++i) {
        x[i] += alpha * p[i];
        rvec[i] -= alpha * ap[i];
      }
      counters::add_fp64(4 * n);
      counters::add_read_bytes(32 * n);
      counters::add_write_bytes(16 * n);
    }
    res = std::sqrt(dot(rvec.data(), rvec.data()));
  });

  require(res < 0.1 * res0, "CG residual reduced by 10x");
  require(std::isfinite(res), "finite residual");

  // Scale to the paper problem: rows ratio x iteration ratio.
  const double rows_ratio =
      static_cast<double>(kPaperDim * kPaperDim * kPaperDim) /
      static_cast<double>(n);
  const double ops_scale =
      rows_ratio * static_cast<double>(kPaperIters) / kRunIters;

  // Paper-scale memory: HPCG stores the matrix explicitly (27 values +
  // 27 indices per row) plus ~6 vectors.
  const auto paper_rows = kPaperDim * kPaperDim * kPaperDim;
  const auto paper_ws =
      static_cast<std::uint64_t>(paper_rows * (27.0 * 12 + 6 * 8));

  memsim::AccessPatternSpec access;
  memsim::StencilPattern st;
  st.nx = kPaperDim;
  st.ny = kPaperDim;
  st.nz = kPaperDim;
  st.elem_bytes = 8;
  st.full_box = true;
  access.components.push_back({st, 0.35});
  memsim::StreamPattern matrix_stream;  // matrix coefficients stream in
  matrix_stream.bytes_per_array = paper_rows * 27 * 12;
  matrix_stream.arrays = 1;
  matrix_stream.writes_per_iter = 0;
  access.components.push_back({matrix_stream, 0.65});

  KernelTraits traits;
  traits.vec_eff = 0.080;  // calibrated: ~2.5x Table IV achieved rate;
                       // this kernel is memory-bound on BDW (high
                       // MBd in Table IV), so the memory term binds
  traits.int_eff = 0.30;
  traits.phi_vec_penalty = 1.3;   // Table IV: BDW-vs-KNL efficiency ratio
  traits.int_lane_inflation = 4.0;  // Phi binary's int flood is vector work
  traits.serial_fraction = 0.02;
  traits.latency_dep_fraction = 0.45;  // dependent GS sweeps
  // Cache-mode tag probes + no speculation across the serial SymGS
  // chain: the Phis pay ~3x the per-miss latency (Sec. IV-C finding).
  traits.phi_latency_penalty = 3.0;
  // Sec. IV-A: Intel's Phi binary issues vastly more integer operations
  // (Table IV: 17.5 Top vs 0.09 Top on BDW).
  traits.phi_adjust.int_ops = 195.0;
  traits.phi_scalar_penalty = 1.3;

  return finish_measurement(info(), rec, ops_scale, paper_ws, access, traits,
                            res / res0);
}

}  // namespace fpr::kernels
