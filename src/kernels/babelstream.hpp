// BabelStream (BABL): the paper's memory-subsystem reference benchmark
// (Sec. II-B3c). Copy / Mul / Add / Triad / Dot over three large vectors.
// Two paper configurations: 2 GiB vectors (fit in MCDRAM) and 14 GiB
// vectors (exceed MCDRAM) — Sec. IV-C uses them to establish the
// cache-mode bandwidth ceilings.
#pragma once

#include "kernels/kernel_base.hpp"

namespace fpr::kernels {

class BabelStream final : public KernelBase {
 public:
  /// `paper_gib` = per-vector size in the paper configuration (2 or 14).
  explicit BabelStream(double paper_gib);

  using ProxyKernel::run;
  [[nodiscard]] WorkloadMeasurement run(
      ExecutionContext& ctx, const RunConfig& cfg) const override;

  /// Host-measured Triad bandwidth (GB/s) — used by the Table I bench to
  /// demonstrate the measurement path on real hardware.
  [[nodiscard]] double host_triad_gbs(std::size_t n_doubles,
                                      int reps = 11) const;

 private:
  double paper_gib_;
};

}  // namespace fpr::kernels
