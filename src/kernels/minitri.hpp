// MiniTri (MTri): graph-analytics proxy (Sec. II-B1h) — triangle
// detection and a largest-clique bound on a sparse symmetric graph
// (paper input: BCSSTK30 from MatrixMarket). Re-implemented over a
// deterministic synthetic graph with a BCSSTK30-like degree profile.
// Pure integer/branch workload (Table IV: zero FP operations).
#pragma once

#include "kernels/kernel_base.hpp"

namespace fpr::kernels {

class MiniTri final : public KernelBase {
 public:
  MiniTri();

  using ProxyKernel::run;
  [[nodiscard]] WorkloadMeasurement run(
      ExecutionContext& ctx, const RunConfig& cfg) const override;
};

}  // namespace fpr::kernels
