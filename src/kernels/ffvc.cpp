#include "kernels/ffvc.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/aligned_buffer.hpp"

namespace fpr::kernels {

namespace {

constexpr std::uint64_t kRunDim = 30;
constexpr int kRunSteps = 5;
constexpr int kSorIters = 16;
constexpr float kDt = 0.015f;
constexpr float kNu = 0.04f;

}  // namespace

Ffvc::Ffvc()
    : KernelBase(KernelInfo{
          .name = "FrontFlow/violet Cartesian",
          .abbrev = "FFVC",
          .suite = Suite::riken,
          .domain = Domain::engineering,
          .pattern = ComputePattern::stencil,
          .language = "C++/Fortran",
          .paper_input = "3-D cavity flow, 144^3 cuboid (FVM)",
      }) {}

WorkloadMeasurement Ffvc::run(ExecutionContext& ctx,
                                     const RunConfig& cfg) const {
  const std::uint64_t d = scaled_dim(kRunDim, cfg.scale);
  const std::uint64_t n = d * d * d;
  const unsigned workers =
      cfg.threads == 0 ? ctx.concurrency() : cfg.threads;

  // Cell-centered FVM with face fluxes. FFVC encodes boundary/medium
  // state in a per-cell integer mask (bcd[] in the original) — consulted
  // on every face, which is where the huge integer tally comes from.
  AlignedBuffer<float> u(n, 0.0f), v(n, 0.0f), w(n, 0.0f), p(n, 0.0f);
  AlignedBuffer<float> un(n), vn(n), wn(n), div(n);
  std::vector<std::uint32_t> mask(n);
  const float h = 1.0f / static_cast<float>(d);

  auto id = [&](std::uint64_t x, std::uint64_t y, std::uint64_t z) {
    return x + d * (y + d * z);
  };
  for (std::uint64_t z = 0; z < d; ++z) {
    for (std::uint64_t y = 0; y < d; ++y) {
      for (std::uint64_t x = 0; x < d; ++x) {
        std::uint32_t m = 0;
        if (x == 0) m |= 1u;
        if (x == d - 1) m |= 2u;
        if (y == 0) m |= 4u;
        if (y == d - 1) m |= 8u;
        if (z == 0) m |= 16u;
        if (z == d - 1) m |= 32u;  // lid
        mask[id(x, y, z)] = m;
      }
    }
  }
  auto apply_bc = [&] {
    for (std::uint64_t y = 0; y < d; ++y) {
      for (std::uint64_t x = 0; x < d; ++x) u[id(x, y, d - 1)] = 1.0f;
    }
  };
  apply_bc();

  double final_ke = 0.0, mass_defect = 0.0;
  const auto rec = assayed(ctx, [&] {
    for (int step = 0; step < kRunSteps; ++step) {
      // --- Face-flux convection-diffusion with MUSCL-style face states.
      ctx.parallel_for_n(
          workers, d - 2, [&](std::size_t lo, std::size_t hi, unsigned) {
            std::uint64_t sp = 0, iops = 0, branches = 0;
            for (std::size_t zz = lo; zz < hi; ++zz) {
              const std::uint64_t z = zz + 1;
              for (std::uint64_t y = 1; y < d - 1; ++y) {
                for (std::uint64_t x = 1; x < d - 1; ++x) {
                  const std::uint64_t c = id(x, y, z);
                  const std::uint32_t mc = mask[c];
                  iops += 14;  // mask decode + cell index setup
                  auto face_update = [&](AlignedBuffer<float>& fld,
                                         AlignedBuffer<float>& out) {
                    float acc = 0.0f;
                    const std::uint64_t nb[6] = {
                        id(x - 1, y, z), id(x + 1, y, z), id(x, y - 1, z),
                        id(x, y + 1, z), id(x, y, z - 1), id(x, y, z + 1)};
                    const float vel[6] = {u[c], u[c], v[c],
                                          v[c], w[c], w[c]};
                    const float sgn[6] = {1.0f, -1.0f, 1.0f,
                                          -1.0f, 1.0f, -1.0f};
                    for (int fidx = 0; fidx < 6; ++fidx) {
                      // Per-face mask consultation + upwind face state
                      // (the bcd[]-driven branch structure of FFVC).
                      const std::uint32_t mn = mask[nb[fidx]];
                      const bool wall = (mn != 0) && (mc != 0);
                      ++branches;
                      iops += 22;  // face index + mask bit tests + select
                      const float fc = fld[c];
                      const float fn2 = fld[nb[fidx]];
                      const float face =
                          (sgn[fidx] * vel[fidx] > 0 ? fc : fn2);
                      const float flux =
                          wall ? 0.0f : vel[fidx] * face * sgn[fidx];
                      acc += -flux * kDt / h +
                             kNu * kDt / (h * h) * (fn2 - fc);
                      sp += 8;
                    }
                    out[c] = fld[c] + acc;
                    sp += 2;
                  };
                  face_update(u, un);
                  face_update(v, vn);
                  face_update(w, wn);
                }
              }
            }
            counters::add_fp32(sp);
            // bcd[] mask decode at lane granularity on every face
            // (Table IV: FFVC INT ~12.8x FP32 — the suite's heaviest).
            counters::add_int(iops * 8);
            counters::add_branch(branches);
            counters::add_read_bytes(sp * 3);
            counters::add_write_bytes(sp / 3);
          });
      std::swap(u, un);
      std::swap(v, vn);
      std::swap(w, wn);
      apply_bc();

      // --- Divergence + red/black SOR pressure solve.
      ctx.parallel_for_n(
          workers, d - 2, [&](std::size_t lo, std::size_t hi, unsigned) {
            std::uint64_t sp = 0;
            for (std::size_t zz = lo; zz < hi; ++zz) {
              const std::uint64_t z = zz + 1;
              for (std::uint64_t y = 1; y < d - 1; ++y) {
                for (std::uint64_t x = 1; x < d - 1; ++x) {
                  div[id(x, y, z)] =
                      (u[id(x + 1, y, z)] - u[id(x - 1, y, z)] +
                       v[id(x, y + 1, z)] - v[id(x, y - 1, z)] +
                       w[id(x, y, z + 1)] - w[id(x, y, z - 1)]) /
                      (2.0f * h);
                  sp += 8;
                }
              }
            }
            counters::add_fp32(sp);
            counters::add_int(sp * 4);
            counters::add_read_bytes(sp * 3);
          });
      const float omega = 1.5f;
      for (int sor = 0; sor < kSorIters; ++sor) {
        for (int color = 0; color < 2; ++color) {
          ctx.parallel_for_n(
              workers, d - 2,
              [&](std::size_t lo, std::size_t hi, unsigned) {
                std::uint64_t sp = 0, iops = 0;
                for (std::size_t zz = lo; zz < hi; ++zz) {
                  const std::uint64_t z = zz + 1;
                  for (std::uint64_t y = 1; y < d - 1; ++y) {
                    for (std::uint64_t x = 1 +
                                             ((y + z + color) & 1ull);
                         x < d - 1; x += 2) {
                      const std::uint64_t c = id(x, y, z);
                      const float res =
                          (p[id(x - 1, y, z)] + p[id(x + 1, y, z)] +
                           p[id(x, y - 1, z)] + p[id(x, y + 1, z)] +
                           p[id(x, y, z - 1)] + p[id(x, y, z + 1)] -
                           6.0f * p[c] - div[c] * h * h / kDt);
                      p[c] += omega * res / 6.0f;
                      sp += 12;
                      iops += 30;  // color/index/mask arithmetic
                    }
                  }
                }
                counters::add_fp32(sp);
                counters::add_int(iops * 8);
                counters::add_read_bytes(sp * 3);
                counters::add_write_bytes(sp / 3);
              });
        }
      }

      // --- Projection.
      ctx.parallel_for_n(
          workers, d - 2, [&](std::size_t lo, std::size_t hi, unsigned) {
            std::uint64_t sp = 0;
            for (std::size_t zz = lo; zz < hi; ++zz) {
              const std::uint64_t z = zz + 1;
              for (std::uint64_t y = 1; y < d - 1; ++y) {
                for (std::uint64_t x = 1; x < d - 1; ++x) {
                  const std::uint64_t c = id(x, y, z);
                  u[c] -= kDt * (p[id(x + 1, y, z)] - p[id(x - 1, y, z)]) /
                          (2.0f * h);
                  v[c] -= kDt * (p[id(x, y + 1, z)] - p[id(x, y - 1, z)]) /
                          (2.0f * h);
                  w[c] -= kDt * (p[id(x, y, z + 1)] - p[id(x, y, z - 1)]) /
                          (2.0f * h);
                  sp += 15;
                }
              }
            }
            counters::add_fp32(sp);
            counters::add_int(sp * 3);
            counters::add_read_bytes(sp * 3);
            counters::add_write_bytes(sp / 3);
          });
      apply_bc();
    }
    double ke = 0.0, md = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
      ke += 0.5 * (static_cast<double>(u[i]) * u[i] +
                   static_cast<double>(v[i]) * v[i] +
                   static_cast<double>(w[i]) * w[i]);
      md += std::abs(static_cast<double>(div[i]));
    }
    counters::add_fp64(9 * n);
    final_ke = ke;
    mass_defect = md / static_cast<double>(n);
  });

  require(std::isfinite(final_ke) && final_ke > 0.0, "flow developed");
  float umax = 0.0f;
  for (std::uint64_t i = 0; i < n; ++i) umax = std::max(umax, std::abs(u[i]));
  require(umax <= 1.5f, "velocity bounded (stable scheme)");
  require(mass_defect < 10.0, "divergence under control");

  const double paper_cells = static_cast<double>(kPaperDim) * kPaperDim *
                             kPaperDim;
  // Anchored on Table IV's 1573.8 Gop FP32 (BDW): FFVC's step count
  // and sub-iteration structure are not derivable from the input.
  const double ops_scale =
      1.5738e12 / std::max(1.0, static_cast<double>(rec.ops().fp32));
  const auto paper_ws = static_cast<std::uint64_t>(
      paper_cells * (4.0 * 9 + 4));  // 9 FP32 fields + mask

  memsim::AccessPatternSpec access;
  memsim::StencilPattern st{.nx = kPaperDim, .ny = kPaperDim,
                            .nz = kPaperDim, .elem_bytes = 4, .radius = 1,
                            .full_box = false};
  access.components.push_back({st, 1.0});

  KernelTraits traits;
  traits.vec_eff = 0.095;  // calibrated: Table IV achieved rate
  traits.int_eff = 0.50;
  traits.phi_vec_penalty = 2.9;   // Table IV: BDW-vs-KNL efficiency ratio
  traits.int_lane_inflation = 8.0;  // SDE lane-granular int counting
  traits.serial_fraction = 0.02;
  traits.latency_dep_fraction = 0.02;

  return finish_measurement(info(), rec, ops_scale, paper_ws, access, traits,
                            final_ke);
}

}  // namespace fpr::kernels
