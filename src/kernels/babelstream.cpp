#include "kernels/babelstream.hpp"

#include <algorithm>
#include <atomic>
#include <string>

#include "common/aligned_buffer.hpp"
#include "common/timer.hpp"
#include "common/units.hpp"

namespace fpr::kernels {

namespace {
constexpr double kScalar = 0.4;  // BabelStream's triad/mul scalar
constexpr int kReps = 8;         // kernel repetitions per run
constexpr std::size_t kRunN = 1u << 21;  // 2M doubles/array at scale 1
}  // namespace

BabelStream::BabelStream(double paper_gib)
    : KernelBase(KernelInfo{
          .name = "BabelStream",
          .abbrev = paper_gib < 10 ? "BABL2" : "BABL14",
          .suite = Suite::reference,
          .domain = Domain::reference,
          .pattern = ComputePattern::stream,
          .language = "C++",
          .paper_input = std::to_string(static_cast<int>(paper_gib)) +
                         " GiB vectors, cache mode",
      }),
      paper_gib_(paper_gib) {}

WorkloadMeasurement BabelStream::run(ExecutionContext& ctx,
                                            const RunConfig& cfg) const {
  const std::size_t n = scaled_n(kRunN, cfg.scale);
  AlignedBuffer<double> a(n, 0.1), b(n, 0.2), c(n, 0.0);
  const unsigned workers =
      cfg.threads == 0 ? ctx.concurrency() : cfg.threads;

  double dot_result = 0.0;
  const auto rec = assayed(ctx, [&] {
    for (int rep = 0; rep < kReps; ++rep) {
      // Copy: c = a
      ctx.parallel_for_n(workers, n, [&](std::size_t lo, std::size_t hi,
                                          unsigned) {
        for (std::size_t i = lo; i < hi; ++i) c[i] = a[i];
        counters::add_read_bytes((hi - lo) * 8);
        counters::add_write_bytes((hi - lo) * 8);
        counters::add_int(hi - lo);  // index increments
      });
      // Mul: b = s * c
      ctx.parallel_for_n(workers, n, [&](std::size_t lo, std::size_t hi,
                                          unsigned) {
        for (std::size_t i = lo; i < hi; ++i) b[i] = kScalar * c[i];
        counters::add_fp64(hi - lo);
        counters::add_read_bytes((hi - lo) * 8);
        counters::add_write_bytes((hi - lo) * 8);
        counters::add_int(hi - lo);
      });
      // Add: c = a + b
      ctx.parallel_for_n(workers, n, [&](std::size_t lo, std::size_t hi,
                                          unsigned) {
        for (std::size_t i = lo; i < hi; ++i) c[i] = a[i] + b[i];
        counters::add_fp64(hi - lo);
        counters::add_read_bytes((hi - lo) * 16);
        counters::add_write_bytes((hi - lo) * 8);
        counters::add_int(hi - lo);
      });
      // Triad: a = b + s * c
      ctx.parallel_for_n(workers, n, [&](std::size_t lo, std::size_t hi,
                                          unsigned) {
        for (std::size_t i = lo; i < hi; ++i) a[i] = b[i] + kScalar * c[i];
        counters::add_fp64(2 * (hi - lo));
        counters::add_read_bytes((hi - lo) * 16);
        counters::add_write_bytes((hi - lo) * 8);
        counters::add_int(hi - lo);
      });
      // Dot: sum += a * b  (deterministic slot reduction)
      SlotReduce dot(workers);
      ctx.parallel_for_n(workers, n, [&](std::size_t lo, std::size_t hi,
                                          unsigned tid) {
        double local = 0.0;
        for (std::size_t i = lo; i < hi; ++i) local += a[i] * b[i];
        counters::add_fp64(2 * (hi - lo));
        counters::add_read_bytes((hi - lo) * 16);
        counters::add_int(hi - lo);
        dot.add(tid, local);
      });
      dot_result = dot.sum();
    }
  });

  // BabelStream-style verification: after kReps of the cycle the vector
  // values follow a closed form.
  double va = 0.1, vb = 0.2, vc = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    vc = va;
    vb = kScalar * vc;
    vc = va + vb;
    va = vb + kScalar * vc;
  }
  require_close(a[0], va, 1e-12, "a[0] closed form");
  require_close(a[n - 1], va, 1e-12, "a[n-1] closed form");
  // In the final repetition the dot sums a[i]*b[i] with a already updated
  // by the triad, so the expected value is n * va * vb.
  require_close(dot_result, static_cast<double>(n) * va * vb, 1e-9, "dot");

  // Paper-scale description.
  const double paper_bytes_per_vec = paper_gib_ * static_cast<double>(GiB);
  const auto paper_ws = static_cast<std::uint64_t>(3 * paper_bytes_per_vec);
  const double ops_scale =
      paper_bytes_per_vec / (static_cast<double>(n) * 8.0);

  memsim::StreamPattern pat;
  pat.bytes_per_array = static_cast<std::uint64_t>(paper_bytes_per_vec);
  pat.arrays = 3;
  pat.writes_per_iter = 1;

  KernelTraits traits;
  traits.vec_eff = 0.85;   // stream kernels vectorize perfectly but are BW-bound
  traits.int_eff = 0.85;
  traits.serial_fraction = 0.0;
  traits.latency_dep_fraction = 0.0;

  return finish_measurement(info(), rec, ops_scale, paper_ws,
                            memsim::AccessPatternSpec::single(pat), traits,
                            dot_result);
}

double BabelStream::host_triad_gbs(std::size_t n, int reps) const {
  AlignedBuffer<double> a(n, 0.1), b(n, 0.2), c(n, 0.3);
  // Raw host-bandwidth probe: no counting, so a plain private pool
  // (hardware-sized) is all it needs.
  ThreadPool pool;
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    pool.parallel_for(n, [&](std::size_t lo, std::size_t hi, unsigned) {
      for (std::size_t i = lo; i < hi; ++i) a[i] = b[i] + kScalar * c[i];
    });
    const double sec = t.seconds();
    best = std::max(best, gbs(static_cast<double>(n) * 24.0, sec));
  }
  return best;
}

}  // namespace fpr::kernels
