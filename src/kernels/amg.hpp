// AMG: algebraic multigrid solver proxy (hypre; ECP problem 1 — 27-point
// stencil on a 3-D linear system, Sec. II-B1a). Re-implemented as a
// geometric-coarsening multigrid V-cycle preconditioning CG on the same
// 27-point operator, with hypre-like CSR storage so the integer indexing
// load matches the original's instruction mix.
#pragma once

#include "kernels/kernel_base.hpp"

namespace fpr::kernels {

class Amg final : public KernelBase {
 public:
  Amg();

  using ProxyKernel::run;
  [[nodiscard]] WorkloadMeasurement run(
      ExecutionContext& ctx, const RunConfig& cfg) const override;

  static constexpr std::uint64_t kPaperDim = 320;
  // hypre's AMG-PCG converges in far fewer, heavier cycles than
  // our V(2,2) solver; 12 cycles matches Table IV's 110 GFP64.
  static constexpr int kPaperIters = 12;
};

}  // namespace fpr::kernels
