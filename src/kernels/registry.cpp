// Kernel registry: paper-order list of all proxy/mini-apps and reference
// benchmarks. Add kernels here as single lines; make_all()/make() stay
// in sync automatically.
#include <functional>
#include <stdexcept>

#include "common/execution_context.hpp"
#include "kernels/kernel.hpp"

// Kernel headers (paper order: ECP, RIKEN, reference).
#include "kernels/amg.hpp"
#include "kernels/babelstream.hpp"
#include "kernels/candle.hpp"
#include "kernels/comd.hpp"
#include "kernels/ffb.hpp"
#include "kernels/ffvc.hpp"
#include "kernels/hpcg.hpp"
#include "kernels/hpl.hpp"
#include "kernels/laghos.hpp"
#include "kernels/macsio.hpp"
#include "kernels/miniamr.hpp"
#include "kernels/minife.hpp"
#include "kernels/minitri.hpp"
#include "kernels/modylas.hpp"
#include "kernels/mvmc.hpp"
#include "kernels/nekbone.hpp"
#include "kernels/ngsa.hpp"
#include "kernels/nicam.hpp"
#include "kernels/ntchem.hpp"
#include "kernels/qcd.hpp"
#include "kernels/sw4lite.hpp"
#include "kernels/swfft.hpp"
#include "kernels/xsbench.hpp"

namespace fpr::kernels {

WorkloadMeasurement ProxyKernel::run(const RunConfig& cfg) const {
  ExecutionContext ctx(cfg.threads);
  return run(ctx, cfg);
}

std::string_view to_string(Suite s) {
  switch (s) {
    case Suite::ecp: return "ECP";
    case Suite::riken: return "RIKEN";
    case Suite::reference: return "Reference";
  }
  return "?";
}

std::string_view to_string(Domain d) {
  switch (d) {
    case Domain::physics: return "Physics";
    case Domain::bioscience: return "Bioscience";
    case Domain::physics_bioscience: return "Physics and Bioscience";
    case Domain::physics_chemistry: return "Physics and Chemistry";
    case Domain::material_science: return "Material Science/Engineering";
    case Domain::geoscience: return "Geoscience/Earthscience";
    case Domain::math_cs: return "Math/Computer Science";
    case Domain::engineering: return "Engineering (Mechanics, CFD)";
    case Domain::chemistry: return "Chemistry";
    case Domain::lattice_qcd: return "Lattice QCD";
    case Domain::reference: return "Reference";
  }
  return "?";
}

std::string_view to_string(ComputePattern p) {
  switch (p) {
    case ComputePattern::stencil: return "Stencil";
    case ComputePattern::dense_matrix: return "Dense matrix";
    case ComputePattern::sparse_matrix: return "Sparse matrix";
    case ComputePattern::n_body: return "N-body";
    case ComputePattern::irregular: return "Irregular";
    case ComputePattern::fft: return "FFT";
    case ComputePattern::stream: return "Stream";
    case ComputePattern::io: return "I/O";
  }
  return "?";
}

namespace {

using Factory = std::function<std::unique_ptr<ProxyKernel>()>;

const std::vector<Factory>& factories() {
  static const std::vector<Factory> list = {
      // ECP proxy apps (paper Sec. II-B1, presentation order).
      [] { return std::make_unique<Amg>(); },
      [] { return std::make_unique<Candle>(); },
      [] { return std::make_unique<CoMd>(); },
      [] { return std::make_unique<Laghos>(); },
      [] { return std::make_unique<MacsIo>(); },
      [] { return std::make_unique<MiniAmr>(); },
      [] { return std::make_unique<MiniFe>(); },
      [] { return std::make_unique<MiniTri>(); },
      [] { return std::make_unique<Nekbone>(); },
      [] { return std::make_unique<Sw4Lite>(); },
      [] { return std::make_unique<SwFft>(); },
      [] { return std::make_unique<XsBench>(); },
      // RIKEN Fiber mini-apps (Sec. II-B2).
      [] { return std::make_unique<Ffb>(); },
      [] { return std::make_unique<Ffvc>(); },
      [] { return std::make_unique<Modylas>(); },
      [] { return std::make_unique<MVmc>(); },
      [] { return std::make_unique<Ngsa>(); },
      [] { return std::make_unique<Nicam>(); },
      [] { return std::make_unique<NtChem>(); },
      [] { return std::make_unique<Qcd>(); },
      // Reference benchmarks (Sec. II-B3).
      [] { return std::make_unique<Hpl>(); },
      [] { return std::make_unique<Hpcg>(); },
      [] { return std::make_unique<BabelStream>(2.0); },
      [] { return std::make_unique<BabelStream>(14.0); },
  };
  return list;
}

}  // namespace

std::vector<std::unique_ptr<ProxyKernel>> make_all() {
  std::vector<std::unique_ptr<ProxyKernel>> out;
  out.reserve(factories().size());
  for (const auto& f : factories()) out.push_back(f());
  return out;
}

std::unique_ptr<ProxyKernel> make(std::string_view abbrev) {
  for (const auto& f : factories()) {
    auto k = f();
    if (k->info().abbrev == abbrev) return k;
  }
  throw std::invalid_argument("unknown kernel: " + std::string(abbrev));
}

std::vector<std::string> all_abbrevs() {
  std::vector<std::string> out;
  for (const auto& f : factories()) out.push_back(f()->info().abbrev);
  return out;
}

}  // namespace fpr::kernels
