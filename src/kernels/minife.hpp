// MiniFE (MiFE): implicit finite-element proxy (Mantevo, Sec. II-B1g).
// Assembles a hex-8 Poisson stiffness matrix into CSR (the scatter-heavy
// irregular phase) and solves with unpreconditioned CG. Paper input:
// a 128x128x128 grid.
#pragma once

#include "kernels/kernel_base.hpp"

namespace fpr::kernels {

class MiniFe final : public KernelBase {
 public:
  MiniFe();

  using ProxyKernel::run;
  [[nodiscard]] WorkloadMeasurement run(
      ExecutionContext& ctx, const RunConfig& cfg) const override;

  static constexpr std::uint64_t kPaperDim = 128;
  static constexpr int kPaperIters = 200;
};

}  // namespace fpr::kernels
