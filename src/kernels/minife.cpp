#include "kernels/minife.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "common/aligned_buffer.hpp"

namespace fpr::kernels {

namespace {

constexpr std::uint64_t kRunDim = 22;  // element grid edge at scale 1
constexpr int kRunIters = 40;

struct Csr {
  std::vector<std::uint64_t> row_ptr;
  std::vector<std::uint32_t> col;
  std::vector<double> val;
  std::uint64_t n = 0;
};

}  // namespace

MiniFe::MiniFe()
    : KernelBase(KernelInfo{
          .name = "MiniFE",
          .abbrev = "MiFE",
          .suite = Suite::ecp,
          .domain = Domain::physics,
          .pattern = ComputePattern::irregular,
          .language = "C++",
          .paper_input = "128x128x128 unstructured 3-D grid",
      }) {}

WorkloadMeasurement MiniFe::run(ExecutionContext& ctx,
                                       const RunConfig& cfg) const {
  const std::uint64_t ne = scaled_dim(kRunDim, cfg.scale);  // elements/dim
  const std::uint64_t nn = ne + 1;                          // nodes/dim
  const std::uint64_t nodes = nn * nn * nn;
  const unsigned workers =
      cfg.threads == 0 ? ctx.concurrency() : cfg.threads;

  auto node_id = [&](std::uint64_t x, std::uint64_t y, std::uint64_t z) {
    return x + nn * (y + nn * z);
  };

  Csr A;
  A.n = nodes;

  const auto rec = assayed(ctx, [&] {
    // --- Assembly: per-element 8x8 hex stiffness scattered into a
    // row-wise map, then compressed to CSR. Int-dominated.
    std::vector<std::map<std::uint32_t, double>> rows(nodes);
    std::uint64_t fp = 0, iops = 0;
    for (std::uint64_t ez = 0; ez < ne; ++ez) {
      for (std::uint64_t ey = 0; ey < ne; ++ey) {
        for (std::uint64_t ex = 0; ex < ne; ++ex) {
          std::uint32_t n8[8];
          int k = 0;
          for (std::uint64_t dz = 0; dz <= 1; ++dz) {
            for (std::uint64_t dy = 0; dy <= 1; ++dy) {
              for (std::uint64_t dx = 0; dx <= 1; ++dx) {
                n8[k++] = static_cast<std::uint32_t>(
                    node_id(ex + dx, ey + dy, ez + dz));
              }
            }
          }
          iops += 40;
          // Hex-8 Laplace stiffness (reference element): diagonal 1/3,
          // axis neighbours 0, face/body diagonals -1/12 (rows sum to
          // zero), plus a small mass shift so the operator is SPD and
          // the manufactured solution x = 1 is recoverable.
          for (int i = 0; i < 8; ++i) {
            for (int j = 0; j < 8; ++j) {
              const int shared =
                  ((i ^ j) & 1 ? 0 : 1) + ((i ^ j) & 2 ? 0 : 1) +
                  ((i ^ j) & 4 ? 0 : 1);
              static constexpr double w[4] = {-1.0 / 12, -1.0 / 12, 0.0,
                                              1.0 / 3};
              double v = w[shared];
              if (i == j) v += 0.05;  // mass shift (Helmholtz-like)
              if (v != 0.0) rows[n8[i]][n8[j]] += v;
              fp += 1;
              iops += 8;  // scatter map search/insert
            }
          }
        }
      }
    }
    counters::add_fp64(fp);
    counters::add_int(iops);
    counters::add_read_bytes(iops * 4);
    counters::add_write_bytes(fp * 8);

    A.row_ptr.reserve(nodes + 1);
    A.row_ptr.push_back(0);
    for (std::uint64_t r = 0; r < nodes; ++r) {
      for (const auto& [c, v] : rows[r]) {
        A.col.push_back(c);
        A.val.push_back(v);
      }
      A.row_ptr.push_back(A.col.size());
    }
    counters::add_int(2 * A.col.size());

    // --- CG solve of A x = b with b = A * ones (so x -> ones).
    AlignedBuffer<double> xref(nodes, 1.0), b(nodes), x(nodes, 0.0),
        r(nodes), p(nodes), ap(nodes);
    auto spmv = [&](const double* in, double* out) {
      ctx.parallel_for_n(
          workers, nodes, [&](std::size_t lo, std::size_t hi, unsigned) {
            std::uint64_t f2 = 0;
            for (std::size_t row = lo; row < hi; ++row) {
              double s = 0.0;
              for (std::uint64_t kk = A.row_ptr[row]; kk < A.row_ptr[row + 1];
                   ++kk) {
                s += A.val[kk] * in[A.col[kk]];
              }
              out[row] = s;
              f2 += 2 * (A.row_ptr[row + 1] - A.row_ptr[row]);
            }
            counters::add_fp64(f2);
            counters::add_int(3 * f2);
            counters::add_read_bytes(f2 / 2 * 20);
            counters::add_write_bytes((hi - lo) * 8);
          });
    };
    auto dot = [&](const double* u, const double* v) {
      double s = 0.0;
      for (std::uint64_t i = 0; i < nodes; ++i) s += u[i] * v[i];
      counters::add_fp64(2 * nodes);
      counters::add_read_bytes(16 * nodes);
      return s;
    };

    spmv(xref.data(), b.data());
    std::copy(b.begin(), b.end(), r.begin());
    std::copy(b.begin(), b.end(), p.begin());
    double rr = dot(r.data(), r.data());
    for (int it = 0; it < kRunIters && rr > 1e-24; ++it) {
      spmv(p.data(), ap.data());
      const double alpha = rr / dot(p.data(), ap.data());
      for (std::uint64_t i = 0; i < nodes; ++i) {
        x[i] += alpha * p[i];
        r[i] -= alpha * ap[i];
      }
      counters::add_fp64(4 * nodes);
      const double rr_new = dot(r.data(), r.data());
      const double beta = rr_new / rr;
      for (std::uint64_t i = 0; i < nodes; ++i) p[i] = r[i] + beta * p[i];
      counters::add_fp64(2 * nodes);
      counters::add_read_bytes(48 * nodes);
      counters::add_write_bytes(24 * nodes);
      rr = rr_new;
    }
    // Verification: the solve reproduces the manufactured solution on a
    // sample of interior nodes. The matrix is singular up to boundary
    // handling, but x=ones is in the range by construction.
    double max_err = 0.0;
    for (std::uint64_t i = 0; i < nodes; i += 97) {
      max_err = std::max(max_err, std::abs(x[i] - 1.0));
    }
    require(max_err < 0.05, "CG recovers manufactured solution");
  });

  const double paper_nodes = static_cast<double>((kPaperDim + 1)) *
                             (kPaperDim + 1) * (kPaperDim + 1);
  const double ops_scale = paper_nodes / static_cast<double>(nodes) *
                           static_cast<double>(kPaperIters) / kRunIters;
  const auto paper_ws =
      static_cast<std::uint64_t>(paper_nodes * (27.0 * 12 + 6 * 8));

  memsim::AccessPatternSpec access;
  memsim::StreamPattern ms;
  ms.bytes_per_array = static_cast<std::uint64_t>(paper_nodes * 27 * 12);
  ms.arrays = 1;
  ms.writes_per_iter = 0;
  access.components.push_back({ms, 0.7});
  memsim::StencilPattern st{.nx = kPaperDim, .ny = kPaperDim,
                            .nz = kPaperDim, .elem_bytes = 8, .radius = 1,
                            .full_box = true};
  access.components.push_back({st, 0.3});

  KernelTraits traits;
  traits.vec_eff = 0.080;  // calibrated: ~2.5x Table IV achieved rate;
                       // this kernel is memory-bound on BDW (high
                       // MBd in Table IV), so the memory term binds
  traits.int_eff = 0.35;
  traits.phi_vec_penalty = 1.4;   // Table IV: BDW-vs-KNL efficiency ratio
  traits.int_lane_inflation = 4.0;  // SDE lane-granular int counting
  traits.serial_fraction = 0.02;
  traits.latency_dep_fraction = 0.05;
  // Table IV: the Phi runs use a different decomposition and issue ~5x
  // the integer ops (669 vs 121 Gop on KNM vs BDW).
  traits.phi_adjust.int_ops = 4.0;

  return finish_measurement(info(), rec, ops_scale, paper_ws, access, traits,
                            static_cast<double>(A.col.size()));
}

}  // namespace fpr::kernels
