#include "kernels/sw4lite.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/aligned_buffer.hpp"

namespace fpr::kernels {

namespace {

constexpr std::uint64_t kRunDim = 48;
constexpr int kRunSteps = 12;

// 4th-order central second-derivative weights.
constexpr double kW0 = -5.0 / 2.0;
constexpr double kW1 = 4.0 / 3.0;
constexpr double kW2 = -1.0 / 12.0;

}  // namespace

Sw4Lite::Sw4Lite()
    : KernelBase(KernelInfo{
          .name = "SW4lite",
          .abbrev = "SW4L",
          .suite = Suite::ecp,
          .domain = Domain::geoscience,
          .pattern = ComputePattern::stencil,
          .language = "C",
          .paper_input = "pointsource: wave from a point in a half-space",
      }) {}

WorkloadMeasurement Sw4Lite::run(ExecutionContext& ctx,
                                        const RunConfig& cfg) const {
  const std::uint64_t d = scaled_dim(kRunDim, cfg.scale);
  const std::uint64_t n = d * d * d;
  const unsigned workers =
      cfg.threads == 0 ? ctx.concurrency() : cfg.threads;

  // Two time levels + velocity-like scratch (leapfrog).
  AlignedBuffer<double> u(n, 0.0), u_prev(n, 0.0), u_next(n, 0.0);
  const double h = 1.0 / static_cast<double>(d);
  const double c = 1.0;
  const double dt = 0.3 * h / c;  // CFL-safe
  const double r2 = c * c * dt * dt / (h * h);

  const std::uint64_t src =
      d / 2 + d * (d / 2 + d * (d / 4));  // point source in the upper half

  auto at = [&](const double* f, std::uint64_t x, std::uint64_t y,
                std::uint64_t z) { return f[x + d * (y + d * z)]; };

  double energy = 0.0;
  const auto rec = assayed(ctx, [&] {
    for (int step = 0; step < kRunSteps; ++step) {
      // Ricker-like source wavelet.
      const double t = static_cast<double>(step) * dt;
      const double f0 = 12.0;
      const double arg = (t * f0 - 1.0);
      u[src] += (1.0 - 2.0 * arg * arg) * std::exp(-arg * arg) * dt * dt;
      counters::add_fp64(10);

      // Interior radius-2 sweep (free-surface at z=0 handled by skipping
      // the boundary shell, as sw4lite's pointsource test effectively
      // does for this proxy's purposes).
      ctx.parallel_for_n(
          workers, d - 4, [&](std::size_t lo, std::size_t hi, unsigned) {
            std::uint64_t fp = 0;
            for (std::size_t zz = lo; zz < hi; ++zz) {
              const std::uint64_t z = zz + 2;
              for (std::uint64_t y = 2; y < d - 2; ++y) {
                for (std::uint64_t x = 2; x < d - 2; ++x) {
                  const double lap =
                      3.0 * kW0 * at(u.data(), x, y, z) +
                      kW1 * (at(u.data(), x - 1, y, z) +
                             at(u.data(), x + 1, y, z) +
                             at(u.data(), x, y - 1, z) +
                             at(u.data(), x, y + 1, z) +
                             at(u.data(), x, y, z - 1) +
                             at(u.data(), x, y, z + 1)) +
                      kW2 * (at(u.data(), x - 2, y, z) +
                             at(u.data(), x + 2, y, z) +
                             at(u.data(), x, y - 2, z) +
                             at(u.data(), x, y + 2, z) +
                             at(u.data(), x, y, z - 2) +
                             at(u.data(), x, y, z + 2));
                  u_next[x + d * (y + d * z)] =
                      2.0 * at(u.data(), x, y, z) -
                      at(u_prev.data(), x, y, z) + r2 * lap;
                  fp += 22;
                }
              }
            }
            counters::add_fp64(fp);
            counters::add_int(fp / 11);  // dense unit-stride: tiny int load
            // Plane-resident radius-2 stencil: ~3 doubles of fresh
            // traffic per point (Table IV: SW4L is compute-bound).
            counters::add_read_bytes(fp / 22 * 24);
            counters::add_write_bytes(fp / 22 * 8);
          });
      std::swap(u_prev, u);
      std::swap(u, u_next);
    }
    energy = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) energy += u[i] * u[i];
    counters::add_fp64(2 * n);
  });

  require(std::isfinite(energy), "finite wavefield energy");
  require(energy > 0.0, "wave propagated from the source");
  // Symmetry: the x/y symmetric positions around the source must match
  // (isotropic medium, centered source).
  const std::uint64_t zc = d / 4, yc = d / 2, xc = d / 2;
  const double left = u[(xc - 3) + d * (yc + d * zc)];
  const double right = u[(xc + 3) + d * (yc + d * zc)];
  require_close(left, right, 1e-9, "wavefield x-symmetry");

  const double paper_pts = static_cast<double>(kPaperDim) * kPaperDim *
                           kPaperDim * kPaperSteps;
  const double run_pts = static_cast<double>(n) * kRunSteps;
  const double ops_scale = paper_pts / run_pts;
  const auto paper_ws = static_cast<std::uint64_t>(
      static_cast<double>(kPaperDim) * kPaperDim * kPaperDim * 8.0 * 3);

  memsim::AccessPatternSpec access;
  memsim::StencilPattern st{.nx = kPaperDim, .ny = kPaperDim,
                            .nz = kPaperDim, .elem_bytes = 8, .radius = 2,
                            .full_box = false};
  access.components.push_back({st, 1.0});

  KernelTraits traits;
  traits.vec_eff = 0.100;  // calibrated: Table IV achieved rate
  traits.int_eff = 0.60;
  traits.phi_vec_penalty = 2.1;   // Table IV: BDW-vs-KNL efficiency ratio
  traits.int_lane_inflation = 1.0;  // SDE lane-granular int counting
  traits.serial_fraction = 0.005;
  traits.latency_dep_fraction = 0.0;

  return finish_measurement(info(), rec, ops_scale, paper_ws, access, traits,
                            energy);
}

}  // namespace fpr::kernels
