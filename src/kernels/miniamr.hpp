// MiniAMR (MAMR): adaptive-mesh-refinement proxy (Mantevo, Sec. II-B1f).
// A 7-point stencil applied over an octree of blocks while a sphere moves
// diagonally through the domain, triggering refinement and coarsening —
// the block-management bookkeeping is the integer-heavy part.
#pragma once

#include "kernels/kernel_base.hpp"

namespace fpr::kernels {

class MiniAmr final : public KernelBase {
 public:
  MiniAmr();

  using ProxyKernel::run;
  [[nodiscard]] WorkloadMeasurement run(
      ExecutionContext& ctx, const RunConfig& cfg) const override;
};

}  // namespace fpr::kernels
