// Shared implementation scaffolding for proxy kernels: assay plumbing,
// scaled-size helpers, and measurement assembly.
#pragma once

#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/execution_context.hpp"
#include "counters/assay.hpp"
#include "counters/registry.hpp"
#include "kernels/kernel.hpp"

namespace fpr::kernels {

/// CRTP-free helper base: stores the KernelInfo and provides the
/// run-measure-verify skeleton pieces concrete kernels compose.
class KernelBase : public ProxyKernel {
 public:
  [[nodiscard]] const KernelInfo& info() const final { return info_; }

 protected:
  explicit KernelBase(KernelInfo info) : info_(std::move(info)) {}

  /// Scale an integer extent by cbrt(scale) (3-D problems) — keeps op
  /// growth roughly linear in `scale` for volume-dominated kernels.
  static std::uint64_t scaled_dim(std::uint64_t base, double scale) {
    const double s = std::cbrt(scale);
    const auto v = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(base) * s));
    return v > 4 ? v : 4;
  }

  /// Scale a count linearly.
  static std::uint64_t scaled_n(std::uint64_t base, double scale) {
    const auto v = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(base) * scale));
    return v > 1 ? v : 1;
  }

  /// Run `solver` inside an assay region bound to `ctx`, return the
  /// measured ops and seconds. Mirrors PseudoCode 1 of the paper. The
  /// orchestrating thread is bound to the context's sink for the whole
  /// region (parallel regions bind their workers themselves), so every
  /// count the solver makes — serial sections included — lands in the
  /// context and nowhere else.
  template <typename Solver>
  static counters::AssayRecorder assayed(ExecutionContext& ctx,
                                         Solver&& solver) {
    ExecutionContext::Scope bind(ctx);
    counters::AssayRecorder rec(&ctx.counters());
    {
      counters::ScopedAssay scope(rec);
      solver();
    }
    return rec;
  }

  /// Verification helper: relative error check with a descriptive throw.
  void require_close(double got, double want, double rel_tol,
                     const char* what) const {
    const double denom = std::abs(want) > 1e-300 ? std::abs(want) : 1.0;
    if (!(std::abs(got - want) / denom <= rel_tol)) {
      throw std::runtime_error(info_.abbrev + ": verification failed (" +
                               std::string(what) + "): got " +
                               std::to_string(got) + ", want " +
                               std::to_string(want));
    }
  }

  void require(bool ok, const char* what) const {
    if (!ok) {
      throw std::runtime_error(info_.abbrev + ": verification failed: " +
                               std::string(what));
    }
  }

 private:
  KernelInfo info_;
};

/// Deterministic parallel reduction: each worker accumulates into its
/// own padded slot; the final sum runs in fixed slot order, so the
/// result is bit-identical across runs (the static chunking of
/// ThreadPool makes per-slot partial sums deterministic too). Atomic
/// CAS-loop reductions would sum in completion order and wobble in the
/// last ulps between runs.
class SlotReduce {
 public:
  explicit SlotReduce(unsigned slots) : slots_(slots) {}

  void add(unsigned worker, double v) { slots_[worker].value += v; }

  [[nodiscard]] double sum() const {
    double s = 0.0;
    for (const auto& slot : slots_) s += slot.value;
    return s;
  }

 private:
  struct alignas(64) Padded {
    double value = 0.0;
  };
  std::vector<Padded> slots_;
};

/// Assemble the common parts of a WorkloadMeasurement.
inline WorkloadMeasurement finish_measurement(
    const KernelInfo& info, const counters::AssayRecorder& rec,
    double ops_scale_to_paper, std::uint64_t paper_working_set,
    memsim::AccessPatternSpec paper_access, KernelTraits traits,
    double checksum) {
  WorkloadMeasurement m;
  m.name = info.abbrev;
  m.ops = rec.ops();
  // Extrapolate measured counts to the paper's input scale.
  auto scale = [&](std::uint64_t v) {
    return static_cast<std::uint64_t>(static_cast<double>(v) *
                                      ops_scale_to_paper);
  };
  m.ops.fp64 = scale(m.ops.fp64);
  m.ops.fp32 = scale(m.ops.fp32);
  m.ops.int_ops = scale(m.ops.int_ops);
  m.ops.branches = scale(m.ops.branches);
  m.ops.bytes_read = scale(m.ops.bytes_read);
  m.ops.bytes_written = scale(m.ops.bytes_written);
  m.host_seconds = rec.seconds();
  m.working_set_bytes = paper_working_set;
  m.access = std::move(paper_access);
  m.traits = traits;
  m.verified = true;
  m.checksum = checksum;
  m.ops_scale_to_paper = ops_scale_to_paper;
  return m;
}

}  // namespace fpr::kernels
