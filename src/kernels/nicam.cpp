#include "kernels/nicam.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/aligned_buffer.hpp"

namespace fpr::kernels {

namespace {

constexpr std::uint64_t kRunCols = 1024;  // columns at scale 1
constexpr std::uint64_t kRunLevels = 24;
constexpr int kRunSteps = 8;
constexpr int kNeigh = 6;  // hexagonal (icosahedral) connectivity
constexpr double kDt = 0.2;
constexpr double kKdiff = 0.05;

}  // namespace

Nicam::Nicam()
    : KernelBase(KernelInfo{
          .name = "Nonhydrostatic ICosahedral Atmospheric Model",
          .abbrev = "NICM",
          .suite = Suite::riken,
          .domain = Domain::geoscience,
          .pattern = ComputePattern::stencil,
          .language = "Fortran",
          .paper_input = "Jablonowski baroclinic wave, gl05rl00z40, 1 day",
      }) {}

WorkloadMeasurement Nicam::run(ExecutionContext& ctx,
                                      const RunConfig& cfg) const {
  const std::uint64_t cols_req = scaled_n(kRunCols, cfg.scale);
  const std::uint64_t lev = kRunLevels;
  const unsigned workers =
      cfg.threads == 0 ? ctx.concurrency() : cfg.threads;

  // Icosahedral-like mesh: columns on a quasi-uniform torus lattice,
  // each with 6 horizontal neighbours. The grid is exactly ring x rows
  // so that every edge has a unique partner (conservation needs exact
  // edge pairing).
  const std::uint64_t ring = static_cast<std::uint64_t>(
      std::max(8.0, std::floor(std::sqrt(static_cast<double>(cols_req)))));
  const std::uint64_t rows = std::max<std::uint64_t>(cols_req / ring, 4);
  const std::uint64_t cols = ring * rows;
  const std::uint64_t n = cols * lev;
  std::vector<std::uint32_t> neigh(cols * kNeigh);
  for (std::uint64_t c = 0; c < cols; ++c) {
    const std::uint64_t row = c / ring, col = c % ring;
    auto wrap_id = [&](std::uint64_t r, std::uint64_t cc) {
      const std::uint64_t cid = (r % rows) * ring + (cc % ring);
      return static_cast<std::uint32_t>(cid);
    };
    neigh[c * kNeigh + 0] = wrap_id(row, col + 1);
    neigh[c * kNeigh + 1] = wrap_id(row, col + ring - 1);
    neigh[c * kNeigh + 2] = wrap_id(row + 1, col);
    neigh[c * kNeigh + 3] = wrap_id(row + rows - 1, col);
    neigh[c * kNeigh + 4] = wrap_id(row + 1, col + 1);
    neigh[c * kNeigh + 5] = wrap_id(row + rows - 1, col + ring - 1);
  }

  // Prognostic fields: density-like tracer rho, horizontal momentum
  // (u,v), vertical velocity w.
  AlignedBuffer<double> rho(n), u(n), v(n), w(n, 0.0), rho_n(n), u_n(n),
      v_n(n);
  for (std::uint64_t c = 0; c < cols; ++c) {
    for (std::uint64_t k = 0; k < lev; ++k) {
      const double lat =
          (static_cast<double>(c % ring) / static_cast<double>(ring) - 0.5) *
          3.14159;
      rho[c * lev + k] = 1.0 + 0.1 * std::cos(lat) +
                         0.01 * static_cast<double>(k) /
                             static_cast<double>(lev);
      u[c * lev + k] = 0.2 * std::sin(lat);
      v[c * lev + k] = 0.05 * std::cos(2 * lat);
    }
  }

  double mass0 = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) mass0 += rho[i];

  const auto rec = assayed(ctx, [&] {
    for (int step = 0; step < kRunSteps; ++step) {
      ctx.parallel_for_n(
          workers, cols, [&](std::size_t lo, std::size_t hi, unsigned) {
            std::uint64_t fp = 0, iops = 0;
            for (std::size_t c = lo; c < hi; ++c) {
              const std::uint32_t* nb = &neigh[c * kNeigh];
              iops += 10;
              for (std::uint64_t k = 0; k < lev; ++k) {
                const std::uint64_t i = c * lev + k;
                // Horizontal flux-form advection + diffusion. Each edge
                // flux is computed symmetrically in (i, j) and signed by
                // the edge orientation, so the paired cell subtracts the
                // exact negation: mass is conserved to roundoff.
                double flux_rho = 0.0, lap_u = 0.0, lap_v = 0.0;
                for (int e = 0; e < kNeigh; ++e) {
                  const std::uint64_t j =
                      static_cast<std::uint64_t>(nb[e]) * lev + k;
                  const double sgn = (e % 2 == 0) ? 1.0 : -1.0;
                  const double vel_edge = 0.5 * (u[i] + u[j]) +
                                          0.25 * (v[i] + v[j]);
                  const double vn2 = sgn * vel_edge;  // outward normal vel
                  const double upwind = vn2 > 0 ? rho[i] : rho[j];
                  flux_rho += vn2 * upwind;
                  lap_u += u[j] - u[i];
                  lap_v += v[j] - v[i];
                  fp += 13;
                  iops += 7;  // connectivity gather
                }
                // Vertical transport (columnar, level k +- 1).
                const double wv = w[i];
                const double rho_up = k + 1 < lev ? rho[i + 1] : rho[i];
                const double rho_dn = k > 0 ? rho[i - 1] : rho[i];
                const double vert = wv * 0.5 * (rho_up - rho_dn);
                // Coriolis-like rotation of the wind.
                const double f_cor = 1e-2;
                rho_n[i] = rho[i] - kDt * (flux_rho / kNeigh + vert);
                u_n[i] = u[i] + kDt * (kKdiff * lap_u + f_cor * v[i]);
                v_n[i] = v[i] + kDt * (kKdiff * lap_v - f_cor * u[i]);
                fp += 18;
              }
            }
            counters::add_fp64(fp);
            // Lane-granular vector-int accounting (SDE counts each AVX
            // integer lane; Table IV: NICAM INT ~2.2x FP64).
            counters::add_int(iops * 5);
            counters::add_branch(fp / 13);
            counters::add_read_bytes(fp * 4);
            counters::add_write_bytes(fp);
          });
      std::swap(rho, rho_n);
      std::swap(u, u_n);
      std::swap(v, v_n);
    }
  });

  // Verification: finite fields, bounded winds, and exactly conserved
  // mass (the edge fluxes are antisymmetric by construction and the
  // vertical velocity is zero in this configuration).
  double mass = 0.0, maxu = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    mass += rho[i];
    maxu = std::max(maxu, std::abs(u[i]));
    require(std::isfinite(rho[i]), "finite density");
  }
  require_close(mass, mass0, 1e-9, "mass conserved (flux form)");
  require(maxu < 10.0, "winds bounded");

  // Anchored on Table IV's 422.5 Gop FP64: the full NICAM dycore does
  // several times the per-point work of our advection/diffusion proxy
  // and the exact multiple is not derivable from the input description.
  const double ops_scale =
      4.225e11 / std::max(1.0, static_cast<double>(rec.ops().fp64));
  const auto paper_ws = static_cast<std::uint64_t>(
      static_cast<double>(kPaperColumns) * kPaperLevels * 8.0 * 30);

  memsim::AccessPatternSpec access;
  memsim::StencilPattern st{.nx = 128, .ny = 80, .nz = kPaperLevels,
                            .elem_bytes = 8, .radius = 1, .full_box = false};
  access.components.push_back({st, 0.8});
  memsim::GatherPattern gp;
  gp.table_bytes = static_cast<std::uint64_t>(kPaperColumns * kNeigh * 4);
  gp.elem_bytes = 4;
  gp.sequential_fraction = 0.7;
  access.components.push_back({gp, 0.2});

  KernelTraits traits;
  traits.vec_eff = 0.030;  // calibrated: Table IV achieved rate
                          // shows the best SIMD/cyc in Table IV)
  traits.int_eff = 0.40;
  traits.phi_vec_penalty = 4.5;   // Table IV: BDW-vs-KNL efficiency ratio
  traits.int_lane_inflation = 5.0;  // SDE lane-granular int counting
  traits.serial_fraction = 0.03;
  traits.latency_dep_fraction = 0.02;

  return finish_measurement(info(), rec, ops_scale, paper_ws, access, traits,
                            mass);
}

}  // namespace fpr::kernels
