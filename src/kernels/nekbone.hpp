// Nekbone (NekB): Nek5000 proxy (Sec. II-B1i) — conjugate gradients for
// the standard Poisson equation discretized by spectral elements. The
// hot loop is the matrix-free local Laplacian: three small dense tensor
// contractions (1-D derivative matrices) per element, giving the high
// FP64:INT ratio of Table IV (410:23).
#pragma once

#include "kernels/kernel_base.hpp"

namespace fpr::kernels {

class Nekbone final : public KernelBase {
 public:
  Nekbone();

  using ProxyKernel::run;
  [[nodiscard]] WorkloadMeasurement run(
      ExecutionContext& ctx, const RunConfig& cfg) const override;

  static constexpr int kOrder = 10;  // polynomial order + 1 (nodes/dim)
  static constexpr std::uint64_t kPaperElems = 9216;
  static constexpr int kPaperIters = 700;
};

}  // namespace fpr::kernels
