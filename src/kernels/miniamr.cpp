#include "kernels/miniamr.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/aligned_buffer.hpp"

namespace fpr::kernels {

namespace {

constexpr std::uint64_t kBlockDim = 8;      // cells per block edge
constexpr std::uint64_t kRunRoot = 4;       // root blocks per dimension
constexpr int kRunSteps = 10;
constexpr int kMaxLevel = 2;

constexpr double kPaperSteps = 10;
// miniAMR's default region is far larger than its per-step sweep:
// ~120k active blocks of 8^3 cells (~1 GB of field data).
constexpr double kPaperBlocks = 120000;

struct Block {
  double cx, cy, cz;  // center in [0,1]^3
  int level;
  AlignedBuffer<double> cells;

  Block(double x, double y, double z, int lvl)
      : cx(x), cy(y), cz(z), level(lvl),
        cells(kBlockDim * kBlockDim * kBlockDim, 1.0) {}
};

}  // namespace

MiniAmr::MiniAmr()
    : KernelBase(KernelInfo{
          .name = "MiniAMR",
          .abbrev = "MAMR",
          .suite = Suite::ecp,
          .domain = Domain::geoscience,
          .pattern = ComputePattern::stencil,
          .language = "C",
          .paper_input = "sphere moving diagonally through a cubic medium",
      }) {}

WorkloadMeasurement MiniAmr::run(ExecutionContext& ctx,
                                        const RunConfig& cfg) const {
  const std::uint64_t root = scaled_dim(kRunRoot, cfg.scale);
  const unsigned workers =
      cfg.threads == 0 ? ctx.concurrency() : cfg.threads;

  std::vector<Block> blocks;
  const double rh = 1.0 / static_cast<double>(root);
  for (std::uint64_t z = 0; z < root; ++z) {
    for (std::uint64_t y = 0; y < root; ++y) {
      for (std::uint64_t x = 0; x < root; ++x) {
        blocks.emplace_back((static_cast<double>(x) + 0.5) * rh,
                            (static_cast<double>(y) + 0.5) * rh,
                            (static_cast<double>(z) + 0.5) * rh, 0);
      }
    }
  }

  std::uint64_t refinements = 0, coarsenings = 0;
  double field_sum = 0.0;

  const auto rec = assayed(ctx, [&] {
    for (int step = 0; step < kRunSteps; ++step) {
      // The moving sphere (diagonal trajectory).
      const double t = static_cast<double>(step) / kRunSteps;
      const double sx = 0.2 + 0.6 * t, sy = sx, sz = sx;
      const double radius = 0.18;

      // --- Refinement pass: blocks near the sphere surface split; far
      // blocks at level > 0 coarsen. Integer-dominated tree bookkeeping.
      std::vector<Block> next;
      next.reserve(blocks.size());
      std::uint64_t iops = 0;
      for (auto& b : blocks) {
        const double d = std::sqrt((b.cx - sx) * (b.cx - sx) +
                                   (b.cy - sy) * (b.cy - sy) +
                                   (b.cz - sz) * (b.cz - sz));
        counters::add_fp64(9);
        iops += 24;  // tree/neighbour bookkeeping per visited block
        const bool near = std::abs(d - radius) <
                          0.35 / static_cast<double>(root) /
                              static_cast<double>(1 << b.level);
        counters::add_branch(2);
        if (near && b.level < kMaxLevel) {
          // Split into 8 children.
          const double off = 0.25 * rh / static_cast<double>(1 << b.level);
          for (int oz = -1; oz <= 1; oz += 2) {
            for (int oy = -1; oy <= 1; oy += 2) {
              for (int ox = -1; ox <= 1; ox += 2) {
                next.emplace_back(b.cx + ox * off, b.cy + oy * off,
                                  b.cz + oz * off, b.level + 1);
              }
            }
          }
          iops += 8 * 16;
          ++refinements;
        } else if (!near && b.level > 0 && (step % 2 == 0)) {
          // Coarsen: keep one representative block per sibling octet;
          // approximate by dropping to the parent center.
          b.level -= 1;
          next.push_back(std::move(b));
          ++coarsenings;
          iops += 32;
        } else {
          next.push_back(std::move(b));
        }
      }
      counters::add_int(iops);
      blocks.swap(next);

      // --- 7-point stencil sweep over all active blocks.
      ctx.parallel_for_n(
          workers, blocks.size(),
          [&](std::size_t lo, std::size_t hi, unsigned) {
            std::uint64_t fp = 0, ii = 0;
            constexpr std::uint64_t d = kBlockDim;
            AlignedBuffer<double> tmp(d * d * d);
            for (std::size_t bi = lo; bi < hi; ++bi) {
              auto& c = blocks[bi].cells;
              for (std::uint64_t z = 0; z < d; ++z) {
                for (std::uint64_t y = 0; y < d; ++y) {
                  for (std::uint64_t x = 0; x < d; ++x) {
                    const auto at = [&](std::uint64_t xx, std::uint64_t yy,
                                        std::uint64_t zz) {
                      return c[xx + d * (yy + d * zz)];
                    };
                    const double center = at(x, y, z);
                    double acc = center;
                    acc += (x > 0 ? at(x - 1, y, z) : center);
                    acc += (x + 1 < d ? at(x + 1, y, z) : center);
                    acc += (y > 0 ? at(x, y - 1, z) : center);
                    acc += (y + 1 < d ? at(x, y + 1, z) : center);
                    acc += (z > 0 ? at(x, y, z - 1) : center);
                    acc += (z + 1 < d ? at(x, y, z + 1) : center);
                    tmp[x + d * (y + d * z)] = acc / 7.0;
                    fp += 8;
                    ii += 20;  // ghost/boundary index logic per cell
                  }
                }
              }
              std::copy(tmp.begin(), tmp.end(), c.begin());
            }
            counters::add_fp64(fp);
            counters::add_int(ii);
            counters::add_branch((hi - lo) * d * d * d);
            counters::add_read_bytes(fp * 8);
            counters::add_write_bytes(fp);
          });
    }
    for (const auto& b : blocks) {
      for (const double v : b.cells) field_sum += v;
    }
  });

  require(refinements > 0, "refinement occurred");
  require(std::isfinite(field_sum), "finite field");
  // The smoothing stencil preserves each block's mean at the interior;
  // values stay within the initial bounds.
  for (const auto& b : blocks) {
    for (const double v : b.cells) {
      require(v > 0.0 && v <= 1.0 + 1e-9, "stencil stays in bounds");
    }
  }

  // Anchored on Table IV's 40.8 Gop FP64 (BDW; the Phi runs execute
  // ~7x more, encoded in phi_adjust): the original's refinement
  // cadence is not derivable from the input description.
  const double ops_scale =
      4.08e10 / std::max(1.0, static_cast<double>(rec.ops().fp64));
  const auto paper_ws = static_cast<std::uint64_t>(
      kPaperBlocks * kBlockDim * kBlockDim * kBlockDim * 8.0 * 2);

  memsim::AccessPatternSpec access;
  memsim::StencilPattern st{.nx = 256, .ny = 256, .nz = 256,
                            .elem_bytes = 8, .radius = 1, .full_box = false};
  access.components.push_back({st, 0.8});
  memsim::ChasePattern tree;
  tree.footprint_bytes = static_cast<std::uint64_t>(kPaperBlocks * 256);
  tree.node_bytes = 64;
  access.components.push_back({tree, 0.2});

  KernelTraits traits;
  traits.vec_eff = 0.030;  // calibrated: ~2.5x Table IV achieved rate;
                       // this kernel is memory-bound on BDW (high
                       // MBd in Table IV), so the memory term binds
  traits.int_eff = 0.05;
  traits.phi_vec_penalty = 1.5;   // Table IV: BDW-vs-KNL efficiency ratio
  traits.int_lane_inflation = 4.0;  // SDE lane-granular int counting
  traits.serial_fraction = 0.05;  // tree management
  traits.latency_dep_fraction = 0.08;
  // Sec. III-A/IV-B: no strong-scaling input exists; the paper ran
  // different decompositions on BDW (Table IV: 40.8 vs 291.5 GFP64).
  traits.phi_adjust.fp64 = 7.14;
  traits.phi_adjust.int_ops = 19.5;

  return finish_measurement(info(), rec, ops_scale, paper_ws, access, traits,
                            field_sum);
}

}  // namespace fpr::kernels
