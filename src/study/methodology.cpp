#include "study/methodology.hpp"

#include <algorithm>
#include <thread>

namespace fpr::study {

ParallelismChoice find_best_parallelism(const kernels::ProxyKernel& k,
                                        double scale, int repeats) {
  ParallelismChoice choice;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  // Candidate ladder: 1, hw/4, hw/2, hw, 2*hw (over-subscription).
  std::vector<unsigned> candidates{1, std::max(1u, hw / 4),
                                   std::max(1u, hw / 2), hw, 2 * hw};
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  choice.best_seconds = -1.0;
  for (unsigned t : candidates) {
    double best = -1.0;
    for (int r = 0; r < repeats; ++r) {
      kernels::RunConfig rc;
      rc.threads = t;
      rc.scale = scale;
      const auto m = k.run(rc);
      if (best < 0.0 || m.host_seconds < best) best = m.host_seconds;
    }
    choice.tried.emplace_back(t, best);
    if (choice.best_seconds < 0.0 || best < choice.best_seconds) {
      choice.best_seconds = best;
      choice.threads = t;
    }
  }
  return choice;
}

PerformanceRun performance_run(const kernels::ProxyKernel& k,
                               const kernels::RunConfig& cfg, int repeats) {
  PerformanceRun out;
  std::vector<double> samples;
  double best = -1.0;
  for (int r = 0; r < repeats; ++r) {
    const auto m = k.run(cfg);
    samples.push_back(m.host_seconds);
    if (best < 0.0 || m.host_seconds < best) {
      best = m.host_seconds;
      out.best_meas = m;
    }
  }
  out.timing = summarize(std::move(samples));
  return out;
}

}  // namespace fpr::study
