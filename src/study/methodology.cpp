#include "study/methodology.hpp"

#include <algorithm>
#include <thread>

#include "common/execution_context.hpp"

namespace fpr::study {

std::vector<unsigned> parallelism_ladder(unsigned hw_threads) {
  const unsigned hw = std::max(1u, hw_threads);
  // Candidate ladder: 1, hw/4, hw/2, hw, 2*hw (over-subscription). On
  // small hosts (hw <= 2) these collapse to fewer than three distinct
  // counts, so pad with fixed small counts before deduplicating.
  std::vector<unsigned> candidates{1,  std::max(1u, hw / 4),
                                   std::max(1u, hw / 2),
                                   hw, 2 * hw,
                                   2,  4};
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  return candidates;
}

ParallelismChoice find_best_parallelism(const kernels::ProxyKernel& k,
                                        double scale, int repeats) {
  ParallelismChoice choice;
  const auto candidates =
      parallelism_ladder(std::thread::hardware_concurrency());

  choice.best_seconds = -1.0;
  for (unsigned t : candidates) {
    // One context per ladder rung, reused across repeats: repeated runs
    // measure the kernel, not pool construction.
    ExecutionContext ctx(t);
    double best = -1.0;
    for (int r = 0; r < repeats; ++r) {
      kernels::RunConfig rc;
      rc.threads = t;
      rc.scale = scale;
      const auto m = k.run(ctx, rc);
      if (best < 0.0 || m.host_seconds < best) best = m.host_seconds;
    }
    choice.tried.emplace_back(t, best);
    if (choice.best_seconds < 0.0 || best < choice.best_seconds) {
      choice.best_seconds = best;
      choice.threads = t;
    }
  }
  return choice;
}

PerformanceRun performance_run(const kernels::ProxyKernel& k,
                               const kernels::RunConfig& cfg, int repeats) {
  PerformanceRun out;
  ExecutionContext ctx(cfg.threads);  // shared across repeats
  std::vector<double> samples;
  double best = -1.0;
  for (int r = 0; r < repeats; ++r) {
    const auto m = k.run(ctx, cfg);
    samples.push_back(m.host_seconds);
    if (best < 0.0 || m.host_seconds < best) {
      best = m.host_seconds;
      out.best_meas = m;
    }
  }
  out.timing = summarize(std::move(samples));
  return out;
}

}  // namespace fpr::study
