// Generators for every table and figure in the paper's evaluation
// (Sec. IV). Each returns a TextTable holding exactly the rows/series
// the corresponding paper artifact plots; the bench binaries print them.
#pragma once

#include "common/table.hpp"
#include "study/study.hpp"

namespace fpr::study {

/// Table I: compute-node hardware comparison (spec side; the measured
/// Triad columns come from the model's bandwidth parameters).
TextTable table1_hardware();

/// Table II: application categorization (domain, pattern, language).
TextTable table2_categorization();

/// Table III: metric -> method/tool mapping of this reproduction.
TextTable table3_metrics();

/// Fig. 1: INT vs FP32 vs FP64 operation shares per app per machine.
TextTable fig1_opmix(const StudyResults& r);

/// Fig. 2 top: relative Gflop/s of KNL/KNM over BDW. Filters the
/// negligible-FP proxies (MxIO, MTri, NGSA) and MiniAMR, as the paper
/// does.
TextTable fig2_relative_flops(const StudyResults& r);

/// Fig. 2 bottom: absolute achieved Gflop/s as % of dominant-precision
/// theoretical peak.
TextTable fig2_pct_of_peak(const StudyResults& r);

/// Fig. 3: runtime speedup of KNL/KNM over BDW (all proxies).
TextTable fig3_speedup(const StudyResults& r);

/// Fig. 4: memory/system throughput per proxy app per machine [GB/s].
TextTable fig4_membw(const StudyResults& r);

/// Fig. 5: roofline coordinates for the BDW reference system.
TextTable fig5_roofline(const StudyResults& r);

/// Fig. 6: frequency-scaling speedup for one machine (relative to its
/// lowest throttle state), one column per frequency state.
TextTable fig6_freqscale(const StudyResults& r,
                         const std::string& machine_short_name);

/// Fig. 7: site utilization shares plus the Sec. V-B projected %peak.
TextTable fig7_site_utilization(const StudyResults& r);

/// Table IV: full measured-metric dump for one machine.
TextTable table4_metrics(const StudyResults& r,
                         const std::string& machine_short_name);

}  // namespace fpr::study
