#include "study/domain_util.hpp"

#include <map>
#include <stdexcept>

namespace fpr::study {

const std::vector<SiteUtilization>& site_utilization() {
  // Shares read off Fig. 7 of the paper (each site's annual report).
  static const std::vector<SiteUtilization> data = {
      //            site              geo   chm   phy   qcd   mat   eng   mcs   bio   oth
      {"ANL('16)",                   0.05, 0.10, 0.30, 0.08, 0.20, 0.10, 0.07, 0.05, 0.05},
      {"NERSC('16)",                 0.15, 0.12, 0.28, 0.05, 0.20, 0.05, 0.05, 0.05, 0.05},
      {"HLRS('17)",                  0.10, 0.05, 0.15, 0.00, 0.05, 0.55, 0.05, 0.02, 0.03},
      {"RRZE('17)",                  0.05, 0.20, 0.25, 0.00, 0.25, 0.10, 0.05, 0.05, 0.05},
      {"CSCS('17)",                  0.25, 0.15, 0.25, 0.05, 0.15, 0.05, 0.03, 0.05, 0.02},
      {"R-CCS K-Computer('16)",      0.15, 0.10, 0.20, 0.10, 0.15, 0.20, 0.03, 0.05, 0.02},
      {"U.Tokyo Oakforest-PACS('17)",0.15, 0.05, 0.30, 0.20, 0.15, 0.05, 0.03, 0.05, 0.02},
      {"NARLabs('13)",               0.20, 0.15, 0.10, 0.00, 0.10, 0.25, 0.05, 0.10, 0.05},
  };
  return data;
}

kernels::Domain domain_of_label(const std::string& label) {
  static const std::map<std::string, kernels::Domain> m = {
      {"geo", kernels::Domain::geoscience},
      {"chm", kernels::Domain::chemistry},
      {"phy", kernels::Domain::physics},
      {"qcd", kernels::Domain::lattice_qcd},
      {"mat", kernels::Domain::material_science},
      {"eng", kernels::Domain::engineering},
      {"mcs", kernels::Domain::math_cs},
      {"bio", kernels::Domain::bioscience},
  };
  const auto it = m.find(label);
  if (it == m.end()) throw std::invalid_argument("unknown domain " + label);
  return it->second;
}

namespace {

// Mean %peak of the proxies representing `domain`.
double domain_pct_peak(kernels::Domain domain,
                       const std::vector<ProjectionPoint>& points) {
  double sum = 0.0;
  int count = 0;
  for (const auto& p : points) {
    const bool matches =
        p.domain == domain ||
        // The combined Table II domains contribute to both components.
        (domain == kernels::Domain::physics &&
         (p.domain == kernels::Domain::physics_bioscience ||
          p.domain == kernels::Domain::physics_chemistry)) ||
        (domain == kernels::Domain::bioscience &&
         p.domain == kernels::Domain::physics_bioscience) ||
        (domain == kernels::Domain::chemistry &&
         p.domain == kernels::Domain::physics_chemistry);
    if (!matches) continue;
    if (!p.has_fp) continue;  // I/O or graph proxies
    sum += p.pct_of_peak;
    ++count;
  }
  return count > 0 ? sum / count : 0.0;
}

}  // namespace

double project_site_pct_peak(const SiteUtilization& site,
                             const std::vector<ProjectionPoint>& points) {
  struct Entry {
    const char* label;
    double share;
  };
  const Entry entries[] = {
      {"geo", site.geo}, {"chm", site.chm}, {"phy", site.phy},
      {"qcd", site.qcd}, {"mat", site.mat}, {"eng", site.eng},
      {"mcs", site.mcs}, {"bio", site.bio},
  };
  double weighted = 0.0, covered = 0.0;
  for (const auto& e : entries) {
    if (e.share <= 0.0) continue;
    const double pct = domain_pct_peak(domain_of_label(e.label), points);
    if (pct <= 0.0) continue;
    weighted += e.share * pct;
    covered += e.share;
  }
  return covered > 0.0 ? weighted / covered : 0.0;
}

double project_site_pct_peak(const SiteUtilization& site,
                             const StudyResults& results,
                             const std::string& machine_short_name) {
  std::vector<ProjectionPoint> points;
  points.reserve(results.kernels.size());
  for (const auto& k : results.kernels) {
    points.push_back({k.info.domain, k.meas.ops.fp_total() != 0,
                      k.on(machine_short_name).perf.pct_of_peak});
  }
  return project_site_pct_peak(site, points);
}

}  // namespace fpr::study
