#include "study/pareto.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>

#include "arch/machines.hpp"
#include "common/execution_context.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace fpr::study {

std::string_view to_string(Objective o) {
  switch (o) {
    case Objective::time:
      return "time";
    case Objective::energy:
      return "energy";
    case Objective::site:
      return "site";
  }
  throw std::invalid_argument("unknown Objective value");
}

Objective objective_from_string(std::string_view name) {
  if (name == "time") return Objective::time;
  if (name == "energy") return Objective::energy;
  if (name == "site") return Objective::site;
  throw std::invalid_argument("unknown objective '" + std::string(name) +
                              "' (expected time, energy, or site)");
}

bool dominates(const std::vector<double>& a, const std::vector<double>& b) {
  bool strictly_better = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strictly_better = true;
  }
  return strictly_better;
}

std::vector<std::size_t> non_dominated(
    const std::vector<std::vector<double>>& objectives) {
  std::vector<std::size_t> keep;
  for (std::size_t i = 0; i < objectives.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < objectives.size(); ++j) {
      if (j != i && dominates(objectives[j], objectives[i])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) keep.push_back(i);
  }
  return keep;
}

const ParetoPoint* ParetoResults::find(std::string_view name) const {
  for (const auto& p : frontier) {
    if (p.name() == name) return &p;
  }
  return nullptr;
}

ParetoEngine::ParetoEngine(ParetoConfig cfg, StudyEngine::KernelFactory factory)
    : cfg_(std::move(cfg)), factory_(std::move(factory)) {}

namespace {

/// A candidate that survived dedup + budget filtering, ready to score.
struct Candidate {
  arch::MachineVariant variant;
  arch::ResourceBudget budget;
};

}  // namespace

ParetoResults ParetoEngine::run() {
  arch::CpuSpec base;
  bool found = false;
  for (auto& cpu : arch::all_machines()) {
    if (cpu.short_name == cfg_.base) {
      base = std::move(cpu);
      found = true;
      break;
    }
  }
  if (!found) {
    throw std::invalid_argument("unknown base machine '" + cfg_.base + "'");
  }
  if (cfg_.objectives.empty()) {
    throw std::invalid_argument("pareto: at least one objective required");
  }
  {
    std::set<Objective> unique(cfg_.objectives.begin(), cfg_.objectives.end());
    if (unique.size() != cfg_.objectives.size()) {
      throw std::invalid_argument("pareto: duplicate objective");
    }
  }
  if (cfg_.max_depth == 0) {
    throw std::invalid_argument("pareto: --max-depth must be >= 1");
  }

  // The move set: one step of the hill-climb. Factors are chosen so
  // composition matters — under the default constant-budget box a
  // bandwidth or core bump usually fits only after an FP64 cut or a
  // core shrink frees the silicon, which is the paper's Sec. VII trade.
  std::vector<std::string> moves = {
      "halve-fp64", "drop-fp64-vec", "widen-fp32=2",
      "dram-bw=1.25", "dram-bw=1.5",
      "cores=0.9", "cores=1.25",
      "tdp=0.85", "tdp=0.9",
  };
  if (base.has_mcdram()) {
    moves.insert(moves.end(),
                 {"mcdram-bw=1.25", "mcdram-bw=1.5", "mcdram-cap=2"});
  }

  // Phase 1: the one-time measurement pass.
  VariantEvaluator::Config ec;
  ec.kernels = cfg_.kernels;
  ec.scale = cfg_.scale;
  ec.threads = cfg_.threads;
  ec.trace_refs = cfg_.trace_refs;
  ec.seed = cfg_.seed;
  ec.jobs = cfg_.jobs;
  ec.kernel_jobs = cfg_.kernel_jobs;
  const VariantEvaluator evaluator(base, ec, factory_);

  // Scoring workers: cfg_.jobs participants total (the caller counts as
  // one), mirroring the StudyEngine jobs resolution.
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned jobs = std::max(1u, cfg_.jobs != 0 ? cfg_.jobs : hw);
  std::optional<ExecutionContext> ctx;
  if (jobs > 1) ctx.emplace(std::make_shared<ThreadPool>(jobs - 1));

  const auto objective_vector = [&](const VariantScore& s) {
    std::vector<double> o;
    o.reserve(cfg_.objectives.size());
    for (const Objective obj : cfg_.objectives) {
      switch (obj) {
        case Objective::time:
          o.push_back(s.geomean_time_ratio);
          break;
        case Objective::energy:
          o.push_back(s.geomean_energy_ratio);
          break;
        case Objective::site:
          o.push_back(-s.site_pct_peak);  // maximize -> minimize
          break;
      }
    }
    return o;
  };

  // Run-wide canonical dedup: a machine is proposed at most once however
  // it is spelled. The candidate filters all run on the (sequential)
  // generation path, so counters and the admitted stream are identical
  // for every jobs value.
  std::set<std::string> seen;
  std::vector<Candidate> batch;
  const auto admit = [&](const std::string& spec) {
    ++stats_.generated;
    arch::MachineVariant v;
    try {
      v = arch::derive_variant(base, spec);
    } catch (const std::invalid_argument&) {
      ++stats_.invalid;  // e.g. halving scalar FP64, DDR outrunning MCDRAM
      return;
    }
    if (!seen.insert(arch::canonical_cpu_digest(v.cpu)).second) {
      ++stats_.deduped;
      return;
    }
    const auto budget = arch::variant_budget(v.cpu, base);
    if (!arch::within_budget(budget, cfg_.budget)) {
      ++stats_.over_budget;
      return;
    }
    batch.push_back({std::move(v), budget});
  };

  // NSGA-style archive: only non-dominated points survive insertion.
  std::vector<ParetoPoint> archive;
  const auto merge_into_archive = [&](ParetoPoint&& p) {
    for (const auto& member : archive) {
      if (dominates(member.objectives, p.objectives)) return;
    }
    std::erase_if(archive, [&](const ParetoPoint& member) {
      return dominates(p.objectives, member.objectives);
    });
    archive.push_back(std::move(p));
  };

  const auto score_batch = [&] {
    std::vector<ParetoPoint> points(batch.size());
    const auto score_one = [&](std::size_t i) {
      points[i].score = evaluator.evaluate(batch[i].variant);
      points[i].budget = batch[i].budget;
      points[i].objectives = objective_vector(points[i].score);
    };
    if (ctx && batch.size() > 1) {
      ctx->parallel_for(batch.size(),
                        [&](std::size_t begin, std::size_t end, unsigned) {
                          for (std::size_t i = begin; i < end; ++i) {
                            score_one(i);
                          }
                        });
    } else {
      for (std::size_t i = 0; i < batch.size(); ++i) score_one(i);
    }
    stats_.evaluated += batch.size();
    ++stats_.rounds;
    // Slot-ordered merge: insertion order equals generation order, so
    // the archive evolves identically for every jobs split.
    for (auto& p : points) merge_into_archive(std::move(p));
    batch.clear();
  };

  // Seed round: the base itself, the built-in explore grid, and every
  // single move.
  admit("");
  for (const auto& spec : arch::builtin_variant_specs(base)) admit(spec);
  for (const auto& move : moves) admit(move);
  score_batch();

  // Expansion rounds: compose every archive member with every move
  // (depth-capped), then propose seeded explorer walks for diversity
  // beyond the hill-climb's one-step neighborhood.
  for (unsigned round = 1; round <= cfg_.rounds; ++round) {
    std::vector<std::string> parents;
    parents.reserve(archive.size());
    for (const auto& member : archive) parents.push_back(member.spec());
    for (const auto& parent : parents) {
      if (arch::spec_transform_count(parent) + 1 > cfg_.max_depth) continue;
      for (const auto& move : moves) {
        admit(arch::compose_specs(parent, move));
      }
    }
    Xoshiro256 rng(thread_seed(cfg_.search_seed, round));
    for (unsigned e = 0; e < cfg_.explorers; ++e) {
      const std::uint64_t depth =
          cfg_.max_depth >= 2 ? 2 + rng.below(cfg_.max_depth - 1) : 1;
      std::string spec;
      for (std::uint64_t d = 0; d < depth; ++d) {
        spec = arch::compose_specs(spec, moves[rng.below(moves.size())]);
      }
      admit(spec);
    }
    if (batch.empty()) break;  // neighborhood exhausted
    score_batch();
  }

  ParetoResults out;
  out.base = base.short_name;
  out.budget = cfg_.budget;
  out.objectives = cfg_.objectives;
  out.frontier = std::move(archive);
  // Total order independent of visit order: objective vector, then spec
  // (distinct machines can tie on every objective).
  std::sort(out.frontier.begin(), out.frontier.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              if (a.objectives != b.objectives) {
                return a.objectives < b.objectives;
              }
              return a.score.variant.spec < b.score.variant.spec;
            });

  stats_.measurement = evaluator.measurement_stats();
  stats_.evaluator = evaluator.stats();
  return out;
}

}  // namespace fpr::study
