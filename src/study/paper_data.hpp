// Reference values transcribed from the paper (Table IV and Table I),
// used by the bench harness and EXPERIMENTS.md to print paper-vs-
// measured comparisons. These values are *never* inputs to the model —
// they are the ground truth our reproduction is judged against.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace fpr::study {

/// One proxy-app row of the paper's Table IV (per machine).
struct PaperRow {
  std::string abbrev;
  // Time-to-solution of the kernel [s].
  double t2sol_knl = 0.0;
  double t2sol_knm = 0.0;
  double t2sol_bdw = 0.0;
  // Operation counts [Gop] on KNL (BDW where noted in comments).
  double gop_fp64_knl = 0.0;
  double gop_fp32_knl = 0.0;
  double gop_int_knl = 0.0;
  // BDW op counts (for the Fig. 1 mix on the reference system).
  double gop_fp64_bdw = 0.0;
  double gop_fp32_bdw = 0.0;
  double gop_int_bdw = 0.0;
};

/// All Table IV rows in paper order. CANDLE's Phi op counts are absent
/// in the paper (SDE crashes); they are set to the BDW values as the
/// paper itself assumes in Fig. 2.
const std::vector<PaperRow>& table4();

/// Look up a row by kernel abbreviation.
const PaperRow* paper_row(const std::string& abbrev);

/// Derived paper metrics used in EXPERIMENTS shape checks.
struct PaperDerived {
  double speedup_knl_vs_bdw(const PaperRow& r) const {
    return r.t2sol_bdw / r.t2sol_knl;
  }
  double speedup_knm_vs_bdw(const PaperRow& r) const {
    return r.t2sol_bdw / r.t2sol_knm;
  }
  double knm_vs_knl(const PaperRow& r) const {
    return r.t2sol_knl / r.t2sol_knm;
  }
};

}  // namespace fpr::study
