// ParetoEngine: multi-objective search over the machine design space.
//
// The explorer scores a hand-enumerated grid; the Pareto engine *composes*
// transforms from the derive_variant grammar — under an area/TDP budget
// box (arch::variant_budget) — and keeps the non-dominated frontier over
// the procurement objectives (geomean time-to-solution, geomean
// energy-to-solution, mean Fig. 7 site projection). Dominance-based
// pruning of the candidate stream follows the solution-dominance framing
// of Guns et al. (see PAPERS.md).
//
// The search is a seeded, deterministic hill-climb with an NSGA-style
// non-dominated archive:
//
//   seed round   the base machine, the built-in grid, and every single
//                move;
//   round r      every archive member composed with every move (depth-
//                capped), plus `explorers` seeded random walks
//                (common/rng.hpp — no wall-clock, no random_device);
//                candidates are deduplicated by canonical resolved
//                machine across the whole run, budget-filtered, then
//                scored by one shared study::VariantEvaluator across
//                ExecutionContext workers into slot-indexed buffers and
//                merged into the archive in slot order.
//
// Candidate generation, dedup, filtering, and the merge are all
// sequential and jobs-independent; scoring is pure model arithmetic.
// The frontier (sorted by objective vector, then spec) is therefore
// byte-identical once serialized for every --jobs value — the same
// guarantee the study and explore pipelines carry.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "arch/variant.hpp"
#include "study/variant_eval.hpp"

namespace fpr::study {

/// Search objectives. All are minimized internally; `site` (a
/// percent-of-peak, higher is better) enters the objective vector
/// negated.
enum class Objective { time, energy, site };

[[nodiscard]] std::string_view to_string(Objective o);
/// Parses "time" / "energy" / "site"; throws std::invalid_argument.
[[nodiscard]] Objective objective_from_string(std::string_view name);

/// One frontier member: the full scorecard, its budget position, and its
/// objective vector (cfg.objectives order, minimized, site negated).
struct ParetoPoint {
  VariantScore score;
  arch::ResourceBudget budget;
  std::vector<double> objectives;

  [[nodiscard]] const std::string& spec() const {
    return score.variant.spec;
  }
  [[nodiscard]] const std::string& name() const { return score.name(); }
};

/// True when `a` Pareto-dominates `b`: no worse in every component and
/// strictly better in at least one (equal vectors dominate neither way).
[[nodiscard]] bool dominates(const std::vector<double>& a,
                             const std::vector<double>& b);

/// Indices (in input order) of the non-dominated subset of `objectives`.
/// The returned *set* is invariant to any permutation of the input —
/// the property the visit-order tests pin down.
[[nodiscard]] std::vector<std::size_t> non_dominated(
    const std::vector<std::vector<double>>& objectives);

/// Candidate-stream counters. Everything here is computed in the
/// sequential generation/merge phases, so all values are identical for
/// every --jobs; the nested evaluator memo split is the one exception
/// (see EvaluatorStats) and is deliberately never serialized.
struct ParetoStats {
  std::uint64_t generated = 0;    ///< specs proposed (before any filter)
  std::uint64_t deduped = 0;      ///< dropped: canonical machine seen
  std::uint64_t invalid = 0;      ///< dropped: derive_variant rejected
  std::uint64_t over_budget = 0;  ///< dropped: outside the budget box
  std::uint64_t evaluated = 0;    ///< candidates actually scored
  std::uint64_t rounds = 0;       ///< batches executed (seed round incl.)
  EngineStats measurement;        ///< the one-time measurement phase
  EvaluatorStats evaluator;       ///< scoring-side memo counters
};

struct ParetoConfig {
  /// Base machine short name (a Table I machine: KNL, KNM, or BDW).
  std::string base = "KNL";
  /// Kernel selection / run parameters, as for StudyConfig.
  std::vector<std::string> kernels;
  double scale = 0.3;
  unsigned threads = 0;
  std::uint64_t trace_refs = model::kDefaultTraceRefs;
  std::uint64_t seed = 42;
  unsigned jobs = 1;
  unsigned kernel_jobs = 1;
  /// Seed of the explorer walks (independent of the kernel-input seed).
  std::uint64_t search_seed = 2019;
  /// Expansion rounds after the seed batch.
  unsigned rounds = 3;
  /// Seeded random walks proposed per expansion round.
  unsigned explorers = 16;
  /// Maximum transforms composed into one candidate spec.
  unsigned max_depth = 4;
  /// Budget box (defaults: no bigger, no hotter than the base).
  arch::BudgetLimits budget;
  /// Objective vector (order defines the frontier sort); must be
  /// non-empty and duplicate-free.
  std::vector<Objective> objectives = {Objective::time, Objective::energy,
                                       Objective::site};
};

struct ParetoResults {
  std::string base;  ///< base machine short name
  arch::BudgetLimits budget;
  std::vector<Objective> objectives;
  /// The non-dominated archive, sorted by objective vector then spec.
  std::vector<ParetoPoint> frontier;

  [[nodiscard]] const ParetoPoint* find(std::string_view name) const;
};

class ParetoEngine {
 public:
  explicit ParetoEngine(ParetoConfig cfg,
                        StudyEngine::KernelFactory factory = nullptr);

  /// Run the search. Call at most once per engine. Throws
  /// std::invalid_argument for an unknown base machine or a degenerate
  /// configuration (no objectives, duplicate objectives, zero depth).
  [[nodiscard]] ParetoResults run();

  /// Valid after run() returns.
  [[nodiscard]] const ParetoStats& stats() const { return stats_; }

 private:
  ParetoConfig cfg_;
  StudyEngine::KernelFactory factory_;
  ParetoStats stats_;
};

}  // namespace fpr::study
